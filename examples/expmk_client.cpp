// examples/expmk_client.cpp
//
// Reference client for the expmk-serve-v1 protocol: frames one request to
// a running expmk_serve daemon, prints the raw response JSON plus a
// parsed human-readable line.
//
//   expmk_client --port 7421 --graph chol6.tg --pfail 0.001 --method fo
//   expmk_client --port 7421 --hash 1f3a... --method mc --trials 50000
//   expmk_client --port 7421 --stats
//   expmk_client --port 7421 --shutdown
//
// --repeat N sends the same eval N times on one connection — each gets
// its own per-connection derived seed, and (after the first) warm cache
// hits; handy for eyeballing the cache and shed metadata.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "util/cli.hpp"
#include "util/framing.hpp"
#include "util/json.hpp"
#include "util/json_writer.hpp"

namespace {

using namespace expmk;

int dial(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads exactly one framed payload; empty on transport/framing failure.
std::string read_frame(int fd, util::FrameDecoder& decoder) {
  std::string payload;
  char buf[64 * 1024];
  for (;;) {
    switch (decoder.next(payload)) {
      case util::FrameDecoder::Status::Frame:
        return payload;
      case util::FrameDecoder::Status::Error:
        std::fprintf(stderr, "expmk_client: bad frame: %s\n",
                     decoder.error().c_str());
        return "";
      case util::FrameDecoder::Status::NeedMore:
        break;
    }
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      std::fprintf(stderr, "expmk_client: connection closed\n");
      return "";
    }
    decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

/// One human-readable line out of a response payload.
void summarize(const std::string& payload) {
  util::json::Value v;
  try {
    v = util::json::parse(payload);
  } catch (const std::exception&) {
    return;  // raw JSON was already printed
  }
  const util::json::Value* type = v.find("type");
  if (type == nullptr || !type->is_string()) return;
  if (type->as_string() == "result") {
    const auto* mean = v.find("mean");
    const auto* lo = v.find("mean_lo");
    const auto* hi = v.find("mean_hi");
    const auto* method = v.find("method");
    const auto* cache = v.find("cache");
    const auto* degraded = v.find("degraded");
    const auto* total = v.find("total_us");
    if (mean == nullptr || mean->is_null()) {
      const auto* note = v.find("note");
      std::printf("unsupported%s%s\n", note != nullptr ? ": " : "",
                  note != nullptr ? note->as_string().c_str() : "");
      return;
    }
    std::printf("mean %.6f  certified [%.6f, %.6f]  method %s  cache %s"
                "%s  %.0f us\n",
                mean->as_double(),
                lo != nullptr && lo->is_number() ? lo->as_double() : 0.0,
                hi != nullptr && hi->is_number() ? hi->as_double() : 0.0,
                method != nullptr ? method->as_string().c_str() : "?",
                cache != nullptr ? cache->as_string().c_str() : "?",
                degraded != nullptr && degraded->as_bool() ? "  DEGRADED"
                                                           : "",
                total != nullptr ? total->as_double() : 0.0);
  } else if (type->as_string() == "error") {
    const auto* code = v.find("code");
    const auto* message = v.find("message");
    std::printf("error %s: %s\n",
                code != nullptr ? code->as_string().c_str() : "?",
                message != nullptr ? message->as_string().c_str() : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("expmk_client", "expmk-serve-v1 reference client");
  cli.add_string("host", "127.0.0.1", "daemon address");
  cli.add_int("port", 7421, "daemon port");
  cli.add_string("graph", "", "task graph file to send inline");
  cli.add_string("hash", "", "content hash of a cached scenario (16 hex)");
  cli.add_string("method", "fo", "registry method name");
  cli.add_double("pfail", -1.0, "Section V-C calibration");
  cli.add_double("lambda", -1.0, "uniform failure rate");
  cli.add_flag("use-rates", "per-task rates from a version-2 graph file");
  cli.add_string("retry", "twostate", "twostate|geometric");
  cli.add_int("seed", 0xE57, "seed stream base");
  cli.add_int("trials", 100'000, "mc/cmc trial count");
  cli.add_int("id", -1, "echo token (>= 0 to send)");
  cli.add_int("repeat", 1, "send the eval N times on one connection");
  cli.add_flag("stats", "request the STATS frame instead of an eval");
  cli.add_flag("shutdown", "ask the daemon to shut down");
  cli.parse(argc, argv);

  std::string payload;
  {
    util::JsonWriter w;
    w.field("v", 1);
    if (cli.get_flag("stats")) {
      w.field("type", "stats");
    } else if (cli.get_flag("shutdown")) {
      w.field("type", "shutdown");
    } else {
      w.field("type", "eval");
      if (cli.get_int("id") >= 0) {
        w.field("id", static_cast<std::uint64_t>(cli.get_int("id")));
      }
      if (!cli.get_string("hash").empty()) {
        w.field("hash", cli.get_string("hash"));
      } else if (!cli.get_string("graph").empty()) {
        std::ifstream f(cli.get_string("graph"));
        if (!f) {
          std::fprintf(stderr, "expmk_client: cannot read %s\n",
                       cli.get_string("graph").c_str());
          return 1;
        }
        std::ostringstream text;
        text << f.rdbuf();
        w.field("graph", text.str());
        if (cli.get_flag("use-rates")) {
          w.field("use_rates", true);
        } else if (cli.get_double("lambda") >= 0.0) {
          w.field("lambda", cli.get_double("lambda"));
        } else {
          w.field("pfail", cli.get_double("pfail") >= 0.0
                               ? cli.get_double("pfail")
                               : 0.001);
        }
        w.field("retry", cli.get_string("retry"));
      } else {
        std::fprintf(stderr,
                     "expmk_client: need --graph or --hash (or --stats / "
                     "--shutdown)\n");
        return 2;
      }
      w.field("method", cli.get_string("method"));
      w.field("seed", static_cast<std::uint64_t>(cli.get_int("seed")));
      w.field("trials",
              static_cast<std::uint64_t>(cli.get_int("trials")));
    }
    payload = w.str();
  }

  const int fd = dial(cli.get_string("host"),
                      static_cast<int>(cli.get_int("port")));
  if (fd < 0) {
    std::fprintf(stderr, "expmk_client: cannot connect to %s:%lld\n",
                 cli.get_string("host").c_str(),
                 static_cast<long long>(cli.get_int("port")));
    return 1;
  }

  const auto repeat = cli.get_flag("stats") || cli.get_flag("shutdown")
                          ? std::int64_t{1}
                          : std::max<std::int64_t>(1, cli.get_int("repeat"));
  util::FrameDecoder decoder;
  int rc = 0;
  for (std::int64_t i = 0; i < repeat; ++i) {
    if (!send_all(fd, util::encode_frame(payload))) {
      std::fprintf(stderr, "expmk_client: send failed\n");
      rc = 1;
      break;
    }
    const std::string response = read_frame(fd, decoder);
    if (response.empty()) {
      rc = 1;
      break;
    }
    std::printf("%s\n", response.c_str());
    summarize(response);
  }
  ::close(fd);
  return rc;
}
