// examples/mc_convergence.cpp
//
// Visual tour of the Monte-Carlo engine: runs the ground-truth estimator
// on a Cholesky DAG at increasing trial counts, prints the confidence-
// interval shrinkage, shows the control-variate boost, and renders an
// ASCII histogram of the makespan distribution (the quantity whose mean
// everything else approximates).
//
//   $ ./mc_convergence --k 6 --pfail 0.01

#include <cstdio>
#include <iostream>

#include "core/failure_model.hpp"
#include "core/first_order.hpp"
#include "gen/cholesky.hpp"
#include "mc/engine.hpp"
#include "mc/histogram.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace expmk;
  util::Cli cli("mc_convergence", "Monte-Carlo convergence demo");
  cli.add_int("k", 6, "Cholesky tile count");
  cli.add_double("pfail", 0.01, "per-average-task failure probability");
  cli.add_int("seed", 17, "master seed");
  cli.parse(argc, argv);

  const auto g = gen::cholesky_dag(static_cast<int>(cli.get_int("k")));
  const auto model = core::calibrate(g, cli.get_double("pfail"));

  std::printf("Cholesky k=%lld: %zu tasks, lambda=%.5f\n",
              static_cast<long long>(cli.get_int("k")), g.task_count(),
              model.lambda);
  std::printf("first-order estimate: %.6f s\n\n",
              core::first_order(g, model).expected_makespan());

  std::printf("%-10s %-12s %-12s %-14s %-12s\n", "trials", "mean",
              "ci95", "cv_ci95", "var_redux");
  for (const std::uint64_t trials :
       {1'000ULL, 10'000ULL, 100'000ULL, 300'000ULL}) {
    mc::McConfig cfg;
    cfg.trials = trials;
    cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const auto plain = mc::run_monte_carlo(g, model, cfg);
    cfg.control_variate = true;
    const auto cv = mc::run_monte_carlo(g, model, cfg);
    std::printf("%-10llu %-12.6f %-12.6f %-14.6f %-12.2f\n",
                static_cast<unsigned long long>(trials), plain.mean,
                plain.ci95_half_width, cv.ci95_half_width,
                cv.variance_reduction);
  }

  // Histogram of the makespan distribution.
  mc::McConfig cfg;
  cfg.trials = 100'000;
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  cfg.capture_samples = true;
  const auto r = mc::run_monte_carlo(g, model, cfg);
  std::printf("\nmakespan distribution (100k samples): min=%.4f max=%.4f\n",
              r.min, r.max);
  std::printf("quantiles: p50=%.4f p90=%.4f p99=%.4f\n",
              mc::empirical_quantile(r.samples, 0.50),
              mc::empirical_quantile(r.samples, 0.90),
              mc::empirical_quantile(r.samples, 0.99));
  const auto h = mc::Histogram::from_samples(r.samples, 24);
  h.print_ascii(std::cout, 48);
  return 0;
}
