// examples/factorization_gallery.cpp
//
// Regenerates the paper's Figures 1-3: the Cholesky, LU and QR task DAGs
// for a 5x5 tile matrix, written as Graphviz .dot files (one color per
// BLAS kernel family), plus a per-class summary: task/edge counts,
// per-kernel census, critical path, and the expected-makespan estimates
// at the paper's three failure rates.
//
//   $ ./factorization_gallery --k 5 --outdir .
//   $ dot -Tpdf cholesky_k5.dot -o cholesky_k5.pdf   # if graphviz is around

#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "core/failure_model.hpp"
#include "core/first_order.hpp"
#include "gen/cholesky.hpp"
#include "gen/kernels.hpp"
#include "gen/lu.hpp"
#include "gen/qr.hpp"
#include "graph/dot.hpp"
#include "graph/longest_path.hpp"
#include "mc/engine.hpp"
#include "util/cli.hpp"

namespace {

void describe(const expmk::graph::Dag& g, const std::string& name,
              const std::string& outdir, int k) {
  using namespace expmk;

  const std::string path =
      outdir + "/" + name + "_k" + std::to_string(k) + ".dot";
  std::ofstream out(path);
  graph::DotOptions opts;
  opts.graph_name = name;
  graph::write_dot(out, g, opts);

  std::map<std::string, int> census;
  for (graph::TaskId i = 0; i < g.task_count(); ++i) {
    census[std::string(
        gen::kernel_family_name(gen::kernel_family_of(g.name(i))))]++;
  }

  std::printf("%s (k=%d): %zu tasks, %zu edges -> %s\n", name.c_str(), k,
              g.task_count(), g.edge_count(), path.c_str());
  std::printf("  kernels:");
  for (const auto& [kernel, count] : census) {
    std::printf(" %s x%d", kernel.c_str(), count);
  }
  std::printf("\n  mean task weight %.4f s, critical path %.4f s\n",
              g.mean_weight(), graph::critical_path_length(g));

  for (const double pfail : {0.01, 0.001, 0.0001}) {
    const auto model = core::calibrate(g, pfail);
    const auto fo = core::first_order(g, model);
    std::printf(
        "  pfail=%-7g lambda=%.6f  E[makespan] ~ %.6f s (first order, "
        "+%.4f%% over failure-free)\n",
        pfail, model.lambda, fo.expected_makespan(),
        100.0 * fo.correction / fo.critical_path);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  expmk::util::Cli cli("factorization_gallery",
                       "Regenerates the DAGs of the paper's Figures 1-3");
  cli.add_int("k", 5, "tile count (the paper's figures use 5)");
  cli.add_string("outdir", ".", "directory for the .dot files");
  cli.parse(argc, argv);
  const int k = static_cast<int>(cli.get_int("k"));
  const std::string outdir = cli.get_string("outdir");

  describe(expmk::gen::cholesky_dag(k), "cholesky", outdir, k);
  describe(expmk::gen::lu_dag(k), "lu", outdir, k);
  describe(expmk::gen::qr_dag(k), "qr", outdir, k);
  return 0;
}
