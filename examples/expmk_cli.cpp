// examples/expmk_cli.cpp
//
// A self-contained command-line front end to the library, for users who
// want estimates without writing C++:
//
//   expmk_cli generate --class cholesky --k 6 --out chol6.tg
//   expmk_cli generate --class lu --k 4 --pfail 0.01 --rate-spread 8 \
//       --out lu4het.tg                      # heterogeneous per-task rates
//   expmk_cli estimate --graph chol6.tg --pfail 0.001
//   expmk_cli estimate --graph lu4het.tg --use-rates --method all
//   expmk_cli estimate --graph chol6.tg --pfail 0.001 --method mc --trials 100000
//   expmk_cli dot --graph chol6.tg --out chol6.dot
//   expmk_cli schedule --graph chol6.tg --p 4 --pfail 0.01
//
// Graphs travel in the expmk-taskgraph text format (graph/serialize.hpp);
// version-2 files carry per-task silent-error rates, and --use-rates
// builds a heterogeneous scenario straight from them. Every estimating
// command compiles ONE scenario::Scenario and hands it to the evaluator
// registry — the same compile-once path the sweep harness uses.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/criticality.hpp"
#include "core/failure_model.hpp"
#include "exp/evaluator.hpp"
#include "exp/plan.hpp"
#include "exp/workspace.hpp"
#include "gen/cholesky.hpp"
#include "gen/lu.hpp"
#include "gen/qr.hpp"
#include "gen/random_dags.hpp"
#include "graph/dot.hpp"
#include "graph/longest_path.hpp"
#include "graph/serialize.hpp"
#include "graph/validate.hpp"
#include "prob/rng.hpp"
#include "scenario/content_hash.hpp"
#include "scenario/scenario.hpp"
#include "sched/fault_sim.hpp"
#include "util/cli.hpp"
#include "util/simd.hpp"
#include "util/timer.hpp"

namespace {

using namespace expmk;

int usage() {
  std::fprintf(stderr,
               "usage: expmk_cli <command> [options]\n"
               "commands:\n"
               "  generate  --class cholesky|lu|qr|layered|erdos --k N "
               "[--seed S] [--pfail P --rate-spread F] --out FILE\n"
               "  estimate  --graph FILE (--pfail P | --use-rates) "
               "[--method all|<registry name>] [--retry twostate|geometric] "
               "[--trials N] [--repeat N] [--max-atoms N] "
               "[--target-rel-err E | --deadline-us D  (planned mode)] "
               "[--patch TASK=RATE[,TASK=RATE...]]\n"
               "  dot       --graph FILE --out FILE\n"
               "  schedule  --graph FILE --p N (--pfail P | --use-rates) "
               "[--runs N]\n"
               "  validate  --graph FILE\n"
               "  critical  --graph FILE (--pfail P | --use-rates) "
               "[--trials N]\n");
  return 2;
}

/// Builds the scenario every estimating command shares: uniform pfail
/// calibration, or (--use-rates) the per-task rates embedded in a
/// version-2 task-graph file.
scenario::Scenario scenario_from_file(const graph::TaskGraphFile& file,
                                      bool use_rates, double pfail,
                                      core::RetryModel retry) {
  if (use_rates) {
    if (!file.has_rates()) {
      throw std::invalid_argument(
          "--use-rates: the graph file carries no per-task rates "
          "(expmk-taskgraph version 2; see 'generate --rate-spread')");
    }
    return scenario::Scenario::compile(
        file.dag, scenario::FailureSpec::per_task(file.rates), retry);
  }
  return scenario::Scenario::calibrated(file.dag, pfail, retry);
}

int cmd_generate(int argc, const char* const* argv) {
  util::Cli cli("expmk_cli generate", "Generate a task graph file");
  cli.add_string("class", "cholesky", "cholesky|lu|qr|layered|erdos");
  cli.add_int("k", 6, "tile count (factorizations) / size parameter");
  cli.add_int("seed", 1, "seed for random families (and --rate-spread)");
  cli.add_double("pfail", 0.0,
                 "with --rate-spread: center rate calibration");
  cli.add_double("rate-spread", 0.0,
                 "write per-task rates log-uniform in [lambda/F, lambda*F] "
                 "(version-2 file; 0 = uniform file without rates)");
  cli.add_string("out", "graph.tg", "output path");
  cli.parse(argc, argv);

  const std::string cls = cli.get_string("class");
  const int k = static_cast<int>(cli.get_int("k"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  graph::Dag g;
  if (cls == "cholesky") {
    g = gen::cholesky_dag(k);
  } else if (cls == "lu") {
    g = gen::lu_dag(k);
  } else if (cls == "qr") {
    g = gen::qr_dag(k);
  } else if (cls == "layered") {
    g = gen::layered_random(k, k, 0.3, seed);
  } else if (cls == "erdos") {
    g = gen::erdos_dag(k * k, 0.15, seed);
  } else {
    std::fprintf(stderr, "unknown class '%s'\n", cls.c_str());
    return 2;
  }

  const double spread = cli.get_double("rate-spread");
  if (spread > 0.0) {
    if (spread < 1.0) {
      std::fprintf(stderr, "--rate-spread must be >= 1\n");
      return 2;
    }
    if (!(cli.get_double("pfail") > 0.0)) {
      // pfail defaults to 0: spreading rates around lambda == 0 would
      // silently write an all-zero (failure-free) "heterogeneous" file.
      std::fprintf(stderr,
                   "--rate-spread needs --pfail > 0 (the center rate)\n");
      return 2;
    }
    const double lambda =
        core::calibrate(g, cli.get_double("pfail")).lambda;
    // Per-task rates log-uniform in [lambda/spread, lambda*spread]: the
    // standard way to model machines whose error rates differ by up to
    // spread^2 while keeping the calibrated rate as the geometric center.
    std::vector<double> rates(g.task_count());
    prob::Xoshiro256pp rng(seed, 0x8a7e5);
    const double log_spread = std::log(spread);
    for (double& r : rates) {
      r = lambda * std::exp((2.0 * rng.uniform() - 1.0) * log_spread);
    }
    graph::save_taskgraph(cli.get_string("out"), g, rates);
    std::printf("wrote %s: %zu tasks, %zu edges, per-task rates around "
                "lambda=%.6g (spread %g)\n",
                cli.get_string("out").c_str(), g.task_count(),
                g.edge_count(), lambda, spread);
    return 0;
  }

  graph::save_taskgraph(cli.get_string("out"), g);
  std::printf("wrote %s: %zu tasks, %zu edges\n",
              cli.get_string("out").c_str(), g.task_count(), g.edge_count());
  return 0;
}

int cmd_estimate(int argc, const char* const* argv) {
  util::Cli cli("expmk_cli estimate", "Expected-makespan estimates");
  cli.add_string("graph", "graph.tg", "input task graph");
  cli.add_double("pfail", 0.001, "per-average-task failure probability");
  cli.add_flag("use-rates",
               "heterogeneous scenario from the file's per-task rates "
               "(version-2 graph file) instead of --pfail");
  cli.add_string("method", "all",
                 "all | a registry method (fo, so, dodin, sculli, corlca, "
                 "clark, mc, cmc, exact, ...)");
  cli.add_string("retry", "twostate",
                 "twostate|geometric (one scenario, one retry model; "
                 "two-state-only methods gate under geometric)");
  cli.add_int("trials", 100'000, "Monte-Carlo trials (mc/cmc)");
  cli.add_int("dodin-atoms", 128, "Dodin atom budget");
  cli.add_int("max-atoms", 0,
              "atom budget for every distribution method (0 = exact for "
              "sp; a positive value also overrides --dodin-atoms). When "
              "the cap fires, the certified [mean_lo, mean_hi] envelope "
              "is printed");
  cli.add_double("target-rel-err", 0.0,
                 "PLANNED MODE: let the query planner pick and size the "
                 "cheapest method delivering this relative error "
                 "(--method is ignored)");
  cli.add_double("deadline-us", 0.0,
                 "PLANNED MODE: predicted-cost budget in microseconds; "
                 "the planner picks the most accurate method under it "
                 "(combine with --target-rel-err for both constraints)");
  cli.add_int("repeat", 1,
              "evaluate each method N times on one warm workspace and "
              "report amortized throughput (first-call vs steady-state)");
  cli.add_string("patch", "",
                 "comma-separated TASK=RATE overrides applied via "
                 "Scenario::patch (incremental re-derivation); the patched "
                 "handle is verified bit-identical to a fresh compile of "
                 "the same rates, then used for every estimate below");
  cli.parse(argc, argv);

  const std::string retry_name = cli.get_string("retry");
  core::RetryModel retry;
  if (retry_name == "twostate") {
    retry = core::RetryModel::TwoState;
  } else if (retry_name == "geometric") {
    retry = core::RetryModel::Geometric;
  } else {
    std::fprintf(stderr, "unknown retry model '%s'\n", retry_name.c_str());
    return 2;
  }

  const auto file = graph::load_taskgraph_file(cli.get_string("graph"));
  scenario::Scenario sc = scenario_from_file(
      file, cli.get_flag("use-rates"), cli.get_double("pfail"), retry);

  std::printf("graph: %zu tasks, %zu edges, d(G)=%.6f, %s\n",
              sc.task_count(), sc.dag().edge_count(), sc.critical_path(),
              sc.heterogeneous()
                  ? "heterogeneous per-task rates"
                  : ("lambda=" + std::to_string(sc.uniform_model().lambda))
                        .c_str());
  // The serving layer's cache key for this exact cell — paste it into an
  // expmk_serve by-hash request, or correlate it with STATS entries.
  std::printf("scenario-hash: %s\n",
              scenario::content_hash_hex(
                  scenario::content_hash(sc.dag(), sc.failure(), retry))
                  .c_str());

  const std::string patch_spec = cli.get_string("patch");
  if (!patch_spec.empty()) {
    // Parse "TASK=RATE[,TASK=RATE...]" into parallel id/rate vectors.
    std::vector<graph::TaskId> patch_ids;
    std::vector<double> patch_rates;
    std::size_t pos = 0;
    while (pos < patch_spec.size()) {
      const std::size_t comma = patch_spec.find(',', pos);
      const std::string item =
          comma == std::string::npos
              ? patch_spec.substr(pos)
              : patch_spec.substr(pos, comma - pos);
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
        std::fprintf(stderr, "--patch: expected TASK=RATE, got '%s'\n",
                     item.c_str());
        return 2;
      }
      const auto id = std::stoul(item.substr(0, eq));
      if (id >= sc.task_count()) {
        std::fprintf(stderr, "--patch: task %lu out of range (%zu tasks)\n",
                     id, sc.task_count());
        return 2;
      }
      patch_ids.push_back(static_cast<graph::TaskId>(id));
      patch_rates.push_back(std::stod(item.substr(eq + 1)));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }

    const util::Timer patch_timer;
    scenario::Scenario patched = sc.patch(patch_ids, patch_rates);
    const double patch_us = patch_timer.seconds() * 1e6;

    // Referee: a fresh compile of the merged rate vector. The patched
    // handle must be indistinguishable from it — same content hash,
    // bitwise-equal first-order mean.
    std::vector<double> merged(sc.rates().begin(), sc.rates().end());
    for (std::size_t j = 0; j < patch_ids.size(); ++j) {
      merged[patch_ids[j]] = patch_rates[j];
    }
    const util::Timer compile_timer;
    const scenario::Scenario fresh = scenario::Scenario::compile(
        sc.dag(), scenario::FailureSpec::per_task(merged), retry);
    const double compile_us = compile_timer.seconds() * 1e6;

    const auto& preg = exp::EvaluatorRegistry::builtin();
    const double mean_patched =
        preg.find("fo")->evaluate(patched, exp::EvalOptions{}).mean;
    const double mean_fresh =
        preg.find("fo")->evaluate(fresh, exp::EvalOptions{}).mean;
    const bool identical =
        std::memcmp(&mean_patched, &mean_fresh, sizeof(double)) == 0;
    std::printf("patched %zu task(s) in %.1f us (fresh compile: %.1f us, "
                "%.1fx); patch==compile: %s\n",
                patch_ids.size(), patch_us, compile_us,
                patch_us > 0.0 ? compile_us / patch_us : 0.0,
                identical ? "bit-identical" : "MISMATCH");
    std::printf("scenario-hash: %s (patched)\n",
                scenario::content_hash_hex(scenario::content_hash(
                                               patched.dag(),
                                               patched.failure(), retry))
                    .c_str());
    if (!identical) return 1;
    sc = std::move(patched);
  }

  exp::EvalOptions opt;
  opt.mc_trials = static_cast<std::uint64_t>(cli.get_int("trials"));
  opt.dodin_atoms = static_cast<std::size_t>(cli.get_int("dodin-atoms"));
  const auto max_atoms =
      static_cast<std::size_t>(std::max<std::int64_t>(0, cli.get_int("max-atoms")));
  opt.sp_max_atoms = max_atoms;
  if (max_atoms > 0) opt.dodin_atoms = max_atoms;

  // ---- planned mode: the query planner picks, sizes, runs, verifies ---
  const double target = cli.get_double("target-rel-err");
  const double deadline = cli.get_double("deadline-us");
  if (target > 0.0 || deadline > 0.0) {
    exp::PlanBudget budget;
    budget.target_rel_err = target;
    budget.deadline_us = deadline;
    const exp::Planner planner;
    const exp::PlannedResult pr = planner.run(sc, budget, opt);
    for (const exp::PlanStep& s : pr.report.steps) {
      std::printf("plan: step %-10s atoms=%-5zu trials=%-8llu "
                  "predicted %10.1f us  actual %10.1f us  %s\n",
                  std::string(exp::plan_method_name(s.method)).c_str(),
                  s.max_atoms,
                  static_cast<unsigned long long>(s.mc_trials),
                  s.predicted_us, s.actual_us,
                  s.supported
                      ? (s.envelope_rel_width > 0.0
                             ? ("width " + std::to_string(s.envelope_rel_width))
                                   .c_str()
                             : "ok")
                      : ("unsupported: " + s.note).c_str());
    }
    const exp::PlanReport& rep = pr.report;
    std::printf("plan: chose %s  predicted %.1f us  actual %.1f us  "
                "rel-err<=%.3g  escalations=%d%s%s%s\n",
                std::string(rep.method_name).c_str(), rep.predicted_us,
                rep.actual_us, rep.predicted_rel_err, rep.escalations,
                rep.low_confidence ? "  [low-confidence]" : "",
                rep.met_target ? "" : "  [TARGET MISSED]",
                rep.met_deadline ? "" : "  [DEADLINE MISSED]");
    if (!pr.result.supported) {
      std::printf("planned: unsupported (%s)\n", pr.result.note.c_str());
      return 1;
    }
    if (pr.result.std_error > 0.0) {
      std::printf("planned %-8s: %.6f +/- %.6f\n",
                  std::string(rep.method_name).c_str(), pr.result.mean,
                  1.96 * pr.result.std_error);
    } else {
      std::printf("planned %-8s: %.6f\n",
                  std::string(rep.method_name).c_str(), pr.result.mean);
    }
    if (pr.result.mean_lo < pr.result.mean_hi) {
      std::printf("  certified [%.6f, %.6f]\n", pr.result.mean_lo,
                  pr.result.mean_hi);
    }
    return 0;
  }

  const std::string method = cli.get_string("method");
  const std::vector<std::string> all = {"fo",     "so",     "dodin",
                                        "sculli", "corlca", "mc"};
  const auto& reg = exp::EvaluatorRegistry::builtin();
  std::vector<std::string> names;
  if (method == "all") {
    names = all;
  } else if (reg.find(method) != nullptr) {
    names = {method};
  } else {
    std::fprintf(stderr, "unknown method '%s' (see expmk_sweep --list)\n",
                 method.c_str());
    return 2;
  }

  // --max-atoms only reaches the distribution engines; warn (don't fail)
  // when it is paired with a method that never reads an atom budget, so
  // a "why didn't the envelope change" session debugs itself.
  if (max_atoms > 0 && method != "all" && method != "sp" &&
      method != "dodin" && method != "sp.hier" && method != "dodin.hier" &&
      method != "mc.hier") {
    std::fprintf(stderr,
                 "warning: --max-atoms has no effect on method '%s' "
                 "(atom budgets apply to sp, dodin, sp.hier, dodin.hier, "
                 "mc.hier)\n",
                 method.c_str());
  }

  const auto repeat = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, cli.get_int("repeat")));
  for (const std::string& name : names) {
    const exp::Evaluator* e = reg.find(name);
    if (repeat == 1) {
      // Capture the makespan law for the distribution methods, whose law
      // falls out of the evaluation for free, so the report can show tail
      // quantiles next to the mean. (exact could also capture, but its
      // distribution costs a SECOND full 2^V enumeration — not worth an
      // incidental quantile line.)
      exp::EvalOptions capture_opt = opt;
      capture_opt.capture_distribution = name == "sp" || name == "dodin";
      const auto r = e->evaluate(sc, capture_opt);
      if (!r.supported) {
        std::printf("%-12s: unsupported (%s)\n", name.c_str(),
                    r.note.c_str());
        continue;
      }
      if (r.std_error > 0.0) {
        std::printf("%-12s: %.6f +/- %.6f", name.c_str(), r.mean,
                    1.96 * r.std_error);
      } else {
        std::printf("%-12s: %.6f", name.c_str(), r.mean);
      }
      if (r.mean_lo < r.mean_hi) {
        // The atom cap fired: report the certified envelope the
        // untruncated computation is guaranteed to lie in.
        std::printf("  certified [%.6f, %.6f]", r.mean_lo, r.mean_hi);
      }
      if (r.distribution.has_value()) {
        std::printf("  p50=%.6f p95=%.6f p99=%.6f",
                    r.distribution->quantile(0.50),
                    r.distribution->quantile(0.95),
                    r.distribution->quantile(0.99));
      }
      std::printf("\n");
      continue;
    }

    // --repeat N: the amortization demo. The first call pays the cold
    // arenas (the PR-3 per-call cost structure); every later call leases
    // warm workspace buffers — the steady-state serving path.
    exp::Workspace ws;
    util::Timer first_timer;
    const auto r = e->evaluate(sc, opt, ws);
    const double first_us = first_timer.seconds() * 1e6;
    if (!r.supported) {
      std::printf("%-12s: unsupported (%s)\n", name.c_str(),
                  r.note.c_str());
      continue;
    }
    double guard = r.mean;
    const util::Timer steady_timer;
    for (std::uint64_t i = 1; i < repeat; ++i) {
      guard += e->evaluate(sc, opt, ws).mean;
    }
    const double steady_seconds = steady_timer.seconds();
    const double steady_us =
        steady_seconds * 1e6 / static_cast<double>(repeat - 1);
    const double evals_per_sec =
        steady_seconds > 0.0
            ? static_cast<double>(repeat - 1) / steady_seconds
            : 0.0;
    (void)guard;
    std::printf("%-12s: %.6f   first-call %9.1f us, steady-state %9.1f "
                "us (%.0f evals/sec over %llu warm reps) "
                "[kernels=%s rng=philox4x32]\n",
                name.c_str(), r.mean, first_us, steady_us, evals_per_sec,
                static_cast<unsigned long long>(repeat - 1),
                util::simd::name(util::simd::active()));
  }
  return 0;
}

int cmd_dot(int argc, const char* const* argv) {
  util::Cli cli("expmk_cli dot", "Export a task graph to Graphviz");
  cli.add_string("graph", "graph.tg", "input task graph");
  cli.add_string("out", "graph.dot", "output .dot path");
  cli.add_flag("weights", "show weights in labels");
  cli.parse(argc, argv);
  const auto g = graph::load_taskgraph(cli.get_string("graph"));
  std::ofstream os(cli.get_string("out"));
  graph::DotOptions opts;
  opts.show_weights = cli.get_flag("weights");
  graph::write_dot(os, g, opts);
  std::printf("wrote %s\n", cli.get_string("out").c_str());
  return 0;
}

int cmd_schedule(int argc, const char* const* argv) {
  util::Cli cli("expmk_cli schedule", "Fault-aware CP scheduling report");
  cli.add_string("graph", "graph.tg", "input task graph");
  cli.add_int("p", 4, "processors");
  cli.add_double("pfail", 0.01, "per-average-task failure probability");
  cli.add_flag("use-rates",
               "heterogeneous scenario from the file's per-task rates");
  cli.add_int("runs", 1000, "fault-injection runs");
  cli.parse(argc, argv);

  const auto file = graph::load_taskgraph_file(cli.get_string("graph"));
  const scenario::Scenario sc = scenario_from_file(
      file, cli.get_flag("use-rates"), cli.get_double("pfail"),
      core::RetryModel::Geometric);
  const graph::Dag& g = sc.dag();
  // Priority computation needs a uniform model; heterogeneous scenarios
  // use the mean rate for the failure-aware priorities (the simulation
  // itself samples each task's own rate).
  double mean_rate = 0.0;
  for (const double r : sc.rates()) mean_rate += r;
  mean_rate /= static_cast<double>(sc.task_count());
  const core::FailureModel prio_model{mean_rate};
  const sched::Machine machine(static_cast<std::size_t>(cli.get_int("p")));
  sched::FaultSimConfig cfg;
  cfg.runs = static_cast<std::uint64_t>(cli.get_int("runs"));

  for (const auto kind : {sched::PriorityKind::BottomLevel,
                          sched::PriorityKind::FailureAwareBottomLevel}) {
    const auto prio = sched::priorities(g, kind, prio_model);
    const auto r = sched::simulate_with_faults(sc, prio, machine, cfg);
    std::printf("%-24s failure-free %.5f, under faults mean %.5f (max "
                "%.5f)\n",
                kind == sched::PriorityKind::BottomLevel
                    ? "bottom-level"
                    : "failure-aware",
                r.failure_free_makespan, r.makespan.mean(),
                r.makespan.max());
  }
  return 0;
}

int cmd_validate(int argc, const char* const* argv) {
  util::Cli cli("expmk_cli validate", "Structural checks on a task graph");
  cli.add_string("graph", "graph.tg", "input task graph");
  cli.parse(argc, argv);
  const auto g = graph::load_taskgraph(cli.get_string("graph"));
  const auto report = graph::validate(g);
  std::printf("tasks=%zu edges=%zu entries=%zu exits=%zu components=%zu\n",
              g.task_count(), g.edge_count(), report.entry_count,
              report.exit_count, report.component_count);
  for (const auto& p : report.problems) std::printf("problem: %s\n", p.c_str());
  std::printf("%s\n", report.ok() ? "OK" : "INVALID");
  return report.ok() ? 0 : 1;
}

int cmd_critical(int argc, const char* const* argv) {
  util::Cli cli("expmk_cli critical", "Criticality analysis");
  cli.add_string("graph", "graph.tg", "input task graph");
  cli.add_double("pfail", 0.01, "per-average-task failure probability");
  cli.add_flag("use-rates",
               "heterogeneous scenario from the file's per-task rates");
  cli.add_int("trials", 10'000, "Monte-Carlo trials");
  cli.add_int("top", 10, "how many tasks to list");
  cli.parse(argc, argv);

  const auto file = graph::load_taskgraph_file(cli.get_string("graph"));
  const scenario::Scenario sc = scenario_from_file(
      file, cli.get_flag("use-rates"), cli.get_double("pfail"),
      core::RetryModel::Geometric);
  const graph::Dag& g = sc.dag();
  core::CriticalityConfig cfg;
  cfg.trials = static_cast<std::uint64_t>(cli.get_int("trials"));
  const auto prob = core::criticality_probabilities(sc, cfg);
  const auto slack = core::slacks(g);

  std::vector<graph::TaskId> order(g.task_count());
  for (graph::TaskId i = 0; i < g.task_count(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](graph::TaskId a, graph::TaskId b) {
    return prob[a] > prob[b];
  });
  const auto limit = std::min<std::size_t>(
      order.size(), static_cast<std::size_t>(cli.get_int("top")));
  std::printf("%-20s %-12s %-10s\n", "task", "P(critical)", "slack");
  for (std::size_t i = 0; i < limit; ++i) {
    const auto t = order[i];
    std::printf("%-20s %-12.4f %-10.5f\n",
                std::string(g.name(t)).c_str(), prob[t], slack[t]);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  // Shift argv so each sub-Cli sees its own option list.
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  try {
    if (command == "generate") return cmd_generate(sub_argc, sub_argv);
    if (command == "estimate") return cmd_estimate(sub_argc, sub_argv);
    if (command == "dot") return cmd_dot(sub_argc, sub_argv);
    if (command == "schedule") return cmd_schedule(sub_argc, sub_argv);
    if (command == "validate") return cmd_validate(sub_argc, sub_argv);
    if (command == "critical") return cmd_critical(sub_argc, sub_argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "expmk_cli %s: %s\n", command.c_str(), e.what());
    return 1;
  }
  return usage();
}
