// examples/expmk_cli.cpp
//
// A self-contained command-line front end to the library, for users who
// want estimates without writing C++:
//
//   expmk_cli generate --class cholesky --k 6 --out chol6.tg
//   expmk_cli estimate --graph chol6.tg --pfail 0.001
//   expmk_cli estimate --graph chol6.tg --pfail 0.001 --method mc --trials 100000
//   expmk_cli dot --graph chol6.tg --out chol6.dot
//   expmk_cli schedule --graph chol6.tg --p 4 --pfail 0.01
//
// Graphs travel in the expmk-taskgraph text format (graph/serialize.hpp).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/criticality.hpp"
#include "core/failure_model.hpp"
#include "core/first_order.hpp"
#include "core/second_order.hpp"
#include "gen/cholesky.hpp"
#include "gen/lu.hpp"
#include "gen/qr.hpp"
#include "gen/random_dags.hpp"
#include "graph/dot.hpp"
#include "graph/longest_path.hpp"
#include "graph/serialize.hpp"
#include "graph/validate.hpp"
#include "mc/engine.hpp"
#include "normal/corlca.hpp"
#include "normal/sculli.hpp"
#include "sched/fault_sim.hpp"
#include "spgraph/dodin.hpp"
#include "util/cli.hpp"

namespace {

using namespace expmk;

int usage() {
  std::fprintf(stderr,
               "usage: expmk_cli <command> [options]\n"
               "commands:\n"
               "  generate  --class cholesky|lu|qr|layered|erdos --k N "
               "[--seed S] --out FILE\n"
               "  estimate  --graph FILE --pfail P [--method all|fo|so|"
               "dodin|sculli|corlca|mc] [--trials N]\n"
               "  dot       --graph FILE --out FILE\n"
               "  schedule  --graph FILE --p N --pfail P [--runs N]\n"
               "  validate  --graph FILE\n"
               "  critical  --graph FILE --pfail P [--trials N]\n");
  return 2;
}

int cmd_generate(int argc, const char* const* argv) {
  util::Cli cli("expmk_cli generate", "Generate a task graph file");
  cli.add_string("class", "cholesky", "cholesky|lu|qr|layered|erdos");
  cli.add_int("k", 6, "tile count (factorizations) / size parameter");
  cli.add_int("seed", 1, "seed for random families");
  cli.add_string("out", "graph.tg", "output path");
  cli.parse(argc, argv);

  const std::string cls = cli.get_string("class");
  const int k = static_cast<int>(cli.get_int("k"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  graph::Dag g;
  if (cls == "cholesky") {
    g = gen::cholesky_dag(k);
  } else if (cls == "lu") {
    g = gen::lu_dag(k);
  } else if (cls == "qr") {
    g = gen::qr_dag(k);
  } else if (cls == "layered") {
    g = gen::layered_random(k, k, 0.3, seed);
  } else if (cls == "erdos") {
    g = gen::erdos_dag(k * k, 0.15, seed);
  } else {
    std::fprintf(stderr, "unknown class '%s'\n", cls.c_str());
    return 2;
  }
  graph::save_taskgraph(cli.get_string("out"), g);
  std::printf("wrote %s: %zu tasks, %zu edges\n",
              cli.get_string("out").c_str(), g.task_count(), g.edge_count());
  return 0;
}

int cmd_estimate(int argc, const char* const* argv) {
  util::Cli cli("expmk_cli estimate", "Expected-makespan estimates");
  cli.add_string("graph", "graph.tg", "input task graph");
  cli.add_double("pfail", 0.001, "per-average-task failure probability");
  cli.add_string("method", "all", "all|fo|so|dodin|sculli|corlca|mc");
  cli.add_int("trials", 100'000, "Monte-Carlo trials (method mc/all)");
  cli.add_int("dodin-atoms", 128, "Dodin atom budget");
  cli.parse(argc, argv);

  const auto g = graph::load_taskgraph(cli.get_string("graph"));
  const auto model = core::calibrate(g, cli.get_double("pfail"));
  const std::string method = cli.get_string("method");

  std::printf("graph: %zu tasks, %zu edges, d(G)=%.6f, lambda=%.6g\n",
              g.task_count(), g.edge_count(),
              graph::critical_path_length(g), model.lambda);
  const bool all = method == "all";
  if (all || method == "fo") {
    std::printf("first-order : %.6f\n",
                core::first_order(g, model).expected_makespan());
  }
  if (all || method == "so") {
    std::printf("second-order: %.6f\n",
                core::second_order(g, model, core::RetryModel::Geometric)
                    .expected_makespan);
  }
  if (all || method == "dodin") {
    const auto r = sp::dodin_two_state(
        g, model,
        {.max_atoms = static_cast<std::size_t>(cli.get_int("dodin-atoms"))});
    std::printf("dodin       : %.6f (%zu duplications)\n",
                r.expected_makespan(), r.duplications);
  }
  if (all || method == "sculli") {
    std::printf("sculli      : %.6f\n",
                normal::sculli(g, model).expected_makespan());
  }
  if (all || method == "corlca") {
    std::printf("corlca      : %.6f\n",
                normal::corlca(g, model).expected_makespan());
  }
  if (all || method == "mc") {
    mc::McConfig cfg;
    cfg.trials = static_cast<std::uint64_t>(cli.get_int("trials"));
    const auto r = mc::run_monte_carlo(g, model, cfg);
    std::printf("monte-carlo : %.6f +/- %.6f (95%%, %llu trials)\n", r.mean,
                r.ci95_half_width,
                static_cast<unsigned long long>(r.trials));
  }
  return 0;
}

int cmd_dot(int argc, const char* const* argv) {
  util::Cli cli("expmk_cli dot", "Export a task graph to Graphviz");
  cli.add_string("graph", "graph.tg", "input task graph");
  cli.add_string("out", "graph.dot", "output .dot path");
  cli.add_flag("weights", "show weights in labels");
  cli.parse(argc, argv);
  const auto g = graph::load_taskgraph(cli.get_string("graph"));
  std::ofstream os(cli.get_string("out"));
  graph::DotOptions opts;
  opts.show_weights = cli.get_flag("weights");
  graph::write_dot(os, g, opts);
  std::printf("wrote %s\n", cli.get_string("out").c_str());
  return 0;
}

int cmd_schedule(int argc, const char* const* argv) {
  util::Cli cli("expmk_cli schedule", "Fault-aware CP scheduling report");
  cli.add_string("graph", "graph.tg", "input task graph");
  cli.add_int("p", 4, "processors");
  cli.add_double("pfail", 0.01, "per-average-task failure probability");
  cli.add_int("runs", 1000, "fault-injection runs");
  cli.parse(argc, argv);

  const auto g = graph::load_taskgraph(cli.get_string("graph"));
  const auto model = core::calibrate(g, cli.get_double("pfail"));
  const sched::Machine machine(static_cast<std::size_t>(cli.get_int("p")));
  sched::FaultSimConfig cfg;
  cfg.runs = static_cast<std::uint64_t>(cli.get_int("runs"));

  for (const auto kind : {sched::PriorityKind::BottomLevel,
                          sched::PriorityKind::FailureAwareBottomLevel}) {
    const auto prio = sched::priorities(g, kind, model);
    const auto r = sched::simulate_with_faults(g, prio, machine, model, cfg);
    std::printf("%-24s failure-free %.5f, under faults mean %.5f (max "
                "%.5f)\n",
                kind == sched::PriorityKind::BottomLevel
                    ? "bottom-level"
                    : "failure-aware",
                r.failure_free_makespan, r.makespan.mean(),
                r.makespan.max());
  }
  return 0;
}

int cmd_validate(int argc, const char* const* argv) {
  util::Cli cli("expmk_cli validate", "Structural checks on a task graph");
  cli.add_string("graph", "graph.tg", "input task graph");
  cli.parse(argc, argv);
  const auto g = graph::load_taskgraph(cli.get_string("graph"));
  const auto report = graph::validate(g);
  std::printf("tasks=%zu edges=%zu entries=%zu exits=%zu components=%zu\n",
              g.task_count(), g.edge_count(), report.entry_count,
              report.exit_count, report.component_count);
  for (const auto& p : report.problems) std::printf("problem: %s\n", p.c_str());
  std::printf("%s\n", report.ok() ? "OK" : "INVALID");
  return report.ok() ? 0 : 1;
}

int cmd_critical(int argc, const char* const* argv) {
  util::Cli cli("expmk_cli critical", "Criticality analysis");
  cli.add_string("graph", "graph.tg", "input task graph");
  cli.add_double("pfail", 0.01, "per-average-task failure probability");
  cli.add_int("trials", 10'000, "Monte-Carlo trials");
  cli.add_int("top", 10, "how many tasks to list");
  cli.parse(argc, argv);

  const auto g = graph::load_taskgraph(cli.get_string("graph"));
  const auto model = core::calibrate(g, cli.get_double("pfail"));
  core::CriticalityConfig cfg;
  cfg.trials = static_cast<std::uint64_t>(cli.get_int("trials"));
  const auto prob = core::criticality_probabilities(g, model, cfg);
  const auto slack = core::slacks(g);

  std::vector<graph::TaskId> order(g.task_count());
  for (graph::TaskId i = 0; i < g.task_count(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](graph::TaskId a, graph::TaskId b) {
    return prob[a] > prob[b];
  });
  const auto limit = std::min<std::size_t>(
      order.size(), static_cast<std::size_t>(cli.get_int("top")));
  std::printf("%-20s %-12s %-10s\n", "task", "P(critical)", "slack");
  for (std::size_t i = 0; i < limit; ++i) {
    const auto t = order[i];
    std::printf("%-20s %-12.4f %-10.5f\n",
                std::string(g.name(t)).c_str(), prob[t], slack[t]);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  // Shift argv so each sub-Cli sees its own option list.
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  if (command == "generate") return cmd_generate(sub_argc, sub_argv);
  if (command == "estimate") return cmd_estimate(sub_argc, sub_argv);
  if (command == "dot") return cmd_dot(sub_argc, sub_argv);
  if (command == "schedule") return cmd_schedule(sub_argc, sub_argv);
  if (command == "validate") return cmd_validate(sub_argc, sub_argv);
  if (command == "critical") return cmd_critical(sub_argc, sub_argv);
  return usage();
}
