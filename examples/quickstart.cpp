// examples/quickstart.cpp
//
// Minimal tour of the public API: build a small task DAG, pick a silent-
// error rate, and ask every estimator in the library for the expected
// makespan — with the Monte-Carlo ground truth last to judge them.
//
//   $ ./quickstart
//
// The DAG is a toy workflow: preprocessing, three parallel solvers of
// different sizes, and a reduction.

#include <cstdio>

#include "core/exact.hpp"
#include "core/failure_model.hpp"
#include "core/first_order.hpp"
#include "core/second_order.hpp"
#include "graph/dag.hpp"
#include "graph/longest_path.hpp"
#include "mc/engine.hpp"
#include "normal/clark_full.hpp"
#include "normal/corlca.hpp"
#include "normal/sculli.hpp"
#include "spgraph/dodin.hpp"

int main() {
  using namespace expmk;

  // 1. Describe the workflow: weights are failure-free execution times
  //    in seconds.
  graph::Dag g;
  const auto prep = g.add_task("prepare", 0.10);
  const auto solve_small = g.add_task("solve_small", 0.12);
  const auto solve_mid = g.add_task("solve_mid", 0.18);
  const auto solve_big = g.add_task("solve_big", 0.25);
  const auto reduce = g.add_task("reduce", 0.08);
  for (const auto s : {solve_small, solve_mid, solve_big}) {
    g.add_edge(prep, s);
    g.add_edge(s, reduce);
  }

  // 2. Pick the failure regime: calibrate lambda so a task of average
  //    weight fails with probability 1% (the paper's harshest setting).
  const core::FailureModel model = core::calibrate(g, 0.01);
  std::printf("workflow: %zu tasks, %zu edges, critical path %.4f s\n",
              g.task_count(), g.edge_count(),
              graph::critical_path_length(g));
  std::printf("failure model: lambda = %.5f /s (pfail = 1%% per average "
              "task)\n\n",
              model.lambda);

  // 3. Ask every estimator.
  const auto fo = core::first_order(g, model);
  std::printf("%-28s %.6f s  (= %.6f + correction %.6f)\n",
              "first order (the paper):", fo.expected_makespan(),
              fo.critical_path, fo.correction);

  const auto so = core::second_order(g, model, core::RetryModel::Geometric);
  std::printf("%-28s %.6f s\n", "second order (extension):",
              so.expected_makespan);

  const auto dodin = sp::dodin_two_state(g, model, {.max_atoms = 0});
  std::printf("%-28s %.6f s  (%zu duplications)\n", "Dodin (competitor):",
              dodin.expected_makespan(), dodin.duplications);

  std::printf("%-28s %.6f s\n", "Normal / Sculli:",
              normal::sculli(g, model).expected_makespan());
  std::printf("%-28s %.6f s\n", "CorLCA:",
              normal::corlca(g, model).expected_makespan());
  std::printf("%-28s %.6f s\n", "Clark full covariance:",
              normal::clark_full(g, model).expected_makespan());

  // 4. Tiny graph, so the exact #P computation is feasible too.
  std::printf("%-28s %.6f s\n", "exact (enumeration):",
              core::exact_two_state(g, model));

  // 5. Monte-Carlo ground truth with the true (geometric) retry model.
  mc::McConfig cfg;
  cfg.trials = 200'000;
  const auto mc = mc::run_monte_carlo(g, model, cfg);
  std::printf("%-28s %.6f s  (+/- %.6f at 95%%, %llu trials)\n",
              "Monte-Carlo ground truth:", mc.mean, mc.ci95_half_width,
              static_cast<unsigned long long>(mc.trials));
  return 0;
}
