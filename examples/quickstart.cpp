// examples/quickstart.cpp
//
// Minimal tour of the public API, built around the compile-once Scenario
// handle: describe a small task DAG, compile ONE immutable scenario for
// the chosen failure regime, and hand that same scenario to every
// estimator in the library — with the Monte-Carlo ground truth last to
// judge them. A second scenario shows heterogeneous per-task error rates
// (only the failure spec changes; every supporting estimator runs
// unmodified).
//
//   $ ./quickstart
//
// The DAG is a toy workflow: preprocessing, three parallel solvers of
// different sizes, and a reduction.

#include <cstdio>
#include <vector>

#include "core/exact.hpp"
#include "core/failure_model.hpp"
#include "core/first_order.hpp"
#include "core/second_order.hpp"
#include "graph/dag.hpp"
#include "mc/engine.hpp"
#include "normal/clark_full.hpp"
#include "normal/corlca.hpp"
#include "normal/sculli.hpp"
#include "scenario/scenario.hpp"
#include "spgraph/dodin.hpp"

int main() {
  using namespace expmk;

  // 1. Describe the workflow: weights are failure-free execution times
  //    in seconds.
  graph::Dag g;
  const auto prep = g.add_task("prepare", 0.10);
  const auto solve_small = g.add_task("solve_small", 0.12);
  const auto solve_mid = g.add_task("solve_mid", 0.18);
  const auto solve_big = g.add_task("solve_big", 0.25);
  const auto reduce = g.add_task("reduce", 0.08);
  for (const auto s : {solve_small, solve_mid, solve_big}) {
    g.add_edge(prep, s);
    g.add_edge(s, reduce);
  }

  // 2. Compile the scenario ONCE: calibrate lambda so a task of average
  //    weight fails with probability 1% (the paper's harshest setting),
  //    then bundle DAG + rates + retry model + all cached preprocessing
  //    into one immutable, thread-shareable handle.
  const scenario::Scenario sc =
      scenario::Scenario::calibrated(g, 0.01, core::RetryModel::TwoState);
  std::printf("workflow: %zu tasks, %zu edges, critical path %.4f s\n",
              sc.task_count(), sc.dag().edge_count(), sc.critical_path());
  std::printf("failure model: lambda = %.5f /s (pfail = 1%% per average "
              "task)\n\n",
              sc.uniform_model().lambda);

  // 3. Hand the SAME scenario to every estimator. No estimator re-derives
  //    the CSR view, the topological order or the e^{-lambda a_i} table.
  const auto fo = core::first_order(sc);
  std::printf("%-28s %.6f s  (= %.6f + correction %.6f)\n",
              "first order (the paper):", fo.expected_makespan(),
              fo.critical_path, fo.correction);

  const auto so = core::second_order(sc);
  std::printf("%-28s %.6f s\n", "second order (extension):",
              so.expected_makespan);

  const auto dodin = sp::dodin_two_state(sc, {.max_atoms = 0});
  std::printf("%-28s %.6f s  (%zu duplications)\n", "Dodin (competitor):",
              dodin.expected_makespan(), dodin.duplications);

  std::printf("%-28s %.6f s\n", "Normal / Sculli:",
              normal::sculli(sc).expected_makespan());
  std::printf("%-28s %.6f s\n", "CorLCA:",
              normal::corlca(sc).expected_makespan());
  std::printf("%-28s %.6f s\n", "Clark full covariance:",
              normal::clark_full(sc).expected_makespan());

  // 4. Tiny graph, so the exact #P computation is feasible too.
  std::printf("%-28s %.6f s\n", "exact (enumeration):",
              core::exact_two_state(sc));

  // 5. Monte-Carlo ground truth with the true (geometric) retry model —
  //    a different retry model is a different scenario, so compile one.
  const scenario::Scenario sc_geo =
      scenario::Scenario::calibrated(g, 0.01, core::RetryModel::Geometric);
  mc::McConfig cfg;
  cfg.trials = 200'000;
  const auto mc = mc::run_monte_carlo(sc_geo, cfg);
  std::printf("%-28s %.6f s  (+/- %.6f at 95%%, %llu trials)\n",
              "Monte-Carlo ground truth:", mc.mean, mc.ci95_half_width,
              static_cast<unsigned long long>(mc.trials));

  // 6. Heterogeneous silent errors: suppose the big solver runs on flaky
  //    hardware (10x the error rate) while preprocessing is protected
  //    (rate 0). Only the FailureSpec changes — the estimators don't.
  const double lambda = sc.uniform_model().lambda;
  std::vector<double> rates(g.task_count(), lambda);
  rates[prep] = 0.0;
  rates[solve_big] = 10.0 * lambda;
  const scenario::Scenario sc_het = scenario::Scenario::compile(
      g, scenario::FailureSpec::per_task(rates), core::RetryModel::TwoState);
  std::printf("\nheterogeneous rates (prepare protected, solve_big 10x):\n");
  std::printf("%-28s %.6f s\n", "first order:",
              core::first_order(sc_het).expected_makespan());
  std::printf("%-28s %.6f s\n", "second order:",
              core::second_order(sc_het).expected_makespan);
  std::printf("%-28s %.6f s\n", "exact (enumeration):",
              core::exact_two_state(sc_het));
  return 0;
}
