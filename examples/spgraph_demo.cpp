// examples/spgraph_demo.cpp
//
// Inside Dodin's machine: converts task DAGs to activity-on-arc networks,
// shows which ones reduce by series/parallel rewriting alone (i.e. are
// series-parallel) and which need node duplication, and compares the
// resulting makespan law to the exact one on a small non-SP graph.
//
//   $ ./spgraph_demo

#include <cstdio>

#include "core/exact.hpp"
#include "core/failure_model.hpp"
#include "gen/cholesky.hpp"
#include "gen/random_dags.hpp"
#include "spgraph/dodin.hpp"
#include "spgraph/sp_reduce.hpp"

namespace {

using namespace expmk;

std::vector<prob::DiscreteDistribution> two_state(const graph::Dag& g,
                                                  const core::FailureModel& m) {
  std::vector<prob::DiscreteDistribution> out;
  for (graph::TaskId i = 0; i < g.task_count(); ++i) {
    const double a = g.weight(i);
    out.push_back(a > 0.0
                      ? prob::DiscreteDistribution::two_state(a, m.p_success(a))
                      : prob::DiscreteDistribution::point(0.0));
  }
  return out;
}

void inspect(const char* name, const graph::Dag& g,
             const core::FailureModel& m) {
  auto eval = sp::evaluate_sp(sp::ArcNetwork::from_dag(g, two_state(g, m)));
  std::printf("%-28s %4zu tasks: %s (%zu series, %zu parallel merges)\n",
              name, g.task_count(),
              eval.is_series_parallel ? "series-parallel" : "NOT SP",
              eval.stats.series, eval.stats.parallel);
  const auto dodin = sp::dodin_two_state(g, m, {.max_atoms = 128});
  std::printf("%-28s dodin: E=%.6f, %zu duplications, final support %zu "
              "atoms\n",
              "", dodin.expected_makespan(), dodin.duplications,
              dodin.makespan.size());
  if (g.task_count() <= 16) {
    std::printf("%-28s exact: E=%.6f  (dodin bias %+.3e)\n", "",
                core::exact_two_state(g, m),
                dodin.expected_makespan() - core::exact_two_state(g, m));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const core::FailureModel m{0.25};  // harsh rate so biases are visible

  inspect("chain(6)", gen::uniform_chain(6, 0.4), m);
  inspect("fork-join(5)", gen::uniform_fork_join(5, 0.4, 0.1), m);
  inspect("random SP (20 tasks)", gen::random_series_parallel(20, 3), m);
  inspect("N-graph (minimal non-SP)",
          [] {
            graph::Dag g;
            const auto a = g.add_task("A", 0.4);
            const auto b = g.add_task("B", 0.5);
            const auto c = g.add_task("C", 0.45);
            const auto d = g.add_task("D", 0.55);
            g.add_edge(a, c);
            g.add_edge(a, d);
            g.add_edge(b, d);
            return g;
          }(),
          m);
  inspect("wheatstone bridge", gen::wheatstone_bridge(), m);
  inspect("cholesky k=4", gen::cholesky_dag(4), m);
  inspect("cholesky k=6", gen::cholesky_dag(6), m);

  std::printf(
      "Every duplication treats the cloned task's copies as independent —\n"
      "that independence is Dodin's approximation, and on DAGs as far from\n"
      "SP as the factorization graphs it is why the paper finds Dodin's\n"
      "error the largest of the three estimators.\n");
  return 0;
}
