// examples/scheduling_advisor.cpp
//
// The paper's motivating use case, end to end: schedule a factorization
// DAG on P processors with CP list scheduling, once with classical bottom
// levels and once with the failure-aware (first-order expected) bottom
// levels, then stress both schedules with fault injection and report
// which priority scheme holds up better.
//
//   $ ./scheduling_advisor --class lu --k 8 --p 4 --pfail 0.01

#include <cstdio>
#include <string>

#include "core/failure_model.hpp"
#include "gen/cholesky.hpp"
#include "gen/lu.hpp"
#include "gen/qr.hpp"
#include "graph/longest_path.hpp"
#include "sched/fault_sim.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace expmk;
  util::Cli cli("scheduling_advisor",
                "Failure-aware CP scheduling vs classical CP scheduling");
  cli.add_string("class", "lu", "dag class: cholesky | lu | qr");
  cli.add_int("k", 8, "tile count");
  cli.add_int("p", 4, "processors");
  cli.add_double("pfail", 0.01, "per-average-task failure probability");
  cli.add_int("runs", 2000, "fault-injection runs");
  cli.parse(argc, argv);

  const int k = static_cast<int>(cli.get_int("k"));
  const std::string cls = cli.get_string("class");
  graph::Dag g = cls == "cholesky" ? gen::cholesky_dag(k)
                 : cls == "qr"     ? gen::qr_dag(k)
                                   : gen::lu_dag(k);

  const auto model = core::calibrate(g, cli.get_double("pfail"));
  const sched::Machine machine(static_cast<std::size_t>(cli.get_int("p")));

  std::printf("%s k=%d: %zu tasks, critical path %.3f s, lambda %.5f, "
              "P=%zu\n\n",
              cls.c_str(), k, g.task_count(),
              graph::critical_path_length(g), model.lambda,
              machine.processors());

  const auto classic =
      sched::priorities(g, sched::PriorityKind::BottomLevel, model);
  const auto aware = sched::priorities(
      g, sched::PriorityKind::FailureAwareBottomLevel, model);

  sched::FaultSimConfig cfg;
  cfg.runs = static_cast<std::uint64_t>(cli.get_int("runs"));
  const auto r_classic =
      sched::simulate_with_faults(g, classic, machine, model, cfg);
  const auto r_aware =
      sched::simulate_with_faults(g, aware, machine, model, cfg);

  std::printf("%-26s %-12s %-12s %-12s %-12s\n", "priority scheme",
              "failure-free", "mean", "p95-ish(max)", "ci95");
  std::printf("%-26s %-12.4f %-12.4f %-12.4f %-12.5f\n",
              "classical bottom level", r_classic.failure_free_makespan,
              r_classic.makespan.mean(), r_classic.makespan.max(),
              r_classic.makespan.ci_half_width(0.95));
  std::printf("%-26s %-12.4f %-12.4f %-12.4f %-12.5f\n",
              "failure-aware (1st order)", r_aware.failure_free_makespan,
              r_aware.makespan.mean(), r_aware.makespan.max(),
              r_aware.makespan.ci_half_width(0.95));

  const double gain = (r_classic.makespan.mean() - r_aware.makespan.mean()) /
                      r_classic.makespan.mean();
  std::printf("\nfailure-aware priorities change the mean makespan by "
              "%+.3f%% under injected silent errors.\n", 100.0 * gain);
  std::printf("(On these dense factorization DAGs the two rankings often "
              "coincide at low pfail — the paper's point is that the\n"
              " failure-aware ranking is now *computable*: first-order "
              "bottom levels for all %zu tasks cost O(V(V+E)).)\n",
              g.task_count());
  return 0;
}
