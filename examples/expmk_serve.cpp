// examples/expmk_serve.cpp
//
// The persistent serving daemon: a loopback TCP server speaking the
// expmk-serve-v1 protocol (length-prefixed JSON frames; see DESIGN.md
// "Serving layer") over the library's compile-once + batch-evaluate
// machinery. One process holds the content-hash scenario cache, the
// batching executor and the load-shedding policy; clients — see
// expmk_client.cpp for a reference implementation — send task graphs
// (inline or by content hash) and get back the full certified estimate
// surface plus cache/shed/timing metadata.
//
//   expmk_serve --port 7421 --cache-mb 256 --workers 0
//   expmk_serve --port 0           # ephemeral; the bound port is printed
//
// The daemon exits on a protocol shutdown frame (expmk_client --shutdown)
// or SIGINT/SIGTERM.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

#include "serve/server.hpp"
#include "util/cli.hpp"

namespace {

volatile std::sig_atomic_t g_signaled = 0;

void on_signal(int) { g_signaled = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace expmk;

  util::Cli cli("expmk_serve", "expmk-serve-v1 TCP daemon");
  cli.add_int("port", 0, "TCP port on 127.0.0.1 (0 = ephemeral)");
  cli.add_int("cache-mb", 256, "scenario cache byte budget in MiB");
  cli.add_int("shards", 8, "scenario cache shard count");
  cli.add_int("batch", 64, "flush a batch at this many queued requests");
  cli.add_double("batch-deadline-us", 250.0,
                 "... or when the oldest request waited this long");
  cli.add_int("workers", 0, "evaluation threads (0 = hardware)");
  cli.add_int("queue-l1", 512, "queue depth for shed level 1");
  cli.add_int("queue-l2", 2048, "queue depth for shed level 2");
  cli.add_int("queue-hard", 8192, "queue depth to reject outright");
  cli.parse(argc, argv);

  serve::ServerConfig config;
  config.port = static_cast<int>(cli.get_int("port"));
  config.engine.cache_bytes =
      static_cast<std::size_t>(cli.get_int("cache-mb")) << 20;
  config.engine.cache_shards =
      static_cast<std::size_t>(cli.get_int("shards"));
  config.engine.batch.max_batch =
      static_cast<std::size_t>(cli.get_int("batch"));
  config.engine.batch.deadline_us = cli.get_double("batch-deadline-us");
  config.engine.batch.eval_threads =
      static_cast<std::size_t>(cli.get_int("workers"));
  config.engine.shed.queue_l1 =
      static_cast<std::size_t>(cli.get_int("queue-l1"));
  config.engine.shed.queue_l2 =
      static_cast<std::size_t>(cli.get_int("queue-l2"));
  config.engine.shed.queue_hard =
      static_cast<std::size_t>(cli.get_int("queue-hard"));

  serve::TcpServer server(config);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "expmk_serve: %s\n", e.what());
    return 1;
  }
  std::printf("expmk_serve: listening on port %d\n", server.port());
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  // Wake-up sources: the engine's shutdown latch (a protocol frame) or a
  // signal; poll the latter since a handler can't notify the latch cv.
  while (!server.engine().shutdown_requested() && g_signaled == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("expmk_serve: shutting down (%s)\n",
              g_signaled != 0 ? "signal" : "shutdown frame");
  server.stop();
  return 0;
}
