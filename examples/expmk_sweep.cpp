// examples/expmk_sweep.cpp
//
// One-command reproduction of the paper's accuracy/runtime comparison
// (Section V): expands a generators x sizes x pfails x methods grid, runs
// every estimator against the Monte-Carlo reference, prints paper-style
// accuracy and runtime tables, and writes the machine-readable sweep
// artifacts (JSON is the deterministic record — byte-identical for any
// thread count; the CSV carries wall-clock timings).
//
//   expmk_sweep                                  # LU/QR/Cholesky table
//   expmk_sweep --generators lu --sizes 8,12 --pfails 1e-4,1e-3,1e-2
//   expmk_sweep --methods fo,so,dodin,sculli --reference mc --trials 100000
//   expmk_sweep --list                           # method catalogue

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "exp/evaluator.hpp"
#include "exp/sweep.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace expmk;

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : csv) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

// Strict numeric parsing: stoi("4x6") would silently accept the leading
// "4" and run a different grid than the user asked for, so every token
// must be consumed entirely.
std::vector<int> split_ints(const std::string& csv) {
  std::vector<int> out;
  for (const std::string& s : split_list(csv)) {
    std::size_t pos = 0;
    const int v = std::stoi(s, &pos);
    if (pos != s.size()) {
      throw std::invalid_argument("trailing characters in '" + s + "'");
    }
    out.push_back(v);
  }
  return out;
}

std::vector<double> split_doubles(const std::string& csv) {
  std::vector<double> out;
  for (const std::string& s : split_list(csv)) {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) {
      throw std::invalid_argument("trailing characters in '" + s + "'");
    }
    out.push_back(v);
  }
  return out;
}

/// Fetches a non-negative integer option; a negative value would wrap to
/// ~1.8e19 in the uint64 casts below and defeat every downstream
/// validity check.
std::int64_t get_non_negative(const util::Cli& cli, const std::string& name) {
  const std::int64_t v = cli.get_int(name);
  if (v < 0) {
    std::fprintf(stderr, "--%s must be >= 0\n", name.c_str());
    std::exit(2);
  }
  return v;
}

void print_catalogue() {
  const auto& reg = exp::EvaluatorRegistry::builtin();
  std::printf("%-14s %-9s %-10s %s\n", "method", "2-state", "geometric",
              "description");
  for (const auto& e : reg.evaluators()) {
    const auto& c = e.capabilities();
    std::printf("%-14s %-9s %-10s %s\n", std::string(e.name()).c_str(),
                c.two_state ? "yes" : "no", c.geometric ? "yes" : "no",
                std::string(e.description()).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("expmk_sweep",
                "Accuracy/runtime sweep over DAG families, failure rates "
                "and estimation methods");
  cli.add_string("generators", "lu,qr,cholesky",
                 "comma list: lu|qr|cholesky|layered|erdos|sp|chain|forkjoin");
  cli.add_string("sizes", "6", "comma list of size parameters (tile count k)");
  cli.add_string("pfails", "0.0001,0.001,0.01",
                 "comma list of per-average-task failure probabilities");
  cli.add_string("methods", "fo,so,dodin,sculli,corlca,clark",
                 "comma list of methods (see --list)");
  cli.add_string("reference", "mc",
                 "reference method for relative errors ('' = none)");
  cli.add_string("retry", "twostate", "twostate|geometric");
  cli.add_int("trials", 300'000, "Monte-Carlo trials (the paper's count)");
  cli.add_int("seed", 2016, "sweep base seed");
  cli.add_int("sweep-threads", 1,
              "scenario-level workers (0 = hardware concurrency)");
  cli.add_int("eval-threads", 0,
              "threads inside one evaluation (0 = hardware concurrency)");
  cli.add_int("dodin-atoms", 256, "Dodin atom budget");
  cli.add_string("json", "sweep.json", "JSON artifact path ('' = skip)");
  cli.add_string("csv", "sweep.csv", "CSV artifact path ('' = skip)");
  cli.add_flag("timing", "include wall-clock timings in the JSON artifact "
                         "(breaks byte-identity across runs)");
  cli.add_flag("list", "print the method catalogue and exit");
  cli.add_flag("quiet", "skip the aligned tables (artifacts only)");
  cli.parse(argc, argv);

  if (cli.get_flag("list")) {
    print_catalogue();
    return 0;
  }

  exp::SweepGrid grid;
  grid.generators = split_list(cli.get_string("generators"));
  try {
    grid.sizes = split_ints(cli.get_string("sizes"));
    grid.pfails = split_doubles(cli.get_string("pfails"));
  } catch (const std::exception&) {
    std::fprintf(stderr, "cannot parse --sizes '%s' / --pfails '%s': "
                         "expected comma-separated numbers\n",
                 cli.get_string("sizes").c_str(),
                 cli.get_string("pfails").c_str());
    return 2;
  }
  grid.methods = split_list(cli.get_string("methods"));
  grid.reference = cli.get_string("reference");
  grid.base_seed = static_cast<std::uint64_t>(get_non_negative(cli, "seed"));
  const std::string retry = cli.get_string("retry");
  if (retry == "twostate") {
    grid.retry = core::RetryModel::TwoState;
  } else if (retry == "geometric") {
    grid.retry = core::RetryModel::Geometric;
  } else {
    std::fprintf(stderr, "unknown retry model '%s'\n", retry.c_str());
    return 2;
  }
  grid.options.mc_trials =
      static_cast<std::uint64_t>(get_non_negative(cli, "trials"));
  grid.options.threads =
      static_cast<std::size_t>(get_non_negative(cli, "eval-threads"));
  grid.options.dodin_atoms =
      static_cast<std::size_t>(get_non_negative(cli, "dodin-atoms"));

  const exp::SweepRunner runner;
  exp::SweepResult result;
  try {
    result = runner.run(
        grid,
        static_cast<std::size_t>(get_non_negative(cli, "sweep-threads")));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep failed: %s\n", e.what());
    return 1;
  }

  // Cells are scenario-major with a fixed method count per scenario.
  const std::size_t scenarios =
      grid.generators.size() * grid.sizes.size() * grid.pfails.size();
  const std::size_t per_scenario = result.cells.size() / scenarios;

  if (!cli.get_flag("quiet")) {
    // Columns follow the cell order (reference first unless the user
    // listed it elsewhere), so header and row positions always agree.
    std::vector<std::string> header = {"graph", "k", "tasks", "pfail"};
    for (std::size_t mi = 0; mi < per_scenario; ++mi) {
      const auto& cell = result.cells[mi];
      header.push_back(cell.method == grid.reference ? cell.method + " mean"
                                                     : cell.method);
    }
    util::Table accuracy(header);
    util::Table runtime(header);
    for (std::size_t si = 0; si < scenarios; ++si) {
      const auto* row = &result.cells[si * per_scenario];
      accuracy.begin_row();
      runtime.begin_row();
      for (auto* t : {&accuracy, &runtime}) {
        t->add(row[0].generator);
        t->add_int(row[0].size);
        t->add_int(static_cast<std::int64_t>(row[0].tasks));
        t->add_double(row[0].pfail);
      }
      for (std::size_t mi = 0; mi < per_scenario; ++mi) {
        const auto& cell = row[mi];
        if (!cell.result.supported) {
          accuracy.add("n/a");
          runtime.add("n/a");
        } else if (cell.method == grid.reference) {
          accuracy.add_double(cell.result.mean);
          runtime.add_double(cell.result.seconds);
        } else if (std::isfinite(cell.relative_error)) {
          accuracy.add_signed_sci(cell.relative_error);
          runtime.add_double(cell.result.seconds);
        } else {
          // No usable reference on this scenario (none configured, or it
          // was itself unsupported): show the method's absolute mean
          // rather than a meaningless NaN.
          accuracy.add_double(cell.result.mean);
          runtime.add_double(cell.result.seconds);
        }
      }
    }
    std::printf("Relative error vs %s (signed normalized difference; %s "
                "retry model, %llu trials):\n",
                grid.reference.empty() ? "-" : grid.reference.c_str(),
                retry.c_str(),
                static_cast<unsigned long long>(grid.options.mc_trials));
    accuracy.print_aligned(std::cout);
    std::printf("\nRuntime (seconds):\n");
    runtime.print_aligned(std::cout);
    std::printf("\nsweep wall-clock: %.2f s, %zu cells\n", result.seconds,
                result.cells.size());
  }

  try {
    result.write_artifacts(cli.get_string("json"), cli.get_string("csv"),
                           cli.get_flag("timing"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "artifact write failed: %s\n", e.what());
    return 1;
  }
  if (!cli.get_string("json").empty()) {
    std::printf("wrote %s\n", cli.get_string("json").c_str());
  }
  if (!cli.get_string("csv").empty()) {
    std::printf("wrote %s\n", cli.get_string("csv").c_str());
  }
  return 0;
}
