// Tests for the Monte-Carlo engine: reproducibility, thread-count
// invariance, convergence to exact oracles, retry-model behavior, and the
// control-variate estimator.

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact.hpp"
#include "core/first_order.hpp"
#include "gen/cholesky.hpp"
#include "gen/lu.hpp"
#include "gen/random_dags.hpp"
#include "graph/longest_path.hpp"
#include "mc/engine.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::core::exact_geometric;
using expmk::core::exact_two_state;
using expmk::core::FailureModel;
using expmk::core::RetryModel;
using expmk::mc::McConfig;
using expmk::mc::run_monte_carlo;

TEST(MonteCarlo, ZeroTrialsThrowsInsteadOfClamping) {
  // trials == 0 is a misconfiguration (sweep configs are user-supplied);
  // the engine used to clamp it to 1 silently.
  const auto g = expmk::test::diamond();
  McConfig cfg;
  cfg.trials = 0;
  EXPECT_THROW((void)run_monte_carlo(g, FailureModel{0.1}, cfg),
               std::invalid_argument);
}

TEST(MonteCarlo, DeterministicForFixedSeed) {
  const auto g = expmk::test::diamond(0.4, 0.3, 0.5, 0.2);
  const FailureModel m{0.1};
  McConfig cfg;
  cfg.trials = 5000;
  cfg.seed = 7;
  const auto r1 = run_monte_carlo(g, m, cfg);
  const auto r2 = run_monte_carlo(g, m, cfg);
  EXPECT_DOUBLE_EQ(r1.mean, r2.mean);
  EXPECT_DOUBLE_EQ(r1.variance, r2.variance);
}

TEST(MonteCarlo, ThreadCountDoesNotChangeEstimate) {
  const auto g = expmk::gen::cholesky_dag(3);
  const FailureModel m{0.05};
  McConfig cfg;
  cfg.trials = 4000;
  cfg.seed = 11;
  cfg.threads = 1;
  const auto serial = run_monte_carlo(g, m, cfg);
  cfg.threads = 4;
  const auto parallel = run_monte_carlo(g, m, cfg);
  // Per-trial counter-based streams: identical samples, so identical
  // means up to summation order (Welford merge is exact per partition;
  // partitions differ, so allow only float-noise).
  EXPECT_NEAR(serial.mean, parallel.mean, 1e-12 * serial.mean);
  EXPECT_EQ(serial.trials, parallel.trials);
}

TEST(MonteCarlo, ConvergesToExactTwoState) {
  const auto g = expmk::test::diamond(0.4, 0.3, 0.5, 0.2);
  const FailureModel m{0.2};
  McConfig cfg;
  cfg.trials = 200'000;
  cfg.retry = RetryModel::TwoState;
  const auto r = run_monte_carlo(g, m, cfg);
  const double exact = exact_two_state(g, m);
  EXPECT_NEAR(r.mean, exact, 4.0 * r.ci95_half_width + 1e-9)
      << "mean=" << r.mean << " exact=" << exact;
}

TEST(MonteCarlo, ConvergesToExactGeometric) {
  const auto g = expmk::test::diamond(0.4, 0.3, 0.5, 0.2);
  const FailureModel m{0.4};
  McConfig cfg;
  cfg.trials = 200'000;
  cfg.retry = RetryModel::Geometric;
  const auto r = run_monte_carlo(g, m, cfg);
  const double exact = exact_geometric(g, m, 12);
  EXPECT_NEAR(r.mean, exact, 4.0 * r.ci95_half_width + 1e-6);
}

TEST(MonteCarlo, ZeroLambdaIsDeterministic) {
  const auto g = expmk::gen::cholesky_dag(3);
  McConfig cfg;
  cfg.trials = 100;
  const auto r = run_monte_carlo(g, FailureModel{0.0}, cfg);
  EXPECT_DOUBLE_EQ(r.variance, 0.0);
  EXPECT_DOUBLE_EQ(r.min, r.max);
}

TEST(MonteCarlo, GeometricMeanExceedsTwoState) {
  const auto g = expmk::gen::cholesky_dag(3);
  const FailureModel m{1.0};  // huge rate: retries matter
  McConfig cfg;
  cfg.trials = 50'000;
  cfg.retry = RetryModel::TwoState;
  const auto ts = run_monte_carlo(g, m, cfg);
  cfg.retry = RetryModel::Geometric;
  const auto geo = run_monte_carlo(g, m, cfg);
  EXPECT_GT(geo.mean, ts.mean);
}

TEST(MonteCarlo, CiShrinksWithTrials) {
  const auto g = expmk::test::diamond(0.4, 0.3, 0.5, 0.2);
  const FailureModel m{0.2};
  McConfig small, large;
  small.trials = 2000;
  large.trials = 32000;
  const auto rs = run_monte_carlo(g, m, small);
  const auto rl = run_monte_carlo(g, m, large);
  EXPECT_GT(rs.ci95_half_width, rl.ci95_half_width);
  EXPECT_GT(rl.ci99_half_width, rl.ci95_half_width);
}

TEST(MonteCarlo, MeanBracketsAreSane) {
  const auto g = expmk::gen::lu_dag(3);
  const FailureModel m = expmk::core::calibrate(g, 0.01);
  McConfig cfg;
  cfg.trials = 20'000;
  const auto r = run_monte_carlo(g, m, cfg);
  const double d = expmk::graph::critical_path_length(g);
  EXPECT_GE(r.min, d - 1e-9);  // every trial at least the failure-free CP
  EXPECT_GE(r.mean, d);
  EXPECT_LE(r.mean, 2.0 * d);  // and nowhere near all-tasks-failed
  EXPECT_GE(r.max, r.mean);
}

TEST(MonteCarlo, ControlVariateIsUnbiasedAndTighter) {
  const auto g = expmk::gen::cholesky_dag(3);
  const FailureModel m = expmk::core::calibrate(g, 0.01);
  McConfig plain, cv;
  plain.trials = cv.trials = 100'000;
  cv.control_variate = true;
  const auto rp = run_monte_carlo(g, m, plain);
  const auto rc = run_monte_carlo(g, m, cv);
  // Same trials & seed: CV must agree within the (tight) CI and reduce
  // variance.
  EXPECT_NEAR(rc.mean, rp.mean, 4.0 * rp.ci95_half_width);
  EXPECT_GT(rc.variance_reduction, 1.0);
  EXPECT_LT(rc.std_error, rp.std_error);
  EXPECT_DOUBLE_EQ(rc.plain_mean, rp.mean);
}

TEST(MonteCarlo, CapturesSamplesOnRequest) {
  const auto g = expmk::test::diamond(0.4, 0.3, 0.5, 0.2);
  McConfig cfg;
  cfg.trials = 1000;
  cfg.capture_samples = true;
  const auto r = run_monte_carlo(g, FailureModel{0.2}, cfg);
  ASSERT_EQ(r.samples.size(), 1000u);
  double mean = 0.0;
  for (const double s : r.samples) mean += s;
  mean /= 1000.0;
  EXPECT_NEAR(mean, r.mean, 1e-9);
}

TEST(MonteCarlo, RecordsTiming) {
  const auto g = expmk::test::diamond();
  McConfig cfg;
  cfg.trials = 1000;
  const auto r = run_monte_carlo(g, FailureModel{0.1}, cfg);
  EXPECT_GE(r.seconds, 0.0);
  EXPECT_EQ(r.trials, 1000u);
}

}  // namespace
