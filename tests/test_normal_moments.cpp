// Unit tests for prob/normal: Clark's max formulas validated against
// Monte-Carlo integration of actual bivariate normals, the linkage
// formula, and degenerate cases.

#include <gtest/gtest.h>

#include <cmath>

#include "prob/normal.hpp"
#include "prob/rng.hpp"
#include "prob/statistics.hpp"

namespace {

using expmk::prob::clark_linkage;
using expmk::prob::clark_max;
using expmk::prob::NormalMoments;
using expmk::prob::sum_independent;
using expmk::prob::Xoshiro256pp;

/// Box-Muller standard normal pair.
void gauss_pair(Xoshiro256pp& rng, double& z1, double& z2) {
  const double u1 = rng.uniform_positive();
  const double u2 = rng.uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  z1 = r * std::cos(2.0 * M_PI * u2);
  z2 = r * std::sin(2.0 * M_PI * u2);
}

/// Simulates E/Var of max(X, Y) for correlated normals.
NormalMoments simulate_max(NormalMoments x, NormalMoments y, double rho,
                           int n = 400000) {
  Xoshiro256pp rng(99);
  expmk::prob::RunningStats s;
  const double sx = std::sqrt(x.var);
  const double sy = std::sqrt(y.var);
  for (int i = 0; i < n; ++i) {
    double z1, z2;
    gauss_pair(rng, z1, z2);
    const double xv = x.mean + sx * z1;
    const double yv =
        y.mean + sy * (rho * z1 + std::sqrt(1.0 - rho * rho) * z2);
    s.push(std::max(xv, yv));
  }
  return {s.mean(), s.variance()};
}

TEST(ClarkMax, MatchesSimulationIndependent) {
  const NormalMoments x{1.0, 0.25}, y{1.2, 0.49};
  const auto fold = clark_max(x, y, 0.0);
  const auto sim = simulate_max(x, y, 0.0);
  EXPECT_NEAR(fold.moments.mean, sim.mean, 5e-3);
  EXPECT_NEAR(fold.moments.var, sim.var, 5e-3);
}

TEST(ClarkMax, MatchesSimulationPositiveCorrelation) {
  const NormalMoments x{2.0, 1.0}, y{2.5, 0.5};
  const auto fold = clark_max(x, y, 0.6);
  const auto sim = simulate_max(x, y, 0.6);
  EXPECT_NEAR(fold.moments.mean, sim.mean, 5e-3);
  EXPECT_NEAR(fold.moments.var, sim.var, 1e-2);
}

TEST(ClarkMax, MatchesSimulationNegativeCorrelation) {
  const NormalMoments x{0.0, 1.0}, y{0.0, 1.0};
  const auto fold = clark_max(x, y, -0.8);
  const auto sim = simulate_max(x, y, -0.8);
  EXPECT_NEAR(fold.moments.mean, sim.mean, 5e-3);
  EXPECT_NEAR(fold.moments.var, sim.var, 1e-2);
}

TEST(ClarkMax, EqualOperandsIndependentKnownValue) {
  // max of two iid N(0,1): mean = 1/sqrt(pi), var = 1 - 1/pi.
  const auto fold = clark_max({0.0, 1.0}, {0.0, 1.0}, 0.0);
  EXPECT_NEAR(fold.moments.mean, 1.0 / std::sqrt(M_PI), 1e-12);
  EXPECT_NEAR(fold.moments.var, 1.0 - 1.0 / M_PI, 1e-12);
  EXPECT_NEAR(fold.weight_x, 0.5, 1e-12);
  EXPECT_NEAR(fold.weight_y, 0.5, 1e-12);
}

TEST(ClarkMax, DegenerateBothDeterministic) {
  const auto fold = clark_max({3.0, 0.0}, {5.0, 0.0}, 0.0);
  EXPECT_DOUBLE_EQ(fold.moments.mean, 5.0);
  EXPECT_DOUBLE_EQ(fold.moments.var, 0.0);
  EXPECT_DOUBLE_EQ(fold.weight_y, 1.0);
}

TEST(ClarkMax, PerfectlyCorrelatedEqualVariance) {
  // rho=1 and equal variances: X - Y deterministic, max = larger-mean one.
  const auto fold = clark_max({3.0, 1.0}, {4.0, 1.0}, 1.0);
  EXPECT_DOUBLE_EQ(fold.moments.mean, 4.0);
  EXPECT_DOUBLE_EQ(fold.moments.var, 1.0);
}

TEST(ClarkMax, DominatingOperandPassesThrough) {
  // Y is far above X: max ~ Y.
  const auto fold = clark_max({0.0, 0.01}, {100.0, 0.02}, 0.0);
  EXPECT_NEAR(fold.moments.mean, 100.0, 1e-9);
  EXPECT_NEAR(fold.moments.var, 0.02, 1e-9);
  EXPECT_NEAR(fold.weight_y, 1.0, 1e-12);
}

TEST(ClarkMax, MeanAtLeastBothOperands) {
  // E[max(X,Y)] >= max(E X, E Y) for any rho.
  for (const double rho : {-0.9, -0.5, 0.0, 0.5, 0.9}) {
    const auto fold = clark_max({1.0, 0.5}, {1.3, 2.0}, rho);
    EXPECT_GE(fold.moments.mean, 1.3 - 1e-12) << "rho=" << rho;
  }
}

TEST(ClarkLinkage, RecoversCovarianceAgainstSimulation) {
  // Z = X (fully): Cov(max(X,Y), X) should match simulation.
  const NormalMoments x{1.0, 1.0}, y{1.5, 0.64};
  const auto fold = clark_max(x, y, 0.0);
  const double cov_formula = clark_linkage(/*cov_xz=*/1.0, /*cov_yz=*/0.0, fold);

  Xoshiro256pp rng(7);
  double sum_m = 0.0, sum_x = 0.0, sum_mx = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    double z1, z2;
    gauss_pair(rng, z1, z2);
    const double xv = x.mean + std::sqrt(x.var) * z1;
    const double yv = y.mean + std::sqrt(y.var) * z2;
    const double m = std::max(xv, yv);
    sum_m += m;
    sum_x += xv;
    sum_mx += m * xv;
  }
  const double cov_sim = sum_mx / n - (sum_m / n) * (sum_x / n);
  EXPECT_NEAR(cov_formula, cov_sim, 5e-3);
}

TEST(SumIndependent, AddsMoments) {
  const auto s = sum_independent({1.0, 2.0}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.var, 6.0);
}

}  // namespace
