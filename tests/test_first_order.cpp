// Tests for the paper's core contribution (Section IV): the closed-form
// first-order approximation. Checks the closed form against the naive
// per-task recompute, against analytic cases, and the O(lambda^2)
// approximation-order property against the exact oracle.

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact.hpp"
#include "core/first_order.hpp"
#include "gen/cholesky.hpp"
#include "gen/lu.hpp"
#include "gen/qr.hpp"
#include "gen/random_dags.hpp"
#include "graph/longest_path.hpp"
#include "graph/topological.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::core::exact_two_state;
using expmk::core::FailureModel;
using expmk::core::first_order;
using expmk::core::first_order_naive;

TEST(FirstOrder, ZeroLambdaGivesCriticalPath) {
  const auto g = expmk::test::diamond(1.0, 2.0, 3.0, 4.0);
  const auto r = first_order(g, FailureModel{0.0});
  EXPECT_DOUBLE_EQ(r.expected_makespan(), 8.0);
  EXPECT_DOUBLE_EQ(r.correction, 0.0);
}

TEST(FirstOrder, SingleTaskClosedForm) {
  // One task of weight a: E = a + lambda * a^2 (first order).
  expmk::graph::Dag g;
  g.add_task(2.0);
  const double lambda = 0.01;
  const auto r = first_order(g, FailureModel{lambda});
  EXPECT_NEAR(r.expected_makespan(), 2.0 + lambda * 4.0, 1e-15);
}

TEST(FirstOrder, ChainClosedForm) {
  // Chain of n tasks, weight a each: every task is critical, so
  // FO = n a + lambda a^2 n.
  const int n = 6;
  const double a = 0.5, lambda = 0.02;
  const auto g = expmk::gen::uniform_chain(n, a);
  const auto r = first_order(g, FailureModel{lambda});
  EXPECT_NEAR(r.expected_makespan(), n * a + lambda * a * a * n, 1e-12);
}

TEST(FirstOrder, ForkJoinOnlyCriticalBranchContributesFully) {
  // FORK(0) -> branches -> JOIN(0): branches b1 = 2 (critical), b2 = 1.
  // d(G) = 2. Doubling b1: d = 4 (delta 2); doubling b2: d = max(2, 2) = 2
  // (delta 0). FO = 2 + lambda * (2*2 + 1*0).
  expmk::graph::Dag g;
  const auto f = g.add_task(0.0);
  const auto j = g.add_task(0.0);
  const auto b1 = g.add_task(2.0);
  const auto b2 = g.add_task(1.0);
  g.add_edge(f, b1);
  g.add_edge(f, b2);
  g.add_edge(b1, j);
  g.add_edge(b2, j);
  const double lambda = 0.05;
  const auto r = first_order(g, FailureModel{lambda});
  EXPECT_NEAR(r.expected_makespan(), 2.0 + lambda * 4.0, 1e-12);
}

TEST(FirstOrder, NearCriticalBranchContributesPartially) {
  // Branches 2 and 1.5: doubling the short one reaches 3 > 2, delta = 1.
  expmk::graph::Dag g;
  const auto b1 = g.add_task(2.0);
  const auto b2 = g.add_task(1.5);
  (void)b1;
  (void)b2;
  const double lambda = 0.03;
  const auto r = first_order(g, FailureModel{lambda});
  // FO = 2 + lambda (2 * 2 + 1.5 * 1).
  EXPECT_NEAR(r.expected_makespan(), 2.0 + lambda * 5.5, 1e-12);
}

TEST(FirstOrder, MonotoneInLambdaAndAboveCriticalPath) {
  const auto g = expmk::gen::cholesky_dag(5);
  double prev = expmk::graph::critical_path_length(g);
  for (const double lambda : {0.001, 0.01, 0.1, 1.0}) {
    const auto r = first_order(g, FailureModel{lambda});
    EXPECT_GE(r.expected_makespan(), prev - 1e-12);
    prev = r.expected_makespan();
  }
}

// The headline property: closed form == naive recompute, everywhere.
class FirstOrderEquivalenceSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FirstOrderEquivalenceSweep, ClosedFormMatchesNaive) {
  const auto seed = GetParam();
  const FailureModel m{0.01};
  for (const auto& g :
       {expmk::gen::erdos_dag(40, 0.15, seed),
        expmk::gen::layered_random(6, 5, 0.4, seed),
        expmk::gen::random_series_parallel(30, seed)}) {
    const double closed = first_order(g, m).expected_makespan();
    const double naive = first_order_naive(g, m);
    EXPECT_NEAR(closed, naive, 1e-10 * std::max(1.0, naive));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FirstOrderEquivalenceSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u));

TEST(FirstOrder, ClosedFormMatchesNaiveOnFactorizations) {
  const FailureModel m{0.05};
  for (const auto& g :
       {expmk::gen::cholesky_dag(6), expmk::gen::lu_dag(5),
        expmk::gen::qr_dag(5)}) {
    EXPECT_NEAR(first_order(g, m).expected_makespan(),
                first_order_naive(g, m), 1e-9);
  }
}

// |FO - exact| = O(lambda^2): halving lambda must shrink the error by
// about 4x (we allow [2.8, 5.5] for higher-order contamination).
TEST(FirstOrder, ErrorIsSecondOrderInLambda) {
  const auto g = expmk::gen::erdos_dag(12, 0.3, 99);
  const double l1 = 0.08, l2 = 0.04;
  const double e1 =
      std::fabs(first_order(g, FailureModel{l1}).expected_makespan() -
                exact_two_state(g, FailureModel{l1}));
  const double e2 =
      std::fabs(first_order(g, FailureModel{l2}).expected_makespan() -
                exact_two_state(g, FailureModel{l2}));
  ASSERT_GT(e1, 0.0);
  ASSERT_GT(e2, 0.0);
  const double ratio = e1 / e2;
  EXPECT_GT(ratio, 2.8) << "e1=" << e1 << " e2=" << e2;
  EXPECT_LT(ratio, 5.5) << "e1=" << e1 << " e2=" << e2;
}

TEST(FirstOrder, TinyLambdaNearExact) {
  const auto g = expmk::test::diamond(0.1, 0.2, 0.3, 0.1);
  const FailureModel m{1e-5};
  const double fo = first_order(g, m).expected_makespan();
  const double exact = exact_two_state(g, m);
  EXPECT_NEAR(fo, exact, 1e-9);
}

TEST(FirstOrder, ZeroWeightTasksContributeNothing) {
  expmk::graph::Dag g;
  const auto a = g.add_task(0.0);
  const auto b = g.add_task(1.0);
  g.add_edge(a, b);
  const auto r = first_order(g, FailureModel{0.1});
  EXPECT_NEAR(r.expected_makespan(), 1.0 + 0.1 * 1.0, 1e-12);
}

TEST(FirstOrder, AgreesWithSuppliedTopoOrder) {
  const auto g = expmk::gen::lu_dag(4);
  const auto topo = expmk::graph::topological_order(g);
  const FailureModel m{0.02};
  EXPECT_DOUBLE_EQ(first_order(g, m).expected_makespan(),
                   first_order(g, m, topo).expected_makespan());
}

}  // namespace
