// Tests for the expmk-serve-v1 framing layer (util/framing.hpp):
//
//  * encode/decode round-trips, including multiple frames per feed and a
//    one-byte-at-a-time transport chunking;
//  * the encoder refuses what the decoder would poison on (empty,
//    oversized), so a conforming peer can't emit a bad frame;
//  * zero-length and oversized headers poison the decoder permanently;
//  * truncation is NeedMore mid-stream, visible via pending() at EOF.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/framing.hpp"

namespace {

using expmk::util::decode_frame_header;
using expmk::util::encode_frame;
using expmk::util::encode_frame_header;
using expmk::util::FrameDecoder;
using expmk::util::kFrameHeaderBytes;

TEST(ServeFraming, HeaderRoundTrip) {
  unsigned char buf[4];
  for (const std::uint32_t n :
       {1u, 2u, 255u, 256u, 65536u, 0x01020304u, 0xFFFFFFFFu}) {
    encode_frame_header(n, buf);
    EXPECT_EQ(decode_frame_header(buf), n);
  }
  encode_frame_header(0x01020304u, buf);
  EXPECT_EQ(buf[0], 0x01);  // big-endian on the wire
  EXPECT_EQ(buf[3], 0x04);
}

TEST(ServeFraming, EncodeThenDecodeRoundTrips) {
  const std::string payload = R"({"v":1,"type":"stats"})";
  const std::string frame = encode_frame(payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());

  FrameDecoder decoder;
  decoder.feed(frame);
  std::string out;
  ASSERT_EQ(decoder.next(out), FrameDecoder::Status::Frame);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(decoder.next(out), FrameDecoder::Status::NeedMore);
  EXPECT_EQ(decoder.pending(), 0u);
}

TEST(ServeFraming, ByteAtATimeChunking) {
  const std::string frame = encode_frame("hello") + encode_frame("world");
  FrameDecoder decoder;
  std::vector<std::string> payloads;
  std::string out;
  for (const char byte : frame) {
    decoder.feed(std::string_view(&byte, 1));
    while (decoder.next(out) == FrameDecoder::Status::Frame) {
      payloads.push_back(out);
    }
  }
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], "hello");
  EXPECT_EQ(payloads[1], "world");
}

TEST(ServeFraming, ManyFramesInOneFeed) {
  std::string stream;
  for (int i = 0; i < 16; ++i) {
    stream += encode_frame("payload-" + std::to_string(i));
  }
  FrameDecoder decoder;
  decoder.feed(stream);
  std::string out;
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(decoder.next(out), FrameDecoder::Status::Frame) << i;
    EXPECT_EQ(out, "payload-" + std::to_string(i));
  }
  EXPECT_EQ(decoder.next(out), FrameDecoder::Status::NeedMore);
}

TEST(ServeFraming, EncoderRejectsEmptyAndOversized) {
  EXPECT_THROW((void)encode_frame(""), std::invalid_argument);
  EXPECT_THROW((void)encode_frame(std::string(17, 'x'), 16),
               std::invalid_argument);
  EXPECT_NO_THROW((void)encode_frame(std::string(16, 'x'), 16));
}

TEST(ServeFraming, ZeroLengthHeaderPoisons) {
  FrameDecoder decoder;
  decoder.feed(std::string_view("\0\0\0\0", 4));
  std::string out;
  ASSERT_EQ(decoder.next(out), FrameDecoder::Status::Error);
  EXPECT_FALSE(decoder.error().empty());
  // Poisoned for good: further feeds don't resurrect the stream.
  decoder.feed(encode_frame("ok"));
  EXPECT_EQ(decoder.next(out), FrameDecoder::Status::Error);
}

TEST(ServeFraming, OversizedHeaderPoisons) {
  FrameDecoder decoder(/*max_frame_bytes=*/64);
  unsigned char header[4];
  encode_frame_header(65, header);
  decoder.feed(
      std::string_view(reinterpret_cast<const char*>(header), 4));
  std::string out;
  ASSERT_EQ(decoder.next(out), FrameDecoder::Status::Error);
  EXPECT_NE(decoder.error().find("65"), std::string::npos);
}

TEST(ServeFraming, TruncationIsNeedMoreWithPendingBytes) {
  const std::string frame = encode_frame("truncated-payload");
  FrameDecoder decoder;
  decoder.feed(std::string_view(frame).substr(0, frame.size() - 3));
  std::string out;
  EXPECT_EQ(decoder.next(out), FrameDecoder::Status::NeedMore);
  EXPECT_GT(decoder.pending(), 0u);  // EOF now would mean a truncated frame
  decoder.feed(std::string_view(frame).substr(frame.size() - 3));
  ASSERT_EQ(decoder.next(out), FrameDecoder::Status::Frame);
  EXPECT_EQ(out, "truncated-payload");
  EXPECT_EQ(decoder.pending(), 0u);
}

}  // namespace
