// Tests for core/verified: the first-order estimator with explicit
// verification costs.

#include <gtest/gtest.h>

#include "core/first_order.hpp"
#include "core/verified.hpp"
#include "gen/cholesky.hpp"
#include "gen/random_dags.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::core::FailureModel;
using expmk::core::first_order;
using expmk::core::first_order_verified;
using expmk::core::VerificationCosts;

TEST(Verified, ZeroCostMatchesPlainFirstOrder) {
  const auto g = expmk::gen::cholesky_dag(5);
  const FailureModel m{0.02};
  const auto plain = first_order(g, m);
  const auto verified = first_order_verified(g, m, {});
  EXPECT_DOUBLE_EQ(verified.expected_makespan(), plain.expected_makespan());
  EXPECT_DOUBLE_EQ(verified.critical_path, plain.critical_path);
}

TEST(Verified, RelativeCostStretchesCriticalPath) {
  const auto g = expmk::gen::cholesky_dag(4);
  const FailureModel m{0.01};
  VerificationCosts costs;
  costs.relative_cost = 0.10;  // v_i = 10% of a_i
  const auto r = first_order_verified(g, m, costs);
  const auto plain = first_order(g, m);
  EXPECT_NEAR(r.critical_path, 1.10 * plain.critical_path, 1e-9);
  EXPECT_GT(r.expected_makespan(), plain.expected_makespan());
}

TEST(Verified, SingleTaskClosedForm) {
  // One task: weight a, verification v. d = a + v; failure doubles it but
  // the failure mass is lambda * a only:
  //   E = (a+v) + lambda * a * (a+v).
  expmk::graph::Dag g;
  g.add_task(2.0);
  const double lambda = 0.01, v = 0.5;
  VerificationCosts costs;
  costs.per_task = {v};
  const auto r = first_order_verified(g, FailureModel{lambda}, costs);
  EXPECT_NEAR(r.expected_makespan(), 2.5 + lambda * 2.0 * 2.5, 1e-12);
}

TEST(Verified, PerTaskCostsValidated) {
  const auto g = expmk::test::diamond();
  VerificationCosts bad_size;
  bad_size.per_task = {0.1};
  EXPECT_THROW((void)first_order_verified(g, FailureModel{0.01}, bad_size),
               std::invalid_argument);
  VerificationCosts negative;
  negative.per_task = {0.1, -0.1, 0.1, 0.1};
  EXPECT_THROW((void)first_order_verified(g, FailureModel{0.01}, negative),
               std::invalid_argument);
  VerificationCosts neg_rel;
  neg_rel.relative_cost = -0.5;
  EXPECT_THROW((void)first_order_verified(g, FailureModel{0.01}, neg_rel),
               std::invalid_argument);
}

TEST(Verified, EquivalentToPlainOnInflatedWeightsWhenUniform) {
  // With v_i = c * a_i, effective weights are (1+c) a_i; the correction
  // uses failure mass a_i, so the verified result equals the plain first
  // order on the inflated graph scaled back in the failure mass:
  //   correction_verified = correction_plain_on_inflated / (1+c).
  const auto g = expmk::gen::erdos_dag(20, 0.2, 11);
  const double c = 0.25, lambda = 0.02;
  VerificationCosts costs;
  costs.relative_cost = c;
  const auto verified = first_order_verified(g, FailureModel{lambda}, costs);

  expmk::graph::Dag inflated = g;
  for (expmk::graph::TaskId i = 0; i < g.task_count(); ++i) {
    inflated.set_weight(i, (1.0 + c) * g.weight(i));
  }
  const auto plain = first_order(inflated, FailureModel{lambda});
  EXPECT_NEAR(verified.critical_path, plain.critical_path, 1e-12);
  EXPECT_NEAR(verified.correction, plain.correction / (1.0 + c), 1e-9);
}

TEST(Verified, CostOnCriticalTaskMattersMore) {
  // Two independent tasks 2.0 and 1.0: verification on the critical task
  // raises the estimate more than the same absolute cost on the slack one.
  expmk::graph::Dag g;
  g.add_task(2.0);
  g.add_task(1.0);
  const FailureModel m{0.01};
  VerificationCosts on_critical;
  on_critical.per_task = {0.3, 0.0};
  VerificationCosts on_slack;
  on_slack.per_task = {0.0, 0.3};
  EXPECT_GT(first_order_verified(g, m, on_critical).expected_makespan(),
            first_order_verified(g, m, on_slack).expected_makespan());
}

}  // namespace
