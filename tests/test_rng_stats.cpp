// Unit tests for prob/rng and prob/statistics: determinism, stream
// independence, basic distributional sanity, Welford merge exactness, and
// the normal CDF/quantile pair.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "prob/rng.hpp"
#include "prob/statistics.hpp"

namespace {

using expmk::prob::RunningStats;
using expmk::prob::Xoshiro256pp;

TEST(Rng, DeterministicForFixedSeed) {
  Xoshiro256pp a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, StreamsDiffer) {
  Xoshiro256pp a(1, 0), b(1, 1);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a() != b()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256pp rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformPositiveNeverZero) {
  Xoshiro256pp rng(9);
  for (int i = 0; i < 100000; ++i) ASSERT_GT(rng.uniform_positive(), 0.0);
}

TEST(Rng, UniformityChiSquareRough) {
  // 16 buckets, 160k draws: chi^2(15) should be far below 100.
  Xoshiro256pp rng(11);
  std::vector<int> counts(16, 0);
  const int n = 160000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform() * 16.0)];
  }
  const double expected = n / 16.0;
  double chi2 = 0.0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 100.0);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Xoshiro256pp rng(13);
  const double lambda = 4.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.01);
}

TEST(Rng, ExponentialZeroRateIsInfinite) {
  Xoshiro256pp rng(13);
  EXPECT_TRUE(std::isinf(rng.exponential(0.0)));
}

TEST(Rng, BernoulliFrequency) {
  Xoshiro256pp rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.2) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.2, 0.01);
}

TEST(Rng, BoundedBelowIsInRangeAndRoughlyUniform) {
  Xoshiro256pp rng(19);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    ++counts[v];
  }
  for (const int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(RunningStats, MeanVarianceAgainstClosedForm) {
  RunningStats s;
  for (int i = 1; i <= 5; ++i) s.push(i);  // 1..5
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);  // sample variance of 1..5
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_EQ(s.count(), 5u);
}

TEST(RunningStats, MergeMatchesSinglePass) {
  Xoshiro256pp rng(21);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 10.0 - 3.0;
    whole.push(x);
    (i < 400 ? left : right).push(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.push(1.0);
  a.push(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  RunningStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(RunningStats, CiHalfWidthShrinksWithSamples) {
  Xoshiro256pp rng(23);
  RunningStats small, large;
  for (int i = 0; i < 100; ++i) small.push(rng.uniform());
  for (int i = 0; i < 10000; ++i) large.push(rng.uniform());
  EXPECT_GT(small.ci_half_width(0.95), large.ci_half_width(0.95));
  EXPECT_GT(large.ci_half_width(0.99), large.ci_half_width(0.95));
  EXPECT_THROW((void)large.ci_half_width(1.5), std::invalid_argument);
}

TEST(NormalFunctions, CdfAndPdfKnownValues) {
  using expmk::prob::normal_cdf;
  using expmk::prob::normal_pdf;
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.9750021, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.96), 0.0249979, 1e-6);
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804, 1e-9);
}

TEST(NormalFunctions, InverseCdfRoundTrips) {
  using expmk::prob::inverse_normal_cdf;
  using expmk::prob::normal_cdf;
  for (const double p : {0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999}) {
    EXPECT_NEAR(normal_cdf(inverse_normal_cdf(p)), p, 1e-9) << "p=" << p;
  }
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959964, 1e-5);
  EXPECT_THROW((void)inverse_normal_cdf(0.0), std::invalid_argument);
  EXPECT_THROW((void)inverse_normal_cdf(1.0), std::invalid_argument);
}

}  // namespace
