// Tests for graph/serialize: round-trips, format tolerance (comments,
// blank lines), and precise parse errors.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "gen/cholesky.hpp"
#include "gen/random_dags.hpp"
#include "graph/serialize.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::graph::Dag;
using expmk::graph::load_taskgraph;
using expmk::graph::save_taskgraph;
using expmk::graph::taskgraph_from_string;
using expmk::graph::to_taskgraph;

TEST(Serialize, RoundTripPreservesStructure) {
  const auto g = expmk::gen::cholesky_dag(4);
  const auto parsed = taskgraph_from_string(to_taskgraph(g));
  ASSERT_EQ(parsed.task_count(), g.task_count());
  ASSERT_EQ(parsed.edge_count(), g.edge_count());
  for (expmk::graph::TaskId i = 0; i < g.task_count(); ++i) {
    EXPECT_EQ(parsed.name(i), g.name(i));
    EXPECT_DOUBLE_EQ(parsed.weight(i), g.weight(i));
    EXPECT_EQ(parsed.out_degree(i), g.out_degree(i));
  }
}

TEST(Serialize, RoundTripPreservesIds) {
  const auto g = expmk::gen::erdos_dag(25, 0.2, 3);
  const auto parsed = taskgraph_from_string(to_taskgraph(g));
  for (expmk::graph::TaskId u = 0; u < g.task_count(); ++u) {
    const auto a = g.successors(u);
    const auto b = parsed.successors(u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(Serialize, UnnamedTasksGetStableAutoNames) {
  Dag g;
  const auto a = g.add_task(1.0);
  const auto b = g.add_task(2.0);
  g.add_edge(a, b);
  const auto parsed = taskgraph_from_string(to_taskgraph(g));
  EXPECT_EQ(parsed.name(0), "t0");
  EXPECT_EQ(parsed.name(1), "t1");
  EXPECT_EQ(parsed.edge_count(), 1u);
}

TEST(Serialize, ToleratesCommentsAndBlankLines) {
  const auto g = taskgraph_from_string(
      "expmk-taskgraph 1\n"
      "# a comment\n"
      "\n"
      "task a 1.5   # trailing comment\n"
      "task b 2.5\n"
      "edge a b\n");
  EXPECT_EQ(g.task_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(g.weight(g.find_by_name("a")), 1.5);
}

TEST(Serialize, ParseErrorsCarryLineNumbers) {
  const auto expect_error = [](const std::string& text,
                               const std::string& needle) {
    try {
      (void)taskgraph_from_string(text);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("", "empty");
  expect_error("bogus-header 1\n", "line 1");
  expect_error("expmk-taskgraph 9\n", "version");
  expect_error("expmk-taskgraph 1\nfrob a 1\n", "unknown directive");
  expect_error("expmk-taskgraph 1\ntask a 1\ntask a 2\n", "duplicate");
  expect_error("expmk-taskgraph 1\ntask a 1\nedge a b\n", "unknown task");
  expect_error("expmk-taskgraph 1\ntask a 1\nedge a a\n", "self loop");
  expect_error("expmk-taskgraph 1\ntask a -1\n", "negative");
  expect_error("expmk-taskgraph 1\ntask a\n", "expected");
}

TEST(Serialize, FileHelpersRoundTrip) {
  const auto g = expmk::test::diamond(0.1, 0.2, 0.3, 0.4);
  const std::string path = "/tmp/expmk_serialize_test.tg";
  save_taskgraph(path, g);
  const auto loaded = load_taskgraph(path);
  EXPECT_EQ(loaded.task_count(), 4u);
  EXPECT_EQ(loaded.edge_count(), 4u);
  std::remove(path.c_str());
  EXPECT_THROW((void)load_taskgraph("/nonexistent/dir/x.tg"),
               std::runtime_error);
}

TEST(Serialize, LargeGraphRoundTripIsExact) {
  const auto g = expmk::gen::cholesky_dag(8);
  const auto parsed = taskgraph_from_string(to_taskgraph(g));
  EXPECT_EQ(parsed.task_count(), g.task_count());
  EXPECT_EQ(parsed.edge_count(), g.edge_count());
  EXPECT_DOUBLE_EQ(parsed.total_weight(), g.total_weight());
}

// Version-2 files round-trip per-task failure rates bit-exactly alongside
// the weights, so heterogeneous scenarios can be saved and reloaded.
TEST(Serialize, RatesRoundTripBitExactly) {
  const auto g = expmk::gen::erdos_dag(12, 0.25, 9);
  std::vector<double> rates(g.task_count());
  for (expmk::graph::TaskId i = 0; i < g.task_count(); ++i) {
    // Awkward doubles on purpose: max_digits10 must round-trip them.
    rates[i] = 0.0137 * (static_cast<double>(i) + 1.0) / 3.0;
  }

  const std::string text = to_taskgraph(g, rates);
  EXPECT_EQ(text.rfind("expmk-taskgraph 2", 0), 0u);
  const auto file = expmk::graph::taskgraph_file_from_string(text);
  ASSERT_TRUE(file.has_rates());
  ASSERT_EQ(file.rates.size(), g.task_count());
  for (expmk::graph::TaskId i = 0; i < g.task_count(); ++i) {
    EXPECT_EQ(file.rates[i], rates[i]) << i;
    EXPECT_EQ(file.dag.weight(i), g.weight(i)) << i;
  }
  EXPECT_EQ(file.dag.edge_count(), g.edge_count());

  // The rate-less reader accepts v2 files and just drops the rates.
  const auto dag_only = taskgraph_from_string(text);
  EXPECT_EQ(dag_only.task_count(), g.task_count());

  // Rate-less graphs still write the historical v1 format, byte-stable.
  EXPECT_EQ(to_taskgraph(g).rfind("expmk-taskgraph 1", 0), 0u);

  // Writer validation: size mismatch and bad rates fail loudly.
  EXPECT_THROW((void)to_taskgraph(g, std::vector<double>{0.1}),
               std::invalid_argument);
  std::vector<double> negative(g.task_count(), -1.0);
  EXPECT_THROW((void)to_taskgraph(g, negative), std::invalid_argument);

  // A v2 file whose task lines lack the rate column is malformed.
  EXPECT_THROW((void)taskgraph_from_string("expmk-taskgraph 2\ntask a 1\n"),
               std::invalid_argument);

  // File helpers with rates.
  const std::string path = "/tmp/expmk_serialize_rates_test.tg";
  expmk::graph::save_taskgraph(path, g, rates);
  const auto loaded = expmk::graph::load_taskgraph_file(path);
  ASSERT_TRUE(loaded.has_rates());
  EXPECT_EQ(loaded.rates, file.rates);
  std::remove(path.c_str());
}

}  // namespace
