// Cross-cutting property tests: algebraic laws of the probability
// substrate, invariants tying the estimators together, and behavioural
// equivalences that must hold on *every* graph family. These complement
// the per-module unit tests with randomized sweeps (parameterized over
// seeds/families) — the "property-based" layer of the suite.

#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "core/exact.hpp"
#include "core/failure_model.hpp"
#include "core/first_order.hpp"
#include "core/second_order.hpp"
#include "gen/cholesky.hpp"
#include "gen/lu.hpp"
#include "gen/qr.hpp"
#include "gen/random_dags.hpp"
#include "graph/longest_path.hpp"
#include "graph/serialize.hpp"
#include "graph/topological.hpp"
#include "mc/engine.hpp"
#include "normal/sculli.hpp"
#include "prob/discrete_distribution.hpp"
#include "prob/rng.hpp"
#include "spgraph/dodin.hpp"
#include "spgraph/sp_reduce.hpp"
#include "test_helpers.hpp"

namespace {

using D = expmk::prob::DiscreteDistribution;
using expmk::core::FailureModel;
using expmk::prob::Xoshiro256pp;

D random_distribution(Xoshiro256pp& rng, std::size_t max_atoms = 5) {
  std::vector<expmk::prob::Atom> atoms;
  const std::size_t n = 1 + rng.below(max_atoms);
  for (std::size_t i = 0; i < n; ++i) {
    atoms.push_back({rng.uniform() * 10.0, 0.05 + rng.uniform()});
  }
  return D::from_atoms(std::move(atoms));
}

// ---------------------------------------------------------------------
// Distribution algebra laws.
// ---------------------------------------------------------------------

class DistributionLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistributionLaws, ConvolutionIsCommutative) {
  Xoshiro256pp rng(GetParam());
  const D x = random_distribution(rng);
  const D y = random_distribution(rng);
  EXPECT_TRUE(D::convolve(x, y).approx_equals(D::convolve(y, x), 1e-9));
}

TEST_P(DistributionLaws, ConvolutionIsAssociativeInMean) {
  Xoshiro256pp rng(GetParam() + 100);
  const D x = random_distribution(rng);
  const D y = random_distribution(rng);
  const D z = random_distribution(rng);
  const D left = D::convolve(D::convolve(x, y), z);
  const D right = D::convolve(x, D::convolve(y, z));
  EXPECT_NEAR(left.mean(), right.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), right.variance(), 1e-9);
}

TEST_P(DistributionLaws, MaxIsCommutativeAndIdempotentOnPoints) {
  Xoshiro256pp rng(GetParam() + 200);
  const D x = random_distribution(rng);
  const D y = random_distribution(rng);
  EXPECT_TRUE(D::max_of(x, y).approx_equals(D::max_of(y, x), 1e-9));
  const D p = D::point(3.0);
  EXPECT_TRUE(D::max_of(p, p).approx_equals(p, 1e-12));
}

TEST_P(DistributionLaws, ConvolveWithPointIsShift) {
  Xoshiro256pp rng(GetParam() + 300);
  const D x = random_distribution(rng);
  EXPECT_TRUE(
      D::convolve(x, D::point(2.5)).approx_equals(x.shifted(2.5), 1e-9));
}

TEST_P(DistributionLaws, MaxDominatesBothOperandsStochastically) {
  Xoshiro256pp rng(GetParam() + 400);
  const D x = random_distribution(rng);
  const D y = random_distribution(rng);
  const D m = D::max_of(x, y);
  // F_max(t) <= min(F_x(t), F_y(t)) pointwise.
  for (const auto& at : m.atoms()) {
    EXPECT_LE(m.cdf(at.value), x.cdf(at.value) + 1e-12);
    EXPECT_LE(m.cdf(at.value), y.cdf(at.value) + 1e-12);
  }
  EXPECT_GE(m.mean(), std::max(x.mean(), y.mean()) - 1e-12);
}

TEST_P(DistributionLaws, TruncationIsMeanPreservingAndVarianceShrinking) {
  Xoshiro256pp rng(GetParam() + 500);
  D d = random_distribution(rng);
  for (int i = 0; i < 4; ++i) d = D::convolve(d, random_distribution(rng));
  const D t = d.truncated(8);
  EXPECT_LE(t.size(), 8u);
  EXPECT_NEAR(t.mean(), d.mean(), 1e-9);
  EXPECT_LE(t.variance(), d.variance() + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributionLaws,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---------------------------------------------------------------------
// Estimator invariants across graph families.
// ---------------------------------------------------------------------

struct FamilyCase {
  const char* name;
  expmk::graph::Dag (*make)(std::uint64_t seed);
};

expmk::graph::Dag make_erdos(std::uint64_t s) {
  return expmk::gen::erdos_dag(25, 0.2, s);
}
expmk::graph::Dag make_layered(std::uint64_t s) {
  return expmk::gen::layered_random(5, 5, 0.4, s);
}
expmk::graph::Dag make_sp(std::uint64_t s) {
  return expmk::gen::random_series_parallel(25, s);
}
expmk::graph::Dag make_chol(std::uint64_t s) {
  return expmk::gen::cholesky_dag(3 + static_cast<int>(s % 4));
}
expmk::graph::Dag make_lu(std::uint64_t s) {
  return expmk::gen::lu_dag(3 + static_cast<int>(s % 3));
}

class EstimatorInvariants
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  expmk::graph::Dag make() const {
    static constexpr FamilyCase kFamilies[] = {
        {"erdos", make_erdos},   {"layered", make_layered},
        {"sp", make_sp},         {"cholesky", make_chol},
        {"lu", make_lu},
    };
    const auto& fam = kFamilies[std::get<0>(GetParam())];
    return fam.make(std::get<1>(GetParam()));
  }
};

TEST_P(EstimatorInvariants, FirstOrderSandwichedByBounds) {
  const auto g = make();
  const FailureModel m = expmk::core::calibrate(g, 0.001);
  const auto b = expmk::core::makespan_bounds(g, m);
  const double fo = expmk::core::first_order(g, m).expected_makespan();
  EXPECT_GE(fo, b.failure_free - 1e-12);
  EXPECT_LE(fo, b.level_upper * (1.0 + 1e-6));
}

TEST_P(EstimatorInvariants, ClosedFormEqualsNaiveEverywhere) {
  const auto g = make();
  const FailureModel m{0.03};
  EXPECT_NEAR(expmk::core::first_order(g, m).expected_makespan(),
              expmk::core::first_order_naive(g, m), 1e-9);
}

TEST_P(EstimatorInvariants, SecondOrderReducesToFirstOrderAsLambdaShrinks) {
  const auto g = make();
  // (SO - FO) is O(lambda^2): quartering lambda shrinks it ~16x.
  const FailureModel m1{0.04}, m2{0.01};
  const double gap1 =
      std::fabs(expmk::core::second_order(g, m1).expected_makespan -
                expmk::core::first_order(g, m1).expected_makespan());
  const double gap2 =
      std::fabs(expmk::core::second_order(g, m2).expected_makespan -
                expmk::core::first_order(g, m2).expected_makespan());
  if (gap1 > 1e-12 && gap2 > 1e-13) {
    EXPECT_GT(gap1 / gap2, 8.0);
  }
}

TEST_P(EstimatorInvariants, SerializationDoesNotChangeEstimates) {
  const auto g = make();
  const auto round_tripped =
      expmk::graph::taskgraph_from_string(expmk::graph::to_taskgraph(g));
  const FailureModel m{0.02};
  // First order is order-independent: bit-exact across the round trip.
  EXPECT_DOUBLE_EQ(
      expmk::core::first_order(g, m).expected_makespan(),
      expmk::core::first_order(round_tripped, m).expected_makespan());
  // Sculli folds predecessors pairwise with Clark's formulas, which are
  // NOT associative; serialization canonicalizes edge order (grouped by
  // source), so the fold order may differ and the estimate moves at the
  // 1e-7..1e-4 level (a documented property of Sculli's method — Canon &
  // Jeannot discuss the same sensitivity). Assert closeness, not
  // identity.
  const double s1 = expmk::normal::sculli(g, m).expected_makespan();
  const double s2 =
      expmk::normal::sculli(round_tripped, m).expected_makespan();
  EXPECT_NEAR(s1, s2, 1e-4 * s1);
}

TEST_P(EstimatorInvariants, AllEstimatorsAgreeAtLambdaZero) {
  const auto g = make();
  const FailureModel zero{0.0};
  const double d = expmk::graph::critical_path_length(g);
  EXPECT_NEAR(expmk::core::first_order(g, zero).expected_makespan(), d,
              1e-9);
  EXPECT_NEAR(expmk::core::second_order(g, zero).expected_makespan, d,
              1e-9);
  EXPECT_NEAR(expmk::normal::sculli(g, zero).expected_makespan(), d, 1e-9);
  EXPECT_NEAR(
      expmk::sp::dodin_two_state(g, zero, {.max_atoms = 64})
          .expected_makespan(),
      d, 1e-9);
}

TEST_P(EstimatorInvariants, McAgreesWithFirstOrderAtLowLambda) {
  const auto g = make();
  const FailureModel m = expmk::core::calibrate(g, 0.0005);
  expmk::mc::McConfig cfg;
  cfg.trials = 40'000;
  cfg.retry = expmk::core::RetryModel::TwoState;
  const auto mc = expmk::mc::run_monte_carlo(g, m, cfg);
  const double fo = expmk::core::first_order(g, m).expected_makespan();
  // FO error is O(lambda^2) ~ 1e-6 relative here; the MC CI dominates.
  EXPECT_NEAR(fo, mc.mean, 5.0 * mc.ci95_half_width + 1e-6 * mc.mean);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSeeds, EstimatorInvariants,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(1u, 2u, 3u)));

// ---------------------------------------------------------------------
// Spot properties that need only one instantiation.
// ---------------------------------------------------------------------

TEST(Properties, FirstOrderIsLinearInLambda) {
  // FO(lambda) = d + lambda * C exactly (the correction is linear).
  const auto g = expmk::gen::qr_dag(4);
  const auto f1 = expmk::core::first_order(g, FailureModel{0.01});
  const auto f2 = expmk::core::first_order(g, FailureModel{0.02});
  const auto f3 = expmk::core::first_order(g, FailureModel{0.03});
  const double d1 = f2.expected_makespan() - f1.expected_makespan();
  const double d2 = f3.expected_makespan() - f2.expected_makespan();
  EXPECT_NEAR(d1, d2, 1e-12);
}

TEST(Properties, ScalingWeightsScalesEstimatesWithRescaledLambda) {
  // Replacing a_i -> c a_i and lambda -> lambda / c leaves every
  // probability p_i invariant, so FO scales exactly by c.
  const auto g = expmk::gen::cholesky_dag(4);
  expmk::graph::Dag scaled = g;
  const double c = 3.0;
  for (expmk::graph::TaskId i = 0; i < g.task_count(); ++i) {
    scaled.set_weight(i, c * g.weight(i));
  }
  const double lambda = 0.05;
  const double fo = expmk::core::first_order(g, FailureModel{lambda})
                        .expected_makespan();
  const double fo_scaled =
      expmk::core::first_order(scaled, FailureModel{lambda / c})
          .expected_makespan();
  EXPECT_NEAR(fo_scaled, c * fo, 1e-9);
}

TEST(Properties, DodinExactEqualsSpEvaluationOnSpGraphs) {
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    const auto g = expmk::gen::random_series_parallel(18, seed);
    const FailureModel m{0.1};
    std::vector<D> dists;
    for (expmk::graph::TaskId i = 0; i < g.task_count(); ++i) {
      const double a = g.weight(i);
      dists.push_back(a > 0.0 ? D::two_state(a, m.p_success(a))
                              : D::point(0.0));
    }
    const auto sp_eval = expmk::sp::evaluate_sp(
        expmk::sp::ArcNetwork::from_dag(g, std::move(dists)));
    ASSERT_TRUE(sp_eval.is_series_parallel);
    const auto dodin = expmk::sp::dodin_two_state(g, m, {.max_atoms = 0});
    EXPECT_NEAR(dodin.expected_makespan(), sp_eval.makespan.mean(), 1e-10);
  }
}

TEST(Properties, AddingAnEdgeNeverShrinksTheExpectedMakespan) {
  // More precedence = (weakly) longer makespan, for exact and FO alike.
  Xoshiro256pp rng(77);
  auto g = expmk::gen::erdos_dag(10, 0.2, 9);
  const FailureModel m{0.05};
  const auto topo = expmk::graph::topological_order(g);
  const auto rank = expmk::graph::ranks_of(topo);
  // Add a random forward edge not present yet.
  for (int added = 0; added < 5;) {
    const auto u = static_cast<expmk::graph::TaskId>(rng.below(10));
    const auto v = static_cast<expmk::graph::TaskId>(rng.below(10));
    if (u == v || rank[u] >= rank[v]) continue;
    const auto succ = g.successors(u);
    if (std::find(succ.begin(), succ.end(), v) != succ.end()) continue;
    const double before_exact = expmk::core::exact_two_state(g, m);
    const double before_fo =
        expmk::core::first_order(g, m).expected_makespan();
    g.add_edge(u, v);
    ++added;
    EXPECT_GE(expmk::core::exact_two_state(g, m), before_exact - 1e-12);
    EXPECT_GE(expmk::core::first_order(g, m).expected_makespan(),
              before_fo - 1e-12);
  }
}

TEST(Properties, TwoStateExactIsMonotoneInLambda) {
  const auto g = expmk::test::diamond(0.4, 0.3, 0.5, 0.2);
  double prev = 0.0;
  for (const double lambda : {0.0, 0.05, 0.1, 0.2, 0.4, 0.8}) {
    const double e = expmk::core::exact_two_state(g, FailureModel{lambda});
    EXPECT_GE(e, prev - 1e-12) << lambda;
    prev = e;
  }
}

TEST(Properties, QrAlwaysCostsMoreThanLuSameSize) {
  // Same DAG shape, ~2x kernel weights: every estimator must rank QR
  // above LU for the same k and pfail.
  for (const int k : {4, 6, 8}) {
    const auto lu = expmk::gen::lu_dag(k);
    const auto qr = expmk::gen::qr_dag(k);
    const FailureModel mlu = expmk::core::calibrate(lu, 0.01);
    const FailureModel mqr = expmk::core::calibrate(qr, 0.01);
    EXPECT_GT(expmk::core::first_order(qr, mqr).expected_makespan(),
              expmk::core::first_order(lu, mlu).expected_makespan());
  }
}

}  // namespace
