// Tests for the exact enumeration oracles themselves (they back every
// approximation test, so they get their own analytic validation).

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact.hpp"
#include "gen/random_dags.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::core::exact_geometric;
using expmk::core::exact_two_state;
using expmk::core::exact_two_state_distribution;
using expmk::core::FailureModel;

TEST(Exact, SingleTaskClosedForm) {
  expmk::graph::Dag g;
  g.add_task(2.0);
  const double lambda = 0.1;
  const double p = std::exp(-lambda * 2.0);
  EXPECT_NEAR(exact_two_state(g, FailureModel{lambda}),
              2.0 * p + 4.0 * (1.0 - p), 1e-14);
}

TEST(Exact, ChainIsSumOfExpectations) {
  // On a chain the makespan is the SUM of the 2-state durations, so the
  // expectation is the sum of per-task expectations (no max involved).
  const auto g = expmk::gen::uniform_chain(5, 0.4);
  const double lambda = 0.2;
  const double p = std::exp(-lambda * 0.4);
  const double per_task = 0.4 * p + 0.8 * (1.0 - p);
  EXPECT_NEAR(exact_two_state(g, FailureModel{lambda}), 5.0 * per_task,
              1e-12);
}

TEST(Exact, TwoIndependentTasksMaxFormula) {
  // Tasks a=1, b=0.8: E[max] enumerated by hand over 4 outcomes.
  expmk::graph::Dag g;
  g.add_task(1.0);
  g.add_task(0.8);
  const double lambda = 0.3;
  const double pa = std::exp(-lambda * 1.0), pb = std::exp(-lambda * 0.8);
  const double expect = pa * pb * std::max(1.0, 0.8) +
                        pa * (1 - pb) * std::max(1.0, 1.6) +
                        (1 - pa) * pb * std::max(2.0, 0.8) +
                        (1 - pa) * (1 - pb) * std::max(2.0, 1.6);
  EXPECT_NEAR(exact_two_state(g, FailureModel{lambda}), expect, 1e-14);
}

TEST(Exact, ZeroLambdaIsCriticalPath) {
  const auto g = expmk::test::diamond(1.0, 2.0, 3.0, 4.0);
  EXPECT_DOUBLE_EQ(exact_two_state(g, FailureModel{0.0}), 8.0);
}

TEST(Exact, DistributionMatchesMeanAndMass) {
  const auto g = expmk::test::diamond(0.5, 0.25, 0.75, 0.5);
  const FailureModel m{0.2};
  const auto dist = exact_two_state_distribution(g, m);
  EXPECT_NEAR(dist.mean(), exact_two_state(g, m), 1e-12);
  double total = 0.0;
  for (const auto& at : dist.atoms()) total += at.prob;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Extremes: all-success and all-fail makespans.
  EXPECT_DOUBLE_EQ(dist.min(), 1.75);  // 0.5 + 0.75 + 0.5
  EXPECT_DOUBLE_EQ(dist.max(), 3.5);
}

TEST(Exact, RejectsOversizedGraphs) {
  const auto g = expmk::gen::independent_tasks(30, 1);
  EXPECT_THROW((void)exact_two_state(g, FailureModel{0.01}),
               std::invalid_argument);
}

TEST(Exact, GeometricReducesToTwoStateAtCapTwo) {
  const auto g = expmk::test::diamond(0.4, 0.3, 0.5, 0.2);
  const FailureModel m{0.1};
  // With max_executions = 2 the truncated geometric IS the 2-state law.
  EXPECT_NEAR(exact_geometric(g, m, 2), exact_two_state(g, m), 1e-12);
}

TEST(Exact, GeometricIncreasesWithCapAndConverges) {
  const auto g = expmk::test::diamond(0.4, 0.3, 0.5, 0.2);
  const FailureModel m{0.8};  // large lambda so retries matter
  const double e2 = exact_geometric(g, m, 2);
  const double e3 = exact_geometric(g, m, 3);
  const double e5 = exact_geometric(g, m, 5);
  const double e7 = exact_geometric(g, m, 7);
  EXPECT_LT(e2, e3);
  EXPECT_LT(e3, e5);
  EXPECT_LE(e5, e7);
  // Convergence: increments shrink geometrically.
  EXPECT_LT(e7 - e5, (e3 - e2) * 0.5);
}

TEST(Exact, GeometricRejectsHugeStateSpaces) {
  const auto g = expmk::gen::independent_tasks(20, 2);
  EXPECT_THROW((void)exact_geometric(g, FailureModel{0.1}, 8),
               std::invalid_argument);
  EXPECT_THROW((void)exact_geometric(g, FailureModel{0.1}, 0),
               std::invalid_argument);
}

}  // namespace
