// Tests for graph/metrics and sched/heft (insertion-based HEFT).

#include <gtest/gtest.h>

#include <sstream>

#include "gen/cholesky.hpp"
#include "gen/lu.hpp"
#include "gen/random_dags.hpp"
#include "graph/longest_path.hpp"
#include "graph/metrics.hpp"
#include "sched/heft.hpp"
#include "sched/priorities.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::graph::compute_metrics;
using expmk::graph::level_partition;
using expmk::sched::heft_schedule;
using expmk::sched::list_schedule;
using expmk::sched::Machine;

TEST(Metrics, DiamondNumbers) {
  const auto g = expmk::test::diamond(1.0, 2.0, 3.0, 4.0);
  const auto m = compute_metrics(g);
  EXPECT_EQ(m.tasks, 4u);
  EXPECT_EQ(m.edges, 4u);
  EXPECT_EQ(m.entries, 1u);
  EXPECT_EQ(m.exits, 1u);
  EXPECT_EQ(m.depth, 3u);
  EXPECT_EQ(m.max_level_width, 2u);
  EXPECT_DOUBLE_EQ(m.total_work, 10.0);
  EXPECT_DOUBLE_EQ(m.critical_path, 8.0);
  EXPECT_DOUBLE_EQ(m.average_parallelism, 1.25);
  EXPECT_EQ(m.max_out_degree, 2u);
  EXPECT_EQ(m.max_in_degree, 2u);
  EXPECT_DOUBLE_EQ(m.density, 4.0 / 6.0);
}

TEST(Metrics, LevelPartitionCoversAllTasks) {
  const auto g = expmk::gen::cholesky_dag(5);
  const auto levels = level_partition(g);
  std::size_t total = 0;
  for (const auto& l : levels) total += l.size();
  EXPECT_EQ(total, g.task_count());
  // Entries exactly at level 0.
  EXPECT_EQ(levels[0].size(), g.entry_tasks().size());
  // Each task's level exceeds its predecessors'.
  std::vector<std::size_t> level_of(g.task_count());
  for (std::size_t l = 0; l < levels.size(); ++l) {
    for (const auto v : levels[l]) level_of[v] = l;
  }
  for (expmk::graph::TaskId u = 0; u < g.task_count(); ++u) {
    for (const auto v : g.successors(u)) {
      EXPECT_LT(level_of[u], level_of[v]);
    }
  }
}

TEST(Metrics, ParallelismIsConsistentWithFamilies) {
  // A chain has parallelism 1; independent tasks have parallelism ~n.
  const auto chain = expmk::gen::uniform_chain(10, 1.0);
  EXPECT_NEAR(compute_metrics(chain).average_parallelism, 1.0, 1e-12);
  const auto indep = expmk::gen::independent_tasks(10, 5, {0.2, 0.2});
  EXPECT_NEAR(compute_metrics(indep).average_parallelism, 10.0, 1e-9);
}

TEST(Metrics, StreamOperatorMentionsKeyNumbers) {
  std::ostringstream os;
  os << compute_metrics(expmk::test::diamond());
  EXPECT_NE(os.str().find("tasks=4"), std::string::npos);
  EXPECT_NE(os.str().find("critical_path"), std::string::npos);
}

TEST(Heft, MatchesListSchedulerOnSerialChain) {
  const auto g = expmk::gen::uniform_chain(6, 1.0);
  const Machine m(3);
  const auto prio = expmk::sched::priorities(
      g, expmk::sched::PriorityKind::BottomLevel, {});
  EXPECT_DOUBLE_EQ(heft_schedule(g, prio, m).makespan,
                   list_schedule(g, prio, m).makespan);
}

TEST(Heft, InsertionFillsGaps) {
  // Crafted instance where non-insertion EFT leaves a gap HEFT can use:
  //   A(2) -> C(2);  B(1) independent;  D(1) independent, low priority.
  // On one processor pair: plain list scheduling with priorities
  // A=5,C=3,B=4,D=0.5 runs A,B first; C waits for A; D goes after B on
  // proc 1 (no gap). With insertion D can slot into proc0's idle window
  // only if one exists — construct: P=1 with B scheduled between A and C
  // leaves no gap; use 2 procs and check HEFT <= list everywhere instead
  // plus a concrete gap case below.
  expmk::graph::Dag g;
  const auto a = g.add_task("A", 2.0);
  const auto c = g.add_task("C", 2.0);
  const auto b = g.add_task("B", 3.0);
  const auto d = g.add_task("D", 1.0);
  (void)d;
  g.add_edge(a, c);
  g.add_edge(b, c);
  // Priorities: bottom levels: A=4, B=5, C=2, D=1.
  const auto prio = expmk::sched::priorities(
      g, expmk::sched::PriorityKind::BottomLevel, {});
  const Machine m(2);
  // Plain list scheduling: B->p0 (0..3), A->p1 (0..2), C after max(3,2)=3
  // on p0 or p1 (3..5), D placed when ready at its turn.
  const auto plain = list_schedule(g, prio, m);
  const auto heft = heft_schedule(g, prio, m);
  // HEFT can insert D into p1's idle window (2..3) while list scheduling
  // cannot start D before higher-priority C has been dispatched.
  EXPECT_LE(heft.makespan, plain.makespan + 1e-12);
  EXPECT_NEAR(heft.makespan, 5.0, 1e-12);
  EXPECT_NEAR(heft.placements[d].start, 2.0, 1e-12);
  EXPECT_EQ(heft.placements[d].processor,
            heft.placements[a].processor);
}

TEST(Heft, ValidSchedulesOnRandomGraphs) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto g = expmk::gen::erdos_dag(40, 0.15, seed);
    const Machine m(3);
    const auto prio = expmk::sched::priorities(
        g, expmk::sched::PriorityKind::BottomLevel, {});
    const auto s = heft_schedule(g, prio, m);
    EXPECT_EQ(expmk::sched::validate_schedule(g, g.weights(), m, s), "");
    // Insertion never loses to the trivial bounds.
    EXPECT_GE(s.makespan,
              expmk::graph::critical_path_length(g) - 1e-9);
    EXPECT_LE(s.makespan, g.total_weight() + 1e-9);
  }
}

TEST(Heft, NeverWorseThanListOnFactorizations) {
  for (const int k : {4, 6}) {
    const auto g = expmk::gen::lu_dag(k);
    const auto prio = expmk::sched::priorities(
        g, expmk::sched::PriorityKind::BottomLevel, {});
    for (const std::size_t p : {2u, 4u}) {
      const Machine m(p);
      EXPECT_LE(heft_schedule(g, prio, m).makespan,
                list_schedule(g, prio, m).makespan + 1e-9)
          << "k=" << k << " p=" << p;
    }
  }
}

TEST(Heft, HeterogeneousInsertionPrefersFasterFinish) {
  expmk::graph::Dag g;
  g.add_task(1.0);
  const Machine m({1.0, 5.0});
  const std::vector<double> prio = {1.0};
  const auto s = heft_schedule(g, prio, m);
  EXPECT_EQ(s.placements[0].processor, 1u);
  EXPECT_NEAR(s.makespan, 0.2, 1e-12);
}

TEST(Heft, RejectsPrecedenceViolatingPriorities) {
  const auto g = expmk::gen::uniform_chain(3, 1.0);
  const Machine m(1);
  const std::vector<double> inverted = {0.0, 1.0, 2.0};  // child > parent
  EXPECT_THROW((void)heft_schedule(g, inverted, m), std::invalid_argument);
}

}  // namespace
