// Unit tests for graph/dot (Figures 1-3 exporter) and graph/validate.

#include <gtest/gtest.h>

#include "gen/cholesky.hpp"
#include "graph/dot.hpp"
#include "graph/validate.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::graph::DotOptions;
using expmk::graph::to_dot;
using expmk::graph::validate;

TEST(Dot, EmitsNodesAndEdges) {
  const auto g = expmk::test::diamond();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"A\""), std::string::npos);
  EXPECT_NE(dot.find("\"D\""), std::string::npos);
  // 4 edges.
  std::size_t arrows = 0;
  for (std::size_t pos = dot.find("->"); pos != std::string::npos;
       pos = dot.find("->", pos + 1)) {
    ++arrows;
  }
  EXPECT_EQ(arrows, 4u);
}

TEST(Dot, KernelColoringForFactorizationTasks) {
  const auto g = expmk::gen::cholesky_dag(3);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("POTRF_0"), std::string::npos);
  // POTRF family color from the palette.
  EXPECT_NE(dot.find("#ffd29b"), std::string::npos);
}

TEST(Dot, WeightsShownOnRequest) {
  DotOptions opts;
  opts.show_weights = true;
  const auto g = expmk::test::diamond(1.5, 2.0, 3.0, 4.0);
  const std::string dot = to_dot(g, opts);
  EXPECT_NE(dot.find("1.5s"), std::string::npos);
}

TEST(Dot, ReducedEdgesOptionDropsShortcuts) {
  expmk::graph::Dag g;
  const auto a = g.add_task("a", 1.0);
  const auto b = g.add_task("b", 1.0);
  const auto c = g.add_task("c", 1.0);
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.add_edge(a, c);
  DotOptions opts;
  opts.reduce_edges = true;
  const std::string dot = to_dot(g, opts);
  std::size_t arrows = 0;
  for (std::size_t pos = dot.find("->"); pos != std::string::npos;
       pos = dot.find("->", pos + 1)) {
    ++arrows;
  }
  EXPECT_EQ(arrows, 2u);
}

TEST(Validate, AcceptsHealthyGraphs) {
  const auto report = validate(expmk::gen::cholesky_dag(4));
  EXPECT_TRUE(report.ok()) << (report.problems.empty()
                                   ? ""
                                   : report.problems.front());
  EXPECT_TRUE(report.acyclic);
  EXPECT_EQ(report.component_count, 1u);
  EXPECT_EQ(report.entry_count, 1u);  // POTRF_0
}

TEST(Validate, FlagsCycle) {
  expmk::graph::Dag g;
  const auto a = g.add_task(1.0);
  const auto b = g.add_task(1.0);
  g.add_edge(a, b);
  g.add_edge(b, a);
  const auto report = validate(g);
  EXPECT_FALSE(report.acyclic);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.problems.empty());
}

TEST(Validate, FlagsDuplicateEdges) {
  expmk::graph::Dag g;
  const auto a = g.add_task(1.0);
  const auto b = g.add_task(1.0);
  g.add_edge(a, b);
  g.add_edge(a, b);
  const auto report = validate(g);
  EXPECT_TRUE(report.has_duplicate_edges);
  EXPECT_FALSE(report.ok());
}

TEST(Validate, CountsComponents) {
  expmk::graph::Dag g;
  const auto a = g.add_task(1.0);
  const auto b = g.add_task(1.0);
  g.add_task(1.0);  // isolated third task
  g.add_edge(a, b);
  const auto report = validate(g);
  EXPECT_EQ(report.component_count, 2u);
}

TEST(Validate, EmptyGraphRejected) {
  const auto report = validate(expmk::graph::Dag{});
  EXPECT_FALSE(report.ok());
}

}  // namespace
