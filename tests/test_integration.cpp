// Integration tests: the full paper pipeline on real (small) factorization
// DAGs — all three estimators against the Monte-Carlo ground truth, with
// the orderings the paper's evaluation reports.

#include <gtest/gtest.h>

#include <cmath>

#include "core/failure_model.hpp"
#include "core/first_order.hpp"
#include "core/second_order.hpp"
#include "gen/cholesky.hpp"
#include "gen/lu.hpp"
#include "gen/qr.hpp"
#include "graph/longest_path.hpp"
#include "mc/engine.hpp"
#include "normal/sculli.hpp"
#include "spgraph/dodin.hpp"

namespace {

using expmk::core::calibrate;
using expmk::core::FailureModel;
using expmk::core::first_order;
using expmk::mc::McConfig;
using expmk::mc::run_monte_carlo;

struct MethodErrors {
  double first_order;
  double dodin;
  double sculli;
  double mc_mean;
};

MethodErrors run_pipeline(const expmk::graph::Dag& g, double pfail,
                          std::uint64_t trials) {
  const FailureModel m = calibrate(g, pfail);
  McConfig cfg;
  cfg.trials = trials;
  cfg.seed = 2016;
  cfg.control_variate = true;  // tighter ground truth per trial
  const auto mc = run_monte_carlo(g, m, cfg);

  const double fo = first_order(g, m).expected_makespan();
  const double dod =
      expmk::sp::dodin_two_state(g, m, {.max_atoms = 128}).expected_makespan();
  const double sc = expmk::normal::sculli(g, m).expected_makespan();
  const auto rel = [&](double est) {
    return std::fabs(est - mc.mean) / mc.mean;
  };
  return {rel(fo), rel(dod), rel(sc), mc.mean};
}

TEST(Integration, CholeskyLowPfailFirstOrderWins) {
  // The paper's headline: at low pfail, First Order beats Dodin and
  // Normal by orders of magnitude. At pfail = 1e-3 on Cholesky k=4 the
  // margin is large enough to assert outright.
  const auto g = expmk::gen::cholesky_dag(4);
  const auto e = run_pipeline(g, 0.001, 150'000);
  EXPECT_LT(e.first_order, e.dodin);
  EXPECT_LT(e.first_order, 5e-3);
  EXPECT_GT(e.mc_mean, expmk::graph::critical_path_length(g));
}

TEST(Integration, LuLowPfailFirstOrderWins) {
  const auto g = expmk::gen::lu_dag(4);
  const auto e = run_pipeline(g, 0.001, 150'000);
  EXPECT_LT(e.first_order, e.dodin);
  EXPECT_LT(e.first_order, 5e-3);
}

TEST(Integration, QrLowPfailFirstOrderWins) {
  const auto g = expmk::gen::qr_dag(4);
  const auto e = run_pipeline(g, 0.001, 150'000);
  EXPECT_LT(e.first_order, e.dodin);
  EXPECT_LT(e.first_order, 5e-3);
}

TEST(Integration, DodinWorstAtModeratePfail) {
  // "Across the board the Dodin approximation leads to high error" — at
  // pfail = 0.01 Dodin should trail both competitors on Cholesky.
  const auto g = expmk::gen::cholesky_dag(5);
  const auto e = run_pipeline(g, 0.01, 150'000);
  EXPECT_GT(e.dodin, e.first_order);
  EXPECT_GT(e.dodin, e.sculli);
}

TEST(Integration, ErrorsShrinkWithPfail) {
  // First Order's relative error at pfail=1e-4 is far below its error at
  // pfail=1e-2 (the O(lambda^2) scaling made visible end-to-end).
  const auto g = expmk::gen::cholesky_dag(4);
  const auto high = run_pipeline(g, 0.01, 200'000);
  const auto low = run_pipeline(g, 0.0001, 200'000);
  EXPECT_LT(low.first_order, high.first_order);
}

TEST(Integration, SecondOrderRefinesFirstOrderAtHighPfail) {
  const auto g = expmk::gen::cholesky_dag(4);
  const FailureModel m = calibrate(g, 0.05);  // harsh failure regime
  McConfig cfg;
  cfg.trials = 400'000;
  cfg.seed = 99;
  cfg.retry = expmk::core::RetryModel::TwoState;
  const auto mc = run_monte_carlo(g, m, cfg);
  const double fo = first_order(g, m).expected_makespan();
  const double so =
      expmk::core::second_order(g, m, expmk::core::RetryModel::TwoState)
          .expected_makespan;
  EXPECT_LT(std::fabs(so - mc.mean), std::fabs(fo - mc.mean));
}

TEST(Integration, AllEstimatesAboveFailureFreeMakespan) {
  const auto g = expmk::gen::lu_dag(4);
  const FailureModel m = calibrate(g, 0.01);
  const double d = expmk::graph::critical_path_length(g);
  EXPECT_GE(first_order(g, m).expected_makespan(), d);
  EXPECT_GE(expmk::normal::sculli(g, m).expected_makespan(), d * 0.999);
  EXPECT_GE(expmk::sp::dodin_two_state(g, m, {.max_atoms = 128})
                .expected_makespan(),
            d * 0.999);
}

}  // namespace
