// Tests for the scheduling substrate: list scheduling validity, CP
// identities, heterogeneous EFT placement, priorities and fault-injected
// simulation.

#include <gtest/gtest.h>

#include "core/failure_model.hpp"
#include "gen/cholesky.hpp"
#include "gen/lu.hpp"
#include "gen/random_dags.hpp"
#include "graph/longest_path.hpp"
#include "sched/fault_sim.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/priorities.hpp"

namespace {

using expmk::core::FailureModel;
using expmk::sched::list_schedule;
using expmk::sched::Machine;
using expmk::sched::priorities;
using expmk::sched::PriorityKind;
using expmk::sched::validate_schedule;

TEST(Machine, ConstructionAndSpeeds) {
  const Machine m(3);
  EXPECT_EQ(m.processors(), 3u);
  EXPECT_TRUE(m.homogeneous());
  EXPECT_DOUBLE_EQ(m.execution_time(2.0, 1), 2.0);
  const Machine h({1.0, 2.0});
  EXPECT_FALSE(h.homogeneous());
  EXPECT_DOUBLE_EQ(h.execution_time(2.0, 1), 1.0);
  EXPECT_THROW(Machine(0), std::invalid_argument);
  EXPECT_THROW(Machine(std::vector<double>{1.0, 0.0}), std::invalid_argument);
}

TEST(ListScheduler, RespectsConstraintsOnRandomGraphs) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto g = expmk::gen::erdos_dag(40, 0.15, seed);
    const Machine m(3);
    const auto prio = priorities(g, PriorityKind::BottomLevel, {});
    const auto s = list_schedule(g, prio, m);
    EXPECT_EQ(validate_schedule(g, g.weights(), m, s), "");
    EXPECT_GT(s.makespan, 0.0);
  }
}

TEST(ListScheduler, UnlimitedProcessorsReachCriticalPath) {
  const auto g = expmk::gen::cholesky_dag(4);
  const Machine m(g.task_count());  // more processors than tasks
  const auto prio = priorities(g, PriorityKind::BottomLevel, {});
  const auto s = list_schedule(g, prio, m);
  EXPECT_NEAR(s.makespan, expmk::graph::critical_path_length(g), 1e-9);
}

TEST(ListScheduler, SingleProcessorSerializesEverything) {
  const auto g = expmk::gen::cholesky_dag(3);
  const Machine m(1);
  const auto prio = priorities(g, PriorityKind::BottomLevel, {});
  const auto s = list_schedule(g, prio, m);
  EXPECT_NEAR(s.makespan, g.total_weight(), 1e-9);
  EXPECT_EQ(validate_schedule(g, g.weights(), m, s), "");
}

TEST(ListScheduler, MakespanBetweenBounds) {
  // CP <= makespan <= total work (P=2 list schedule; also Graham: <= 2x
  // optimal, we just check the trivial envelope).
  const auto g = expmk::gen::lu_dag(4);
  const Machine m(2);
  const auto prio = priorities(g, PriorityKind::BottomLevel, {});
  const auto s = list_schedule(g, prio, m);
  EXPECT_GE(s.makespan, expmk::graph::critical_path_length(g) - 1e-9);
  EXPECT_LE(s.makespan, g.total_weight() + 1e-9);
}

TEST(ListScheduler, PriorityOrderMattersOnTightExample) {
  // Two processors; tasks: long chain head H (bl=3) vs two short
  // independents. Scheduling H first is required for the optimal plan.
  expmk::graph::Dag g;
  const auto h = g.add_task("H", 1.0);
  const auto t2 = g.add_task("T2", 2.0);
  const auto s1 = g.add_task("S1", 1.0);
  const auto s2 = g.add_task("S2", 1.0);
  g.add_edge(h, t2);
  const Machine m(2);
  const auto bl = priorities(g, PriorityKind::BottomLevel, {});
  EXPECT_GT(bl[h], bl[s1]);
  const auto s = list_schedule(g, bl, m);
  EXPECT_NEAR(s.makespan, 3.0, 1e-9);  // H then T2 on one proc, S1+S2 on other
  // Inverted priorities (schedule shorts first on both procs) is worse.
  const std::vector<double> inverted = {0.0, 0.0, 1.0, 1.0};
  const auto bad = list_schedule(g, inverted, m);
  EXPECT_GT(bad.makespan, s.makespan - 1e-12);
}

TEST(ListScheduler, HeterogeneousPrefersFastProcessor) {
  expmk::graph::Dag g;
  g.add_task(1.0);
  const Machine m({1.0, 4.0});
  const std::vector<double> prio = {1.0};
  const auto s = list_schedule(g, prio, m);
  EXPECT_EQ(s.placements[0].processor, 1u);
  EXPECT_NEAR(s.makespan, 0.25, 1e-12);
}

TEST(ListScheduler, CustomDurationsOverrideWeights) {
  const auto g = expmk::gen::uniform_chain(3, 1.0);
  const Machine m(1);
  const std::vector<double> durations = {2.0, 2.0, 2.0};
  const auto prio = priorities(g, PriorityKind::BottomLevel, {});
  const auto s = list_schedule(g, durations, prio, m);
  EXPECT_NEAR(s.makespan, 6.0, 1e-12);
  EXPECT_EQ(validate_schedule(g, durations, m, s), "");
}

TEST(ListScheduler, SizeMismatchThrows) {
  const auto g = expmk::gen::uniform_chain(3, 1.0);
  const Machine m(1);
  const std::vector<double> bad = {1.0};
  EXPECT_THROW((void)list_schedule(g, bad, bad, m), std::invalid_argument);
}

TEST(Priorities, FailureAwareKindUsesLambda) {
  const auto g = expmk::gen::cholesky_dag(4);
  const FailureModel m{0.05};
  const auto classic = priorities(g, PriorityKind::BottomLevel, m);
  const auto aware = priorities(g, PriorityKind::FailureAwareBottomLevel, m);
  bool any_increase = false;
  for (std::size_t i = 0; i < classic.size(); ++i) {
    EXPECT_GE(aware[i], classic[i] - 1e-12);
    if (aware[i] > classic[i] + 1e-12) any_increase = true;
  }
  EXPECT_TRUE(any_increase);
}

TEST(FaultSim, DegradesGracefullyAndReproducibly) {
  const auto g = expmk::gen::cholesky_dag(4);
  const FailureModel m = expmk::core::calibrate(g, 0.01);
  const Machine machine(4);
  const auto prio = priorities(g, PriorityKind::BottomLevel, m);
  expmk::sched::FaultSimConfig cfg;
  cfg.runs = 200;
  const auto r1 = expmk::sched::simulate_with_faults(g, prio, machine, m, cfg);
  const auto r2 = expmk::sched::simulate_with_faults(g, prio, machine, m, cfg);
  EXPECT_DOUBLE_EQ(r1.makespan.mean(), r2.makespan.mean());
  // Faults lengthen execution on average. (Individual runs may in theory
  // benefit from Graham-style list-scheduling anomalies, so we only bound
  // the minimum loosely.)
  EXPECT_GE(r1.makespan.min(), 0.9 * r1.failure_free_makespan);
  EXPECT_GT(r1.makespan.mean(), r1.failure_free_makespan);
}

TEST(FaultSim, ZeroLambdaMatchesFailureFree) {
  const auto g = expmk::gen::cholesky_dag(3);
  const Machine machine(2);
  const auto prio = priorities(g, PriorityKind::BottomLevel, {});
  expmk::sched::FaultSimConfig cfg;
  cfg.runs = 10;
  const auto r =
      expmk::sched::simulate_with_faults(g, prio, machine, FailureModel{0.0},
                                         cfg);
  EXPECT_DOUBLE_EQ(r.makespan.min(), r.failure_free_makespan);
  EXPECT_DOUBLE_EQ(r.makespan.max(), r.failure_free_makespan);
}

}  // namespace
