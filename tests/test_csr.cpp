// Tests for the CSR hot-path substrate: structural equivalence of
// graph::CsrDag with the source Dag, allocation-free kernel correctness,
// bit-identity of the fused MC trial kernel against a reference scalar
// trial loop, and the engine's thread-count determinism contract.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/failure_model.hpp"
#include "gen/lu.hpp"
#include "gen/random_dags.hpp"
#include "graph/csr.hpp"
#include "graph/longest_path.hpp"
#include "graph/topological.hpp"
#include "mc/engine.hpp"
#include "mc/trial.hpp"
#include "prob/rng.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::core::FailureModel;
using expmk::core::RetryModel;
using expmk::graph::CsrDag;
using expmk::graph::Dag;
using expmk::graph::TaskId;
using expmk::mc::TrialContext;

std::vector<Dag> fixture_dags() {
  std::vector<Dag> out;
  out.push_back(expmk::test::diamond(0.4, 0.3, 0.5, 0.2));
  out.push_back(expmk::test::n_graph());
  out.push_back(expmk::gen::lu_dag(4));
  out.push_back(expmk::gen::layered_random(6, 5, 0.3, 123));
  return out;
}

TEST(CsrDag, OrderIsTopologicalAndPositionsInvert) {
  for (const Dag& g : fixture_dags()) {
    const CsrDag csr(g);
    ASSERT_EQ(csr.task_count(), g.task_count());
    ASSERT_EQ(csr.edge_count(), g.edge_count());
    const std::vector<TaskId> order(csr.order().begin(), csr.order().end());
    EXPECT_TRUE(expmk::graph::is_topological_order(g, order));
    for (std::uint32_t pos = 0; pos < csr.task_count(); ++pos) {
      EXPECT_EQ(csr.position_of(csr.original_id(pos)), pos);
      EXPECT_DOUBLE_EQ(csr.weights()[pos], g.weight(csr.original_id(pos)));
    }
  }
}

TEST(CsrDag, EdgesArePreservedAndPointForward) {
  for (const Dag& g : fixture_dags()) {
    const CsrDag csr(g);
    std::size_t pred_edges = 0, succ_edges = 0;
    for (std::uint32_t pos = 0; pos < csr.task_count(); ++pos) {
      const TaskId id = csr.original_id(pos);
      ASSERT_EQ(csr.preds(pos).size(), g.in_degree(id));
      ASSERT_EQ(csr.succs(pos).size(), g.out_degree(id));
      pred_edges += csr.preds(pos).size();
      succ_edges += csr.succs(pos).size();
      for (const std::uint32_t u : csr.preds(pos)) {
        EXPECT_LT(u, pos);  // topological renumbering: preds point back
        // And the edge exists in the Dag.
        bool found = false;
        for (const TaskId du : g.predecessors(id)) {
          found = found || csr.position_of(du) == u;
        }
        EXPECT_TRUE(found);
      }
      for (const std::uint32_t s : csr.succs(pos)) {
        EXPECT_GT(s, pos);
      }
    }
    EXPECT_EQ(pred_edges, g.edge_count());
    EXPECT_EQ(succ_edges, g.edge_count());
  }
}

TEST(CsrDag, RejectsCycles) {
  Dag g;
  const auto a = g.add_task(1.0);
  const auto b = g.add_task(1.0);
  g.add_edge(a, b);
  g.add_edge(b, a);
  EXPECT_THROW(CsrDag{g}, std::invalid_argument);
}

TEST(CsrKernels, CriticalPathMatchesDag) {
  for (const Dag& g : fixture_dags()) {
    const CsrDag csr(g);
    const auto topo = expmk::graph::topological_order(g);
    std::vector<double> finish(csr.task_count());
    const double via_csr =
        critical_path_length(csr, csr.weights(), finish);
    const double via_dag =
        expmk::graph::critical_path_length(g, g.weights(), topo);
    EXPECT_DOUBLE_EQ(via_csr, via_dag);
  }
}

TEST(CsrKernels, LongestFromMatchesDag) {
  for (const Dag& g : fixture_dags()) {
    const CsrDag csr(g);
    const auto topo = expmk::graph::topological_order(g);
    const std::size_t n = g.task_count();
    std::vector<double> dist(n);
    for (std::uint32_t src = 0; src < n; ++src) {
      longest_from(csr, src, csr.weights(), dist);
      const auto ref = expmk::graph::longest_from(
          g, csr.original_id(src), g.weights(), topo);
      for (std::uint32_t pos = src; pos < n; ++pos) {
        EXPECT_DOUBLE_EQ(dist[pos], ref[csr.original_id(pos)])
            << "src=" << src << " pos=" << pos;
      }
    }
  }
}

TEST(CsrKernels, DagScratchOverloadsMatchAllocatingOnes) {
  const Dag g = expmk::gen::lu_dag(4);
  const auto topo = expmk::graph::topological_order(g);
  std::vector<double> finish(g.task_count());
  EXPECT_DOUBLE_EQ(
      expmk::graph::critical_path_length(g, g.weights(), topo, finish),
      expmk::graph::critical_path_length(g, g.weights(), topo));
  std::vector<double> dist(g.task_count());
  expmk::graph::longest_from(g, 0, g.weights(), topo, dist);
  const auto ref = expmk::graph::longest_from(g, 0, g.weights(), topo);
  for (std::size_t i = 0; i < dist.size(); ++i) {
    EXPECT_DOUBLE_EQ(dist[i], ref[i]);
  }
}

/// Reference scalar trial loop: sample per task (in CSR position order,
/// using the context's precomputed constants — the documented sampling
/// law), scatter durations into Dag id order, then evaluate the makespan
/// with the allocating vector-of-vectors Dag longest path. The fused CSR
/// kernel must reproduce it bit for bit.
double reference_trial(const TrialContext& ctx, expmk::prob::McRng& rng,
                       std::vector<double>& durations) {
  const Dag& g = ctx.dag();
  const std::size_t n = g.task_count();
  durations.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    int executions = 1;
    if (ctx.retry() == RetryModel::TwoState) {
      executions = rng.uniform() < ctx.p_success_csr()[v] ? 1 : 2;
    } else {
      const double u = rng.uniform_positive();
      if (u <= ctx.q_fail_csr()[v]) {
        const double f = std::floor(std::log(u) * ctx.inv_log_q_csr()[v]);
        if (!(f < static_cast<double>(ctx.max_executions))) {
          executions = ctx.max_executions;
        } else {
          const int failures = f < 0.0 ? 0 : static_cast<int>(f);
          executions = std::min(failures + 1, ctx.max_executions);
        }
      }
    }
    const double duration =
        ctx.csr().weights()[v] * static_cast<double>(executions);
    durations[ctx.csr().original_id(v)] = duration;
  }
  return expmk::graph::critical_path_length(g, durations, ctx.topo());
}

TEST(CsrTrialKernel, BitIdenticalToReferenceScalarLoop) {
  for (const RetryModel retry :
       {RetryModel::Geometric, RetryModel::TwoState}) {
    for (const Dag& g : fixture_dags()) {
      const auto model = expmk::core::calibrate(g, 0.05);
      const TrialContext ctx(g, model, retry);
      std::vector<double> finish(g.task_count());
      std::vector<double> durations;
      for (std::uint64_t t = 0; t < 500; ++t) {
        expmk::prob::McRng rng_csr(99, t);
        expmk::prob::McRng rng_ref(99, t);
        const double csr_makespan =
            expmk::mc::run_trial_csr(ctx, rng_csr, finish);
        const double ref_makespan = reference_trial(ctx, rng_ref, durations);
        ASSERT_EQ(csr_makespan, ref_makespan) << "trial " << t;
      }
    }
  }
}

TEST(CsrTrialKernel, AdapterScattersDurationsInDagOrder) {
  const Dag g = expmk::gen::lu_dag(4);
  const auto model = expmk::core::calibrate(g, 0.1);
  const TrialContext ctx(g, model, RetryModel::Geometric);
  std::vector<double> durations(g.task_count());
  std::vector<double> ref_durations;
  for (std::uint64_t t = 0; t < 100; ++t) {
    expmk::prob::McRng rng_a(5, t);
    expmk::prob::McRng rng_b(5, t);
    const double makespan = expmk::mc::run_trial(ctx, rng_a, durations);
    const double ref = reference_trial(ctx, rng_b, ref_durations);
    ASSERT_EQ(makespan, ref);
    for (std::size_t i = 0; i < durations.size(); ++i) {
      ASSERT_EQ(durations[i], ref_durations[i]) << "task " << i;
    }
  }
}

TEST(CsrTrialKernel, AdapterRejectsUndersizedBuffer) {
  const Dag g = expmk::gen::lu_dag(3);
  const auto model = expmk::core::calibrate(g, 0.01);
  const TrialContext ctx(g, model, RetryModel::Geometric);
  expmk::prob::McRng rng(1);
  std::vector<double> too_small;  // the pre-CSR adapter would resize this
  EXPECT_THROW((void)expmk::mc::run_trial(ctx, rng, too_small),
               std::invalid_argument);
  std::vector<double> sized(g.task_count());
  EXPECT_NO_THROW((void)expmk::mc::run_trial(ctx, rng, sized));
}

TEST(CsrTrialKernel, ControlVariantDrawsIdenticalStream) {
  const Dag g = expmk::gen::lu_dag(4);
  const auto model = expmk::core::calibrate(g, 0.05);
  const TrialContext ctx(g, model, RetryModel::Geometric);
  std::vector<double> finish(g.task_count());
  for (std::uint64_t t = 0; t < 200; ++t) {
    expmk::prob::McRng rng_a(13, t);
    expmk::prob::McRng rng_b(13, t);
    const double plain = expmk::mc::run_trial_csr(ctx, rng_a, finish);
    const auto obs = expmk::mc::run_trial_with_control_csr(ctx, rng_b, finish);
    ASSERT_EQ(plain, obs.makespan);
    ASSERT_GE(obs.control, 0.0);
  }
}

// The determinism regression the CSR rewrite must not break: on a 50-task
// LU DAG (k = 5 -> 55 tasks) the engine returns BIT-identical mean and
// variance for thread counts 1, 2 and 7 — exact double equality, not a
// tolerance — in both the plain and the control-variate configuration.
TEST(CsrEngineDeterminism, BitIdenticalAcrossThreadCounts) {
  const Dag g = expmk::gen::lu_dag(5);
  ASSERT_GE(g.task_count(), 50u);
  const auto model = expmk::core::calibrate(g, 0.01);
  for (const bool cv : {false, true}) {
    expmk::mc::McConfig cfg;
    cfg.trials = 3000;
    cfg.seed = 77;
    cfg.control_variate = cv;
    cfg.threads = 1;
    const auto r1 = run_monte_carlo(g, model, cfg);
    cfg.threads = 2;
    const auto r2 = run_monte_carlo(g, model, cfg);
    cfg.threads = 7;
    const auto r7 = run_monte_carlo(g, model, cfg);
    EXPECT_EQ(r1.mean, r2.mean) << "cv=" << cv;
    EXPECT_EQ(r2.mean, r7.mean) << "cv=" << cv;
    EXPECT_EQ(r1.variance, r2.variance) << "cv=" << cv;
    EXPECT_EQ(r2.variance, r7.variance) << "cv=" << cv;
    EXPECT_EQ(r1.trials, r7.trials);
  }
}

// End-to-end: the engine's per-trial samples equal the reference scalar
// loop's makespans trial for trial (capture_samples preserves trial
// order because chunk accumulators merge in chunk order).
TEST(CsrEngineDeterminism, EngineSamplesMatchReferenceLoop) {
  const Dag g = expmk::gen::lu_dag(5);
  const auto model = expmk::core::calibrate(g, 0.02);
  expmk::mc::McConfig cfg;
  cfg.trials = 600;
  cfg.seed = 31337;
  cfg.capture_samples = true;
  const auto r = run_monte_carlo(g, model, cfg);
  ASSERT_EQ(r.samples.size(), cfg.trials);
  const TrialContext ctx(g, model, cfg.retry);
  std::vector<double> durations;
  for (std::uint64_t t = 0; t < cfg.trials; ++t) {
    expmk::prob::McRng rng(cfg.seed, t);
    ASSERT_EQ(r.samples[t], reference_trial(ctx, rng, durations))
        << "trial " << t;
  }
}

}  // namespace
