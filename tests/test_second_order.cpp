// Tests for the second-order extension (the paper conclusion's proposed
// follow-up): exactness order in lambda, consistency with the first order,
// and the geometric-model variant.

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact.hpp"
#include "core/first_order.hpp"
#include "core/second_order.hpp"
#include "gen/random_dags.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::core::exact_geometric;
using expmk::core::exact_two_state;
using expmk::core::FailureModel;
using expmk::core::first_order;
using expmk::core::RetryModel;
using expmk::core::second_order;

TEST(SecondOrder, ZeroLambdaGivesCriticalPath) {
  const auto g = expmk::test::diamond(1.0, 2.0, 3.0, 4.0);
  const auto r = second_order(g, FailureModel{0.0});
  EXPECT_DOUBLE_EQ(r.expected_makespan, 8.0);
  EXPECT_DOUBLE_EQ(r.first_order, 8.0);
}

TEST(SecondOrder, SingleTaskMatchesAlgebra) {
  // One task of weight a, 2-state: exact E = a (2 - p) with p = e^{-la}.
  // Second order expands it to O(l^3): E2 = a + l a^2 - l^2 a^3 / 2.
  expmk::graph::Dag g;
  g.add_task(2.0);
  const double a = 2.0, lambda = 0.01;
  const auto r = second_order(g, FailureModel{lambda});
  EXPECT_NEAR(r.expected_makespan,
              a + lambda * a * a - lambda * lambda * a * a * a / 2.0, 1e-12);
}

TEST(SecondOrder, ReportsFirstOrderConsistently) {
  const auto g = expmk::gen::erdos_dag(20, 0.2, 3);
  const FailureModel m{0.02};
  const auto so = second_order(g, m);
  const auto fo = first_order(g, m);
  EXPECT_NEAR(so.first_order, fo.expected_makespan(), 1e-10);
  EXPECT_NEAR(so.critical_path, fo.critical_path, 1e-12);
}

// |SO - exact| = O(lambda^3): halving lambda shrinks the error ~8x.
TEST(SecondOrder, ErrorIsThirdOrderInLambda) {
  const auto g = expmk::gen::erdos_dag(12, 0.3, 99);
  const double l1 = 0.1, l2 = 0.05;
  const double e1 =
      std::fabs(second_order(g, FailureModel{l1}).expected_makespan -
                exact_two_state(g, FailureModel{l1}));
  const double e2 =
      std::fabs(second_order(g, FailureModel{l2}).expected_makespan -
                exact_two_state(g, FailureModel{l2}));
  ASSERT_GT(e1, 0.0);
  ASSERT_GT(e2, 0.0);
  const double ratio = e1 / e2;
  EXPECT_GT(ratio, 5.5) << "e1=" << e1 << " e2=" << e2;
  EXPECT_LT(ratio, 12.0) << "e1=" << e1 << " e2=" << e2;
}

// Second order is strictly more accurate than first order for moderate
// lambda on every family we test.
class SecondOrderAccuracySweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SecondOrderAccuracySweep, BeatsFirstOrderAgainstExact) {
  const auto g = expmk::gen::erdos_dag(11, 0.3, GetParam());
  const FailureModel m{0.06};
  const double exact = exact_two_state(g, m);
  const double fo_err =
      std::fabs(first_order(g, m).expected_makespan() - exact);
  const double so_err =
      std::fabs(second_order(g, m).expected_makespan - exact);
  EXPECT_LE(so_err, fo_err + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SecondOrderAccuracySweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(SecondOrder, GeometricVariantTracksGeometricExact) {
  const auto g = expmk::gen::erdos_dag(8, 0.3, 42);
  const FailureModel m{0.05};
  const double exact_geo = exact_geometric(g, m, 6);
  const double exact_ts = exact_two_state(g, m);
  const double so_geo =
      second_order(g, m, RetryModel::Geometric).expected_makespan;
  const double so_ts =
      second_order(g, m, RetryModel::TwoState).expected_makespan;
  // Each variant should be closer to its own model's exact value.
  EXPECT_LT(std::fabs(so_geo - exact_geo), std::fabs(so_ts - exact_geo));
  EXPECT_LT(std::fabs(so_ts - exact_ts), std::fabs(so_geo - exact_ts));
}

TEST(SecondOrder, GeometricExceedsTwoState) {
  // Extra re-executions can only lengthen the expected makespan.
  const auto g = expmk::gen::erdos_dag(15, 0.25, 7);
  const FailureModel m{0.05};
  EXPECT_GE(second_order(g, m, RetryModel::Geometric).expected_makespan,
            second_order(g, m, RetryModel::TwoState).expected_makespan);
}

TEST(SecondOrder, HandlesUnorderedPairsBothDirections) {
  // Pair coverage regression test: a graph where the higher-id task
  // reaches the lower-id one (construction order reversed).
  expmk::graph::Dag g;
  const auto late = g.add_task("late", 1.0);   // id 0
  const auto early = g.add_task("early", 1.0); // id 1
  g.add_edge(early, late);                     // 1 -> 0: j reaches i
  const FailureModel m{0.05};
  const double exact = exact_two_state(g, m);
  EXPECT_NEAR(second_order(g, m).expected_makespan, exact, 5e-4);
  // And specifically closer than first order.
  EXPECT_LT(std::fabs(second_order(g, m).expected_makespan - exact),
            std::fabs(first_order(g, m).expected_makespan() - exact) + 1e-15);
}

TEST(SecondOrder, DiamondAgainstExactSmallLambda) {
  const auto g = expmk::test::diamond(0.3, 0.2, 0.4, 0.1);
  const FailureModel m{0.01};
  EXPECT_NEAR(second_order(g, m).expected_makespan, exact_two_state(g, m),
              1e-6);
}

}  // namespace
