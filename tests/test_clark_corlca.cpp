// Tests for the correlation-aware Normal variants: full Clark covariance
// propagation and CorLCA. The canonical failure mode of Sculli is a
// re-converging fork (two branches sharing a long common prefix): ignoring
// the correlation overestimates the max. Both variants must fix it.

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact.hpp"
#include "gen/cholesky.hpp"
#include "gen/random_dags.hpp"
#include "normal/clark_full.hpp"
#include "normal/corlca.hpp"
#include "normal/sculli.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::core::exact_two_state;
using expmk::core::FailureModel;
using expmk::normal::clark_full;
using expmk::normal::corlca;
using expmk::normal::sculli;

/// Prefix chain -> fork into two one-task branches -> join. The branch
/// completion times share the prefix variance, i.e. are highly correlated.
expmk::graph::Dag shared_prefix_fork(int prefix_len) {
  expmk::graph::Dag g;
  expmk::graph::TaskId prev = expmk::graph::kNoTask;
  for (int i = 0; i < prefix_len; ++i) {
    const auto t = g.add_task("P" + std::to_string(i), 0.5);
    if (prev != expmk::graph::kNoTask) g.add_edge(prev, t);
    prev = t;
  }
  const auto b1 = g.add_task("B1", 0.3);
  const auto b2 = g.add_task("B2", 0.3);
  const auto join = g.add_task("J", 0.2);
  g.add_edge(prev, b1);
  g.add_edge(prev, b2);
  g.add_edge(b1, join);
  g.add_edge(b2, join);
  return g;
}

TEST(ClarkFull, ChainMatchesSculliExactly) {
  const auto g = expmk::gen::uniform_chain(5, 0.4);
  const FailureModel m{0.2};
  EXPECT_NEAR(clark_full(g, m).expected_makespan(),
              sculli(g, m).expected_makespan(), 1e-12);
}

TEST(ClarkFull, CorrectsSharedPrefixBias) {
  const auto g = shared_prefix_fork(8);
  const FailureModel m{0.25};
  const double exact = exact_two_state(g, m);
  const double err_sculli =
      std::fabs(sculli(g, m).expected_makespan() - exact);
  const double err_full =
      std::fabs(clark_full(g, m).expected_makespan() - exact);
  EXPECT_LT(err_full, err_sculli);
}

TEST(CorLca, CorrectsSharedPrefixBias) {
  const auto g = shared_prefix_fork(8);
  const FailureModel m{0.25};
  const double exact = exact_two_state(g, m);
  const double err_sculli =
      std::fabs(sculli(g, m).expected_makespan() - exact);
  const double err_corlca =
      std::fabs(corlca(g, m).expected_makespan() - exact);
  EXPECT_LT(err_corlca, err_sculli);
}

TEST(ClarkFull, TracksFullCorrelationOnSharedPrefix) {
  // With a long prefix and tiny branches, the branch completion times are
  // almost perfectly correlated; the max then adds almost nothing beyond
  // one branch. clark_full must land within the normality error floor
  // (~0.5%), far below Sculli's correlation-blind bias on this shape.
  const auto g = shared_prefix_fork(12);
  const FailureModel m{0.15};
  const double exact = exact_two_state(g, m);
  EXPECT_NEAR(clark_full(g, m).expected_makespan(), exact, 0.005 * exact);
}

TEST(ClarkCorlca, AgreeWithSculliWhenIndependent) {
  // Fork from a zero-weight root: branches share no randomness, so all
  // three methods coincide.
  expmk::graph::Dag g;
  const auto root = g.add_task(0.0);
  const auto a = g.add_task(0.7);
  const auto b = g.add_task(0.6);
  g.add_edge(root, a);
  g.add_edge(root, b);
  const FailureModel m{0.3};
  const double s = sculli(g, m).expected_makespan();
  EXPECT_NEAR(clark_full(g, m).expected_makespan(), s, 1e-10);
  EXPECT_NEAR(corlca(g, m).expected_makespan(), s, 1e-10);
}

class NormalVariantsSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(NormalVariantsSweep, AllVariantsLandNearExact) {
  const auto g = expmk::gen::erdos_dag(12, 0.3, GetParam());
  const FailureModel m{0.05};
  const double exact = exact_two_state(g, m);
  for (const double est :
       {sculli(g, m).expected_makespan(), clark_full(g, m).expected_makespan(),
        corlca(g, m).expected_makespan()}) {
    EXPECT_NEAR(est, exact, 0.06 * exact);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalVariantsSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(ClarkFull, CorrelationImprovesCholeskyEstimate) {
  // On a real factorization DAG the correlation-aware estimate should not
  // be worse than Sculli by more than noise; typically it is better.
  const auto g = expmk::gen::cholesky_dag(4);
  const FailureModel m = expmk::core::calibrate(g, 0.01);
  const double s = sculli(g, m).expected_makespan();
  const double f = clark_full(g, m).expected_makespan();
  // Both close to each other; full must not blow up.
  EXPECT_NEAR(f, s, 0.05 * s);
  // And the fully-correlated estimate is below Sculli's independent-max
  // estimate (correlation can only reduce E[max]).
  EXPECT_LE(f, s + 1e-9);
}

TEST(ClarkFull, SizeLimitEnforced) {
  // 8193 tasks exceeds the dense-covariance limit.
  const auto g = expmk::gen::independent_tasks(10, 1);
  (void)g;  // small graph fine:
  EXPECT_NO_THROW((void)clark_full(g, FailureModel{0.1}));
}

TEST(CorLca, EmptyGraphThrows) {
  EXPECT_THROW((void)corlca(expmk::graph::Dag{}, FailureModel{0.1}),
               std::invalid_argument);
}

}  // namespace
