// Tests for core/criticality: deterministic slack and Monte-Carlo
// criticality probabilities.

#include <gtest/gtest.h>

#include "core/criticality.hpp"
#include "gen/cholesky.hpp"
#include "gen/random_dags.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::core::critical_tasks;
using expmk::core::criticality_probabilities;
using expmk::core::CriticalityConfig;
using expmk::core::FailureModel;
using expmk::core::slacks;

TEST(Slack, DiamondValues) {
  const auto g = expmk::test::diamond(1.0, 2.0, 3.0, 4.0);  // d = 8 via A-C-D
  const auto s = slacks(g);
  EXPECT_DOUBLE_EQ(s[g.find_by_name("A")], 0.0);
  EXPECT_DOUBLE_EQ(s[g.find_by_name("C")], 0.0);
  EXPECT_DOUBLE_EQ(s[g.find_by_name("D")], 0.0);
  EXPECT_DOUBLE_EQ(s[g.find_by_name("B")], 1.0);  // 8 - (1+2+4)
}

TEST(Slack, CriticalTasksAreZeroSlack) {
  const auto g = expmk::gen::cholesky_dag(5);
  const auto crit = critical_tasks(g);
  const auto s = slacks(g);
  EXPECT_FALSE(crit.empty());
  for (const auto t : crit) EXPECT_LE(s[t], 1e-12);
  // A critical path has at least depth-many tasks.
  EXPECT_GE(crit.size(), 5u);
}

TEST(Criticality, ZeroLambdaMatchesDeterministicSlack) {
  const auto g = expmk::test::diamond(1.0, 2.0, 3.0, 4.0);
  CriticalityConfig cfg;
  cfg.trials = 200;
  const auto p = criticality_probabilities(g, FailureModel{0.0}, cfg);
  EXPECT_DOUBLE_EQ(p[g.find_by_name("A")], 1.0);
  EXPECT_DOUBLE_EQ(p[g.find_by_name("C")], 1.0);
  EXPECT_DOUBLE_EQ(p[g.find_by_name("B")], 0.0);
}

TEST(Criticality, FailuresMakeSlackTasksSometimesCritical) {
  // B (weight 2, slack 1) becomes critical when it fails (weight 4 > 3).
  const auto g = expmk::test::diamond(1.0, 2.0, 3.0, 4.0);
  const FailureModel m{0.3};  // sizeable failure probability
  CriticalityConfig cfg;
  cfg.trials = 20'000;
  const auto p = criticality_probabilities(g, m, cfg);
  const auto B = g.find_by_name("B");
  const auto C = g.find_by_name("C");
  EXPECT_GT(p[B], 0.05);
  EXPECT_LT(p[B], 0.9);
  EXPECT_GT(p[C], p[B]);  // C stays the likelier critical branch
  // A and D are on every path.
  EXPECT_DOUBLE_EQ(p[g.find_by_name("A")], 1.0);
  EXPECT_DOUBLE_EQ(p[g.find_by_name("D")], 1.0);
}

TEST(Criticality, ProbabilitiesAreProbabilities) {
  const auto g = expmk::gen::erdos_dag(25, 0.2, 7);
  CriticalityConfig cfg;
  cfg.trials = 2'000;
  const auto p = criticality_probabilities(g, FailureModel{0.1}, cfg);
  for (const double x : p) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Criticality, Deterministic) {
  const auto g = expmk::gen::cholesky_dag(3);
  CriticalityConfig cfg;
  cfg.trials = 500;
  const auto a = criticality_probabilities(g, FailureModel{0.1}, cfg);
  const auto b = criticality_probabilities(g, FailureModel{0.1}, cfg);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Criticality, BernoulliMatchesHandComputedProbability) {
  // Two independent tasks 1.0 and 0.9 with two-state failures: task 2 is
  // critical iff it fails and task 1 does not (1.8 > 1.0), or both fail
  // (1.8 < 2.0: then task 1 is the max — so only "fails & other ok").
  expmk::graph::Dag g;
  g.add_task(1.0);
  g.add_task(0.9);
  const FailureModel m{0.2};
  const double p1 = m.p_fail(1.0), p2 = m.p_fail(0.9);
  const double expected = (1.0 - p1) * p2;  // t2 critical cases
  CriticalityConfig cfg;
  cfg.trials = 100'000;
  cfg.retry = expmk::core::RetryModel::TwoState;
  const auto p = criticality_probabilities(g, m, cfg);
  EXPECT_NEAR(p[1], expected, 0.01);
  EXPECT_NEAR(p[0], 1.0 - expected, 0.01);
}

}  // namespace
