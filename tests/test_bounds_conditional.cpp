// Tests for core/bounds (analytic envelope) and mc/conditional
// (zero-failure-stratum Monte Carlo).

#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "core/exact.hpp"
#include "core/first_order.hpp"
#include "gen/cholesky.hpp"
#include "gen/random_dags.hpp"
#include "graph/longest_path.hpp"
#include "mc/conditional.hpp"
#include "mc/engine.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::core::exact_two_state;
using expmk::core::FailureModel;
using expmk::core::makespan_bounds;
using expmk::mc::ConditionalMcConfig;
using expmk::mc::run_conditional_monte_carlo;

TEST(Bounds, EnvelopeContainsExactOnEnumerableGraphs) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const auto g = expmk::gen::erdos_dag(12, 0.3, seed);
    const FailureModel m{0.2};
    const auto b = makespan_bounds(g, m);
    const double exact = exact_two_state(g, m);
    EXPECT_LE(b.failure_free, exact + 1e-12) << seed;
    EXPECT_LE(b.jensen_lower, exact + 1e-9) << seed;
    EXPECT_GE(b.level_upper, exact - 1e-9) << seed;
    EXPECT_GE(b.jensen_lower, b.failure_free - 1e-12) << seed;
  }
}

TEST(Bounds, ChainBoundsAreTight) {
  // On a chain every level holds one task: both Jensen and the level
  // bound are exact.
  const auto g = expmk::gen::uniform_chain(6, 0.5);
  const FailureModel m{0.3};
  const auto b = makespan_bounds(g, m);
  const double exact = exact_two_state(g, m);
  EXPECT_NEAR(b.jensen_lower, exact, 1e-12);
  EXPECT_NEAR(b.level_upper, exact, 1e-12);
}

TEST(Bounds, IndependentTasksUpperIsTight) {
  // All tasks in one level: the level bound IS E[max], i.e. exact.
  const auto g = expmk::gen::independent_tasks(8, 3);
  const FailureModel m{0.4};
  const auto b = makespan_bounds(g, m);
  EXPECT_NEAR(b.level_upper, exact_two_state(g, m), 1e-9);
  // Jensen is strictly loose here (max of means < mean of max).
  EXPECT_LT(b.jensen_lower, b.level_upper);
}

TEST(Bounds, FirstOrderRespectsEnvelopeAtSmallLambda) {
  const auto g = expmk::gen::cholesky_dag(5);
  const FailureModel m = expmk::core::calibrate(g, 0.001);
  const auto b = makespan_bounds(g, m);
  const double fo = expmk::core::first_order(g, m).expected_makespan();
  EXPECT_GE(fo, b.failure_free);
  EXPECT_LE(fo, b.level_upper * (1.0 + 1e-9));
}

TEST(Bounds, ZeroLambdaCollapsesEverything) {
  const auto g = expmk::test::diamond(1.0, 2.0, 3.0, 4.0);
  const auto b = makespan_bounds(g, FailureModel{0.0});
  EXPECT_DOUBLE_EQ(b.failure_free, 8.0);
  EXPECT_DOUBLE_EQ(b.jensen_lower, 8.0);
  // Level bound remains a decomposition bound even deterministically:
  // levels {A}, {B, C}, {D} -> 1 + 3 + 4 = 8 here (C dominates B).
  EXPECT_DOUBLE_EQ(b.level_upper, 8.0);
}

TEST(ConditionalMc, MatchesExactWithinCi) {
  const auto g = expmk::test::diamond(0.4, 0.3, 0.5, 0.2);
  const FailureModel m{0.1};
  ConditionalMcConfig cfg;
  cfg.trials = 100'000;
  const auto r = run_conditional_monte_carlo(g, m, cfg);
  const double exact = exact_two_state(g, m);
  EXPECT_NEAR(r.mean, exact, 4.0 * r.ci95_half_width + 1e-9);
  // p0 is exact.
  double p0 = 1.0;
  for (expmk::graph::TaskId i = 0; i < g.task_count(); ++i) {
    p0 *= m.p_success(g.weight(i));
  }
  EXPECT_NEAR(r.p_zero_failures, p0, 1e-15);
  EXPECT_GE(r.conditional_mean, r.critical_path);
}

TEST(ConditionalMc, Deterministic) {
  const auto g = expmk::gen::cholesky_dag(3);
  const FailureModel m = expmk::core::calibrate(g, 0.01);
  ConditionalMcConfig cfg;
  cfg.trials = 5'000;
  const auto a = run_conditional_monte_carlo(g, m, cfg);
  const auto b = run_conditional_monte_carlo(g, m, cfg);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
}

TEST(ConditionalMc, ZeroLambdaIsAnalytic) {
  const auto g = expmk::gen::cholesky_dag(3);
  const auto r = run_conditional_monte_carlo(g, FailureModel{0.0}, {});
  EXPECT_DOUBLE_EQ(r.mean, r.critical_path);
  EXPECT_DOUBLE_EQ(r.std_error, 0.0);
  EXPECT_EQ(r.trials, 0u);
}

TEST(ConditionalMc, BeatsPlainMcAtLowPfail) {
  // Equal trial counts: the conditional estimator's CI should be several
  // times tighter at pfail = 1e-3 (most plain trials are zero-failure).
  const auto g = expmk::gen::cholesky_dag(6);
  const FailureModel m = expmk::core::calibrate(g, 0.001);

  expmk::mc::McConfig plain_cfg;
  plain_cfg.trials = 30'000;
  plain_cfg.retry = expmk::core::RetryModel::TwoState;
  const auto plain = expmk::mc::run_monte_carlo(g, m, plain_cfg);

  ConditionalMcConfig cond_cfg;
  cond_cfg.trials = 30'000;
  const auto cond = run_conditional_monte_carlo(g, m, cond_cfg);

  EXPECT_LT(cond.std_error, plain.std_error / 2.0);
  // And both agree with each other within CIs.
  EXPECT_NEAR(cond.mean, plain.mean,
              4.0 * (plain.ci95_half_width + cond.ci95_half_width));
}

TEST(ConditionalMc, ZeroTrialsThrowsInsteadOfClamping) {
  const auto g = expmk::test::diamond();
  ConditionalMcConfig cfg;
  cfg.trials = 0;
  EXPECT_THROW((void)run_conditional_monte_carlo(g, FailureModel{0.1}, cfg),
               std::invalid_argument);
  cfg.trials = 10;
  cfg.max_rejections_per_trial = 0;
  EXPECT_THROW((void)run_conditional_monte_carlo(g, FailureModel{0.1}, cfg),
               std::invalid_argument);
}

TEST(ConditionalMc, MicroscopicFailureProbabilityCensorsEveryTrial) {
  // 1 - p0 ~ 3e-15: no redraw will ever produce a failure, so every trial
  // must be censored — NOT converted into a fabricated failure-free
  // sample (the old fallback), which polluted the conditional statistics.
  const auto g = expmk::gen::uniform_chain(3, 1.0);
  const FailureModel m{1e-15};
  ConditionalMcConfig cfg;
  cfg.trials = 200;
  cfg.max_rejections_per_trial = 20;
  const auto r = run_conditional_monte_carlo(g, m, cfg);
  EXPECT_EQ(r.censored_trials, 200u);
  EXPECT_EQ(r.trials, 0u);  // zero accepted conditional samples
  EXPECT_DOUBLE_EQ(r.conditional_mean, r.critical_path);
  EXPECT_NEAR(r.mean, r.critical_path, 1e-12);
  EXPECT_DOUBLE_EQ(r.std_error, 0.0);
}

TEST(ConditionalMc, CensoredTrialsDoNotBiasConditionalMean) {
  // Cap the rejection loop at ONE redraw: a trial is censored exactly when
  // its single pattern draw has no failure (probability p0 ~ 0.5 here), so
  // about half the trials censor. The old fallback pushed d(G) into the
  // conditional statistics for every censored trial, dragging
  // conditional_mean (and mean through it) far below the exact value.
  const auto g = expmk::test::diamond(0.4, 0.3, 0.5, 0.2);
  const FailureModel m{0.5};
  ConditionalMcConfig cfg;
  cfg.trials = 60'000;
  cfg.max_rejections_per_trial = 1;
  const auto r = run_conditional_monte_carlo(g, m, cfg);

  EXPECT_EQ(r.trials + r.censored_trials, 60'000u);
  const double p0 = r.p_zero_failures;
  EXPECT_NEAR(static_cast<double>(r.censored_trials) / 60'000.0, p0, 0.01);

  const double exact = exact_two_state(g, m);
  const double cond_exact =
      (exact - p0 * r.critical_path) / (1.0 - p0);
  const double cond_stderr = r.std_error / (1.0 - p0);
  EXPECT_NEAR(r.conditional_mean, cond_exact, 5.0 * cond_stderr + 1e-9);
  EXPECT_NEAR(r.mean, exact, 5.0 * r.std_error + 1e-9);
}

TEST(ConditionalMc, RejectionCountMatchesTheory) {
  // Expected redraws per accepted trial = 1/(1-p0) - 1 = p0/(1-p0).
  const auto g = expmk::gen::cholesky_dag(4);
  const FailureModel m = expmk::core::calibrate(g, 0.001);
  ConditionalMcConfig cfg;
  cfg.trials = 20'000;
  const auto r = run_conditional_monte_carlo(g, m, cfg);
  const double p0 = r.p_zero_failures;
  const double expected = p0 / (1.0 - p0);
  EXPECT_NEAR(r.avg_rejections, expected, 0.15 * expected);
}

}  // namespace
