// Unit tests for graph/longest_path: the d(G) computation every estimator
// builds on, cross-checked against a brute-force path enumeration.

#include <gtest/gtest.h>

#include <limits>

#include "gen/random_dags.hpp"
#include "graph/longest_path.hpp"
#include "graph/topological.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::graph::critical_path;
using expmk::graph::critical_path_length;
using expmk::graph::longest_from;
using expmk::graph::topological_order;

TEST(LongestPath, DiamondTakesHeavierBranch) {
  const auto g = expmk::test::diamond(1.0, 2.0, 3.0, 1.0);
  EXPECT_DOUBLE_EQ(critical_path_length(g), 1.0 + 3.0 + 1.0);
}

TEST(LongestPath, ChainSumsAllWeights) {
  const auto g = expmk::gen::uniform_chain(10, 0.5);
  EXPECT_DOUBLE_EQ(critical_path_length(g), 5.0);
}

TEST(LongestPath, IndependentTasksTakeMaximum) {
  auto g = expmk::graph::Dag();
  g.add_task(1.0);
  g.add_task(7.0);
  g.add_task(3.0);
  EXPECT_DOUBLE_EQ(critical_path_length(g), 7.0);
}

TEST(LongestPath, CustomWeightsOverrideDagWeights) {
  const auto g = expmk::test::diamond(1.0, 2.0, 3.0, 1.0);
  const auto topo = topological_order(g);
  const std::vector<double> w = {1.0, 10.0, 3.0, 1.0};  // B now heavier
  EXPECT_DOUBLE_EQ(critical_path_length(g, w, topo), 12.0);
}

TEST(LongestPath, MismatchedSizesThrow) {
  const auto g = expmk::test::diamond();
  const auto topo = topological_order(g);
  const std::vector<double> wrong = {1.0, 2.0};
  EXPECT_THROW((void)critical_path_length(g, wrong, topo),
               std::invalid_argument);
}

TEST(LongestPath, PathExtractionMatchesLength) {
  const auto g = expmk::test::diamond(1.0, 2.0, 3.0, 1.0);
  const auto topo = topological_order(g);
  const auto cp = critical_path(g, g.weights(), topo);
  EXPECT_DOUBLE_EQ(cp.length, 5.0);
  ASSERT_EQ(cp.tasks.size(), 3u);
  EXPECT_EQ(g.name(cp.tasks[0]), "A");
  EXPECT_EQ(g.name(cp.tasks[1]), "C");
  EXPECT_EQ(g.name(cp.tasks[2]), "D");
  // The extracted path must be a real path.
  for (std::size_t i = 0; i + 1 < cp.tasks.size(); ++i) {
    const auto succ = g.successors(cp.tasks[i]);
    EXPECT_NE(std::find(succ.begin(), succ.end(), cp.tasks[i + 1]),
              succ.end());
  }
}

TEST(LongestPath, LongestFromComputesInclusiveLengths) {
  const auto g = expmk::test::diamond(1.0, 2.0, 3.0, 4.0);
  const auto topo = topological_order(g);
  const auto lp = longest_from(g, g.find_by_name("A"), g.weights(), topo);
  EXPECT_DOUBLE_EQ(lp[g.find_by_name("A")], 1.0);
  EXPECT_DOUBLE_EQ(lp[g.find_by_name("B")], 3.0);
  EXPECT_DOUBLE_EQ(lp[g.find_by_name("C")], 4.0);
  EXPECT_DOUBLE_EQ(lp[g.find_by_name("D")], 8.0);  // A-C-D
}

TEST(LongestPath, LongestFromUnreachableIsMinusInfinity) {
  const auto g = expmk::test::n_graph();
  const auto topo = topological_order(g);
  const auto lp = longest_from(g, g.find_by_name("B"), g.weights(), topo);
  EXPECT_EQ(lp[g.find_by_name("C")], -std::numeric_limits<double>::infinity());
  EXPECT_GT(lp[g.find_by_name("D")], 0.0);
}

// Property sweep: DP result equals brute-force enumeration on random DAGs.
class LongestPathSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LongestPathSweep, MatchesBruteForce) {
  const auto seed = GetParam();
  const auto g = expmk::gen::erdos_dag(12, 0.25, seed);
  const auto topo = topological_order(g);
  const double dp = critical_path_length(g, g.weights(), topo);
  const double brute = expmk::test::brute_force_longest_path(g, g.weights());
  EXPECT_NEAR(dp, brute, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LongestPathSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
