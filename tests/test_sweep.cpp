// Tests for src/exp: the evaluator registry (catalogue, capability
// gating, error containment), the cross-method consistency contract —
// every registered evaluator within its documented tolerance of the exact
// oracle on small generator DAGs — and the sweep determinism contract:
// SweepRunner's JSON artifact is byte-identical across thread counts
// (extending the PR 1 bit-identity contract to the sweep layer).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/exact.hpp"
#include "core/failure_model.hpp"
#include "exp/evaluator.hpp"
#include "exp/sweep.hpp"
#include "gen/cholesky.hpp"
#include "gen/random_dags.hpp"
#include "graph/longest_path.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::core::calibrate;
using expmk::core::exact_two_state;
using expmk::core::FailureModel;
using expmk::core::RetryModel;
using expmk::exp::EstimateKind;
using expmk::exp::EvalOptions;
using expmk::exp::Evaluator;
using expmk::exp::EvaluatorRegistry;
using expmk::exp::SweepGrid;
using expmk::exp::SweepResult;
using expmk::exp::SweepRunner;

TEST(Registry, CatalogueIsComplete) {
  const auto& reg = EvaluatorRegistry::builtin();
  for (const char* name :
       {"exact", "exact.geo", "fo", "so", "sp", "dodin", "sculli", "corlca",
        "clark", "bounds.lower", "bounds.upper", "mc", "cmc", "sp.hier",
        "dodin.hier", "mc.hier"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
  EXPECT_EQ(reg.size(), 16u);
  EXPECT_EQ(reg.find("no-such-method"), nullptr);
}

TEST(Registry, DuplicateNamesRejected) {
  EvaluatorRegistry reg;
  const auto fn = [](const expmk::scenario::Scenario&, const EvalOptions&,
                     expmk::exp::Workspace&,
                     expmk::exp::EvalResult& r) { r.mean = 1.0; };
  reg.add(Evaluator("x", "", {}, fn));
  EXPECT_THROW(reg.add(Evaluator("x", "", {}, fn)), std::invalid_argument);
}

TEST(Registry, CapabilityGatingReportsUnsupported) {
  const auto& reg = EvaluatorRegistry::builtin();
  const FailureModel m{0.1};

  // Enumeration limit: 30 tasks > kMaxExactTasks.
  const auto big = expmk::gen::erdos_dag(30, 0.2, 1);
  const auto r1 = reg.find("exact")->evaluate(big, m, RetryModel::TwoState);
  EXPECT_FALSE(r1.supported);
  EXPECT_TRUE(std::isnan(r1.mean));
  EXPECT_FALSE(r1.note.empty());

  // Retry model: Dodin is two-state only.
  const auto g = expmk::test::diamond();
  const auto r2 = reg.find("dodin")->evaluate(g, m, RetryModel::Geometric);
  EXPECT_FALSE(r2.supported);

  // Method-specific failure: the SP evaluator on a non-SP graph must
  // report unsupported (with a note), not crash the sweep.
  const auto r3 =
      reg.find("sp")->evaluate(expmk::test::n_graph(), m,
                               RetryModel::TwoState);
  EXPECT_FALSE(r3.supported);
  EXPECT_NE(r3.note.find("series-parallel"), std::string::npos);
}

TEST(Registry, SpEvaluatorIsExactOnSpGraphs) {
  const auto g = expmk::gen::random_series_parallel(6, 11);
  const FailureModel m = calibrate(g, 0.01);
  const auto r = EvaluatorRegistry::builtin().find("sp")->evaluate(
      g, m, RetryModel::TwoState);
  ASSERT_TRUE(r.supported);
  EXPECT_NEAR(r.mean, exact_two_state(g, m), 1e-9);
}

// The cross-method consistency contract: on every small generator DAG,
// each registered two-state evaluator matches core::exact_two_state within
// the tolerance documented in its Capabilities (estimates), or brackets it
// (bounds). Stochastic methods get 5 standard errors on top.
TEST(Consistency, EveryEvaluatorWithinDocumentedToleranceOfExact) {
  std::vector<std::pair<std::string, expmk::graph::Dag>> dags;
  dags.emplace_back("diamond", expmk::test::diamond(0.4, 0.3, 0.5, 0.2));
  dags.emplace_back("n_graph", expmk::test::n_graph(0.2, 0.3, 0.25, 0.15));
  dags.emplace_back("chain6", expmk::gen::chain_dag(6, 7));
  dags.emplace_back("forkjoin", expmk::gen::fork_join_dag(5, 11));
  dags.emplace_back("sp6", expmk::gen::random_series_parallel(6, 3));
  dags.emplace_back("erdos10", expmk::gen::erdos_dag(10, 0.3, 5));
  dags.emplace_back("layered", expmk::gen::layered_random(3, 3, 0.4, 9));
  dags.emplace_back("wheatstone", expmk::gen::wheatstone_bridge());

  EvalOptions opt;
  opt.mc_trials = 40'000;
  opt.seed = 99;

  const auto& reg = EvaluatorRegistry::builtin();
  for (const auto& [label, g] : dags) {
    ASSERT_LE(g.task_count(), expmk::core::kMaxExactTasks) << label;
    const FailureModel model = calibrate(g, 0.01);
    const double exact = exact_two_state(g, model);

    for (const Evaluator& e : reg.evaluators()) {
      const auto& caps = e.capabilities();
      if (!caps.two_state) continue;
      if (g.task_count() > caps.max_tasks) continue;
      const auto r = e.evaluate(g, model, RetryModel::TwoState, opt);
      const std::string where = label + " / " + std::string(e.name());
      if (!r.supported) {
        // The only legal in-capability bailouts are the SP evaluators on
        // graphs that are not (or do not collapse to) series-parallel.
        EXPECT_TRUE(e.name() == "sp" || e.name() == "sp.hier")
            << where << ": " << r.note;
        continue;
      }
      switch (caps.kind) {
        case EstimateKind::Estimate: {
          const double tol = caps.rel_tolerance * exact +
                             (caps.stochastic ? 5.0 * r.std_error : 0.0);
          EXPECT_NEAR(r.mean, exact, tol) << where;
          break;
        }
        case EstimateKind::LowerBound:
          EXPECT_LE(r.mean, exact * (1.0 + 1e-9)) << where;
          break;
        case EstimateKind::UpperBound:
          EXPECT_GE(r.mean, exact * (1.0 - 1e-9)) << where;
          break;
      }
    }
  }
}

// The explicit zero-failure path (pfail == 0 -> lambda == 0), end-to-end:
// every supporting evaluator must yield exactly d(G), not just a value
// close to it — there is no randomness left in the model.
TEST(Consistency, ZeroPfailYieldsFailureFreeMakespanAcrossEvaluators) {
  const auto g = expmk::gen::cholesky_dag(3);
  const FailureModel model = calibrate(g, 0.0);
  ASSERT_TRUE(model.failure_free());
  const double d = expmk::graph::critical_path_length(g);

  EvalOptions opt;
  opt.mc_trials = 500;
  for (const char* name :
       {"exact", "fo", "so", "dodin", "sp", "bounds.lower", "mc", "cmc"}) {
    const auto* e = EvaluatorRegistry::builtin().find(name);
    ASSERT_NE(e, nullptr) << name;
    const auto r = e->evaluate(g, model, RetryModel::TwoState, opt);
    if (!r.supported) continue;  // sp: cholesky is not series-parallel
    EXPECT_NEAR(r.mean, d, 1e-12) << name;
    EXPECT_DOUBLE_EQ(r.std_error, 0.0) << name;
  }
  // The level-decomposition bound stays a (possibly loose) upper bound
  // even deterministically — it must still sit at or above d(G).
  const auto upper = EvaluatorRegistry::builtin().find("bounds.upper")->
      evaluate(g, model, RetryModel::TwoState, opt);
  ASSERT_TRUE(upper.supported);
  EXPECT_GE(upper.mean, d - 1e-12);
}

TEST(Sweep, UnknownNamesAndBadConfigsFailLoudly) {
  const SweepRunner runner;
  SweepGrid grid;
  grid.generators = {"lu"};
  grid.sizes = {3};
  grid.pfails = {0.01};
  grid.methods = {"fo"};
  grid.reference = "";

  SweepGrid bad = grid;
  bad.methods = {"no-such-method"};
  EXPECT_THROW((void)runner.run(bad), std::invalid_argument);
  bad = grid;
  bad.generators = {"no-such-generator"};
  EXPECT_THROW((void)runner.run(bad), std::invalid_argument);
  bad = grid;
  bad.options.mc_trials = 0;
  EXPECT_THROW((void)runner.run(bad), std::invalid_argument);
  bad = grid;
  bad.pfails = {};
  EXPECT_THROW((void)runner.run(bad), std::invalid_argument);
  // Out-of-domain grid values must fail upfront too, not mid-sweep from
  // inside a pool worker after cells have burned compute.
  bad = grid;
  bad.pfails = {0.001, 1.5};
  EXPECT_THROW((void)runner.run(bad), std::invalid_argument);
  bad = grid;
  bad.pfails = {std::nan("")};
  EXPECT_THROW((void)runner.run(bad), std::invalid_argument);
  bad = grid;
  bad.sizes = {0};
  EXPECT_THROW((void)runner.run(bad), std::invalid_argument);
}

TEST(Sweep, RelativeErrorsAgainstDesignatedReference) {
  SweepGrid grid;
  grid.generators = {"cholesky"};
  grid.sizes = {3};
  grid.pfails = {0.01};
  grid.methods = {"fo", "bounds.lower"};
  grid.reference = "exact";

  const auto result = SweepRunner().run(grid);
  // Reference prepended: exact, fo, bounds.lower.
  ASSERT_EQ(result.cells.size(), 3u);
  const auto& ref = result.cells[0];
  EXPECT_EQ(ref.method, "exact");
  ASSERT_TRUE(ref.result.supported);
  EXPECT_DOUBLE_EQ(ref.relative_error, 0.0);

  const auto g = expmk::gen::cholesky_dag(3);
  const FailureModel model = calibrate(g, 0.01);
  const double exact = exact_two_state(g, model);
  EXPECT_NEAR(ref.result.mean, exact, 1e-12);
  for (std::size_t i = 1; i < result.cells.size(); ++i) {
    const auto& cell = result.cells[i];
    ASSERT_TRUE(cell.result.supported) << cell.method;
    EXPECT_DOUBLE_EQ(cell.reference_mean, ref.result.mean) << cell.method;
    EXPECT_NEAR(cell.relative_error,
                (cell.result.mean - exact) / exact, 1e-12)
        << cell.method;
  }
}

// The sweep-layer determinism contract: same grid -> byte-identical JSON
// artifact for ANY scenario-level thread count (and any evaluator-internal
// thread count — the MC engine's own contract), because per-cell seeds
// derive from grid coordinates and cells are stored by index.
TEST(Sweep, JsonArtifactBitIdenticalAcrossThreadCounts) {
  SweepGrid grid;
  grid.generators = {"lu", "sp"};
  grid.sizes = {4};
  grid.pfails = {0.001, 0.01};
  grid.methods = {"fo", "sculli", "bounds.lower", "bounds.upper", "sp",
                  "mc", "cmc"};
  grid.reference = "fo";
  grid.options.mc_trials = 2'000;
  grid.options.threads = 1;

  const SweepRunner runner;
  const SweepResult a = runner.run(grid, 1);
  const SweepResult b = runner.run(grid, 2);
  const SweepResult c = runner.run(grid, 7);
  const std::string json = a.json();
  EXPECT_EQ(json, b.json());
  EXPECT_EQ(json, c.json());

  // Evaluator-internal threads must not perturb the artifact either.
  SweepGrid wide = grid;
  wide.options.threads = 7;
  EXPECT_EQ(json, runner.run(wide, 2).json());

  // 2 generators x 1 size x 2 pfails x 7 methods (the reference "fo" is
  // already listed, so it is not prepended a second time).
  EXPECT_EQ(a.cells.size(), 2u * 2u * 7u);
  // The artifact embeds the determinism-relevant metadata.
  EXPECT_NE(json.find("\"schema\": \"expmk-sweep-v3\""), std::string::npos);
  EXPECT_NE(json.find("\"reference\": \"fo\""), std::string::npos);
  // v3: every cell carries the certified truncation envelope.
  EXPECT_NE(json.find("\"mean_lo\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_hi\""), std::string::npos);
}

TEST(Sweep, CsvHasOneRowPerCellPlusHeader) {
  SweepGrid grid;
  grid.generators = {"chain"};
  grid.sizes = {4};
  grid.pfails = {0.01};
  grid.methods = {"fo", "so"};
  grid.reference = "";

  const auto result = SweepRunner().run(grid);
  const std::string csv = result.csv();
  std::size_t lines = 0;
  for (const char ch : csv) lines += ch == '\n';
  EXPECT_EQ(lines, result.cells.size() + 1);
  EXPECT_EQ(csv.rfind("generator,size,tasks,edges,pfail,lambda,method", 0),
            0u);
}

// The expmk-sweep-v3 artifact is a versioned contract: a small fully
// deterministic grid (analytic methods only — no trial-count coupling,
// with the atom caps forced low so the certified mean_lo/mean_hi fields
// are exercised non-degenerately) is pinned BYTE-identical to a
// checked-in golden file, for several sweep thread counts. Regenerate
// after an intentional schema or estimator change with
//   EXPMK_REGEN_GOLDEN=1 ./expmk_tests --gtest_filter='*GoldenFile*'
// (The pin is exact for one toolchain: the cell means embed libm's exp()
// bits, so a libm change legitimately regenerates too.)
TEST(Sweep, V3ArtifactByteStableAgainstGoldenFileAcrossThreadCounts) {
  SweepGrid grid;
  grid.generators = {"chain", "sp"};
  grid.sizes = {6};
  grid.pfails = {0.01, 0.2};
  grid.methods = {"fo", "so", "sp", "dodin", "bounds.lower", "bounds.upper"};
  grid.reference = "exact";
  grid.options.dodin_atoms = 4;
  grid.options.sp_max_atoms = 5;

  const SweepRunner runner;
  const std::string json = runner.run(grid, 1).json();
  EXPECT_EQ(json, runner.run(grid, 2).json());
  EXPECT_EQ(json, runner.run(grid, 5).json());
  // The forced caps actually fired somewhere (non-degenerate envelope).
  EXPECT_NE(json.find("atom-cap truncation"), std::string::npos);

  const std::string path =
      std::string(EXPMK_TEST_GOLDEN_DIR) + "/sweep_v3.json";
  if (std::getenv("EXPMK_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << path;
    out << json << "\n";
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(json + "\n", buffer.str())
      << "expmk-sweep-v3 artifact drifted from " << path;
}

TEST(Sweep, SameGraphInstanceAcrossPfailValues) {
  // The paper's protocol: one DAG instance per (generator, size), swept
  // across every pfail — pinned here via the random families, whose
  // structure would change if the seed depended on the pfail index.
  SweepGrid grid;
  grid.generators = {"erdos"};
  grid.sizes = {12};
  grid.pfails = {0.001, 0.01, 0.1};
  grid.methods = {"fo"};
  grid.reference = "";

  const auto result = SweepRunner().run(grid);
  ASSERT_EQ(result.cells.size(), 3u);
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.tasks, result.cells[0].tasks);
    EXPECT_EQ(cell.edges, result.cells[0].edges);
  }
}

}  // namespace
