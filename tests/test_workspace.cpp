// Tests for exp::Workspace and the workspace-kernel refactor:
//
//  * lease/frame semantics: slot reuse across frames, monotonic growth,
//    release(), the per-thread local() pool;
//  * the ALLOCATION REGRESSION satellite: a counting global operator new
//    pins ZERO steady-state heap allocations for the analytic methods
//    (fo, so, bounds.lower/upper, sculli, corlca, clark, the exact
//    oracles, and — since the flat distribution engine — sp and dodin)
//    when evaluated on a warm workspace;
//  * the adapter bit-identity property: for all 13 evaluators x both
//    retry models x a spread of DAGs, the explicit-workspace path (cold
//    AND warm) returns results bitwise identical to the workspace-less
//    PR-3 Scenario path — a warm arena must never leak state between
//    evaluations;
//  * the sweep pooling contract: one workspace per worker thread, not
//    one per cell;
//  * run_trial_scatter_csr (the all-spans trial form the workspace
//    kernels consume) draws the same stream as the vector-based
//    run_trial.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/bounds.hpp"
#include "core/failure_model.hpp"
#include "exp/evaluator.hpp"
#include "exp/sweep.hpp"
#include "exp/workspace.hpp"
#include "gen/random_dags.hpp"
#include "mc/trial.hpp"
#include "prob/rng.hpp"
#include "scenario/scenario.hpp"
#include "test_helpers.hpp"

// ---------------------------------------------------------------------
// Counting global operator new. Replacing the global allocation functions
// in any TU of the test binary installs them binary-wide; the counter is
// always on (one relaxed atomic increment per allocation) and tests read
// deltas around the region of interest.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment (some
  // platforms enforce it by returning NULL).
  const auto a = static_cast<std::size_t>(align);
  const std::size_t rounded = ((size ? size : 1) + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using expmk::core::calibrate;
using expmk::core::FailureModel;
using expmk::core::RetryModel;
using expmk::exp::EvalOptions;
using expmk::exp::EvalResult;
using expmk::exp::Evaluator;
using expmk::exp::EvaluatorRegistry;
using expmk::exp::Workspace;
using expmk::graph::Dag;
using expmk::graph::TaskId;
using expmk::scenario::FailureSpec;
using expmk::scenario::Scenario;

// ----------------------------------------------------- lease mechanics

TEST(Workspace, FramesReuseSlotsAndGrowthIsMonotonic) {
  Workspace ws;
  const double* first_slot = nullptr;
  {
    const Workspace::Frame frame(ws);
    const auto a = ws.doubles(64);
    const auto b = ws.doubles(16);
    ASSERT_EQ(a.size(), 64u);
    ASSERT_EQ(b.size(), 16u);
    EXPECT_NE(a.data(), b.data());
    first_slot = a.data();
  }
  {
    // Same checkout sequence, smaller first request: the slot serves the
    // lease from its existing (never-shrunk) buffer.
    const Workspace::Frame frame(ws);
    const auto a = ws.doubles(32);
    EXPECT_EQ(a.data(), first_slot);
  }
  const std::size_t warm = ws.bytes_reserved();
  EXPECT_GE(warm, (64 + 16) * sizeof(double));
  {
    // A larger request may grow the slot, but capacity never shrinks.
    const Workspace::Frame frame(ws);
    (void)ws.doubles(128);
  }
  EXPECT_GE(ws.bytes_reserved(), warm);

  ws.release();
  EXPECT_EQ(ws.bytes_reserved(), 0u);
}

TEST(Workspace, TypedPoolsAreIndependent) {
  Workspace ws;
  const Workspace::Frame frame(ws);
  const auto d = ws.doubles(8);
  const auto u = ws.u32(8);
  const auto c = ws.u64(8);
  const auto m = ws.moments(8);
  const auto i = ws.ints(8);
  // All leases are live simultaneously and fully writable.
  d[7] = 1.0;
  u[7] = 2;
  c[7] = 3;
  m[7] = {4.0, 5.0};
  i[7] = 6;
  EXPECT_EQ(d[7] + m[7].mean, 5.0);
  EXPECT_EQ(u[7] + c[7] + static_cast<std::uint64_t>(i[7]), 11u);
}

TEST(Workspace, LocalIsOnePoolPerThread) {
  Workspace& a = Workspace::local();
  EXPECT_EQ(&a, &Workspace::local());
  Workspace* other = nullptr;
  std::thread t([&] { other = &Workspace::local(); });
  t.join();
  EXPECT_NE(other, nullptr);
  EXPECT_NE(other, &a);
}

// ------------------------------------------------ allocation regression

/// Evaluates `method` `reps` times on a warm `ws` and returns the number
/// of heap allocations the steady-state loop performed.
std::uint64_t steady_state_allocs(const Evaluator& e, const Scenario& sc,
                                  const EvalOptions& opt, Workspace& ws,
                                  int reps = 8) {
  double guard = 0.0;
  // Warm-up: grows the arenas to this method's high-water mark.
  guard += e.evaluate(sc, opt, ws).mean;
  guard += e.evaluate(sc, opt, ws).mean;
  const std::uint64_t before = g_alloc_count.load();
  for (int r = 0; r < reps; ++r) guard += e.evaluate(sc, opt, ws).mean;
  const std::uint64_t after = g_alloc_count.load();
  EXPECT_FALSE(std::isnan(guard));
  return after - before;
}

// The tentpole contract: on a warm workspace the six analytic methods
// perform ZERO steady-state heap allocations — per call, per rep, at all.
TEST(AllocationRegression, AnalyticMethodsAreAllocationFreeWhenWarm) {
  const Dag g = expmk::gen::erdos_dag(60, 0.2, 42);
  const FailureModel model = calibrate(g, 0.01);
  const auto& reg = EvaluatorRegistry::builtin();
  EvalOptions opt;
  Workspace ws;

  for (const RetryModel retry :
       {RetryModel::TwoState, RetryModel::Geometric}) {
    const Scenario sc = Scenario::compile(g, FailureSpec(model), retry);
    for (const char* name :
         {"fo", "so", "bounds.lower", "bounds.upper", "sculli", "corlca",
          "clark"}) {
      const Evaluator* e = reg.find(name);
      ASSERT_NE(e, nullptr) << name;
      if (retry == RetryModel::Geometric &&
          !e->capabilities().geometric) {
        continue;  // bounds are two-state statements; gated under geometric
      }
      EXPECT_EQ(steady_state_allocs(*e, sc, opt, ws), 0u)
          << name << (retry == RetryModel::TwoState ? " / two_state"
                                                    : " / geometric");
    }
  }
}

// Heterogeneous per-task rates run the same kernels on different cached
// constants — the zero-allocation contract must hold there too.
TEST(AllocationRegression, HeterogeneousScenarioIsAllocationFreeToo) {
  const Dag g = expmk::gen::layered_random(8, 8, 0.3, 7);
  const double lambda = calibrate(g, 0.01).lambda;
  std::vector<double> rates(g.task_count());
  for (TaskId i = 0; i < g.task_count(); ++i) {
    rates[i] = lambda * (0.25 + static_cast<double>(i % 7) * 0.5);
  }
  const Scenario sc = Scenario::compile(g, FailureSpec::per_task(rates),
                                        RetryModel::TwoState);
  const auto& reg = EvaluatorRegistry::builtin();
  EvalOptions opt;
  Workspace ws;
  for (const char* name :
       {"fo", "so", "bounds.lower", "bounds.upper", "sculli", "corlca",
        "clark"}) {
    EXPECT_EQ(steady_state_allocs(*reg.find(name), sc, opt, ws), 0u) << name;
  }
}

// The exact oracle rides the same arenas (its 2^V enumeration used to
// allocate per call); pin it as well, on a small graph.
TEST(AllocationRegression, ExactOracleIsAllocationFreeWhenWarm) {
  const Dag g = expmk::gen::erdos_dag(10, 0.3, 5);
  const Scenario sc = Scenario::compile(
      g, FailureSpec(calibrate(g, 0.01)), RetryModel::TwoState);
  Workspace ws;
  EXPECT_EQ(steady_state_allocs(*EvaluatorRegistry::builtin().find("exact"),
                                sc, {}, ws, 3),
            0u);
}

// The flat distribution engine removed the PR-4 sp/dodin exemption: the
// network, its adjacency, every intermediate distribution and all kernel
// scratch lease from the workspace, so sp, dodin, exact and exact.geo are
// allocation-free at steady state too. (A fired atom-cap truncation
// allocates the EvalResult::note it reports by design, so the fixtures
// run untruncated — which is also each method's default here.)
TEST(AllocationRegression, FlatDistributionEngineIsAllocationFreeWhenWarm) {
  const auto& reg = EvaluatorRegistry::builtin();
  Workspace ws;
  EvalOptions opt;
  opt.sp_max_atoms = 0;
  opt.dodin_atoms = 0;

  std::vector<std::pair<std::string, Dag>> dags;
  dags.emplace_back("sp12", expmk::gen::random_series_parallel(12, 3));
  dags.emplace_back("n_graph", expmk::test::n_graph(0.2, 0.3, 0.25, 0.15));
  dags.emplace_back("wheatstone", expmk::gen::wheatstone_bridge());

  for (const auto& [label, g] : dags) {
    for (const bool het : {false, true}) {
      std::vector<double> rates(g.task_count());
      const double lambda = calibrate(g, 0.02).lambda;
      for (TaskId i = 0; i < g.task_count(); ++i) {
        rates[i] = lambda * (0.25 + static_cast<double>(i % 5) * 0.4);
      }
      const Scenario sc =
          het ? Scenario::compile(g, FailureSpec::per_task(rates),
                                  RetryModel::TwoState)
              : Scenario::compile(g, FailureSpec(calibrate(g, 0.02)),
                                  RetryModel::TwoState);
      for (const char* name : {"sp", "dodin", "exact"}) {
        // sp's unsupported verdict on a non-SP graph heap-allocates the
        // note it reports, so its zero-alloc pin runs on the SP fixture.
        if (std::string(name) == "sp" && label != "sp12") continue;
        const Evaluator* e = reg.find(name);
        ASSERT_NE(e, nullptr);
        EXPECT_EQ(steady_state_allocs(*e, sc, opt, ws, 4), 0u)
            << label << " / " << name << (het ? " / het" : "");
      }
      const Scenario geo =
          het ? Scenario::compile(g, FailureSpec::per_task(rates),
                                  RetryModel::Geometric)
              : Scenario::compile(g, FailureSpec(calibrate(g, 0.02)),
                                  RetryModel::Geometric);
      EXPECT_EQ(steady_state_allocs(*reg.find("exact.geo"), geo, opt, ws, 3),
                0u)
          << label << " / exact.geo" << (het ? " / het" : "");
    }
  }
}

// --------------------------------------------- adapter property (x13)

std::vector<std::pair<std::string, Dag>> property_dags() {
  std::vector<std::pair<std::string, Dag>> dags;
  dags.emplace_back("diamond", expmk::test::diamond(0.4, 0.3, 0.5, 0.2));
  dags.emplace_back("chain6", expmk::gen::chain_dag(6, 7));
  dags.emplace_back("forkjoin", expmk::gen::fork_join_dag(5, 11));
  dags.emplace_back("sp6", expmk::gen::random_series_parallel(6, 3));
  dags.emplace_back("erdos10", expmk::gen::erdos_dag(10, 0.3, 5));
  return dags;
}

void expect_bit_identical(const EvalResult& a, const EvalResult& b,
                          const std::string& where) {
  EXPECT_EQ(a.supported, b.supported) << where;
  EXPECT_EQ(a.note, b.note) << where;
  EXPECT_EQ(a.censored_trials, b.censored_trials) << where;
  if (std::isnan(a.mean) || std::isnan(b.mean)) {
    EXPECT_TRUE(std::isnan(a.mean) && std::isnan(b.mean)) << where;
  } else {
    EXPECT_EQ(a.mean, b.mean) << where;
  }
  EXPECT_EQ(a.std_error, b.std_error) << where;
}

// Workspace path vs the PR-3 Scenario path: all 13 evaluators, both retry
// models, cold workspace AND warm (second call on a reused workspace) —
// the warm arm is the one that catches kernels reading stale arena state.
TEST(WorkspaceAdapterProperty, ColdAndWarmWorkspaceBitIdenticalToDefault) {
  EvalOptions opt;
  opt.mc_trials = 2'000;
  opt.seed = 77;
  opt.threads = 1;

  const auto& reg = EvaluatorRegistry::builtin();
  ASSERT_EQ(reg.size(), 16u);
  Workspace warm;
  for (const auto& [label, g] : property_dags()) {
    const FailureModel model = calibrate(g, 0.01);
    for (const RetryModel retry :
         {RetryModel::TwoState, RetryModel::Geometric}) {
      const Scenario sc = Scenario::compile(g, FailureSpec(model), retry);
      for (const Evaluator& e : reg.evaluators()) {
        const std::string where =
            label + " / " + std::string(e.name()) + " / " +
            (retry == RetryModel::TwoState ? "two_state" : "geometric");
        const EvalResult reference = e.evaluate(sc, opt);
        Workspace cold;
        expect_bit_identical(e.evaluate(sc, opt, cold), reference,
                             where + " / cold");
        (void)e.evaluate(sc, opt, warm);  // dirty the arenas
        expect_bit_identical(e.evaluate(sc, opt, warm), reference,
                             where + " / warm");
      }
    }
  }
}

// Same property under heterogeneous rates for the het-capable catalogue.
TEST(WorkspaceAdapterProperty, HeterogeneousWarmBitIdenticalToDefault) {
  EvalOptions opt;
  opt.mc_trials = 1'000;
  opt.threads = 1;

  const auto& reg = EvaluatorRegistry::builtin();
  Workspace warm;
  for (const auto& [label, g] : property_dags()) {
    const double lambda = calibrate(g, 0.01).lambda;
    std::vector<double> rates(g.task_count());
    for (TaskId i = 0; i < g.task_count(); ++i) {
      rates[i] = lambda * (0.3 + static_cast<double>(i % 5) * 0.6);
    }
    const Scenario sc = Scenario::compile(g, FailureSpec::per_task(rates),
                                          RetryModel::TwoState);
    for (const Evaluator& e : reg.evaluators()) {
      const EvalResult reference = e.evaluate(sc, opt);
      (void)e.evaluate(sc, opt, warm);
      expect_bit_identical(e.evaluate(sc, opt, warm), reference,
                           label + " / " + std::string(e.name()));
    }
  }
}

// The flat atom fold in the bounds workspace kernel claims to mirror the
// DiscreteDistribution object fold bit for bit; the Dag-path entry point
// still RUNS the object fold, so comparing the two pins the claim (and
// any future drift in prob::kValueMergeEps / consolidate /
// renormalization arithmetic) exactly.
TEST(WorkspaceAdapterProperty, BoundsFlatFoldBitIdenticalToObjectFold) {
  for (const auto& [label, g] : property_dags()) {
    for (const double pfail : {0.0, 0.001, 0.05, 0.4}) {
      const FailureModel model = calibrate(g, pfail);
      const auto via_objects = expmk::core::makespan_bounds(g, model);
      const Scenario sc =
          Scenario::compile(g, FailureSpec(model), RetryModel::TwoState);
      Workspace ws;
      const auto via_kernel = expmk::core::makespan_bounds(sc, ws);
      const std::string where = label + " / pfail " + std::to_string(pfail);
      EXPECT_EQ(via_kernel.failure_free, via_objects.failure_free) << where;
      EXPECT_EQ(via_kernel.jensen_lower, via_objects.jensen_lower) << where;
      EXPECT_EQ(via_kernel.level_upper, via_objects.level_upper) << where;
    }
  }
}

// ------------------------------------------------- sweep pooling pin

// The sweep contract the refactor exists for: workspaces are pooled per
// WORKER THREAD — a grid of many cells x methods must not create more
// workspaces than workers (pre-refactor equivalent state was rebuilt per
// method call).
TEST(SweepPooling, OneWorkspacePerWorkerThread) {
  expmk::exp::SweepGrid grid;
  grid.generators = {"lu", "chain"};
  grid.sizes = {3, 4};
  grid.pfails = {0.001, 0.01};
  grid.methods = {"fo", "so", "sculli", "corlca", "bounds.upper"};
  grid.reference = "";
  grid.options.mc_trials = 100;

  const std::size_t threads = 2;
  const std::uint64_t before = Workspace::created_count();
  const auto result = expmk::exp::SweepRunner().run(grid, threads);
  const std::uint64_t created = Workspace::created_count() - before;

  ASSERT_EQ(result.cells.size(), 2u * 2u * 2u * 5u);
  EXPECT_GE(created, 1u);
  EXPECT_LE(created, threads);
}

// ----------------------------------------- span trial form equivalence

TEST(TrialScatter, SpanFormDrawsTheSameStreamAsVectorForm) {
  const Dag g = expmk::gen::erdos_dag(12, 0.3, 9);
  const Scenario sc = Scenario::compile(
      g, FailureSpec(calibrate(g, 0.02)), RetryModel::Geometric);
  const expmk::mc::TrialContext ctx(sc);

  std::vector<double> durations_vec(g.task_count());
  std::vector<double> durations_span(g.task_count());
  std::vector<double> finish(g.task_count());
  for (std::uint64_t t = 0; t < 50; ++t) {
    expmk::prob::McRng rng_a(123, t);
    expmk::prob::McRng rng_b(123, t);
    const double m_vec = expmk::mc::run_trial(ctx, rng_a, durations_vec);
    const double m_span = expmk::mc::run_trial_scatter_csr(
        ctx, rng_b, finish, durations_span);
    EXPECT_EQ(m_vec, m_span) << t;
    EXPECT_EQ(durations_vec, durations_span) << t;
  }

  expmk::prob::McRng rng(1, 1);
  EXPECT_THROW((void)expmk::mc::run_trial_scatter_csr(
                   ctx, rng, std::span<double>(finish.data(), 2),
                   durations_span),
               std::invalid_argument);
}

}  // namespace
