// Tests for the serving scenario cache (serve/cache.hpp):
//
//  * hit/miss/compile counters and the compile-once behavior on repeated
//    keys (pinned with Scenario::compiled_count());
//  * byte-budget LRU eviction from the tail, never the newest entry;
//  * singleflight: concurrent misses on ONE key compile exactly once,
//    everyone shares the pointer;
//  * a failing compile poisons nobody — every waiter gets the exception,
//    the key is NOT cached, and a later request retries;
//  * lookup() (the by-hash protocol path) never compiles.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gen/lu.hpp"
#include "scenario/scenario.hpp"
#include "serve/cache.hpp"

namespace {

using expmk::scenario::FailureSpec;
using expmk::scenario::Scenario;
using expmk::serve::CacheStats;
using expmk::serve::ScenarioCache;

ScenarioCache::ScenarioPtr compile_cell(double lambda) {
  return std::make_shared<const Scenario>(Scenario::compile(
      expmk::gen::lu_dag(3), FailureSpec::uniform(lambda)));
}

TEST(ServeCache, RepeatedKeysCompileOnce) {
  ScenarioCache cache(/*byte_budget=*/64u << 20, /*shards=*/4);
  const std::uint64_t before = Scenario::compiled_count();
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t key = 1; key <= 3; ++key) {
      ScenarioCache::Outcome outcome{};
      const auto sc = cache.get_or_compile(
          key, [&] { return compile_cell(0.01 * static_cast<double>(key)); },
          &outcome);
      ASSERT_NE(sc, nullptr);
      EXPECT_EQ(outcome, round == 0 ? ScenarioCache::Outcome::Miss
                                    : ScenarioCache::Outcome::Hit);
    }
  }
  // The warm path never recompiles: compiles == distinct keys.
  EXPECT_EQ(Scenario::compiled_count() - before, 3u);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.compiles, 3u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 27u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ServeCache, ByteBudgetEvictsFromLruTail) {
  // One shard so the LRU order is global; budget sized for ~2 entries.
  const std::size_t one = expmk::serve::scenario_footprint_bytes(
      *compile_cell(0.01));
  ScenarioCache cache(2 * one + one / 2, /*shards=*/1);

  ScenarioCache::Outcome outcome{};
  (void)cache.get_or_compile(1, [] { return compile_cell(0.01); });
  (void)cache.get_or_compile(2, [] { return compile_cell(0.02); });
  // Touch key 1 so key 2 is the LRU tail when 3 arrives.
  (void)cache.get_or_compile(1, [] { return compile_cell(0.01); },
                             &outcome);
  EXPECT_EQ(outcome, ScenarioCache::Outcome::Hit);
  (void)cache.get_or_compile(3, [] { return compile_cell(0.03); });

  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.lookup(2), nullptr);     // the tail went
  EXPECT_NE(cache.lookup(1), nullptr);     // the touched entry stayed
  EXPECT_NE(cache.lookup(3), nullptr);     // the newest is never evicted
  EXPECT_LE(cache.stats().bytes, 2 * one + one / 2);
}

TEST(ServeCache, SingleflightCoalescesConcurrentMisses) {
  ScenarioCache cache(64u << 20, /*shards=*/2);
  const std::uint64_t before = Scenario::compiled_count();
  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::vector<ScenarioCache::ScenarioPtr> results(kThreads);
  std::vector<ScenarioCache::Outcome> outcomes(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        ready.fetch_add(1);
        while (ready.load() < kThreads) {
        }  // maximize the racing window
        results[t] = cache.get_or_compile(
            42,
            [] {
              // A slow compile keeps the in-flight ticket visible.
              std::this_thread::sleep_for(std::chrono::milliseconds(20));
              return compile_cell(0.05);
            },
            &outcomes[t]);
      });
    }
    for (auto& th : threads) th.join();
  }
  EXPECT_EQ(Scenario::compiled_count() - before, 1u);
  EXPECT_EQ(cache.stats().compiles, 1u);
  int miss = 0;
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(results[t], nullptr);
    EXPECT_EQ(results[t], results[0]);  // one shared instance
    if (outcomes[t] == ScenarioCache::Outcome::Miss) ++miss;
  }
  EXPECT_EQ(miss, 1);  // exactly one owner; the rest hit or coalesced
  EXPECT_EQ(cache.stats().coalesced + cache.stats().hits + 1,
            static_cast<std::uint64_t>(kThreads));
}

TEST(ServeCache, FailedCompileSharedThenRetried) {
  ScenarioCache cache(64u << 20, /*shards=*/1);
  EXPECT_THROW(
      (void)cache.get_or_compile(
          7,
          []() -> ScenarioCache::ScenarioPtr {
            throw std::runtime_error("compile exploded");
          }),
      std::runtime_error);
  // The failure was NOT cached: the key retries and succeeds.
  ScenarioCache::Outcome outcome{};
  const auto sc =
      cache.get_or_compile(7, [] { return compile_cell(0.01); }, &outcome);
  ASSERT_NE(sc, nullptr);
  EXPECT_EQ(outcome, ScenarioCache::Outcome::Miss);
  EXPECT_EQ(cache.stats().compiles, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ServeCache, LookupNeverCompiles) {
  ScenarioCache cache(64u << 20);
  ScenarioCache::Outcome outcome{};
  EXPECT_EQ(cache.lookup(99, &outcome), nullptr);
  EXPECT_EQ(outcome, ScenarioCache::Outcome::Absent);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().compiles, 0u);

  (void)cache.get_or_compile(99, [] { return compile_cell(0.01); });
  EXPECT_NE(cache.lookup(99, &outcome), nullptr);
  EXPECT_EQ(outcome, ScenarioCache::Outcome::Hit);
}

}  // namespace
