// Unit tests for util/: thread pool, timer formatting, CLI parser, tables.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>

#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using expmk::util::Cli;
using expmk::util::Table;
using expmk::util::ThreadPool;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ZeroThreadsPromotedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForCoversAllChunks) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  pool.parallel_for_chunks(100, [&](std::size_t c) {
    sum += static_cast<int>(c);
  });
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesFirstError) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_chunks(
                   8,
                   [](std::size_t c) {
                     if (c == 3) throw std::logic_error("chunk 3");
                   }),
               std::logic_error);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      (void)pool.submit([&done] { ++done; });
    }
  }  // destructor must finish all 32
  EXPECT_EQ(done.load(), 32);
}

TEST(Timer, MeasuresNonNegativeDurations) {
  expmk::util::Timer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_GE(t.milliseconds(), 0.0);
}

TEST(Timer, FormatDurationPicksUnits) {
  using expmk::util::format_duration;
  EXPECT_EQ(format_duration(5e-9), "5 ns");
  EXPECT_EQ(format_duration(1.5e-4), "150.0 us");
  EXPECT_EQ(format_duration(0.25), "250.00 ms");
  EXPECT_EQ(format_duration(3.5), "3.50 s");
  EXPECT_EQ(format_duration(600.0), "10.0 min");
  EXPECT_EQ(format_duration(-1.0), "n/a");
}

TEST(Cli, ParsesTypedOptionsAndFlags) {
  Cli cli("prog", "test");
  cli.add_int("n", 5, "count");
  cli.add_double("x", 0.5, "rate");
  cli.add_string("mode", "fast", "mode");
  cli.add_flag("csv", "emit csv");
  const char* argv[] = {"prog", "--n", "12", "--x=0.25", "--csv"};
  cli.parse(5, argv);
  EXPECT_EQ(cli.get_int("n"), 12);
  EXPECT_DOUBLE_EQ(cli.get_double("x"), 0.25);
  EXPECT_EQ(cli.get_string("mode"), "fast");
  EXPECT_TRUE(cli.get_flag("csv"));
}

TEST(Cli, DefaultsSurviveEmptyParse) {
  Cli cli("prog", "test");
  cli.add_int("n", 5, "count");
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_EQ(cli.get_int("n"), 5);
}

TEST(Cli, UsageListsOptions) {
  Cli cli("prog", "description here");
  cli.add_int("trials", 1000, "number of trials");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--trials"), std::string::npos);
  EXPECT_NE(usage.find("number of trials"), std::string::npos);
  EXPECT_NE(usage.find("1000"), std::string::npos);
}

TEST(Cli, WrongTypeAccessThrows) {
  Cli cli("prog", "test");
  cli.add_int("n", 5, "count");
  EXPECT_THROW((void)cli.get_double("n"), std::logic_error);
  EXPECT_THROW((void)cli.get_int("missing"), std::logic_error);
}

TEST(Table, AlignedOutputContainsCellsAndRule) {
  Table t({"name", "value"});
  t.begin_row();
  t.add("alpha");
  t.add_int(42);
  t.begin_row();
  t.add("beta");
  t.add_double(0.125);
  std::ostringstream os;
  t.print_aligned(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("0.125"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, CsvOutputIsCommaSeparated) {
  Table t({"a", "b"});
  t.begin_row();
  t.add_int(1);
  t.add_int(2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, SignedScientificFormatting) {
  Table t({"x"});
  t.begin_row();
  t.add_signed_sci(0.0193);
  EXPECT_EQ(t.cell(0, 0), "+1.930e-02");
  t.begin_row();
  t.add_signed_sci(-6e-06);
  EXPECT_EQ(t.cell(1, 0), "-6.000e-06");
}

TEST(Table, RejectsMalformedUse) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  Table t({"only"});
  EXPECT_THROW(t.add("no row yet"), std::logic_error);
  t.begin_row();
  t.add("ok");
  EXPECT_THROW(t.add("overflow"), std::logic_error);
}

}  // namespace
