// Tests for prob/dist_kernels: the flat span kernels must match the
// DiscreteDistribution object operations BIT FOR BIT on arbitrary inputs —
// including the degenerate corners (single atoms, values inside the
// kValueMergeEps merge window, near-underflow probabilities) — and the
// truncation kernel must account every merge in its certificate.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "prob/discrete_distribution.hpp"
#include "prob/dist_kernels.hpp"
#include "prob/rng.hpp"

namespace {

namespace dk = expmk::prob::dist_kernels;
using expmk::prob::Atom;
using expmk::prob::DiscreteDistribution;

/// Random raw atom soup: duplicate values, eps-close values, a sprinkle of
/// non-positive and near-underflow probabilities.
std::vector<Atom> random_atoms(expmk::prob::Xoshiro256pp& rng,
                               std::size_t count) {
  std::vector<Atom> atoms;
  atoms.reserve(count);
  double base = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const double roll = rng.uniform();
    if (roll < 0.15 && !atoms.empty()) {
      // Exact duplicate of an earlier value.
      atoms.push_back({atoms[i / 2].value, rng.uniform()});
    } else if (roll < 0.3 && !atoms.empty()) {
      // Inside the relative merge window.
      atoms.push_back({atoms.back().value * (1.0 + 1e-13), rng.uniform()});
    } else {
      base += rng.uniform() * 2.0;
      atoms.push_back({base, rng.uniform()});
    }
    if (roll > 0.9) atoms.back().prob = 0.0;            // dropped
    if (roll > 0.8 && roll <= 0.9) atoms.back().prob = 1e-300;  // underflow-ish
  }
  return atoms;
}

/// random_atoms with a guaranteed positive total mass, wrapped into a
/// distribution (for tests of the binary operations).
DiscreteDistribution random_dist(expmk::prob::Xoshiro256pp& rng,
                                 std::size_t count) {
  std::vector<Atom> raw = random_atoms(rng, count);
  double total = 0.0;
  for (const Atom& at : raw) total += at.prob > 0.0 ? at.prob : 0.0;
  if (total <= 0.0) raw.front().prob = 0.5;
  return DiscreteDistribution::from_atoms(std::move(raw));
}

std::vector<Atom> kernel_canonicalize(std::vector<Atom> atoms) {
  atoms.resize(dk::canonicalize(atoms));
  return atoms;
}

void expect_bit_identical(std::span<const Atom> a, std::span<const Atom> b,
                          const std::string& where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].value, b[i].value) << where << " value " << i;
    EXPECT_EQ(a[i].prob, b[i].prob) << where << " prob " << i;
  }
}

TEST(DistKernels, CanonicalizeMatchesFromAtomsBitwise) {
  expmk::prob::Xoshiro256pp rng(42, 7);
  for (int round = 0; round < 50; ++round) {
    const auto raw = random_atoms(rng, 1 + round % 17);
    double total = 0.0;
    for (const Atom& at : raw) total += at.prob > 0.0 ? at.prob : 0.0;
    if (total <= 0.0) {
      EXPECT_THROW((void)kernel_canonicalize(raw), std::invalid_argument);
      EXPECT_THROW((void)DiscreteDistribution::from_atoms(raw),
                   std::invalid_argument);
      continue;
    }
    const auto object = DiscreteDistribution::from_atoms(raw);
    const auto flat = kernel_canonicalize(raw);
    expect_bit_identical(flat, object.atoms(),
                         "round " + std::to_string(round));
  }
}

TEST(DistKernels, ConvolveAndMaxOfMatchObjectOpsBitwise) {
  expmk::prob::Xoshiro256pp rng(1234, 9);
  for (int round = 0; round < 30; ++round) {
    const auto x = random_dist(rng, 1 + round % 9);
    const auto y = random_dist(rng, 1 + (round * 3) % 7);
    const std::string where = "round " + std::to_string(round);

    std::vector<Atom> conv(x.size() * y.size());
    conv.resize(dk::convolve(x.atoms(), y.atoms(), conv));
    expect_bit_identical(conv, DiscreteDistribution::convolve(x, y).atoms(),
                         where + " convolve");

    std::vector<Atom> mx(x.size() + y.size());
    std::vector<double> support(x.size() + y.size());
    mx.resize(dk::max_of(x.atoms(), y.atoms(), mx, support));
    expect_bit_identical(mx, DiscreteDistribution::max_of(x, y).atoms(),
                         where + " max_of");

    std::vector<Atom> mixed(x.size() + y.size());
    mixed.resize(dk::mixture(x.atoms(), 0.25, y.atoms(), mixed));
    expect_bit_identical(mixed,
                         DiscreteDistribution::mixture(x, 0.25, y).atoms(),
                         where + " mixture");
  }
}

TEST(DistKernels, TruncateMatchesObjectTruncatedBitwise) {
  expmk::prob::Xoshiro256pp rng(77, 3);
  for (int round = 0; round < 30; ++round) {
    const auto x = random_dist(rng, 6 + round % 24);
    for (const std::size_t budget : {std::size_t{1}, std::size_t{3},
                                     std::size_t{5}, std::size_t{100}}) {
      dk::TruncationCert object_cert;
      const auto object = x.truncated(budget, &object_cert);

      std::vector<Atom> flat(x.atoms());
      std::vector<double> gaps(2 * (flat.size() - 1));
      dk::TruncationCert flat_cert;
      flat.resize(dk::truncate(flat, budget, flat_cert, gaps));

      const std::string where = "round " + std::to_string(round) +
                                " budget " + std::to_string(budget);
      expect_bit_identical(flat, object.atoms(), where);
      EXPECT_EQ(flat_cert.events, object_cert.events) << where;
      EXPECT_EQ(flat_cert.merges, object_cert.merges) << where;
      EXPECT_EQ(flat_cert.up, object_cert.up) << where;
      EXPECT_EQ(flat_cert.down, object_cert.down) << where;

      if (x.size() <= budget) {
        EXPECT_EQ(flat_cert.events, 0u) << where;
      } else {
        // The merges moved mass both ways but preserved the mean of THIS
        // distribution (exactly, in real arithmetic).
        EXPECT_GE(flat_cert.merges, 1u) << where;
        EXPECT_GE(flat_cert.up, 0.0) << where;
        EXPECT_GE(flat_cert.down, 0.0) << where;
        EXPECT_NEAR(object.mean(), x.mean(),
                    1e-12 * std::max(1.0, std::fabs(x.mean())))
            << where;
      }
    }
  }
}

TEST(DistKernels, DegenerateCases) {
  // Single atom round-trips untouched through every kernel.
  std::vector<Atom> one = {{2.5, 1.0}};
  EXPECT_EQ(dk::canonicalize(one), 1u);
  EXPECT_EQ(one[0].value, 2.5);
  EXPECT_EQ(one[0].prob, 1.0);
  EXPECT_EQ(dk::mean(one), 2.5);
  EXPECT_EQ(dk::quantile(one, 0.5), 2.5);

  // two_state degenerates to point masses at the probability boundaries,
  // exactly like the object constructor.
  Atom buf[2];
  EXPECT_EQ(dk::two_state(3.0, 1.0, buf), 1u);
  EXPECT_EQ(buf[0].value, 3.0);
  EXPECT_EQ(dk::two_state(3.0, 0.0, buf), 1u);
  EXPECT_EQ(buf[0].value, 6.0);
  EXPECT_EQ(dk::two_state(3.0, 0.25, buf), 2u);
  const auto object = DiscreteDistribution::two_state(3.0, 0.25);
  EXPECT_EQ(buf[0].value, object.atoms()[0].value);
  EXPECT_EQ(buf[0].prob, object.atoms()[0].prob);
  EXPECT_EQ(buf[1].value, object.atoms()[1].value);
  EXPECT_EQ(buf[1].prob, object.atoms()[1].prob);

  // Values inside the merge window collapse onto the FIRST value, with
  // summed mass (the exact consolidate rule).
  std::vector<Atom> close = {{1.0, 0.5}, {1.0 + 1e-13, 0.5}};
  EXPECT_EQ(dk::canonicalize(close), 1u);
  EXPECT_EQ(close[0].value, 1.0);
  EXPECT_EQ(close[0].prob, 1.0);

  // Near-underflow masses survive consolidation and renormalize.
  std::vector<Atom> tiny = {{1.0, 1e-300}, {2.0, 1e-300}};
  EXPECT_EQ(dk::canonicalize(tiny), 2u);
  EXPECT_NEAR(tiny[0].prob, 0.5, 1e-12);

  // shift is the object shifted().
  std::vector<Atom> sh = {{1.0, 0.5}, {2.0, 0.5}};
  dk::shift(sh, 1.5);
  const auto shifted =
      DiscreteDistribution::from_atoms({{1.0, 0.5}, {2.0, 0.5}}).shifted(1.5);
  expect_bit_identical(sh, shifted.atoms(), "shift");
}

TEST(DistKernels, FromCanonicalTrustsItsInput) {
  const auto d = DiscreteDistribution::from_canonical({{1.0, 0.25},
                                                       {2.0, 0.75}});
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.atoms()[0].prob, 0.25);
  EXPECT_THROW((void)DiscreteDistribution::from_canonical({}),
               std::invalid_argument);
}

}  // namespace
