// Tests for the flat spgraph engine (spgraph/flat_network.cpp) and the
// certified-truncation / heterogeneous-rate upgrades that ride on it:
//
//  * the FIDELITY property: evaluate_sp_flat / dodin_two_state_flat are
//    bit-identical — means, reduction counts, truncation certificates and
//    captured distributions — to the DiscreteDistribution-object
//    reduction, across DAG families, pfail values, heterogeneous rates
//    and atom budgets (the object path is the executable specification);
//  * the CERTIFIED INTERVAL property: whenever the atom cap fires, the
//    untruncated computation's mean lies inside [mean_lo, mean_hi] (for
//    sp on SP graphs that is the exact oracle itself);
//  * the lifted heterogeneous gates: dodin validated against the exact
//    oracle on SP DAGs, exact.geo against a hand-built distribution
//    oracle on chains and diamonds, per-task rates throughout.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/exact.hpp"
#include "core/failure_model.hpp"
#include "exp/evaluator.hpp"
#include "exp/workspace.hpp"
#include "gen/random_dags.hpp"
#include "prob/discrete_distribution.hpp"
#include "scenario/scenario.hpp"
#include "spgraph/arc_network.hpp"
#include "spgraph/dodin.hpp"
#include "spgraph/sp_reduce.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::core::calibrate;
using expmk::core::RetryModel;
using expmk::exp::EvalOptions;
using expmk::exp::EvaluatorRegistry;
using expmk::exp::Workspace;
using expmk::graph::Dag;
using expmk::graph::TaskId;
using expmk::prob::DiscreteDistribution;
using expmk::scenario::FailureSpec;
using expmk::scenario::Scenario;

std::vector<std::pair<std::string, Dag>> fixture_dags() {
  std::vector<std::pair<std::string, Dag>> dags;
  dags.emplace_back("diamond", expmk::test::diamond(0.4, 0.3, 0.5, 0.2));
  dags.emplace_back("n_graph", expmk::test::n_graph(0.2, 0.3, 0.25, 0.15));
  dags.emplace_back("chain6", expmk::gen::chain_dag(6, 7));
  dags.emplace_back("sp8", expmk::gen::random_series_parallel(8, 21));
  dags.emplace_back("sp12", expmk::gen::random_series_parallel(12, 5));
  dags.emplace_back("wheatstone", expmk::gen::wheatstone_bridge());
  dags.emplace_back("erdos10", expmk::gen::erdos_dag(10, 0.3, 5));
  return dags;
}

/// The task-duration laws the scenario paths use, built object-side for
/// the reference ArcNetwork reduction.
std::vector<DiscreteDistribution> scenario_dists(const Scenario& sc) {
  const Dag& g = sc.dag();
  std::vector<DiscreteDistribution> out;
  out.reserve(g.task_count());
  for (TaskId i = 0; i < g.task_count(); ++i) {
    const double a = g.weight(i);
    out.push_back(a <= 0.0
                      ? DiscreteDistribution::point(0.0)
                      : DiscreteDistribution::two_state(a, sc.p_success()[i]));
  }
  return out;
}

std::vector<double> spread_rates(const Dag& g, double pfail) {
  const double lambda = calibrate(g, pfail).lambda;
  const double mult[] = {0.3, 1.0, 2.0, 0.6, 1.4, 0.1};
  std::vector<double> rates(g.task_count());
  for (TaskId i = 0; i < g.task_count(); ++i) {
    rates[i] = lambda * mult[i % 6];
  }
  return rates;
}

void expect_dist_bit_identical(const DiscreteDistribution& a,
                               const DiscreteDistribution& b,
                               const std::string& where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.atoms()[i].value, b.atoms()[i].value) << where << " @" << i;
    EXPECT_EQ(a.atoms()[i].prob, b.atoms()[i].prob) << where << " @" << i;
  }
}

// ------------------------------------------------------ fidelity: sp

// The flat engine claims to replicate the object reduction operation for
// operation; pin means, stats, truncation certificates and the full
// distribution bitwise, on uniform AND heterogeneous scenarios, with and
// without the atom cap, cold and warm workspaces.
TEST(FlatSpFidelity, BitIdenticalToObjectReduction) {
  Workspace warm;
  for (const auto& [label, g] : fixture_dags()) {
    for (const double pfail : {0.001, 0.05, 0.3}) {
      for (const bool het : {false, true}) {
        const Scenario sc =
            het ? Scenario::compile(g, FailureSpec::per_task(
                                           spread_rates(g, pfail)))
                : Scenario::compile(g, FailureSpec(calibrate(g, pfail)));
        for (const std::size_t max_atoms : {std::size_t{0}, std::size_t{3},
                                            std::size_t{16}}) {
          const std::string where = label + " / pfail " +
                                    std::to_string(pfail) +
                                    (het ? " / het" : " / uniform") +
                                    " / atoms " + std::to_string(max_atoms);
          const auto object = evaluate_sp(
              expmk::sp::ArcNetwork::from_dag(g, scenario_dists(sc)),
              max_atoms);
          DiscreteDistribution captured;
          const auto flat = expmk::sp::evaluate_sp_flat(
              sc, max_atoms, warm, &captured);
          ASSERT_EQ(flat.is_series_parallel, object.is_series_parallel)
              << where;
          EXPECT_EQ(flat.stats.series, object.stats.series) << where;
          EXPECT_EQ(flat.stats.parallel, object.stats.parallel) << where;
          EXPECT_EQ(flat.stats.truncation.events,
                    object.stats.truncation.events)
              << where;
          EXPECT_EQ(flat.stats.truncation.merges,
                    object.stats.truncation.merges)
              << where;
          EXPECT_EQ(flat.stats.truncation.up, object.stats.truncation.up)
              << where;
          EXPECT_EQ(flat.stats.truncation.down, object.stats.truncation.down)
              << where;
          if (object.is_series_parallel) {
            EXPECT_EQ(flat.mean, object.makespan.mean()) << where;
            expect_dist_bit_identical(captured, object.makespan, where);
          }
        }
      }
    }
  }
}

// --------------------------------------------------- fidelity: dodin

TEST(FlatDodinFidelity, BitIdenticalToObjectTransformation) {
  Workspace warm;
  for (const auto& [label, g] : fixture_dags()) {
    for (const double pfail : {0.01, 0.2}) {
      for (const bool het : {false, true}) {
        const Scenario sc =
            het ? Scenario::compile(g, FailureSpec::per_task(
                                           spread_rates(g, pfail)))
                : Scenario::compile(g, FailureSpec(calibrate(g, pfail)));
        for (const std::size_t max_atoms : {std::size_t{6},
                                            std::size_t{64}}) {
          const std::string where = label + " / pfail " +
                                    std::to_string(pfail) +
                                    (het ? " / het" : " / uniform") +
                                    " / atoms " + std::to_string(max_atoms);
          const expmk::sp::DodinOptions opts{.max_atoms = max_atoms};
          const auto object = expmk::sp::dodin(
              expmk::sp::ArcNetwork::from_dag(g, scenario_dists(sc)), opts);
          DiscreteDistribution captured;
          const auto flat = expmk::sp::dodin_two_state_flat(
              sc, opts, warm, &captured);
          EXPECT_EQ(flat.duplications, object.duplications) << where;
          EXPECT_EQ(flat.series_reductions, object.series_reductions)
              << where;
          EXPECT_EQ(flat.parallel_reductions, object.parallel_reductions)
              << where;
          EXPECT_EQ(flat.truncation.events, object.truncation.events)
              << where;
          EXPECT_EQ(flat.truncation.merges, object.truncation.merges)
              << where;
          EXPECT_EQ(flat.truncation.up, object.truncation.up) << where;
          EXPECT_EQ(flat.truncation.down, object.truncation.down) << where;
          EXPECT_EQ(flat.mean, object.expected_makespan()) << where;
          expect_dist_bit_identical(captured, object.makespan, where);
        }
      }
    }
  }
}

// The legacy uniform Dag entry point (dodin_two_state(g, model)) computes
// its p_success table independently; the scenario cache must reproduce it
// bitwise end to end.
TEST(FlatDodinFidelity, UniformScenarioMatchesLegacyDagEntryPoint) {
  const Dag g = expmk::gen::erdos_dag(12, 0.25, 11);
  const auto model = calibrate(g, 0.02);
  const Scenario sc = Scenario::compile(g, FailureSpec(model));
  const expmk::sp::DodinOptions opts{.max_atoms = 32};
  const auto legacy = expmk::sp::dodin_two_state(g, model, opts);
  const auto scenario_based = expmk::sp::dodin_two_state(sc, opts);
  EXPECT_EQ(scenario_based.expected_makespan(), legacy.expected_makespan());
  EXPECT_EQ(scenario_based.duplications, legacy.duplications);
  EXPECT_EQ(scenario_based.truncation.events, legacy.truncation.events);
}

// ------------------------------------------------- certified intervals

// sp on SP graphs: the untruncated reduction IS the exact oracle, so the
// certified envelope of any truncated run must contain it. >= 5 DAGs x 3
// pfails, uniform and heterogeneous.
TEST(CertifiedTruncation, SpEnvelopeContainsExactMean) {
  const auto& reg = EvaluatorRegistry::builtin();
  const auto* sp = reg.find("sp");
  for (const std::uint64_t seed : {3u, 5u, 9u, 21u, 33u, 77u}) {
    const Dag g = expmk::gen::random_series_parallel(10, seed);
    for (const double pfail : {0.01, 0.1, 0.4}) {
      for (const bool het : {false, true}) {
        const Scenario sc =
            het ? Scenario::compile(g, FailureSpec::per_task(
                                           spread_rates(g, pfail)))
                : Scenario::compile(g, FailureSpec(calibrate(g, pfail)));
        const double exact = expmk::core::exact_two_state(sc);
        for (const std::size_t budget : {std::size_t{2}, std::size_t{4},
                                         std::size_t{8}}) {
          EvalOptions opt;
          opt.sp_max_atoms = budget;
          const auto r = sp->evaluate(sc, opt);
          ASSERT_TRUE(r.supported) << seed;
          const std::string where = "seed " + std::to_string(seed) +
                                    " pfail " + std::to_string(pfail) +
                                    " budget " + std::to_string(budget) +
                                    (het ? " het" : "");
          EXPECT_LE(r.mean_lo, r.mean) << where;
          EXPECT_GE(r.mean_hi, r.mean) << where;
          EXPECT_LE(r.mean_lo, exact) << where;
          EXPECT_GE(r.mean_hi, exact) << where;
          if (r.mean_lo < r.mean_hi) {
            // Truncation fired: it must be visible in the note.
            EXPECT_NE(r.note.find("truncation"), std::string::npos) << where;
          }
        }
        // No truncation -> exactly degenerate envelope.
        EvalOptions exact_opt;
        exact_opt.sp_max_atoms = 0;
        const auto r0 = sp->evaluate(sc, exact_opt);
        ASSERT_TRUE(r0.supported);
        EXPECT_EQ(r0.mean_lo, r0.mean);
        EXPECT_EQ(r0.mean_hi, r0.mean);
        EXPECT_TRUE(r0.note.empty());
      }
    }
  }
}

// dodin: the envelope certifies the truncation error relative to the
// UNTRUNCATED transformation (whose own independence bias it cannot see),
// so the untruncated dodin mean must land inside every budgeted run's
// interval — on SP and non-SP graphs, uniform and heterogeneous.
TEST(CertifiedTruncation, DodinEnvelopeContainsUntruncatedMean) {
  const auto& reg = EvaluatorRegistry::builtin();
  const auto* dodin = reg.find("dodin");
  for (const auto& [label, g] : fixture_dags()) {
    for (const double pfail : {0.01, 0.1, 0.3}) {
      for (const bool het : {false, true}) {
        const Scenario sc =
            het ? Scenario::compile(g, FailureSpec::per_task(
                                           spread_rates(g, pfail)))
                : Scenario::compile(g, FailureSpec(calibrate(g, pfail)));
        EvalOptions untruncated;
        untruncated.dodin_atoms = 0;
        const auto full = dodin->evaluate(sc, untruncated);
        ASSERT_TRUE(full.supported) << label;
        EXPECT_EQ(full.mean_lo, full.mean) << label;
        EXPECT_EQ(full.mean_hi, full.mean) << label;
        for (const std::size_t budget : {std::size_t{2}, std::size_t{5},
                                         std::size_t{16}}) {
          EvalOptions opt;
          opt.dodin_atoms = budget;
          const auto r = dodin->evaluate(sc, opt);
          ASSERT_TRUE(r.supported) << label;
          const std::string where = label + " pfail " +
                                    std::to_string(pfail) + " budget " +
                                    std::to_string(budget) +
                                    (het ? " het" : "");
          EXPECT_LE(r.mean_lo, full.mean) << where;
          EXPECT_GE(r.mean_hi, full.mean) << where;
        }
      }
    }
  }
}

// ------------------------------------------- lifted heterogeneous gates

// dodin with per-task rates against the exact oracle: on SP graphs the
// untruncated transformation is exact, with zero statistical slack.
TEST(HeterogeneousDodin, ExactOnSpGraphsUnderPerTaskRates) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    const Dag g = expmk::gen::random_series_parallel(10, seed);
    const Scenario sc = Scenario::compile(
        g, FailureSpec::per_task(spread_rates(g, 0.05)));
    const auto r = expmk::sp::dodin_two_state(sc, {.max_atoms = 0});
    EXPECT_EQ(r.duplications, 0u) << seed;
    EXPECT_NEAR(r.expected_makespan(), expmk::core::exact_two_state(sc),
                1e-10)
        << seed;
  }
}

// exact.geo with per-task rates against hand-built distribution oracles:
// a chain's makespan is the convolution of per-task truncated-geometric
// laws, a diamond's is X0 + max(X1, X2) + X3 (independent branches).
TEST(HeterogeneousExactGeo, MatchesDistributionOracles) {
  const int max_exec = 4;
  Workspace ws;

  {
    const Dag g = expmk::gen::chain_dag(5, 3);
    const Scenario sc = Scenario::compile(
        g, FailureSpec::per_task(spread_rates(g, 0.1)),
        RetryModel::Geometric);
    DiscreteDistribution sum = DiscreteDistribution::point(0.0);
    for (TaskId i = 0; i < g.task_count(); ++i) {
      sum = DiscreteDistribution::convolve(
          sum, DiscreteDistribution::geometric_reexec(
                   g.weight(i), sc.p_success()[i], max_exec));
    }
    EXPECT_NEAR(expmk::core::exact_geometric(sc, max_exec, ws), sum.mean(),
                1e-12 * sum.mean());
  }

  {
    const Dag g = expmk::test::diamond(0.4, 0.3, 0.5, 0.2);
    const Scenario sc = Scenario::compile(
        g, FailureSpec::per_task({0.2, 0.6, 0.1, 0.45}),
        RetryModel::Geometric);
    const auto law = [&](TaskId i) {
      return DiscreteDistribution::geometric_reexec(
          g.weight(i), sc.p_success()[i], max_exec);
    };
    const auto oracle =
        DiscreteDistribution::convolve(
            DiscreteDistribution::convolve(
                law(0), DiscreteDistribution::max_of(law(1), law(2))),
            law(3));
    EXPECT_NEAR(expmk::core::exact_geometric(sc, max_exec, ws),
                oracle.mean(), 1e-12 * oracle.mean());
  }
}

// Constant per-task rates must reproduce the uniform path bitwise (the
// cached p tables are identical).
TEST(HeterogeneousExactGeo, ConstantRatesMatchUniformBitwise) {
  const Dag g = expmk::gen::erdos_dag(8, 0.3, 5);
  const auto model = calibrate(g, 0.02);
  const std::vector<double> rates(g.task_count(), model.lambda);
  const Scenario uni =
      Scenario::compile(g, FailureSpec(model), RetryModel::Geometric);
  const Scenario het = Scenario::compile(g, FailureSpec::per_task(rates),
                                         RetryModel::Geometric);
  Workspace ws;
  EXPECT_EQ(expmk::core::exact_geometric(uni, 3, ws),
            expmk::core::exact_geometric(het, 3, ws));

  const auto& reg = EvaluatorRegistry::builtin();
  const auto r = reg.find("exact.geo")->evaluate(het, {});
  ASSERT_TRUE(r.supported) << r.note;
  EXPECT_EQ(r.mean, expmk::core::exact_geometric(uni, 3, ws));
  EXPECT_EQ(r.mean_lo, r.mean);
  EXPECT_EQ(r.mean_hi, r.mean);
}

}  // namespace
