// Tests for exp::evaluate_many, the batch front door:
//
//  * upfront method resolution (unknown names throw before any work);
//  * index alignment: result i is BIT-identical to a single evaluate()
//    call with the documented derived seed;
//  * the determinism contract: results are bitwise independent of the
//    thread count (threads 1 / 2 / 7), including the stochastic methods;
//  * duplicate stochastic requests draw decorrelated (per-index) streams;
//  * capability gating surfaces as supported == false inside the batch,
//    never as an exception crossing evaluate_many.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/failure_model.hpp"
#include "exp/evaluate_many.hpp"
#include "exp/evaluator.hpp"
#include "exp/seeds.hpp"
#include "gen/random_dags.hpp"
#include "scenario/scenario.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::core::calibrate;
using expmk::core::RetryModel;
using expmk::exp::derive_seed;
using expmk::exp::EvalOptions;
using expmk::exp::EvalRequest;
using expmk::exp::EvalResult;
using expmk::exp::evaluate_many;
using expmk::exp::EvaluatorRegistry;
using expmk::graph::Dag;
using expmk::scenario::FailureSpec;
using expmk::scenario::Scenario;

Scenario compile_fixture() {
  const Dag g = expmk::gen::erdos_dag(14, 0.25, 21);
  return Scenario::compile(g, FailureSpec(calibrate(g, 0.01)),
                           RetryModel::TwoState);
}

void expect_bit_identical(const EvalResult& a, const EvalResult& b,
                          const std::string& where) {
  EXPECT_EQ(a.supported, b.supported) << where;
  EXPECT_EQ(a.note, b.note) << where;
  EXPECT_EQ(a.censored_trials, b.censored_trials) << where;
  if (std::isnan(a.mean) || std::isnan(b.mean)) {
    EXPECT_TRUE(std::isnan(a.mean) && std::isnan(b.mean)) << where;
  } else {
    EXPECT_EQ(a.mean, b.mean) << where;
  }
  EXPECT_EQ(a.std_error, b.std_error) << where;
}

TEST(EvaluateMany, UnknownMethodThrowsBeforeAnyWork) {
  const Scenario sc = compile_fixture();
  std::vector<EvalRequest> requests(2);
  requests[0].method = "fo";
  requests[1].method = "no-such-method";
  EXPECT_THROW((void)evaluate_many(sc, requests), std::invalid_argument);
}

TEST(EvaluateMany, EmptyBatchReturnsEmpty) {
  const Scenario sc = compile_fixture();
  EXPECT_TRUE(evaluate_many(sc, {}).empty());
}

TEST(EvaluateMany, ResultsIndexAlignedAndMatchSingleEvaluate) {
  const Scenario sc = compile_fixture();
  std::vector<EvalRequest> requests;
  for (const char* m : {"fo", "so", "bounds.lower", "bounds.upper",
                        "sculli", "corlca", "clark", "mc", "cmc"}) {
    EvalRequest req;
    req.method = m;
    req.options.mc_trials = 2'000;
    req.options.seed = 4242;
    requests.push_back(req);
  }

  const auto batch = evaluate_many(sc, requests, 3);
  ASSERT_EQ(batch.size(), requests.size());

  const auto& reg = EvaluatorRegistry::builtin();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    // The documented contract: request i runs with the derived seed and
    // evaluator-internal threads forced to 1.
    EvalOptions expected = requests[i].options;
    expected.seed = derive_seed(requests[i].options.seed, i);
    expected.threads = 1;
    const EvalResult single =
        reg.find(requests[i].method)->evaluate(sc, expected);
    expect_bit_identical(batch[i], single,
                         requests[i].method + std::string(" / index ") +
                             std::to_string(i));
  }
}

TEST(EvaluateMany, BitIdenticalForAnyThreadCount) {
  const Scenario sc = compile_fixture();
  std::vector<EvalRequest> requests;
  for (int copy = 0; copy < 3; ++copy) {
    for (const char* m : {"mc", "fo", "cmc", "so", "sculli"}) {
      EvalRequest req;
      req.method = m;
      req.options.mc_trials = 1'500;
      req.options.seed = 99;
      requests.push_back(req);
    }
  }

  const auto one = evaluate_many(sc, requests, 1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{7}}) {
    const auto many = evaluate_many(sc, requests, threads);
    ASSERT_EQ(many.size(), one.size()) << threads;
    for (std::size_t i = 0; i < one.size(); ++i) {
      expect_bit_identical(many[i], one[i],
                           "threads " + std::to_string(threads) +
                               " / index " + std::to_string(i));
    }
  }
}

TEST(EvaluateMany, DuplicateStochasticRequestsDecorrelate) {
  const Scenario sc = compile_fixture();
  std::vector<EvalRequest> requests(2);
  for (auto& req : requests) {
    req.method = "mc";
    req.options.mc_trials = 500;
    req.options.seed = 7;
  }
  const auto results = evaluate_many(sc, requests, 2);
  ASSERT_TRUE(results[0].supported);
  ASSERT_TRUE(results[1].supported);
  // Identical requests, different batch indices => different derived
  // seeds => (almost surely) different finite-sample means.
  EXPECT_NE(results[0].mean, results[1].mean);
}

TEST(EvaluateMany, CapabilityGatingStaysInsideTheBatch) {
  // Since the flat-distribution-engine refactor every builtin method
  // handles heterogeneous rates, so the gating fixture is the retry
  // model: dodin is a two-state method and must gate (not crash) on a
  // geometric scenario while fo in the same batch still runs.
  const Dag g = expmk::test::diamond();
  const std::vector<double> rates = {0.1, 0.2, 0.3, 0.1};
  const Scenario het_geo = Scenario::compile(g, FailureSpec::per_task(rates),
                                             RetryModel::Geometric);
  std::vector<EvalRequest> requests(2);
  requests[0].method = "dodin";  // two-state only: gated under geometric
  requests[1].method = "fo";
  const auto results = evaluate_many(het_geo, requests, 2);
  EXPECT_FALSE(results[0].supported);
  EXPECT_NE(results[0].note.find("geometric retry model"), std::string::npos);
  EXPECT_TRUE(results[1].supported);
  EXPECT_GT(results[1].mean, 0.0);
}

}  // namespace
