// Tests for the self-tuning query planner (exp/plan.hpp):
//
//  * select() monotonicity — a tighter deadline never picks a
//    predicted-slower method, a tighter target never picks a
//    predicted-cheaper one (the file-comment contract);
//  * deadline semantics: whenever any capability-feasible method fits,
//    the choice is predicted under the deadline and marked feasible;
//  * delivered accuracy vs the exact oracle on a DAG x pfail x target
//    grid (all cells <= 24 tasks, so `exact` is available as truth);
//  * planned evaluate_many batches stay bitwise independent of thread
//    count (the EWMA-disabled shared-planner contract);
//  * CostModel EWMA: correction moves toward the observed ratio, the
//    per-update ratio is clamped to [1/4, 4], disabled EWMA is a no-op;
//  * PlanBudget validation and the method-name round trip.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/failure_model.hpp"
#include "exp/evaluate_many.hpp"
#include "exp/evaluator.hpp"
#include "exp/plan.hpp"
#include "gen/random_dags.hpp"
#include "scenario/scenario.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::core::calibrate;
using expmk::core::RetryModel;
using expmk::exp::CostFeatures;
using expmk::exp::CostModel;
using expmk::exp::EvalRequest;
using expmk::exp::evaluate_many;
using expmk::exp::EvaluatorRegistry;
using expmk::exp::kPlanMethodCount;
using expmk::exp::plan_features;
using expmk::exp::plan_method_from_name;
using expmk::exp::plan_method_name;
using expmk::exp::PlanBudget;
using expmk::exp::PlanChoice;
using expmk::exp::PlanMethod;
using expmk::exp::PlannedResult;
using expmk::exp::Planner;
using expmk::graph::Dag;
using expmk::scenario::FailureSpec;
using expmk::scenario::Scenario;

Scenario compile(const Dag& g, double pfail) {
  return Scenario::compile(g, FailureSpec(calibrate(g, pfail)),
                           RetryModel::TwoState);
}

/// A planner whose decisions are a pure function of the request (no
/// EWMA memory between calls) — what the determinism tests need.
Planner pure_planner() {
  Planner::Config cfg;
  cfg.enable_ewma = false;
  return Planner(cfg);
}

TEST(PlanMethodNames, RoundTripAndUnknowns) {
  for (std::size_t i = 0; i < kPlanMethodCount; ++i) {
    const auto m = static_cast<PlanMethod>(i);
    EXPECT_EQ(plan_method_from_name(plan_method_name(m)), m)
        << plan_method_name(m);
  }
  EXPECT_EQ(plan_method_from_name("bounds.lower"), PlanMethod::kBounds);
  EXPECT_EQ(plan_method_from_name("bounds.upper"), PlanMethod::kBounds);
  EXPECT_EQ(plan_method_from_name("no-such-method"), PlanMethod::kCount);
  EXPECT_EQ(plan_method_from_name(""), PlanMethod::kCount);
}

TEST(PlanSelect, DeadlineMonotonicity) {
  // As the deadline tightens the feasible set only shrinks, so the
  // chosen method's predicted cost must be non-increasing and its
  // predicted error non-decreasing (most-accurate-under-deadline picks
  // from a smaller set).
  const Scenario sc = compile(expmk::gen::erdos_dag(60, 0.08, 7), 0.01);
  const CostFeatures f = plan_features(sc);
  const Planner planner = pure_planner();

  double prev_cost = std::numeric_limits<double>::infinity();
  double prev_err = -1.0;
  bool prev_feasible = true;
  for (const double deadline :
       {1e9, 1e7, 1e6, 1e5, 1e4, 1e3, 1e2, 1e1, 1.0, 0.1}) {
    PlanBudget budget;
    budget.deadline_us = deadline;
    const PlanChoice c = planner.select(f, budget);
    if (c.feasible) {
      EXPECT_LE(c.predicted_us, deadline) << "deadline " << deadline;
      EXPECT_LE(c.predicted_us, prev_cost) << "deadline " << deadline;
      if (prev_feasible && prev_err >= 0.0) {
        EXPECT_GE(c.predicted_rel_err, prev_err) << "deadline " << deadline;
      }
      prev_cost = c.predicted_us;
      prev_err = c.predicted_rel_err;
    } else {
      // Once infeasible, every tighter deadline stays infeasible.
      prev_feasible = false;
    }
    if (!prev_feasible) EXPECT_FALSE(c.feasible) << "deadline " << deadline;
  }
}

TEST(PlanSelect, TargetMonotonicity) {
  // As the accuracy target tightens the feasible set only shrinks (and
  // the MC candidate only gets more expensive), so the cheapest
  // feasible pick's predicted cost must be non-decreasing.
  const Scenario sc = compile(expmk::gen::erdos_dag(60, 0.08, 7), 0.01);
  const CostFeatures f = plan_features(sc);
  const Planner planner = pure_planner();

  double prev_cost = -1.0;
  for (const double target : {0.05, 0.01, 1e-3, 1e-4, 1e-5, 1e-6}) {
    PlanBudget budget;
    budget.target_rel_err = target;
    const PlanChoice c = planner.select(f, budget);
    if (!c.feasible) continue;
    EXPECT_LE(c.predicted_rel_err, target) << "target " << target;
    EXPECT_GE(c.predicted_us, prev_cost) << "target " << target;
    prev_cost = c.predicted_us;
  }
}

TEST(PlanSelect, DeadlineAlwaysFeasibleWithGenerousBudget) {
  // With an hour-long deadline SOMETHING always fits, on every retry
  // model and shape the suite uses.
  const Planner planner = pure_planner();
  const auto check = [&](const Scenario& sc) {
    PlanBudget budget;
    budget.deadline_us = 3.6e9;
    const PlanChoice c = planner.select(plan_features(sc), budget);
    EXPECT_TRUE(c.feasible);
    EXPECT_LE(c.predicted_us, budget.deadline_us);
  };
  check(compile(expmk::test::diamond(), 0.01));
  check(compile(expmk::test::n_graph(), 0.01));
  check(compile(expmk::gen::erdos_dag(40, 0.1, 3), 0.005));
  check(Scenario::compile(expmk::test::diamond(),
                          FailureSpec::per_task({0.1, 0.2, 0.3, 0.1}),
                          RetryModel::Geometric));
}

TEST(PlanRun, RejectsEmptyBudget) {
  const Scenario sc = compile(expmk::test::diamond(), 0.01);
  const Planner planner = pure_planner();
  EXPECT_THROW((void)planner.run(sc, PlanBudget{}), std::invalid_argument);
}

TEST(PlanRun, DeliveredAccuracyMeetsTargetOnOracleGrid) {
  // Every grid cell is <= 24 tasks so `exact` provides ground truth.
  // The planner must DELIVER its target on each cell, whatever method
  // it picks: |planned - exact| / exact <= target.
  const auto& reg = EvaluatorRegistry::builtin();
  const Planner planner = pure_planner();

  std::vector<Dag> dags;
  dags.push_back(expmk::test::diamond());
  dags.push_back(expmk::test::n_graph());
  dags.push_back(expmk::gen::erdos_dag(12, 0.25, 21));
  dags.push_back(expmk::gen::erdos_dag(18, 0.15, 5));

  for (std::size_t di = 0; di < dags.size(); ++di) {
    for (const double pfail : {0.001, 0.005, 0.01}) {
      const Scenario sc = compile(dags[di], pfail);
      const expmk::exp::EvalResult oracle =
          reg.find("exact")->evaluate(sc, {});
      ASSERT_TRUE(oracle.supported);
      ASSERT_GT(oracle.mean, 0.0);

      for (const double target : {1e-2, 1e-3, 1e-5}) {
        PlanBudget budget;
        budget.target_rel_err = target;
        const PlannedResult pr = planner.run(sc, budget);
        const std::string where = "dag " + std::to_string(di) + " pfail " +
                                  std::to_string(pfail) + " target " +
                                  std::to_string(target) + " method " +
                                  std::string(pr.report.method_name);
        ASSERT_TRUE(pr.result.supported) << where;
        const double rel =
            std::fabs(pr.result.mean - oracle.mean) / oracle.mean;
        EXPECT_LE(rel, target) << where << " rel " << rel;
        EXPECT_TRUE(pr.report.met_target) << where;
      }
    }
  }
}

TEST(PlanRun, ReportRecordsEveryAttempt) {
  const Scenario sc = compile(expmk::gen::erdos_dag(18, 0.15, 5), 0.01);
  const Planner planner = pure_planner();
  PlanBudget budget;
  budget.target_rel_err = 1e-3;
  const PlannedResult pr = planner.run(sc, budget);
  ASSERT_FALSE(pr.report.steps.empty());
  // The report's headline row is the LAST step (the answer returned).
  const auto& last = pr.report.steps.back();
  EXPECT_EQ(pr.report.method, last.method);
  EXPECT_EQ(pr.report.actual_us, last.actual_us);
  EXPECT_EQ(pr.report.max_atoms, last.max_atoms);
  EXPECT_EQ(pr.report.escalations,
            static_cast<int>(pr.report.steps.size()) - 1);
  EXPECT_EQ(pr.report.method_name, plan_method_name(pr.report.method));
}

TEST(PlanEvaluateMany, PlannedBatchBitIdenticalAcrossThreadCounts) {
  // Planned requests route through a shared EWMA-disabled planner, so a
  // planned batch must stay a pure function of the request — bitwise
  // identical for any worker thread count, exactly like explicit ones.
  const Scenario sc = compile(expmk::gen::erdos_dag(14, 0.25, 21), 0.01);
  std::vector<EvalRequest> requests;
  {
    EvalRequest req;  // target-only
    req.budget.target_rel_err = 1e-2;
    requests.push_back(req);
  }
  {
    EvalRequest req;  // deadline-only
    req.budget.deadline_us = 1e5;
    requests.push_back(req);
  }
  {
    EvalRequest req;  // tighter target: a different method than cell 0
    req.budget.target_rel_err = 1e-3;
    req.options.seed = 77;
    requests.push_back(req);
  }
  {
    EvalRequest req;  // explicit method rides in the same batch
    req.method = "fo";
    requests.push_back(req);
  }

  const auto one = evaluate_many(sc, requests, 1);
  ASSERT_EQ(one.size(), requests.size());
  for (std::size_t i = 0; i + 1 < requests.size(); ++i) {
    EXPECT_NE(one[i].note.find("planned: "), std::string::npos) << i;
  }
  EXPECT_EQ(one.back().note.find("planned: "), std::string::npos);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{7}}) {
    const auto many = evaluate_many(sc, requests, threads);
    ASSERT_EQ(many.size(), one.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
      const std::string where =
          "threads " + std::to_string(threads) + " / index " +
          std::to_string(i);
      EXPECT_EQ(many[i].supported, one[i].supported) << where;
      EXPECT_EQ(many[i].note, one[i].note) << where;
      EXPECT_EQ(many[i].mean, one[i].mean) << where;
      EXPECT_EQ(many[i].std_error, one[i].std_error) << where;
    }
  }
}

TEST(PlanCostModel, EwmaMovesTowardObservationAndClamps) {
  CostModel m;
  m.set_ewma(true, 0.5);
  EXPECT_DOUBLE_EQ(m.correction(PlanMethod::kFo), 1.0);

  // Observed 2x the prediction: the correction moves up, but only
  // alpha-fraction of the way in log space.
  m.observe(PlanMethod::kFo, 10.0, 20.0);
  const double after_one = m.correction(PlanMethod::kFo);
  EXPECT_GT(after_one, 1.0);
  EXPECT_LT(after_one, 2.0);
  EXPECT_NEAR(after_one, std::exp(0.5 * std::log(2.0)), 1e-12);

  // A wild outlier is clamped to a 4x ratio per update.
  CostModel clamp;
  clamp.set_ewma(true, 1.0);  // full-step: correction == clamped ratio
  clamp.observe(PlanMethod::kSo, 1.0, 1e6);
  EXPECT_NEAR(clamp.correction(PlanMethod::kSo), 4.0, 1e-12);
  clamp.observe(PlanMethod::kSo, 1e6, 1.0);  // full step to the 1/4 clamp
  EXPECT_NEAR(clamp.correction(PlanMethod::kSo), 0.25, 1e-12);

  // Corrections scale predictions; other methods are untouched.
  const CostFeatures f{.tasks = 10, .edges = 20};
  const double base = CostModel().predict_us(PlanMethod::kFo, f, 0, 0);
  EXPECT_NEAR(m.predict_us(PlanMethod::kFo, f, 0, 0), base * after_one,
              base * 1e-9);
  EXPECT_DOUBLE_EQ(m.correction(PlanMethod::kMc), 1.0);

  // Disabled EWMA ignores observations entirely.
  CostModel off;
  off.set_ewma(false);
  off.observe(PlanMethod::kFo, 1.0, 100.0);
  EXPECT_DOUBLE_EQ(off.correction(PlanMethod::kFo), 1.0);
}

}  // namespace
