// Tests for core/bottom_levels: failure-aware bottom levels (the
// scheduling-priority quantity the paper motivates).

#include <gtest/gtest.h>

#include "core/bottom_levels.hpp"
#include "core/first_order.hpp"
#include "gen/cholesky.hpp"
#include "gen/lu.hpp"
#include "gen/random_dags.hpp"
#include "graph/levels.hpp"
#include "graph/topological.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::core::failure_aware_bottom_level;
using expmk::core::failure_aware_bottom_levels;
using expmk::core::FailureModel;

TEST(FailureAwareBottomLevels, ZeroLambdaEqualsClassicBottomLevels) {
  const auto g = expmk::gen::cholesky_dag(4);
  const auto topo = expmk::graph::topological_order(g);
  const auto classic =
      expmk::graph::bottom_levels(g, g.weights(), topo);
  const auto aware = failure_aware_bottom_levels(g, FailureModel{0.0});
  ASSERT_EQ(classic.size(), aware.size());
  for (std::size_t i = 0; i < classic.size(); ++i) {
    EXPECT_DOUBLE_EQ(aware[i], classic[i]);
  }
}

TEST(FailureAwareBottomLevels, AlwaysAtLeastClassic) {
  const auto g = expmk::gen::erdos_dag(30, 0.2, 5);
  const auto topo = expmk::graph::topological_order(g);
  const auto classic = expmk::graph::bottom_levels(g, g.weights(), topo);
  const auto aware = failure_aware_bottom_levels(g, FailureModel{0.05});
  for (std::size_t i = 0; i < classic.size(); ++i) {
    EXPECT_GE(aware[i], classic[i] - 1e-12);
  }
}

TEST(FailureAwareBottomLevels, ExitTaskClosedForm) {
  // An exit task's level is a + lambda a^2 (only itself can fail).
  const auto g = expmk::test::diamond(1.0, 2.0, 3.0, 4.0);
  const double lambda = 0.01;
  const auto aware = failure_aware_bottom_levels(g, FailureModel{lambda});
  const auto D = g.find_by_name("D");
  EXPECT_NEAR(aware[D], 4.0 + lambda * 16.0, 1e-12);
}

TEST(FailureAwareBottomLevels, EntryEqualsFirstOrderOfWholeGraph) {
  // For a single-entry DAG whose entry reaches everything, the entry's
  // failure-aware bottom level is exactly the first-order expected
  // makespan of the whole graph.
  const auto g = expmk::gen::cholesky_dag(5);
  ASSERT_EQ(g.entry_tasks().size(), 1u);
  const FailureModel m{0.02};
  const auto aware = failure_aware_bottom_levels(g, m);
  const auto fo = expmk::core::first_order(g, m);
  EXPECT_NEAR(aware[g.entry_tasks()[0]], fo.expected_makespan(), 1e-9);
}

TEST(FailureAwareBottomLevels, SingleTaskVariantAgrees) {
  const auto g = expmk::gen::lu_dag(4);
  const auto topo = expmk::graph::topological_order(g);
  const FailureModel m{0.03};
  const auto all = failure_aware_bottom_levels(g, m, topo);
  for (const expmk::graph::TaskId t :
       {expmk::graph::TaskId{0}, expmk::graph::TaskId{5},
        static_cast<expmk::graph::TaskId>(g.task_count() - 1)}) {
    EXPECT_NEAR(failure_aware_bottom_level(g, m, t, topo), all[t], 1e-12);
  }
}

TEST(FailureAwareBottomLevels, MonotoneAlongEdges) {
  // Like classic bottom levels, aware levels decrease along edges by at
  // least the task's own weight.
  const auto g = expmk::gen::erdos_dag(25, 0.2, 9);
  const auto aware = failure_aware_bottom_levels(g, FailureModel{0.04});
  for (expmk::graph::TaskId u = 0; u < g.task_count(); ++u) {
    for (const auto v : g.successors(u)) {
      EXPECT_GE(aware[u], aware[v] + g.weight(u) - 1e-9);
    }
  }
}

TEST(FailureAwareBottomLevels, CanReorderPriorities) {
  // Construct a graph where classic bottom levels tie but failure-aware
  // ones do not: branch X is one task of weight 2; branch Y is two tasks
  // of weight 1. Classic levels: both 2. First-order corrections differ:
  // X: lambda * 2*2 = 4 lambda; Y: lambda * (1*1 + 1*1) = 2 lambda.
  expmk::graph::Dag g;
  const auto x = g.add_task("X", 2.0);
  const auto y1 = g.add_task("Y1", 1.0);
  const auto y2 = g.add_task("Y2", 1.0);
  g.add_edge(y1, y2);
  const double lambda = 0.01;
  const auto aware = failure_aware_bottom_levels(g, FailureModel{lambda});
  EXPECT_NEAR(aware[x], 2.0 + lambda * 4.0, 1e-12);
  EXPECT_NEAR(aware[y1], 2.0 + lambda * 2.0, 1e-12);
  EXPECT_GT(aware[x], aware[y1]);  // failure-awareness broke the tie
}

}  // namespace
