// Unit tests for graph/dag: construction, adjacency bookkeeping, weight
// invariants, name lookup.

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/dag.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::graph::Dag;
using expmk::graph::kNoTask;

TEST(Dag, AddTaskAssignsSequentialIds) {
  Dag g;
  EXPECT_EQ(g.add_task("a", 1.0), 0u);
  EXPECT_EQ(g.add_task("b", 2.0), 1u);
  EXPECT_EQ(g.task_count(), 2u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_DOUBLE_EQ(g.weight(0), 1.0);
  EXPECT_EQ(g.name(1), "b");
}

TEST(Dag, WithTasksBulkConstruction) {
  const Dag g = Dag::with_tasks(5, 0.5);
  EXPECT_EQ(g.task_count(), 5u);
  for (expmk::graph::TaskId i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(g.weight(i), 0.5);
  }
  EXPECT_THROW(Dag::with_tasks(2, -1.0), std::invalid_argument);
}

TEST(Dag, EdgesMaintainBothAdjacencies) {
  Dag g;
  const auto a = g.add_task(1.0);
  const auto b = g.add_task(1.0);
  const auto c = g.add_task(1.0);
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, c);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.out_degree(a), 2u);
  EXPECT_EQ(g.in_degree(c), 2u);
  EXPECT_EQ(g.successors(a).size(), 2u);
  EXPECT_EQ(g.predecessors(c).size(), 2u);
}

TEST(Dag, RejectsInvalidEdges) {
  Dag g;
  const auto a = g.add_task(1.0);
  EXPECT_THROW(g.add_edge(a, a), std::invalid_argument);
  EXPECT_THROW(g.add_edge(a, 99), std::out_of_range);
  EXPECT_THROW(g.add_edge(99, a), std::out_of_range);
}

TEST(Dag, AddEdgeUniqueDeduplicates) {
  Dag g;
  const auto a = g.add_task(1.0);
  const auto b = g.add_task(1.0);
  g.add_edge_unique(a, b);
  g.add_edge_unique(a, b);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Dag, NegativeWeightRejected) {
  Dag g;
  EXPECT_THROW(g.add_task(-0.5), std::invalid_argument);
  const auto a = g.add_task(1.0);
  EXPECT_THROW(g.set_weight(a, -1.0), std::invalid_argument);
  g.set_weight(a, 3.0);
  EXPECT_DOUBLE_EQ(g.weight(a), 3.0);
}

TEST(Dag, EntryAndExitTasks) {
  const auto g = expmk::test::diamond();
  const auto entries = g.entry_tasks();
  const auto exits = g.exit_tasks();
  ASSERT_EQ(entries.size(), 1u);
  ASSERT_EQ(exits.size(), 1u);
  EXPECT_EQ(g.name(entries[0]), "A");
  EXPECT_EQ(g.name(exits[0]), "D");
}

TEST(Dag, TotalAndMeanWeight) {
  const auto g = expmk::test::diamond(1.0, 2.0, 3.0, 4.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 10.0);
  EXPECT_DOUBLE_EQ(g.mean_weight(), 2.5);
  const Dag empty;
  EXPECT_DOUBLE_EQ(empty.mean_weight(), 0.0);
}

TEST(Dag, FindByName) {
  const auto g = expmk::test::diamond();
  EXPECT_EQ(g.name(g.find_by_name("C")), "C");
  EXPECT_EQ(g.find_by_name("nope"), kNoTask);
}

}  // namespace
