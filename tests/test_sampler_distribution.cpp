// Cross-substrate validation: the Monte-Carlo trial sampler (mc/trial)
// and the analytic distribution factories (prob/discrete_distribution)
// describe the SAME task-duration laws. These tests compare empirical
// frequencies against the analytic CDFs — a disagreement here would mean
// the ground truth and the estimators are silently targeting different
// models.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/failure_model.hpp"
#include "mc/trial.hpp"
#include "prob/discrete_distribution.hpp"
#include "prob/rng.hpp"

namespace {

using D = expmk::prob::DiscreteDistribution;
using expmk::core::FailureModel;
using expmk::core::RetryModel;
using expmk::mc::TrialContext;

/// Samples one task's duration `n` times via the trial machinery and
/// returns value -> frequency.
std::map<double, double> empirical_law(double weight, double lambda,
                                       RetryModel retry, int n) {
  expmk::graph::Dag g;
  g.add_task(weight);
  const TrialContext ctx(g, FailureModel{lambda}, retry);
  std::map<double, int> counts;
  std::vector<double> durations(g.task_count());
  for (int t = 0; t < n; ++t) {
    expmk::prob::McRng rng(42, static_cast<std::uint64_t>(t));
    const double makespan = expmk::mc::run_trial(ctx, rng, durations);
    ++counts[makespan];
  }
  std::map<double, double> freq;
  for (const auto& [v, c] : counts) {
    freq[v] = static_cast<double>(c) / n;
  }
  return freq;
}

TEST(SamplerVsDistribution, TwoStateFrequenciesMatch) {
  const double a = 0.6, lambda = 0.5;
  const double p = std::exp(-lambda * a);
  const auto freq = empirical_law(a, lambda, RetryModel::TwoState, 200'000);
  ASSERT_EQ(freq.size(), 2u);
  EXPECT_NEAR(freq.at(a), p, 0.005);
  EXPECT_NEAR(freq.at(2 * a), 1.0 - p, 0.005);

  const D analytic = D::two_state(a, p);
  EXPECT_NEAR(analytic.atoms()[0].prob, p, 1e-12);
}

TEST(SamplerVsDistribution, GeometricFrequenciesMatchTruncatedLaw) {
  const double a = 1.0, lambda = 0.7;  // harsh: retries frequent
  const double p = std::exp(-lambda * a);
  const auto freq =
      empirical_law(a, lambda, RetryModel::Geometric, 200'000);
  const D analytic = D::geometric_reexec(a, p, 64);
  // Compare the first few atoms (k = 1..4 executions).
  for (int k = 1; k <= 4; ++k) {
    const double expect = analytic.atoms()[static_cast<std::size_t>(k - 1)].prob;
    const auto it = freq.find(a * k);
    ASSERT_NE(it, freq.end()) << "no samples with " << k << " executions";
    EXPECT_NEAR(it->second, expect, 0.006) << k;
  }
}

TEST(SamplerVsDistribution, GeometricMeanMatchesClosedForm) {
  const double a = 0.8, lambda = 0.4;
  const double p = std::exp(-lambda * a);
  const auto freq =
      empirical_law(a, lambda, RetryModel::Geometric, 200'000);
  double mean = 0.0;
  for (const auto& [v, f] : freq) mean += v * f;
  EXPECT_NEAR(mean, a / p, 0.01 * a / p);
}

TEST(SamplerVsDistribution, ZeroLambdaIsDeterministic) {
  const auto freq = empirical_law(1.0, 0.0, RetryModel::Geometric, 1'000);
  ASSERT_EQ(freq.size(), 1u);
  EXPECT_DOUBLE_EQ(freq.begin()->first, 1.0);
}

TEST(SamplerVsDistribution, CapBoundsGeometricExecutions) {
  // With an absurd rate every attempt fails; the cap must bound durations.
  expmk::graph::Dag g;
  g.add_task(1.0);
  TrialContext ctx(g, FailureModel{50.0}, RetryModel::Geometric);
  ctx.max_executions = 8;
  std::vector<double> durations(g.task_count());
  double max_seen = 0.0;
  for (int t = 0; t < 2'000; ++t) {
    expmk::prob::McRng rng(7, static_cast<std::uint64_t>(t));
    max_seen = std::max(max_seen, expmk::mc::run_trial(ctx, rng, durations));
  }
  EXPECT_LE(max_seen, 8.0 + 1e-12);
  EXPECT_GT(max_seen, 7.0);  // the cap is actually reached at this rate
}

TEST(SamplerVsDistribution, ControlStatisticMatchesDefinition) {
  // Z = sum a_i (executions_i - 1): with a single task, duration = a * e
  // implies Z = duration - a, exactly.
  expmk::graph::Dag g;
  g.add_task(0.5);
  const TrialContext ctx(g, FailureModel{1.0}, RetryModel::Geometric);
  std::vector<double> durations(g.task_count());
  for (int t = 0; t < 1'000; ++t) {
    expmk::prob::McRng rng(3, static_cast<std::uint64_t>(t));
    const auto obs = expmk::mc::run_trial_with_control(ctx, rng, durations);
    EXPECT_NEAR(obs.control, obs.makespan - 0.5, 1e-12);
  }
}

}  // namespace
