// Unit tests for graph/levels: top/bottom level conventions and their
// relationship to the critical path (the identities the first-order
// estimator depends on).

#include <gtest/gtest.h>

#include "gen/cholesky.hpp"
#include "gen/random_dags.hpp"
#include "graph/levels.hpp"
#include "graph/longest_path.hpp"
#include "graph/topological.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::graph::bottom_levels;
using expmk::graph::compute_levels;
using expmk::graph::critical_path_length;
using expmk::graph::top_levels;
using expmk::graph::topological_order;

TEST(Levels, DiamondValues) {
  const auto g = expmk::test::diamond(1.0, 2.0, 3.0, 4.0);
  const auto topo = topological_order(g);
  const auto top = top_levels(g, g.weights(), topo);
  const auto bottom = bottom_levels(g, g.weights(), topo);

  const auto A = g.find_by_name("A"), B = g.find_by_name("B"),
             C = g.find_by_name("C"), D = g.find_by_name("D");
  EXPECT_DOUBLE_EQ(top[A], 0.0);
  EXPECT_DOUBLE_EQ(top[B], 1.0);
  EXPECT_DOUBLE_EQ(top[C], 1.0);
  EXPECT_DOUBLE_EQ(top[D], 4.0);  // A + C
  EXPECT_DOUBLE_EQ(bottom[D], 4.0);
  EXPECT_DOUBLE_EQ(bottom[B], 6.0);
  EXPECT_DOUBLE_EQ(bottom[C], 7.0);
  EXPECT_DOUBLE_EQ(bottom[A], 8.0);
}

TEST(Levels, EntryTopIsZeroExitBottomIsWeight) {
  const auto g = expmk::gen::layered_random(4, 3, 0.5, 11);
  const auto topo = topological_order(g);
  const auto top = top_levels(g, g.weights(), topo);
  const auto bottom = bottom_levels(g, g.weights(), topo);
  for (const auto e : g.entry_tasks()) EXPECT_DOUBLE_EQ(top[e], 0.0);
  for (const auto x : g.exit_tasks()) {
    EXPECT_DOUBLE_EQ(bottom[x], g.weight(x));
  }
}

TEST(Levels, BundleCriticalPathMatchesLongestPath) {
  const auto g = expmk::gen::cholesky_dag(5);
  const auto topo = topological_order(g);
  const auto levels = compute_levels(g, g.weights(), topo);
  EXPECT_NEAR(levels.critical_path,
              critical_path_length(g, g.weights(), topo), 1e-12);
}

// Key identity behind the closed-form first order: for every task,
// top(i) + bottom(i) <= d(G), with equality on critical tasks; and the
// bottom level of an entry on the critical path equals d(G).
class LevelsInvariantSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LevelsInvariantSweep, ThroughPathNeverExceedsCriticalPath) {
  const auto g = expmk::gen::erdos_dag(30, 0.15, GetParam());
  const auto topo = topological_order(g);
  const auto levels = compute_levels(g, g.weights(), topo);
  bool some_tight = false;
  for (expmk::graph::TaskId v = 0; v < g.task_count(); ++v) {
    const double through = levels.top[v] + levels.bottom[v];
    EXPECT_LE(through, levels.critical_path + 1e-12);
    if (expmk::test::near(through, levels.critical_path)) some_tight = true;
  }
  EXPECT_TRUE(some_tight);  // the critical path itself is tight
}

TEST_P(LevelsInvariantSweep, BottomLevelIsMonotoneAlongEdges) {
  const auto g = expmk::gen::erdos_dag(30, 0.15, GetParam() + 100);
  const auto topo = topological_order(g);
  const auto bottom = bottom_levels(g, g.weights(), topo);
  for (expmk::graph::TaskId u = 0; u < g.task_count(); ++u) {
    for (const auto v : g.successors(u)) {
      // bottom(u) >= a_u + bottom(v) > bottom(v).
      EXPECT_GE(bottom[u], g.weight(u) + bottom[v] - 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevelsInvariantSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
