// Unit tests for graph/reachability: bitset closure, descendant counts and
// transitive reduction.

#include <gtest/gtest.h>

#include "gen/cholesky.hpp"
#include "gen/random_dags.hpp"
#include "graph/reachability.hpp"
#include "graph/longest_path.hpp"
#include "graph/topological.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::graph::Reachability;
using expmk::graph::redundant_edge_count;
using expmk::graph::transitive_reduction;

TEST(Reachability, DiamondPairs) {
  const auto g = expmk::test::diamond();
  const Reachability r(g);
  const auto A = g.find_by_name("A"), B = g.find_by_name("B"),
             C = g.find_by_name("C"), D = g.find_by_name("D");
  EXPECT_TRUE(r.reaches(A, B));
  EXPECT_TRUE(r.reaches(A, D));
  EXPECT_TRUE(r.reaches(B, D));
  EXPECT_FALSE(r.reaches(B, C));
  EXPECT_FALSE(r.reaches(D, A));
  EXPECT_FALSE(r.reaches(A, A));  // irreflexive by convention
  EXPECT_TRUE(r.comparable(A, D));
  EXPECT_FALSE(r.comparable(B, C));
}

TEST(Reachability, DescendantCounts) {
  const auto g = expmk::test::diamond();
  const Reachability r(g);
  EXPECT_EQ(r.descendant_count(g.find_by_name("A")), 3u);
  EXPECT_EQ(r.descendant_count(g.find_by_name("D")), 0u);
}

TEST(Reachability, MatchesDfsOnRandomGraphs) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto g = expmk::gen::erdos_dag(40, 0.1, seed);
    const Reachability r(g);
    // DFS reference for a few source vertices.
    for (expmk::graph::TaskId s = 0; s < 10; ++s) {
      std::vector<bool> seen(g.task_count(), false);
      std::vector<expmk::graph::TaskId> stack{s};
      while (!stack.empty()) {
        const auto v = stack.back();
        stack.pop_back();
        for (const auto w : g.successors(v)) {
          if (!seen[w]) {
            seen[w] = true;
            stack.push_back(w);
          }
        }
      }
      for (expmk::graph::TaskId t = 0; t < g.task_count(); ++t) {
        EXPECT_EQ(r.reaches(s, t), static_cast<bool>(seen[t]))
            << "seed " << seed << " pair " << s << "->" << t;
      }
    }
  }
}

TEST(TransitiveReduction, RemovesShortcutEdge) {
  expmk::graph::Dag g;
  const auto a = g.add_task("a", 1.0);
  const auto b = g.add_task("b", 1.0);
  const auto c = g.add_task("c", 1.0);
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.add_edge(a, c);  // redundant
  const auto reduced = transitive_reduction(g);
  EXPECT_EQ(reduced.edge_count(), 2u);
  EXPECT_EQ(redundant_edge_count(g), 1u);
}

TEST(TransitiveReduction, PreservesReachabilityAndLongestPath) {
  for (const std::uint64_t seed : {5u, 6u, 7u}) {
    const auto g = expmk::gen::erdos_dag(25, 0.25, seed);
    const auto reduced = transitive_reduction(g);
    EXPECT_LE(reduced.edge_count(), g.edge_count());
    const Reachability r1(g), r2(reduced);
    for (expmk::graph::TaskId u = 0; u < g.task_count(); ++u) {
      for (expmk::graph::TaskId v = 0; v < g.task_count(); ++v) {
        EXPECT_EQ(r1.reaches(u, v), r2.reaches(u, v));
      }
    }
    // Longest path is path-based, so reduction must not change it (the
    // removed edges are never the unique longest connection... they are
    // shortcuts with strictly smaller weight sums along them).
    EXPECT_NEAR(expmk::graph::critical_path_length(g),
                expmk::graph::critical_path_length(reduced), 1e-12);
  }
}

TEST(TransitiveReduction, CholeskyDagIsAlreadyReduced) {
  // The generator emits only direct data dependencies.
  const auto g = expmk::gen::cholesky_dag(5);
  EXPECT_EQ(redundant_edge_count(g), 0u);
}

}  // namespace
