// Tests for mc/histogram: binning, quantiles, empirical CDF.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "mc/histogram.hpp"

namespace {

using expmk::mc::empirical_cdf;
using expmk::mc::empirical_quantile;
using expmk::mc::Histogram;

TEST(Histogram, BinsCountsAndDensity) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);  // one per bucket
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_EQ(h.count(b), 1u);
    EXPECT_DOUBLE_EQ(h.density(b), 0.1);
    EXPECT_DOUBLE_EQ(h.bin_center(b), b + 0.5);
  }
}

TEST(Histogram, OutOfRangeClampsToBoundaryBuckets) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, FromSamplesAutoRange) {
  const std::vector<double> samples = {1.0, 2.0, 3.0, 4.0};
  const auto h = Histogram::from_samples(samples, 4);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_THROW((void)Histogram::from_samples({}, 4), std::invalid_argument);
}

TEST(Histogram, DegenerateSamplesStillBin) {
  const std::vector<double> samples(5, 2.5);
  const auto h = Histogram::from_samples(samples, 3);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, NonFiniteSamplesAreRejected) {
  // A NaN/inf would feed a non-finite value into the float->int bin cast
  // (undefined behavior); add() must reject instead.
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW(h.add(std::nan("")), std::invalid_argument);
  EXPECT_THROW(h.add(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(h.add(-std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_EQ(h.total(), 0u);  // rejected samples leave no trace
  EXPECT_THROW((void)Histogram::from_samples({1.0, std::nan(""), 2.0}, 4),
               std::invalid_argument);
  EXPECT_THROW((void)Histogram::from_samples(
                   {std::numeric_limits<double>::infinity()}, 4),
               std::invalid_argument);
}

TEST(Histogram, HugeFiniteSamplesClampWithoutOverflow) {
  // Finite values far outside the range must clamp to the boundary
  // buckets; t * bins() is clamped in floating point before the integer
  // cast (casting 4e300 to an integer type is the same UB as the NaN
  // case).
  Histogram h(0.0, 1.0, 4);
  h.add(1e300);
  h.add(-1e300);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.count(0), 1u);
}

TEST(Histogram, UpperBoundarySampleLandsInLastBin) {
  // x == hi maps to t == 1 and the raw bin index == bins(); the clamp
  // must place it in the last bucket, not past the array.
  Histogram h(0.0, 1.0, 4);
  h.add(1.0);
  EXPECT_EQ(h.count(3), 1u);
  h.add(0.0);  // lower boundary: first bucket
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, AsciiRenderingMentionsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  std::ostringstream os;
  h.print_ascii(os, 10);
  EXPECT_NE(os.str().find('#'), std::string::npos);
}

TEST(EmpiricalQuantile, OrderStatisticsInterpolation) {
  const std::vector<double> s = {4.0, 1.0, 3.0, 2.0};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(empirical_quantile(s, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(empirical_quantile(s, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(empirical_quantile(s, 0.5), 2.5);
  EXPECT_THROW((void)empirical_quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)empirical_quantile(s, 1.5), std::invalid_argument);
}

TEST(EmpiricalCdf, CountsFractionBelow) {
  const std::vector<double> s = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(empirical_cdf(s, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(empirical_cdf(s, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(empirical_cdf(s, 9.0), 1.0);
  EXPECT_THROW((void)empirical_cdf({}, 1.0), std::invalid_argument);
}

}  // namespace
