// Tests for src/scenario and the Scenario-based evaluation API:
//
//  * FailureSpec / Scenario::compile validation and cached-state checks;
//  * the adapter property: every legacy (Dag&, FailureModel) evaluator
//    call is BIT-identical to its Scenario-based overload, across all 13
//    registered evaluators, both retry models and a spread of DAGs;
//  * heterogeneous per-task rates end-to-end: validated against the exact
//    oracle on <= 10-task DAGs (fo/so/mc/cmc and the rest of the
//    heterogeneous-capable catalogue), uniform-equivalence when the rate
//    vector is constant, and clean capability gating for the methods that
//    remain uniform-only;
//  * the compile-once contract: a sweep compiles exactly one Scenario per
//    (generator, size, pfail) cell, however many methods run on it;
//  * conditional-MC censoring surfaced structurally (EvalResult and the
//    expmk-sweep-v3 artifact schema).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "core/exact.hpp"
#include "core/failure_model.hpp"
#include "core/first_order.hpp"
#include "core/second_order.hpp"
#include "exp/evaluator.hpp"
#include "exp/sweep.hpp"
#include "gen/random_dags.hpp"
#include "graph/longest_path.hpp"
#include "graph/topological.hpp"
#include "mc/engine.hpp"
#include "mc/trial.hpp"
#include "scenario/scenario.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::core::calibrate;
using expmk::core::FailureModel;
using expmk::core::RetryModel;
using expmk::exp::EstimateKind;
using expmk::exp::EvalOptions;
using expmk::exp::EvalResult;
using expmk::exp::Evaluator;
using expmk::exp::EvaluatorRegistry;
using expmk::graph::Dag;
using expmk::graph::TaskId;
using expmk::scenario::FailureSpec;
using expmk::scenario::Scenario;

/// Deterministic per-task rate vector around the calibrated uniform
/// lambda: multipliers cycle through a fixed spread so every DAG gets
/// genuinely heterogeneous (but moderate) rates.
std::vector<double> spread_rates(const Dag& g, double pfail) {
  const double lambda = calibrate(g, pfail).lambda;
  const double mult[] = {0.3, 1.0, 2.0, 0.6, 1.4, 0.1};
  std::vector<double> rates(g.task_count());
  for (TaskId i = 0; i < g.task_count(); ++i) {
    rates[i] = lambda * mult[i % 6];
  }
  return rates;
}

std::vector<std::pair<std::string, Dag>> fixture_dags() {
  std::vector<std::pair<std::string, Dag>> dags;
  dags.emplace_back("diamond", expmk::test::diamond(0.4, 0.3, 0.5, 0.2));
  dags.emplace_back("n_graph", expmk::test::n_graph(0.2, 0.3, 0.25, 0.15));
  dags.emplace_back("chain6", expmk::gen::chain_dag(6, 7));
  dags.emplace_back("forkjoin", expmk::gen::fork_join_dag(5, 11));
  dags.emplace_back("sp6", expmk::gen::random_series_parallel(6, 3));
  dags.emplace_back("erdos10", expmk::gen::erdos_dag(10, 0.3, 5));
  return dags;
}

// --------------------------------------------------------------- compile

TEST(FailureSpec, ValidationAndAccessors) {
  EXPECT_THROW((void)FailureSpec::per_task({}), std::invalid_argument);

  const FailureSpec het = FailureSpec::per_task({0.1, 0.2});
  EXPECT_TRUE(het.heterogeneous());
  EXPECT_THROW((void)het.uniform_lambda(), std::logic_error);
  EXPECT_THROW((void)het.uniform_model(), std::logic_error);

  const FailureSpec uni = FailureSpec::uniform(0.5);
  EXPECT_FALSE(uni.heterogeneous());
  EXPECT_DOUBLE_EQ(uni.uniform_lambda(), 0.5);
  EXPECT_DOUBLE_EQ(uni.uniform_model().lambda, 0.5);
}

TEST(ScenarioCompile, RejectsBadSpecs) {
  const Dag g = expmk::test::diamond();
  // Rate vector size must match the DAG.
  EXPECT_THROW(
      (void)Scenario::compile(g, FailureSpec::per_task({0.1, 0.2})),
      std::invalid_argument);
  // Negative / non-finite rates.
  EXPECT_THROW((void)Scenario::compile(
                   g, FailureSpec::per_task({0.1, -0.2, 0.1, 0.1})),
               std::invalid_argument);
  EXPECT_THROW((void)Scenario::compile(
                   g, FailureSpec::per_task({0.1, std::nan(""), 0.1, 0.1})),
               std::invalid_argument);
  // Negative / non-finite uniform lambda.
  EXPECT_THROW((void)Scenario::compile(g, FailureSpec::uniform(-1.0)),
               std::invalid_argument);
  // A cyclic graph fails at the CSR build.
  Dag cyclic;
  const auto a = cyclic.add_task(1.0);
  const auto b = cyclic.add_task(1.0);
  cyclic.add_edge(a, b);
  cyclic.add_edge(b, a);
  EXPECT_THROW((void)Scenario::compile(cyclic, FailureSpec::uniform(0.1)),
               std::invalid_argument);
}

// Dag::add_task rejects negative weights but its `weight < 0.0` check is
// false for NaN (and +inf passes), so a poisoned weight used to flow
// silently into every method. Compile is the choke point: it must throw.
TEST(ScenarioCompile, RejectsNonFiniteTaskWeights) {
  for (const double bad :
       {std::nan(""), std::numeric_limits<double>::infinity()}) {
    Dag g = expmk::test::diamond();
    g.set_weight(2, bad);
    EXPECT_THROW((void)Scenario::compile(g, FailureSpec::uniform(0.1)),
                 std::invalid_argument)
        << bad;
    // Heterogeneous specs hit the same weight validation.
    EXPECT_THROW((void)Scenario::compile(
                     g, FailureSpec::per_task({0.1, 0.1, 0.1, 0.1})),
                 std::invalid_argument)
        << bad;
  }
  // Zero weights (virtual source/sink nodes) remain legal.
  Dag g = expmk::test::diamond();
  g.set_weight(0, 0.0);
  EXPECT_NO_THROW((void)Scenario::compile(g, FailureSpec::uniform(0.1)));
}

TEST(ScenarioCompile, CachesExitTasks) {
  const Dag g = expmk::gen::erdos_dag(12, 0.3, 17);
  const Scenario sc = Scenario::compile(g, FailureSpec::uniform(0.05));
  const auto exits = g.exit_tasks();
  ASSERT_EQ(sc.exits().size(), exits.size());
  for (std::size_t i = 0; i < exits.size(); ++i) {
    EXPECT_EQ(sc.exits()[i], exits[i]) << i;
  }
}

TEST(ScenarioCompile, CachedStateMatchesTheLibraryPrimitives) {
  const Dag g = expmk::gen::erdos_dag(12, 0.3, 17);
  const FailureModel model = calibrate(g, 0.01);
  const Scenario sc =
      Scenario::compile(g, FailureSpec(model), RetryModel::TwoState);

  EXPECT_EQ(sc.task_count(), g.task_count());
  EXPECT_FALSE(sc.heterogeneous());
  EXPECT_FALSE(sc.failure_free());
  EXPECT_DOUBLE_EQ(sc.uniform_model().lambda, model.lambda);
  EXPECT_EQ(sc.critical_path(), expmk::graph::critical_path_length(g));
  EXPECT_EQ(sc.mean_weight(), g.mean_weight());
  EXPECT_EQ(sc.total_weight(), g.total_weight());

  // Per-task constants, bit-identical to the primitives they cache.
  const auto p_ref = expmk::core::success_probabilities(g, model);
  ASSERT_EQ(sc.p_success().size(), g.task_count());
  for (TaskId i = 0; i < g.task_count(); ++i) {
    EXPECT_EQ(sc.p_success()[i], p_ref[i]) << i;
    EXPECT_EQ(sc.rates()[i], model.lambda) << i;
    EXPECT_EQ(sc.expected_durations()[i],
              model.expected_duration(g.weight(i), RetryModel::TwoState))
        << i;
  }
  // Position-order views are the Dag-order views permuted by the CSR.
  for (std::uint32_t pos = 0; pos < g.task_count(); ++pos) {
    const TaskId id = sc.csr().original_id(pos);
    EXPECT_EQ(sc.p_success_csr()[pos], p_ref[id]) << pos;
    EXPECT_EQ(sc.q_fail_csr()[pos], 1.0 - p_ref[id]) << pos;
    EXPECT_EQ(sc.weights_csr()[pos], g.weight(id)) << pos;
  }
  // topo() is a valid topological order of the Dag.
  std::vector<std::uint32_t> position(g.task_count());
  for (std::uint32_t pos = 0; pos < g.task_count(); ++pos) {
    position[sc.topo()[pos]] = pos;
  }
  for (TaskId u = 0; u < g.task_count(); ++u) {
    for (const TaskId v : g.successors(u)) {
      EXPECT_LT(position[u], position[v]);
    }
  }

  // The geometric expected duration is cached per the scenario's retry.
  const Scenario sc_geo =
      Scenario::compile(g, FailureSpec(model), RetryModel::Geometric);
  for (TaskId i = 0; i < g.task_count(); ++i) {
    EXPECT_EQ(sc_geo.expected_durations()[i],
              model.expected_duration(g.weight(i), RetryModel::Geometric))
        << i;
  }
}

TEST(ScenarioCompile, TrialContextIsAZeroCopyView) {
  const Dag g = expmk::test::diamond();
  const Scenario sc = Scenario::compile(g, FailureSpec::uniform(0.3),
                                        RetryModel::Geometric);
  const expmk::mc::TrialContext ctx(sc);
  // The context borrows the scenario's CSR and constant arrays — no
  // rebuild, no copies.
  EXPECT_EQ(&ctx.csr(), &sc.csr());
  EXPECT_EQ(ctx.p_success_csr().data(), sc.p_success_csr().data());
  EXPECT_EQ(ctx.q_fail_csr().data(), sc.q_fail_csr().data());
  EXPECT_EQ(ctx.inv_log_q_csr().data(), sc.inv_log_q_csr().data());
  EXPECT_EQ(ctx.retry(), RetryModel::Geometric);
}

// ---------------------------------------------------- adapter property

/// Bitwise result equality (NaN == NaN for the unsupported case).
void expect_bit_identical(const EvalResult& a, const EvalResult& b,
                          const std::string& where) {
  EXPECT_EQ(a.supported, b.supported) << where;
  EXPECT_EQ(a.note, b.note) << where;
  EXPECT_EQ(a.censored_trials, b.censored_trials) << where;
  if (std::isnan(a.mean) || std::isnan(b.mean)) {
    EXPECT_TRUE(std::isnan(a.mean) && std::isnan(b.mean)) << where;
  } else {
    EXPECT_EQ(a.mean, b.mean) << where;
  }
  EXPECT_EQ(a.std_error, b.std_error) << where;
}

// Every legacy (Dag&, FailureModel, RetryModel) adapter must return
// BIT-identical results to its Scenario-based overload — the adapters are
// compile-and-forward, and the Scenario caches reproduce the pre-Scenario
// arithmetic exactly. All 13 evaluators, both retry models, uniform rates.
TEST(AdapterProperty, LegacyCallsBitIdenticalToScenarioCalls) {
  EvalOptions opt;
  opt.mc_trials = 2'000;
  opt.seed = 77;
  opt.threads = 1;
  opt.capture_distribution = false;

  const auto& reg = EvaluatorRegistry::builtin();
  ASSERT_EQ(reg.size(), 16u);
  for (const auto& [label, g] : fixture_dags()) {
    const FailureModel model = calibrate(g, 0.01);
    for (const RetryModel retry :
         {RetryModel::TwoState, RetryModel::Geometric}) {
      const Scenario sc =
          Scenario::compile(g, FailureSpec(model), retry);
      for (const Evaluator& e : reg.evaluators()) {
        const std::string where =
            label + " / " + std::string(e.name()) + " / " +
            (retry == RetryModel::TwoState ? "two_state" : "geometric");
        const EvalResult legacy = e.evaluate(g, model, retry, opt);
        const EvalResult scen = e.evaluate(sc, opt);
        expect_bit_identical(legacy, scen, where);
      }
    }
  }
}

// ------------------------------------------------- heterogeneous rates

// Constant per-task rates must agree with the uniform spec (different
// code path, same model) to float-noise precision.
TEST(Heterogeneous, ConstantRateVectorMatchesUniform) {
  const Dag g = expmk::gen::erdos_dag(10, 0.3, 5);
  const FailureModel model = calibrate(g, 0.01);
  const std::vector<double> rates(g.task_count(), model.lambda);

  const Scenario uni =
      Scenario::compile(g, FailureSpec(model), RetryModel::TwoState);
  const Scenario het = Scenario::compile(g, FailureSpec::per_task(rates),
                                         RetryModel::TwoState);
  ASSERT_TRUE(het.heterogeneous());

  const double exact_u = expmk::core::exact_two_state(uni);
  const double exact_h = expmk::core::exact_two_state(het);
  // Same p_success vector => identical enumeration.
  EXPECT_EQ(exact_u, exact_h);

  const double fo_u = expmk::core::first_order(uni).expected_makespan();
  const double fo_h = expmk::core::first_order(het).expected_makespan();
  EXPECT_NEAR(fo_h, fo_u, 1e-12 * fo_u);

  const double so_u = expmk::core::second_order(uni).expected_makespan;
  const double so_h = expmk::core::second_order(het).expected_makespan;
  EXPECT_NEAR(so_h, so_u, 1e-12 * so_u);

  // The MC kernel consumes per-task constant arrays either way: with an
  // identical p table the sampled stream is identical.
  expmk::mc::McConfig cfg;
  cfg.trials = 1'000;
  cfg.seed = 5;
  cfg.threads = 1;
  EXPECT_EQ(expmk::mc::run_monte_carlo(uni, cfg).mean,
            expmk::mc::run_monte_carlo(het, cfg).mean);
}

// Heterogeneous rates end-to-end against the exact oracle on <= 10-task
// DAGs: every heterogeneous-capable two-state evaluator must respect its
// accuracy contract (with margin: the spread pushes some per-task rates
// to 2x the calibrated lambda, scaling the closed-form error terms).
TEST(Heterogeneous, CatalogueValidatedAgainstExactOracle) {
  EvalOptions opt;
  opt.mc_trials = 60'000;
  opt.seed = 913;
  opt.threads = 1;

  const auto& reg = EvaluatorRegistry::builtin();
  for (const auto& [label, g] : fixture_dags()) {
    ASSERT_LE(g.task_count(), 10u) << label;
    const Scenario sc = Scenario::compile(
        g, FailureSpec::per_task(spread_rates(g, 0.01)),
        RetryModel::TwoState);
    const double exact = expmk::core::exact_two_state(sc);
    ASSERT_GT(exact, 0.0) << label;

    for (const Evaluator& e : reg.evaluators()) {
      const auto& caps = e.capabilities();
      if (!caps.two_state || !caps.heterogeneous) continue;
      const auto r = e.evaluate(sc, opt);
      const std::string where = label + " / " + std::string(e.name());
      if (!r.supported) {
        // Only the strict SP reducers may decline: flat `sp` on any
        // non-SP graph, `sp.hier` when the collapsed quotient is still
        // not series-parallel.
        EXPECT_TRUE(e.name() == std::string_view("sp") ||
                    e.name() == std::string_view("sp.hier"))
            << where << ": " << r.note;
        continue;
      }
      switch (caps.kind) {
        case EstimateKind::Estimate: {
          const double tol = 8.0 * caps.rel_tolerance * exact +
                             (caps.stochastic ? 6.0 * r.std_error : 0.0);
          EXPECT_NEAR(r.mean, exact, tol) << where;
          break;
        }
        case EstimateKind::LowerBound:
          EXPECT_LE(r.mean, exact * (1.0 + 1e-9)) << where;
          break;
        case EstimateKind::UpperBound:
          EXPECT_GE(r.mean, exact * (1.0 - 1e-9)) << where;
          break;
      }
    }
  }
}

// The SP evaluator is EXACT on series-parallel graphs — also under
// heterogeneous rates (its per-task 2-state laws carry each task's own
// p_i), which pins the heterogeneous plumbing end to end with zero
// statistical slack.
TEST(Heterogeneous, SpEvaluatorExactOnSpGraphs) {
  const Dag g = expmk::gen::random_series_parallel(8, 21);
  ASSERT_LE(g.task_count(), 10u);
  const Scenario sc = Scenario::compile(
      g, FailureSpec::per_task(spread_rates(g, 0.02)),
      RetryModel::TwoState);
  const auto r =
      EvaluatorRegistry::builtin().find("sp")->evaluate(sc, {});
  ASSERT_TRUE(r.supported) << r.note;
  EXPECT_NEAR(r.mean, expmk::core::exact_two_state(sc), 1e-9);
}

// Heterogeneous rates actually matter: doubling one task's rate moves the
// first-order estimate by that task's own sensitivity term.
TEST(Heterogeneous, RatesAreNotCollapsedToTheirMean) {
  const Dag g = expmk::test::diamond(0.4, 0.3, 0.5, 0.2);
  const FailureModel model = calibrate(g, 0.01);
  std::vector<double> rates(g.task_count(), model.lambda);
  rates[2] *= 8.0;  // task C sits on the critical path A-C-D

  const Scenario het = Scenario::compile(g, FailureSpec::per_task(rates),
                                         RetryModel::TwoState);
  const Scenario uni =
      Scenario::compile(g, FailureSpec(model), RetryModel::TwoState);
  EXPECT_GT(expmk::core::first_order(het).expected_makespan(),
            expmk::core::first_order(uni).expected_makespan());
  EXPECT_GT(expmk::core::exact_two_state(het),
            expmk::core::exact_two_state(uni));
}

// The flat-distribution-engine refactor lifted the last two heterogeneous
// gates: exact.geo enumerates each task's own truncated-geometric state
// table, and dodin builds each task's own 2-state law from the scenario's
// cached p_i. The whole builtin catalogue now accepts per-task rates; the
// retry-model gates are still enforced.
TEST(Heterogeneous, FormerlyGatedMethodsNowSupportPerTaskRates) {
  const Dag g = expmk::test::diamond();
  const std::vector<double> rates = {0.1, 0.2, 0.3, 0.1};
  const auto& reg = EvaluatorRegistry::builtin();
  for (const Evaluator& e : reg.evaluators()) {
    EXPECT_TRUE(e.capabilities().heterogeneous) << e.name();
  }

  const Scenario het_geo = Scenario::compile(
      g, FailureSpec::per_task(rates), RetryModel::Geometric);
  const auto geo = reg.find("exact.geo")->evaluate(het_geo, {});
  ASSERT_TRUE(geo.supported) << geo.note;
  EXPECT_GT(geo.mean, expmk::graph::critical_path_length(g));

  const Scenario het_ts = Scenario::compile(
      g, FailureSpec::per_task(rates), RetryModel::TwoState);
  const auto dodin = reg.find("dodin")->evaluate(het_ts, {});
  ASSERT_TRUE(dodin.supported) << dodin.note;
  // The diamond is series-parallel, so untruncated Dodin is exact — also
  // under heterogeneous rates (the per-task plumbing end to end).
  EXPECT_NEAR(dodin.mean, expmk::core::exact_two_state(het_ts), 1e-12);

  // Retry-model gating is unchanged: dodin is a two-state method.
  const auto gated = reg.find("dodin")->evaluate(het_geo, {});
  EXPECT_FALSE(gated.supported);
  EXPECT_NE(gated.note.find("geometric retry model"), std::string::npos);
}

// ---------------------------------------------------- compile-once sweep

// The sweep contract the redesign exists for: one Scenario::compile per
// (generator, size, pfail) cell, no matter how many methods run on it.
TEST(CompileOnce, SweepCompilesOneScenarioPerCell) {
  expmk::exp::SweepGrid grid;
  grid.generators = {"lu", "chain"};
  grid.sizes = {3};
  grid.pfails = {0.001, 0.01};
  grid.methods = {"fo", "so", "sculli", "bounds.lower", "bounds.upper"};
  grid.reference = "exact";
  grid.options.mc_trials = 100;

  const std::uint64_t before = Scenario::compiled_count();
  const auto result = expmk::exp::SweepRunner().run(grid, 2);
  const std::uint64_t compiled = Scenario::compiled_count() - before;

  const std::size_t cells = 2 * 1 * 2;  // generators x sizes x pfails
  EXPECT_EQ(compiled, cells);
  // 6 methods ran per cell (reference prepended): without the compile-
  // once scenario this would have been 24 compiles.
  ASSERT_EQ(result.cells.size(), cells * 6);
  for (const auto& cell : result.cells) {
    EXPECT_TRUE(cell.result.supported) << cell.method;
  }
}

// ------------------------------------------------- structural censoring

// Conditional-MC censoring is a structural field now, not a string note:
// at a microscopic 1 - p0 the rejection cap binds, censored_trials lands
// in EvalResult (and from there in the v2 sweep schema), and the note
// stays free for real diagnostics.
TEST(CensoredTrials, SurfacedStructurallyThroughEvaluatorAndArtifact) {
  const Dag g = expmk::test::diamond(0.3, 0.3, 0.3, 0.3);
  // 1 - p0 ~ 1.2e-9: a rejection loop capped at 1e6 draws practically
  // never sees a failure, so every trial is censored (deterministic under
  // the fixed seed).
  const Scenario sc = Scenario::compile(g, FailureSpec::uniform(1e-9),
                                        RetryModel::TwoState);
  EvalOptions opt;
  opt.mc_trials = 2;
  opt.seed = 3;
  opt.threads = 1;
  const auto r = EvaluatorRegistry::builtin().find("cmc")->evaluate(sc, opt);
  ASSERT_TRUE(r.supported) << r.note;
  EXPECT_EQ(r.censored_trials, 2u);
  EXPECT_EQ(r.note.find("censored"), std::string::npos)
      << "censoring must not be string-encoded anymore: " << r.note;

  // The v2 artifact schema carries the field for every cell.
  expmk::exp::SweepGrid grid;
  grid.generators = {"chain"};
  grid.sizes = {3};
  grid.pfails = {0.01};
  grid.methods = {"fo"};
  grid.reference = "";
  const auto sweep = expmk::exp::SweepRunner().run(grid);
  const std::string json = sweep.json();
  EXPECT_NE(json.find("\"schema\": \"expmk-sweep-v3\""), std::string::npos);
  EXPECT_NE(json.find("\"censored_trials\": 0"), std::string::npos);
  const std::string csv = sweep.csv();
  EXPECT_NE(csv.find(",censored_trials,"), std::string::npos);
}

}  // namespace
