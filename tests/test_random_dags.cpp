// Unit tests for gen/random_dags: determinism, structural guarantees and
// weight-range compliance of every random family.

#include <gtest/gtest.h>

#include "gen/random_dags.hpp"
#include "graph/topological.hpp"
#include "graph/validate.hpp"

namespace {

using namespace expmk::gen;

TEST(RandomDags, DeterministicForFixedSeed) {
  const auto a = erdos_dag(30, 0.2, 42);
  const auto b = erdos_dag(30, 0.2, 42);
  ASSERT_EQ(a.task_count(), b.task_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (expmk::graph::TaskId i = 0; i < a.task_count(); ++i) {
    EXPECT_DOUBLE_EQ(a.weight(i), b.weight(i));
  }
}

TEST(RandomDags, DifferentSeedsDiffer) {
  const auto a = erdos_dag(30, 0.2, 1);
  const auto b = erdos_dag(30, 0.2, 2);
  bool differs = a.edge_count() != b.edge_count();
  for (expmk::graph::TaskId i = 0; !differs && i < a.task_count(); ++i) {
    differs = a.weight(i) != b.weight(i);
  }
  EXPECT_TRUE(differs);
}

TEST(RandomDags, WeightsInRange) {
  const WeightRange w{0.1, 0.2};
  for (const auto& g :
       {layered_random(5, 4, 0.3, 7, w), erdos_dag(25, 0.2, 7, w),
        random_series_parallel(25, 7, w), chain_dag(10, 7, w),
        fork_join_dag(8, 7, w), independent_tasks(10, 7, w)}) {
    for (expmk::graph::TaskId i = 0; i < g.task_count(); ++i) {
      if (g.name(i).substr(0, 4) == "JOIN") continue;  // junctions
      EXPECT_GE(g.weight(i), 0.1);
      EXPECT_LE(g.weight(i), 0.2);
    }
  }
}

TEST(RandomDags, LayeredHasExpectedShape) {
  const auto g = layered_random(4, 5, 0.5, 3);
  EXPECT_EQ(g.task_count(), 20u);
  const auto report = expmk::graph::validate(g);
  EXPECT_TRUE(report.acyclic);
  // Non-first-layer tasks are guaranteed at least one predecessor.
  std::size_t entries = 0;
  for (expmk::graph::TaskId i = 0; i < g.task_count(); ++i) {
    if (g.in_degree(i) == 0) ++entries;
  }
  EXPECT_EQ(entries, 5u);  // exactly the first layer
}

TEST(RandomDags, ErdosAcyclicAcrossDensities) {
  for (const double p : {0.05, 0.3, 0.9}) {
    const auto g = erdos_dag(30, p, 5);
    EXPECT_TRUE(expmk::graph::try_topological_order(g).has_value())
        << "p=" << p;
  }
}

TEST(RandomDags, ChainIsAPath) {
  const auto g = chain_dag(12, 9);
  EXPECT_EQ(g.task_count(), 12u);
  EXPECT_EQ(g.edge_count(), 11u);
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
}

TEST(RandomDags, UniformChainWeights) {
  const auto g = uniform_chain(5, 0.25);
  for (expmk::graph::TaskId i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(g.weight(i), 0.25);
  }
}

TEST(RandomDags, ForkJoinShape) {
  const auto g = fork_join_dag(6, 11);
  EXPECT_EQ(g.task_count(), 8u);
  EXPECT_EQ(g.edge_count(), 12u);
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
  const auto fork = g.find_by_name("FORK");
  EXPECT_EQ(g.out_degree(fork), 6u);
}

TEST(RandomDags, UniformForkJoinWeights) {
  const auto g = uniform_fork_join(4, 2.0, 0.5);
  EXPECT_DOUBLE_EQ(g.weight(g.find_by_name("FORK")), 0.5);
  EXPECT_DOUBLE_EQ(g.weight(g.find_by_name("B0")), 2.0);
}

TEST(RandomDags, IndependentTasksHaveNoEdges) {
  const auto g = independent_tasks(7, 13);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.entry_tasks().size(), 7u);
}

TEST(RandomDags, SeriesParallelSizeApproximatelyRequested) {
  const auto g = random_series_parallel(40, 21);
  // n real tasks plus possibly a few zero-weight junctions.
  std::size_t real = 0;
  for (expmk::graph::TaskId i = 0; i < g.task_count(); ++i) {
    if (g.name(i).substr(0, 4) != "JOIN") ++real;
  }
  EXPECT_EQ(real, 40u);
  EXPECT_LE(g.task_count(), 80u);
  EXPECT_TRUE(expmk::graph::try_topological_order(g).has_value());
}

TEST(RandomDags, WheatstoneBridgeShape) {
  const auto g = wheatstone_bridge();
  EXPECT_EQ(g.task_count(), 5u);
  EXPECT_EQ(g.edge_count(), 5u);
  EXPECT_EQ(g.entry_tasks().size(), 2u);
  EXPECT_EQ(g.exit_tasks().size(), 3u);
}

TEST(RandomDags, InvalidParametersThrow) {
  EXPECT_THROW((void)layered_random(0, 3, 0.5, 1), std::invalid_argument);
  EXPECT_THROW((void)erdos_dag(0, 0.5, 1), std::invalid_argument);
  EXPECT_THROW((void)chain_dag(0, 1), std::invalid_argument);
  EXPECT_THROW((void)fork_join_dag(0, 1), std::invalid_argument);
  const WeightRange bad{-1.0, 2.0};
  EXPECT_THROW((void)chain_dag(3, 1, bad), std::invalid_argument);
}

}  // namespace
