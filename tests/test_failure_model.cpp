// Unit tests for core/failure_model: probabilities, calibration (the
// paper's Section V-C narrative values), and expected durations.

#include <gtest/gtest.h>

#include <cmath>

#include "core/failure_model.hpp"
#include "gen/cholesky.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::core::calibrate;
using expmk::core::FailureModel;
using expmk::core::lambda_for_pfail;
using expmk::core::per_processor_mtbf_days;
using expmk::core::RetryModel;

TEST(FailureModel, SuccessProbabilityIsExponential) {
  const FailureModel m{0.5};
  EXPECT_NEAR(m.p_success(2.0), std::exp(-1.0), 1e-15);
  EXPECT_NEAR(m.p_fail(2.0), 1.0 - std::exp(-1.0), 1e-15);
  EXPECT_DOUBLE_EQ(m.p_success(0.0), 1.0);
  EXPECT_THROW((void)m.p_success(-1.0), std::invalid_argument);
}

TEST(FailureModel, ZeroLambdaNeverFails) {
  const FailureModel m{0.0};
  EXPECT_DOUBLE_EQ(m.p_success(100.0), 1.0);
  EXPECT_TRUE(std::isinf(m.mtbf()));
  EXPECT_TRUE(m.failure_free());
  EXPECT_FALSE(FailureModel{0.1}.failure_free());
}

TEST(FailureModel, NegativeLambdaIsRejected) {
  // lambda < 0 would yield p_success > 1 and corrupt every downstream
  // probability; only lambda == 0 is the legal "never fails" model.
  const FailureModel m{-0.1};
  EXPECT_THROW((void)m.p_success(1.0), std::invalid_argument);
}

TEST(FailureModel, ZeroPfailCalibratesToExplicitZeroFailureModel) {
  // pfail == 0 is the documented zero-failure path: lambda == 0 exactly,
  // every per-task success probability exactly 1.
  const auto g = expmk::gen::cholesky_dag(4);
  const auto m = calibrate(g, 0.0);
  EXPECT_DOUBLE_EQ(m.lambda, 0.0);
  EXPECT_TRUE(m.failure_free());
  for (const double p : expmk::core::success_probabilities(g, m)) {
    EXPECT_DOUBLE_EQ(p, 1.0);
  }
}

TEST(FailureModel, CalibrationInvertsExactly) {
  const double abar = 0.15;
  for (const double pfail : {0.01, 0.001, 0.0001}) {
    const double lambda = lambda_for_pfail(pfail, abar);
    EXPECT_NEAR(1.0 - std::exp(-lambda * abar), pfail, 1e-15) << pfail;
  }
  EXPECT_THROW((void)lambda_for_pfail(1.0, abar), std::invalid_argument);
  EXPECT_THROW((void)lambda_for_pfail(-0.1, abar), std::invalid_argument);
  EXPECT_THROW((void)lambda_for_pfail(0.5, 0.0), std::invalid_argument);
}

TEST(FailureModel, PaperNarrativeNumbers) {
  // Section V-C: a-bar = 0.15 s and pfail = 0.01 give lambda ~ 0.067 and
  // MTBF ~ 14.9 s; on 100k processors that's ~17.27 days per processor.
  const double lambda = lambda_for_pfail(0.01, 0.15);
  EXPECT_NEAR(lambda, 0.067, 0.001);
  EXPECT_NEAR(FailureModel{lambda}.mtbf(), 14.9, 0.1);
  EXPECT_NEAR(per_processor_mtbf_days(lambda, 100'000.0), 17.27, 0.1);
  // pfail = 0.0001 -> ~4.7 years per processor.
  const double lambda_low = lambda_for_pfail(0.0001, 0.15);
  EXPECT_NEAR(per_processor_mtbf_days(lambda_low, 100'000.0) / 365.0, 4.7,
              0.1);
}

TEST(FailureModel, CalibrateUsesDagMeanWeight) {
  const auto g = expmk::gen::cholesky_dag(6);
  const auto m = calibrate(g, 0.01);
  EXPECT_NEAR(m.p_fail(g.mean_weight()), 0.01, 1e-12);
}

TEST(FailureModel, ExpectedDurationTwoState) {
  const FailureModel m{0.1};
  const double a = 2.0;
  const double p = m.p_success(a);
  EXPECT_NEAR(m.expected_duration(a, RetryModel::TwoState),
              a * p + 2.0 * a * (1.0 - p), 1e-12);
}

TEST(FailureModel, ExpectedDurationGeometricExceedsTwoState) {
  const FailureModel m{0.3};
  const double a = 2.0;
  EXPECT_GT(m.expected_duration(a, RetryModel::Geometric),
            m.expected_duration(a, RetryModel::TwoState));
  // They agree to O(lambda^2): ratio of the differences shrinks with
  // lambda.
  const FailureModel small{0.001};
  const double diff_small =
      small.expected_duration(a, RetryModel::Geometric) -
      small.expected_duration(a, RetryModel::TwoState);
  EXPECT_LT(diff_small, 1e-4);
}

TEST(FailureModel, SuccessProbabilitiesVector) {
  const auto g = expmk::test::diamond(1.0, 2.0, 3.0, 4.0);
  const FailureModel m{0.1};
  const auto p = expmk::core::success_probabilities(g, m);
  ASSERT_EQ(p.size(), 4u);
  for (expmk::graph::TaskId i = 0; i < 4; ++i) {
    EXPECT_NEAR(p[i], std::exp(-0.1 * g.weight(i)), 1e-15);
  }
}

TEST(FailureModel, MtbfDaysInvalidArgs) {
  EXPECT_THROW((void)per_processor_mtbf_days(0.1, 0.0),
               std::invalid_argument);
  EXPECT_TRUE(std::isinf(per_processor_mtbf_days(0.0, 10.0)));
}

}  // namespace
