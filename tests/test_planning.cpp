// Tests for mc/planning: Hoeffding and CLT trial-count planning, and an
// end-to-end check that the planned trial count actually achieves the
// requested precision on a real DAG.

#include <gtest/gtest.h>

#include <cmath>

#include "core/failure_model.hpp"
#include "gen/cholesky.hpp"
#include "graph/longest_path.hpp"
#include "mc/engine.hpp"
#include "mc/planning.hpp"

namespace {

using expmk::mc::clt_trials;
using expmk::mc::hoeffding_trials;
using expmk::mc::plan_trials;

TEST(Planning, HoeffdingClosedForm) {
  // n >= ln(2/alpha) * range^2 / (2 eps^2); range=1, eps=0.01, alpha=0.05:
  // ln(40)/0.0002 = 18444.4... -> 18445.
  EXPECT_EQ(hoeffding_trials(0.0, 1.0, 0.01, 0.95),
            static_cast<std::uint64_t>(
                std::ceil(std::log(2.0 / 0.05) / (2.0 * 0.01 * 0.01))));
}

TEST(Planning, HoeffdingScalesQuadratically) {
  const auto n1 = hoeffding_trials(0.0, 1.0, 0.02, 0.95);
  const auto n2 = hoeffding_trials(0.0, 1.0, 0.01, 0.95);
  EXPECT_NEAR(static_cast<double>(n2) / static_cast<double>(n1), 4.0, 0.01);
  // Doubling the range quadruples the count too.
  const auto n4 = hoeffding_trials(0.0, 2.0, 0.02, 0.95);
  EXPECT_NEAR(static_cast<double>(n4) / static_cast<double>(n1), 4.0, 0.01);
}

TEST(Planning, HoeffdingRejectsBadInputs) {
  EXPECT_THROW((void)hoeffding_trials(1.0, 1.0, 0.1, 0.95),
               std::invalid_argument);
  EXPECT_THROW((void)hoeffding_trials(0.0, 1.0, 0.0, 0.95),
               std::invalid_argument);
  EXPECT_THROW((void)hoeffding_trials(0.0, 1.0, 0.1, 1.0),
               std::invalid_argument);
}

TEST(Planning, CltClosedForm) {
  // n = (z * s / eps)^2, z(0.95) ~ 1.95996; s=2, eps=0.1 -> ~1536.6.
  const auto n = clt_trials(2.0, 0.1, 0.95);
  EXPECT_NEAR(static_cast<double>(n), std::pow(1.959964 * 2.0 / 0.1, 2.0),
              1.0);
  EXPECT_EQ(clt_trials(0.0, 0.1, 0.95), 1u);
  EXPECT_THROW((void)clt_trials(-1.0, 0.1, 0.95), std::invalid_argument);
}

TEST(Planning, CltIsFarCheaperThanHoeffding) {
  // For a concentrated variable, variance-aware planning wins big.
  EXPECT_LT(clt_trials(0.05, 0.01, 0.95) * 10,
            hoeffding_trials(0.0, 1.0, 0.01, 0.95));
}

TEST(Planning, PlanTrialsValidatesPilot) {
  expmk::prob::RunningStats pilot;
  EXPECT_THROW((void)plan_trials(pilot, 0.01, 0.95), std::invalid_argument);
  pilot.push(1.0);
  pilot.push(1.1);
  EXPECT_GE(plan_trials(pilot, 0.001, 0.95), 1u);
}

TEST(Planning, PlannedTrialsAchieveTargetOnRealDag) {
  const auto g = expmk::gen::cholesky_dag(4);
  const auto model = expmk::core::calibrate(g, 0.01);

  // Pilot run.
  expmk::mc::McConfig pilot_cfg;
  pilot_cfg.trials = 2000;
  pilot_cfg.seed = 1;
  const auto pilot = expmk::mc::run_monte_carlo(g, model, pilot_cfg);
  expmk::prob::RunningStats pilot_stats;
  // Reconstruct a stats object from the result (mean/stddev is all the
  // planner needs; feed two synthetic points with the right stddev).
  const double s = std::sqrt(pilot.variance);
  pilot_stats.push(pilot.mean - s);
  pilot_stats.push(pilot.mean + s);

  const double rel = 0.0005;
  const auto planned = plan_trials(pilot_stats, rel, 0.95);

  expmk::mc::McConfig main_cfg;
  main_cfg.trials = planned;
  main_cfg.seed = 99;
  const auto run = expmk::mc::run_monte_carlo(g, model, main_cfg);
  // The achieved CI half-width should be near (within 2x of) the target.
  EXPECT_LT(run.ci95_half_width, 2.0 * rel * run.mean);
}

TEST(Planning, PilotPlanIsDeterministicAndConsistent) {
  const auto g = expmk::gen::cholesky_dag(3);
  const auto model = expmk::core::calibrate(g, 0.01);
  expmk::mc::McConfig pilot_cfg;
  pilot_cfg.trials = 1500;
  pilot_cfg.seed = 5;
  const auto plan_a =
      expmk::mc::plan_with_pilot(g, model, 0.001, 0.95, pilot_cfg);
  const auto plan_b =
      expmk::mc::plan_with_pilot(g, model, 0.001, 0.95, pilot_cfg);
  // Pilot rides the deterministic CSR engine: identical plans.
  EXPECT_EQ(plan_a.pilot.mean, plan_b.pilot.mean);
  EXPECT_EQ(plan_a.planned_trials, plan_b.planned_trials);
  // And the plan matches planning directly from the pilot's moments.
  EXPECT_EQ(plan_a.planned_trials,
            clt_trials(std::sqrt(plan_a.pilot.variance),
                       0.001 * plan_a.pilot.mean, 0.95));
  // Tighter targets require more trials.
  const auto tighter =
      expmk::mc::plan_with_pilot(g, model, 0.0005, 0.95, pilot_cfg);
  EXPECT_GT(tighter.planned_trials, plan_a.planned_trials);
}

TEST(Planning, HoeffdingJustifiesPaperTrialCount) {
  // Under the 2-state model the makespan lies in [d(G), 2 d(G)]. For the
  // k=12 Cholesky DAG a 0.5% absolute precision at 99% confidence needs
  // fewer than the paper's 300,000 trials — i.e. the paper's ground truth
  // is (conservatively) sound.
  const auto g = expmk::gen::cholesky_dag(12);
  const double d = expmk::graph::critical_path_length(g);
  const auto n = hoeffding_trials(d, 2.0 * d, 0.005 * d, 0.99);
  EXPECT_LT(n, 300'000u * 4u);  // same order of magnitude
  EXPECT_GT(n, 10'000u);
}

}  // namespace
