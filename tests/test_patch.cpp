// tests/test_patch.cpp
//
// The incremental-scenario contract (scenario/scenario.hpp):
//
//     sc.patch(tasks, rates[, weights])  ==  Scenario::compile(patched
//     inputs)  — bit for bit, for every cached plane and every evaluator.
//
// patch() re-derives only what a change invalidates (the patched tasks'
// exp/log constants; the descendant cone of weight patches), so the
// equality here is the whole point: an incremental clone that drifted
// from the fresh compile by even one ulp would poison the serving
// cache's patch-on-miss fast path.

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "exp/evaluator.hpp"
#include "gen/cholesky.hpp"
#include "gen/random_dags.hpp"
#include "prob/rng.hpp"
#include "scenario/content_hash.hpp"
#include "scenario/scenario.hpp"
#include "test_helpers.hpp"

namespace {

using namespace expmk;

const std::vector<std::string> kCheckMethods = {"fo", "so", "sculli",
                                                "corlca", "dodin"};

/// Bitwise scenario equivalence through every observable surface: the
/// cached planes and a spread of analytic evaluations.
void expect_bit_identical(const scenario::Scenario& a,
                          const scenario::Scenario& b) {
  ASSERT_EQ(a.task_count(), b.task_count());
  for (std::size_t i = 0; i < a.task_count(); ++i) {
    EXPECT_EQ(a.rates()[i], b.rates()[i]) << "rates[" << i << "]";
    EXPECT_EQ(a.p_success()[i], b.p_success()[i]) << "p_success[" << i << "]";
    EXPECT_EQ(a.expected_durations()[i], b.expected_durations()[i])
        << "expected_durations[" << i << "]";
    EXPECT_EQ(a.finish_csr()[i], b.finish_csr()[i]) << "finish_csr[" << i << "]";
    EXPECT_EQ(a.weights_csr()[i], b.weights_csr()[i]) << "weights_csr[" << i << "]";
  }
  EXPECT_EQ(a.critical_path(), b.critical_path());
  EXPECT_EQ(scenario::content_hash(a.dag(), a.failure(), a.retry()),
            scenario::content_hash(b.dag(), b.failure(), b.retry()));
  const auto& reg = exp::EvaluatorRegistry::builtin();
  for (const std::string& name : kCheckMethods) {
    const auto ra = reg.find(name)->evaluate(a, {});
    const auto rb = reg.find(name)->evaluate(b, {});
    ASSERT_EQ(ra.supported, rb.supported) << name;
    if (!ra.supported) continue;
    EXPECT_EQ(ra.mean, rb.mean) << name;
    EXPECT_EQ(ra.mean_lo, rb.mean_lo) << name;
    EXPECT_EQ(ra.mean_hi, rb.mean_hi) << name;
  }
}

std::vector<double> base_rates(std::size_t n, std::uint64_t seed) {
  prob::McRng rng(seed, 0);
  std::vector<double> rates(n);
  for (double& r : rates) r = 1e-4 + 5e-3 * rng.uniform_positive();
  return rates;
}

TEST(Patch, RatePatchMatchesFreshCompile) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto g = gen::layered_random(10, 8, 0.3, seed);
    auto rates = base_rates(g.task_count(), seed);
    const auto sc = scenario::Scenario::compile(
        g, scenario::FailureSpec::per_task(rates),
        core::RetryModel::TwoState);

    const std::vector<graph::TaskId> ids = {
        0, static_cast<graph::TaskId>(g.task_count() / 2),
        static_cast<graph::TaskId>(g.task_count() - 1)};
    const std::vector<double> nr = {2e-3, 7e-4, 9e-3};
    const auto patched = sc.patch(ids, nr);

    for (std::size_t j = 0; j < ids.size(); ++j) rates[ids[j]] = nr[j];
    const auto fresh = scenario::Scenario::compile(
        g, scenario::FailureSpec::per_task(rates),
        core::RetryModel::TwoState);
    expect_bit_identical(patched, fresh);
  }
}

TEST(Patch, WeightPatchRepairsTheDescendantCone) {
  const auto g = gen::cholesky_dag(5);
  const auto rates = base_rates(g.task_count(), 77);
  const auto sc = scenario::Scenario::compile(
      g, scenario::FailureSpec::per_task(rates),
      core::RetryModel::TwoState);

  const std::vector<graph::TaskId> ids = {1, 4};
  const std::vector<double> nr = {rates[1], 3e-3};  // one rate also moves
  const std::vector<double> nw = {5.0, 0.25};
  const auto patched = sc.patch(ids, nr, nw);

  graph::Dag g2 = g;
  g2.set_weight(1, 5.0);
  g2.set_weight(4, 0.25);
  auto merged = rates;
  merged[4] = 3e-3;
  const auto fresh = scenario::Scenario::compile(
      g2, scenario::FailureSpec::per_task(merged),
      core::RetryModel::TwoState);
  expect_bit_identical(patched, fresh);
}

TEST(Patch, UniformBasePatchGoesHeterogeneous) {
  const auto g = gen::erdos_dag(60, 0.15, 5);
  const auto sc = scenario::Scenario::calibrated(
      g, 0.01, core::RetryModel::Geometric);
  const std::vector<graph::TaskId> ids = {7};
  const std::vector<double> nr = {4e-3};
  const auto patched = sc.patch(ids, nr);

  std::vector<double> merged(sc.rates().begin(), sc.rates().end());
  merged[7] = 4e-3;
  const auto fresh = scenario::Scenario::compile(
      g, scenario::FailureSpec::per_task(merged),
      core::RetryModel::Geometric);
  expect_bit_identical(patched, fresh);
}

TEST(Patch, ChainedPatchesMatchOneFreshCompile) {
  // patch(patch(sc)) — the serving steady state: every request patches
  // the previous sibling, drift must not accumulate.
  const auto g = gen::layered_random(8, 6, 0.35, 13);
  auto rates = base_rates(g.task_count(), 13);
  auto sc = scenario::Scenario::compile(
      g, scenario::FailureSpec::per_task(rates),
      core::RetryModel::TwoState);
  for (int step = 0; step < 5; ++step) {
    const std::vector<graph::TaskId> ids = {
        static_cast<graph::TaskId>((step * 11) % g.task_count())};
    const std::vector<double> nr = {1e-4 * (step + 2)};
    sc = sc.patch(ids, nr);
    rates[ids[0]] = nr[0];
  }
  const auto fresh = scenario::Scenario::compile(
      g, scenario::FailureSpec::per_task(rates),
      core::RetryModel::TwoState);
  expect_bit_identical(sc, fresh);
}

TEST(Patch, WithFailureMatchesFreshCompile) {
  const auto g = gen::cholesky_dag(4);
  const auto sc = scenario::Scenario::calibrated(
      g, 0.01, core::RetryModel::TwoState);
  const auto rates = base_rates(g.task_count(), 99);
  const auto spec = scenario::FailureSpec::per_task(rates);
  const auto patched = sc.with_failure(spec);
  const auto fresh =
      scenario::Scenario::compile(g, spec, core::RetryModel::TwoState);
  expect_bit_identical(patched, fresh);
}

TEST(Patch, CountersDistinguishPatchFromCompile) {
  const auto g = gen::erdos_dag(40, 0.2, 8);
  const auto compiled_before = scenario::Scenario::compiled_count();
  const auto patched_before = scenario::Scenario::patched_count();
  const auto sc = scenario::Scenario::calibrated(
      g, 0.02, core::RetryModel::TwoState);
  const std::vector<graph::TaskId> ids = {3};
  const std::vector<double> nr = {1e-3};
  const auto p = sc.patch(ids, nr);
  (void)p;
  EXPECT_EQ(scenario::Scenario::compiled_count(), compiled_before + 1);
  EXPECT_EQ(scenario::Scenario::patched_count(), patched_before + 1);
}

TEST(Patch, InvalidInputsThrowLikeCompile) {
  const auto g = gen::erdos_dag(20, 0.2, 4);
  const auto sc = scenario::Scenario::calibrated(
      g, 0.01, core::RetryModel::TwoState);
  const std::vector<graph::TaskId> bad_id = {
      static_cast<graph::TaskId>(g.task_count())};
  const std::vector<double> one = {1e-3};
  EXPECT_THROW((void)sc.patch(bad_id, one), std::exception);
  const std::vector<graph::TaskId> two_ids = {0, 1};
  EXPECT_THROW((void)sc.patch(two_ids, one), std::exception);
  const std::vector<graph::TaskId> ok = {0};
  const std::vector<double> negative = {-1.0};
  EXPECT_THROW((void)sc.patch(ok, negative), std::exception);
}

}  // namespace
