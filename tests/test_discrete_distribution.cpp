// Unit tests for prob/discrete_distribution: construction invariants, the
// convolution/max algebra Dodin relies on, truncation guarantees, and
// moment identities.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "prob/discrete_distribution.hpp"

namespace {

using D = expmk::prob::DiscreteDistribution;
using expmk::prob::Atom;

TEST(DiscreteDistribution, DefaultIsPointMassAtZero) {
  const D d;
  EXPECT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);
  EXPECT_DOUBLE_EQ(d.variance(), 0.0);
}

TEST(DiscreteDistribution, TwoStateMoments) {
  const double a = 0.15, p = 0.99;
  const D d = D::two_state(a, p);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_NEAR(d.mean(), a * (2.0 - p), 1e-15);
  EXPECT_NEAR(d.variance(), a * a * p * (1.0 - p), 1e-15);
  EXPECT_DOUBLE_EQ(d.min(), a);
  EXPECT_DOUBLE_EQ(d.max(), 2.0 * a);
}

TEST(DiscreteDistribution, TwoStateDegenerateEnds) {
  EXPECT_EQ(D::two_state(1.0, 1.0).size(), 1u);
  EXPECT_DOUBLE_EQ(D::two_state(1.0, 1.0).mean(), 1.0);
  EXPECT_DOUBLE_EQ(D::two_state(1.0, 0.0).mean(), 2.0);
  EXPECT_THROW(D::two_state(-1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(D::two_state(1.0, 1.5), std::invalid_argument);
}

TEST(DiscreteDistribution, GeometricReexecMatchesTwoStateWhenCapped) {
  const D g2 = D::geometric_reexec(0.2, 0.9, 2);
  const D ts = D::two_state(0.2, 0.9);
  EXPECT_TRUE(g2.approx_equals(ts, 1e-12)) << g2 << " vs " << ts;
}

TEST(DiscreteDistribution, GeometricReexecTailMassSums) {
  const D g = D::geometric_reexec(1.0, 0.5, 5);
  EXPECT_EQ(g.size(), 5u);
  double total = 0.0;
  for (const Atom& at : g.atoms()) total += at.prob;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // P(k=5 atom) = (1-p)^4 = 0.0625 (tail).
  EXPECT_NEAR(g.atoms().back().prob, 0.0625, 1e-12);
}

TEST(DiscreteDistribution, FromAtomsConsolidatesDuplicates) {
  const D d = D::from_atoms({{1.0, 0.25}, {1.0, 0.25}, {2.0, 0.5}});
  EXPECT_EQ(d.size(), 2u);
  EXPECT_NEAR(d.cdf(1.0), 0.5, 1e-12);
}

TEST(DiscreteDistribution, FromAtomsNormalizes) {
  const D d = D::from_atoms({{0.0, 2.0}, {1.0, 2.0}});
  EXPECT_NEAR(d.mean(), 0.5, 1e-12);
  EXPECT_THROW(D::from_atoms({}), std::invalid_argument);
  EXPECT_THROW(D::from_atoms({{1.0, 0.0}}), std::invalid_argument);
}

TEST(DiscreteDistribution, CdfAndQuantile) {
  const D d = D::from_atoms({{1.0, 0.2}, {2.0, 0.3}, {4.0, 0.5}});
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_NEAR(d.cdf(1.0), 0.2, 1e-12);
  EXPECT_NEAR(d.cdf(3.0), 0.5, 1e-12);
  EXPECT_NEAR(d.cdf(10.0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(d.quantile(0.1), 1.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.51), 4.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 4.0);
  EXPECT_THROW((void)d.quantile(0.0), std::invalid_argument);
}

TEST(DiscreteDistribution, ShiftMovesSupportOnly) {
  const D d = D::two_state(1.0, 0.7).shifted(10.0);
  EXPECT_DOUBLE_EQ(d.min(), 11.0);
  EXPECT_DOUBLE_EQ(d.max(), 12.0);
  EXPECT_NEAR(d.mean(), 10.0 + 1.3, 1e-12);
}

TEST(DiscreteDistribution, ConvolutionOfPointsIsPoint) {
  const D d = D::convolve(D::point(1.5), D::point(2.5));
  EXPECT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d.mean(), 4.0);
}

TEST(DiscreteDistribution, ConvolutionMeansAndVariancesAdd) {
  const D x = D::two_state(1.0, 0.8);
  const D y = D::two_state(0.5, 0.6);
  const D s = D::convolve(x, y);
  EXPECT_NEAR(s.mean(), x.mean() + y.mean(), 1e-12);
  EXPECT_NEAR(s.variance(), x.variance() + y.variance(), 1e-12);
  EXPECT_EQ(s.size(), 4u);
}

TEST(DiscreteDistribution, ConvolutionBruteForceCrossCheck) {
  const D x = D::from_atoms({{0.0, 0.5}, {1.0, 0.3}, {3.0, 0.2}});
  const D y = D::from_atoms({{1.0, 0.4}, {2.0, 0.6}});
  const D s = D::convolve(x, y);
  // P(s = 3) = P(x=1)P(y=2) + P(x=... ) -> pairs summing to 3:
  // (1,2): 0.3*0.6 = 0.18; (x=3,y=0) absent. Plus none else.
  EXPECT_NEAR(s.cdf(3.0) - s.cdf(2.99), 0.18, 1e-12);
  EXPECT_NEAR(s.mean(), x.mean() + y.mean(), 1e-12);
}

TEST(DiscreteDistribution, MaxOfIndependentMatchesCdfProduct) {
  const D x = D::from_atoms({{1.0, 0.5}, {3.0, 0.5}});
  const D y = D::from_atoms({{2.0, 0.5}, {4.0, 0.5}});
  const D m = D::max_of(x, y);
  // P(max <= 2) = P(x<=2) P(y<=2) = 0.5 * 0.5.
  EXPECT_NEAR(m.cdf(2.0), 0.25, 1e-12);
  // P(max <= 3) = P(x<=3) P(y<=3) = 1.0 * 0.5.
  EXPECT_NEAR(m.cdf(3.0), 0.5, 1e-12);
  EXPECT_NEAR(m.cdf(4.0), 1.0, 1e-12);
  // Support atoms: {2: 0.25, 3: 0.25, 4: 0.5}.
  EXPECT_NEAR(m.mean(), 2 * 0.25 + 3 * 0.25 + 4 * 0.5, 1e-12);
}

TEST(DiscreteDistribution, MaxWithDominatingPointIsThatPoint) {
  const D x = D::two_state(1.0, 0.5);  // support {1, 2}
  const D m = D::max_of(x, D::point(5.0));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
}

TEST(DiscreteDistribution, MixtureWeightsAtoms) {
  const D m = D::mixture(D::point(0.0), 0.25, D::point(1.0));
  EXPECT_NEAR(m.mean(), 0.75, 1e-12);
  EXPECT_THROW(D::mixture(D::point(0.0), 1.5, D::point(1.0)),
               std::invalid_argument);
}

TEST(DiscreteDistribution, TruncationPreservesMeanAndMass) {
  // Build a 64-atom distribution by convolving 6 two-state laws.
  D d = D::two_state(1.0, 0.9);
  for (int i = 0; i < 5; ++i) {
    d = D::convolve(d, D::two_state(1.0 + 0.1 * i, 0.8));
  }
  ASSERT_GT(d.size(), 16u);
  const D t = d.truncated(16);
  EXPECT_LE(t.size(), 16u);
  EXPECT_NEAR(t.mean(), d.mean(), 1e-9);
  double total = 0.0;
  for (const Atom& at : t.atoms()) total += at.prob;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Variance can only shrink (atoms merge toward their local mean).
  EXPECT_LE(t.variance(), d.variance() + 1e-12);
}

TEST(DiscreteDistribution, TruncationNoOpWhenWithinBudget) {
  const D d = D::two_state(1.0, 0.5);
  EXPECT_TRUE(d.truncated(10).approx_equals(d));
  EXPECT_TRUE(d.truncated(0).approx_equals(d));  // 0 = unlimited
}

TEST(DiscreteDistribution, CappedOpsRespectBudget) {
  D d = D::two_state(1.0, 0.9);
  for (int i = 0; i < 10; ++i) {
    d = D::convolve(d, D::two_state(0.3 + 0.01 * i, 0.95), 32);
    ASSERT_LE(d.size(), 32u);
  }
  for (int i = 0; i < 10; ++i) {
    d = D::max_of(d, D::two_state(2.0 + 0.2 * i, 0.9), 32);
    ASSERT_LE(d.size(), 32u);
  }
}

}  // namespace
