// Unit tests for the factorization DAG generators: task-count closed
// forms (matching the paper's Figures 1-3), structural dependencies,
// validation, and the a-bar statistics the paper's calibration relies on.

#include <gtest/gtest.h>

#include "gen/cholesky.hpp"
#include "gen/kernels.hpp"
#include "gen/lu.hpp"
#include "gen/qr.hpp"
#include "graph/longest_path.hpp"
#include "graph/reachability.hpp"
#include "graph/validate.hpp"

namespace {

using expmk::gen::cholesky_dag;
using expmk::gen::cholesky_task_count;
using expmk::gen::lu_dag;
using expmk::gen::lu_task_count;
using expmk::gen::qr_dag;
using expmk::gen::qr_task_count;

TEST(Generators, PaperFigureTaskCounts) {
  // Figure 1: Cholesky k=5 has 35 tasks; Figures 2-3: LU/QR k=5 have 55.
  EXPECT_EQ(cholesky_dag(5).task_count(), 35u);
  EXPECT_EQ(lu_dag(5).task_count(), 55u);
  EXPECT_EQ(qr_dag(5).task_count(), 55u);
  // Table I: LU k=20 has 2870 tasks.
  EXPECT_EQ(lu_dag(20).task_count(), 2870u);
}

class GeneratorCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorCountSweep, ClosedFormsMatchConstruction) {
  const int k = GetParam();
  EXPECT_EQ(cholesky_dag(k).task_count(), cholesky_task_count(k));
  EXPECT_EQ(lu_dag(k).task_count(), lu_task_count(k));
  EXPECT_EQ(qr_dag(k).task_count(), qr_task_count(k));
  EXPECT_EQ(lu_task_count(k), qr_task_count(k));
}

TEST_P(GeneratorCountSweep, AllDagsValidate) {
  const int k = GetParam();
  for (const auto& g : {cholesky_dag(k), lu_dag(k), qr_dag(k)}) {
    const auto report = expmk::graph::validate(g);
    EXPECT_TRUE(report.ok()) << "k=" << k;
    EXPECT_EQ(report.entry_count, 1u);   // the step-0 panel task
    EXPECT_EQ(report.component_count, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneratorCountSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 10, 12));

TEST(Generators, CholeskyDependenciesSpotCheck) {
  const auto g = cholesky_dag(4);
  const auto id = [&](const char* name) {
    const auto t = g.find_by_name(name);
    EXPECT_NE(t, expmk::graph::kNoTask) << name;
    return t;
  };
  const auto has_edge = [&](const char* from, const char* to) {
    const auto f = id(from), t = id(to);
    const auto succ = g.successors(f);
    return std::find(succ.begin(), succ.end(), t) != succ.end();
  };
  EXPECT_TRUE(has_edge("POTRF_0", "TRSM_1_0"));
  EXPECT_TRUE(has_edge("TRSM_1_0", "SYRK_1_0"));
  EXPECT_TRUE(has_edge("SYRK_1_0", "POTRF_1"));
  EXPECT_TRUE(has_edge("TRSM_2_0", "GEMM_2_1_0"));
  EXPECT_TRUE(has_edge("TRSM_1_0", "GEMM_2_1_0"));
  EXPECT_TRUE(has_edge("GEMM_2_1_0", "TRSM_2_1"));
  EXPECT_TRUE(has_edge("SYRK_2_0", "SYRK_2_1"));
  EXPECT_FALSE(has_edge("POTRF_0", "POTRF_1"));  // only via SYRK chain
}

TEST(Generators, LuDependenciesSpotCheck) {
  const auto g = lu_dag(4);
  const auto has_edge = [&](const char* from, const char* to) {
    const auto f = g.find_by_name(from), t = g.find_by_name(to);
    EXPECT_NE(f, expmk::graph::kNoTask) << from;
    EXPECT_NE(t, expmk::graph::kNoTask) << to;
    const auto succ = g.successors(f);
    return std::find(succ.begin(), succ.end(), t) != succ.end();
  };
  EXPECT_TRUE(has_edge("GETRF_0", "TRSML_1_0"));
  EXPECT_TRUE(has_edge("GETRF_0", "TRSMU_0_1"));
  EXPECT_TRUE(has_edge("TRSML_1_0", "GEMM_1_1_0"));
  EXPECT_TRUE(has_edge("TRSMU_0_1", "GEMM_1_1_0"));
  EXPECT_TRUE(has_edge("GEMM_1_1_0", "GETRF_1"));
  EXPECT_TRUE(has_edge("GEMM_2_2_0", "GEMM_2_2_1"));
  EXPECT_TRUE(has_edge("GEMM_2_1_0", "TRSML_2_1"));
}

TEST(Generators, QrDependenciesSpotCheck) {
  const auto g = qr_dag(4);
  const auto has_edge = [&](const char* from, const char* to) {
    const auto f = g.find_by_name(from), t = g.find_by_name(to);
    EXPECT_NE(f, expmk::graph::kNoTask) << from;
    EXPECT_NE(t, expmk::graph::kNoTask) << to;
    const auto succ = g.successors(f);
    return std::find(succ.begin(), succ.end(), t) != succ.end();
  };
  EXPECT_TRUE(has_edge("GEQRT_0", "TSQRT_1_0"));
  EXPECT_TRUE(has_edge("TSQRT_1_0", "TSQRT_2_0"));  // panel chain
  EXPECT_TRUE(has_edge("GEQRT_0", "UNMQR_0_1"));
  EXPECT_TRUE(has_edge("UNMQR_0_1", "TSMQR_1_1_0"));
  EXPECT_TRUE(has_edge("TSMQR_1_1_0", "TSMQR_2_1_0"));  // column chain
  EXPECT_TRUE(has_edge("TSQRT_1_0", "TSMQR_1_1_0"));
  EXPECT_TRUE(has_edge("TSMQR_1_1_0", "GEQRT_1"));
}

TEST(Generators, MeanWeightsMatchPaperScale) {
  // The paper reports a-bar = 0.15 s; our default tables were chosen to
  // match that scale for Cholesky/LU, with QR about twice LU.
  const double cholesky_abar = cholesky_dag(12).mean_weight();
  const double lu_abar = lu_dag(12).mean_weight();
  const double qr_abar = qr_dag(12).mean_weight();
  EXPECT_NEAR(cholesky_abar, 0.15, 0.02);
  EXPECT_NEAR(lu_abar, 0.16, 0.02);
  EXPECT_NEAR(qr_abar / lu_abar, 2.0, 0.4);
}

TEST(Generators, QrCostsRoughlyTwiceLu) {
  EXPECT_NEAR(qr_dag(8).total_weight() / lu_dag(8).total_weight(), 2.0, 0.4);
}

TEST(Generators, CustomTimingsPropagate) {
  expmk::gen::CholeskyTimings t;
  t.potrf = 1.0;
  t.trsm = 2.0;
  t.syrk = 3.0;
  t.gemm = 4.0;
  const auto g = cholesky_dag(3, t);
  EXPECT_DOUBLE_EQ(g.weight(g.find_by_name("POTRF_0")), 1.0);
  EXPECT_DOUBLE_EQ(g.weight(g.find_by_name("TRSM_1_0")), 2.0);
  EXPECT_DOUBLE_EQ(g.weight(g.find_by_name("SYRK_2_1")), 3.0);
  EXPECT_DOUBLE_EQ(g.weight(g.find_by_name("GEMM_2_1_0")), 4.0);
}

TEST(Generators, InvalidSizesThrow) {
  EXPECT_THROW((void)cholesky_dag(0), std::invalid_argument);
  EXPECT_THROW((void)lu_dag(-1), std::invalid_argument);
  EXPECT_THROW((void)qr_dag(0), std::invalid_argument);
}

TEST(Generators, CriticalPathGrowsLinearlyInK) {
  // The critical path of these factorizations is Theta(k): sanity-check
  // monotone growth.
  double prev = 0.0;
  for (const int k : {2, 4, 6, 8}) {
    const double d = expmk::graph::critical_path_length(cholesky_dag(k));
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(KernelFamily, ParsesNames) {
  using expmk::gen::KernelFamily;
  using expmk::gen::kernel_family_of;
  EXPECT_EQ(kernel_family_of("POTRF_3"), KernelFamily::POTRF);
  EXPECT_EQ(kernel_family_of("GEMM_4_2_1"), KernelFamily::GEMM);
  EXPECT_EQ(kernel_family_of("TSMQR_1_1_0"), KernelFamily::TSMQR);
  EXPECT_EQ(kernel_family_of("whatever"), KernelFamily::Unknown);
  EXPECT_EQ(expmk::gen::kernel_family_name(KernelFamily::SYRK), "SYRK");
}

}  // namespace
