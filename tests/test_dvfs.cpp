// Tests for core/dvfs: the paper's equation (1) error-rate model and the
// speed sweep built on the first-order estimator.

#include <gtest/gtest.h>

#include <cmath>

#include "core/dvfs.hpp"
#include "core/first_order.hpp"
#include "gen/cholesky.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::core::best_speed_for_makespan;
using expmk::core::DvfsModel;
using expmk::core::dvfs_sweep;

TEST(DvfsModel, Equation1Endpoints) {
  const DvfsModel m{.lambda0 = 1e-5, .sensitivity = 3.0, .smin = 0.5,
                    .smax = 1.0};
  // At full speed: lambda0. At smin: lambda0 * 10^d.
  EXPECT_NEAR(m.lambda(1.0), 1e-5, 1e-18);
  EXPECT_NEAR(m.lambda(0.5), 1e-5 * 1000.0, 1e-12);
  // Halfway in speed: 10^{d/2}.
  EXPECT_NEAR(m.lambda(0.75), 1e-5 * std::pow(10.0, 1.5), 1e-12);
}

TEST(DvfsModel, MonotoneDecreasingInSpeed) {
  const DvfsModel m;
  double prev = m.lambda(m.smin);
  for (int i = 1; i <= 10; ++i) {
    const double s = m.smin + (m.smax - m.smin) * i / 10.0;
    const double cur = m.lambda(s);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(DvfsModel, RejectsBadInputs) {
  DvfsModel m;
  EXPECT_THROW((void)m.lambda(0.4), std::invalid_argument);
  EXPECT_THROW((void)m.lambda(1.1), std::invalid_argument);
  m.smin = 1.0;
  m.smax = 1.0;
  EXPECT_THROW((void)m.lambda(1.0), std::invalid_argument);
  m = DvfsModel{};
  m.lambda0 = -1.0;
  EXPECT_THROW((void)m.lambda(0.9), std::invalid_argument);
}

TEST(DvfsSweep, FailureFreeMakespanScalesInversely) {
  const auto g = expmk::gen::cholesky_dag(4);
  const DvfsModel m{.lambda0 = 1e-9, .sensitivity = 1.0, .smin = 0.5,
                    .smax = 1.0};
  const auto sweep = dvfs_sweep(g, m, {0.5, 1.0});
  ASSERT_EQ(sweep.size(), 2u);
  EXPECT_NEAR(sweep[0].failure_free_makespan,
              2.0 * sweep[1].failure_free_makespan, 1e-9);
}

TEST(DvfsSweep, NegligibleErrorsMakeFullSpeedBest) {
  const auto g = expmk::gen::cholesky_dag(4);
  const DvfsModel m{.lambda0 = 1e-12, .sensitivity = 1.0, .smin = 0.5,
                    .smax = 1.0};
  EXPECT_DOUBLE_EQ(
      best_speed_for_makespan(g, m, {0.5, 0.75, 1.0}), 1.0);
}

TEST(DvfsSweep, SweepAgreesWithDirectFirstOrder) {
  const auto g = expmk::test::diamond(0.4, 0.3, 0.5, 0.2);
  const DvfsModel m{.lambda0 = 0.01, .sensitivity = 2.0, .smin = 0.5,
                    .smax = 1.0};
  const double s = 0.8;
  const auto sweep = dvfs_sweep(g, m, {s});
  // Manual: scale weights by 1/s, use lambda(s).
  expmk::graph::Dag scaled = g;
  for (expmk::graph::TaskId i = 0; i < g.task_count(); ++i) {
    scaled.set_weight(i, g.weight(i) / s);
  }
  const auto fo = expmk::core::first_order(
      scaled, expmk::core::FailureModel{m.lambda(s)});
  EXPECT_NEAR(sweep[0].expected_makespan, fo.expected_makespan(), 1e-12);
  EXPECT_NEAR(sweep[0].lambda, m.lambda(s), 1e-15);
}

TEST(DvfsSweep, HighSensitivityPunishesLowSpeed) {
  // With a steep error-rate curve, the expected makespan at smin must
  // exceed the pure time dilation d(G)/smin — re-executions pile up.
  const auto g = expmk::gen::cholesky_dag(4);
  const DvfsModel m{.lambda0 = 0.05, .sensitivity = 4.0, .smin = 0.5,
                    .smax = 1.0};
  const auto sweep = dvfs_sweep(g, m, {0.5});
  EXPECT_GT(sweep[0].expected_makespan,
            sweep[0].failure_free_makespan * 1.02);
}

TEST(DvfsSweep, EnergyAtFullSpeedIsUnity) {
  const auto g = expmk::gen::cholesky_dag(3);
  const DvfsModel m;
  const auto sweep = dvfs_sweep(g, m, {1.0});
  EXPECT_NEAR(sweep[0].relative_energy, 1.0, 1e-12);
}

TEST(DvfsSweep, SlowerIsCheaperWhenErrorsAreMild) {
  const auto g = expmk::gen::cholesky_dag(3);
  const DvfsModel m{.lambda0 = 1e-8, .sensitivity = 1.0, .smin = 0.5,
                    .smax = 1.0};
  const auto sweep = dvfs_sweep(g, m, {0.5, 1.0});
  // Energy ~ s^2 (per unit work): half speed -> ~quarter energy.
  EXPECT_LT(sweep[0].relative_energy, 0.5 * sweep[1].relative_energy);
}

TEST(DvfsSweep, EmptySpeedListThrows) {
  const auto g = expmk::gen::cholesky_dag(3);
  EXPECT_THROW((void)dvfs_sweep(g, DvfsModel{}, {}), std::invalid_argument);
}

}  // namespace
