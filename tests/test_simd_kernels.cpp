// Cross-backend property suite for the SIMD kernel layer.
//
// The scalar implementations are the executable spec (util/simd.hpp); the
// AVX2 paths must reproduce them BIT FOR BIT — convolve, max_of and
// canonicalize share one stable merge engine and one fixed reduction
// association across backends, and the Philox fill is exact integer
// arithmetic. This suite forces each backend in turn over randomized atom
// soups (including the single-atom, eps-close and near-underflow corners
// from test_dist_kernels) and compares outputs bitwise, pins the Philox
// generator to the published Random123 known-answer vectors and to fixed
// stream vectors, and re-pins the MC engine's threads-1/2/7 bit-identity
// contract on top of the counter-based RNG.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/failure_model.hpp"
#include "gen/lu.hpp"
#include "mc/engine.hpp"
#include "prob/discrete_distribution.hpp"
#include "prob/dist_kernels.hpp"
#include "prob/rng.hpp"
#include "util/simd.hpp"

namespace {

namespace dk = expmk::prob::dist_kernels;
namespace sd = expmk::util::simd;
using expmk::prob::Atom;
using expmk::prob::DiscreteDistribution;

/// RAII: pin a backend for one scope, restore the previous one after.
class BackendGuard {
 public:
  explicit BackendGuard() : previous_(sd::active()) {}
  ~BackendGuard() { sd::force(previous_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  sd::Backend previous_;
};

/// Random raw atom soup (same corner mix as test_dist_kernels): duplicate
/// values, eps-close values, zero and near-underflow probabilities.
std::vector<Atom> random_atoms(expmk::prob::Xoshiro256pp& rng,
                               std::size_t count) {
  std::vector<Atom> atoms;
  atoms.reserve(count);
  double base = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const double roll = rng.uniform();
    if (roll < 0.15 && !atoms.empty()) {
      atoms.push_back({atoms[i / 2].value, rng.uniform()});
    } else if (roll < 0.3 && !atoms.empty()) {
      atoms.push_back({atoms.back().value * (1.0 + 1e-13), rng.uniform()});
    } else {
      base += rng.uniform() * 2.0;
      atoms.push_back({base, rng.uniform()});
    }
    if (roll > 0.9) atoms.back().prob = 0.0;
    if (roll > 0.8 && roll <= 0.9) atoms.back().prob = 1e-300;
  }
  return atoms;
}

DiscreteDistribution random_dist(expmk::prob::Xoshiro256pp& rng,
                                 std::size_t count) {
  std::vector<Atom> raw = random_atoms(rng, count);
  double total = 0.0;
  for (const Atom& at : raw) total += at.prob > 0.0 ? at.prob : 0.0;
  if (total <= 0.0) raw.front().prob = 0.5;
  return DiscreteDistribution::from_atoms(std::move(raw));
}

void expect_bit_identical(std::span<const Atom> a, std::span<const Atom> b,
                          const std::string& where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].value, b[i].value) << where << " value " << i;
    EXPECT_EQ(a[i].prob, b[i].prob) << where << " prob " << i;
  }
}

struct KernelOutputs {
  std::vector<Atom> convolve;
  std::vector<Atom> max_of;
  std::vector<Atom> canonicalize;
};

/// Runs all three dispatched kernels on (x, y, soup) under the CURRENTLY
/// forced backend.
KernelOutputs run_kernels(const DiscreteDistribution& x,
                          const DiscreteDistribution& y,
                          const std::vector<Atom>& soup) {
  KernelOutputs out;
  out.convolve.resize(x.size() * y.size());
  out.convolve.resize(dk::convolve(x.atoms(), y.atoms(), out.convolve));
  out.max_of.resize(x.size() + y.size());
  std::vector<double> support(x.size() + y.size());
  out.max_of.resize(dk::max_of(x.atoms(), y.atoms(), out.max_of, support));
  out.canonicalize = soup;
  out.canonicalize.resize(dk::canonicalize(out.canonicalize));
  return out;
}

TEST(SimdKernels, AtomKernelsBitIdenticalAcrossBackends) {
  BackendGuard guard;
  if (!sd::force(sd::Backend::Avx2)) {
    GTEST_SKIP() << "CPU has no AVX2; scalar is the only backend";
  }
  expmk::prob::Xoshiro256pp rng(2024, 11);
  for (int round = 0; round < 60; ++round) {
    // Sizes sweep through the vector widths: 1 hits the single-atom
    // corner, 2..4 exercise partial lanes, larger sizes the full blocks.
    const auto x = random_dist(rng, 1 + round % 13);
    const auto y = random_dist(rng, 1 + (round * 5) % 11);
    auto soup = random_atoms(rng, 1 + round % 17);
    double total = 0.0;
    for (const Atom& at : soup) total += at.prob > 0.0 ? at.prob : 0.0;
    if (total <= 0.0) soup.front().prob = 0.5;

    ASSERT_TRUE(sd::force(sd::Backend::Avx2));
    const KernelOutputs vec = run_kernels(x, y, soup);
    ASSERT_TRUE(sd::force(sd::Backend::Scalar));
    const KernelOutputs ref = run_kernels(x, y, soup);

    const std::string where = "round " + std::to_string(round);
    expect_bit_identical(vec.convolve, ref.convolve, where + " convolve");
    expect_bit_identical(vec.max_of, ref.max_of, where + " max_of");
    expect_bit_identical(vec.canonicalize, ref.canonicalize,
                         where + " canonicalize");
  }
}

TEST(SimdKernels, CornerSoupsBitIdenticalAcrossBackends) {
  BackendGuard guard;
  if (!sd::force(sd::Backend::Avx2)) {
    GTEST_SKIP() << "CPU has no AVX2; scalar is the only backend";
  }
  const auto single = DiscreteDistribution::point(3.25);
  // Values inside the kValueMergeEps window and near-underflow masses in
  // one soup: the eps-merge screen must take its per-element fallback on
  // exactly the same atoms the scalar spec merges/drops.
  const std::vector<Atom> corner_soup = {
      {1.0, 0.25},          {1.0 * (1.0 + 1e-13), 0.25},
      {1.0000001, 1e-300},  {2.0, 0.0},
      {2.5, 0.5},           {2.5, 1e-308},
      {2.5 * (1.0 + 5e-14), 0.125}};
  const auto corner = DiscreteDistribution::from_atoms(corner_soup);

  for (const auto* x : {&single, &corner}) {
    for (const auto* y : {&single, &corner}) {
      ASSERT_TRUE(sd::force(sd::Backend::Avx2));
      const KernelOutputs vec = run_kernels(*x, *y, corner_soup);
      ASSERT_TRUE(sd::force(sd::Backend::Scalar));
      const KernelOutputs ref = run_kernels(*x, *y, corner_soup);
      expect_bit_identical(vec.convolve, ref.convolve, "corner convolve");
      expect_bit_identical(vec.max_of, ref.max_of, "corner max_of");
      expect_bit_identical(vec.canonicalize, ref.canonicalize,
                           "corner canonicalize");
    }
  }
}

// Published Random123 known-answer vectors for Philox4x32-10: the raw
// block bijection at three (counter, key) points.
TEST(SimdKernels, PhiloxKnownAnswerVectors) {
  using expmk::prob::Philox4x32;
  const auto zero = Philox4x32::block({0, 0, 0, 0}, {0, 0});
  EXPECT_EQ(zero[0], 0x6627e8d5u);
  EXPECT_EQ(zero[1], 0xe169c58du);
  EXPECT_EQ(zero[2], 0xbc57ac4cu);
  EXPECT_EQ(zero[3], 0x9b00dbd8u);

  const auto ones = Philox4x32::block(
      {0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu},
      {0xffffffffu, 0xffffffffu});
  EXPECT_EQ(ones[0], 0x408f276du);
  EXPECT_EQ(ones[1], 0x41c83b0eu);
  EXPECT_EQ(ones[2], 0xa20bc7c6u);
  EXPECT_EQ(ones[3], 0x6d5451fdu);

  const auto pi = Philox4x32::block(
      {0x243f6a88u, 0x85a308d3u, 0x13198a2eu, 0x03707344u},
      {0xa4093822u, 0x299f31d0u});
  EXPECT_EQ(pi[0], 0xd16cfe09u);
  EXPECT_EQ(pi[1], 0x94fdccebu);
  EXPECT_EQ(pi[2], 0x5001e420u);
  EXPECT_EQ(pi[3], 0x24126ea1u);
}

// The buffered generator is blocks in counter order: draw 2k of stream
// (seed, t) packs words (x1:x0) of block k, draw 2k+1 packs (x3:x2) —
// under BOTH backends. This pins the whole chain: splitmix64 key
// derivation, counter layout (trial_lo, trial_hi, block_lo, block_hi),
// buffering, and the AVX2 fill's interleave/pack.
TEST(SimdKernels, PhiloxBufferedStreamMatchesBlocksOnBothBackends) {
  using expmk::prob::Philox4x32;
  BackendGuard guard;
  const std::uint64_t seed = 123;
  const std::uint64_t stream = 42;
  expmk::prob::SplitMix64 sm(seed);
  const std::uint64_t k = sm.next();
  const std::array<std::uint32_t, 2> key = {
      static_cast<std::uint32_t>(k), static_cast<std::uint32_t>(k >> 32)};

  for (const sd::Backend backend :
       {sd::Backend::Scalar, sd::Backend::Avx2}) {
    if (!sd::force(backend)) continue;  // no AVX2 on this CPU
    Philox4x32 rng(seed, stream);
    for (std::uint32_t i = 0; i < 96; ++i) {
      const std::uint64_t got = rng();
      const auto words = Philox4x32::block(
          {static_cast<std::uint32_t>(stream), 0u, i / 2, 0u}, key);
      const std::uint64_t want =
          (i % 2 == 0)
              ? ((static_cast<std::uint64_t>(words[1]) << 32) | words[0])
              : ((static_cast<std::uint64_t>(words[3]) << 32) | words[2]);
      ASSERT_EQ(got, want) << "backend " << sd::name(backend) << " draw "
                           << i;
    }
  }
}

// Fixed stream vectors: the first draws of (seed 0xC0FFEE, stream 7).
// Guards the seeding scheme itself — a change to the key derivation or
// counter layout shows up here even if buffer and block stay consistent.
TEST(SimdKernels, PhiloxReferenceStreamVectors) {
  expmk::prob::Philox4x32 rng(0xC0FFEE, 7);
  const std::uint64_t expected[6] = {
      0x82ce93f9091039b6ull, 0x0b6358cfec8c4a3full, 0x66f66db7cd12738dull,
      0x5e6cc1cc022ccd35ull, 0x419da9f87613cec8ull, 0x10139883e116ed7bull};
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(rng(), expected[i]) << "draw " << i;
  }
}

// The engine's reproducibility contract on top of the counter-based RNG:
// mean and variance are BIT-identical for 1, 2 and 7 threads (exact
// double equality). Same shape as the test_csr pin, re-asserted here so
// the SIMD suite is self-contained when run against either backend.
TEST(SimdKernels, McEngineBitIdenticalAcrossThreadCountsWithPhilox) {
  const auto g = expmk::gen::lu_dag(5);
  const auto model = expmk::core::calibrate(g, 0.01);
  expmk::mc::McConfig cfg;
  cfg.trials = 3000;
  cfg.seed = 0xC0FFEE;
  cfg.threads = 1;
  const auto r1 = expmk::mc::run_monte_carlo(g, model, cfg);
  cfg.threads = 2;
  const auto r2 = expmk::mc::run_monte_carlo(g, model, cfg);
  cfg.threads = 7;
  const auto r7 = expmk::mc::run_monte_carlo(g, model, cfg);
  EXPECT_EQ(r1.mean, r2.mean);
  EXPECT_EQ(r2.mean, r7.mean);
  EXPECT_EQ(r1.variance, r2.variance);
  EXPECT_EQ(r2.variance, r7.variance);
}

}  // namespace
