// Tests for scenario::content_hash, the serving cache key:
//
//  * GOLDEN-PINNED hex values — the hash is version-tagged
//    ("expmk-content-hash-v1") and clients hold keys across server
//    restarts, so a refactor that shifts these values is a wire break,
//    not an implementation detail;
//  * sensitivity: weights, rates, uniform lambda, retry model and graph
//    shape all perturb the hash;
//  * the convenience (Dag) overload equals hashing the canonical
//    serialized bytes, and ignores request formatting by construction;
//  * hex round-trip + strict parse rejection.

#include <gtest/gtest.h>

#include <string>

#include "graph/dag.hpp"
#include "graph/serialize.hpp"
#include "scenario/content_hash.hpp"
#include "scenario/scenario.hpp"

namespace {

using expmk::core::RetryModel;
using expmk::graph::Dag;
using expmk::scenario::content_hash;
using expmk::scenario::content_hash_hex;
using expmk::scenario::FailureSpec;
using expmk::scenario::parse_content_hash_hex;

Dag chain2() {
  Dag g;
  const auto a = g.add_task("a", 1.0);
  const auto b = g.add_task("b", 2.0);
  g.add_edge(a, b);
  return g;
}

TEST(ContentHash, GoldenValues) {
  // Pinned against expmk-content-hash-v1. If one of these changes, the
  // wire protocol broke: every client-held hash and every on-disk STATS
  // correlation goes stale. Bump the version tag instead of re-pinning.
  const Dag g = chain2();
  EXPECT_EQ(content_hash_hex(
                content_hash(g, FailureSpec::uniform(0.5),
                             RetryModel::TwoState)),
            "5ec163a08f6b287e");
  EXPECT_EQ(content_hash_hex(
                content_hash(g, FailureSpec::uniform(0.5),
                             RetryModel::Geometric)),
            "a70a6a47a0be5c0b");
  EXPECT_EQ(content_hash_hex(
                content_hash(g, FailureSpec::per_task({0.25, 0.5}),
                             RetryModel::TwoState)),
            "cbbd7bccf2af36bb");
}

TEST(ContentHash, SensitiveToEveryCellComponent) {
  const Dag g = chain2();
  const auto base =
      content_hash(g, FailureSpec::uniform(0.5), RetryModel::TwoState);

  // Uniform rate.
  EXPECT_NE(base, content_hash(g, FailureSpec::uniform(0.25),
                               RetryModel::TwoState));
  // Retry model.
  EXPECT_NE(base, content_hash(g, FailureSpec::uniform(0.5),
                               RetryModel::Geometric));
  // Uniform vs per-task — even when the per-task vector is constant:
  // the FailureSpec KIND is part of the cell identity.
  EXPECT_NE(base, content_hash(g, FailureSpec::per_task({0.5, 0.5}),
                               RetryModel::TwoState));
  // Task weight.
  Dag heavier;
  const auto a = heavier.add_task("a", 1.0);
  const auto b = heavier.add_task("b", 2.5);
  heavier.add_edge(a, b);
  EXPECT_NE(base, content_hash(heavier, FailureSpec::uniform(0.5),
                               RetryModel::TwoState));
  // Graph shape (same tasks, no edge).
  Dag disconnected;
  disconnected.add_task("a", 1.0);
  disconnected.add_task("b", 2.0);
  EXPECT_NE(base, content_hash(disconnected, FailureSpec::uniform(0.5),
                               RetryModel::TwoState));
}

TEST(ContentHash, DagOverloadHashesCanonicalBytes) {
  const Dag g = chain2();
  const FailureSpec uni = FailureSpec::uniform(0.5);
  EXPECT_EQ(content_hash(g, uni, RetryModel::TwoState),
            content_hash(expmk::graph::to_taskgraph(g), uni,
                         RetryModel::TwoState));

  // Heterogeneous: the canonical bytes are the version-2 serialization
  // carrying the spec's own rates.
  const FailureSpec het = FailureSpec::per_task({0.25, 0.5});
  const std::vector<double> rates = {0.25, 0.5};
  EXPECT_EQ(content_hash(g, het, RetryModel::TwoState),
            content_hash(expmk::graph::to_taskgraph(g, rates), het,
                         RetryModel::TwoState));
}

TEST(ContentHash, HexRoundTripAndStrictParse) {
  for (const std::uint64_t h :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0xDEADBEEF},
        ~std::uint64_t{0}}) {
    const std::string hex = content_hash_hex(h);
    EXPECT_EQ(hex.size(), 16u);
    std::uint64_t parsed = 0;
    ASSERT_TRUE(parse_content_hash_hex(hex, parsed)) << hex;
    EXPECT_EQ(parsed, h);
  }
  std::uint64_t out = 0;
  EXPECT_FALSE(parse_content_hash_hex("", out));
  EXPECT_FALSE(parse_content_hash_hex("123", out));                 // short
  EXPECT_FALSE(parse_content_hash_hex("00112233445566778", out));   // long
  EXPECT_FALSE(parse_content_hash_hex("001122334455667G", out));    // bad
  EXPECT_FALSE(parse_content_hash_hex("001122334455667F", out));    // upper
}

}  // namespace
