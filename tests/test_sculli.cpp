// Tests for normal/sculli: the paper's "Normal" estimator. Chains are
// exact (sums of normals), maxima match Clark, and duration moments match
// the 2-state/geometric algebra.

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact.hpp"
#include "gen/cholesky.hpp"
#include "gen/random_dags.hpp"
#include "graph/longest_path.hpp"
#include "normal/sculli.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::core::exact_two_state;
using expmk::core::FailureModel;
using expmk::core::RetryModel;
using expmk::normal::duration_moments;
using expmk::normal::sculli;

TEST(DurationMoments, TwoStateAlgebra) {
  const FailureModel m{0.1};
  const double a = 2.0;
  const double p = m.p_success(a);
  const auto d = duration_moments(a, m, RetryModel::TwoState);
  EXPECT_NEAR(d.mean, a * (2.0 - p), 1e-15);
  EXPECT_NEAR(d.var, a * a * p * (1.0 - p), 1e-15);
}

TEST(DurationMoments, GeometricAlgebra) {
  const FailureModel m{0.1};
  const double a = 2.0;
  const double p = m.p_success(a);
  const auto d = duration_moments(a, m, RetryModel::Geometric);
  EXPECT_NEAR(d.mean, a / p, 1e-12);
  EXPECT_NEAR(d.var, a * a * (1.0 - p) / (p * p), 1e-12);
}

TEST(DurationMoments, ZeroWeightAndErrors) {
  const FailureModel m{0.1};
  const auto d = duration_moments(0.0, m);
  EXPECT_DOUBLE_EQ(d.mean, 0.0);
  EXPECT_DOUBLE_EQ(d.var, 0.0);
  EXPECT_THROW((void)duration_moments(-1.0, m), std::invalid_argument);
}

TEST(Sculli, ChainIsExact) {
  // A chain has no max: Sculli's sum of moments is the exact expectation.
  const auto g = expmk::gen::uniform_chain(6, 0.4);
  const FailureModel m{0.15};
  const auto r = sculli(g, m);
  EXPECT_NEAR(r.expected_makespan(), exact_two_state(g, m), 1e-12);
  // Variance is the sum of task variances.
  const double p = m.p_success(0.4);
  EXPECT_NEAR(r.makespan.var, 6.0 * 0.4 * 0.4 * p * (1.0 - p), 1e-12);
}

TEST(Sculli, ZeroLambdaIsCriticalPath) {
  const auto g = expmk::gen::cholesky_dag(4);
  const auto r = sculli(g, FailureModel{0.0});
  EXPECT_NEAR(r.expected_makespan(), expmk::graph::critical_path_length(g),
              1e-9);
  EXPECT_NEAR(r.makespan.var, 0.0, 1e-12);
}

TEST(Sculli, TwoIndependentTasksMatchClarkDirectly) {
  expmk::graph::Dag g;
  g.add_task(1.0);
  g.add_task(0.9);
  const FailureModel m{0.3};
  const auto x = duration_moments(1.0, m);
  const auto y = duration_moments(0.9, m);
  const auto fold = expmk::prob::clark_max(x, y, 0.0);
  const auto r = sculli(g, m);
  EXPECT_NEAR(r.expected_makespan(), fold.moments.mean, 1e-12);
  EXPECT_NEAR(r.makespan.var, fold.moments.var, 1e-12);
}

TEST(Sculli, EstimateAboveCriticalPath) {
  // E[max] >= max of means >= critical path built on mean durations >=
  // d(G): Sculli should never fall below the failure-free makespan.
  const auto g = expmk::gen::erdos_dag(30, 0.15, 3);
  const FailureModel m{0.05};
  EXPECT_GE(sculli(g, m).expected_makespan(),
            expmk::graph::critical_path_length(g) - 1e-9);
}

TEST(Sculli, ReasonablyCloseToExactOnSmallGraphs) {
  // Sculli is an approximation; on small graphs with modest lambda it
  // should land within a few percent of exact.
  const auto g = expmk::gen::erdos_dag(12, 0.3, 17);
  const FailureModel m{0.05};
  const double exact = exact_two_state(g, m);
  EXPECT_NEAR(sculli(g, m).expected_makespan(), exact, 0.05 * exact);
}

TEST(Sculli, GeometricModeShiftsUpward) {
  const auto g = expmk::gen::cholesky_dag(4);
  const FailureModel m{0.5};
  EXPECT_GT(sculli(g, m, RetryModel::Geometric).expected_makespan(),
            sculli(g, m, RetryModel::TwoState).expected_makespan());
}

TEST(Sculli, EmptyGraphThrows) {
  EXPECT_THROW((void)sculli(expmk::graph::Dag{}, FailureModel{0.1}),
               std::invalid_argument);
}

}  // namespace
