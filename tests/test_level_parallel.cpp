// tests/test_level_parallel.cpp
//
// Bit-identity of the level-parallel analytic paths (exp/level_parallel.*):
// every analytic evaluator that fans one level across the shared pool —
// fo, so, bounds.lower, bounds.upper, sculli, corlca, clark — must return
// the EXACT same bits at threads = 1, 2 and 7 as the serial kernel.
// level_parallel_min_tasks = 0 forces the parallel paths even on small
// fixtures, so this suite exercises them regardless of the production
// 4096-task activation threshold.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/evaluator.hpp"
#include "gen/cholesky.hpp"
#include "gen/random_dags.hpp"
#include "scenario/scenario.hpp"
#include "test_helpers.hpp"

namespace {

using namespace expmk;

const std::vector<std::string> kLevelParallelMethods = {
    "fo", "so", "bounds.lower", "bounds.upper", "sculli", "corlca", "clark"};

void expect_thread_count_identity(const scenario::Scenario& sc) {
  const auto& reg = exp::EvaluatorRegistry::builtin();
  for (const std::string& name : kLevelParallelMethods) {
    const exp::Evaluator* e = reg.find(name);
    ASSERT_NE(e, nullptr) << name;

    exp::EvalOptions serial;
    serial.threads = 1;  // the serial allocation-free kernels
    const auto base = e->evaluate(sc, serial);
    ASSERT_TRUE(base.supported) << name << ": " << base.note;

    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{7}}) {
      exp::EvalOptions par;
      par.threads = threads;
      par.level_parallel_min_tasks = 0;  // force the parallel paths
      const auto r = e->evaluate(sc, par);
      ASSERT_TRUE(r.supported) << name << ": " << r.note;
      // Bitwise, not near: the parallel fold order is specified to match
      // the serial one exactly (DESIGN.md, level-parallel contract).
      EXPECT_EQ(base.mean, r.mean) << name << " threads=" << threads;
      EXPECT_EQ(base.mean_lo, r.mean_lo) << name << " threads=" << threads;
      EXPECT_EQ(base.mean_hi, r.mean_hi) << name << " threads=" << threads;
      EXPECT_EQ(base.std_error, r.std_error)
          << name << " threads=" << threads;
    }
  }
}

TEST(LevelParallel, BitIdenticalOnCholesky) {
  const auto g = gen::cholesky_dag(6);
  expect_thread_count_identity(
      scenario::Scenario::calibrated(g, 0.01, core::RetryModel::TwoState));
}

TEST(LevelParallel, BitIdenticalOnWideLayeredDag) {
  // Wide levels are the case the chunked fan-out actually splits; a
  // narrow chain would run every level on one worker.
  const auto g = gen::layered_random(25, 20, 0.25, 99);
  expect_thread_count_identity(
      scenario::Scenario::calibrated(g, 0.005, core::RetryModel::TwoState));
}

TEST(LevelParallel, BitIdenticalWithHeterogeneousRates) {
  const auto g = gen::erdos_dag(120, 0.1, 321);
  std::vector<double> rates(g.task_count());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    rates[i] = 1e-4 * static_cast<double>(1 + (i * 37) % 50);
  }
  expect_thread_count_identity(scenario::Scenario::compile(
      g, scenario::FailureSpec::per_task(rates),
      core::RetryModel::TwoState));
}

TEST(LevelParallel, ForcedParallelMatchesDefaultThreshold) {
  // Below the activation threshold the default options run serial; the
  // forced-parallel run must be indistinguishable — proving the
  // threshold is a pure wall-clock knob, never an accuracy one.
  const auto g = gen::cholesky_dag(5);
  const auto sc =
      scenario::Scenario::calibrated(g, 0.02, core::RetryModel::TwoState);
  const auto& reg = exp::EvaluatorRegistry::builtin();
  for (const std::string& name : kLevelParallelMethods) {
    const exp::Evaluator* e = reg.find(name);
    const auto def = e->evaluate(sc, exp::EvalOptions{});
    exp::EvalOptions forced;
    forced.level_parallel_min_tasks = 0;
    forced.threads = 7;
    const auto par = e->evaluate(sc, forced);
    ASSERT_TRUE(def.supported) << name;
    EXPECT_EQ(def.mean, par.mean) << name;
  }
}

}  // namespace
