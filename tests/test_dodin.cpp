// Tests for spgraph/dodin: exactness on SP inputs, duplication behavior on
// non-SP inputs, bias direction, and scalability to the paper's DAGs.

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact.hpp"
#include "core/failure_model.hpp"
#include "gen/cholesky.hpp"
#include "gen/lu.hpp"
#include "gen/random_dags.hpp"
#include "spgraph/dodin.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::core::exact_two_state;
using expmk::core::FailureModel;
using expmk::sp::dodin_two_state;
using expmk::sp::DodinOptions;

TEST(Dodin, ExactOnChain) {
  const auto g = expmk::gen::uniform_chain(5, 0.4);
  const FailureModel m{0.2};
  const auto r = dodin_two_state(g, m, {.max_atoms = 0});
  EXPECT_EQ(r.duplications, 0u);
  EXPECT_NEAR(r.expected_makespan(), exact_two_state(g, m), 1e-12);
}

TEST(Dodin, ExactOnDiamond) {
  const auto g = expmk::test::diamond(0.4, 0.3, 0.5, 0.2);
  const FailureModel m{0.25};
  const auto r = dodin_two_state(g, m, {.max_atoms = 0});
  EXPECT_EQ(r.duplications, 0u);
  EXPECT_NEAR(r.expected_makespan(), exact_two_state(g, m), 1e-12);
}

// Property: on random SP graphs Dodin needs no duplication and is exact.
class DodinSpSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DodinSpSweep, NoDuplicationAndExactOnSpGraphs) {
  const auto g = expmk::gen::random_series_parallel(12, GetParam());
  const FailureModel m{0.1};
  const auto r = dodin_two_state(g, m, {.max_atoms = 0});
  EXPECT_EQ(r.duplications, 0u);
  EXPECT_NEAR(r.expected_makespan(), exact_two_state(g, m), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DodinSpSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(Dodin, NGraphNeedsDuplicationAndOverestimates) {
  // On the N-graph, Dodin duplicates once. Path lengths are increasing
  // functions of independent task durations, hence *associated* random
  // variables (Esary-Proschan-Walkup); replacing a shared task by
  // independent copies therefore yields a stochastically larger maximum,
  // so Dodin's mean is an over-estimate. (See EXPERIMENTS.md for the
  // discussion of the paper's sign on Table I.)
  const auto g = expmk::test::n_graph(0.4, 0.5, 0.45, 0.55);
  const FailureModel m{0.4};  // large rate to make the bias visible
  const auto r = dodin_two_state(g, m, {.max_atoms = 0});
  EXPECT_GE(r.duplications, 1u);
  EXPECT_GE(r.expected_makespan(), exact_two_state(g, m) - 1e-12);
}

TEST(Dodin, WheatstoneBridgeTerminates) {
  const auto g = expmk::gen::wheatstone_bridge();
  const auto r = dodin_two_state(g, FailureModel{0.2}, {.max_atoms = 0});
  EXPECT_GE(r.duplications, 1u);
  EXPECT_GT(r.expected_makespan(), 0.0);
}

// Random non-SP graphs: Dodin terminates and stays at or above the exact
// value (association argument above; truncation noise gets 0.1% slack).
class DodinRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DodinRandomSweep, TerminatesAndUpperBounds) {
  const auto g = expmk::gen::erdos_dag(12, 0.25, GetParam());
  const FailureModel m{0.3};
  const auto r = dodin_two_state(g, m, {.max_atoms = 128});
  const double exact = exact_two_state(g, m);
  EXPECT_GE(r.expected_makespan(), exact * (1.0 - 1e-3));
  EXPECT_GT(r.expected_makespan(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DodinRandomSweep,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

TEST(Dodin, AtomBudgetKeepsMeanStable) {
  const auto g = expmk::gen::cholesky_dag(4);
  const FailureModel m = expmk::core::calibrate(g, 0.01);
  const double loose =
      dodin_two_state(g, m, {.max_atoms = 512}).expected_makespan();
  const double tight =
      dodin_two_state(g, m, {.max_atoms = 32}).expected_makespan();
  // Truncation is mean-preserving per merge; downstream max() operations
  // re-introduce small deviations only.
  EXPECT_NEAR(loose, tight, 0.01 * loose);
}

TEST(Dodin, RunsOnPaperScaleCholesky) {
  const auto g = expmk::gen::cholesky_dag(6);
  const FailureModel m = expmk::core::calibrate(g, 0.001);
  const auto r = dodin_two_state(g, m, {.max_atoms = 64});
  EXPECT_GT(r.duplications, 0u);
  // Sanity: the estimate lands in the same ballpark as the failure-free
  // critical path (silent errors at pfail = 1e-3 add well under 10%).
  const double d = expmk::graph::critical_path_length(g);
  EXPECT_GT(r.expected_makespan(), 0.5 * d);
  EXPECT_LT(r.expected_makespan(), 2.0 * d);
}

TEST(Dodin, DuplicationBudgetEnforced) {
  const auto g = expmk::gen::erdos_dag(20, 0.3, 5);
  DodinOptions opts;
  opts.max_atoms = 32;
  opts.max_duplications = 1;
  EXPECT_THROW((void)dodin_two_state(g, FailureModel{0.1}, opts),
               std::runtime_error);
}

}  // namespace
