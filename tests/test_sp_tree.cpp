// tests/test_sp_tree.cpp
//
// The hierarchical-evaluation contract (graph/sp_tree.hpp + exp/hier.*):
//
//  * sp_collapse structure: series-parallel graphs collapse to a single
//    quotient node, the minimal non-SP shapes stay irreducible, and the
//    module forest partitions the original task set.
//  * Quotient == flat oracle: on SP DAGs the hierarchical evaluators
//    reproduce the flat exact/sp answers; on general DAGs sp.hier bails
//    honestly and dodin.hier keeps its documented tolerance.
//  * Truncation envelope: a capped hierarchical build still brackets the
//    exact mean with its certified [lo, hi].
//  * Memoization: structurally identical modules are built once; a
//    repeat evaluation is served entirely from the process-wide cache.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "exp/evaluator.hpp"
#include "exp/hier.hpp"
#include "gen/cholesky.hpp"
#include "gen/random_dags.hpp"
#include "graph/sp_tree.hpp"
#include "scenario/scenario.hpp"
#include "test_helpers.hpp"

namespace {

using namespace expmk;

scenario::Scenario compile(const graph::Dag& g, double pfail) {
  return scenario::Scenario::calibrated(g, pfail,
                                        core::RetryModel::TwoState);
}

/// Fork-join of `k` identical chains of `len` tasks — every chain is the
/// same composite module, the memoization sweet spot.
graph::Dag fork_join(int k, int len, double w = 2.0) {
  graph::Dag g;
  const auto src = g.add_task("src", 1.0);
  const auto sink = g.add_task("sink", 1.0);
  for (int c = 0; c < k; ++c) {
    graph::TaskId prev = src;
    for (int i = 0; i < len; ++i) {
      const auto t = g.add_task(w);
      g.add_edge(prev, t);
      prev = t;
    }
    g.add_edge(prev, sink);
  }
  return g;
}

TEST(SpTree, DiamondCollapsesToOneModule) {
  const auto d = graph::sp_collapse(test::diamond());
  EXPECT_EQ(d.quotient.task_count(), 1u);
  EXPECT_EQ(d.collapsed_tasks, 3u);
  // Weight conservation: the quotient node carries the module's sum.
  EXPECT_DOUBLE_EQ(d.quotient.weight(0), 1.0 + 2.0 + 3.0 + 1.0);
}

TEST(SpTree, ChainCollapsesToOneModule) {
  graph::Dag g;
  graph::TaskId prev = g.add_task(1.0);
  for (int i = 1; i < 6; ++i) {
    const auto t = g.add_task(1.0 + i);
    g.add_edge(prev, t);
    prev = t;
  }
  const auto d = graph::sp_collapse(g);
  EXPECT_EQ(d.quotient.task_count(), 1u);
  EXPECT_EQ(d.collapsed_tasks, 5u);
}

TEST(SpTree, NGraphIsIrreducible) {
  // A->C, A->D, B->D: no series pair, no parallel twins — the minimal
  // shape where hierarchical evaluation must not pretend to collapse.
  const auto d = graph::sp_collapse(test::n_graph());
  EXPECT_EQ(d.quotient.task_count(), 4u);
  EXPECT_EQ(d.collapsed_tasks, 0u);
}

TEST(SpTree, WheatstoneBridgeCoreStaysIrreducible) {
  // s -> {a, b}; a -> m; a -> ta; b -> tb; m -> tb; {ta, tb} -> t.
  // The crossing arc a->m->tb interferes with every contraction below
  // the top level, so only outer series/parallel steps may fire; the
  // bridge core must survive in the quotient.
  graph::Dag g;
  const auto s = g.add_task("s", 1.0);
  const auto a = g.add_task("a", 2.0);
  const auto b = g.add_task("b", 3.0);
  const auto m = g.add_task("m", 1.5);
  const auto ta = g.add_task("ta", 2.5);
  const auto tb = g.add_task("tb", 1.0);
  const auto t = g.add_task("t", 0.5);
  g.add_edge(s, a);
  g.add_edge(s, b);
  g.add_edge(a, m);
  g.add_edge(a, ta);
  g.add_edge(b, tb);
  g.add_edge(m, tb);
  g.add_edge(ta, t);
  g.add_edge(tb, t);
  const auto d = graph::sp_collapse(g);
  EXPECT_GT(d.quotient.task_count(), 1u);
}

TEST(SpTree, ModuleTasksPartitionTheDag) {
  const auto g = gen::cholesky_dag(5);
  const auto d = graph::sp_collapse(g);
  std::vector<graph::TaskId> seen;
  for (const std::uint32_t m : d.quotient_module) {
    const auto tasks = graph::module_tasks(d, m);
    seen.insert(seen.end(), tasks.begin(), tasks.end());
  }
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), g.task_count());
  for (graph::TaskId i = 0; i < g.task_count(); ++i) EXPECT_EQ(seen[i], i);
  EXPECT_EQ(d.collapsed_tasks, g.task_count() - d.quotient.task_count());
}

// ---- quotient == flat oracles ---------------------------------------

TEST(SpTree, HierMatchesFlatExactOnSpDags) {
  const auto& reg = exp::EvaluatorRegistry::builtin();
  const exp::Evaluator* hier = reg.find("sp.hier");
  const exp::Evaluator* flat_sp = reg.find("sp");
  const exp::Evaluator* exact = reg.find("exact");
  ASSERT_NE(hier, nullptr);
  ASSERT_NE(flat_sp, nullptr);
  ASSERT_NE(exact, nullptr);

  std::vector<graph::Dag> sp_dags;
  sp_dags.push_back(test::diamond());
  sp_dags.push_back(test::diamond(0.5, 4.0, 4.0, 2.0));
  sp_dags.push_back(fork_join(3, 2));
  {
    graph::Dag chain;
    graph::TaskId prev = chain.add_task(1.0);
    for (int i = 1; i < 5; ++i) {
      const auto t = chain.add_task(0.5 * i + 1.0);
      chain.add_edge(prev, t);
      prev = t;
    }
    sp_dags.push_back(std::move(chain));
  }

  for (const double pfail : {0.01, 0.2}) {
    for (const auto& g : sp_dags) {
      const auto sc = compile(g, pfail);
      const exp::EvalOptions opt;
      const auto rh = hier->evaluate(sc, opt);
      const auto rf = flat_sp->evaluate(sc, opt);
      const auto re = exact->evaluate(sc, opt);
      ASSERT_TRUE(rh.supported) << rh.note;
      ASSERT_TRUE(rf.supported) << rf.note;
      ASSERT_TRUE(re.supported) << re.note;
      // Same exact computation through a different association order:
      // equal up to FP reassociation, far inside the documented 1e-9.
      EXPECT_TRUE(test::near(rh.mean, rf.mean, 1e-9))
          << rh.mean << " vs sp " << rf.mean;
      EXPECT_TRUE(test::near(rh.mean, re.mean, 1e-9))
          << rh.mean << " vs exact " << re.mean;
    }
  }
}

TEST(SpTree, HierBailsHonestlyOnIrreducibleQuotient) {
  const auto sc = compile(test::n_graph(), 0.05);
  const auto r =
      exp::EvaluatorRegistry::builtin().find("sp.hier")->evaluate(sc, {});
  EXPECT_FALSE(r.supported);
  EXPECT_NE(r.note.find("series-parallel"), std::string::npos) << r.note;
}

TEST(SpTree, DodinHierKeepsToleranceOnGeneralDags) {
  const auto& reg = exp::EvaluatorRegistry::builtin();
  for (const std::uint64_t seed : {11u, 42u}) {
    const auto g = gen::layered_random(4, 3, 0.5, seed);
    const auto sc = compile(g, 0.05);
    const auto re = reg.find("exact")->evaluate(sc, {});
    const auto rd = reg.find("dodin.hier")->evaluate(sc, {});
    ASSERT_TRUE(re.supported) << re.note;
    ASSERT_TRUE(rd.supported) << rd.note;
    // dodin.hier inherits Dodin's accuracy on the quotient. The 5%
    // registry contract is pinned on the sweep's consistency fixtures
    // (test_sweep.cpp); dense random layered DAGs push the duplication
    // bias a little past it, so this property check gates at 10%.
    EXPECT_TRUE(test::near(rd.mean, re.mean, 0.10))
        << rd.mean << " vs exact " << re.mean;
  }
}

TEST(SpTree, McHierAgreesWithExactWithinSigma) {
  const auto sc = compile(test::diamond(), 0.1);
  const auto re =
      exp::EvaluatorRegistry::builtin().find("exact")->evaluate(sc, {});
  const auto r = exp::hier::evaluate_mc_hier(sc, 200'000, 7);
  ASSERT_TRUE(re.supported);
  EXPECT_GT(r.std_error, 0.0);
  EXPECT_LT(std::fabs(r.mean - re.mean), 5.0 * r.std_error);
  // Bit-identity across thread counts (same chunk-order fold).
  const auto r2 = exp::hier::evaluate_mc_hier(sc, 200'000, 7, 2);
  const auto r7 = exp::hier::evaluate_mc_hier(sc, 200'000, 7, 7);
  EXPECT_EQ(r.mean, r2.mean);
  EXPECT_EQ(r.mean, r7.mean);
  EXPECT_EQ(r.std_error, r7.std_error);
}

TEST(SpTree, CappedBuildBracketsTheExactMean) {
  // Long chain at a high rate: the exact convolution support grows
  // multiplicatively, so a small cap must fire — and the certified
  // envelope must still contain the uncapped answer.
  graph::Dag g;
  graph::TaskId prev = g.add_task(1.0);
  for (int i = 1; i < 12; ++i) {
    const auto t = g.add_task(1.0 + 0.3 * i);
    g.add_edge(prev, t);
    prev = t;
  }
  const auto sc = compile(g, 0.3);
  const auto exactr = exp::hier::evaluate_sp_hier(sc, 0);
  ASSERT_TRUE(exactr.is_series_parallel);
  const auto capped = exp::hier::evaluate_sp_hier(sc, 8);
  ASSERT_TRUE(capped.is_series_parallel);
  EXPECT_GT(capped.truncation.events, 0u);
  EXPECT_LE(capped.mean - capped.truncation.down, exactr.mean + 1e-12);
  EXPECT_GE(capped.mean + capped.truncation.up, exactr.mean - 1e-12);
}

// ---- memoization ----------------------------------------------------

TEST(SpTree, IdenticalModulesAreBuiltOnce) {
  exp::hier::memo_clear();
  const auto sc = compile(fork_join(8, 4), 0.05);

  const auto first = exp::hier::build_module_distributions(sc, 0);
  // 8 structurally identical chains: one is built, seven are served from
  // the cache (plus whatever outer composites repeat).
  EXPECT_GE(first.stats.memo_hits, 7u);
  EXPECT_GE(first.stats.memo_misses, 1u);

  const auto again = exp::hier::build_module_distributions(sc, 0);
  EXPECT_EQ(again.stats.memo_misses, 0u);
  EXPECT_GE(again.stats.memo_hits, 1u);

  const auto ms = exp::hier::memo_stats();
  EXPECT_EQ(ms.misses, first.stats.memo_misses);
  EXPECT_EQ(ms.hits, first.stats.memo_hits + again.stats.memo_hits);
  EXPECT_GT(ms.entries, 0u);

  // Served-from-cache must be byte-for-byte the same law.
  ASSERT_EQ(first.by_quotient_node.size(), again.by_quotient_node.size());
  for (std::size_t i = 0; i < first.by_quotient_node.size(); ++i) {
    EXPECT_EQ(first.by_quotient_node[i].mean(),
              again.by_quotient_node[i].mean());
  }
  exp::hier::memo_clear();
  EXPECT_EQ(exp::hier::memo_stats().entries, 0u);
}

TEST(SpTree, MemoKeySeparatesRatesWeightsAndBudget) {
  exp::hier::memo_clear();
  const auto g = fork_join(2, 3);
  const auto a = exp::hier::evaluate_sp_hier(compile(g, 0.05), 0);
  const auto b = exp::hier::evaluate_sp_hier(compile(g, 0.20), 0);
  ASSERT_TRUE(a.is_series_parallel);
  ASSERT_TRUE(b.is_series_parallel);
  // Different rates -> different modules -> different answers; a collision
  // would silently reuse the pfail=0.05 laws.
  EXPECT_NE(a.mean, b.mean);
  graph::Dag g2 = fork_join(2, 3);
  g2.set_weight(2, 9.0);
  const auto c = exp::hier::evaluate_sp_hier(compile(g2, 0.05), 0);
  EXPECT_NE(a.mean, c.mean);
  exp::hier::memo_clear();
}

}  // namespace
