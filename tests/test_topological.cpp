// Unit tests for graph/topological: Kahn ordering, cycle detection, and
// the property that every generator family yields valid orders.

#include <gtest/gtest.h>

#include "gen/cholesky.hpp"
#include "gen/lu.hpp"
#include "gen/qr.hpp"
#include "gen/random_dags.hpp"
#include "graph/topological.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::graph::Dag;
using expmk::graph::is_topological_order;
using expmk::graph::topological_order;
using expmk::graph::try_topological_order;

TEST(Topological, DiamondOrderRespectsEdges) {
  const auto g = expmk::test::diamond();
  const auto order = topological_order(g);
  EXPECT_TRUE(is_topological_order(g, order));
  EXPECT_EQ(order.front(), g.find_by_name("A"));
  EXPECT_EQ(order.back(), g.find_by_name("D"));
}

TEST(Topological, DetectsCycle) {
  Dag g;
  const auto a = g.add_task(1.0);
  const auto b = g.add_task(1.0);
  const auto c = g.add_task(1.0);
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.add_edge(c, a);
  EXPECT_FALSE(try_topological_order(g).has_value());
  EXPECT_THROW((void)topological_order(g), std::invalid_argument);
}

TEST(Topological, SingleTaskAndEmptyGraph) {
  Dag g;
  EXPECT_TRUE(try_topological_order(g).has_value());  // empty is fine
  g.add_task(1.0);
  const auto order = topological_order(g);
  EXPECT_EQ(order.size(), 1u);
}

TEST(Topological, RanksInvertOrder) {
  const auto g = expmk::test::diamond();
  const auto order = topological_order(g);
  const auto rank = expmk::graph::ranks_of(order);
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(rank[order[i]], i);
  }
}

TEST(Topological, IsTopologicalOrderRejectsBadInputs) {
  const auto g = expmk::test::diamond();
  auto order = topological_order(g);
  std::swap(order.front(), order.back());  // breaks A before D
  EXPECT_FALSE(is_topological_order(g, order));
  EXPECT_FALSE(is_topological_order(g, {}));                // wrong size
  EXPECT_FALSE(is_topological_order(g, {0u, 0u, 1u, 2u}));  // duplicate
}

// Property sweep: every generator family yields DAGs whose computed order
// validates.
class TopoGeneratorSweep : public ::testing::TestWithParam<int> {};

TEST_P(TopoGeneratorSweep, FactorizationDagsHaveValidOrders) {
  const int k = GetParam();
  for (const auto& g :
       {expmk::gen::cholesky_dag(k), expmk::gen::lu_dag(k),
        expmk::gen::qr_dag(k)}) {
    const auto order = topological_order(g);
    EXPECT_TRUE(is_topological_order(g, order));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TopoGeneratorSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

class TopoRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopoRandomSweep, RandomDagsHaveValidOrders) {
  const std::uint64_t seed = GetParam();
  const auto layered = expmk::gen::layered_random(6, 5, 0.3, seed);
  EXPECT_TRUE(is_topological_order(layered, topological_order(layered)));
  const auto erdos = expmk::gen::erdos_dag(40, 0.1, seed);
  EXPECT_TRUE(is_topological_order(erdos, topological_order(erdos)));
  const auto sp = expmk::gen::random_series_parallel(30, seed);
  EXPECT_TRUE(is_topological_order(sp, topological_order(sp)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopoRandomSweep,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

}  // namespace
