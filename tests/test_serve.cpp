// Tests for the serving engine (serve/engine.hpp) and the TCP shell:
//
//  * the determinism contract: responses are BIT-identical for a fixed
//    (seed, connection index) across batch sizes {1, 8, 64} and worker
//    counts {1, 2, 7} — batching is a scheduling choice, never a
//    statistical one — and the reported derived_seed replays the result
//    standalone;
//  * the warm-cache acceptance pin: repeated inline requests compile one
//    Scenario per distinct cell (Scenario::compiled_count());
//  * planner-driven shedding: a method the cost model predicts UNDER the
//    level's deadline passes through (a cheap exact stays exact under
//    pressure), one predicted over it is substituted by the planner's
//    most-accurate-under-deadline pick, mc trial counts are capped — and
//    the substitution is REPORTED (method_requested / method / degraded /
//    shed_level); the hard queue limit rejects with a typed "overloaded"
//    error;
//  * typed protocol errors for malformed JSON, malformed graphs, unknown
//    methods and unknown hashes; STATS and shutdown frames;
//  * a socket round-trip through TcpServer, including the poisoned-frame
//    hangup.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "exp/evaluator.hpp"
#include "exp/seeds.hpp"
#include "gen/lu.hpp"
#include "graph/serialize.hpp"
#include "scenario/scenario.hpp"
#include "serve/engine.hpp"
#include "serve/server.hpp"
#include "util/framing.hpp"
#include "util/json.hpp"
#include "util/json_writer.hpp"

namespace {

using expmk::serve::EngineConfig;
using expmk::serve::ServeEngine;
namespace json = expmk::util::json;

const char* const kChain =
    "expmk-taskgraph 1\n"
    "task a 1\n"
    "task b 2\n"
    "task c 3\n"
    "edge a b\n"
    "edge b c\n";

std::string eval_payload(const std::string& graph, const char* method,
                         std::uint64_t seed, std::uint64_t trials,
                         std::uint64_t id) {
  expmk::util::JsonWriter w;
  w.field("v", 1);
  w.field("type", "eval");
  w.field("id", id);
  w.field("graph", graph);
  w.field("pfail", 0.01);
  w.field("method", method);
  w.field("seed", seed);
  w.field("trials", trials);
  return w.str();
}

/// Submits every payload on ONE connection (preserving the per-connection
/// seed chain) and returns the responses index-aligned.
std::vector<std::string> run_requests(
    ServeEngine& engine, const std::vector<std::string>& payloads) {
  ServeEngine::Connection conn;
  std::vector<std::string> responses(payloads.size());
  std::atomic<std::size_t> done{0};
  std::mutex m;
  std::condition_variable cv;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    engine.handle(payloads[i], conn, [&, i](std::string&& response) {
      responses[i] = std::move(response);
      // Count under the lock: the waiter must not be able to observe the
      // final count (and destroy cv) while this thread is still inside
      // notify_one.
      const std::lock_guard<std::mutex> lock(m);
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          payloads.size()) {
        cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] {
    return done.load(std::memory_order_acquire) == payloads.size();
  });
  return responses;
}

double field_double(const json::Value& v, const char* key) {
  const json::Value* f = v.find(key);
  EXPECT_NE(f, nullptr) << key;
  return f != nullptr ? f->as_double() : 0.0;
}

std::uint64_t field_u64(const json::Value& v, const char* key) {
  const json::Value* f = v.find(key);
  EXPECT_NE(f, nullptr) << key;
  return f != nullptr ? f->as_u64() : 0;
}

std::string field_string(const json::Value& v, const char* key) {
  const json::Value* f = v.find(key);
  EXPECT_NE(f, nullptr) << key;
  return f != nullptr ? f->as_string() : "";
}

TEST(ServeEngineTest, BitIdenticalAcrossBatchSizesAndWorkerCounts) {
  const std::string graph =
      expmk::graph::to_taskgraph(expmk::gen::lu_dag(4));
  constexpr std::size_t kRequests = 12;
  std::vector<std::string> payloads;
  payloads.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    // Stochastic method, one shared seed base: the per-connection chain
    // must decorrelate the streams deterministically.
    payloads.push_back(
        eval_payload(graph, "mc", /*seed=*/123, /*trials=*/4000, i));
  }

  std::vector<double> reference_means;
  std::vector<std::uint64_t> reference_seeds;
  for (const std::size_t batch : {std::size_t{1}, std::size_t{8},
                                  std::size_t{64}}) {
    for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                      std::size_t{7}}) {
      EngineConfig config;
      config.batch.max_batch = batch;
      config.batch.eval_threads = workers;
      config.batch.deadline_us = 100.0;
      ServeEngine engine(config);
      const auto responses = run_requests(engine, payloads);

      std::vector<double> means;
      std::vector<std::uint64_t> seeds;
      for (std::size_t i = 0; i < responses.size(); ++i) {
        const json::Value v = json::parse(responses[i]);
        ASSERT_EQ(field_string(v, "type"), "result") << responses[i];
        EXPECT_EQ(field_u64(v, "id"), i);  // index-aligned
        EXPECT_EQ(field_u64(v, "request_index"), i);
        means.push_back(field_double(v, "mean"));
        seeds.push_back(field_u64(v, "derived_seed"));
      }
      if (reference_means.empty()) {
        reference_means = means;
        reference_seeds = seeds;
      } else {
        // Bitwise: the doubles round-tripped through 17-digit JSON.
        EXPECT_EQ(means, reference_means)
            << "batch=" << batch << " workers=" << workers;
        EXPECT_EQ(seeds, reference_seeds);
      }
    }
  }

  // Distinct requests drew decorrelated streams...
  EXPECT_NE(reference_means[0], reference_means[1]);
  // ...via the documented chain, replayable standalone: evaluating with
  // the reported derived_seed verbatim reproduces the mean bit-for-bit.
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(reference_seeds[i], expmk::exp::derive_seed(123, i));
    const auto sc = expmk::scenario::Scenario::calibrated(
        expmk::gen::lu_dag(4), 0.01);
    expmk::exp::EvalOptions options;
    options.mc_trials = 4000;
    options.seed = reference_seeds[i];
    options.threads = 1;
    const auto* mc = expmk::exp::EvaluatorRegistry::builtin().find("mc");
    ASSERT_NE(mc, nullptr);
    EXPECT_EQ(mc->evaluate(sc, options).mean, reference_means[i]) << i;
  }
}

TEST(ServeEngineTest, WarmCacheNeverRecompiles) {
  ServeEngine engine;
  const std::string cell_a = eval_payload(kChain, "fo", 1, 100, 0);
  std::string cell_b;  // same graph, different pfail -> different cell
  {
    expmk::util::JsonWriter w;
    w.field("v", 1);
    w.field("type", "eval");
    w.field("graph", kChain);
    w.field("pfail", 0.05);
    w.field("method", "fo");
    cell_b = w.str();
  }
  const std::uint64_t before = expmk::scenario::Scenario::compiled_count();
  const std::uint64_t patched_before =
      expmk::scenario::Scenario::patched_count();
  ServeEngine::Connection conn;
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (int round = 0; round < 6; ++round) {
    const json::Value a = json::parse(engine.handle_sync(cell_a, conn));
    const json::Value b = json::parse(engine.handle_sync(cell_b, conn));
    if (round == 0) {
      mean_a = field_double(a, "mean");
      mean_b = field_double(b, "mean");
      // Same structure, different pfail: the second cell is PATCHED from
      // the first instead of full-compiled.
      EXPECT_EQ(field_string(a, "cache"), "miss");
      EXPECT_EQ(field_string(b, "cache"), "patched");
    } else {
      // Patched entries serve later hits like any other, bit-identically.
      EXPECT_EQ(field_double(a, "mean"), mean_a);
      EXPECT_EQ(field_double(b, "mean"), mean_b);
    }
  }
  // The acceptance pin: one full compile + one patch cover both keys, no
  // matter the request count.
  EXPECT_EQ(expmk::scenario::Scenario::compiled_count() - before, 1u);
  EXPECT_EQ(expmk::scenario::Scenario::patched_count() - patched_before, 1u);
  EXPECT_EQ(engine.cache_stats().compiles, 1u);
  EXPECT_EQ(engine.cache_stats().patched, 1u);
  EXPECT_EQ(engine.cache_stats().hits, 10u);
  // The patched mean matches a from-scratch evaluation of the same cell
  // bit-for-bit (patch == compile): re-handle cell_b through a FRESH
  // engine, which must full-compile it.
  ServeEngine fresh;
  ServeEngine::Connection conn2;
  const json::Value fresh_b = json::parse(fresh.handle_sync(cell_b, conn2));
  EXPECT_EQ(field_string(fresh_b, "cache"), "miss");
  EXPECT_EQ(field_double(fresh_b, "mean"), mean_b);
}

TEST(ServeEngineTest, ByHashRoundTripAndNotFound) {
  ServeEngine engine;
  ServeEngine::Connection conn;
  const json::Value first =
      json::parse(engine.handle_sync(eval_payload(kChain, "fo", 1, 100, 0),
                                     conn));
  const std::string hash = field_string(first, "hash");
  const double mean = field_double(first, "mean");

  expmk::util::JsonWriter w;
  w.field("v", 1);
  w.field("type", "eval");
  w.field("hash", hash);
  w.field("method", "fo");
  const json::Value second = json::parse(engine.handle_sync(w.str(), conn));
  EXPECT_EQ(field_string(second, "type"), "result");
  EXPECT_EQ(field_string(second, "cache"), "hit");
  EXPECT_EQ(field_double(second, "mean"), mean);

  expmk::util::JsonWriter missing;
  missing.field("v", 1);
  missing.field("type", "eval");
  missing.field("hash", std::string(16, '0'));
  missing.field("method", "fo");
  const json::Value error =
      json::parse(engine.handle_sync(missing.str(), conn));
  EXPECT_EQ(field_string(error, "type"), "error");
  EXPECT_EQ(field_string(error, "code"), "not_found");
}

TEST(ServeEngineTest, ShedDegradesByPredictedCostAndReports) {
  // Level 1 always on: queue depth >= 0 trips queue_l1 == 0.
  //
  // The cost model predicts exact on the 3-task chain in well under the
  // default 50 ms level-1 deadline, so — unlike the old name ladder —
  // the request KEEPS its exact method under soft pressure.
  EngineConfig level1;
  level1.shed.queue_l1 = 0;
  {
    ServeEngine engine(level1);
    ServeEngine::Connection conn;
    const json::Value v = json::parse(
        engine.handle_sync(eval_payload(kChain, "exact", 1, 100, 7), conn));
    ASSERT_EQ(field_string(v, "type"), "result");
    EXPECT_EQ(field_string(v, "method_requested"), "exact");
    EXPECT_EQ(field_string(v, "method"), "exact");  // predicted cheap: kept
    EXPECT_EQ(field_u64(v, "shed_level"), 1u);
    EXPECT_FALSE(v.find("degraded")->as_bool());
    EXPECT_EQ(field_u64(v, "id"), 7u);

    // mc keeps its method but the trial count is capped — and the cap is
    // reported as a degradation.
    const json::Value mc = json::parse(engine.handle_sync(
        eval_payload(kChain, "mc", 1, 1'000'000, 8), conn));
    EXPECT_EQ(field_string(mc, "method"), "mc");
    EXPECT_EQ(field_u64(mc, "trials_requested"), 1'000'000u);
    EXPECT_EQ(field_u64(mc, "trials"), level1.shed.mc_trials_l1);
    EXPECT_TRUE(mc.find("degraded")->as_bool());
  }

  // A sub-microsecond deadline that NO method fits: the planner falls
  // back to its predicted-cheapest pick (one of the O(V+E)/O(V^2)
  // closed forms) and the substitution is reported.
  EngineConfig tight;
  tight.shed.queue_l1 = 0;
  tight.shed.queue_l2 = 0;
  tight.shed.deadline_l2_us = 1e-3;
  {
    ServeEngine engine(tight);
    ServeEngine::Connection conn;
    const json::Value v = json::parse(
        engine.handle_sync(eval_payload(kChain, "exact", 1, 100, 0), conn));
    const std::string cheap = field_string(v, "method");
    EXPECT_TRUE(cheap == "fo" || cheap == "so") << cheap;
    EXPECT_EQ(field_u64(v, "shed_level"), 2u);
    EXPECT_TRUE(v.find("degraded")->as_bool());
    // The EWMA may have re-ranked fo/so between requests (it observed
    // the first evaluation) — only the class of the substitute is
    // stable, not the specific closed form.
    const json::Value sp = json::parse(
        engine.handle_sync(eval_payload(kChain, "sp", 1, 100, 0), conn));
    const std::string cheap2 = field_string(sp, "method");
    EXPECT_TRUE(cheap2 == "fo" || cheap2 == "so") << cheap2;
    EXPECT_TRUE(sp.find("degraded")->as_bool());
  }

  // A large LU kernel whose exact evaluation is hopeless (2^385) but
  // whose analytic methods fit the default level-1 deadline: the planner
  // substitutes its most accurate under-deadline method, never fo-blindly.
  EngineConfig big;
  big.shed.queue_l1 = 0;
  {
    ServeEngine engine(big);
    ServeEngine::Connection conn;
    const std::string lu_text =
        expmk::graph::to_taskgraph(expmk::gen::lu_dag(10));
    const json::Value v = json::parse(
        engine.handle_sync(eval_payload(lu_text, "exact", 1, 100, 0), conn));
    ASSERT_EQ(field_string(v, "type"), "result");
    EXPECT_TRUE(v.find("degraded")->as_bool());
    const std::string used = field_string(v, "method");
    EXPECT_NE(used, "exact");
    // Whatever the model picked, it ran and produced a finite mean.
    EXPECT_TRUE(std::isfinite(field_double(v, "mean")));
  }

  // Hard limit: typed rejection, never an unbounded queue.
  EngineConfig hard;
  hard.shed.queue_hard = 0;
  {
    ServeEngine engine(hard);
    ServeEngine::Connection conn;
    const json::Value v = json::parse(
        engine.handle_sync(eval_payload(kChain, "fo", 1, 100, 3), conn));
    EXPECT_EQ(field_string(v, "type"), "error");
    EXPECT_EQ(field_string(v, "code"), "overloaded");
    EXPECT_EQ(field_u64(v, "id"), 3u);
    EXPECT_EQ(engine.stats().rejected, 1u);
  }
}

TEST(ServeEngineTest, TypedProtocolErrors) {
  ServeEngine engine;
  ServeEngine::Connection conn;
  const auto code_of = [&](const std::string& payload) {
    const json::Value v = json::parse(engine.handle_sync(payload, conn));
    EXPECT_EQ(field_string(v, "type"), "error");
    return field_string(v, "code");
  };
  EXPECT_EQ(code_of("this is not json"), "bad_json");
  EXPECT_EQ(code_of("42"), "bad_request");  // JSON, but not an object
  EXPECT_EQ(code_of(R"({"v":1,"type":"eval","method":"fo"})"),
            "bad_request");  // neither graph nor hash
  EXPECT_EQ(code_of(R"({"v":1,"type":"eval","graph":"not a taskgraph",)"
                    R"("pfail":0.01})"),
            "bad_graph");
  EXPECT_EQ(code_of(R"({"v":2,"type":"eval"})"), "bad_request");
  {
    expmk::util::JsonWriter w;
    w.field("v", 1);
    w.field("type", "eval");
    w.field("graph", kChain);
    w.field("pfail", 0.01);
    w.field("method", "definitely-not-a-method");
    EXPECT_EQ(code_of(w.str()), "unknown_method");
  }
  EXPECT_EQ(engine.stats().errors, 6u);
}

TEST(ServeEngineTest, StatsAndShutdownFrames) {
  ServeEngine engine;
  ServeEngine::Connection conn;
  (void)engine.handle_sync(eval_payload(kChain, "fo", 1, 100, 0), conn);

  const json::Value stats =
      json::parse(engine.handle_sync(R"({"v":1,"type":"stats"})", conn));
  EXPECT_EQ(field_string(stats, "type"), "stats");
  EXPECT_EQ(field_u64(stats, "requests"), 1u);
  const json::Value* cache = stats.find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(field_u64(*cache, "compiles"), 1u);
  ASSERT_NE(stats.find("batch"), nullptr);
  ASSERT_NE(stats.find("p99_us"), nullptr);

  EXPECT_FALSE(engine.shutdown_requested());
  const json::Value ok = json::parse(
      engine.handle_sync(R"({"v":1,"type":"shutdown","id":5})", conn));
  EXPECT_EQ(field_string(ok, "type"), "ok");
  EXPECT_EQ(field_u64(ok, "id"), 5u);
  EXPECT_TRUE(engine.shutdown_requested());
  engine.wait_shutdown();  // must not block once latched
}

// ---------------------------------------------------------------- socket

int dial_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string read_one_frame(int fd, expmk::util::FrameDecoder& decoder) {
  std::string payload;
  char buf[4096];
  for (;;) {
    switch (decoder.next(payload)) {
      case expmk::util::FrameDecoder::Status::Frame:
        return payload;
      case expmk::util::FrameDecoder::Status::Error:
        return "";
      case expmk::util::FrameDecoder::Status::NeedMore:
        break;
    }
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return "";
    decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

TEST(ServeServerTest, SocketRoundTripAndShutdown) {
  expmk::serve::ServerConfig config;
  config.port = 0;  // ephemeral
  expmk::serve::TcpServer server(config);
  ASSERT_NO_THROW(server.start());
  ASSERT_GT(server.port(), 0);

  const int fd = dial_loopback(server.port());
  ASSERT_GE(fd, 0);
  expmk::util::FrameDecoder decoder;

  ASSERT_TRUE(send_all(
      fd, expmk::util::encode_frame(eval_payload(kChain, "fo", 1, 100, 1))));
  const json::Value result = json::parse(read_one_frame(fd, decoder));
  EXPECT_EQ(field_string(result, "type"), "result");
  EXPECT_EQ(field_u64(result, "id"), 1u);
  EXPECT_TRUE(result.find("mean")->is_number());

  ASSERT_TRUE(send_all(
      fd, expmk::util::encode_frame(R"({"v":1,"type":"stats"})")));
  const json::Value stats = json::parse(read_one_frame(fd, decoder));
  EXPECT_EQ(field_string(stats, "type"), "stats");
  EXPECT_EQ(field_u64(stats, "requests"), 1u);

  ASSERT_TRUE(send_all(
      fd, expmk::util::encode_frame(R"({"v":1,"type":"shutdown"})")));
  const json::Value ok = json::parse(read_one_frame(fd, decoder));
  EXPECT_EQ(field_string(ok, "type"), "ok");
  server.wait_shutdown();
  ::close(fd);
  server.stop();
}

TEST(ServeServerTest, PoisonedFrameGetsTypedErrorThenHangup) {
  expmk::serve::ServerConfig config;
  config.port = 0;
  expmk::serve::TcpServer server(config);
  server.start();
  const int fd = dial_loopback(server.port());
  ASSERT_GE(fd, 0);

  // A zero-length header cannot be resynchronized; the server must say
  // why and hang up.
  ASSERT_TRUE(send_all(fd, std::string(4, '\0')));
  expmk::util::FrameDecoder decoder;
  const std::string payload = read_one_frame(fd, decoder);
  ASSERT_FALSE(payload.empty());
  const json::Value v = json::parse(payload);
  EXPECT_EQ(field_string(v, "type"), "error");
  EXPECT_EQ(field_string(v, "code"), "bad_frame");
  // EOF follows: the connection is closed server-side.
  char buf[16];
  EXPECT_EQ(::recv(fd, buf, sizeof buf, 0), 0);
  ::close(fd);
  server.stop();
}

}  // namespace
