// tests/test_helpers.hpp
//
// Small fixture graphs and brute-force reference computations shared by
// the test suite.

#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "graph/dag.hpp"
#include "graph/longest_path.hpp"
#include "graph/topological.hpp"

namespace expmk::test {

/// Diamond: A -> {B, C} -> D. Weights a, b, c, d.
inline graph::Dag diamond(double a = 1.0, double b = 2.0, double c = 3.0,
                          double d = 1.0) {
  graph::Dag g;
  const auto A = g.add_task("A", a);
  const auto B = g.add_task("B", b);
  const auto C = g.add_task("C", c);
  const auto D = g.add_task("D", d);
  g.add_edge(A, B);
  g.add_edge(A, C);
  g.add_edge(B, D);
  g.add_edge(C, D);
  return g;
}

/// The minimal non-SP precedence shape: entries A, B; exits C, D;
/// A->C, A->D, B->D.
inline graph::Dag n_graph(double a = 1.0, double b = 2.0, double c = 3.0,
                          double d = 4.0) {
  graph::Dag g;
  const auto A = g.add_task("A", a);
  const auto B = g.add_task("B", b);
  const auto C = g.add_task("C", c);
  const auto D = g.add_task("D", d);
  g.add_edge(A, C);
  g.add_edge(A, D);
  g.add_edge(B, D);
  return g;
}

/// Brute-force longest path by DFS over all paths (exponential; tiny
/// graphs only). Cross-checks the DP implementation.
inline double brute_force_longest_path(const graph::Dag& g,
                                       const std::vector<double>& w) {
  double best = 0.0;
  std::vector<graph::TaskId> stack;
  const std::function<void(graph::TaskId, double)> dfs =
      [&](graph::TaskId v, double len) {
        len += w[v];
        best = std::max(best, len);
        for (const graph::TaskId s : g.successors(v)) dfs(s, len);
      };
  for (const graph::TaskId e : g.entry_tasks()) dfs(e, 0.0);
  return best;
}

/// |x - y| <= tol * max(1, |x|, |y|).
inline bool near(double x, double y, double tol = 1e-9) {
  return std::fabs(x - y) <= tol * std::max({1.0, std::fabs(x), std::fabs(y)});
}

}  // namespace expmk::test
