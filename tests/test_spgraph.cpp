// Tests for spgraph/arc_network and spgraph/sp_reduce: AoA conversion,
// series/parallel rewriting, SP recognition, and exactness of the SP
// evaluation against the enumeration oracle.

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact.hpp"
#include "core/failure_model.hpp"
#include "gen/cholesky.hpp"
#include "gen/random_dags.hpp"
#include "graph/validate.hpp"
#include "spgraph/arc_network.hpp"
#include "spgraph/sp_reduce.hpp"
#include "test_helpers.hpp"

namespace {

using expmk::core::FailureModel;
using expmk::prob::DiscreteDistribution;
using expmk::sp::ArcNetwork;
using expmk::sp::evaluate_sp;
using expmk::sp::reduce_exhaustively;

std::vector<DiscreteDistribution> two_state_dists(const expmk::graph::Dag& g,
                                                  double lambda) {
  const FailureModel m{lambda};
  std::vector<DiscreteDistribution> out;
  out.reserve(g.task_count());
  for (expmk::graph::TaskId i = 0; i < g.task_count(); ++i) {
    const double a = g.weight(i);
    out.push_back(a > 0.0
                      ? DiscreteDistribution::two_state(a, m.p_success(a))
                      : DiscreteDistribution::point(0.0));
  }
  return out;
}

TEST(ArcNetwork, FromDagLayout) {
  const auto g = expmk::test::diamond();
  const auto net = ArcNetwork::from_dag(g, two_state_dists(g, 0.1));
  // 4 task arcs + 4 precedence arcs + 1 source feed + 1 sink feed.
  EXPECT_EQ(net.arc_count(), 10u);
  EXPECT_EQ(net.node_count(), 2 * 4 + 2);
  EXPECT_EQ(net.out_degree(net.source()), 1u);
  EXPECT_EQ(net.in_degree(net.sink()), 1u);
}

TEST(ArcNetwork, DistCountMismatchThrows) {
  const auto g = expmk::test::diamond();
  EXPECT_THROW(ArcNetwork::from_dag(g, {}), std::invalid_argument);
}

TEST(ArcNetwork, AddRemoveRetarget) {
  const auto g = expmk::test::diamond();
  auto net = ArcNetwork::from_dag(g, two_state_dists(g, 0.1));
  const auto n1 = net.add_node();
  const auto id = net.add_arc(net.source(), n1, DiscreteDistribution{});
  EXPECT_EQ(net.in_degree(n1), 1u);
  net.retarget_arc(id, net.sink());
  EXPECT_EQ(net.in_degree(n1), 0u);
  const auto before = net.arc_count();
  net.remove_arc(id);
  EXPECT_EQ(net.arc_count(), before - 1);
  net.remove_arc(id);  // idempotent
  EXPECT_EQ(net.arc_count(), before - 1);
}

TEST(SpReduce, SingleTaskReducesToItsDistribution) {
  expmk::graph::Dag g;
  g.add_task(1.0);
  const auto eval =
      evaluate_sp(ArcNetwork::from_dag(g, two_state_dists(g, 0.2)));
  EXPECT_TRUE(eval.is_series_parallel);
  const double p = std::exp(-0.2);
  EXPECT_NEAR(eval.makespan.mean(), 1.0 * p + 2.0 * (1.0 - p), 1e-12);
}

TEST(SpReduce, ChainConvolves) {
  const auto g = expmk::gen::uniform_chain(4, 0.5);
  const auto eval =
      evaluate_sp(ArcNetwork::from_dag(g, two_state_dists(g, 0.3)));
  EXPECT_TRUE(eval.is_series_parallel);
  EXPECT_NEAR(eval.makespan.mean(),
              expmk::core::exact_two_state(g, FailureModel{0.3}), 1e-12);
  // Chain of 4 two-state tasks: support has 5 distinct sums.
  EXPECT_EQ(eval.makespan.size(), 5u);
}

TEST(SpReduce, DiamondIsSeriesParallel) {
  const auto g = expmk::test::diamond(0.4, 0.3, 0.5, 0.2);
  const FailureModel m{0.25};
  const auto eval =
      evaluate_sp(ArcNetwork::from_dag(g, two_state_dists(g, m.lambda)));
  EXPECT_TRUE(eval.is_series_parallel);
  EXPECT_NEAR(eval.makespan.mean(), expmk::core::exact_two_state(g, m),
              1e-12);
}

TEST(SpReduce, NGraphIsNotSeriesParallel) {
  const auto g = expmk::test::n_graph();
  const auto eval =
      evaluate_sp(ArcNetwork::from_dag(g, two_state_dists(g, 0.1)));
  EXPECT_FALSE(eval.is_series_parallel);
}

TEST(SpReduce, WheatstoneBridgeIsNotSeriesParallel) {
  const auto g = expmk::gen::wheatstone_bridge();
  const auto eval =
      evaluate_sp(ArcNetwork::from_dag(g, two_state_dists(g, 0.1)));
  EXPECT_FALSE(eval.is_series_parallel);
}

TEST(SpReduce, CholeskyLikeGraphsAreNotSp) {
  // The paper attributes Dodin's poor accuracy to these DAGs being far
  // from series-parallel; verify they indeed are not SP.
  const auto g = expmk::gen::cholesky_dag(4);
  const auto eval =
      evaluate_sp(ArcNetwork::from_dag(g, two_state_dists(g, 0.1)));
  EXPECT_FALSE(eval.is_series_parallel);
}

// Property: every random_series_parallel graph is recognized as SP and
// its evaluated mean matches enumeration (for small sizes).
class SpRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpRandomSweep, RecognizedAndExact) {
  const auto seed = GetParam();
  const auto g = expmk::gen::random_series_parallel(12, seed);
  const FailureModel m{0.15};
  const auto eval =
      evaluate_sp(ArcNetwork::from_dag(g, two_state_dists(g, m.lambda)));
  ASSERT_TRUE(eval.is_series_parallel) << "seed " << seed;
  EXPECT_NEAR(eval.makespan.mean(), expmk::core::exact_two_state(g, m),
              1e-10)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpRandomSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u));

TEST(SpReduce, LargeSpGraphReducesWithBudget) {
  const auto g = expmk::gen::random_series_parallel(300, 77);
  const auto eval = evaluate_sp(
      ArcNetwork::from_dag(g, two_state_dists(g, 0.05)), /*max_atoms=*/64);
  EXPECT_TRUE(eval.is_series_parallel);
  EXPECT_LE(eval.makespan.size(), 64u);
  EXPECT_GT(eval.makespan.mean(), 0.0);
}

TEST(SpReduce, StatsCountReductions) {
  const auto g = expmk::gen::uniform_chain(4, 0.5);
  auto net = ArcNetwork::from_dag(g, two_state_dists(g, 0.3));
  const auto stats = reduce_exhaustively(net, 0);
  EXPECT_TRUE(stats.reduced_to_single_arc);
  EXPECT_GT(stats.series, 0u);
  EXPECT_EQ(stats.parallel, 0u);  // a chain needs no parallel merges
}

}  // namespace
