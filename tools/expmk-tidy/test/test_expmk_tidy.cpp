// Tests for the expmk-tidy fallback checker: fixture files with
// `// EXPECT: <check>` markers pin exactly where each check must fire
// (and, on the *_negative fixtures, that it stays silent), and unit
// tests cover the lexer's literal-safety and the NOLINT justification
// contract. The same fixtures serve as documentation of each check's
// rules — see tools/expmk-tidy/README.md.

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "expmk_tidy.hpp"

namespace fs = std::filesystem;
using expmk_tidy::Config;
using expmk_tidy::Diagnostic;
using expmk_tidy::ParsedFile;

namespace {

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// (line, check) -> expected/actual diagnostic count.
using DiagMap = std::map<std::pair<int, std::string>, int>;

DiagMap parse_expectations(const std::string& source) {
  DiagMap expected;
  std::istringstream in(source);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t pos = line.find("EXPECT:");
    if (pos == std::string::npos) continue;
    std::istringstream checks(line.substr(pos + 7));
    std::string check;
    while (checks >> check) ++expected[{lineno, check}];
  }
  return expected;
}

DiagMap run_fixture(const fs::path& path) {
  Config config;
  config.src_filter = "";  // fixtures live outside src/
  std::vector<ParsedFile> files;
  files.push_back(
      expmk_tidy::parse_file(path.generic_string(), read_file(path)));
  DiagMap actual;
  for (const Diagnostic& d : expmk_tidy::analyze(files, config)) {
    ++actual[{d.line, d.check}];
  }
  return actual;
}

std::string describe(const DiagMap& m) {
  std::ostringstream ss;
  for (const auto& [key, count] : m) {
    ss << "  line " << key.first << ": " << key.second << " x" << count
       << "\n";
  }
  return ss.str().empty() ? "  (none)\n" : ss.str();
}

void expect_fixture_matches(const std::string& name) {
  const fs::path path = fs::path(EXPMK_TIDY_FIXTURE_DIR) / name;
  ASSERT_TRUE(fs::exists(path)) << path;
  const DiagMap expected = parse_expectations(read_file(path));
  const DiagMap actual = run_fixture(path);
  EXPECT_EQ(expected, actual) << "expected:\n"
                              << describe(expected) << "actual:\n"
                              << describe(actual);
}

// ------------------------------------------------------------- fixtures

TEST(ExpmkTidyFixtures, NoAllocPositive) {
  expect_fixture_matches("noalloc_positive.cpp");
}
TEST(ExpmkTidyFixtures, NoAllocNegative) {
  expect_fixture_matches("noalloc_negative.cpp");
}
TEST(ExpmkTidyFixtures, DeterminismPositive) {
  expect_fixture_matches("determinism_positive.cpp");
}
TEST(ExpmkTidyFixtures, DeterminismNegative) {
  expect_fixture_matches("determinism_negative.cpp");
}
TEST(ExpmkTidyFixtures, LeaseEscapePositive) {
  expect_fixture_matches("lease_escape_positive.cpp");
}
TEST(ExpmkTidyFixtures, LeaseEscapeNegative) {
  expect_fixture_matches("lease_escape_negative.cpp");
}

// Every check has at least one firing (positive) fixture — the
// "proves it would have caught it" guarantee from the PR checklist.
TEST(ExpmkTidyFixtures, EveryCheckFiresSomewhere) {
  std::set<std::string> fired;
  for (const char* name :
       {"noalloc_positive.cpp", "determinism_positive.cpp",
        "lease_escape_positive.cpp"}) {
    for (const auto& [key, count] :
         run_fixture(fs::path(EXPMK_TIDY_FIXTURE_DIR) / name)) {
      fired.insert(key.second);
    }
  }
  EXPECT_TRUE(fired.count("expmk-no-alloc-kernel"));
  EXPECT_TRUE(fired.count("expmk-determinism"));
  EXPECT_TRUE(fired.count("expmk-lease-escape"));
}

// ------------------------------------------------------------ unit: lexer

TEST(ExpmkTidyLexer, LiteralsAreOpaque) {
  // Code-shaped text inside strings/comments must not produce tokens.
  const auto toks = expmk_tidy::lex(
      "const char* s = \"new std::vector<int> rand()\";\n"
      "// comment: rand() system_clock\n"
      "auto r = R\"x(push_back( unordered_map )x\";\n");
  int idents = 0;
  for (const auto& t : toks) {
    if (t.kind == expmk_tidy::TokKind::Ident) {
      EXPECT_NE(t.text, "rand");
      EXPECT_NE(t.text, "push_back");
      EXPECT_NE(t.text, "unordered_map");
      ++idents;
    }
  }
  EXPECT_GT(idents, 0);
}

TEST(ExpmkTidyLexer, TracksLines) {
  const auto toks = expmk_tidy::lex("a\nbb\n  ccc\n");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 3);
  EXPECT_EQ(toks[2].col, 3);
}

// -------------------------------------------------- unit: function parse

TEST(ExpmkTidyParse, FindsAnnotatedDefinitionsAndPrototypes) {
  const ParsedFile f = expmk_tidy::parse_file(
      "t.cpp",
      "#define EXPMK_NOALLOC\n"
      "namespace a { namespace b {\n"
      "EXPMK_NOALLOC double proto(int x);\n"
      "EXPMK_NOALLOC double defined(int x) { return x * 2.0; }\n"
      "double plain(int x) { return x; }\n"
      "struct S { EXPMK_NOALLOC double method(int y) { return y; } };\n"
      "} }\n");
  std::map<std::string, bool> annotated;
  for (const auto& fn : f.functions) annotated[fn.name] = fn.annotated;
  EXPECT_TRUE(annotated.at("proto"));
  EXPECT_TRUE(annotated.at("defined"));
  EXPECT_FALSE(annotated.at("plain"));
  EXPECT_TRUE(annotated.at("method"));
}

TEST(ExpmkTidyParse, ConstructorInitListIsNotACallee) {
  const ParsedFile f = expmk_tidy::parse_file(
      "t.cpp",
      "struct T { int a_; double b_;\n"
      "T(int a) : a_(a), b_(0.0) { a_ += 1; }\n"
      "};\n");
  bool found_ctor = false;
  for (const auto& fn : f.functions) {
    if (fn.name == "T") found_ctor = true;
  }
  EXPECT_TRUE(found_ctor);
}

// ------------------------------------------------- unit: NOLINT contract

namespace {
DiagMap analyze_snippet(const std::string& source) {
  Config config;
  config.src_filter = "";
  std::vector<ParsedFile> files;
  files.push_back(expmk_tidy::parse_file("snippet.cpp", source));
  DiagMap actual;
  for (const Diagnostic& d : expmk_tidy::analyze(files, config)) {
    ++actual[{d.line, d.check}];
  }
  return actual;
}
}  // namespace

TEST(ExpmkTidyNolint, JustifiedSuppressionWorks) {
  const auto diags = analyze_snippet(
      "double f() {\n"
      "  return rand();  // NOLINT(expmk-determinism): fixture, not prod\n"
      "}\n");
  EXPECT_TRUE(diags.empty()) << describe(diags);
}

TEST(ExpmkTidyNolint, UnjustifiedSuppressionIsIgnored) {
  const auto diags = analyze_snippet(
      "double f() {\n"
      "  return rand();  // NOLINT(expmk-determinism)\n"
      "}\n");
  ASSERT_EQ(diags.size(), 1u) << describe(diags);
  EXPECT_EQ(diags.begin()->first.second, "expmk-determinism");
}

TEST(ExpmkTidyNolint, NextlineAndGlobForms) {
  const auto ok = analyze_snippet(
      "double f() {\n"
      "  // NOLINTNEXTLINE(expmk-*): seeded fixture stream\n"
      "  return rand();\n"
      "}\n");
  EXPECT_TRUE(ok.empty()) << describe(ok);
  const auto wrong_check = analyze_snippet(
      "double f() {\n"
      "  // NOLINTNEXTLINE(expmk-lease-escape): mismatched check name\n"
      "  return rand();\n"
      "}\n");
  EXPECT_EQ(wrong_check.size(), 1u) << describe(wrong_check);
}

}  // namespace
