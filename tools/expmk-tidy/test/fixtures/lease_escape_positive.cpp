// Fixture: workspace leases escaping their frame scope — via return,
// member store, and escaping closures. Analyzed, never compiled.

#include <functional>
#include <span>

namespace fixture {

struct Ws {
  std::span<double> doubles(unsigned n);
  std::span<unsigned> u32(unsigned n);
};

std::span<double> return_direct(Ws& ws, unsigned n) {
  return ws.doubles(n);  // EXPECT: expmk-lease-escape
}

std::span<double> return_variable(Ws& ws, unsigned n) {
  std::span<double> vals = ws.doubles(n);
  vals[0] = 1.0;
  return vals;  // EXPECT: expmk-lease-escape
}

std::span<double> return_subspan(Ws& ws, unsigned n) {
  auto vals = ws.doubles(n);
  return vals.subspan(1);  // EXPECT: expmk-lease-escape
}

class Holder {
 public:
  void adopt(Ws& ws, unsigned n) {
    view_ = ws.doubles(n);  // EXPECT: expmk-lease-escape
  }
  void adopt_variable(Ws& ws, unsigned n) {
    auto vals = ws.u32(n);
    slots_ = vals;  // EXPECT: expmk-lease-escape
  }
  std::function<double()> defer(Ws& ws, unsigned n) {
    auto vals = ws.doubles(n);
    return [vals] { return vals[0]; };  // EXPECT: expmk-lease-escape
  }
  void store_closure(Ws& ws, unsigned n) {
    auto vals = ws.doubles(n);
    cb_ = [&] { vals[0] = 2.0; };  // EXPECT: expmk-lease-escape
  }

 private:
  std::span<double> view_;
  std::span<unsigned> slots_;
  std::function<void()> cb_;
};

}  // namespace fixture
