// Fixture: determinism violations — unseeded entropy, wall-clock reads,
// unordered iteration into results, reassociating reductions. Analyzed,
// never compiled.

#include <chrono>
#include <cstdlib>
#include <numeric>
#include <random>
#include <unordered_map>

namespace fixture {

double entropy_sources() {
  double x = rand();                  // EXPECT: expmk-determinism
  std::random_device rd;              // EXPECT: expmk-determinism
  return x + rd();
}

double wall_clock() {
  auto t = std::chrono::system_clock::now();  // EXPECT: expmk-determinism expmk-determinism
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

double unordered_feeds_result(const std::unordered_map<int, double>& m) {  // EXPECT: expmk-determinism
  double total = 0.0;
  for (const auto& [k, v] : m) {  // iteration order feeds the sum
    total += v;
  }
  return total;
}

double reassociating_reduction(const double* p, const double* q) {
  return std::reduce(p, q, 0.0);  // EXPECT: expmk-determinism
}

#pragma omp parallel for reduction(+ : total)  // EXPECT: expmk-determinism

double fast_math_region(double a, double b) { return a + b; }

}  // namespace fixture
