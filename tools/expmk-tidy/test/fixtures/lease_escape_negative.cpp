// Fixture: legitimate lease usage the lease-escape check must accept —
// element reads escape as VALUES, leases passed down to callees, and
// frame-local closures that never leave the function.

#include <algorithm>
#include <span>

namespace fixture {

struct Ws {
  std::span<double> doubles(unsigned n);
};

double consume(std::span<const double> in);

double return_element(Ws& ws, unsigned n) {
  auto vals = ws.doubles(n);
  vals[0] = 3.0;
  return vals[0];  // a VALUE, not the lease
}

unsigned return_size(Ws& ws, unsigned n) {
  auto vals = ws.doubles(n);
  return vals.size();  // a scalar observable, not storage
}

double pass_down(Ws& ws, unsigned n) {
  auto vals = ws.doubles(n);
  return consume(vals);  // callee must not retain it; its own contract
}

double local_closure(Ws& ws, unsigned n) {
  auto vals = ws.doubles(n);
  auto fill = [&](double x) { std::fill(vals.begin(), vals.end(), x); };
  fill(1.0);  // invoked inside the frame; never escapes
  return vals[0];
}

double member_gets_value(Ws& ws, unsigned n);

class Stats {
 public:
  void record(Ws& ws, unsigned n) {
    auto vals = ws.doubles(n);
    last_ = vals[0];  // element read: a value crosses, not the span
  }

 private:
  double last_ = 0.0;
};

}  // namespace fixture
