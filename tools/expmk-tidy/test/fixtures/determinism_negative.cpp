// Fixture: deterministic code the determinism check must accept — seeded
// counter-based RNG, fixed-order accumulation, sorted containers, and a
// justified NOLINT on a deliberate unordered cache.

#include <map>
#include <numeric>
#include <vector>

namespace fixture {

struct McRng {
  unsigned long long counter = 0;
  double next() { return static_cast<double>(++counter) * 1e-19; }
};

double seeded_stream(McRng& rng, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += rng.next();
  return total;
}

double fixed_order_accumulation(const std::vector<double>& v) {
  // Fixed left-to-right association — the accumulator order is part of
  // the bit-identity contract.
  return std::accumulate(v.begin(), v.end(), 0.0);
}

double sorted_iteration(const std::map<int, double>& m) {
  double total = 0.0;
  for (const auto& [k, v] : m) total += v;  // ordered: deterministic
  return total;
}

// NOLINTNEXTLINE(expmk-determinism): lookup-only cache, never iterated
struct Cache;

}  // namespace fixture
