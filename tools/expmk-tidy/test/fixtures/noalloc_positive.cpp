// Fixture: EXPMK_NOALLOC kernels that allocate — every marked line must
// fire expmk-no-alloc-kernel. An EXPECT marker comment names the check
// a diagnostic is required on for that line (see test_expmk_tidy.cpp).
//
// Deliberately-broken code: this file is analyzed, never compiled.

#include <vector>

#define EXPMK_NOALLOC

namespace fixture {

struct Sink {
  double* data;
};

EXPMK_NOALLOC double kernel_new(int n) {
  double* p = new double[n];  // EXPECT: expmk-no-alloc-kernel
  double s = p[0];
  delete[] p;  // EXPECT: expmk-no-alloc-kernel
  return s;
}

EXPMK_NOALLOC double kernel_growth(std::vector<double>& v) {
  v.push_back(1.0);  // EXPECT: expmk-no-alloc-kernel
  v.resize(100);     // EXPECT: expmk-no-alloc-kernel
  v.reserve(200);    // EXPECT: expmk-no-alloc-kernel
  return v[0];
}

EXPMK_NOALLOC double kernel_alloc_type(int n) {
  std::vector<double> scratch(n);  // EXPECT: expmk-no-alloc-kernel
  return scratch[0];
}

double helper_not_annotated(double x) { return x * 2.0; }

EXPMK_NOALLOC double kernel_unannotated_callee(double x) {
  return helper_not_annotated(x);  // EXPECT: expmk-no-alloc-kernel
}

EXPMK_NOALLOC double kernel_unjustified_nolint(double x) {
  // An expmk NOLINT without a ": justification" must NOT suppress.
  return helper_not_annotated(x);  // NOLINT(expmk-no-alloc-kernel) EXPECT: expmk-no-alloc-kernel
}

}  // namespace fixture
