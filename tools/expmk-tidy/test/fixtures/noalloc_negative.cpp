// Fixture: allocation-free kernels the no-alloc check must accept —
// annotated callees, allowlisted std math, span accessors, workspace
// leases, throw-exempt cold paths, and a justified NOLINT. Zero expected
// diagnostics.

#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

#define EXPMK_NOALLOC

namespace fixture {

struct Ws {
  std::span<double> doubles(unsigned n);
};

EXPMK_NOALLOC double leaf(double x) { return std::sqrt(std::fabs(x)); }

EXPMK_NOALLOC double kernel_clean(Ws& ws, std::span<const double> in) {
  std::span<double> scratch = ws.doubles(in.size());
  double total = 0.0;
  for (unsigned i = 0; i < in.size(); ++i) {
    scratch[i] = leaf(in[i]);
    total += std::max(scratch[i], 0.0);
  }
  return total;
}

EXPMK_NOALLOC double kernel_throw_exempt(std::span<const double> in) {
  if (in.empty()) {
    throw std::invalid_argument("empty input");  // cold path: exempt
  }
  return in[0];
}

std::vector<double> materialize(std::span<const double> in);

EXPMK_NOALLOC double kernel_justified_capture(std::span<const double> in,
                                              bool capture) {
  if (capture) {
    // NOLINTNEXTLINE(expmk-no-alloc-kernel): capture path — caller opted in
    return materialize(in).size();
  }
  return in.size();
}

}  // namespace fixture
