// The three expmk contract checks over the token stream, plus the
// NOLINT-with-justification suppression filter. See expmk_tidy.hpp for
// the check semantics and tools/expmk-tidy/README.md for the precision
// trade-offs vs the clang-tidy plugin.

#include "expmk_tidy.hpp"

#include <algorithm>

namespace expmk_tidy {

namespace {

// ------------------------------------------------------------- shared sets

/// Keywords that make `kw(...)` a non-call (control flow, casts, traits).
bool stmt_like(const std::string& t) {
  static const std::set<std::string> kw = {
      "return", "co_return", "throw", "new", "delete", "else",
      "do",     "goto",      "case",
  };
  return kw.count(t) > 0;
}

bool non_callee_keyword(const std::string& t) {
  static const std::set<std::string> kw = {
      "if",       "for",       "while",    "switch",   "catch",
      "sizeof",   "alignof",   "alignas",  "decltype", "noexcept",
      "static_assert", "assert", "typeid",  "requires", "asm",
      "__attribute__", "__declspec",
      "void",     "int",       "double",   "float",    "bool",
      "char",     "long",      "short",    "unsigned", "signed",
      "auto",     "operator",
  };
  return kw.count(t) > 0;
}

/// Known non-allocating free functions / constructor-casts: std math,
/// raw-memory ops, in-place algorithms, fundamental-type casts. Anything
/// not here and not EXPMK_NOALLOC is diagnosed — the conservative default
/// that forces annotations down the call tree.
const std::set<std::string>& builtin_allow() {
  static const std::set<std::string> allow = {
      // math
      "abs", "fabs", "sqrt", "cbrt", "log", "log2", "log10", "log1p",
      "exp", "exp2", "expm1", "pow", "fmod", "fma", "floor", "ceil",
      "round", "trunc", "lround", "llround", "nearbyint", "copysign",
      "signbit", "isnan", "isinf", "isfinite", "hypot", "erf", "erfc",
      "lgamma", "tgamma", "sin", "cos", "tan", "asin", "acos", "atan",
      "atan2", "sinh", "cosh", "tanh", "ldexp", "frexp", "modf",
      "nextafter", "fdim", "fmax", "fmin",
      // <algorithm>/<numeric>, in-place only (NOT stable_sort or
      // inplace_merge, which may allocate a temporary buffer)
      "min", "max", "clamp", "minmax", "min_element", "max_element",
      "minmax_element", "sort", "nth_element", "partial_sort",
      "lower_bound", "upper_bound", "equal_range", "binary_search",
      "fill", "fill_n", "copy", "copy_n", "copy_backward", "find",
      "find_if", "count", "count_if", "accumulate", "inner_product",
      "partial_sum", "iota", "reverse", "rotate", "unique", "remove",
      "remove_if", "swap_ranges", "equal", "lexicographical_compare",
      "push_heap", "pop_heap", "make_heap", "sort_heap", "midpoint",
      "lerp", "gcd", "lcm", "distance", "advance", "next", "prev",
      "all_of", "any_of", "none_of", "for_each", "transform",
      "exchange",
      // utility / raw memory
      "move", "forward", "swap", "get", "tie", "as_const", "addressof",
      "to_underlying", "declval", "memcpy", "memmove", "memset",
      "memcmp", "strlen", "launder", "assume_aligned", "bit_cast",
      // numeric_limits observers
      "quiet_NaN", "infinity", "epsilon", "lowest", "denorm_min",
      "signaling_NaN", "round_error",
      // fundamental-type constructor casts and std integer aliases
      "size_t", "ptrdiff_t", "int8_t", "int16_t", "int32_t", "int64_t",
      "uint8_t", "uint16_t", "uint32_t", "uint64_t", "uintptr_t",
      "intptr_t", "ssize",
  };
  return allow;
}

/// Container members that (re)allocate. A member call not on this list is
/// presumed non-allocating (accessors) — the documented unsoundness the
/// AST plugin closes.
bool allocating_member(const std::string& m) {
  static const std::set<std::string> deny = {
      "push_back", "emplace_back", "emplace", "push_front",
      "emplace_front", "insert", "insert_or_assign", "try_emplace",
      "resize", "reserve", "assign", "append", "substr",
      "shrink_to_fit", "merge", "splice",
  };
  return deny.count(m) > 0;
}

/// Types whose construction (or converting assignment) heap-allocates.
/// Any appearance inside an EXPMK_NOALLOC body is diagnosed — kernels
/// deal in spans and PODs, so the names simply should not occur.
/// (`std::set`/`std::array` are omitted: `set`/`array` are too generic
/// for a token match; the AST plugin covers those.)
bool allocating_type(const std::string& t) {
  static const std::set<std::string> deny = {
      "vector", "basic_string", "string", "deque", "list", "map",
      "multimap", "multiset", "function", "unique_ptr", "shared_ptr",
      "make_unique", "make_shared", "to_string", "stringstream",
      "ostringstream", "istringstream", "stoi", "stod", "stoul",
      "DiscreteDistribution",
  };
  return deny.count(t) > 0;
}

/// Workspace lease methods (exp/workspace.hpp) on a receiver named like a
/// workspace. Keeping the receiver-name set tight avoids false-aliasing
/// with unrelated members named `atoms`/`ints`.
bool lease_method(const std::string& m) {
  static const std::set<std::string> leases = {"doubles", "u32",   "u64",
                                               "moments", "ints", "atoms"};
  return leases.count(m) > 0;
}
bool workspace_receiver(const std::string& r) {
  return r == "ws" || r == "workspace" || r == "ws_" ||
         (r.size() > 3 && r.compare(r.size() - 3, 3, "_ws") == 0);
}

/// Span members whose result aliases the lease storage.
bool aliasing_member(const std::string& m) {
  return m == "subspan" || m == "first" || m == "last" || m == "data";
}

bool ends_with_underscore(const std::string& s) {
  return !s.empty() && s.back() == '_';
}

// ------------------------------------------------------------ check bodies

void check_noalloc(const ParsedFile& f, const std::set<std::string>& annotated,
                   const std::set<std::string>& allow,
                   std::vector<Diagnostic>& diags) {
  for (const FunctionDef& fn : f.functions) {
    if (!fn.annotated || fn.body_begin >= fn.body_end) continue;
    // Local callable bindings (`auto name = [..] ...`): calls through the
    // name are fine — the lambda body sits inside this annotated body and
    // is scanned in place.
    std::set<std::string> local_callables;
    for (std::size_t i = fn.body_begin; i + 2 < fn.body_end; ++i) {
      if (f.code[i].kind == TokKind::Ident && f.code[i + 1].text == "=" &&
          f.code[i + 2].text == "[") {
        local_callables.insert(f.code[i].text);
      }
    }
    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      const Token& t = f.code[i];
      if (t.kind != TokKind::Ident) continue;
      if (t.text == "throw") {
        // Cold failure path: allocation inside a throw-expression aborts
        // the evaluation and is exempt from the steady-state contract.
        int depth = 0;
        while (i < fn.body_end &&
               !(f.code[i].text == ";" && depth == 0)) {
          if (f.code[i].text == "(") ++depth;
          if (f.code[i].text == ")") --depth;
          ++i;
        }
        continue;
      }
      if (t.text == "new" || t.text == "delete") {
        diags.push_back({f.path, t.line, t.col, "expmk-no-alloc-kernel",
                         "'" + t.text +
                             "' expression in an EXPMK_NOALLOC kernel"});
        continue;
      }
      if (allocating_type(t.text)) {
        diags.push_back({f.path, t.line, t.col, "expmk-no-alloc-kernel",
                         "allocating type '" + t.text +
                             "' in an EXPMK_NOALLOC kernel"});
        continue;
      }
      const bool is_call = i + 1 < fn.body_end && f.code[i + 1].text == "(";
      if (!is_call) continue;
      const Token* prev = i > fn.body_begin ? &f.code[i - 1] : nullptr;
      const bool member = prev && (prev->text == "." || prev->text == "->");
      if (member) {
        if (allocating_member(t.text)) {
          diags.push_back({f.path, t.line, t.col, "expmk-no-alloc-kernel",
                           "allocating container call '" + t.text +
                               "' in an EXPMK_NOALLOC kernel"});
        }
        continue;
      }
      if (non_callee_keyword(t.text) || stmt_like(t.text)) continue;
      // Declaration heuristic: `Type name(args)` — the name is preceded by
      // another identifier or a type-ish closer, not an operator.
      if (prev && ((prev->kind == TokKind::Ident && !stmt_like(prev->text) &&
                    prev->text != "EXPMK_NOALLOC") ||
                   prev->text == ">" || prev->text == "*" ||
                   prev->text == "&")) {
        continue;
      }
      if (annotated.count(t.text) || allow.count(t.text) ||
          local_callables.count(t.text)) {
        continue;
      }
      // SIMD intrinsics and compiler builtins never touch the heap.
      if (t.text.rfind("_mm", 0) == 0 || t.text.rfind("__builtin", 0) == 0) {
        continue;
      }
      diags.push_back({f.path, t.line, t.col, "expmk-no-alloc-kernel",
                       "call to '" + t.text +
                           "' which is neither EXPMK_NOALLOC nor on the "
                           "no-alloc allowlist"});
    }
  }
}

void check_determinism(const ParsedFile& f, std::vector<Diagnostic>& diags) {
  const bool is_timer_file =
      f.path.find("util/timer") != std::string::npos;
  auto diag = [&](const Token& t, const std::string& msg) {
    diags.push_back({f.path, t.line, t.col, "expmk-determinism", msg});
  };
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const Token& t = f.code[i];
    if (t.kind != TokKind::Ident) continue;
    const bool call = i + 1 < f.code.size() && f.code[i + 1].text == "(";
    const Token* prev = i > 0 ? &f.code[i - 1] : nullptr;
    const bool qualified = prev && prev->text == "::";
    const bool member = prev && (prev->text == "." || prev->text == "->");
    if (call && (t.text == "rand" || t.text == "srand" ||
                 t.text == "drand48" || t.text == "random_shuffle")) {
      diag(t, "'" + t.text +
                  "' is nondeterministic; draw from the seeded engine RNG "
                  "(prob::McRng) instead");
      continue;
    }
    if (t.text == "random_device") {
      diag(t, "std::random_device breaks run-to-run reproducibility; seeds "
              "must come from EvalOptions::seed");
      continue;
    }
    if (t.text == "system_clock") {
      diag(t, "wall-clock source; timing belongs in the `seconds` fields "
              "via util::Timer (steady_clock)");
      continue;
    }
    if (call && t.text == "now" && !is_timer_file) {
      diag(t, "clock read outside util/timer — wall-clock reads are "
              "reserved for the `seconds` timing fields");
      continue;
    }
    if (call && (t.text == "gettimeofday" || t.text == "clock_gettime")) {
      diag(t, "'" + t.text + "' is a wall-clock read; use util::Timer");
      continue;
    }
    if (call && (t.text == "time" || t.text == "clock") && !member &&
        (prev == nullptr || prev->kind != TokKind::Ident)) {
      diag(t, "'" + t.text + "(...)' is a wall-clock read; use util::Timer");
      continue;
    }
    if (t.text == "unordered_map" || t.text == "unordered_set" ||
        t.text == "unordered_multimap" || t.text == "unordered_multiset") {
      diag(t, "unordered container in the deterministic core — iteration "
              "order is unspecified and must not feed result values; use a "
              "sorted container or justify with NOLINT");
      continue;
    }
    if (call && qualified &&
        (t.text == "reduce" || t.text == "transform_reduce")) {
      diag(t, "std::" + t.text +
                  " reassociates the accumulation; results must keep the "
                  "fixed accumulator order (see the 4-accumulator contract "
                  "in prob/dist_kernels.hpp)");
      continue;
    }
    if (qualified && t.text == "execution") {
      diag(t, "std::execution policies may reassociate reductions and "
              "break bit-identity across runs");
      continue;
    }
  }
  for (const Token& pp : f.pp) {
    const std::string& s = pp.text;
    const bool reassoc =
        s.find("fast-math") != std::string::npos ||
        s.find("reassociate") != std::string::npos ||
        (s.find("fp_contract") != std::string::npos &&
         s.find("fast") != std::string::npos) ||
        (s.find("fp contract") != std::string::npos &&
         s.find("fast") != std::string::npos) ||
        (s.find("omp") != std::string::npos &&
         s.find("reduction") != std::string::npos) ||
        (s.find("GCC optimize") != std::string::npos);
    if (reassoc) {
      diags.push_back({f.path, pp.line, pp.col, "expmk-determinism",
                       "pragma enables floating-point reassociation or an "
                       "unordered reduction — breaks the fixed-accumulator "
                       "bit-identity contract"});
    }
  }
}

void check_lease_escape(const ParsedFile& f, std::vector<Diagnostic>& diags) {
  auto diag = [&](const Token& t, const std::string& msg) {
    diags.push_back({f.path, t.line, t.col, "expmk-lease-escape", msg});
  };
  for (const FunctionDef& fn : f.functions) {
    if (fn.body_begin >= fn.body_end) continue;

    // Pass 1: names bound (or rebound) to a workspace lease.
    std::set<std::string> leases;
    for (std::size_t i = fn.body_begin; i + 3 < fn.body_end; ++i) {
      if (f.code[i].kind == TokKind::Ident &&
          workspace_receiver(f.code[i].text) && f.code[i + 1].text == "." &&
          lease_method(f.code[i + 2].text) && f.code[i + 3].text == "(") {
        // Walk back over the initializer to `name =`.
        for (std::size_t back = 1; back <= 8 && i >= fn.body_begin + back;
             ++back) {
          const Token& eq = f.code[i - back];
          if (eq.text == ";" || eq.text == "{" || eq.text == "}") break;
          if (eq.text == "=" && i >= fn.body_begin + back + 1) {
            const Token& var = f.code[i - back - 1];
            if (var.kind == TokKind::Ident) leases.insert(var.text);
            break;
          }
        }
      }
    }

    auto is_direct_lease = [&](std::size_t i) {
      return f.code[i].kind == TokKind::Ident &&
             workspace_receiver(f.code[i].text) &&
             i + 3 < fn.body_end && f.code[i + 1].text == "." &&
             lease_method(f.code[i + 2].text) && f.code[i + 3].text == "(";
    };
    /// Lease identifier used as a span value (not an element read):
    /// `v;` `v,` `v)` or `v.subspan/first/last/data(...)`.
    auto escapes_at = [&](std::size_t i) {
      if (f.code[i].kind != TokKind::Ident || !leases.count(f.code[i].text))
        return false;
      if (i + 1 >= fn.body_end) return false;
      const std::string& nxt = f.code[i + 1].text;
      if (nxt == ";" || nxt == "," || nxt == ")") return true;
      return nxt == "." && i + 2 < fn.body_end &&
             aliasing_member(f.code[i + 2].text);
    };

    // Pass 2: escapes.
    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      const Token& t = f.code[i];
      // return <lease...>; / return ws.doubles(...);
      if (t.kind == TokKind::Ident && t.text == "return" &&
          i + 1 < fn.body_end) {
        const std::size_t e = i + 1;
        if (f.code[e].kind == TokKind::Ident && leases.count(f.code[e].text) &&
            escapes_at(e)) {
          diag(f.code[e], "workspace lease '" + f.code[e].text +
                              "' returned from its frame scope — the span "
                              "dangles once the Workspace::Frame closes");
          continue;
        }
        if (is_direct_lease(e)) {
          diag(f.code[e], "workspace lease returned from its frame scope — "
                          "the span dangles once the Workspace::Frame "
                          "closes");
          continue;
        }
      }
      // member_ = <lease> / this->member = <lease>
      if (t.text == "=" && i > fn.body_begin) {
        const Token& lhs = f.code[i - 1];
        const bool this_member =
            i >= fn.body_begin + 3 && f.code[i - 2].text == "->" &&
            f.code[i - 3].text == "this";
        const bool named_member =
            lhs.kind == TokKind::Ident && ends_with_underscore(lhs.text) &&
            (i < fn.body_begin + 2 ||
             (f.code[i - 2].text != "." && f.code[i - 2].text != "->"));
        if ((this_member || named_member) && lhs.kind == TokKind::Ident) {
          for (std::size_t j = i + 1;
               j < fn.body_end && f.code[j].text != ";"; ++j) {
            if (escapes_at(j) || is_direct_lease(j)) {
              diag(lhs, "workspace lease stored into member '" + lhs.text +
                            "' — members outlive the Workspace::Frame the "
                            "lease belongs to");
              break;
            }
          }
        }
      }
      // Escaping closure capturing a lease.
      if (t.text == "[" && i > fn.body_begin) {
        const Token& before = f.code[i - 1];
        const bool expr_pos = before.text == "=" || before.text == "(" ||
                              before.text == "," || before.text == "{" ||
                              before.text == ";" || before.text == "return";
        if (!expr_pos) continue;
        // Find the matching ']' and require a lambda shape after it.
        std::size_t close = i + 1;
        int bdepth = 1;
        while (close < fn.body_end && bdepth > 0) {
          if (f.code[close].text == "[") ++bdepth;
          if (f.code[close].text == "]") --bdepth;
          ++close;
        }
        if (close >= fn.body_end) continue;
        const std::string& after = f.code[close].text;
        if (after != "(" && after != "{" && after != "mutable" &&
            after != "->") {
          continue;
        }
        bool default_capture = false;
        bool captures_lease = false;
        for (std::size_t j = i + 1; j + 1 < close; ++j) {
          if (f.code[j].text == "&" || f.code[j].text == "=")
            default_capture = true;
          if (f.code[j].kind == TokKind::Ident &&
              leases.count(f.code[j].text)) {
            captures_lease = true;
          }
        }
        // Escaping context: returned, stored into a member, or bound to a
        // std::function variable.
        bool escaping = before.text == "return";
        if (before.text == "=" && i >= fn.body_begin + 2) {
          const Token& lhs = f.code[i - 2];
          if (lhs.kind == TokKind::Ident &&
              (ends_with_underscore(lhs.text) ||
               (i >= fn.body_begin + 3 && f.code[i - 3].text == "->" &&
                f.code[i - 4].text == "this"))) {
            escaping = true;
          }
          for (std::size_t back = 2; back <= 10 && i >= fn.body_begin + back;
               ++back) {
            const Token& ty = f.code[i - back];
            if (ty.text == ";" || ty.text == "{" || ty.text == "}") break;
            if (ty.kind == TokKind::Ident && ty.text == "function") {
              escaping = true;
              break;
            }
          }
        }
        if (!escaping) continue;
        if (!captures_lease && default_capture) {
          // Default capture: scan the lambda body for lease references.
          std::size_t body = close;
          while (body < fn.body_end && f.code[body].text != "{") ++body;
          int depth = 0;
          for (std::size_t j = body; j < fn.body_end; ++j) {
            if (f.code[j].text == "{") ++depth;
            if (f.code[j].text == "}") {
              if (--depth == 0) break;
            }
            if (f.code[j].kind == TokKind::Ident &&
                leases.count(f.code[j].text)) {
              captures_lease = true;
              break;
            }
          }
        }
        if (captures_lease) {
          diag(t, "workspace lease captured by a closure that escapes its "
                  "frame scope (returned / stored) — the span dangles when "
                  "the closure runs");
        }
      }
    }
  }
}

// ------------------------------------------------------------- suppression

/// Parses NOLINT / NOLINTNEXTLINE markers in `comment`. Returns true when
/// `check` is suppressed; expmk checks additionally REQUIRE a non-empty
/// justification after a ':' following the marker (else the suppression
/// is ignored).
bool comment_suppresses(const std::string& comment, const std::string& check,
                        bool nextline_only) {
  std::size_t pos = 0;
  while ((pos = comment.find("NOLINT", pos)) != std::string::npos) {
    std::size_t p = pos + 6;
    const bool is_nextline = comment.compare(pos, 14, "NOLINTNEXTLINE") == 0;
    if (is_nextline) p = pos + 14;
    if (nextline_only != is_nextline) {
      pos = p;
      continue;
    }
    bool applies = true;  // bare NOLINT applies to every check
    if (p < comment.size() && comment[p] == '(') {
      const std::size_t close = comment.find(')', p);
      if (close == std::string::npos) {
        pos = p;
        continue;
      }
      const std::string list = comment.substr(p + 1, close - p - 1);
      applies = false;
      std::size_t start = 0;
      while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        std::string entry = list.substr(start, comma - start);
        entry.erase(0, entry.find_first_not_of(" \t"));
        entry.erase(entry.find_last_not_of(" \t") + 1);
        if (entry == check ||
            (!entry.empty() && entry.back() == '*' &&
             check.compare(0, entry.size() - 1, entry, 0,
                           entry.size() - 1) == 0)) {
          applies = true;
          break;
        }
        start = comma + 1;
      }
      p = close + 1;
    }
    if (applies) {
      if (check.rfind("expmk-", 0) == 0) {
        // Justification required: ':' then non-space text.
        std::size_t q = p;
        while (q < comment.size() && (comment[q] == ' ' || comment[q] == '\t'))
          ++q;
        if (q >= comment.size() || comment[q] != ':') {
          pos = p;
          continue;  // unjustified — does not suppress an expmk check
        }
        ++q;
        while (q < comment.size() && (comment[q] == ' ' || comment[q] == '\t'))
          ++q;
        if (q >= comment.size()) {
          pos = p;
          continue;
        }
      }
      return true;
    }
    pos = p;
  }
  return false;
}

bool suppressed(const ParsedFile& f, const Diagnostic& d) {
  auto same = f.comments.find(d.line);
  if (same != f.comments.end() &&
      comment_suppresses(same->second, d.check, /*nextline_only=*/false)) {
    return true;
  }
  auto above = f.comments.find(d.line - 1);
  return above != f.comments.end() &&
         comment_suppresses(above->second, d.check, /*nextline_only=*/true);
}

}  // namespace

std::vector<Diagnostic> analyze(const std::vector<ParsedFile>& files,
                                const Config& config) {
  std::set<std::string> annotated;
  for (const ParsedFile& f : files) {
    for (const FunctionDef& fn : f.functions) {
      if (fn.annotated) annotated.insert(fn.name);
    }
  }
  std::set<std::string> allow = builtin_allow();
  allow.insert(config.extra_allow.begin(), config.extra_allow.end());

  std::vector<Diagnostic> diags;
  for (const ParsedFile& f : files) {
    const bool is_src = config.src_filter.empty() ||
                        f.path.find(config.src_filter) != std::string::npos;
    if (config.checks.count("expmk-no-alloc-kernel")) {
      check_noalloc(f, annotated, allow, diags);
    }
    if (is_src && config.checks.count("expmk-determinism")) {
      check_determinism(f, diags);
    }
    if (is_src && config.checks.count("expmk-lease-escape")) {
      check_lease_escape(f, diags);
    }
  }

  std::vector<Diagnostic> kept;
  for (const Diagnostic& d : diags) {
    const auto file = std::find_if(
        files.begin(), files.end(),
        [&](const ParsedFile& f) { return f.path == d.path; });
    if (file != files.end() && suppressed(*file, d)) continue;
    kept.push_back(d);
  }
  std::sort(kept.begin(), kept.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.col < b.col;
            });
  return kept;
}

}  // namespace expmk_tidy
