// expmk-tidy — driver for the fallback contract checker.
//
// Usage:
//   expmk-tidy [--checks=a,b,c] [--allowlist FILE] [--src-filter STR]
//              [--list-checks] PATH...
//
// PATH entries may be files or directories (recursed for
// .hpp/.h/.cpp/.cc). Exit code is 1 when any diagnostic survives NOLINT
// filtering, 0 otherwise — so the ctest/CI invocation doubles as the
// build gate. `--src-filter ""` applies the determinism and lease checks
// to every input file (the fixture suite uses this); the default ("/src/")
// matches the repo convention that only the library core is under the
// determinism contract.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "expmk_tidy.hpp"

namespace fs = std::filesystem;

namespace {

bool source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  expmk_tidy::Config config;
  std::vector<fs::path> inputs;
  std::string allowlist_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-checks") {
      for (const std::string& c : config.checks) std::cout << c << "\n";
      return 0;
    }
    if (arg.rfind("--checks=", 0) == 0) {
      config.checks.clear();
      std::stringstream ss(arg.substr(9));
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (!item.empty()) config.checks.insert(item);
      }
      continue;
    }
    if (arg == "--allowlist" && i + 1 < argc) {
      allowlist_path = argv[++i];
      continue;
    }
    if (arg == "--src-filter" && i + 1 < argc) {
      config.src_filter = argv[++i];
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "expmk-tidy: unknown option '" << arg << "'\n";
      return 2;
    }
    inputs.emplace_back(arg);
  }
  if (inputs.empty()) {
    std::cerr << "usage: expmk-tidy [--checks=...] [--allowlist FILE] "
                 "[--src-filter STR] PATH...\n";
    return 2;
  }

  if (!allowlist_path.empty()) {
    std::ifstream in(allowlist_path);
    if (!in) {
      std::cerr << "expmk-tidy: cannot read allowlist '" << allowlist_path
                << "'\n";
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      line.erase(0, line.find_first_not_of(" \t\r"));
      line.erase(line.find_last_not_of(" \t\r") + 1);
      if (!line.empty()) config.extra_allow.insert(line);
    }
  }

  std::vector<fs::path> files;
  for (const fs::path& p : inputs) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && source_file(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::cerr << "expmk-tidy: no such file or directory: " << p << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<expmk_tidy::ParsedFile> parsed;
  parsed.reserve(files.size());
  for (const fs::path& p : files) {
    parsed.push_back(
        expmk_tidy::parse_file(p.generic_string(), read_file(p)));
  }

  const std::vector<expmk_tidy::Diagnostic> diags =
      expmk_tidy::analyze(parsed, config);
  for (const auto& d : diags) std::cout << expmk_tidy::format(d) << "\n";
  std::cout << "expmk-tidy: " << diags.size() << " warning(s) across "
            << files.size() << " file(s)\n";
  return diags.empty() ? 0 : 1;
}
