// tools/expmk-tidy/lite/expmk_tidy.hpp
//
// The dependency-free fallback implementation of the expmk contract
// checks — the same three checks the clang-tidy plugin
// (tools/expmk-tidy/plugin/) implements over the AST, expressed over a
// C++ token stream so they run on any toolchain, including containers
// and CI runners without clang dev headers. The plugin is the sound,
// AST-accurate implementation; this one is the always-available
// enforcement backstop wired into ctest (see tools/expmk-tidy/README.md
// for the precision differences).
//
// Checks:
//   expmk-no-alloc-kernel  EXPMK_NOALLOC function bodies must not
//                          allocate: no new/delete, no allocating
//                          container-growth member calls, every free
//                          callee annotated or allowlisted. Throw
//                          statements are exempt (cold failure path).
//   expmk-determinism      Inside src/: no rand()/random_device/wall-
//                          clock reads outside util/timer, no unordered
//                          containers, no reassociating floating-point
//                          reductions (std::reduce, execution policies,
//                          fast-math/reassociation pragmas).
//   expmk-lease-escape     A Workspace lease span must not outlive its
//                          frame: no returning a lease (or a subspan /
//                          data pointer of one), no storing one into a
//                          member, no capturing one in a closure that is
//                          itself returned or stored.
//
// Suppression: clang-tidy-style `// NOLINT(check)` on the diagnosed line
// or `// NOLINTNEXTLINE(check)` on the line above — but for expmk checks
// a justification is REQUIRED after a colon:
//     // NOLINT(expmk-no-alloc-kernel): capture path, caller opted in
// A bare NOLINT without justification does not suppress an expmk check.

#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace expmk_tidy {

// ----------------------------------------------------------------- lexer

enum class TokKind { Ident, Number, String, CharLit, Punct, Comment, PP, End };

struct Token {
  TokKind kind = TokKind::End;
  std::string text;
  int line = 1;
  int col = 1;
};

/// Tokenizes C++ source. Comments and preprocessor directives are
/// returned as single tokens (a PP directive spans its backslash
/// continuations); string/char literals (including raw strings) are
/// opaque single tokens, so nothing inside literals or comments can fake
/// a code pattern.
std::vector<Token> lex(const std::string& source);

// --------------------------------------------------------------- structure

/// One function definition found by the structural pass.
struct FunctionDef {
  std::string name;        ///< unqualified name (last identifier before '(')
  bool annotated = false;  ///< decl-specifiers contain EXPMK_NOALLOC
  std::size_t decl_begin = 0;  ///< first code-token index of the declaration
  std::size_t body_begin = 0;  ///< code-token index just past the '{'
  std::size_t body_end = 0;    ///< code-token index of the matching '}'
};

/// A lexed file split into the streams the checks consume.
struct ParsedFile {
  std::string path;
  std::vector<Token> code;         ///< comments / PP directives stripped
  std::vector<Token> pp;           ///< preprocessor directives
  std::map<int, std::string> comments;  ///< line -> concatenated comments
  std::vector<FunctionDef> functions;
};

ParsedFile parse_file(std::string path, const std::string& source);

// ------------------------------------------------------------- diagnostics

struct Diagnostic {
  std::string path;
  int line = 1;
  int col = 1;
  std::string check;    ///< e.g. "expmk-no-alloc-kernel"
  std::string message;
};

/// `path:line:col: warning: message [check]`
std::string format(const Diagnostic& d);

// ---------------------------------------------------------------- analysis

struct Config {
  /// Checks to run (default: all three).
  std::set<std::string> checks = {"expmk-no-alloc-kernel",
                                  "expmk-determinism",
                                  "expmk-lease-escape"};
  /// expmk-determinism / expmk-lease-escape apply only to files whose
  /// path contains this substring ("" = every input file). The no-alloc
  /// check always applies: it is annotation-driven.
  std::string src_filter = "/src/";
  /// Extra allowlisted no-alloc callees (merged with the builtin set);
  /// loaded from tools/expmk-tidy/expmk-tidy.allow by the driver.
  std::set<std::string> extra_allow;
};

/// Runs the configured checks over the parsed files. Annotation
/// collection is global (pass 1 over every file), so a kernel may call an
/// EXPMK_NOALLOC function declared in another header. NOLINT suppression
/// (with the justification requirement) is applied before returning.
std::vector<Diagnostic> analyze(const std::vector<ParsedFile>& files,
                                const Config& config);

}  // namespace expmk_tidy
