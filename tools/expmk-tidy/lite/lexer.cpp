// C++ tokenizer + structural pass for the expmk-tidy fallback checker.
//
// The lexer is deliberately literal-safe: comments, string literals
// (including raw strings) and char literals become opaque single tokens,
// so no check can be fooled by code-shaped text inside them. The
// structural pass is a declaration-oriented scanner — it does not parse
// C++, it brace-matches: at namespace/class scope each declaration is
// consumed until `;` (no body) or `{`, and the kind of the `{` is decided
// from the declaration tokens seen so far (namespace / type / initializer
// / function body). Good enough to find every function definition in this
// codebase; fixture tests in tools/expmk-tidy/test/ pin the behavior.

#include "expmk_tidy.hpp"

#include <array>
#include <cctype>

namespace expmk_tidy {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-char punctuators the checks care about structurally. Longest
/// match first.
constexpr std::array<const char*, 12> kPuncts = {
    "->*", "::", "->", "<<=", ">>=", "+=", "-=", "*=", "/=", "&&", "||",
    "==",
};

}  // namespace

std::vector<Token> lex(const std::string& s) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;
  int col = 1;
  const std::size_t n = s.size();

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (s[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };

  auto push = [&](TokKind kind, std::size_t begin, std::size_t end, int l,
                  int c) {
    out.push_back(Token{kind, s.substr(begin, end - begin), l, c});
  };

  while (i < n) {
    const char c = s[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    const int tl = line;
    const int tc = col;
    const std::size_t begin = i;

    // Preprocessor directive: only when '#' starts the line (modulo
    // whitespace, which `col` tracks approximately via a lookback).
    if (c == '#') {
      bool line_start = true;
      for (std::size_t k = begin; k-- > 0;) {
        if (s[k] == '\n') break;
        if (s[k] != ' ' && s[k] != '\t') {
          line_start = false;
          break;
        }
      }
      if (line_start) {
        std::size_t end = begin;
        while (end < n) {
          if (s[end] == '\n' && (end == 0 || s[end - 1] != '\\')) break;
          ++end;
        }
        advance(end - begin);
        push(TokKind::PP, begin, i, tl, tc);
        continue;
      }
      advance(1);
      push(TokKind::Punct, begin, i, tl, tc);
      continue;
    }

    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      std::size_t end = begin;
      while (end < n && s[end] != '\n') ++end;
      advance(end - begin);
      push(TokKind::Comment, begin, i, tl, tc);
      continue;
    }
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      std::size_t end = begin + 2;
      while (end + 1 < n && !(s[end] == '*' && s[end + 1] == '/')) ++end;
      end = (end + 1 < n) ? end + 2 : n;
      advance(end - begin);
      push(TokKind::Comment, begin, i, tl, tc);
      continue;
    }

    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && s[i + 1] == '"') {
      std::size_t d = i + 2;
      std::string delim;
      while (d < n && s[d] != '(') delim += s[d++];
      const std::string closer = ")" + delim + "\"";
      const std::size_t close = s.find(closer, d);
      const std::size_t end = close == std::string::npos ? n : close + closer.size();
      advance(end - begin);
      push(TokKind::String, begin, i, tl, tc);
      continue;
    }

    if (c == '"' || c == '\'') {
      std::size_t end = begin + 1;
      while (end < n && s[end] != c) {
        if (s[end] == '\\') ++end;
        ++end;
      }
      if (end < n) ++end;
      advance(end - begin);
      push(c == '"' ? TokKind::String : TokKind::CharLit, begin, i, tl, tc);
      continue;
    }

    if (ident_start(c)) {
      std::size_t end = begin;
      while (end < n && ident_char(s[end])) ++end;
      advance(end - begin);
      push(TokKind::Ident, begin, i, tl, tc);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(s[i + 1])))) {
      std::size_t end = begin;
      while (end < n && (ident_char(s[end]) || s[end] == '.' ||
                         s[end] == '\'' ||
                         ((s[end] == '+' || s[end] == '-') && end > begin &&
                          (s[end - 1] == 'e' || s[end - 1] == 'E' ||
                           s[end - 1] == 'p' || s[end - 1] == 'P')))) {
        ++end;
      }
      advance(end - begin);
      push(TokKind::Number, begin, i, tl, tc);
      continue;
    }

    // Punctuation: longest multi-char match, else single char.
    std::size_t len = 1;
    for (const char* p : kPuncts) {
      const std::size_t pl = std::char_traits<char>::length(p);
      if (s.compare(i, pl, p) == 0) {
        len = pl;
        break;
      }
    }
    advance(len);
    push(TokKind::Punct, begin, i, tl, tc);
  }
  return out;
}

namespace {

/// Keywords that may directly precede a '(' without making it a call or a
/// function declarator.
bool non_callee_keyword(const std::string& t) {
  static const std::set<std::string> kw = {
      "if",       "for",      "while",   "switch",     "catch",
      "return",   "sizeof",   "alignof", "alignas",    "decltype",
      "noexcept", "throw",    "new",     "delete",     "static_assert",
      "void",     "int",      "double",  "float",      "bool",
      "char",     "long",     "short",   "unsigned",   "signed",
      "auto",     "const",    "constexpr", "typename", "template",
      "operator", "co_await", "co_return", "co_yield", "requires",
      "assert",   "case",     "__attribute__", "__declspec", "asm",
  };
  return kw.count(t) > 0;
}

struct Parser {
  const std::vector<Token>& code;
  std::vector<FunctionDef>& out;

  /// Skips a balanced {...}; `i` points at the '{' on entry, just past the
  /// matching '}' on exit.
  void skip_braces(std::size_t& i) {
    int depth = 0;
    while (i < code.size()) {
      if (code[i].text == "{") ++depth;
      if (code[i].text == "}") {
        --depth;
        if (depth == 0) {
          ++i;
          return;
        }
      }
      ++i;
    }
  }

  /// Parses declarations until the matching '}' of an open scope (or
  /// EOF). Call with `i` past the '{'; returns with `i` past the '}'.
  void parse_scope(std::size_t& i) {
    while (i < code.size()) {
      if (code[i].text == "}") {
        ++i;
        return;
      }
      parse_declaration(i);
    }
  }

  void parse_declaration(std::size_t& i) {
    const std::size_t decl_begin = i;
    int paren = 0;
    int bracket = 0;
    bool saw_eq = false;
    bool annotated = false;
    std::string kind_kw;           // first of namespace/class/struct/...
    std::size_t name_idx = std::string::npos;

    while (i < code.size()) {
      const Token& t = code[i];
      if (t.kind == TokKind::Ident) {
        if (t.text == "EXPMK_NOALLOC" && name_idx == std::string::npos) {
          annotated = true;
        }
        // Skip `template <...>` parameter lists wholesale: default
        // arguments (`= true`) would otherwise read as an initializer and
        // derail the declarator scan.
        if (t.text == "template" && i + 1 < code.size() &&
            code[i + 1].text == "<") {
          int angle = 0;
          ++i;  // at '<'
          while (i < code.size()) {
            const std::string& a = code[i].text;
            if (a == "<") ++angle;
            else if (a == "<<") angle += 2;
            else if (a == ">") --angle;
            else if (a == ">>") angle -= 2;
            else if (a == "(" || a == "[") {
              // Parenthesized chunk: comparisons inside can't be template
              // brackets; skip to the matching closer.
              int d = 0;
              while (i < code.size()) {
                const std::string& b = code[i].text;
                if (b == "(" || b == "[") ++d;
                if (b == ")" || b == "]") {
                  if (--d == 0) break;
                }
                ++i;
              }
            }
            ++i;
            if (angle <= 0) break;
          }
          continue;
        }
        if (kind_kw.empty() && paren == 0 &&
            (t.text == "namespace" || t.text == "class" ||
             t.text == "struct" || t.text == "union" || t.text == "enum")) {
          // A type keyword counts only before the declarator name; after
          // a '(' it is a parameter ("struct tm*"-style, not used here).
          kind_kw = t.text;
        }
        ++i;
        continue;
      }
      if (t.text == "(") {
        if (paren == 0 && bracket == 0 && !saw_eq &&
            name_idx == std::string::npos && i > decl_begin) {
          const Token& prev = code[i - 1];
          if (prev.kind == TokKind::Ident && !non_callee_keyword(prev.text)) {
            name_idx = i - 1;
          }
        }
        ++paren;
        ++i;
        continue;
      }
      if (t.text == ")") {
        --paren;
        ++i;
        continue;
      }
      if (t.text == "[") {
        ++bracket;
        ++i;
        continue;
      }
      if (t.text == "]") {
        --bracket;
        ++i;
        continue;
      }
      if (t.text == "=" && paren == 0 && bracket == 0) {
        saw_eq = true;
        ++i;
        continue;
      }
      if (t.text == ";" && paren == 0 && bracket == 0) {
        // Body-less declaration; EXPMK_NOALLOC prototypes still register
        // the name for callee resolution (analyze() reads `annotated` +
        // name with body_begin == body_end).
        if (annotated && name_idx != std::string::npos) {
          out.push_back(FunctionDef{code[name_idx].text, true, decl_begin,
                                    i, i});
        }
        ++i;
        return;
      }
      if (t.text == "{" && paren == 0 && bracket == 0) {
        if (saw_eq) {  // brace initializer: consume, keep scanning to ';'
          skip_braces(i);
          continue;
        }
        if (kind_kw == "namespace") {
          ++i;
          parse_scope(i);
          return;
        }
        if (kind_kw == "class" || kind_kw == "struct" || kind_kw == "union") {
          ++i;
          parse_scope(i);  // members may include method definitions
          continue;        // up to the trailing ';' (or a declarator)
        }
        if (kind_kw == "enum") {
          skip_braces(i);
          continue;
        }
        if (name_idx != std::string::npos) {
          FunctionDef fn;
          fn.name = code[name_idx].text;
          fn.annotated = annotated;
          fn.decl_begin = decl_begin;
          fn.body_begin = i + 1;
          std::size_t j = i;
          skip_braces(j);
          fn.body_end = j - 1;  // index of the matching '}'
          out.push_back(fn);
          i = j;
          return;
        }
        // Unknown block (extern "C", function-try, ...): recurse.
        ++i;
        parse_scope(i);
        return;
      }
      if (t.text == "}" && paren == 0 && bracket == 0) {
        return;  // scope end; parse_scope consumes it
      }
      ++i;
    }
  }
};

}  // namespace

ParsedFile parse_file(std::string path, const std::string& source) {
  ParsedFile f;
  f.path = std::move(path);
  for (Token& t : lex(source)) {
    switch (t.kind) {
      case TokKind::Comment: {
        std::string& slot = f.comments[t.line];
        if (!slot.empty()) slot += ' ';
        slot += t.text;
        break;
      }
      case TokKind::PP:
        f.pp.push_back(std::move(t));
        break;
      default:
        f.code.push_back(std::move(t));
    }
  }
  Parser parser{f.code, f.functions};
  std::size_t i = 0;
  while (i < f.code.size()) {
    if (f.code[i].text == "}") {
      ++i;  // stray close (unbalanced fixture); keep scanning
      continue;
    }
    parser.parse_declaration(i);
  }
  return f;
}

std::string format(const Diagnostic& d) {
  return d.path + ":" + std::to_string(d.line) + ":" + std::to_string(d.col) +
         ": warning: " + d.message + " [" + d.check + "]";
}

}  // namespace expmk_tidy
