//===--- LeaseEscapeCheck.h - expmk-tidy ------------------------*- C++-*-===//
//
// expmk-lease-escape: a span leased from exp::Workspace (doubles / u32 /
// u64 / moments / ints / atoms) is valid only inside the
// Workspace::Frame scope that took it. Diagnose the three escape shapes
// that turn a lease into a dangling span:
//   * returning a lease (or a subspan/first/last/data view of one);
//   * storing a lease into a class member;
//   * capturing a lease in a closure that is itself returned or stored.
//
//===----------------------------------------------------------------------===//

#ifndef EXPMK_TIDY_LEASEESCAPECHECK_H
#define EXPMK_TIDY_LEASEESCAPECHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::expmk {

class LeaseEscapeCheck : public ClangTidyCheck {
public:
  LeaseEscapeCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace clang::tidy::expmk

#endif // EXPMK_TIDY_LEASEESCAPECHECK_H
