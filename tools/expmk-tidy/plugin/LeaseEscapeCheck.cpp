//===--- LeaseEscapeCheck.cpp - expmk-tidy --------------------------------===//

#include "LeaseEscapeCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::expmk {

namespace {

/// A call to one of Workspace's lease methods.
auto leaseCall() {
  return cxxMemberCallExpr(
      callee(cxxMethodDecl(
          hasAnyName("doubles", "u32", "u64", "moments", "ints", "atoms"),
          ofClass(cxxRecordDecl(hasName("::expmk::exp::Workspace"))))));
}

/// A lease, or a view that aliases one: lease.subspan(...) / .first() /
/// .last() / .data(), possibly via a variable initialized from a lease.
auto leaseOrAlias() {
  const auto LeaseVar = varDecl(hasInitializer(
      expr(anyOf(leaseCall(), hasDescendant(leaseCall())))));
  const auto LeaseRef = declRefExpr(to(LeaseVar));
  return expr(anyOf(
      leaseCall(), LeaseRef,
      cxxMemberCallExpr(
          callee(cxxMethodDecl(hasAnyName("subspan", "first", "last", "data"))),
          on(expr(anyOf(leaseCall(), LeaseRef))))));
}

} // namespace

void LeaseEscapeCheck::registerMatchers(MatchFinder *Finder) {
  // (1) return <lease or alias>;
  Finder->addMatcher(
      returnStmt(hasReturnValue(ignoringParenImpCasts(leaseOrAlias())))
          .bind("returnLease"),
      this);
  // (2) member = <lease or alias>  (operator= on a std::span member, or a
  // plain field of span type).
  Finder->addMatcher(
      cxxOperatorCallExpr(hasOverloadedOperatorName("="),
                          hasArgument(0, memberExpr(member(fieldDecl()))),
                          hasArgument(1, ignoringParenImpCasts(leaseOrAlias())))
          .bind("memberStore"),
      this);
  Finder->addMatcher(
      binaryOperator(hasOperatorName("="),
                     hasLHS(memberExpr(member(fieldDecl()))),
                     hasRHS(ignoringParenImpCasts(leaseOrAlias())))
          .bind("memberStore"),
      this);
  // (3) a closure capturing a lease variable, where the closure itself is
  // returned or stored into a member / std::function.
  const auto CapturesLease = lambdaExpr(hasAnyCapture(
      lambdaCapture(capturesVar(varDecl(hasInitializer(
          expr(anyOf(leaseCall(), hasDescendant(leaseCall())))))))));
  Finder->addMatcher(
      returnStmt(hasReturnValue(ignoringParenImpCasts(
                     expr(CapturesLease).bind("escapingLambda"))))
          .bind("lambdaReturn"),
      this);
  Finder->addMatcher(
      cxxOperatorCallExpr(hasOverloadedOperatorName("="),
                          hasArgument(0, memberExpr(member(fieldDecl()))),
                          hasArgument(1, expr(hasDescendant(
                                             expr(CapturesLease).bind(
                                                 "escapingLambda")))))
          .bind("lambdaStore"),
      this);
}

void LeaseEscapeCheck::check(const MatchFinder::MatchResult &Result) {
  if (const auto *R = Result.Nodes.getNodeAs<ReturnStmt>("returnLease")) {
    diag(R->getBeginLoc(),
         "workspace lease returned from its frame scope — the span dangles "
         "once the Workspace::Frame closes");
    return;
  }
  if (const auto *E = Result.Nodes.getNodeAs<Expr>("escapingLambda")) {
    diag(E->getBeginLoc(),
         "workspace lease captured by a closure that escapes its frame "
         "scope — the span dangles when the closure runs");
    return;
  }
  if (const auto *S = Result.Nodes.getNodeAs<Expr>("memberStore")) {
    diag(S->getBeginLoc(),
         "workspace lease stored into a member — members outlive the "
         "Workspace::Frame the lease belongs to");
  }
}

} // namespace clang::tidy::expmk
