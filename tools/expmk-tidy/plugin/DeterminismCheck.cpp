//===--- DeterminismCheck.cpp - expmk-tidy --------------------------------===//

#include "DeterminismCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Basic/SourceManager.h"

using namespace clang::ast_matchers;

namespace clang::tidy::expmk {

bool DeterminismCheck::inTimerFile(SourceLocation Loc,
                                   const SourceManager &SM) const {
  const StringRef File = SM.getFilename(SM.getSpellingLoc(Loc));
  return File.contains("util/timer");
}

void DeterminismCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::rand", "::srand",
                                              "::drand48", "::random",
                                              "::lrand48"))))
          .bind("entropyCall"),
      this);
  Finder->addMatcher(
      varDecl(hasType(namedDecl(hasName("::std::random_device"))))
          .bind("randomDevice"),
      this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(
                   hasName("now"),
                   anyOf(hasParent(cxxRecordDecl(hasAnyName(
                             "::std::chrono::system_clock",
                             "::std::chrono::steady_clock",
                             "::std::chrono::high_resolution_clock"))),
                         anything()))))
          .bind("clockNow"),
      this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(
                   hasAnyName("::time", "::clock", "::gettimeofday",
                              "::clock_gettime"))))
          .bind("cClock"),
      this);
  Finder->addMatcher(
      cxxForRangeStmt(
          hasRangeInit(expr(hasType(hasUnqualifiedDesugaredType(recordType(
              hasDeclaration(namedDecl(matchesName(
                  "^::std::unordered_(map|set|multimap|multiset)$")))))))))
          .bind("unorderedIter"),
      this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(
                   hasAnyName("::std::reduce", "::std::transform_reduce"))))
          .bind("reassocReduce"),
      this);
  Finder->addMatcher(
      declRefExpr(to(namedDecl(hasAnyName(
                      "::std::execution::par", "::std::execution::par_unseq",
                      "::std::execution::unseq"))))
          .bind("executionPolicy"),
      this);
}

void DeterminismCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;

  if (const auto *C = Result.Nodes.getNodeAs<CallExpr>("entropyCall")) {
    diag(C->getBeginLoc(),
         "nondeterministic entropy source; draw from the seeded engine RNG "
         "(prob::McRng) instead");
    return;
  }
  if (const auto *V = Result.Nodes.getNodeAs<VarDecl>("randomDevice")) {
    diag(V->getLocation(),
         "std::random_device breaks run-to-run reproducibility; seeds must "
         "come from EvalOptions::seed");
    return;
  }
  if (const auto *C = Result.Nodes.getNodeAs<CallExpr>("clockNow")) {
    if (!inTimerFile(C->getBeginLoc(), SM))
      diag(C->getBeginLoc(),
           "clock read outside util/timer — wall-clock reads are reserved "
           "for the `seconds` timing fields");
    return;
  }
  if (const auto *C = Result.Nodes.getNodeAs<CallExpr>("cClock")) {
    if (!inTimerFile(C->getBeginLoc(), SM))
      diag(C->getBeginLoc(), "C wall-clock read; use util::Timer");
    return;
  }
  if (const auto *F =
          Result.Nodes.getNodeAs<CXXForRangeStmt>("unorderedIter")) {
    diag(F->getBeginLoc(),
         "iteration over an unordered container — the order is unspecified "
         "and must not feed result values");
    return;
  }
  if (const auto *C = Result.Nodes.getNodeAs<CallExpr>("reassocReduce")) {
    diag(C->getBeginLoc(),
         "reassociating reduction; results must keep the fixed accumulator "
         "order (4-accumulator contract, prob/dist_kernels.hpp)");
    return;
  }
  if (const auto *E =
          Result.Nodes.getNodeAs<DeclRefExpr>("executionPolicy")) {
    diag(E->getBeginLoc(),
         "std::execution policies may reassociate reductions and break "
         "bit-identity across runs");
  }
}

} // namespace clang::tidy::expmk
