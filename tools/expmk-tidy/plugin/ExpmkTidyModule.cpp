//===--- ExpmkTidyModule.cpp - expmk-tidy ---------------------------------===//
//
// Registers the expmk-* contract checks as a clang-tidy plugin module.
// Build (needs clang-tidy development headers; see ../CMakeLists.txt):
//
//   ninja expmk_tidy_plugin
//   clang-tidy -load $BUILD/tools/expmk-tidy/libexpmk_tidy.so \
//              -checks='expmk-*' -p $BUILD src/**/*.cpp
//
// The three checks mirror tools/expmk-tidy/lite/ (the dependency-free
// fallback run by ctest); this module is the AST-accurate implementation.
//
//===----------------------------------------------------------------------===//

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "DeterminismCheck.h"
#include "LeaseEscapeCheck.h"
#include "NoAllocKernelCheck.h"

namespace clang::tidy::expmk {

class ExpmkTidyModule : public ClangTidyModule {
public:
  void addCheckFactories(ClangTidyCheckFactories &CheckFactories) override {
    CheckFactories.registerCheck<NoAllocKernelCheck>(
        "expmk-no-alloc-kernel");
    CheckFactories.registerCheck<DeterminismCheck>("expmk-determinism");
    CheckFactories.registerCheck<LeaseEscapeCheck>("expmk-lease-escape");
  }
};

namespace {
ClangTidyModuleRegistry::Add<ExpmkTidyModule>
    X("expmk-module", "expmk static contract checks (determinism, "
                      "zero-alloc kernels, lease lifetimes).");
} // namespace

// This anchor pulls the module into the plugin when linked with
// -Wl,--whole-archive equivalents are unnecessary: the registry entry
// above self-registers on dlopen.
volatile int ExpmkTidyModuleAnchorSource = 0;

} // namespace clang::tidy::expmk
