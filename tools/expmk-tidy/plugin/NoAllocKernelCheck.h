//===--- NoAllocKernelCheck.h - expmk-tidy ----------------------*- C++-*-===//
//
// expmk-no-alloc-kernel: a function carrying
// [[clang::annotate("expmk::noalloc")]] (the EXPMK_NOALLOC macro from
// src/util/contracts.hpp) must not allocate: no new-expressions, no
// allocating container-growth member calls, and every non-inline callee
// must itself be annotated or appear on the allowlist of known
// non-allocating functions. Allocation syntactically inside a
// throw-expression is exempt (cold failure path; the steady-state
// contract covers the success path only).
//
//===----------------------------------------------------------------------===//

#ifndef EXPMK_TIDY_NOALLOCKERNELCHECK_H
#define EXPMK_TIDY_NOALLOCKERNELCHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::expmk {

class NoAllocKernelCheck : public ClangTidyCheck {
public:
  NoAllocKernelCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace clang::tidy::expmk

#endif // EXPMK_TIDY_NOALLOCKERNELCHECK_H
