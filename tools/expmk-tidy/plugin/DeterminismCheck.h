//===--- DeterminismCheck.h - expmk-tidy ------------------------*- C++-*-===//
//
// expmk-determinism: inside src/, ban the constructs that break the
// engine's bit-identical-results contract —
//   * rand()/srand()/drand48()/std::random_device (unseeded entropy);
//   * wall-clock reads (system_clock, time(), clock_gettime, any
//     ::now()) outside util/timer — timing belongs in the `seconds`
//     fields only;
//   * iteration over unordered containers (unspecified order must not
//     feed result values);
//   * reassociating floating-point reductions: std::reduce /
//     std::transform_reduce / std::execution policies (the fixed
//     4-accumulator contract of prob/dist_kernels.hpp).
//
//===----------------------------------------------------------------------===//

#ifndef EXPMK_TIDY_DETERMINISMCHECK_H
#define EXPMK_TIDY_DETERMINISMCHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::expmk {

class DeterminismCheck : public ClangTidyCheck {
public:
  DeterminismCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;

private:
  /// Wall-clock reads are legal only in the timing stopwatch.
  bool inTimerFile(SourceLocation Loc, const SourceManager &SM) const;
};

} // namespace clang::tidy::expmk

#endif // EXPMK_TIDY_DETERMINISMCHECK_H
