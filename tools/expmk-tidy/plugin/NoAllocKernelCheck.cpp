//===--- NoAllocKernelCheck.cpp - expmk-tidy ------------------------------===//

#include "NoAllocKernelCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/ADT/StringSet.h"

using namespace clang::ast_matchers;

namespace clang::tidy::expmk {

namespace {

constexpr llvm::StringLiteral kAnnotation = "expmk::noalloc";

AST_MATCHER(FunctionDecl, isExpmkNoAlloc) {
  for (const auto *A : Node.specific_attrs<AnnotateAttr>())
    if (A->getAnnotation() == kAnnotation)
      return true;
  return false;
}

bool hasNoAllocAnnotation(const FunctionDecl *FD) {
  if (!FD)
    return false;
  for (const FunctionDecl *Redecl : FD->redecls())
    for (const auto *A : Redecl->specific_attrs<AnnotateAttr>())
      if (A->getAnnotation() == kAnnotation)
        return true;
  return false;
}

/// Container members that (re)allocate — mirror of the fallback checker's
/// denylist (tools/expmk-tidy/lite/checks.cpp).
bool isAllocatingMember(StringRef Name) {
  static const llvm::StringSet<> Deny = {
      "push_back", "emplace_back", "emplace",   "push_front",
      "emplace_front", "insert",   "insert_or_assign", "try_emplace",
      "resize",    "reserve",      "assign",    "append",
      "substr",    "shrink_to_fit", "merge",    "splice"};
  return Deny.contains(Name);
}

/// Known non-allocating std functions (math, raw memory, in-place
/// algorithms). Matched on the unqualified name of functions declared in
/// namespace std or at global scope.
bool isAllowlisted(const FunctionDecl *FD) {
  static const llvm::StringSet<> Allow = {
      "abs",  "fabs", "sqrt", "log",  "log1p", "exp",  "expm1", "pow",
      "fma",  "floor", "ceil", "round", "trunc", "copysign", "isnan",
      "isinf", "isfinite", "min", "max", "clamp", "sort", "nth_element",
      "lower_bound", "upper_bound", "fill", "fill_n", "copy", "copy_n",
      "accumulate", "iota", "swap", "move", "forward", "get", "memcpy",
      "memmove", "memset", "memcmp", "distance", "min_element",
      "max_element", "midpoint", "exchange", "quiet_NaN", "infinity",
      "epsilon", "lowest"};
  const DeclContext *DC = FD->getDeclContext();
  const bool StdOrGlobal =
      DC->isTranslationUnit() || (DC->isStdNamespace());
  if (!StdOrGlobal && !isa<CXXRecordDecl>(DC))
    return false;
  return Allow.contains(FD->getName());
}

/// True when `S` is syntactically inside a throw-expression (cold path).
bool underThrow(const Stmt *S, ASTContext &Ctx) {
  auto Parents = Ctx.getParents(*S);
  while (!Parents.empty()) {
    if (const auto *P = Parents[0].get<Stmt>()) {
      if (isa<CXXThrowExpr>(P))
        return true;
      Parents = Ctx.getParents(*P);
      continue;
    }
    break;
  }
  return false;
}

} // namespace

void NoAllocKernelCheck::registerMatchers(MatchFinder *Finder) {
  const auto InKernel =
      hasAncestor(functionDecl(isExpmkNoAlloc()).bind("kernel"));
  Finder->addMatcher(cxxNewExpr(InKernel).bind("new"), this);
  Finder->addMatcher(cxxDeleteExpr(InKernel).bind("delete"), this);
  Finder->addMatcher(
      callExpr(InKernel, callee(functionDecl().bind("callee"))).bind("call"),
      this);
  Finder->addMatcher(
      cxxConstructExpr(InKernel,
                       hasDeclaration(cxxConstructorDecl(ofClass(
                           cxxRecordDecl().bind("ctorClass")))))
          .bind("construct"),
      this);
}

void NoAllocKernelCheck::check(const MatchFinder::MatchResult &Result) {
  ASTContext &Ctx = *Result.Context;

  if (const auto *New = Result.Nodes.getNodeAs<CXXNewExpr>("new")) {
    if (!underThrow(New, Ctx))
      diag(New->getBeginLoc(),
           "new-expression in an EXPMK_NOALLOC kernel");
    return;
  }
  if (const auto *Del = Result.Nodes.getNodeAs<CXXDeleteExpr>("delete")) {
    diag(Del->getBeginLoc(), "delete-expression in an EXPMK_NOALLOC kernel");
    return;
  }
  if (const auto *Construct =
          Result.Nodes.getNodeAs<CXXConstructExpr>("construct")) {
    const auto *Class = Result.Nodes.getNodeAs<CXXRecordDecl>("ctorClass");
    if (!Class || underThrow(Construct, Ctx))
      return;
    static const llvm::StringSet<> AllocatingTypes = {
        "vector", "basic_string", "map", "set", "multimap", "multiset",
        "unordered_map", "unordered_set", "deque", "list", "function",
        "shared_ptr", "unique_ptr", "basic_stringstream",
        "basic_ostringstream", "DiscreteDistribution"};
    if (AllocatingTypes.contains(Class->getName()))
      diag(Construct->getBeginLoc(),
           "construction of allocating type %0 in an EXPMK_NOALLOC kernel")
          << Class;
    return;
  }

  const auto *Call = Result.Nodes.getNodeAs<CallExpr>("call");
  const auto *Callee = Result.Nodes.getNodeAs<FunctionDecl>("callee");
  if (!Call || !Callee || underThrow(Call, Ctx))
    return;

  if (const auto *Method = dyn_cast<CXXMethodDecl>(Callee)) {
    if (isAllocatingMember(Method->getName())) {
      diag(Call->getBeginLoc(),
           "allocating container call %0 in an EXPMK_NOALLOC kernel")
          << Method;
      return;
    }
    // Other member calls are presumed accessors; the callee rule below
    // applies to free functions, where the call tree actually branches.
    if (isa<CXXMemberCallExpr>(Call) || isa<CXXOperatorCallExpr>(Call))
      return;
  }

  if (hasNoAllocAnnotation(Callee) || isAllowlisted(Callee))
    return;
  if (Callee->isInlined() && Callee->hasBody())
    return; // visible inline body — analyzed transitively in its own TU
  if (Callee->getBuiltinID() != 0)
    return;

  diag(Call->getBeginLoc(),
       "call to %0 which is neither EXPMK_NOALLOC nor on the no-alloc "
       "allowlist")
      << Callee;
}

} // namespace clang::tidy::expmk
