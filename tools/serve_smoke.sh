#!/bin/sh
# End-to-end smoke of the serving daemon: launch expmk_serve on an
# ephemeral port, run one inline eval + a STATS frame through
# expmk_client, then shut the daemon down over the protocol and assert a
# clean exit. Run from the build directory (the ctest working dir):
#
#   sh ../tools/serve_smoke.sh
#
# Used by the expmk_serve_smoke ctest entry and the CI serve-smoke steps
# (Release and TSan lanes).
set -e

BIN_DIR=${BIN_DIR:-.}
LOG=serve_smoke.log

"$BIN_DIR/expmk_cli" generate --class lu --k 4 --out serve_smoke.tg

"$BIN_DIR/expmk_serve" --port 0 >"$LOG" 2>&1 &
SERVE_PID=$!

# The daemon prints its bound port on startup; poll for the line.
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^expmk_serve: listening on port \([0-9]*\)$/\1/p' "$LOG")
  [ -n "$PORT" ] && break
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "serve_smoke: daemon died during startup" >&2
    cat "$LOG" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "serve_smoke: daemon never reported a port" >&2
  cat "$LOG" >&2
  kill "$SERVE_PID" 2>/dev/null
  exit 1
fi
echo "serve_smoke: daemon on port $PORT"

fail() {
  echo "serve_smoke: $1" >&2
  kill "$SERVE_PID" 2>/dev/null
  exit 1
}

OUT=$("$BIN_DIR/expmk_client" --port "$PORT" --graph serve_smoke.tg \
      --pfail 0.01 --method fo --repeat 2) || fail "eval request failed"
echo "$OUT"
echo "$OUT" | grep -q '"type": "result"' || fail "no result frame"
echo "$OUT" | grep -q '"cache": "hit"' || fail "second request did not hit"

OUT=$("$BIN_DIR/expmk_client" --port "$PORT" --stats) \
  || fail "stats request failed"
echo "$OUT"
echo "$OUT" | grep -q '"type": "stats"' || fail "no stats frame"
echo "$OUT" | grep -q '"compiles": 1' || fail "expected exactly 1 compile"

"$BIN_DIR/expmk_client" --port "$PORT" --shutdown >/dev/null \
  || fail "shutdown request failed"

wait "$SERVE_PID"
STATUS=$?
[ "$STATUS" -eq 0 ] || { echo "serve_smoke: daemon exit $STATUS" >&2; exit 1; }
grep -q "shutting down (shutdown frame)" "$LOG" \
  || { echo "serve_smoke: daemon did not log a clean shutdown" >&2; exit 1; }
echo "serve_smoke: OK"
