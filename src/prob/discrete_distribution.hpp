// prob/discrete_distribution.hpp
//
// Finite discrete probability distributions over the reals, the arithmetic
// Dodin's bound is built on: series reductions convolve durations, parallel
// reductions take the maximum of independent durations.
//
// With 2-state task durations the exact support can grow exponentially
// (the underlying problem is #P-complete), so the type supports a bounded
// "atom budget": when a result exceeds `max_atoms`, adjacent atoms are
// merged pairwise with a mean-preserving rule. The budget is a knob of the
// Dodin implementation and is swept by bench/ablation_dodin_atoms.
//
// Since the flat-distribution-engine refactor, every operation here is a
// thin allocating wrapper over the span kernels in prob/dist_kernels.hpp —
// the library has exactly ONE copy of the consolidation / convolve /
// max-of / truncation arithmetic, shared bit-for-bit with the
// workspace-backed flat evaluators (sp/dodin/bounds).

#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "prob/atom.hpp"

namespace expmk::prob {

namespace dist_kernels {
struct TruncationCert;
}  // namespace dist_kernels

/// An immutable-after-construction finite distribution. Invariants:
/// atoms sorted strictly increasing by value, probabilities positive,
/// total mass 1 within ~1e-9 (renormalized on construction).
class DiscreteDistribution {
 public:
  /// The degenerate distribution at 0 (identity for convolution).
  DiscreteDistribution();

  /// Point mass at `value`.
  static DiscreteDistribution point(double value);

  /// Two-state task-duration law: `a` with probability p, `2a` with 1-p.
  /// This is the paper's silent-error model for one task.
  static DiscreteDistribution two_state(double a, double p_success);

  /// Geometric re-execution law truncated at `max_attempts` executions:
  /// k*a with probability p(1-p)^{k-1} for k < max_attempts and the
  /// remaining tail mass on max_attempts*a. Models unbounded retries.
  static DiscreteDistribution geometric_reexec(double a, double p_success,
                                               int max_attempts);

  /// From raw atoms (any order, duplicates allowed); consolidates, drops
  /// non-positive masses, renormalizes. Throws if total mass is not
  /// positive.
  static DiscreteDistribution from_atoms(std::vector<Atom> atoms);

  /// Trusted constructor for the flat engine's exports: `atoms` must
  /// already be canonical (dist_kernels::canonicalize output — strictly
  /// ascending, positive, normalized). Skips the re-consolidation and
  /// re-normalization of from_atoms so an exported distribution is
  /// byte-identical to the arena slice it came from.
  static DiscreteDistribution from_canonical(std::vector<Atom> atoms);

  [[nodiscard]] const std::vector<Atom>& atoms() const noexcept {
    return atoms_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return atoms_.size(); }

  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double min() const noexcept { return atoms_.front().value; }
  [[nodiscard]] double max() const noexcept { return atoms_.back().value; }

  /// P(X <= x).
  [[nodiscard]] double cdf(double x) const noexcept;
  /// Smallest support value v with P(X <= v) >= q, q in (0,1].
  [[nodiscard]] double quantile(double q) const;

  /// Distribution of X + c.
  [[nodiscard]] DiscreteDistribution shifted(double c) const;

  /// Distribution of X + Y for independent X, Y; result capped at
  /// `max_atoms` (0 = unlimited). When a cap fires and `cert` is given,
  /// the certified expectation-shift envelope accumulates into it.
  [[nodiscard]] static DiscreteDistribution convolve(
      const DiscreteDistribution& x, const DiscreteDistribution& y,
      std::size_t max_atoms = 0,
      dist_kernels::TruncationCert* cert = nullptr);

  /// Distribution of max(X, Y) for independent X, Y; capped at `max_atoms`
  /// (same certification hook as convolve).
  [[nodiscard]] static DiscreteDistribution max_of(
      const DiscreteDistribution& x, const DiscreteDistribution& y,
      std::size_t max_atoms = 0,
      dist_kernels::TruncationCert* cert = nullptr);

  /// Mixture: with probability w take X, else Y. Used by tests.
  [[nodiscard]] static DiscreteDistribution mixture(
      const DiscreteDistribution& x, double w, const DiscreteDistribution& y);

  /// Returns a copy reduced to at most `max_atoms` atoms by repeatedly
  /// merging the pair of adjacent atoms with the smallest value gap into a
  /// single atom at their probability-weighted mean (preserves the overall
  /// mean exactly; variance shrinks by at most gap² per merge). With
  /// `cert`, the per-merge displacement envelope accumulates into it (see
  /// dist_kernels.hpp for the certified-truncation math).
  [[nodiscard]] DiscreteDistribution truncated(
      std::size_t max_atoms,
      dist_kernels::TruncationCert* cert = nullptr) const;

  /// Structural equality within `tol` on values and probabilities.
  [[nodiscard]] bool approx_equals(const DiscreteDistribution& other,
                                   double tol = 1e-9) const noexcept;

 private:
  explicit DiscreteDistribution(std::vector<Atom> sorted_atoms);
  static void consolidate(std::vector<Atom>& atoms);

  std::vector<Atom> atoms_;
};

/// Streams "{(v1,p1),(v2,p2),...}" — for test failure messages.
std::ostream& operator<<(std::ostream& os, const DiscreteDistribution& d);

}  // namespace expmk::prob
