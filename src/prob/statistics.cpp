#include "prob/statistics.hpp"

#include <cmath>
#include <stdexcept>

namespace expmk::prob {

void RunningStats::push(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::standard_error() const noexcept {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::ci_half_width(double confidence) const {
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument("ci_half_width: confidence must be in (0,1)");
  }
  const double z = inverse_normal_cdf(0.5 + confidence / 2.0);
  return z * standard_error();
}

EXPMK_NOALLOC double normal_pdf(double x) noexcept {
  static constexpr double inv_sqrt_2pi = 0.39894228040143267794;
  return inv_sqrt_2pi * std::exp(-0.5 * x * x);
}

EXPMK_NOALLOC double normal_cdf(double x) noexcept {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double inverse_normal_cdf(double p) {
  if (p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument("inverse_normal_cdf: p must be in (0,1)");
  }
  // Acklam's algorithm: rational approximations on the central and tail
  // regions, then one Halley refinement step for near-double precision.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double p_low = 0.02425;

  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // Halley refinement.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * 3.14159265358979323846) *
                   std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

}  // namespace expmk::prob
