// prob/normal.hpp
//
// Gaussian moment arithmetic: Clark's 1961 formulas for the first two
// moments of the maximum of two (possibly correlated) jointly normal random
// variables, plus the linkage formula for the covariance of that maximum
// with a third variable. This is the machinery behind the paper's "Normal"
// estimator (Sculli's method) and its correlation-aware variants.

#pragma once

#include "util/contracts.hpp"

namespace expmk::prob {

/// First two moments of a (approximately) normal random variable.
struct NormalMoments {
  double mean = 0.0;
  double var = 0.0;  ///< variance, >= 0
};

/// Moments of X + Y for independent X, Y (exact for any distributions).
EXPMK_NOALLOC [[nodiscard]] NormalMoments sum_independent(NormalMoments x,
                                            NormalMoments y) noexcept;

/// Result of Clark's max: moments of M = max(X, Y) plus the two weights
/// Phi(beta), Phi(-beta) needed by the linkage formula.
struct ClarkMax {
  NormalMoments moments;
  double weight_x = 1.0;  ///< Phi(beta): "probability X is the max"
  double weight_y = 0.0;  ///< Phi(-beta)
};

/// Clark's formulas: first and second moments of max(X, Y) when (X, Y) are
/// jointly normal with correlation rho. Exact under the normality
/// assumption. Handles the degenerate case var(X)+var(Y)-2*rho*sx*sy ~ 0
/// (then max is X or Y a.s. depending on means).
EXPMK_NOALLOC [[nodiscard]] ClarkMax clark_max(NormalMoments x, NormalMoments y,
                                 double rho) noexcept;

/// Clark's linkage: Cov(max(X,Y), Z) = Cov(X,Z)*Phi(beta) +
/// Cov(Y,Z)*Phi(-beta), with Phi(beta) taken from the ClarkMax result of
/// the same (X, Y) fold. Used by the full-covariance Normal estimator.
[[nodiscard]] double clark_linkage(double cov_xz, double cov_yz,
                                   const ClarkMax& fold) noexcept;

}  // namespace expmk::prob
