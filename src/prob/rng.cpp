#include "prob/rng.hpp"

#include <cmath>

namespace expmk::prob {

double Xoshiro256pp::exponential(double lambda) noexcept {
  // Inversion: -ln(U)/lambda with U in (0,1]. For lambda <= 0 we define the
  // variate as +infinity (a task that can never fail), which callers use to
  // model lambda = 0 without branching.
  if (lambda <= 0.0) return INFINITY;
  return -std::log(uniform_positive()) / lambda;
}

std::uint64_t Xoshiro256pp::below(std::uint64_t bound) noexcept {
  // Lemire 2019 unbiased bounded generation.
  if (bound == 0) return 0;
  for (;;) {
    const std::uint64_t x = (*this)();
    const __uint128_t m = static_cast<__uint128_t>(x) * bound;
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= bound) return static_cast<std::uint64_t>(m >> 64);
    const std::uint64_t threshold = (0 - bound) % bound;
    if (low >= threshold) return static_cast<std::uint64_t>(m >> 64);
  }
}

}  // namespace expmk::prob
