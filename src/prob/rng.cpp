#include "prob/rng.hpp"

#include <cmath>

#include "util/simd.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define EXPMK_X86_SIMD 1
#include <immintrin.h>
#endif

namespace expmk::prob {

double Xoshiro256pp::exponential(double lambda) noexcept {
  // Inversion: -ln(U)/lambda with U in (0,1]. For lambda <= 0 we define the
  // variate as +infinity (a task that can never fail), which callers use to
  // model lambda = 0 without branching.
  if (lambda <= 0.0) return INFINITY;
  return -std::log(uniform_positive()) / lambda;
}

std::uint64_t Xoshiro256pp::below(std::uint64_t bound) noexcept {
  // Lemire 2019 unbiased bounded generation.
  if (bound == 0) return 0;
  for (;;) {
    const std::uint64_t x = (*this)();
    const __uint128_t m = static_cast<__uint128_t>(x) * bound;
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= bound) return static_cast<std::uint64_t>(m >> 64);
    const std::uint64_t threshold = (0 - bound) % bound;
    if (low >= threshold) return static_cast<std::uint64_t>(m >> 64);
  }
}

// ---------------------------------------------------------------------------
// Philox4x32-10 (Salmon, Moraes, Dror, Shaw: "Parallel Random Numbers: As
// Easy as 1, 2, 3", SC'11). Multipliers and Weyl key increments are the
// published constants; the round wiring below matches the reference
// implementation (Random123) word for word.

namespace {

constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kPhiloxW0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kPhiloxW1 = 0xBB67AE85u;  // sqrt(3) - 1

inline void philox_round(std::uint32_t x[4], std::uint32_t k0,
                         std::uint32_t k1) noexcept {
  const std::uint64_t p0 =
      static_cast<std::uint64_t>(kPhiloxM0) * x[0];
  const std::uint64_t p1 =
      static_cast<std::uint64_t>(kPhiloxM1) * x[2];
  const std::uint32_t lo0 = static_cast<std::uint32_t>(p0);
  const std::uint32_t hi0 = static_cast<std::uint32_t>(p0 >> 32);
  const std::uint32_t lo1 = static_cast<std::uint32_t>(p1);
  const std::uint32_t hi1 = static_cast<std::uint32_t>(p1 >> 32);
  const std::uint32_t y0 = hi1 ^ x[1] ^ k0;
  const std::uint32_t y2 = hi0 ^ x[3] ^ k1;
  x[0] = y0;
  x[1] = lo1;
  x[2] = y2;
  x[3] = lo0;
}

#if EXPMK_X86_SIMD

// Eight blocks at once: each 32-bit Philox word lives in the EVEN 32-bit
// half of a 64-bit lane (zeros above), which is exactly the operand
// shape _mm256_mul_epu32 consumes and produces. One vector state covers
// four blocks; two INDEPENDENT states are interleaved because a single
// round is a serial mul -> shift -> xor chain whose latency would
// otherwise dominate (the multiply alone is ~5 cycles). Two is also the
// ceiling that fits the register file: 2 states x 4 words + 5 constants
// + 2 keys = 15 of the 16 ymm registers — a wider interleave spills to
// the stack and loses more than the extra parallelism buys. All
// operations are exact integer arithmetic, so this is bit-identical to
// eight calls of the scalar block above — no rounding caveats, unlike
// the FP kernels.
//
// The key schedule needs no masking: every key/Weyl operand starts with
// zero upper 32-bit halves, and _mm256_add_epi32 adds per 32-bit element,
// so the 32-bit wraparound stays confined to the even halves.
__attribute__((target("avx2"))) void philox_fill8_avx2(
    std::uint64_t ctr_lo, std::uint64_t block, const std::uint32_t key[2],
    std::uint64_t out[16]) noexcept {
  const __m256i lo_mask = _mm256_set1_epi64x(0xFFFFFFFFll);
  const __m256i m0 = _mm256_set1_epi64x(static_cast<long long>(kPhiloxM0));
  const __m256i m1 = _mm256_set1_epi64x(static_cast<long long>(kPhiloxM1));
  const __m256i w0 = _mm256_set1_epi64x(static_cast<long long>(kPhiloxW0));
  const __m256i w1 = _mm256_set1_epi64x(static_cast<long long>(kPhiloxW1));

  const __m256i trial_lo = _mm256_set1_epi64x(
      static_cast<long long>(ctr_lo & 0xFFFFFFFFull));
  const __m256i trial_hi =
      _mm256_set1_epi64x(static_cast<long long>(ctr_lo >> 32));

  __m256i x0[2], x1[2], x2[2], x3[2];
  for (int g = 0; g < 2; ++g) {
    x0[g] = trial_lo;
    x1[g] = trial_hi;
    // Block counters for this group: block + 4g .. block + 4g + 3. The
    // 64-bit add happens BEFORE splitting into words, so the lo-word
    // carry into the hi word is exact.
    const std::uint64_t b0 = block + static_cast<std::uint64_t>(4 * g);
    const std::uint64_t b1 = b0 + 1, b2 = b0 + 2, b3 = b0 + 3;
    x2[g] = _mm256_set_epi64x(
        static_cast<long long>(b3 & 0xFFFFFFFFull),
        static_cast<long long>(b2 & 0xFFFFFFFFull),
        static_cast<long long>(b1 & 0xFFFFFFFFull),
        static_cast<long long>(b0 & 0xFFFFFFFFull));
    x3[g] = _mm256_set_epi64x(
        static_cast<long long>(b3 >> 32), static_cast<long long>(b2 >> 32),
        static_cast<long long>(b1 >> 32), static_cast<long long>(b0 >> 32));
  }
  __m256i k0 = _mm256_set1_epi64x(static_cast<long long>(key[0]));
  __m256i k1 = _mm256_set1_epi64x(static_cast<long long>(key[1]));

  // Inside the round loop the ODD 32-bit halves of x1/x3 (and of the
  // xor results they feed) are allowed to carry garbage: _mm256_mul_epu32
  // reads only the even halves, the srli products are clean, and the
  // shared key vectors stay clean, so garbage never reaches an even
  // half. One mask per word at pack time replaces two masks per group
  // per round.
  for (int r = 0; r < 10; ++r) {
    for (int g = 0; g < 2; ++g) {
      const __m256i p0 = _mm256_mul_epu32(x0[g], m0);
      const __m256i p1 = _mm256_mul_epu32(x2[g], m1);
      const __m256i hi0 = _mm256_srli_epi64(p0, 32);
      const __m256i hi1 = _mm256_srli_epi64(p1, 32);
      const __m256i y0 = _mm256_xor_si256(_mm256_xor_si256(hi1, x1[g]), k0);
      const __m256i y2 = _mm256_xor_si256(_mm256_xor_si256(hi0, x3[g]), k1);
      x0[g] = y0;
      x1[g] = p1;  // low halves hold lo1; odd halves are dirty
      x2[g] = y2;
      x3[g] = p0;  // low halves hold lo0; odd halves are dirty
    }
    k0 = _mm256_add_epi32(k0, w0);
    k1 = _mm256_add_epi32(k1, w1);
  }

  for (int g = 0; g < 2; ++g) {
    // Pack (x1:x0) and (x3:x2) into uint64 outputs (masking the dirty
    // odd halves of the x0/x2 operands first), then interleave so the
    // buffer reads block-major: b0.out0, b0.out1, b1.out0, ...
    const __m256i outa =
        _mm256_or_si256(_mm256_and_si256(x0[g], lo_mask),
                        _mm256_slli_epi64(x1[g], 32));
    const __m256i outb =
        _mm256_or_si256(_mm256_and_si256(x2[g], lo_mask),
                        _mm256_slli_epi64(x3[g], 32));
    const __m256i lo = _mm256_unpacklo_epi64(outa, outb);  // b0, b2
    const __m256i hi = _mm256_unpackhi_epi64(outa, outb);  // b1, b3
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8 * g),
                        _mm256_permute2x128_si256(lo, hi, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8 * g + 4),
                        _mm256_permute2x128_si256(lo, hi, 0x31));
  }
}

#endif  // EXPMK_X86_SIMD

void philox_fill8_scalar(std::uint64_t ctr_lo, std::uint64_t block,
                         const std::uint32_t key[2],
                         std::uint64_t out[16]) noexcept {
  for (int b = 0; b < 8; ++b) {
    const std::uint64_t blk = block + static_cast<std::uint64_t>(b);
    std::uint32_t x[4] = {static_cast<std::uint32_t>(ctr_lo),
                          static_cast<std::uint32_t>(ctr_lo >> 32),
                          static_cast<std::uint32_t>(blk),
                          static_cast<std::uint32_t>(blk >> 32)};
    std::uint32_t k0 = key[0];
    std::uint32_t k1 = key[1];
    for (int r = 0; r < 10; ++r) {
      philox_round(x, k0, k1);
      k0 += kPhiloxW0;
      k1 += kPhiloxW1;
    }
    out[2 * b] = (static_cast<std::uint64_t>(x[1]) << 32) | x[0];
    out[2 * b + 1] = (static_cast<std::uint64_t>(x[3]) << 32) | x[2];
  }
}

}  // namespace

std::array<std::uint32_t, 4> Philox4x32::block(
    std::array<std::uint32_t, 4> counter,
    std::array<std::uint32_t, 2> key) noexcept {
  std::uint32_t x[4] = {counter[0], counter[1], counter[2], counter[3]};
  std::uint32_t k0 = key[0];
  std::uint32_t k1 = key[1];
  for (int r = 0; r < 10; ++r) {
    philox_round(x, k0, k1);
    k0 += kPhiloxW0;
    k1 += kPhiloxW1;
  }
  return {x[0], x[1], x[2], x[3]};
}

void Philox4x32::refill() noexcept {
#if EXPMK_X86_SIMD
  if (util::simd::active() == util::simd::Backend::Avx2) {
    philox_fill8_avx2(ctr_lo_, block_, key_, buf_);
  } else {
    philox_fill8_scalar(ctr_lo_, block_, key_, buf_);
  }
#else
  philox_fill8_scalar(ctr_lo_, block_, key_, buf_);
#endif
  block_ += 8;
  idx_ = 0;
}

double Philox4x32::exponential(double lambda) noexcept {
  // Same inversion (and the same lambda <= 0 convention) as Xoshiro256pp.
  if (lambda <= 0.0) return INFINITY;
  return -std::log(uniform_positive()) / lambda;
}

std::uint64_t Philox4x32::below(std::uint64_t bound) noexcept {
  // Lemire 2019 unbiased bounded generation.
  if (bound == 0) return 0;
  for (;;) {
    const std::uint64_t x = (*this)();
    const __uint128_t m = static_cast<__uint128_t>(x) * bound;
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= bound) return static_cast<std::uint64_t>(m >> 64);
    const std::uint64_t threshold = (0 - bound) % bound;
    if (low >= threshold) return static_cast<std::uint64_t>(m >> 64);
  }
}

}  // namespace expmk::prob
