// prob/dist_kernels.hpp
//
// The flat distribution engine: every discrete-distribution operation the
// analytic pipeline is built on (consolidate / shift / convolve / max-of /
// mixture / truncate), expressed as kernels over caller-provided spans of
// prob::Atom instead of freshly allocated vectors. `DiscreteDistribution`'s
// own operations are thin allocating wrappers over these kernels, so there
// is exactly ONE copy of the arithmetic in the library and the flat and
// object paths are bit-identical by construction (pinned by
// tests/test_dist_kernels.cpp). The workspace-backed evaluators (the
// series-parallel reduction, Dodin's transformation, the level-
// decomposition bound) call the kernels directly on exp::Workspace-leased
// arenas and therefore run allocation-free at steady state.
//
// Contract shared with DiscreteDistribution:
//  * a *canonical* atom list is sorted strictly increasing by value
//    (beyond the prob::kValueMergeEps relative merge window), has positive
//    probabilities, and total mass 1 (renormalized);
//  * `consolidate` + `normalize` reproduce from_atoms() operation for
//    operation (drop non-positive masses order-preservingly, std::sort by
//    value, eps-merge, divide by the total) — bit for bit;
//  * every kernel writes its result left-aligned into the output span and
//    returns the atom count; inputs and outputs must not overlap unless a
//    kernel is documented as in-place.
//
// SIMD backends. convolve and max_of run with a runtime-dispatched
// backend (util::simd — AVX2 when the CPU has it, scalar otherwise,
// EXPMK_FORCE_SCALAR=1 pins scalar). Both backends are bit-identical by
// construction, not by tolerance: only elementwise stages are vectorized
// (per-lane identical to the scalar loop under IEEE754), reductions keep
// one fixed association shared by both backends, and the ordering stage —
// a STABLE bottom-up merge of pre-sorted runs that replaces
// canonicalize's std::sort — is a single branchless engine compiled once
// and called by both, so its output (including the order of exact value
// ties, resolved earlier-run-first) cannot differ between them. Two
// spec-visible, ulp-level differences from the object from_atoms path
// were re-baselined once when this layer landed: exact value ties combine
// in the stable run order instead of std::sort's unspecified tie order,
// and the final renormalize multiplies by one shared reciprocal
// (r = 1/total) instead of dividing each probability.
//
// Certified truncation. `truncate` reduces an atom list to a budget by
// repeatedly merging the adjacent pair with the smallest value gap into
// its probability-weighted mean — mean-preserving for the distribution at
// hand, but NOT for the expectation of a downstream max/convolve pipeline.
// Each merge is accounted for in a TruncationCert: merging (v_a, p_a),
// (v_b, p_b) at v = (p_a v_a + p_b v_b)/(p_a + p_b) moves mass p_a upward
// by (v - v_a) and mass p_b downward by (v_b - v). The makespan is a
// monotone, 1-Lipschitz function of every intermediate duration value
// (compositions of + and max), so by a pointwise coupling argument the
// expectation of the *untruncated* pipeline E* is bracketed by
//
//     mean - cert.up  <=  E*  <=  mean + cert.down
//
// where `mean` is the truncated pipeline's result and up/down are the
// probability-weighted displacement totals accumulated across every merge
// of every truncation. This is the envelope EvalResult::mean_lo/mean_hi
// surfaces (see exp/evaluator.hpp); it certifies the atom-cap error only,
// not a method's own modeling bias.

#pragma once

#include <cstddef>
#include <span>

#include "prob/atom.hpp"
#include "util/contracts.hpp"

namespace expmk::prob::dist_kernels {

/// The certified-truncation accumulator (see the file comment). Totals
/// add across operations: pass one accumulator through a whole pipeline.
struct TruncationCert {
  double up = 0.0;          ///< sum of p * (merged - original) moved upward
  double down = 0.0;        ///< sum of p * (original - merged) moved downward
  std::size_t events = 0;   ///< truncate() calls that merged at least once
  std::size_t merges = 0;   ///< total pair merges across all events

  void accumulate(const TruncationCert& o) noexcept {
    up += o.up;
    down += o.down;
    events += o.events;
    merges += o.merges;
  }
};

/// Mirrors DiscreteDistribution's private consolidate(): drops
/// non-positive masses (order-preserving), sorts ascending by value, and
/// merges atoms within the kValueMergeEps relative window into the first
/// atom's value. In place; returns the new count.
EXPMK_NOALLOC std::size_t consolidate(std::span<Atom> atoms);

/// Mirrors from_atoms' renormalization: divides every probability by the
/// total. Throws std::invalid_argument when the span is empty or the
/// total mass is not positive (from_atoms' exact failure condition).
EXPMK_NOALLOC void normalize(std::span<Atom> atoms);

/// The from_atoms pipeline on a span: consolidate then normalize the
/// surviving prefix. In place; returns the canonical count.
EXPMK_NOALLOC std::size_t canonicalize(std::span<Atom> atoms);

/// E[X] of a canonical atom list (ascending accumulation, the exact loop
/// DiscreteDistribution::mean runs).
EXPMK_NOALLOC [[nodiscard]] double mean(std::span<const Atom> atoms) noexcept;

/// Smallest support value v with P(X <= v) >= q, q in (0,1] — mirrors
/// DiscreteDistribution::quantile (including its 1e-15 slack).
EXPMK_NOALLOC [[nodiscard]] double quantile(std::span<const Atom> atoms, double q);

/// Point mass at `value`; writes 1 atom.
EXPMK_NOALLOC std::size_t point(double value, std::span<Atom> out);

/// The paper's 2-state task law: a w.p. p_success, else 2a — with the
/// same boundary degeneracies as DiscreteDistribution::two_state
/// (p >= 1 or p <= 0 collapse to a point mass). Writes <= 2 atoms;
/// returns the count. Requires a > 0 and p in [0, 1] (unchecked: callers
/// feed Scenario-validated inputs).
EXPMK_NOALLOC std::size_t two_state(double a, double p_success, std::span<Atom> out);

/// X + c in place.
EXPMK_NOALLOC void shift(std::span<Atom> atoms, double c) noexcept;

/// X + Y for independent canonical X, Y: cross product laid out as one
/// pre-sorted run per atom of the smaller input, then the canonical
/// reduction (stable bottom-up run merge, eps-merge, renormalize) —
/// DiscreteDistribution::convolve before its atom cap. Exact value ties
/// combine in the stable merge order (see the file comment); dispatched
/// scalar/AVX2, bit-identical across backends. `out` must hold
/// x.size() * y.size() atoms and not overlap the inputs.
EXPMK_NOALLOC std::size_t convolve(std::span<const Atom> x, std::span<const Atom> y,
                     std::span<Atom> out);

/// max(X, Y) for independent canonical X, Y via support union and
/// product-CDF differencing, then canonicalize — mirrors
/// DiscreteDistribution::max_of before its atom cap. Dispatched
/// scalar/AVX2, bit-identical across backends. `out` must hold
/// x.size() + y.size() atoms; `support_scratch` the same; neither may
/// overlap the inputs.
EXPMK_NOALLOC std::size_t max_of(std::span<const Atom> x, std::span<const Atom> y,
                   std::span<Atom> out, std::span<double> support_scratch);

/// Mixture: with probability w take X, else Y; mirrors
/// DiscreteDistribution::mixture (throws on w outside [0,1]). `out` must
/// hold x.size() + y.size() atoms.
EXPMK_NOALLOC std::size_t mixture(std::span<const Atom> x, double w,
                    std::span<const Atom> y, std::span<Atom> out);

/// Reduces a canonical list of n = atoms.size() atoms to at most
/// `max_atoms` by the nearest-adjacent-pair merge passes of
/// DiscreteDistribution::truncated (nth_element threshold, per-pass merge
/// budget, final canonicalize), accumulating the expectation-shift
/// envelope into `cert`. In place; returns the new count. No-op (and no
/// cert event) when max_atoms == 0 or n <= max_atoms. Scratch:
/// `gap_scratch` >= 2*(n-1) doubles. The merge walk compacts in place
/// (the write index never passes the read index), so no atom scratch is
/// needed.
EXPMK_NOALLOC std::size_t truncate(std::span<Atom> atoms, std::size_t max_atoms,
                     TruncationCert& cert, std::span<double> gap_scratch);

}  // namespace expmk::prob::dist_kernels
