// prob/statistics.hpp
//
// Streaming statistics for the Monte-Carlo engine: Welford's online
// mean/variance with O(1) updates and a numerically stable pairwise merge,
// so per-thread accumulators combine into one global estimate without ever
// materializing the sample vector.

#pragma once

#include <cstddef>
#include <cstdint>
#include "util/contracts.hpp"

namespace expmk::prob {

/// Welford online accumulator: count, mean, M2 (sum of squared deviations),
/// min and max. Merging two accumulators is exact (Chan et al. update), so
/// the MC engine's result is independent of how samples were partitioned.
class RunningStats {
 public:
  /// Adds one observation.
  void push(double x) noexcept;

  /// Merges another accumulator into this one.
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean: s / sqrt(n).
  [[nodiscard]] double standard_error() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Half-width of the two-sided normal-approximation confidence interval
  /// at the given confidence level (e.g. 0.95 / 0.99). Valid for the large
  /// sample counts the MC engine uses (>= thousands).
  [[nodiscard]] double ci_half_width(double confidence) const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Inverse standard-normal CDF (Acklam's rational approximation, |eps| <
/// 1.15e-9) — used for CI z-values and by tests that validate Clark's
/// formulas against quadrature.
[[nodiscard]] double inverse_normal_cdf(double p);

/// Standard normal PDF.
EXPMK_NOALLOC [[nodiscard]] double normal_pdf(double x) noexcept;

/// Standard normal CDF via erfc (double precision accurate).
EXPMK_NOALLOC [[nodiscard]] double normal_cdf(double x) noexcept;

}  // namespace expmk::prob
