#include "prob/discrete_distribution.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace expmk::prob {

// kValueMergeEps (the relative gap treated as equal during
// consolidation) moved to the header: the workspace bounds fold mirrors
// consolidate() and must share the constant.

DiscreteDistribution::DiscreteDistribution() : atoms_{{0.0, 1.0}} {}

DiscreteDistribution::DiscreteDistribution(std::vector<Atom> sorted_atoms)
    : atoms_(std::move(sorted_atoms)) {}

DiscreteDistribution DiscreteDistribution::point(double value) {
  return DiscreteDistribution({{value, 1.0}});
}

DiscreteDistribution DiscreteDistribution::two_state(double a,
                                                     double p_success) {
  if (a <= 0.0) throw std::invalid_argument("two_state: weight must be > 0");
  if (p_success < 0.0 || p_success > 1.0) {
    throw std::invalid_argument("two_state: p_success must be in [0,1]");
  }
  if (p_success >= 1.0) return point(a);
  if (p_success <= 0.0) return point(2.0 * a);
  return DiscreteDistribution({{a, p_success}, {2.0 * a, 1.0 - p_success}});
}

DiscreteDistribution DiscreteDistribution::geometric_reexec(double a,
                                                            double p_success,
                                                            int max_attempts) {
  if (a <= 0.0) {
    throw std::invalid_argument("geometric_reexec: weight must be > 0");
  }
  if (p_success <= 0.0 || p_success > 1.0) {
    throw std::invalid_argument("geometric_reexec: p in (0,1] required");
  }
  if (max_attempts < 1) {
    throw std::invalid_argument("geometric_reexec: max_attempts >= 1");
  }
  std::vector<Atom> atoms;
  atoms.reserve(static_cast<std::size_t>(max_attempts));
  double tail = 1.0;  // P(attempts >= k)
  for (int k = 1; k < max_attempts; ++k) {
    const double pk = tail * p_success;
    atoms.push_back({a * k, pk});
    tail -= pk;
  }
  atoms.push_back({a * max_attempts, tail});
  return from_atoms(std::move(atoms));
}

void DiscreteDistribution::consolidate(std::vector<Atom>& atoms) {
  std::erase_if(atoms, [](const Atom& at) { return at.prob <= 0.0; });
  std::sort(atoms.begin(), atoms.end(),
            [](const Atom& x, const Atom& y) { return x.value < y.value; });
  std::vector<Atom> merged;
  merged.reserve(atoms.size());
  for (const Atom& at : atoms) {
    if (!merged.empty()) {
      const double scale =
          std::max({std::fabs(merged.back().value), std::fabs(at.value), 1.0});
      if (at.value - merged.back().value <= kValueMergeEps * scale) {
        merged.back().prob += at.prob;
        continue;
      }
    }
    merged.push_back(at);
  }
  atoms = std::move(merged);
}

DiscreteDistribution DiscreteDistribution::from_atoms(std::vector<Atom> atoms) {
  consolidate(atoms);
  double total = 0.0;
  for (const Atom& at : atoms) total += at.prob;
  if (atoms.empty() || total <= 0.0) {
    throw std::invalid_argument("from_atoms: no positive probability mass");
  }
  for (Atom& at : atoms) at.prob /= total;
  return DiscreteDistribution(std::move(atoms));
}

double DiscreteDistribution::mean() const noexcept {
  double m = 0.0;
  for (const Atom& at : atoms_) m += at.value * at.prob;
  return m;
}

double DiscreteDistribution::variance() const noexcept {
  const double m = mean();
  double v = 0.0;
  for (const Atom& at : atoms_) {
    const double d = at.value - m;
    v += d * d * at.prob;
  }
  return v;
}

double DiscreteDistribution::cdf(double x) const noexcept {
  double acc = 0.0;
  for (const Atom& at : atoms_) {
    if (at.value > x) break;
    acc += at.prob;
  }
  return acc;
}

double DiscreteDistribution::quantile(double q) const {
  if (q <= 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile: q must be in (0,1]");
  }
  double acc = 0.0;
  for (const Atom& at : atoms_) {
    acc += at.prob;
    if (acc >= q - 1e-15) return at.value;
  }
  return atoms_.back().value;
}

DiscreteDistribution DiscreteDistribution::shifted(double c) const {
  std::vector<Atom> atoms = atoms_;
  for (Atom& at : atoms) at.value += c;
  return DiscreteDistribution(std::move(atoms));
}

DiscreteDistribution DiscreteDistribution::convolve(
    const DiscreteDistribution& x, const DiscreteDistribution& y,
    std::size_t max_atoms) {
  std::vector<Atom> atoms;
  atoms.reserve(x.size() * y.size());
  for (const Atom& ax : x.atoms_) {
    for (const Atom& ay : y.atoms_) {
      atoms.push_back({ax.value + ay.value, ax.prob * ay.prob});
    }
  }
  auto result = from_atoms(std::move(atoms));
  if (max_atoms != 0 && result.size() > max_atoms) {
    result = result.truncated(max_atoms);
  }
  return result;
}

DiscreteDistribution DiscreteDistribution::max_of(
    const DiscreteDistribution& x, const DiscreteDistribution& y,
    std::size_t max_atoms) {
  // P(max = v) computed by merging supports and differencing the product
  // CDF: F_max(v) = F_x(v) * F_y(v).
  std::vector<double> support;
  support.reserve(x.size() + y.size());
  for (const Atom& at : x.atoms_) support.push_back(at.value);
  for (const Atom& at : y.atoms_) support.push_back(at.value);
  std::sort(support.begin(), support.end());
  support.erase(std::unique(support.begin(), support.end()), support.end());

  std::vector<Atom> atoms;
  atoms.reserve(support.size());
  double prev_cdf = 0.0;
  std::size_t ix = 0, iy = 0;
  double fx = 0.0, fy = 0.0;
  for (const double v : support) {
    while (ix < x.size() && x.atoms_[ix].value <= v) fx += x.atoms_[ix++].prob;
    while (iy < y.size() && y.atoms_[iy].value <= v) fy += y.atoms_[iy++].prob;
    const double f = fx * fy;
    if (f > prev_cdf) atoms.push_back({v, f - prev_cdf});
    prev_cdf = f;
  }
  auto result = from_atoms(std::move(atoms));
  if (max_atoms != 0 && result.size() > max_atoms) {
    result = result.truncated(max_atoms);
  }
  return result;
}

DiscreteDistribution DiscreteDistribution::mixture(
    const DiscreteDistribution& x, double w, const DiscreteDistribution& y) {
  if (w < 0.0 || w > 1.0) {
    throw std::invalid_argument("mixture: weight must be in [0,1]");
  }
  std::vector<Atom> atoms;
  atoms.reserve(x.size() + y.size());
  for (const Atom& at : x.atoms_) atoms.push_back({at.value, w * at.prob});
  for (const Atom& at : y.atoms_) {
    atoms.push_back({at.value, (1.0 - w) * at.prob});
  }
  return from_atoms(std::move(atoms));
}

DiscreteDistribution DiscreteDistribution::truncated(
    std::size_t max_atoms) const {
  if (max_atoms == 0 || size() <= max_atoms) return *this;
  // Greedy pass merging nearest-by-value adjacent atoms. Each round removes
  // roughly half the overshoot; repeated until within budget. A heap-based
  // exact nearest-pair scheme would be O(n log n) as well but the simple
  // pass keeps atoms balanced and is what Dodin-style discretizations do.
  std::vector<Atom> atoms = atoms_;
  while (atoms.size() > max_atoms) {
    const std::size_t excess = atoms.size() - max_atoms;
    // Collect gaps, pick a threshold so we merge ~excess pairs this pass.
    std::vector<double> gaps;
    gaps.reserve(atoms.size() - 1);
    for (std::size_t i = 0; i + 1 < atoms.size(); ++i) {
      gaps.push_back(atoms[i + 1].value - atoms[i].value);
    }
    std::vector<double> sorted_gaps = gaps;
    const std::size_t kth = std::min(excess, sorted_gaps.size()) - 1;
    std::nth_element(sorted_gaps.begin(), sorted_gaps.begin() + kth,
                     sorted_gaps.end());
    const double threshold = sorted_gaps[kth];

    std::vector<Atom> next;
    next.reserve(atoms.size());
    std::size_t i = 0;
    std::size_t budget = excess;  // pairs we may merge this pass
    while (i < atoms.size()) {
      if (budget > 0 && i + 1 < atoms.size() && gaps[i] <= threshold) {
        const Atom& a = atoms[i];
        const Atom& b = atoms[i + 1];
        const double p = a.prob + b.prob;
        next.push_back({(a.value * a.prob + b.value * b.prob) / p, p});
        i += 2;
        --budget;
      } else {
        next.push_back(atoms[i]);
        ++i;
      }
    }
    if (next.size() == atoms.size()) break;  // no progress (defensive)
    atoms = std::move(next);
  }
  return from_atoms(std::move(atoms));
}

bool DiscreteDistribution::approx_equals(const DiscreteDistribution& other,
                                         double tol) const noexcept {
  if (size() != other.size()) return false;
  for (std::size_t i = 0; i < size(); ++i) {
    if (std::fabs(atoms_[i].value - other.atoms_[i].value) > tol) return false;
    if (std::fabs(atoms_[i].prob - other.atoms_[i].prob) > tol) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const DiscreteDistribution& d) {
  os << '{';
  bool first = true;
  for (const Atom& at : d.atoms()) {
    if (!first) os << ',';
    os << '(' << at.value << ',' << at.prob << ')';
    first = false;
  }
  return os << '}';
}

}  // namespace expmk::prob
