#include "prob/discrete_distribution.hpp"

#include <cmath>
#include <memory>
#include <ostream>
#include <stdexcept>

#include "prob/dist_kernels.hpp"

namespace expmk::prob {

namespace dk = dist_kernels;

namespace {

/// Uninitialized kernel scratch: the span kernels fully overwrite what
/// they read, so worst-case-sized buffers must not pay a zeroing pass
/// (vector's value-initialization) the pre-kernel code never performed.
template <typename T>
struct Scratch {
  std::unique_ptr<T[]> data;
  std::size_t size;

  explicit Scratch(std::size_t n)
      : data(std::make_unique_for_overwrite<T[]>(n)), size(n) {}
  [[nodiscard]] std::span<T> span() { return {data.get(), size}; }
  /// The final (consolidated, usually far smaller) result as a vector.
  [[nodiscard]] std::vector<T> take(std::size_t n) const {
    return std::vector<T>(data.get(), data.get() + n);
  }
};

}  // namespace

// All arithmetic lives in prob/dist_kernels.cpp; the methods here lease
// vectors, call the span kernels and wrap the canonical result. The
// kernels mirror the pre-refactor object code operation for operation, so
// this file's behavior is byte-identical to what it replaced (pinned by
// tests/test_dist_kernels.cpp).

DiscreteDistribution::DiscreteDistribution() : atoms_{{0.0, 1.0}} {}

DiscreteDistribution::DiscreteDistribution(std::vector<Atom> sorted_atoms)
    : atoms_(std::move(sorted_atoms)) {}

DiscreteDistribution DiscreteDistribution::point(double value) {
  return DiscreteDistribution({{value, 1.0}});
}

DiscreteDistribution DiscreteDistribution::two_state(double a,
                                                     double p_success) {
  if (a <= 0.0) throw std::invalid_argument("two_state: weight must be > 0");
  if (p_success < 0.0 || p_success > 1.0) {
    throw std::invalid_argument("two_state: p_success must be in [0,1]");
  }
  std::vector<Atom> atoms(2);
  atoms.resize(dk::two_state(a, p_success, atoms));
  return DiscreteDistribution(std::move(atoms));
}

DiscreteDistribution DiscreteDistribution::geometric_reexec(double a,
                                                            double p_success,
                                                            int max_attempts) {
  if (a <= 0.0) {
    throw std::invalid_argument("geometric_reexec: weight must be > 0");
  }
  if (p_success <= 0.0 || p_success > 1.0) {
    throw std::invalid_argument("geometric_reexec: p in (0,1] required");
  }
  if (max_attempts < 1) {
    throw std::invalid_argument("geometric_reexec: max_attempts >= 1");
  }
  std::vector<Atom> atoms;
  atoms.reserve(static_cast<std::size_t>(max_attempts));
  double tail = 1.0;  // P(attempts >= k)
  for (int k = 1; k < max_attempts; ++k) {
    const double pk = tail * p_success;
    atoms.push_back({a * k, pk});
    tail -= pk;
  }
  atoms.push_back({a * max_attempts, tail});
  return from_atoms(std::move(atoms));
}

void DiscreteDistribution::consolidate(std::vector<Atom>& atoms) {
  atoms.resize(dk::consolidate(atoms));
}

DiscreteDistribution DiscreteDistribution::from_atoms(std::vector<Atom> atoms) {
  consolidate(atoms);
  dk::normalize(atoms);  // throws on empty / non-positive total mass
  return DiscreteDistribution(std::move(atoms));
}

DiscreteDistribution DiscreteDistribution::from_canonical(
    std::vector<Atom> atoms) {
  if (atoms.empty()) {
    throw std::invalid_argument("from_canonical: empty atom list");
  }
  return DiscreteDistribution(std::move(atoms));
}

double DiscreteDistribution::mean() const noexcept {
  return dk::mean(atoms_);
}

double DiscreteDistribution::variance() const noexcept {
  const double m = mean();
  double v = 0.0;
  for (const Atom& at : atoms_) {
    const double d = at.value - m;
    v += d * d * at.prob;
  }
  return v;
}

double DiscreteDistribution::cdf(double x) const noexcept {
  double acc = 0.0;
  for (const Atom& at : atoms_) {
    if (at.value > x) break;
    acc += at.prob;
  }
  return acc;
}

double DiscreteDistribution::quantile(double q) const {
  return dk::quantile(atoms_, q);
}

DiscreteDistribution DiscreteDistribution::shifted(double c) const {
  std::vector<Atom> atoms = atoms_;
  dk::shift(atoms, c);
  return DiscreteDistribution(std::move(atoms));
}

DiscreteDistribution DiscreteDistribution::convolve(
    const DiscreteDistribution& x, const DiscreteDistribution& y,
    std::size_t max_atoms, dk::TruncationCert* cert) {
  Scratch<Atom> out(x.size() * y.size());
  const std::size_t m = dk::convolve(x.atoms_, y.atoms_, out.span());
  auto result = DiscreteDistribution(out.take(m));
  if (max_atoms != 0 && result.size() > max_atoms) {
    result = result.truncated(max_atoms, cert);
  }
  return result;
}

DiscreteDistribution DiscreteDistribution::max_of(
    const DiscreteDistribution& x, const DiscreteDistribution& y,
    std::size_t max_atoms, dk::TruncationCert* cert) {
  Scratch<Atom> out(x.size() + y.size());
  Scratch<double> support(x.size() + y.size());
  const std::size_t m =
      dk::max_of(x.atoms_, y.atoms_, out.span(), support.span());
  auto result = DiscreteDistribution(out.take(m));
  if (max_atoms != 0 && result.size() > max_atoms) {
    result = result.truncated(max_atoms, cert);
  }
  return result;
}

DiscreteDistribution DiscreteDistribution::mixture(
    const DiscreteDistribution& x, double w, const DiscreteDistribution& y) {
  Scratch<Atom> out(x.size() + y.size());
  const std::size_t m = dk::mixture(x.atoms_, w, y.atoms_, out.span());
  return DiscreteDistribution(out.take(m));
}

DiscreteDistribution DiscreteDistribution::truncated(
    std::size_t max_atoms, dk::TruncationCert* cert) const {
  if (max_atoms == 0 || size() <= max_atoms) return *this;
  std::vector<Atom> atoms = atoms_;
  Scratch<double> gap_scratch(2 * (atoms.size() - 1));
  dk::TruncationCert local;
  atoms.resize(dk::truncate(atoms, max_atoms, local, gap_scratch.span()));
  if (cert != nullptr) cert->accumulate(local);
  return DiscreteDistribution(std::move(atoms));
}

bool DiscreteDistribution::approx_equals(const DiscreteDistribution& other,
                                         double tol) const noexcept {
  if (size() != other.size()) return false;
  for (std::size_t i = 0; i < size(); ++i) {
    if (std::fabs(atoms_[i].value - other.atoms_[i].value) > tol) return false;
    if (std::fabs(atoms_[i].prob - other.atoms_[i].prob) > tol) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const DiscreteDistribution& d) {
  os << '{';
  bool first = true;
  for (const Atom& at : d.atoms()) {
    if (!first) os << ',';
    os << '(' << at.value << ',' << at.prob << ')';
    first = false;
  }
  return os << '}';
}

}  // namespace expmk::prob
