// prob/atom.hpp
//
// The one probability atom shared by the whole distribution layer: the
// flat kernels (dist_kernels.hpp) operate on spans of Atom, the
// DiscreteDistribution object wraps a vector of them, and exp::Workspace
// leases Atom arenas for the allocation-free evaluators. Split out of
// discrete_distribution.hpp so the kernels and the workspace do not pull
// in the object API.

#pragma once

namespace expmk::prob {

/// One probability atom: P(X = value) = prob.
struct Atom {
  double value;
  double prob;
};

/// Relative value gap below which two atoms are merged during
/// consolidation (from_atoms and every operation built on it). One
/// constant for the whole library: the flat kernels and the
/// DiscreteDistribution object share the merge semantics bit for bit.
inline constexpr double kValueMergeEps = 1e-12;

}  // namespace expmk::prob
