#include "prob/dist_kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "util/simd.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define EXPMK_X86_SIMD 1
#include <immintrin.h>
#endif

namespace expmk::prob::dist_kernels {

// Every kernel here is the executable definition of one
// DiscreteDistribution operation: the object methods forward to these, so
// any change below changes both paths together (and the bit-identity
// property in tests/test_dist_kernels.cpp holds by construction).
//
// convolve and max_of run with a runtime-dispatched backend (util::simd):
// the scalar loops are the executable spec and the AVX2 loops must
// reproduce them bit for bit. Two rules make that possible without
// pinning the vector unit to scalar operation order:
//   * only elementwise stages are vectorized (the outer-product add/mul,
//     the product-CDF multiply/difference, the normalize reciprocal
//     multiply, the eps-merge pass-through screen) — per-lane identical
//     to the scalar loop by IEEE754;
//   * the ordering stage (the run merge that replaces canonicalize's
//     std::sort) is ONE branchless engine shared verbatim by both
//     backends, so its output — including the order of exact value ties,
//     which it resolves stably (earlier run first) — cannot differ
//     between them.
// Reduction order is never vectorized: probability sums (the eps-merge
// accumulation, the CDF prefix sums) stay in the scalar spec's
// sequential association on both backends, and the normalize total uses
// one fixed 4-accumulator association (atom_prob_sum) on both.

namespace {

namespace simd = ::expmk::util::simd;

// ---------------------------------------------------------------------------
// Kernel scratch. convolve ping-pongs its merge passes between two
// thread-local atom buffers and max_of builds its CDF planes in a
// thread-local double buffer (the same pattern as mc/trial.cpp's adapter
// scratch): call-site signatures keep taking Atom spans, and after the
// arenas reach their high-water mark the kernels are allocation-free,
// which preserves the steady-state zero-allocation pins in
// test_workspace.cpp.

thread_local std::vector<Atom> tl_atom_arena;
thread_local std::vector<double> tl_plane_arena;

EXPMK_NOALLOC Atom* atom_arena(std::size_t atoms) {
  // NOLINTNEXTLINE(expmk-no-alloc-kernel): thread-local high-water arena — grows to the peak once, steady state reuses it (pinned by test_workspace.cpp)
  if (tl_atom_arena.size() < atoms) tl_atom_arena.resize(atoms);
  return tl_atom_arena.data();
}

EXPMK_NOALLOC double* plane_arena(std::size_t doubles) {
  // NOLINTNEXTLINE(expmk-no-alloc-kernel): thread-local high-water arena — grows to the peak once, steady state reuses it (pinned by test_workspace.cpp)
  if (tl_plane_arena.size() < doubles) tl_plane_arena.resize(doubles);
  return tl_plane_arena.data();
}

EXPMK_NOALLOC bool use_avx2() { return simd::active() == simd::Backend::Avx2; }

// ---------------------------------------------------------------------------
// Outer product: one run per SMALL-side atom, each run streaming the
// whole big side, so the run count is small.size() and the bottom-up
// merge below does ceil(log2(small.size())) passes — a pipeline convolve
// against a 2-atom task law merges in ONE pass. Runs are ascending by
// construction (the big side is canonical, adding a constant is
// monotone).

EXPMK_NOALLOC void outer_product_scalar(std::span<const Atom> small,
                          std::span<const Atom> big, Atom* out) {
  std::size_t k = 0;
  for (const Atom& as : small) {
    const double sv = as.value;
    const double sp = as.prob;
    for (const Atom& ab : big) {
      out[k].value = ab.value + sv;
      out[k].prob = ab.prob * sp;
      ++k;
    }
  }
}

// ---------------------------------------------------------------------------
// The run-merge engine. A single two-run merge is latency-bound: each
// step is a ~11-cycle chain (load head -> compare -> pointer bump -> next
// load), so one merge can't beat ~11 cycles per output no matter the ALU
// width. The engine instead interleaves kMergeLanes INDEPENDENT merges in
// one loop — their chains overlap and the core runs at throughput, not
// latency. Independent work always exists: early bottom-up passes have
// many run pairs, and the last passes (few pairs) are split into
// co-sorted segments by merge-path partitioning.
//
// The merge is STABLE — on equal values the earlier (A-side) run wins —
// and compares values only, so a step moves one 16-byte Atom with a
// single paired load/store. Stability plus the fixed big-major run layout
// makes the output deterministic, and both backends share this exact
// engine, so cross-backend bit-identity needs no tie rule beyond it.

#ifndef EXPMK_MERGE_LANES
#define EXPMK_MERGE_LANES 4
#endif
constexpr int kMergeLanes = EXPMK_MERGE_LANES;

// Passes with fewer pairs than lanes are only worth splitting when the
// pass itself is big enough to amortize the binary searches. The
// threshold is low on purpose: the analytic pipeline's dominant op is a
// capped-support convolve against a 2-atom task law (one merge pass, ONE
// run pair), so even a 128-atom pass gains ~1.7x from running its
// merge-path segments on all lanes instead of one sequential merge.
constexpr std::size_t kSplitMinTotal = 64;

struct MergeJob {
  const Atom* a;
  std::size_t na;
  const Atom* b;
  std::size_t nb;
  Atom* d;
};

thread_local std::vector<MergeJob> tl_merge_jobs;

struct Lane {
  const Atom* a;
  const Atom* ae;
  const Atom* b;
  const Atom* be;
  Atom* d;
};

EXPMK_NOALLOC inline void load_lane(Lane& ln, const MergeJob& j) {
  ln = {j.a, j.a + j.na, j.b, j.b + j.nb, j.d};
}

// One merge step. The winning side is picked by POINTER MASK arithmetic,
// not a ternary: on random merge data the take-A outcome is a coin flip,
// and compilers if-convert a ternary back into a data branch that
// mispredicts every other step — flushing all interleaved lanes with it.
// The mask form is pure ALU and cannot be branched. On x86 the mask is
// materialized straight from the compare's carry flag (ucomisd + sbb,
// which also treats a NaN as take-B exactly like the portable `<=`);
// elsewhere the portable expression computes the identical mask — the
// fallback differs in speed only, never in bits.
EXPMK_NOALLOC inline void step_one(const Atom*& a, const Atom*& b, Atom*& d) {
  const std::uintptr_t ua = reinterpret_cast<std::uintptr_t>(a);
  const std::uintptr_t ub = reinterpret_cast<std::uintptr_t>(b);
  std::uintptr_t take_b;  // all-ones iff b->value < a->value (stable: A
                          // wins value ties)
#if EXPMK_X86_SIMD
  asm("ucomisd %[va], %[vb]\n\t"  // CF := b->value < a->value (or NaN)
      "sbbq %[m], %[m]"
      : [m] "=r"(take_b)
      : [va] "x"(a->value), [vb] "x"(b->value)
      : "cc");
#else
  take_b = -static_cast<std::uintptr_t>(!(a->value <= b->value));
#endif
  *d++ = *reinterpret_cast<const Atom*>(ua ^ ((ua ^ ub) & take_b));
  const std::uintptr_t bump_b = sizeof(Atom) & take_b;
  b = reinterpret_cast<const Atom*>(ub + bump_b);
  a = reinterpret_cast<const Atom*>(ua + (sizeof(Atom) ^ bump_b));
}

EXPMK_NOALLOC void copy_tail(Lane& ln) {
  const std::size_t ra = static_cast<std::size_t>(ln.ae - ln.a);
  if (ra > 0) {
    std::memcpy(ln.d, ln.a, ra * sizeof(Atom));
    ln.d += ra;
    ln.a = ln.ae;
  }
  const std::size_t rb = static_cast<std::size_t>(ln.be - ln.b);
  if (rb > 0) {
    std::memcpy(ln.d, ln.b, rb * sizeof(Atom));
    ln.d += rb;
    ln.b = ln.be;
  }
}

EXPMK_NOALLOC void finish_merge(Lane& ln) {
  while (ln.a < ln.ae && ln.b < ln.be) step_one(ln.a, ln.b, ln.d);
  copy_tail(ln);
}

// The hot batch: `steps` interleaved steps on kMergeLanes lanes, no
// bounds checks (the caller proved every lane has at least `steps` on
// both sides). Lane state is hoisted into local arrays whose indices are
// all unrolled constants, so scalar replacement keeps the live pointers
// in registers across the loop.
EXPMK_NOALLOC void run_batch(Lane* lanes, std::size_t steps) {
  constexpr int K = kMergeLanes;
  const Atom* a[K];
  const Atom* b[K];
  Atom* d[K];
  for (int l = 0; l < K; ++l) {
    a[l] = lanes[l].a;
    b[l] = lanes[l].b;
    d[l] = lanes[l].d;
  }
  for (std::size_t s = 0; s < steps; ++s) {
#pragma GCC unroll 16
    for (int l = 0; l < K; ++l) step_one(a[l], b[l], d[l]);
  }
  for (int l = 0; l < K; ++l) {
    lanes[l].a = a[l];
    lanes[l].b = b[l];
    lanes[l].d = d[l];
  }
}

// Merge-path partition: the (ia, ib) with ia + ib = q such that the
// stable merge of A[0..ia) with B[0..ib) is exactly the first q outputs
// of the full stable merge. That is the smallest ia with
// B[ib-1].value < A[ia].value (A would otherwise have been taken first);
// the predicate is monotone in ia, so binary search. Bounds keep every
// probe in range: ia < hi <= na and 1 <= ib = q - ia <= nb.
EXPMK_NOALLOC std::pair<std::size_t, std::size_t> merge_path_split(const Atom* a,
                                                     std::size_t na,
                                                     const Atom* b,
                                                     std::size_t nb,
                                                     std::size_t q) {
  std::size_t lo = q > nb ? q - nb : 0;
  std::size_t hi = std::min(q, na);
  while (lo < hi) {
    const std::size_t ia = lo + (hi - lo) / 2;
    const std::size_t ib = q - ia;
    if (b[ib - 1].value >= a[ia].value) {
      lo = ia + 1;
    } else {
      hi = ia;
    }
  }
  return {lo, q - lo};
}

// Splits one pair merge into nseg independent, contiguously-destined
// segment merges. Segments with an empty side degenerate to copies.
EXPMK_NOALLOC void split_job(const MergeJob& j, std::size_t nseg,
               std::vector<MergeJob>& out) {
  const std::size_t total = j.na + j.nb;
  std::size_t q0 = 0, ia0 = 0, ib0 = 0;
  for (std::size_t s = 1; s <= nseg; ++s) {
    std::size_t ia1 = j.na, ib1 = j.nb;
    const std::size_t q1 = s == nseg ? total : total * s / nseg;
    if (s != nseg) {
      std::tie(ia1, ib1) = merge_path_split(j.a, j.na, j.b, j.nb, q1);
    }
    const std::size_t na = ia1 - ia0;
    const std::size_t nb = ib1 - ib0;
    Atom* d = j.d + q0;
    if (na == 0 || nb == 0) {
      const Atom* src = na == 0 ? j.b + ib0 : j.a + ia0;
      if (na + nb > 0) std::memcpy(d, src, (na + nb) * sizeof(Atom));
    } else {
      // NOLINTNEXTLINE(expmk-no-alloc-kernel): thread-local job list keeps its high-water capacity across clear(); steady state does not grow
      out.push_back({j.a + ia0, na, j.b + ib0, nb, d});
    }
    q0 = q1;
    ia0 = ia1;
    ib0 = ib1;
  }
}

// Runs a job list with kMergeLanes interleaved lanes. The batch loop
// takes steps = min over lanes of min(A-left, B-left), so the hot loop
// has no bounds checks at all; exhausted lanes copy their tail and refill
// from the job list, and once jobs run out the stragglers drain one by
// one. Tiny job lists skip the interleave (nothing to overlap with).
EXPMK_NOALLOC void merge_jobs_interleaved(const MergeJob* jobs, std::size_t njobs) {
  constexpr int K = kMergeLanes;
  if (njobs < 2) {
    for (std::size_t j = 0; j < njobs; ++j) {
      Lane ln;
      load_lane(ln, jobs[j]);
      finish_merge(ln);
    }
    return;
  }
  Lane lanes[K];
  bool live[K];
  std::size_t next = 0;
  int nlive = 0;
  for (int l = 0; l < K; ++l) {
    live[l] = next < njobs;
    if (live[l]) {
      load_lane(lanes[l], jobs[next++]);
      ++nlive;
    } else {
      lanes[l] = {nullptr, nullptr, nullptr, nullptr, nullptr};
    }
  }
  while (nlive == K) {
    std::size_t steps = static_cast<std::size_t>(-1);
    for (int l = 0; l < K; ++l) {
      const std::size_t ra = static_cast<std::size_t>(lanes[l].ae - lanes[l].a);
      const std::size_t rb = static_cast<std::size_t>(lanes[l].be - lanes[l].b);
      steps = std::min(steps, std::min(ra, rb));
    }
    run_batch(lanes, steps);
    for (int l = 0; l < K; ++l) {
      Lane& ln = lanes[l];
      if (ln.a < ln.ae && ln.b < ln.be) continue;
      copy_tail(ln);
      if (next < njobs) {
        load_lane(ln, jobs[next++]);
      } else {
        live[l] = false;
        --nlive;
      }
    }
  }
  for (int l = 0; l < K; ++l) {
    if (live[l]) finish_merge(lanes[l]);
  }
}

// One bottom-up pass: pair up runs of run_len, memcpy the lone tail run,
// and feed the pairs — merge-path-segmented when there are fewer pairs
// than lanes — to the interleaved engine.
EXPMK_NOALLOC void merge_pass(const Atom* src, Atom* dst, std::size_t n,
                std::size_t run_len) {
  auto& jobs = tl_merge_jobs;
  jobs.clear();
  for (std::size_t pos = 0; pos < n; pos += 2 * run_len) {
    const std::size_t mid = std::min(pos + run_len, n);
    const std::size_t end = std::min(pos + 2 * run_len, n);
    if (mid >= end) {
      std::memcpy(dst + pos, src + pos, (end - pos) * sizeof(Atom));
    } else {
      // NOLINTNEXTLINE(expmk-no-alloc-kernel): thread-local job list keeps its high-water capacity across clear(); steady state does not grow
      jobs.push_back({src + pos, mid - pos, src + mid, end - mid, dst + pos});
    }
  }
  const std::size_t klanes = static_cast<std::size_t>(kMergeLanes);
  if (!jobs.empty() && jobs.size() < klanes && n >= kSplitMinTotal) {
    MergeJob pairs[kMergeLanes];
    const std::size_t npairs = jobs.size();
    std::copy(jobs.begin(), jobs.end(), pairs);
    jobs.clear();
    const std::size_t nseg = (klanes + npairs - 1) / npairs;
    for (std::size_t p = 0; p < npairs; ++p) {
      split_job(pairs[p], nseg, jobs);
    }
  }
  merge_jobs_interleaved(jobs.data(), jobs.size());
}

// Bottom-up merge of sorted runs, ping-ponging between buf and alt.
// Returns the buffer holding the fully sorted result (either input).
EXPMK_NOALLOC Atom* merge_runs(Atom* buf, Atom* alt, std::size_t n, std::size_t run_len) {
  while (run_len < n) {
    merge_pass(buf, alt, n, run_len);
    std::swap(buf, alt);
    run_len *= 2;
  }
  return buf;
}

// ---------------------------------------------------------------------------
// The canonical reduction tail on a sorted atom list.

// consolidate()'s post-sort pass: drop non-positive masses and eps-merge
// adjacent values into the first atom's value. Sequential spec order on
// both backends (the accumulation into o[w-1] is a reduction). o may
// equal a (w <= t always) or be a distinct non-overlapping buffer.
EXPMK_NOALLOC std::size_t eps_merge_atoms(const Atom* a, std::size_t n, Atom* o) {
  std::size_t w = 0;
  for (std::size_t t = 0; t < n; ++t) {
    if (a[t].prob <= 0.0) continue;
    if (w > 0) {
      const double scale =
          std::max({std::fabs(o[w - 1].value), std::fabs(a[t].value), 1.0});
      if (a[t].value - o[w - 1].value <= kValueMergeEps * scale) {
        o[w - 1].prob += a[t].prob;
        continue;
      }
    }
    o[w] = a[t];
    ++w;
  }
  return w;
}

// The normalize total in one fixed 4-accumulator association — plain C
// compiled once and called by both backends, so cross-backend
// bit-identity is automatic. Four independent chains run at ~1 add/cycle
// instead of the sequential spec sum's 1 add per 4-cycle latency.
// (One-time ulp-level golden re-baseline, same event as the stable-merge
// tie order — see the file comment.)
EXPMK_NOALLOC double atom_prob_sum(const Atom* a, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += a[i].prob;
    a1 += a[i + 1].prob;
    a2 += a[i + 2].prob;
    a3 += a[i + 3].prob;
  }
  double total = (a0 + a1) + (a2 + a3);
  for (; i < n; ++i) total += a[i].prob;
  return total;
}

// ---------------------------------------------------------------------------
// AVX2 stages. Guarded by the compile-time gate; selected per call via
// util::simd::active(). No FMA anywhere: -ffp-contract=off is a
// library-wide contract and explicit intrinsics never contract.

#if EXPMK_X86_SIMD

// The interleaved-pair outer product: a run of (v, p) pairs is
// (pair + [sv, 0]) * [1, sp] lane-wise — value (v + sv) * 1.0 and prob
// (p + 0.0) * sp are bit-identical to the scalar v + sv and p * sp
// (multiplying by 1.0 is an exact identity, and adding 0.0 is exact for
// the strictly positive probs of a canonical list).
EXPMK_NOALLOC __attribute__((target("avx2"))) void outer_product_avx2(
    std::span<const Atom> small, std::span<const Atom> big, Atom* out) {
  static_assert(sizeof(Atom) == 2 * sizeof(double));
  const double* src = reinterpret_cast<const double*>(big.data());
  double* dst = reinterpret_cast<double*>(out);
  const std::size_t m = 2 * big.size();
  for (const Atom& as : small) {
    const __m256d add = _mm256_setr_pd(as.value, 0.0, as.value, 0.0);
    const __m256d mul = _mm256_setr_pd(1.0, as.prob, 1.0, as.prob);
    std::size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      _mm256_storeu_pd(
          dst + j,
          _mm256_mul_pd(_mm256_add_pd(_mm256_loadu_pd(src + j), add), mul));
    }
    for (; j < m; j += 2) {
      dst[j] = src[j] + as.value;
      dst[j + 1] = src[j + 1] * as.prob;
    }
    dst += m;
  }
}

// The renormalize multiply on interleaved pairs: value * 1.0 is an exact
// identity, prob * r matches the scalar loop per lane (both backends
// multiply by the same shared reciprocal — see finish_atoms).
EXPMK_NOALLOC __attribute__((target("avx2"))) void scale_probs_avx2(Atom* atoms,
                                                      std::size_t n, double r) {
  static_assert(sizeof(Atom) == 2 * sizeof(double));
  double* d = reinterpret_cast<double*>(atoms);
  const std::size_t m = 2 * n;
  const __m256d t = _mm256_setr_pd(1.0, r, 1.0, r);
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    _mm256_storeu_pd(d + i, _mm256_mul_pd(_mm256_loadu_pd(d + i), t));
  }
  for (; i < m; i += 2) d[i + 1] *= r;
}

// eps_merge_atoms with a vectorized pass-through screen: a 4-atom block
// whose probs are all positive and whose adjacent gaps (including the
// boundary gap against the last written atom) all clear the eps window is
// exactly a block the scalar loop would copy verbatim — so copy it as two
// ymm moves. The screen evaluates the SPEC's predicates elementwise
// (same subtract / abs / max / multiply / compare per lane), so it can
// never disagree with the scalar loop; any hit falls back to the scalar
// spec code for one element. Bit-identity across backends is therefore
// structural, not numerical luck. In-place (o == a) stays safe: a block's
// loads complete before its stores, and w <= t always.
EXPMK_NOALLOC __attribute__((target("avx2"))) std::size_t eps_merge_atoms_avx2(
    const Atom* a, std::size_t n, Atom* o) {
  static_assert(sizeof(Atom) == 2 * sizeof(double));
  const __m256d eps = _mm256_set1_pd(kValueMergeEps);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d absmask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  const double* src = reinterpret_cast<const double*>(a);
  double* dst = reinterpret_cast<double*>(o);
  std::size_t w = 0;
  std::size_t t = 0;
  while (t < n) {
    // The vector boundary lane compares against a[t-1]; that equals the
    // spec's o[w-1] only while the previous element passed through
    // unmerged, which the bit-compare establishes. (w > 0 implies t >= 1,
    // so the prev-shifted loads below stay in range.)
    if (t + 4 <= n && w > 0 && dst[2 * w - 2] == src[2 * t - 2]) {
      const __m256d c0 = _mm256_loadu_pd(src + 2 * t);
      const __m256d c1 = _mm256_loadu_pd(src + 2 * t + 4);
      const __m256d p0 = _mm256_loadu_pd(src + 2 * t - 2);
      const __m256d p1 = _mm256_loadu_pd(src + 2 * t + 2);
      // unpacklo/hi interleave lanes identically for cur/prev/probs, so
      // the per-lane predicates line up (lane order itself is irrelevant:
      // only the any-hit movemask is used).
      const __m256d cv = _mm256_unpacklo_pd(c0, c1);
      const __m256d cp = _mm256_unpackhi_pd(c0, c1);
      const __m256d pv = _mm256_unpacklo_pd(p0, p1);
      const __m256d scale = _mm256_max_pd(
          _mm256_max_pd(_mm256_and_pd(pv, absmask), _mm256_and_pd(cv, absmask)),
          one);
      const __m256d merge = _mm256_cmp_pd(
          _mm256_sub_pd(cv, pv), _mm256_mul_pd(eps, scale), _CMP_LE_OQ);
      const __m256d drop = _mm256_cmp_pd(cp, zero, _CMP_LE_OQ);
      if (_mm256_movemask_pd(_mm256_or_pd(merge, drop)) == 0) {
        _mm256_storeu_pd(dst + 2 * w, c0);
        _mm256_storeu_pd(dst + 2 * w + 4, c1);
        w += 4;
        t += 4;
        continue;
      }
    }
    // One element of the scalar spec (identical code to eps_merge_atoms).
    const Atom at = a[t];
    ++t;
    if (at.prob <= 0.0) continue;
    if (w > 0) {
      const double scale =
          std::max({std::fabs(o[w - 1].value), std::fabs(at.value), 1.0});
      if (at.value - o[w - 1].value <= kValueMergeEps * scale) {
        o[w - 1].prob += at.prob;
        continue;
      }
    }
    o[w] = at;
    ++w;
  }
  return w;
}

EXPMK_NOALLOC __attribute__((target("avx2"))) void cdf_product_diff_avx2(
    const double* fx, const double* fy, std::size_t n, double* f, double* d) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        f + i, _mm256_mul_pd(_mm256_loadu_pd(fx + i), _mm256_loadu_pd(fy + i)));
  }
  for (; i < n; ++i) f[i] = fx[i] * fy[i];
  if (n == 0) return;
  d[0] = f[0];
  i = 1;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        d + i, _mm256_sub_pd(_mm256_loadu_pd(f + i), _mm256_loadu_pd(f + i - 1)));
  }
  for (; i < n; ++i) d[i] = f[i] - f[i - 1];
}

#endif  // EXPMK_X86_SIMD

EXPMK_NOALLOC void cdf_product_diff_scalar(const double* fx, const double* fy, std::size_t n,
                             double* f, double* d) {
  for (std::size_t i = 0; i < n; ++i) f[i] = fx[i] * fy[i];
  if (n == 0) return;
  d[0] = f[0];
  for (std::size_t i = 1; i < n; ++i) d[i] = f[i] - f[i - 1];
}

// from_atoms' renormalization in place: atom_prob_sum total (fixed
// association, shared by both backends), throw on non-positive mass
// (from_atoms' exact failure condition), then multiply every prob by ONE
// shared reciprocal — both backends compute the same r = 1.0 / total and
// the same per-element prob * r, so they stay bit-identical. The
// reciprocal replaces normalize()'s per-element divide (a ~4x throughput
// win: one divide total instead of n); the difference is at most 1 ulp
// per probability and is part of the same one-time golden re-baseline as
// the stable-merge tie order.
EXPMK_NOALLOC std::size_t finish_atoms(Atom* a, std::size_t n, bool avx2) {
  const double total = atom_prob_sum(a, n);
  if (n == 0 || total <= 0.0) {
    throw std::invalid_argument("from_atoms: no positive probability mass");
  }
  const double r = 1.0 / total;
#if EXPMK_X86_SIMD
  if (avx2) {
    scale_probs_avx2(a, n, r);
    return n;
  }
#else
  (void)avx2;
#endif
  for (std::size_t i = 0; i < n; ++i) a[i].prob *= r;
  return n;
}

// Dispatched consolidate tail: identical output either way (the AVX2
// variant only fast-paths blocks the scalar spec would pass through).
EXPMK_NOALLOC std::size_t eps_merge_dispatch(const Atom* a, std::size_t n, Atom* o,
                               bool avx2) {
#if EXPMK_X86_SIMD
  if (avx2) return eps_merge_atoms_avx2(a, n, o);
#else
  (void)avx2;
#endif
  return eps_merge_atoms(a, n, o);
}

}  // namespace

EXPMK_NOALLOC std::size_t consolidate(std::span<Atom> atoms) {
  // erase_if(prob <= 0), order-preserving.
  std::size_t n = 0;
  for (const Atom& at : atoms) {
    if (at.prob > 0.0) atoms[n++] = at;
  }
  std::sort(atoms.begin(), atoms.begin() + static_cast<std::ptrdiff_t>(n),
            [](const Atom& x, const Atom& y) { return x.value < y.value; });
  // Adjacent eps-merge into the first atom's value (mirrors the object
  // consolidate's merged-vector loop; w <= t always, so in place is safe).
  std::size_t w = 0;
  for (std::size_t t = 0; t < n; ++t) {
    if (w > 0) {
      const double scale = std::max(
          {std::fabs(atoms[w - 1].value), std::fabs(atoms[t].value), 1.0});
      if (atoms[t].value - atoms[w - 1].value <= kValueMergeEps * scale) {
        atoms[w - 1].prob += atoms[t].prob;
        continue;
      }
    }
    atoms[w++] = atoms[t];
  }
  return w;
}

EXPMK_NOALLOC void normalize(std::span<Atom> atoms) {
  double total = 0.0;
  for (const Atom& at : atoms) total += at.prob;
  if (atoms.empty() || total <= 0.0) {
    throw std::invalid_argument("from_atoms: no positive probability mass");
  }
  for (Atom& at : atoms) at.prob /= total;
}

EXPMK_NOALLOC std::size_t canonicalize(std::span<Atom> atoms) {
  const std::size_t n = consolidate(atoms);
  normalize(atoms.subspan(0, n));
  return n;
}

// Fixed 4-accumulator association like atom_prob_sum (and the same
// one-time golden re-baseline event): four independent multiply-add
// chains instead of one 4-cycle-latency serial sum. Shared by the object
// path (DiscreteDistribution::mean is a thin wrapper), so object and
// flat means stay bit-identical by construction.
EXPMK_NOALLOC double mean(std::span<const Atom> atoms) noexcept {
  const Atom* a = atoms.data();
  const std::size_t n = atoms.size();
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += a[i].value * a[i].prob;
    a1 += a[i + 1].value * a[i + 1].prob;
    a2 += a[i + 2].value * a[i + 2].prob;
    a3 += a[i + 3].value * a[i + 3].prob;
  }
  double m = (a0 + a1) + (a2 + a3);
  for (; i < n; ++i) m += a[i].value * a[i].prob;
  return m;
}

EXPMK_NOALLOC double quantile(std::span<const Atom> atoms, double q) {
  if (q <= 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile: q must be in (0,1]");
  }
  double acc = 0.0;
  for (const Atom& at : atoms) {
    acc += at.prob;
    if (acc >= q - 1e-15) return at.value;
  }
  return atoms.back().value;
}

EXPMK_NOALLOC std::size_t point(double value, std::span<Atom> out) {
  out[0] = {value, 1.0};
  return 1;
}

EXPMK_NOALLOC std::size_t two_state(double a, double p_success, std::span<Atom> out) {
  if (p_success >= 1.0) return point(a, out);
  if (p_success <= 0.0) return point(2.0 * a, out);
  out[0] = {a, p_success};
  out[1] = {2.0 * a, 1.0 - p_success};
  return 2;
}

EXPMK_NOALLOC void shift(std::span<Atom> atoms, double c) noexcept {
  for (Atom& at : atoms) at.value += c;
}

EXPMK_NOALLOC std::size_t convolve(std::span<const Atom> x, std::span<const Atom> y,
                     std::span<Atom> out) {
  const std::size_t n = x.size() * y.size();
  if (n == 0) return canonicalize(out.subspan(0, 0));  // from_atoms' throw

  // Orient the runs along the BIGGER input: small.size() pre-sorted runs
  // of big.size() atoms each, so the bottom-up merge does
  // ceil(log2(small.size())) passes — the pipeline's dominant n-by-2
  // convolves against two_state laws merge in a single pass. IEEE + and *
  // are commutative, so the atom values themselves don't depend on which
  // argument plays which role.
  std::span<const Atom> big = x;
  std::span<const Atom> small = y;
  if (big.size() < small.size()) std::swap(big, small);
  const std::size_t run_len = big.size();

  const bool avx2 = use_avx2();
  Atom* buf = atom_arena(2 * n);
  Atom* alt = buf + n;

#if EXPMK_X86_SIMD
  if (avx2) {
    outer_product_avx2(small, big, buf);
  } else {
    outer_product_scalar(small, big, buf);
  }
#else
  outer_product_scalar(small, big, buf);
#endif

  // The runs are pre-sorted, so canonicalize's std::sort collapses into a
  // stable bottom-up merge; then consolidate's drop + eps-merge and
  // from_atoms' renormalize complete the canonical reduction.
  const Atom* sorted = merge_runs(buf, alt, n, run_len);
  const std::size_t w = eps_merge_dispatch(sorted, n, out.data(), avx2);
  return finish_atoms(out.data(), w, avx2);
}

EXPMK_NOALLOC std::size_t max_of(std::span<const Atom> x, std::span<const Atom> y,
                   std::span<Atom> out, std::span<double> support_scratch) {
  // Support union. Both inputs are canonical (strictly ascending), so a
  // two-way merge with an exact-equality skip reproduces the object
  // path's sort(concat) + unique.
  std::size_t ns = 0;
  {
    std::size_t i = 0, j = 0;
    while (i < x.size() || j < y.size()) {
      double v;
      if (j >= y.size() || (i < x.size() && x[i].value <= y[j].value)) {
        v = x[i++].value;
      } else {
        v = y[j++].value;
      }
      if (ns == 0 || support_scratch[ns - 1] != v) support_scratch[ns++] = v;
    }
  }

  // Prefix CDFs in spec accumulation order (a sequential reduction, never
  // vectorized), then the dispatched product-CDF differencing:
  // F_max(v) = F_x(v) * F_y(v), an atom wherever F_max steps up.
  const bool avx2 = use_avx2();
  double* base = plane_arena(4 * ns);
  double* fx = base;
  double* fy = fx + ns;
  double* f = fy + ns;
  double* d = f + ns;
  {
    std::size_t ix = 0, iy = 0;
    double fxa = 0.0, fya = 0.0;
    for (std::size_t s = 0; s < ns; ++s) {
      const double v = support_scratch[s];
      while (ix < x.size() && x[ix].value <= v) fxa += x[ix++].prob;
      while (iy < y.size() && y[iy].value <= v) fya += y[iy++].prob;
      fx[s] = fxa;
      fy[s] = fya;
    }
  }
#if EXPMK_X86_SIMD
  if (avx2) {
    cdf_product_diff_avx2(fx, fy, ns, f, d);
  } else {
    cdf_product_diff_scalar(fx, fy, ns, f, d);
  }
#else
  cdf_product_diff_scalar(fx, fy, ns, f, d);
#endif

  // Compact the positive steps straight into `out` (f is monotone:
  // rounding a monotone real product is monotone, so d >= 0 and "d > 0"
  // is spec's f > prev_cdf). The support is strictly ascending, so
  // canonicalize's sort is the identity permutation here: eps-merge +
  // renormalize complete it.
  std::size_t m = 0;
  for (std::size_t s = 0; s < ns; ++s) {
    if (d[s] > 0.0) {
      out[m].value = support_scratch[s];
      out[m].prob = d[s];
      ++m;
    }
  }
  const std::size_t w = eps_merge_dispatch(out.data(), m, out.data(), avx2);
  return finish_atoms(out.data(), w, avx2);
}

EXPMK_NOALLOC std::size_t mixture(std::span<const Atom> x, double w,
                    std::span<const Atom> y, std::span<Atom> out) {
  if (w < 0.0 || w > 1.0) {
    throw std::invalid_argument("mixture: weight must be in [0,1]");
  }
  std::size_t k = 0;
  for (const Atom& at : x) out[k++] = {at.value, w * at.prob};
  for (const Atom& at : y) out[k++] = {at.value, (1.0 - w) * at.prob};
  return canonicalize(out.subspan(0, k));
}

namespace {

// Gap collection for one truncate pass: gaps[i] = value[i+1] - value[i],
// written twice (the walk's decision array and the nth_element scratch
// that the threshold pick is allowed to scramble). Elementwise
// subtraction only, so the AVX2 lanes produce the scalar spec's bits
// exactly and every downstream merge decision is backend-independent.
EXPMK_NOALLOC void truncate_gaps_scalar(const Atom* atoms, std::size_t n,
                                        double* gaps, double* sorted) {
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double g = atoms[i + 1].value - atoms[i].value;
    gaps[i] = g;
    sorted[i] = g;
  }
}

#if EXPMK_X86_SIMD
__attribute__((target("avx2")))
EXPMK_NOALLOC void truncate_gaps_avx2(const Atom* atoms, std::size_t n,
                                      double* gaps, double* sorted) {
  const std::size_t count = n - 1;  // callers guarantee n >= 2
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    // Atoms are {value, prob} pairs: two 4-wide loads cover 4 atoms, and
    // unpacklo + permute4x64 gather the 4 values in order.
    const __m256d a0 = _mm256_loadu_pd(&atoms[i].value);
    const __m256d a1 = _mm256_loadu_pd(&atoms[i + 2].value);
    const __m256d b0 = _mm256_loadu_pd(&atoms[i + 1].value);
    const __m256d b1 = _mm256_loadu_pd(&atoms[i + 3].value);
    const __m256d va =
        _mm256_permute4x64_pd(_mm256_unpacklo_pd(a0, a1), 0xD8);
    const __m256d vb =
        _mm256_permute4x64_pd(_mm256_unpacklo_pd(b0, b1), 0xD8);
    const __m256d g = _mm256_sub_pd(vb, va);
    _mm256_storeu_pd(gaps + i, g);
    _mm256_storeu_pd(sorted + i, g);
  }
  for (; i < count; ++i) {
    const double g = atoms[i + 1].value - atoms[i].value;
    gaps[i] = g;
    sorted[i] = g;
  }
}
#endif

}  // namespace

EXPMK_NOALLOC std::size_t truncate(std::span<Atom> atoms, std::size_t max_atoms,
                     TruncationCert& cert, std::span<double> gap_scratch) {
  std::size_t n = atoms.size();
  if (max_atoms == 0 || n <= max_atoms) return n;

  std::size_t local_merges = 0;
  // Greedy pass merging nearest-by-value adjacent atoms; each round
  // removes roughly half the overshoot (the object truncated()'s exact
  // scheme, with the merge displacements additionally accounted).
  while (n > max_atoms) {
    const std::size_t excess = n - max_atoms;
    // Collect gaps, pick a threshold so we merge ~excess pairs this pass.
    const std::span<double> gaps = gap_scratch.subspan(0, n - 1);
    const std::span<double> sorted = gap_scratch.subspan(n - 1, n - 1);
#if EXPMK_X86_SIMD
    if (use_avx2()) {
      truncate_gaps_avx2(atoms.data(), n, gaps.data(), sorted.data());
    } else {
      truncate_gaps_scalar(atoms.data(), n, gaps.data(), sorted.data());
    }
#else
    truncate_gaps_scalar(atoms.data(), n, gaps.data(), sorted.data());
#endif
    const std::size_t kth = std::min(excess, sorted.size()) - 1;
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(kth),
                     sorted.end());
    const double threshold = sorted[kth];

    // Merge walk, compacting IN PLACE: the write index m never passes the
    // read index i (a merge consumes two atoms for one write, a keep is a
    // self- or left-shift copy), so the pass needs no atom scratch and the
    // former scratch->atoms copy-back is gone. The displacement
    // accumulation below runs in the same left-to-right order as the
    // scalar spec always did — cert.up/down are bit-identical by
    // construction.
    std::size_t m = 0;
    std::size_t i = 0;
    std::size_t budget = excess;  // pairs we may merge this pass
    while (i < n) {
      if (budget == 0) {
        // No merges can fire past this point: the rest of the pass is a
        // pure left shift, done in one bulk move. (Typical dodin combine
        // steps overshoot the cap by a few atoms, so most of the walk is
        // this tail.)
        if (m != i) {
          std::memmove(atoms.data() + m, atoms.data() + i,
                       (n - i) * sizeof(Atom));
        }
        m += n - i;
        break;
      }
      if (i + 1 < n && gaps[i] <= threshold) {
        const Atom a = atoms[i];
        const Atom b = atoms[i + 1];
        const double p = a.prob + b.prob;
        const double v = (a.value * a.prob + b.value * b.prob) / p;
        // Mass p_a moved up to the weighted mean, mass p_b moved down:
        // the certified expectation-shift envelope of this merge.
        cert.up += a.prob * (v - a.value);
        cert.down += b.prob * (b.value - v);
        ++local_merges;
        atoms[m++] = {v, p};
        i += 2;
        --budget;
      } else {
        atoms[m] = atoms[i];
        ++m;
        ++i;
      }
    }
    if (m == n) break;  // no progress (defensive, as in the object path)
    n = m;
  }
  if (local_merges > 0) {
    ++cert.events;
    cert.merges += local_merges;
  }
  // The object path ends with from_atoms: re-consolidate (merged values
  // may have landed within the eps window) and renormalize.
  return canonicalize(atoms.subspan(0, n));
}

}  // namespace expmk::prob::dist_kernels
