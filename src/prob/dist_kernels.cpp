#include "prob/dist_kernels.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace expmk::prob::dist_kernels {

// Every kernel here is the executable definition of one
// DiscreteDistribution operation: the object methods forward to these, so
// any change below changes both paths together (and the bit-identity
// property in tests/test_dist_kernels.cpp holds by construction).

std::size_t consolidate(std::span<Atom> atoms) {
  // erase_if(prob <= 0), order-preserving.
  std::size_t n = 0;
  for (const Atom& at : atoms) {
    if (at.prob > 0.0) atoms[n++] = at;
  }
  std::sort(atoms.begin(), atoms.begin() + static_cast<std::ptrdiff_t>(n),
            [](const Atom& x, const Atom& y) { return x.value < y.value; });
  // Adjacent eps-merge into the first atom's value (mirrors the object
  // consolidate's merged-vector loop; w <= t always, so in place is safe).
  std::size_t w = 0;
  for (std::size_t t = 0; t < n; ++t) {
    if (w > 0) {
      const double scale = std::max(
          {std::fabs(atoms[w - 1].value), std::fabs(atoms[t].value), 1.0});
      if (atoms[t].value - atoms[w - 1].value <= kValueMergeEps * scale) {
        atoms[w - 1].prob += atoms[t].prob;
        continue;
      }
    }
    atoms[w++] = atoms[t];
  }
  return w;
}

void normalize(std::span<Atom> atoms) {
  double total = 0.0;
  for (const Atom& at : atoms) total += at.prob;
  if (atoms.empty() || total <= 0.0) {
    throw std::invalid_argument("from_atoms: no positive probability mass");
  }
  for (Atom& at : atoms) at.prob /= total;
}

std::size_t canonicalize(std::span<Atom> atoms) {
  const std::size_t n = consolidate(atoms);
  normalize(atoms.subspan(0, n));
  return n;
}

double mean(std::span<const Atom> atoms) noexcept {
  double m = 0.0;
  for (const Atom& at : atoms) m += at.value * at.prob;
  return m;
}

double quantile(std::span<const Atom> atoms, double q) {
  if (q <= 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile: q must be in (0,1]");
  }
  double acc = 0.0;
  for (const Atom& at : atoms) {
    acc += at.prob;
    if (acc >= q - 1e-15) return at.value;
  }
  return atoms.back().value;
}

std::size_t point(double value, std::span<Atom> out) {
  out[0] = {value, 1.0};
  return 1;
}

std::size_t two_state(double a, double p_success, std::span<Atom> out) {
  if (p_success >= 1.0) return point(a, out);
  if (p_success <= 0.0) return point(2.0 * a, out);
  out[0] = {a, p_success};
  out[1] = {2.0 * a, 1.0 - p_success};
  return 2;
}

void shift(std::span<Atom> atoms, double c) noexcept {
  for (Atom& at : atoms) at.value += c;
}

std::size_t convolve(std::span<const Atom> x, std::span<const Atom> y,
                     std::span<Atom> out) {
  std::size_t k = 0;
  for (const Atom& ax : x) {
    for (const Atom& ay : y) {
      out[k++] = {ax.value + ay.value, ax.prob * ay.prob};
    }
  }
  return canonicalize(out.subspan(0, k));
}

std::size_t max_of(std::span<const Atom> x, std::span<const Atom> y,
                   std::span<Atom> out, std::span<double> support_scratch) {
  // Support union. Both inputs are canonical (strictly ascending), so a
  // two-way merge with an exact-equality skip reproduces the object
  // path's sort(concat) + unique.
  std::size_t ns = 0;
  {
    std::size_t i = 0, j = 0;
    while (i < x.size() || j < y.size()) {
      double v;
      if (j >= y.size() || (i < x.size() && x[i].value <= y[j].value)) {
        v = x[i++].value;
      } else {
        v = y[j++].value;
      }
      if (ns == 0 || support_scratch[ns - 1] != v) support_scratch[ns++] = v;
    }
  }

  // Product-CDF differencing: F_max(v) = F_x(v) * F_y(v).
  std::size_t m = 0;
  {
    double prev_cdf = 0.0;
    std::size_t ix = 0, iy = 0;
    double fx = 0.0, fy = 0.0;
    for (std::size_t s = 0; s < ns; ++s) {
      const double v = support_scratch[s];
      while (ix < x.size() && x[ix].value <= v) fx += x[ix++].prob;
      while (iy < y.size() && y[iy].value <= v) fy += y[iy++].prob;
      const double f = fx * fy;
      if (f > prev_cdf) out[m++] = {v, f - prev_cdf};
      prev_cdf = f;
    }
  }
  return canonicalize(out.subspan(0, m));
}

std::size_t mixture(std::span<const Atom> x, double w,
                    std::span<const Atom> y, std::span<Atom> out) {
  if (w < 0.0 || w > 1.0) {
    throw std::invalid_argument("mixture: weight must be in [0,1]");
  }
  std::size_t k = 0;
  for (const Atom& at : x) out[k++] = {at.value, w * at.prob};
  for (const Atom& at : y) out[k++] = {at.value, (1.0 - w) * at.prob};
  return canonicalize(out.subspan(0, k));
}

std::size_t truncate(std::span<Atom> atoms, std::size_t max_atoms,
                     TruncationCert& cert, std::span<double> gap_scratch,
                     std::span<Atom> atom_scratch) {
  std::size_t n = atoms.size();
  if (max_atoms == 0 || n <= max_atoms) return n;

  std::size_t local_merges = 0;
  // Greedy pass merging nearest-by-value adjacent atoms; each round
  // removes roughly half the overshoot (the object truncated()'s exact
  // scheme, with the merge displacements additionally accounted).
  while (n > max_atoms) {
    const std::size_t excess = n - max_atoms;
    // Collect gaps, pick a threshold so we merge ~excess pairs this pass.
    const std::span<double> gaps = gap_scratch.subspan(0, n - 1);
    for (std::size_t i = 0; i + 1 < n; ++i) {
      gaps[i] = atoms[i + 1].value - atoms[i].value;
    }
    const std::span<double> sorted = gap_scratch.subspan(n - 1, n - 1);
    std::copy(gaps.begin(), gaps.end(), sorted.begin());
    const std::size_t kth = std::min(excess, sorted.size()) - 1;
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(kth),
                     sorted.end());
    const double threshold = sorted[kth];

    std::size_t m = 0;
    std::size_t i = 0;
    std::size_t budget = excess;  // pairs we may merge this pass
    while (i < n) {
      if (budget > 0 && i + 1 < n && gaps[i] <= threshold) {
        const Atom& a = atoms[i];
        const Atom& b = atoms[i + 1];
        const double p = a.prob + b.prob;
        const double v = (a.value * a.prob + b.value * b.prob) / p;
        // Mass p_a moved up to the weighted mean, mass p_b moved down:
        // the certified expectation-shift envelope of this merge.
        cert.up += a.prob * (v - a.value);
        cert.down += b.prob * (b.value - v);
        ++local_merges;
        atom_scratch[m++] = {v, p};
        i += 2;
        --budget;
      } else {
        atom_scratch[m++] = atoms[i++];
      }
    }
    if (m == n) {  // no progress (defensive, as in the object path)
      std::copy(atom_scratch.begin(),
                atom_scratch.begin() + static_cast<std::ptrdiff_t>(m),
                atoms.begin());
      break;
    }
    std::copy(atom_scratch.begin(),
              atom_scratch.begin() + static_cast<std::ptrdiff_t>(m),
              atoms.begin());
    n = m;
  }
  if (local_merges > 0) {
    ++cert.events;
    cert.merges += local_merges;
  }
  // The object path ends with from_atoms: re-consolidate (merged values
  // may have landed within the eps window) and renormalize.
  return canonicalize(atoms.subspan(0, n));
}

}  // namespace expmk::prob::dist_kernels
