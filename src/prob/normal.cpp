#include "prob/normal.hpp"

#include <algorithm>
#include <cmath>

#include "prob/statistics.hpp"

namespace expmk::prob {

EXPMK_NOALLOC NormalMoments sum_independent(NormalMoments x, NormalMoments y) noexcept {
  return {x.mean + y.mean, x.var + y.var};
}

EXPMK_NOALLOC ClarkMax clark_max(NormalMoments x, NormalMoments y, double rho) noexcept {
  rho = std::clamp(rho, -1.0, 1.0);
  const double sx = std::sqrt(std::max(0.0, x.var));
  const double sy = std::sqrt(std::max(0.0, y.var));
  const double a2 = std::max(0.0, x.var + y.var - 2.0 * rho * sx * sy);
  const double a = std::sqrt(a2);

  ClarkMax out;
  if (a < 1e-300) {
    // X - Y is (almost) deterministic: the max is whichever mean is larger.
    if (x.mean >= y.mean) {
      out.moments = x;
      out.weight_x = 1.0;
      out.weight_y = 0.0;
    } else {
      out.moments = y;
      out.weight_x = 0.0;
      out.weight_y = 1.0;
    }
    return out;
  }

  const double beta = (x.mean - y.mean) / a;
  const double phi = normal_pdf(beta);
  const double Phi = normal_cdf(beta);
  const double Phi_c = normal_cdf(-beta);

  const double m1 = x.mean * Phi + y.mean * Phi_c + a * phi;
  const double m2 = (x.mean * x.mean + x.var) * Phi +
                    (y.mean * y.mean + y.var) * Phi_c +
                    (x.mean + y.mean) * a * phi;

  out.moments.mean = m1;
  out.moments.var = std::max(0.0, m2 - m1 * m1);
  out.weight_x = Phi;
  out.weight_y = Phi_c;
  return out;
}

double clark_linkage(double cov_xz, double cov_yz,
                     const ClarkMax& fold) noexcept {
  return cov_xz * fold.weight_x + cov_yz * fold.weight_y;
}

}  // namespace expmk::prob
