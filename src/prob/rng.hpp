// prob/rng.hpp
//
// Deterministic pseudo-random number generation for the Monte-Carlo engine.
//
// We implement xoshiro256++ (Blackman & Vigna) seeded through splitmix64,
// rather than relying on std::mt19937_64, for two reasons:
//   1. Stream independence: the MC engine assigns every *trial* its own
//      counter-derived stream, so results are bit-identical regardless of
//      how trials are distributed over threads.
//   2. Speed: xoshiro256++ is ~2x faster than mt19937_64 and the sampler is
//      RNG-bound on small DAGs.
//
// Distribution helpers (uniform double, exponential, Bernoulli) are defined
// here instead of <random> so that sampled sequences are stable across
// standard-library implementations (libstdc++/libc++ disagree on
// distribution algorithms; reproducibility of the ground truth matters).

#pragma once

#include <cstdint>

namespace expmk::prob {

/// splitmix64: used to expand a 64-bit seed into xoshiro state. Passes
/// through every 64-bit value exactly once; recommended seeder by the
/// xoshiro authors.
struct SplitMix64 {
  std::uint64_t state;

  explicit constexpr SplitMix64(std::uint64_t seed) : state(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// xoshiro256++ 1.0 — 256 bits of state, period 2^256−1.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds via splitmix64 so that nearby seeds yield unrelated streams.
  explicit Xoshiro256pp(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  /// Derives an independent stream for (seed, stream_id) pairs. Used by the
  /// MC engine: stream_id = global trial index, making every trial's
  /// randomness independent of thread scheduling.
  Xoshiro256pp(std::uint64_t seed, std::uint64_t stream_id) {
    SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1)));
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe as a log() argument.
  double uniform_positive() noexcept {
    return (static_cast<double>((*this)() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Exponential variate with rate `lambda` (mean 1/lambda) by inversion.
  double exponential(double lambda) noexcept;

  /// Bernoulli trial: true with probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Uniform integer in [0, bound) by Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace expmk::prob
