// prob/rng.hpp
//
// Deterministic pseudo-random number generation.
//
// Two generators live here, with different jobs:
//
//   * Philox4x32 (Salmon et al., SC'11) — the Monte-Carlo engine's
//     generator. It is COUNTER-BASED: the stream for (seed, trial_index)
//     is a pure function of a 128-bit counter under a 64-bit key, so a
//     trial's randomness needs no per-trial state expansion at all and is
//     bit-identical regardless of how trials are distributed over
//     threads. Counter blocks are independent, which is what lets the
//     buffered backend compute four blocks at once with AVX2 integer
//     lanes (util::simd dispatch); integer arithmetic is exact, so the
//     vector and scalar backends agree bit for bit by construction.
//     McRng below is the alias the MC call graph uses.
//
//   * Xoshiro256pp (Blackman & Vigna) seeded through splitmix64 — kept
//     for everything that is not the MC hot path (DAG generation,
//     property-test drivers) and as the historical reference stream.
//
// Distribution helpers (uniform double, exponential, Bernoulli) are defined
// here instead of <random> so that sampled sequences are stable across
// standard-library implementations (libstdc++/libc++ disagree on
// distribution algorithms; reproducibility of the ground truth matters).

#pragma once

#include <array>
#include <cstdint>

namespace expmk::prob {

/// splitmix64: used to expand a 64-bit seed into xoshiro state. Passes
/// through every 64-bit value exactly once; recommended seeder by the
/// xoshiro authors.
struct SplitMix64 {
  std::uint64_t state;

  explicit constexpr SplitMix64(std::uint64_t seed) : state(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// xoshiro256++ 1.0 — 256 bits of state, period 2^256−1.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds via splitmix64 so that nearby seeds yield unrelated streams.
  explicit Xoshiro256pp(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  /// Derives an independent stream for (seed, stream_id) pairs. Used by the
  /// MC engine: stream_id = global trial index, making every trial's
  /// randomness independent of thread scheduling.
  Xoshiro256pp(std::uint64_t seed, std::uint64_t stream_id) {
    SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1)));
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe as a log() argument.
  double uniform_positive() noexcept {
    return (static_cast<double>((*this)() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Exponential variate with rate `lambda` (mean 1/lambda) by inversion.
  double exponential(double lambda) noexcept;

  /// Bernoulli trial: true with probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Uniform integer in [0, bound) by Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Philox4x32-10: a counter-based generator. One "block" is the 10-round
/// bijection of a 128-bit counter (four 32-bit words) under a 64-bit key
/// (two 32-bit words), yielding 128 random bits. The MC engine keys the
/// generator on the run seed and counts (trial_index, block_index):
///
///     counter = (trial_lo, trial_hi, block_lo, block_hi)
///     key     = splitmix64(seed) split into two 32-bit words
///
/// so every trial's stream is a pure function of (seed, trial_index) —
/// the reproducibility contract the engine's fixed 128-chunk partition
/// relies on (tests/test_csr.cpp pins it for 1/2/7 threads).
///
/// Draws are buffered eight blocks (16 uint64) at a time; the buffer
/// fill is dispatched through util::simd (AVX2 computes four blocks per
/// vector state and interleaves two independent states to hide the
/// round chain's latency, scalar computes the blocks in a loop) and the
/// two backends are bit-identical because every operation is exact
/// integer arithmetic. tests/test_simd_kernels.cpp holds reference
/// stream vectors.
class Philox4x32 {
 public:
  using result_type = std::uint64_t;

  /// Stream for (seed, trial/stream index) — see the class comment.
  explicit Philox4x32(std::uint64_t seed = 0xC0FFEE,
                      std::uint64_t stream_id = 0) noexcept {
    SplitMix64 sm(seed);
    const std::uint64_t k = sm.next();
    key_[0] = static_cast<std::uint32_t>(k);
    key_[1] = static_cast<std::uint32_t>(k >> 32);
    ctr_lo_ = stream_id;
    block_ = 0;
    idx_ = kBuffer;  // force a fill on the first draw
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() noexcept {
    if (idx_ == kBuffer) refill();
    return buf_[idx_++];
  }

  /// Uniform double in [0, 1) with 53 random bits (same mapping as
  /// Xoshiro256pp::uniform).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe as a log() argument.
  double uniform_positive() noexcept {
    return (static_cast<double>((*this)() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Exponential variate with rate `lambda` (mean 1/lambda) by inversion.
  double exponential(double lambda) noexcept;

  /// Bernoulli trial: true with probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Uniform integer in [0, bound) by Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// One raw block: the 10-round Philox4x32 bijection. Public so tests
  /// can pin the stream against the published algorithm directly.
  [[nodiscard]] static std::array<std::uint32_t, 4> block(
      std::array<std::uint32_t, 4> counter,
      std::array<std::uint32_t, 2> key) noexcept;

 private:
  // Eight blocks of two uint64 per fill. The width matters: one Philox
  // round is a serial mul -> shift -> xor chain (~7 cycles), so a single
  // 4-block vector state is latency-bound; the AVX2 fill interleaves two
  // independent 4-block states (the most that fits the ymm register
  // file), and the buffer amortizes the fill's fixed costs (dispatch,
  // counter setup) per draw.
  static constexpr std::size_t kBuffer = 16;

  void refill() noexcept;

  std::uint64_t buf_[kBuffer];
  std::uint64_t ctr_lo_ = 0;  ///< trial / stream index (counter words 0,1)
  std::uint64_t block_ = 0;   ///< block index (counter words 2,3)
  std::uint32_t key_[2];
  std::uint32_t idx_ = kBuffer;
};

/// The Monte-Carlo call graph's generator (engine, trial kernels,
/// conditional MC, criticality, fault_sim).
using McRng = Philox4x32;

}  // namespace expmk::prob
