// normal/clark_full.hpp
//
// Clark's method with full covariance propagation — the correlation-aware
// variant of the Normal estimator (the paper cites Clark's formulas "of
// two (correlated) normal distributions").
//
// Sculli's independence assumption systematically biases the estimate on
// graphs with shared ancestors (fork-join re-convergence). This variant
// tracks Cov(C_i, C_j) for *every* pair of completion times:
//   * sum step:  C_i = M + X_i with X_i independent =>
//       Cov(C_i, Z) = Cov(M, Z) for all earlier Z;
//   * max step:  Clark's linkage formula
//       Cov(max(X,Y), Z) = Cov(X,Z) Phi(beta) + Cov(Y,Z) Phi(-beta).
// Cost: O(|V|^2) memory and O(|E| |V|) time — the expensive-but-accurate
// end of the Normal family (cf. Table I, where "Normal" needed ~20 min at
// k = 20 in the authors' implementation).

#pragma once

#include <span>

#include "normal/sculli.hpp"
#include "util/contracts.hpp"

namespace expmk::normal {

/// Safety limit on |V| for the dense covariance matrix (~8 bytes * V^2).
inline constexpr std::size_t kClarkFullMaxTasks = 8192;

/// Clark propagation with the full covariance matrix.
/// Throws std::invalid_argument when |V| exceeds kClarkFullMaxTasks.
[[nodiscard]] NormalEstimate clark_full(
    const graph::Dag& g, const core::FailureModel& model,
    core::RetryModel kind = core::RetryModel::TwoState);

/// As above with a caller-provided topological order.
[[nodiscard]] NormalEstimate clark_full(const graph::Dag& g,
                                        const core::FailureModel& model,
                                        core::RetryModel kind,
                                        std::span<const graph::TaskId> topo);

/// Workspace kernel — the dense V x V covariance matrix, the linkage row
/// and the completion moments are leased from `ws` (the matrix is the
/// single largest per-call allocation in the library): ZERO heap
/// allocations on a warm workspace.
EXPMK_NOALLOC [[nodiscard]] NormalEstimate clark_full(const scenario::Scenario& sc,
                                        exp::Workspace& ws);

/// Scenario-based entry point: cached order and success probabilities,
/// retry model from the scenario; heterogeneous rates supported.
/// Lease-a-temporary adapter over the workspace kernel.
[[nodiscard]] NormalEstimate clark_full(const scenario::Scenario& sc);

/// Parallel-assisted variant: the propagation is inherently serial per
/// vertex (folding v writes cov column v, which same-level siblings then
/// read), so only the O(V^2) covariance zero-fill fans out across
/// `workers`; the traversal runs unchanged. Bit-identical to the serial
/// kernel; `workers <= 1` delegates to it (the parallel path is not
/// EXPMK_NOALLOC — task futures allocate).
[[nodiscard]] NormalEstimate clark_full(const scenario::Scenario& sc,
                                        exp::Workspace& ws,
                                        std::size_t workers);

}  // namespace expmk::normal
