#include "normal/clark_full.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "exp/level_parallel.hpp"
#include "graph/topological.hpp"

namespace expmk::normal {

namespace {

EXPMK_NOALLOC double safe_rho(double cov, double var_x, double var_y) {
  const double denom = std::sqrt(var_x) * std::sqrt(var_y);
  if (denom <= 0.0) return 0.0;
  return cov / denom;
}

/// The rho-propagation row kernel: row[z] <- Cov(max, C_z) for every z via
/// Clark's linkage, with the fold weights hoisted out of the loop. The
/// body is prob::clark_linkage inlined — cov_xz * wx + cov_yz * wy, the
/// identical two-multiply-one-add per element — so the results are bit
/// for bit what the per-element call produced; hoisting just turns an
/// opaque cross-TU call per matrix element into a branch-free elementwise
/// loop the compiler vectorizes. Rows are cache-resident up to the dense
/// limit (kClarkFullMaxTasks doubles), so the row itself is the cache
/// block.
EXPMK_NOALLOC void linkage_row(std::span<double> row, const double* cov_row,
                 const prob::ClarkMax& fold) {
  const double wx = fold.weight_x;
  const double wy = fold.weight_y;
  double* r = row.data();
  const std::size_t n = row.size();
  for (std::size_t z = 0; z < n; ++z) {
    r[z] = r[z] * wx + cov_row[z] * wy;
  }
}

/// Shared traversal over per-task success probabilities (the fold is pure
/// dataflow over ancestors, so the topological order does not perturb the
/// values).
EXPMK_NOALLOC NormalEstimate clark_full_impl(const graph::Dag& g,
                               std::span<const graph::TaskId> topo,
                               std::span<const double> p,
                               core::RetryModel kind,
                               std::span<prob::NormalMoments> completion,
                               std::span<double> cov, std::span<double> row,
                               std::span<const graph::TaskId> exits,
                               bool cov_zeroed = false) {
  const std::size_t n = g.task_count();
  if (n == 0) throw std::invalid_argument("clark_full: empty graph");
  if (n > kClarkFullMaxTasks) {
    throw std::invalid_argument(
        "clark_full: task count exceeds the dense covariance limit");
  }

  // Dense symmetric covariance of completion times, row-major; the
  // algorithm reads unwritten entries of ancestors' rows, so the whole
  // matrix starts at zero whatever storage backs it. `cov_zeroed` lets
  // the level-parallel entry point pre-fill it across workers.
  if (!cov_zeroed) std::fill(cov.begin(), cov.end(), 0.0);
  const auto cov_at = [&](graph::TaskId a, graph::TaskId b) -> double& {
    return cov[static_cast<std::size_t>(a) * n + b];
  };

  // row = Cov(M, C_z) for the running max M
  for (const graph::TaskId v : topo) {
    prob::NormalMoments m{0.0, 0.0};
    std::fill(row.begin(), row.end(), 0.0);
    bool first = true;
    for (const graph::TaskId u : g.predecessors(v)) {
      if (first) {
        m = completion[u];
        for (std::size_t z = 0; z < n; ++z) {
          row[z] = cov[static_cast<std::size_t>(u) * n + z];
        }
        first = false;
        continue;
      }
      const double rho = safe_rho(row[u], m.var, completion[u].var);
      const auto fold = prob::clark_max(m, completion[u], rho);
      linkage_row(row, &cov[static_cast<std::size_t>(u) * n], fold);
      m = fold.moments;
    }
    // C_v = M + X_v with X_v independent of everything before it.
    completion[v] = prob::sum_independent(
        m, duration_moments_p(g.weight(v), p[v], kind));
    for (std::size_t z = 0; z < n; ++z) {
      cov_at(v, static_cast<graph::TaskId>(z)) = row[z];
      cov_at(static_cast<graph::TaskId>(z), v) = row[z];
    }
    cov_at(v, v) = completion[v].var;
  }

  // Fold the exits into the makespan, reusing the same linkage machinery.
  prob::NormalMoments makespan{0.0, 0.0};
  std::fill(row.begin(), row.end(), 0.0);
  bool first = true;
  for (const graph::TaskId v : exits) {
    if (first) {
      makespan = completion[v];
      for (std::size_t z = 0; z < n; ++z) {
        row[z] = cov[static_cast<std::size_t>(v) * n + z];
      }
      first = false;
      continue;
    }
    const double rho = safe_rho(row[v], makespan.var, completion[v].var);
    const auto fold = prob::clark_max(makespan, completion[v], rho);
    linkage_row(row, &cov[static_cast<std::size_t>(v) * n], fold);
    makespan = fold.moments;
  }
  return NormalEstimate{makespan};
}

}  // namespace

NormalEstimate clark_full(const graph::Dag& g, const core::FailureModel& model,
                          core::RetryModel kind,
                          std::span<const graph::TaskId> topo) {
  const auto p = core::success_probabilities(g, model);
  const std::size_t n = g.task_count();
  std::vector<prob::NormalMoments> completion(n);
  std::vector<double> cov(n * n);
  std::vector<double> row(n);
  return clark_full_impl(g, topo, p, kind, completion, cov, row,
                         g.exit_tasks());
}

NormalEstimate clark_full(const graph::Dag& g, const core::FailureModel& model,
                          core::RetryModel kind) {
  const auto topo = graph::topological_order(g);
  return clark_full(g, model, kind, topo);
}

EXPMK_NOALLOC NormalEstimate clark_full(const scenario::Scenario& sc, exp::Workspace& ws) {
  const std::size_t n = sc.task_count();
  if (n > kClarkFullMaxTasks) {
    // Same guard as the impl, but BEFORE the O(V^2) lease would grow the
    // workspace arena for a call that is going to throw anyway.
    throw std::invalid_argument(
        "clark_full: task count exceeds the dense covariance limit");
  }
  const exp::Workspace::Frame frame(ws);
  return clark_full_impl(sc.dag(), sc.topo(), sc.p_success(), sc.retry(),
                         ws.moments(n), ws.doubles(n * n), ws.doubles(n),
                         sc.exits());
}

NormalEstimate clark_full(const scenario::Scenario& sc) {
  exp::Workspace ws;  // lease-a-temporary adapter; bit-identical
  return clark_full(sc, ws);
}

NormalEstimate clark_full(const scenario::Scenario& sc, exp::Workspace& ws,
                          std::size_t workers) {
  // The propagation itself cannot fan out by vertex: folding vertex v
  // writes cov column v across EVERY row, and a same-level sibling
  // processed later in topo order reads exactly those entries through its
  // predecessors' rows — per-vertex parallelism would change (not just
  // race) the serial values. What does parallelize is the O(V^2) matrix
  // zero-fill the impl would otherwise do serially; the traversal then
  // runs unchanged, so results stay bit-identical.
  if (workers <= 1) return clark_full(sc, ws);
  const std::size_t n = sc.task_count();
  if (n > kClarkFullMaxTasks) {
    throw std::invalid_argument(
        "clark_full: task count exceeds the dense covariance limit");
  }
  const exp::Workspace::Frame frame(ws);
  const std::span<prob::NormalMoments> completion = ws.moments(n);
  const std::span<double> cov = ws.doubles(n * n);
  const std::span<double> row = ws.doubles(n);
  constexpr std::size_t kFillChunk = 1u << 16;  // 512 KiB of doubles
  const std::size_t nchunks = (n * n + kFillChunk - 1) / kFillChunk;
  exp::lp::run_chunks(workers, nchunks, [&](std::size_t c) {
    const std::size_t b = c * kFillChunk;
    const std::size_t e = std::min(n * n, b + kFillChunk);
    std::fill(cov.begin() + static_cast<std::ptrdiff_t>(b),
              cov.begin() + static_cast<std::ptrdiff_t>(e), 0.0);
  });
  return clark_full_impl(sc.dag(), sc.topo(), sc.p_success(), sc.retry(),
                         completion, cov, row, sc.exits(),
                         /*cov_zeroed=*/true);
}

}  // namespace expmk::normal
