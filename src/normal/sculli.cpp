#include "normal/sculli.hpp"

#include <stdexcept>
#include <vector>

#include "exp/level_parallel.hpp"
#include "graph/level_sets.hpp"
#include "graph/topological.hpp"

namespace expmk::normal {

EXPMK_NOALLOC prob::NormalMoments duration_moments_p(double a, double p,
                                       core::RetryModel kind) {
  if (a < 0.0) throw std::invalid_argument("duration_moments: a >= 0");
  if (a == 0.0) return {0.0, 0.0};
  switch (kind) {
    case core::RetryModel::TwoState:
      return {a * (2.0 - p), a * a * p * (1.0 - p)};
    case core::RetryModel::Geometric:
      return {a / p, a * a * (1.0 - p) / (p * p)};
  }
  return {a, 0.0};
}

prob::NormalMoments duration_moments(double a,
                                     const core::FailureModel& model,
                                     core::RetryModel kind) {
  if (a < 0.0) throw std::invalid_argument("duration_moments: a >= 0");
  if (a == 0.0) return {0.0, 0.0};
  return duration_moments_p(a, model.p_success(a), kind);
}

namespace {

/// One vertex of the Sculli fold: reads only predecessors' completion
/// moments (strictly earlier levels), writes completion[v]. The values
/// depend on the predecessor iteration order of `g` alone — never on
/// which thread or in which order-within-a-level the vertex runs — which
/// is what makes the leveled-parallel sweep bit-identical to the serial
/// topological one.
EXPMK_NOALLOC void sculli_vertex(const graph::Dag& g,
                                 std::span<const double> p,
                                 core::RetryModel kind,
                                 std::span<prob::NormalMoments> completion,
                                 graph::TaskId v) {
  prob::NormalMoments ready{0.0, 0.0};
  bool first = true;
  for (const graph::TaskId u : g.predecessors(v)) {
    if (first) {
      ready = completion[u];
      first = false;
    } else {
      ready = prob::clark_max(ready, completion[u], 0.0).moments;
    }
  }
  completion[v] = prob::sum_independent(
      ready, duration_moments_p(g.weight(v), p[v], kind));
}

/// Folds the exit completions into the makespan estimate (serial — the
/// fold order over `exits` is part of the pinned arithmetic).
EXPMK_NOALLOC NormalEstimate sculli_exits(
    std::span<const prob::NormalMoments> completion,
    std::span<const graph::TaskId> exits) {
  prob::NormalMoments makespan{0.0, 0.0};
  bool first = true;
  for (const graph::TaskId v : exits) {
    if (first) {
      makespan = completion[v];
      first = false;
    } else {
      makespan = prob::clark_max(makespan, completion[v], 0.0).moments;
    }
  }
  return NormalEstimate{makespan};
}

/// Shared traversal over per-task success probabilities, writing into
/// caller scratch. The completion moments are pure dataflow over the
/// graph (each fold reads only ancestors), so any valid topological order
/// yields identical values — and so does any source of the `completion`
/// buffer (fresh vector or workspace lease; every entry is written before
/// it is read).
EXPMK_NOALLOC NormalEstimate sculli_impl(const graph::Dag& g,
                           std::span<const graph::TaskId> topo,
                           std::span<const double> p, core::RetryModel kind,
                           std::span<prob::NormalMoments> completion,
                           std::span<const graph::TaskId> exits) {
  if (g.task_count() == 0) {
    throw std::invalid_argument("sculli: empty graph");
  }
  for (const graph::TaskId v : topo) {
    sculli_vertex(g, p, kind, completion, v);
  }
  return sculli_exits(completion, exits);
}

}  // namespace

NormalEstimate sculli(const graph::Dag& g, const core::FailureModel& model,
                      core::RetryModel kind,
                      std::span<const graph::TaskId> topo) {
  const auto p = core::success_probabilities(g, model);
  std::vector<prob::NormalMoments> completion(g.task_count());
  return sculli_impl(g, topo, p, kind, completion, g.exit_tasks());
}

NormalEstimate sculli(const graph::Dag& g, const core::FailureModel& model,
                      core::RetryModel kind) {
  const auto topo = graph::topological_order(g);
  return sculli(g, model, kind, topo);
}

EXPMK_NOALLOC NormalEstimate sculli(const scenario::Scenario& sc, exp::Workspace& ws) {
  const exp::Workspace::Frame frame(ws);
  return sculli_impl(sc.dag(), sc.topo(), sc.p_success(), sc.retry(),
                     ws.moments(sc.task_count()), sc.exits());
}

NormalEstimate sculli(const scenario::Scenario& sc) {
  exp::Workspace ws;  // lease-a-temporary adapter; bit-identical
  return sculli(sc, ws);
}

NormalEstimate sculli(const scenario::Scenario& sc, exp::Workspace& ws,
                      std::size_t workers) {
  if (workers <= 1) return sculli(sc, ws);
  const exp::Workspace::Frame frame(ws);
  const graph::Dag& g = sc.dag();
  if (g.task_count() == 0) {
    throw std::invalid_argument("sculli: empty graph");
  }
  const std::span<const double> p = sc.p_success();
  const core::RetryModel kind = sc.retry();
  const std::span<prob::NormalMoments> completion =
      ws.moments(sc.task_count());
  const graph::CsrDag& csr = sc.csr();
  const std::span<const graph::TaskId> order = csr.order();
  const graph::LevelChunks& fwd = sc.level_sets().fwd;
  exp::lp::run_leveled(workers, fwd,
                       [&](std::uint32_t b, std::uint32_t e) {
    for (std::uint32_t i = b; i < e; ++i) {
      sculli_vertex(g, p, kind, completion, order[fwd.order[i]]);
    }
  });
  return sculli_exits(completion, sc.exits());
}

}  // namespace expmk::normal
