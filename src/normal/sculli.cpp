#include "normal/sculli.hpp"

#include <stdexcept>
#include <vector>

#include "graph/topological.hpp"

namespace expmk::normal {

prob::NormalMoments duration_moments_p(double a, double p,
                                       core::RetryModel kind) {
  if (a < 0.0) throw std::invalid_argument("duration_moments: a >= 0");
  if (a == 0.0) return {0.0, 0.0};
  switch (kind) {
    case core::RetryModel::TwoState:
      return {a * (2.0 - p), a * a * p * (1.0 - p)};
    case core::RetryModel::Geometric:
      return {a / p, a * a * (1.0 - p) / (p * p)};
  }
  return {a, 0.0};
}

prob::NormalMoments duration_moments(double a,
                                     const core::FailureModel& model,
                                     core::RetryModel kind) {
  if (a < 0.0) throw std::invalid_argument("duration_moments: a >= 0");
  if (a == 0.0) return {0.0, 0.0};
  return duration_moments_p(a, model.p_success(a), kind);
}

namespace {

/// Shared traversal over per-task success probabilities. The completion
/// moments are pure dataflow over the graph (each fold reads only
/// ancestors), so any valid topological order yields identical values.
NormalEstimate sculli_impl(const graph::Dag& g,
                           std::span<const graph::TaskId> topo,
                           std::span<const double> p,
                           core::RetryModel kind) {
  if (g.task_count() == 0) {
    throw std::invalid_argument("sculli: empty graph");
  }
  std::vector<prob::NormalMoments> completion(g.task_count());
  for (const graph::TaskId v : topo) {
    prob::NormalMoments ready{0.0, 0.0};
    bool first = true;
    for (const graph::TaskId u : g.predecessors(v)) {
      if (first) {
        ready = completion[u];
        first = false;
      } else {
        ready = prob::clark_max(ready, completion[u], 0.0).moments;
      }
    }
    completion[v] = prob::sum_independent(
        ready, duration_moments_p(g.weight(v), p[v], kind));
  }

  prob::NormalMoments makespan{0.0, 0.0};
  bool first = true;
  for (const graph::TaskId v : g.exit_tasks()) {
    if (first) {
      makespan = completion[v];
      first = false;
    } else {
      makespan = prob::clark_max(makespan, completion[v], 0.0).moments;
    }
  }
  return NormalEstimate{makespan};
}

}  // namespace

NormalEstimate sculli(const graph::Dag& g, const core::FailureModel& model,
                      core::RetryModel kind,
                      std::span<const graph::TaskId> topo) {
  const auto p = core::success_probabilities(g, model);
  return sculli_impl(g, topo, p, kind);
}

NormalEstimate sculli(const graph::Dag& g, const core::FailureModel& model,
                      core::RetryModel kind) {
  const auto topo = graph::topological_order(g);
  return sculli(g, model, kind, topo);
}

NormalEstimate sculli(const scenario::Scenario& sc) {
  return sculli_impl(sc.dag(), sc.topo(), sc.p_success(), sc.retry());
}

}  // namespace expmk::normal
