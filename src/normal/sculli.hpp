// normal/sculli.hpp
//
// Sculli's method (D. Sculli, "The completion time of PERT networks",
// J. Opl. Res. Soc. 34(2), 1983) — the paper's "Normal" competitor.
//
// Every task duration is replaced by a normal variable with the same mean
// and variance as its 2-state law; completion times are propagated through
// the DAG assuming every intermediate quantity is normal:
//   C_i = max_{j in Pred(i)} C_j  +  X_i,
// where the max of two normals is collapsed back to a normal with Clark's
// moments (independence assumed: rho = 0 — Sculli's simplification), and
// the final makespan is the Clark fold of all exit completion times.
// One pass: O(|V| + |E|) folds.

#pragma once

#include <span>

#include "core/failure_model.hpp"
#include "exp/workspace.hpp"
#include "graph/dag.hpp"
#include "prob/normal.hpp"
#include "scenario/scenario.hpp"
#include "util/contracts.hpp"

namespace expmk::normal {

/// Mean/variance of a single task's duration under the failure model.
///   TwoState:  mean a(2-p), var a^2 p(1-p)
///   Geometric: mean a/p,    var a^2 (1-p)/p^2
[[nodiscard]] prob::NormalMoments duration_moments(
    double a, const core::FailureModel& model,
    core::RetryModel kind = core::RetryModel::TwoState);

/// Same moments from the task's own success probability p = e^{-lambda_i
/// a} — the per-task form every Scenario-based Normal estimator uses
/// (heterogeneous rates differ only in where p comes from).
EXPMK_NOALLOC [[nodiscard]] prob::NormalMoments duration_moments_p(double a, double p,
                                                     core::RetryModel kind);

/// Result of a normal-approximation traversal.
struct NormalEstimate {
  prob::NormalMoments makespan;  ///< approximated makespan moments
  [[nodiscard]] double expected_makespan() const { return makespan.mean; }
};

/// Sculli's method (correlations ignored).
[[nodiscard]] NormalEstimate sculli(
    const graph::Dag& g, const core::FailureModel& model,
    core::RetryModel kind = core::RetryModel::TwoState);

/// As above with a caller-provided topological order.
[[nodiscard]] NormalEstimate sculli(const graph::Dag& g,
                                    const core::FailureModel& model,
                                    core::RetryModel kind,
                                    std::span<const graph::TaskId> topo);

/// Workspace kernel — the completion-moment array (the method's only
/// O(V) scratch) is leased from `ws`, and the exit fold reads the
/// scenario's cached exits(): ZERO heap allocations on a warm workspace.
EXPMK_NOALLOC [[nodiscard]] NormalEstimate sculli(const scenario::Scenario& sc,
                                    exp::Workspace& ws);

/// Scenario-based entry point: cached order and success probabilities,
/// retry model from the scenario; heterogeneous rates supported.
/// Lease-a-temporary adapter over the workspace kernel.
[[nodiscard]] NormalEstimate sculli(const scenario::Scenario& sc);

/// Level-parallel variant: the completion fold is pure per-vertex
/// dataflow over strictly earlier levels, so vertices fan out over the
/// scenario's cached graph::LevelSets schedule; the exit fold stays
/// serial. Bit-identical to the serial kernel for any worker count;
/// `workers <= 1` delegates to it (the parallel path is not
/// EXPMK_NOALLOC — task futures allocate).
[[nodiscard]] NormalEstimate sculli(const scenario::Scenario& sc,
                                    exp::Workspace& ws, std::size_t workers);

}  // namespace expmk::normal
