#include "normal/corlca.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "exp/level_parallel.hpp"
#include "graph/level_sets.hpp"
#include "graph/topological.hpp"

namespace expmk::normal {

namespace {

constexpr graph::TaskId kRootless = graph::kNoTask;

/// Correlation-tree state: parent pointers, depths, and the variance of
/// each node's completion time. A view over caller-provided storage
/// (fresh vectors or workspace leases); init() reproduces the fills the
/// old owning constructor performed.
struct CorrelationTree {
  std::span<graph::TaskId> parent;
  std::span<std::uint32_t> depth;
  std::span<double> variance;

  void init() const {
    std::fill(parent.begin(), parent.end(), kRootless);
    std::fill(depth.begin(), depth.end(), 0u);
    std::fill(variance.begin(), variance.end(), 0.0);
  }

  /// Lowest common ancestor by depth-aligned walk; kRootless when the two
  /// lineages never meet (independent subtrees).
  [[nodiscard]] graph::TaskId lca(graph::TaskId a, graph::TaskId b) const {
    if (a == kRootless || b == kRootless) return kRootless;
    while (a != b) {
      if (a == kRootless || b == kRootless) return kRootless;
      if (depth[a] >= depth[b]) {
        a = parent[a];
      } else {
        b = parent[b];
      }
      if (a == kRootless || b == kRootless) return kRootless;
    }
    return a;
  }
};

}  // namespace

namespace {

/// One vertex of the CorLCA fold: reads completion moments and
/// correlation-tree state of ancestors only — the dominant lineage is a
/// predecessor and every LCA walk climbs parent pointers of ancestors,
/// all at strictly earlier levels — and writes only v's own slots. That
/// containment is what makes the leveled-parallel sweep bit-identical to
/// the serial topological one.
EXPMK_NOALLOC void corlca_vertex(const graph::Dag& g,
                                 std::span<const double> p,
                                 core::RetryModel kind,
                                 std::span<prob::NormalMoments> completion,
                                 const CorrelationTree& tree,
                                 graph::TaskId v) {
  prob::NormalMoments ready{0.0, 0.0};
  graph::TaskId dominant = kRootless;
  bool first = true;
  for (const graph::TaskId u : g.predecessors(v)) {
    if (first) {
      ready = completion[u];
      dominant = u;
      first = false;
      continue;
    }
    // Correlation through the LCA of the current dominant lineage and u.
    const graph::TaskId anc = tree.lca(dominant, u);
    const double cov = anc == kRootless ? 0.0 : tree.variance[anc];
    const double denom =
        std::sqrt(ready.var) * std::sqrt(completion[u].var);
    const double rho = denom > 0.0 ? cov / denom : 0.0;
    const auto fold = prob::clark_max(ready, completion[u], rho);
    // The operand with the larger mean dominates the lineage.
    if (completion[u].mean > ready.mean) dominant = u;
    ready = fold.moments;
  }
  completion[v] = prob::sum_independent(
      ready, duration_moments_p(g.weight(v), p[v], kind));
  tree.parent[v] = dominant;
  tree.depth[v] = dominant == kRootless ? 0 : tree.depth[dominant] + 1;
  tree.variance[v] = completion[v].var;
}

/// Folds the exit completions into the makespan estimate (serial — the
/// fold order over `exits` is part of the pinned arithmetic).
EXPMK_NOALLOC NormalEstimate corlca_exits(
    std::span<const prob::NormalMoments> completion,
    const CorrelationTree& tree, std::span<const graph::TaskId> exits) {
  prob::NormalMoments makespan{0.0, 0.0};
  graph::TaskId dominant = kRootless;
  bool first = true;
  for (const graph::TaskId v : exits) {
    if (first) {
      makespan = completion[v];
      dominant = v;
      first = false;
      continue;
    }
    const graph::TaskId anc = tree.lca(dominant, v);
    const double cov = anc == kRootless ? 0.0 : tree.variance[anc];
    const double denom = std::sqrt(makespan.var) * std::sqrt(completion[v].var);
    const double rho = denom > 0.0 ? cov / denom : 0.0;
    const auto fold = prob::clark_max(makespan, completion[v], rho);
    if (completion[v].mean > makespan.mean) dominant = v;
    makespan = fold.moments;
  }
  return NormalEstimate{makespan};
}

/// Shared traversal over per-task success probabilities (see sculli.cpp:
/// the fold is pure dataflow, so the topological order does not perturb
/// the values).
///
/// Unlike clark_full's dense row linkage, CorLCA's rho-propagation is a
/// depth-aligned parent-pointer walk (lca above) — data-dependent pointer
/// chasing with no elementwise loop to block or vectorize, and its O(V)
/// tree state is already cache-resident. It deliberately stays scalar
/// per vertex while clark_full and second_order got blocked/vectorized
/// sweeps; the level-parallel entry point spreads whole vertices instead.
EXPMK_NOALLOC NormalEstimate corlca_impl(const graph::Dag& g,
                           std::span<const graph::TaskId> topo,
                           std::span<const double> p, core::RetryModel kind,
                           std::span<prob::NormalMoments> completion,
                           const CorrelationTree& tree,
                           std::span<const graph::TaskId> exits) {
  const std::size_t n = g.task_count();
  if (n == 0) throw std::invalid_argument("corlca: empty graph");
  tree.init();
  for (const graph::TaskId v : topo) {
    corlca_vertex(g, p, kind, completion, tree, v);
  }
  return corlca_exits(completion, tree, exits);
}

}  // namespace

NormalEstimate corlca(const graph::Dag& g, const core::FailureModel& model,
                      core::RetryModel kind,
                      std::span<const graph::TaskId> topo) {
  const auto p = core::success_probabilities(g, model);
  const std::size_t n = g.task_count();
  std::vector<prob::NormalMoments> completion(n);
  std::vector<graph::TaskId> parent(n);
  std::vector<std::uint32_t> depth(n);
  std::vector<double> variance(n);
  return corlca_impl(g, topo, p, kind, completion,
                     CorrelationTree{parent, depth, variance},
                     g.exit_tasks());
}

NormalEstimate corlca(const graph::Dag& g, const core::FailureModel& model,
                      core::RetryModel kind) {
  const auto topo = graph::topological_order(g);
  return corlca(g, model, kind, topo);
}

EXPMK_NOALLOC NormalEstimate corlca(const scenario::Scenario& sc, exp::Workspace& ws) {
  const exp::Workspace::Frame frame(ws);
  const std::size_t n = sc.task_count();
  return corlca_impl(sc.dag(), sc.topo(), sc.p_success(), sc.retry(),
                     ws.moments(n),
                     CorrelationTree{ws.u32(n), ws.u32(n), ws.doubles(n)},
                     sc.exits());
}

NormalEstimate corlca(const scenario::Scenario& sc) {
  exp::Workspace ws;  // lease-a-temporary adapter; bit-identical
  return corlca(sc, ws);
}

NormalEstimate corlca(const scenario::Scenario& sc, exp::Workspace& ws,
                      std::size_t workers) {
  if (workers <= 1) return corlca(sc, ws);
  const exp::Workspace::Frame frame(ws);
  const graph::Dag& g = sc.dag();
  const std::size_t n = sc.task_count();
  if (n == 0) throw std::invalid_argument("corlca: empty graph");
  const std::span<const double> p = sc.p_success();
  const core::RetryModel kind = sc.retry();
  const std::span<prob::NormalMoments> completion = ws.moments(n);
  const CorrelationTree tree{ws.u32(n), ws.u32(n), ws.doubles(n)};
  tree.init();
  const graph::CsrDag& csr = sc.csr();
  const std::span<const graph::TaskId> order = csr.order();
  const graph::LevelChunks& fwd = sc.level_sets().fwd;
  exp::lp::run_leveled(workers, fwd,
                       [&](std::uint32_t b, std::uint32_t e) {
    for (std::uint32_t i = b; i < e; ++i) {
      corlca_vertex(g, p, kind, completion, tree, order[fwd.order[i]]);
    }
  });
  return corlca_exits(completion, tree, sc.exits());
}

}  // namespace expmk::normal
