#include "normal/corlca.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "graph/topological.hpp"

namespace expmk::normal {

namespace {

constexpr graph::TaskId kRootless = graph::kNoTask;

/// Correlation-tree state: parent pointers, depths, and the variance of
/// each node's completion time.
struct CorrelationTree {
  std::vector<graph::TaskId> parent;
  std::vector<std::uint32_t> depth;
  std::vector<double> variance;

  explicit CorrelationTree(std::size_t n)
      : parent(n, kRootless), depth(n, 0), variance(n, 0.0) {}

  /// Lowest common ancestor by depth-aligned walk; kRootless when the two
  /// lineages never meet (independent subtrees).
  [[nodiscard]] graph::TaskId lca(graph::TaskId a, graph::TaskId b) const {
    if (a == kRootless || b == kRootless) return kRootless;
    while (a != b) {
      if (a == kRootless || b == kRootless) return kRootless;
      if (depth[a] >= depth[b]) {
        a = parent[a];
      } else {
        b = parent[b];
      }
      if (a == kRootless || b == kRootless) return kRootless;
    }
    return a;
  }
};

}  // namespace

namespace {

/// Shared traversal over per-task success probabilities (see sculli.cpp:
/// the fold is pure dataflow, so the topological order does not perturb
/// the values).
NormalEstimate corlca_impl(const graph::Dag& g,
                           std::span<const graph::TaskId> topo,
                           std::span<const double> p,
                           core::RetryModel kind) {
  const std::size_t n = g.task_count();
  if (n == 0) throw std::invalid_argument("corlca: empty graph");

  std::vector<prob::NormalMoments> completion(n);
  CorrelationTree tree(n);

  for (const graph::TaskId v : topo) {
    prob::NormalMoments ready{0.0, 0.0};
    graph::TaskId dominant = kRootless;
    bool first = true;
    for (const graph::TaskId u : g.predecessors(v)) {
      if (first) {
        ready = completion[u];
        dominant = u;
        first = false;
        continue;
      }
      // Correlation through the LCA of the current dominant lineage and u.
      const graph::TaskId anc = tree.lca(dominant, u);
      const double cov = anc == kRootless ? 0.0 : tree.variance[anc];
      const double denom =
          std::sqrt(ready.var) * std::sqrt(completion[u].var);
      const double rho = denom > 0.0 ? cov / denom : 0.0;
      const auto fold = prob::clark_max(ready, completion[u], rho);
      // The operand with the larger mean dominates the lineage.
      if (completion[u].mean > ready.mean) dominant = u;
      ready = fold.moments;
    }
    completion[v] = prob::sum_independent(
        ready, duration_moments_p(g.weight(v), p[v], kind));
    tree.parent[v] = dominant;
    tree.depth[v] = dominant == kRootless ? 0 : tree.depth[dominant] + 1;
    tree.variance[v] = completion[v].var;
  }

  prob::NormalMoments makespan{0.0, 0.0};
  graph::TaskId dominant = kRootless;
  bool first = true;
  for (const graph::TaskId v : g.exit_tasks()) {
    if (first) {
      makespan = completion[v];
      dominant = v;
      first = false;
      continue;
    }
    const graph::TaskId anc = tree.lca(dominant, v);
    const double cov = anc == kRootless ? 0.0 : tree.variance[anc];
    const double denom = std::sqrt(makespan.var) * std::sqrt(completion[v].var);
    const double rho = denom > 0.0 ? cov / denom : 0.0;
    const auto fold = prob::clark_max(makespan, completion[v], rho);
    if (completion[v].mean > makespan.mean) dominant = v;
    makespan = fold.moments;
  }
  return NormalEstimate{makespan};
}

}  // namespace

NormalEstimate corlca(const graph::Dag& g, const core::FailureModel& model,
                      core::RetryModel kind,
                      std::span<const graph::TaskId> topo) {
  const auto p = core::success_probabilities(g, model);
  return corlca_impl(g, topo, p, kind);
}

NormalEstimate corlca(const graph::Dag& g, const core::FailureModel& model,
                      core::RetryModel kind) {
  const auto topo = graph::topological_order(g);
  return corlca(g, model, kind, topo);
}

NormalEstimate corlca(const scenario::Scenario& sc) {
  return corlca_impl(sc.dag(), sc.topo(), sc.p_success(), sc.retry());
}

}  // namespace expmk::normal
