// normal/corlca.hpp
//
// CorLCA (Canon & Jeannot, "Correlation-aware heuristics for evaluating
// the distribution of the longest path length of a DAG with random
// weights", IEEE TPDS 2016 — the paper's reference [24]): a middle ground
// between Sculli (no correlation, O(E)) and full Clark covariance
// (exact linkage, O(V^2) memory).
//
// A *correlation tree* is maintained: every task points to its dominant
// predecessor (the operand with the larger mean in the Clark folds). The
// correlation between two completion times is then approximated through
// their lowest common ancestor in that tree:
//     Cov(C_u, C_v) ~ Var(C_lca(u,v)),
// i.e. the shared randomness is whatever both inherited from the dominant
// common ancestor. Cost: O(E * depth) time, O(V) memory.

#pragma once

#include <span>

#include "normal/sculli.hpp"
#include "util/contracts.hpp"

namespace expmk::normal {

/// CorLCA estimate.
[[nodiscard]] NormalEstimate corlca(
    const graph::Dag& g, const core::FailureModel& model,
    core::RetryModel kind = core::RetryModel::TwoState);

/// As above with a caller-provided topological order.
[[nodiscard]] NormalEstimate corlca(const graph::Dag& g,
                                    const core::FailureModel& model,
                                    core::RetryModel kind,
                                    std::span<const graph::TaskId> topo);

/// Workspace kernel — the correlation tree (parent/depth/variance) and
/// the completion-moment array are leased from `ws`: ZERO heap
/// allocations on a warm workspace.
EXPMK_NOALLOC [[nodiscard]] NormalEstimate corlca(const scenario::Scenario& sc,
                                    exp::Workspace& ws);

/// Scenario-based entry point: cached order and success probabilities,
/// retry model from the scenario; heterogeneous rates supported.
/// Lease-a-temporary adapter over the workspace kernel.
[[nodiscard]] NormalEstimate corlca(const scenario::Scenario& sc);

/// Level-parallel variant: a vertex's fold — including its LCA walks —
/// reads only correlation-tree state of its ancestors, all at strictly
/// earlier levels, so vertices fan out over the scenario's cached
/// graph::LevelSets schedule; the exit fold stays serial. Bit-identical
/// to the serial kernel for any worker count; `workers <= 1` delegates to
/// it (the parallel path is not EXPMK_NOALLOC — task futures allocate).
[[nodiscard]] NormalEstimate corlca(const scenario::Scenario& sc,
                                    exp::Workspace& ws, std::size_t workers);

}  // namespace expmk::normal
