// exp/sweep.hpp
//
// The experiment-sweep subsystem: expands a declarative grid
//
//     generators x sizes x pfail values x retry model x methods
//
// into cells, executes them in parallel on util::ThreadPool, computes each
// method's relative error against a designated reference method, and emits
// machine-readable JSON and CSV artifacts — the harness behind the paper's
// accuracy/runtime tables (Section V) and the expmk_sweep CLI.
//
// Determinism contract (the sweep-layer extension of the MC engine's
// fixed-chunk contract, DESIGN.md): every scenario derives its seeds from
// (base_seed, generator index, size index, pfail index) — never from
// thread scheduling — and results are written into a pre-sized, index-
// addressed vector. The JSON artifact (which excludes wall-clock timings;
// those live in the CSV) is therefore BYTE-IDENTICAL for any thread
// count. tests/test_sweep.cpp pins this for threads in {1, 2, 7}.

#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/failure_model.hpp"
#include "exp/evaluator.hpp"
#include "graph/dag.hpp"

namespace expmk::exp {

/// Declarative sweep grid. Generator names: lu | qr | cholesky | layered |
/// erdos | sp | chain | forkjoin (see SweepRunner::build_dag for the size
/// parameter's meaning per family).
struct SweepGrid {
  std::vector<std::string> generators;
  std::vector<int> sizes;
  std::vector<double> pfails;
  core::RetryModel retry = core::RetryModel::TwoState;
  /// Evaluator names (EvaluatorRegistry::builtin() catalogue).
  std::vector<std::string> methods;
  /// Reference method for relative errors; empty = no reference. The
  /// reference runs once per scenario and appears in the output as its
  /// own cells (relative_error == 0).
  std::string reference = "mc";
  std::uint64_t base_seed = 2016;
  /// Per-evaluator knobs; `seed` is overwritten per scenario.
  EvalOptions options;
};

/// One (scenario, method) cell of the sweep output.
struct SweepCell {
  std::string generator;
  int size = 0;
  std::size_t tasks = 0;
  std::size_t edges = 0;
  double pfail = 0.0;
  double lambda = 0.0;
  std::string method;
  EvalResult result;
  /// The reference method's mean on this scenario (NaN when no reference
  /// was configured or the reference itself was unsupported).
  double reference_mean = std::numeric_limits<double>::quiet_NaN();
  /// (mean - reference_mean) / reference_mean — the paper's signed
  /// normalized difference. NaN when either side is unavailable.
  double relative_error = std::numeric_limits<double>::quiet_NaN();
  /// The deterministic per-scenario seed the cell's evaluator received.
  std::uint64_t seed = 0;
};

/// Sweep output: cells in deterministic scenario-major, method-minor
/// order (independent of the thread count).
struct SweepResult {
  std::vector<SweepCell> cells;
  core::RetryModel retry = core::RetryModel::TwoState;
  std::string reference;
  std::uint64_t base_seed = 0;
  std::uint64_t mc_trials = 0;
  double seconds = 0.0;  ///< wall-clock for the whole sweep

  /// JSON artifact (schema "expmk-sweep-v3"; see DESIGN.md — v3 adds the
  /// certified truncation envelope mean_lo/mean_hi per cell). Timings are
  /// excluded unless `include_timing` — the default artifact is the
  /// deterministic record, byte-identical across thread counts.
  [[nodiscard]] std::string json(bool include_timing = false) const;
  /// CSV artifact: one row per cell, wall-clock seconds included.
  [[nodiscard]] std::string csv() const;
  /// Writes json() / csv() to the given paths (empty path = skip).
  void write_artifacts(const std::string& json_path,
                       const std::string& csv_path,
                       bool include_timing = false) const;
};

/// Expands and executes sweep grids against an evaluator registry.
class SweepRunner {
 public:
  explicit SweepRunner(
      const EvaluatorRegistry& registry = EvaluatorRegistry::builtin())
      : registry_(&registry) {}

  /// Runs the grid with `threads` scenario-level workers (0 = hardware
  /// concurrency; evaluator-internal parallelism is grid.options.threads).
  /// Throws std::invalid_argument on an empty grid axis, an unknown
  /// generator/method/reference name, or mc_trials == 0 — sweeps fail
  /// loudly on misconfiguration, before any cell runs.
  [[nodiscard]] SweepResult run(const SweepGrid& grid,
                                std::size_t threads = 1) const;

  /// Builds one generator DAG. size = tile count k for lu/qr/cholesky;
  /// layer count and width for layered; task count for erdos/sp/chain/
  /// forkjoin. `seed` feeds the random families only.
  [[nodiscard]] static graph::Dag build_dag(const std::string& generator,
                                            int size, std::uint64_t seed);

 private:
  const EvaluatorRegistry* registry_;
};

}  // namespace expmk::exp
