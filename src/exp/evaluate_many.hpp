// exp/evaluate_many.hpp
//
// The batch front door for high-throughput serving: evaluate ONE compiled
// scenario against a whole batch of estimate requests at once, fanned
// across a thread pool with one pooled Workspace per worker thread.
//
// This is the first API in the library where "heavy traffic" is a
// first-class input shape rather than a sweep grid: a serving deployment
// holds a compiled Scenario per live DAG and receives streams of requests
// ("fo now", "mc with 50k trials", "bounds for the SLA check") that it
// wants answered with batch throughput, not per-call latency. The
// scenario is shared read-only by every worker (Scenario's documented
// thread-safety), the analytic kernels lease their scratch from the
// worker's thread-local workspace (zero steady-state allocations), and
// every stochastic request gets a deterministic per-request seed.
//
// Determinism contract (matches the sweep runner's): request i's
// evaluator receives seed derive_seed(requests[i].options.seed, i) — a
// pure function of the request, never of thread scheduling — and results
// are written into a pre-sized, index-addressed vector. The returned
// vector is therefore IDENTICAL (bitwise, including MC means) for any
// `threads` value; tests/test_evaluate_many.cpp pins threads {1, 2, 7}.

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "exp/evaluator.hpp"
#include "exp/plan.hpp"
#include "scenario/scenario.hpp"
#include "util/thread_pool.hpp"

namespace expmk::exp {

/// One estimate request against the shared scenario.
struct EvalRequest {
  /// Registry method name (EvaluatorRegistry::builtin() catalogue).
  /// Ignored (may be empty) when `budget` is set — the planner picks.
  std::string method;
  /// PLANNED MODE: when either budget field is positive the request does
  /// not name a method — the query planner (exp/plan.hpp) selects and
  /// sizes one per request. The batch shares one EWMA-DISABLED planner,
  /// so every planned decision is a pure function of the request and the
  /// committed cost model, preserving the bitwise thread-count-
  /// independence contract. The chosen method is recorded on the
  /// result's note ("planned: <method>").
  PlanBudget budget{};
  /// Per-request knobs. `options.seed` is the request's seed STREAM BASE:
  /// the evaluator actually receives derive_seed(options.seed, index), so
  /// duplicate requests in one batch draw decorrelated (but reproducible)
  /// MC streams. `options.threads` is forced to 1 — batch parallelism
  /// comes from the request fan-out, not from nested engine threads.
  EvalOptions options{};
  /// When true, `options.seed` reaches the evaluator VERBATIM instead of
  /// the default derive_seed(options.seed, index). This is the serving
  /// layer's hookup (src/serve/batcher.hpp): the batching executor
  /// derives per-connection seeds UPSTREAM of batch formation, so a
  /// request's result must not depend on which flush — or which position
  /// within a flush — it happened to land in.
  bool seed_final = false;
};

/// Evaluates every request against `sc` on `threads` workers (0 =
/// hardware concurrency). Results are index-aligned with `requests` and
/// bitwise independent of the thread count. Throws std::invalid_argument
/// on an unknown method name (resolved upfront — a batch fails loudly
/// before any cell runs, like a sweep).
[[nodiscard]] std::vector<EvalResult> evaluate_many(
    const scenario::Scenario& sc, std::span<const EvalRequest> requests,
    std::size_t threads = 0,
    const EvaluatorRegistry& registry = EvaluatorRegistry::builtin());

/// Same contract, but fans the batch over a CALLER-OWNED pool instead of
/// constructing one per call. A long-lived server flushing small batches
/// at high rate (src/serve/batcher.hpp) cannot afford thread create +
/// join per flush; results are still index-aligned and bitwise
/// independent of the pool size.
[[nodiscard]] std::vector<EvalResult> evaluate_many(
    const scenario::Scenario& sc, std::span<const EvalRequest> requests,
    util::ThreadPool& pool,
    const EvaluatorRegistry& registry = EvaluatorRegistry::builtin());

}  // namespace expmk::exp
