// exp/seeds.hpp
//
// Deterministic (parent, index) -> seed derivation shared by the sweep
// runner and the evaluate_many batch front door — the same splitmix
// construction the MC engine uses for per-trial streams: nearby indices
// yield unrelated seeds, and nothing depends on thread scheduling.
// Historically a file-local helper in sweep.cpp; hoisted here unchanged
// so batch evaluation derives per-request seeds with the identical
// function (the sweep JSON artifact stays byte-identical).

#pragma once

#include <cstdint>

#include "prob/rng.hpp"

namespace expmk::exp {

[[nodiscard]] inline std::uint64_t derive_seed(std::uint64_t parent,
                                               std::uint64_t index) {
  prob::SplitMix64 sm(parent ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  return sm.next();
}

}  // namespace expmk::exp
