#include "exp/workspace.hpp"

#include <atomic>

namespace expmk::exp {

namespace {

/// Process-wide construction counter (relaxed: a metrics hook, not a
/// fence), mirroring Scenario::compiled_count().
std::atomic<std::uint64_t> g_created{0};

}  // namespace

Workspace::Workspace() { g_created.fetch_add(1, std::memory_order_relaxed); }

void Workspace::release() noexcept {
  pool_d_.buffers.clear();
  pool_d_.buffers.shrink_to_fit();
  pool_u32_.buffers.clear();
  pool_u32_.buffers.shrink_to_fit();
  pool_u64_.buffers.clear();
  pool_u64_.buffers.shrink_to_fit();
  pool_m_.buffers.clear();
  pool_m_.buffers.shrink_to_fit();
  pool_i_.buffers.clear();
  pool_i_.buffers.shrink_to_fit();
  pool_a_.buffers.clear();
  pool_a_.buffers.shrink_to_fit();
  cursors_ = {};
}

std::size_t Workspace::bytes_reserved() const noexcept {
  return pool_d_.bytes() + pool_u32_.bytes() + pool_u64_.bytes() +
         pool_m_.bytes() + pool_i_.bytes() + pool_a_.bytes();
}

Workspace& Workspace::local() {
  thread_local Workspace ws;
  return ws;
}

std::uint64_t Workspace::created_count() noexcept {
  return g_created.load(std::memory_order_relaxed);
}

}  // namespace expmk::exp
