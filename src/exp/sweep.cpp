#include "exp/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "exp/seeds.hpp"
#include "exp/workspace.hpp"
#include "gen/cholesky.hpp"
#include "gen/lu.hpp"
#include "gen/qr.hpp"
#include "gen/random_dags.hpp"
#include "prob/rng.hpp"
#include "scenario/scenario.hpp"
#include "util/json_writer.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace expmk::exp {

namespace {

// derive_seed moved to exp/seeds.hpp (shared with evaluate_many),
// unchanged — the JSON artifact stays byte-identical.

std::string retry_name(core::RetryModel retry) {
  return retry == core::RetryModel::TwoState ? "two_state" : "geometric";
}

/// %.17g — round-trips doubles exactly, keeping the CSV diffable.
std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// One expanded scenario: a (generator, size, pfail) point of the grid.
struct Scenario {
  std::size_t gen_index;
  std::size_t size_index;
  std::size_t pfail_index;
};

}  // namespace

graph::Dag SweepRunner::build_dag(const std::string& generator, int size,
                                  std::uint64_t seed) {
  if (size < 1) {
    throw std::invalid_argument("SweepRunner: size must be >= 1");
  }
  if (generator == "lu") return gen::lu_dag(size);
  if (generator == "qr") return gen::qr_dag(size);
  if (generator == "cholesky") return gen::cholesky_dag(size);
  if (generator == "layered") {
    return gen::layered_random(size, size, 0.3, seed);
  }
  if (generator == "erdos") return gen::erdos_dag(size, 0.2, seed);
  if (generator == "sp") return gen::random_series_parallel(size, seed);
  if (generator == "chain") return gen::chain_dag(size, seed);
  if (generator == "forkjoin") return gen::fork_join_dag(size, seed);
  throw std::invalid_argument("SweepRunner: unknown generator '" + generator +
                              "'");
}

SweepResult SweepRunner::run(const SweepGrid& grid,
                             std::size_t threads) const {
  const util::Timer timer;
  if (grid.generators.empty() || grid.sizes.empty() || grid.pfails.empty()) {
    throw std::invalid_argument(
        "SweepRunner: generators, sizes and pfails must all be non-empty");
  }
  if (grid.methods.empty() && grid.reference.empty()) {
    throw std::invalid_argument("SweepRunner: no methods and no reference");
  }
  if (grid.options.mc_trials == 0) {
    throw std::invalid_argument("SweepRunner: mc_trials must be >= 1");
  }
  for (const int size : grid.sizes) {
    if (size < 1) {
      throw std::invalid_argument("SweepRunner: sizes must be >= 1");
    }
  }
  for (const double pfail : grid.pfails) {
    // The lambda_for_pfail domain, checked before any cell runs instead
    // of mid-sweep from inside a worker.
    if (!(pfail >= 0.0) || pfail >= 1.0) {
      throw std::invalid_argument("SweepRunner: pfail must be in [0,1)");
    }
  }

  // Resolve every name upfront: a sweep fails loudly on a typo, before
  // any cell burns compute. The reference (when set and not already
  // listed) is prepended so it appears in the output as its own cells.
  std::vector<std::string> method_order;
  method_order.reserve(grid.methods.size() + 1);
  bool reference_listed = false;
  for (const std::string& m : grid.methods) {
    reference_listed = reference_listed || m == grid.reference;
  }
  if (!grid.reference.empty() && !reference_listed) {
    method_order.push_back(grid.reference);
  }
  method_order.insert(method_order.end(), grid.methods.begin(),
                      grid.methods.end());
  for (const std::string& name : method_order) {
    if (registry_->find(name) == nullptr) {
      throw std::invalid_argument("SweepRunner: unknown method '" + name +
                                  "'");
    }
  }
  for (const std::string& generator : grid.generators) {
    // Size 1 is legal in every family, so this is a cheap name check.
    (void)build_dag(generator, 1, 0);
  }
  const std::vector<std::string>* methods = &method_order;

  std::vector<Scenario> scenarios;
  scenarios.reserve(grid.generators.size() * grid.sizes.size() *
                    grid.pfails.size());
  for (std::size_t g = 0; g < grid.generators.size(); ++g) {
    for (std::size_t s = 0; s < grid.sizes.size(); ++s) {
      for (std::size_t p = 0; p < grid.pfails.size(); ++p) {
        scenarios.push_back({g, s, p});
      }
    }
  }

  const std::size_t methods_per_scenario = methods->size();
  std::vector<SweepCell> cells(scenarios.size() * methods_per_scenario);

  // Resolve 0 -> hardware concurrency here: ThreadPool's own fallback for
  // 0 is a single worker, which would silently serialize the sweep.
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  util::ThreadPool pool(threads);
  pool.parallel_for_chunks(scenarios.size(), [&](std::size_t si) {
    const Scenario& sc = scenarios[si];
    const std::string& generator = grid.generators[sc.gen_index];
    const int size = grid.sizes[sc.size_index];
    const double pfail = grid.pfails[sc.pfail_index];

    // The DAG seed depends on (generator, size) only: the same graph
    // instance is swept across every pfail value, the paper's protocol.
    const std::uint64_t graph_seed = derive_seed(
        derive_seed(grid.base_seed, sc.gen_index), sc.size_index);
    const std::uint64_t scenario_seed = derive_seed(graph_seed, sc.pfail_index);

    const graph::Dag dag = build_dag(generator, size, graph_seed);
    const core::FailureModel model = core::calibrate(dag, pfail);
    // The compile-once contract: ONE scenario per (generator, size,
    // pfail, retry) cell, shared by every method in the row — the CSR
    // view, topological order and per-task constants are derived here and
    // never again (tests/test_scenario.cpp pins the compile count).
    const scenario::Scenario compiled = scenario::Scenario::compile(
        dag, scenario::FailureSpec(model), grid.retry);

    EvalOptions options = grid.options;
    options.seed = scenario_seed;

    double reference_mean = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t mi = 0; mi < methods_per_scenario; ++mi) {
      const std::string& name = (*methods)[mi];
      SweepCell& cell = cells[si * methods_per_scenario + mi];
      cell.generator = generator;
      cell.size = size;
      cell.tasks = dag.task_count();
      cell.edges = dag.edge_count();
      cell.pfail = pfail;
      cell.lambda = model.lambda;
      cell.method = name;
      cell.seed = scenario_seed;

      // One pooled workspace per WORKER THREAD (not per cell): every
      // method this worker runs, on this cell and all later ones, leases
      // from the same warm arenas — the steady-state zero-allocation
      // regime for the whole analytic part of the grid.
      cell.result = registry_->find(name)->evaluate(compiled, options,
                                                    Workspace::local());
      if (name == grid.reference && cell.result.supported) {
        reference_mean = cell.result.mean;
      }
    }
    // Second pass: relative errors need the reference mean, which may be
    // produced by any position in the method order.
    for (std::size_t mi = 0; mi < methods_per_scenario; ++mi) {
      SweepCell& cell = cells[si * methods_per_scenario + mi];
      cell.reference_mean = reference_mean;
      if (cell.result.supported && std::isfinite(reference_mean) &&
          reference_mean != 0.0) {
        cell.relative_error =
            (cell.result.mean - reference_mean) / reference_mean;
      }
    }
  });

  SweepResult result;
  result.cells = std::move(cells);
  result.retry = grid.retry;
  result.reference = grid.reference;
  result.base_seed = grid.base_seed;
  result.mc_trials = grid.options.mc_trials;
  result.seconds = timer.seconds();
  return result;
}

std::string SweepResult::json(bool include_timing) const {
  std::vector<util::JsonWriter> rows;
  rows.reserve(cells.size());
  for (const SweepCell& cell : cells) {
    util::JsonWriter w;
    w.field("generator", cell.generator)
        .field("size", cell.size)
        .field("tasks", cell.tasks)
        .field("edges", cell.edges)
        .field("pfail", cell.pfail)
        .field("lambda", cell.lambda)
        .field("method", cell.method)
        .field("seed", cell.seed)
        .field("supported", cell.result.supported)
        .field("mean", cell.result.mean)
        // v3: the certified truncation envelope around `mean` (degenerate
        // lo == hi == mean when no atom-cap truncation fired; see
        // exp/evaluator.hpp).
        .field("mean_lo", cell.result.mean_lo)
        .field("mean_hi", cell.result.mean_hi)
        .field("std_error", cell.result.std_error)
        .field("reference_mean", cell.reference_mean)
        .field("relative_error", cell.relative_error)
        // v2: conditional-MC censoring is structural, not string-encoded
        // in `note` (see mc/conditional.hpp).
        .field("censored_trials", cell.result.censored_trials)
        .field("note", cell.result.note);
    if (include_timing) w.field("seconds", cell.result.seconds);
    rows.push_back(std::move(w));
  }
  util::JsonWriter top;
  top.field("schema", "expmk-sweep-v3")
      .field("retry", retry_name(retry))
      .field("reference", reference)
      .field("base_seed", base_seed)
      .field("mc_trials", mc_trials)
      .field("cell_count", cells.size());
  if (include_timing) top.field("seconds", seconds);
  top.array("cells", rows);
  return top.str();
}

std::string SweepResult::csv() const {
  std::string out =
      "generator,size,tasks,edges,pfail,lambda,method,seed,supported,mean,"
      "mean_lo,mean_hi,std_error,reference_mean,relative_error,"
      "censored_trials,seconds,note\n";
  for (const SweepCell& cell : cells) {
    out += cell.generator + ',' + std::to_string(cell.size) + ',' +
           std::to_string(cell.tasks) + ',' + std::to_string(cell.edges) +
           ',' + num(cell.pfail) + ',' + num(cell.lambda) + ',' +
           cell.method + ',' + std::to_string(cell.seed) + ',' +
           (cell.result.supported ? "1" : "0") + ',' + num(cell.result.mean) +
           ',' + num(cell.result.mean_lo) + ',' + num(cell.result.mean_hi) +
           ',' + num(cell.result.std_error) + ',' + num(cell.reference_mean) +
           ',' + num(cell.relative_error) + ',' +
           std::to_string(cell.result.censored_trials) + ',' +
           num(cell.result.seconds) + ',';
    // Notes are free text (exception messages): strip the CSV-hostile
    // characters rather than introduce quoting into a schema consumers
    // already parse naively.
    for (const char c : cell.result.note) {
      out += (c == ',' || c == '\n' || c == '\r') ? ' ' : c;
    }
    out += '\n';
  }
  return out;
}

void SweepResult::write_artifacts(const std::string& json_path,
                                  const std::string& csv_path,
                                  bool include_timing) const {
  if (!json_path.empty()) {
    std::ofstream f(json_path);
    if (!f) {
      throw std::runtime_error("SweepResult: cannot open " + json_path);
    }
    f << json(include_timing) << "\n";
  }
  if (!csv_path.empty()) {
    std::ofstream f(csv_path);
    if (!f) {
      throw std::runtime_error("SweepResult: cannot open " + csv_path);
    }
    f << csv();
  }
}

}  // namespace expmk::exp
