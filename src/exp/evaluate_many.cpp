#include "exp/evaluate_many.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <thread>

#include "exp/seeds.hpp"
#include "exp/workspace.hpp"
#include "util/thread_pool.hpp"

namespace expmk::exp {

namespace {

/// The shared fan-out: resolves methods upfront, then runs contiguous
/// index ranges on `pool`. Factored out so the owning-pool overload and
/// the caller-pool overload are the same code path (and therefore
/// bitwise-identical).
std::vector<EvalResult> run_batch(const scenario::Scenario& sc,
                                  std::span<const EvalRequest> requests,
                                  util::ThreadPool& pool,
                                  const EvaluatorRegistry& registry) {
  // Resolve every method upfront: a batch fails loudly on a typo before
  // any cell burns compute (same policy as SweepRunner::run). Planned
  // requests (budget set) resolve to the planner instead of a method.
  const bool any_planned =
      std::any_of(requests.begin(), requests.end(), [](const EvalRequest& r) {
        return r.budget.target_rel_err > 0.0 || r.budget.deadline_us > 0.0;
      });
  std::vector<const Evaluator*> evaluators;
  evaluators.reserve(requests.size());
  for (const EvalRequest& req : requests) {
    if (req.budget.target_rel_err > 0.0 || req.budget.deadline_us > 0.0) {
      evaluators.push_back(nullptr);  // planner-routed
      continue;
    }
    const Evaluator* e = registry.find(req.method);
    if (e == nullptr) {
      throw std::invalid_argument("evaluate_many: unknown method '" +
                                  req.method + "'");
    }
    evaluators.push_back(e);
  }

  // One EWMA-disabled planner shared by every planned request in the
  // batch: with the online correction off, each planned decision is a
  // pure function of (features, budget, committed coefficients), so the
  // bitwise determinism contract extends to planned cells.
  std::optional<Planner> planner;
  if (any_planned) {
    Planner::Config cfg;
    cfg.enable_ewma = false;
    planner.emplace(cfg, registry);
  }
  // Planned requests read the scenario's SP-tree feature; materialize the
  // lazy shared cache once, on this thread, before the fan-out.
  if (any_planned) (void)plan_features(sc);

  std::vector<EvalResult> results(requests.size());
  if (requests.empty()) return results;

  // One queued task per CONTIGUOUS INDEX RANGE, not per request: a batch
  // of cheap analytic requests (~1 us each pooled) must not pay a
  // packaged_task + future + mutex round-trip per request. Several
  // ranges per worker (4x) keep mixed-cost batches load-balanced — a run
  // of expensive MC requests lands in a few ranges other workers steal
  // around, instead of pinning one worker while the rest idle. Each
  // result is a pure function of (scenario, request, index) written to
  // its own slot, so the partition does not affect the output.
  const std::size_t chunk_count =
      std::min(requests.size(), pool.size() * 4);
  const std::size_t per_chunk =
      (requests.size() + chunk_count - 1) / chunk_count;
  pool.parallel_for_chunks(chunk_count, [&](std::size_t chunk) {
    const std::size_t begin = chunk * per_chunk;
    const std::size_t end = std::min(begin + per_chunk, requests.size());
    // One pooled workspace per worker thread: every analytic request
    // this worker serves after its first leases warm arenas.
    Workspace& ws = Workspace::local();
    for (std::size_t i = begin; i < end; ++i) {
      // Deterministic per-request seed: a pure function of (request seed
      // base, batch index) — duplicate requests decorrelate, and nothing
      // depends on which worker the request landed on. A seed_final
      // request (the serving batcher) already derived its seed upstream,
      // so its result is additionally independent of the batch index.
      EvalOptions options = requests[i].options;
      if (!requests[i].seed_final) {
        options.seed = derive_seed(requests[i].options.seed, i);
      }
      // Batch parallelism comes from the fan-out; nested engine threads
      // would oversubscribe the pool (and options.threads == 1 keeps
      // each MC evaluation's chunk merge on the one worker).
      options.threads = 1;
      if (evaluators[i] == nullptr) {
        // Planned request: the planner selects, sizes, runs, verifies.
        PlannedResult planned =
            planner->run(sc, requests[i].budget, options, ws);
        results[i] = std::move(planned.result);
        std::string note = "planned: ";
        note += planned.report.method_name;
        if (!results[i].note.empty()) {
          note += "; ";
          note += results[i].note;
        }
        results[i].note = std::move(note);
      } else {
        results[i] = evaluators[i]->evaluate(sc, options, ws);
      }
    }
  });
  return results;
}

}  // namespace

std::vector<EvalResult> evaluate_many(const scenario::Scenario& sc,
                                      std::span<const EvalRequest> requests,
                                      std::size_t threads,
                                      const EvaluatorRegistry& registry) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // No point spinning up workers that would never see a request.
  threads = std::min(threads, std::max<std::size_t>(1, requests.size()));
  util::ThreadPool pool(threads);
  return run_batch(sc, requests, pool, registry);
}

std::vector<EvalResult> evaluate_many(const scenario::Scenario& sc,
                                      std::span<const EvalRequest> requests,
                                      util::ThreadPool& pool,
                                      const EvaluatorRegistry& registry) {
  return run_batch(sc, requests, pool, registry);
}

}  // namespace expmk::exp
