// exp/plan.hpp
//
// The self-tuning query planner: given a compiled Scenario and a
// PlanBudget — a target relative error, a deadline in microseconds, or
// both — pick the CHEAPEST method in the registry catalogue predicted to
// meet the budget, size its atom/trial knobs, run it, and verify the
// delivered accuracy against the certified truncation envelope, with a
// bounds -> sp/dodin -> pilot-sized-MC escalation chain behind every
// prediction the model is not confident about.
//
// The paper's whole catalogue is an accuracy/cost tradeoff (exact is
// exponential, sp/dodin are atom-budget-bounded, MC pays per trial, the
// closed forms are cheap and biased); the planner turns that tradeoff
// into an API. Three layers:
//
//   * CostModel — predicted_us = coeff[method] * work(method, features),
//     with per-method coefficients fit OFFLINE from the committed BENCH
//     corpus (bench/fit_cost_model.py -> src/exp/cost_model_gen.hpp) and
//     corrected ONLINE by a per-method EWMA of observed/predicted ratios,
//     so the model self-tunes to the host it runs on. Methods the corpus
//     never measured carry fit_rows == 0 and are LOW CONFIDENCE.
//
//   * Planner::select — the pure decision function (no evaluation, no
//     allocation): enumerate capability-compatible methods, predict cost
//     and delivered accuracy, and pick. Target-only budgets pick the
//     cheapest accuracy-feasible method; deadline-only budgets pick the
//     most ACCURATE method predicted under the deadline (ties: cheaper);
//     combined budgets pick the cheapest meeting both. Monotone by
//     construction: a tighter deadline never selects a predicted-slower
//     method, a tighter target never selects a predicted-faster one
//     (tests/test_plan.cpp pins both). The serving shed policy calls this
//     directly with its per-level deadlines (serve/shed.hpp).
//
//   * Planner::run — select, evaluate, VERIFY: a certified-envelope
//     method whose delivered [mean_lo, mean_hi] width exceeds the target
//     gets its atom budget grown adaptively (width shrinks ~1/atoms);
//     an unsupported or still-too-wide result escalates down the chain
//     (bounds bracket -> sp if SP-collapsible else dodin -> pilot-sized
//     MC via mc::plan_with_pilot). Every attempt lands in the PlanReport.
//
// Determinism: select() is a pure function of (features, budget, model
// state); with the EWMA disabled (Config::enable_ewma = false, the
// evaluate_many planned mode) the whole plan is a pure function of the
// request, so planned batches stay bitwise independent of thread count.

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "exp/evaluator.hpp"
#include "scenario/scenario.hpp"
#include "util/contracts.hpp"

namespace expmk::exp {

/// Planner method catalogue, index-aligned with the generated cost table
/// (gen::kCostMethodNames in src/exp/cost_model_gen.hpp). kBounds is the
/// bounds.lower/bounds.upper PAIR — the escalation chain's bracket
/// screen, never a direct Estimate answer.
enum class PlanMethod : std::uint8_t {
  kExact = 0,
  kExactGeo,
  kFo,
  kSo,
  kSp,
  kDodin,
  kSculli,
  kCorlca,
  kClark,
  kBounds,
  kMc,
  kCmc,
  kSpHier,
  kDodinHier,
  kMcHier,
  kCount,
};

inline constexpr std::size_t kPlanMethodCount =
    static_cast<std::size_t>(PlanMethod::kCount);

/// Registry name for a planner method ("bounds" for the pair). The view
/// is static storage (the generated name table).
EXPMK_NOALLOC [[nodiscard]] std::string_view plan_method_name(
    PlanMethod m) noexcept;

/// Inverse of plan_method_name; kCount for names outside the catalogue
/// ("bounds.lower" and "bounds.upper" both map to kBounds).
EXPMK_NOALLOC [[nodiscard]] PlanMethod plan_method_from_name(
    std::string_view name) noexcept;

/// What the caller is willing to spend / tolerate. At least one field
/// must be positive (Planner::run throws std::invalid_argument
/// otherwise). target_rel_err bounds the delivered relative error vs the
/// true expected makespan (verified against the certified envelope where
/// the method produces one); deadline_us bounds the PREDICTED evaluation
/// cost — a budget for the model, not a hard real-time cutoff.
struct PlanBudget {
  double target_rel_err = 0.0;  ///< 0 = unconstrained
  double deadline_us = 0.0;     ///< 0 = unconstrained
};

/// Everything the cost model reads from a compiled scenario. Cheap to
/// compute except sp-reducibility, which comes from the scenario's lazy
/// shared SP-tree cache (computed once per scenario, reused by the
/// sp.hier/dodin.hier/mc.hier evaluators).
struct CostFeatures {
  std::size_t tasks = 0;
  std::size_t edges = 0;
  double critical_path = 0.0;  ///< d(G), the failure-free makespan
  /// SP-tree quotient size; 1 = the DAG is fully SP-collapsible.
  std::size_t quotient_tasks = 0;
  bool sp_feasible = false;  ///< quotient_tasks == 1
  bool two_state = true;
  bool geometric = false;
  bool heterogeneous = false;
};

/// Extracts the planner features from a compiled scenario.
[[nodiscard]] CostFeatures plan_features(const scenario::Scenario& sc);

/// Calibrated per-method cost model: predicted_us = coeff * work * ewma.
/// Coefficients come from the generated header; the EWMA correction
/// self-tunes per host from observed evaluation times. Thread-safe: the
/// correction state is atomic (last-writer-wins updates).
class CostModel {
 public:
  CostModel() = default;

  /// The fixed per-method complexity formula (unit work). MIRRORED by
  /// bench/fit_cost_model.py::work — change one, change both. `atoms` and
  /// `trials` are the knob values the prediction is for (0 picks the
  /// method's nominal).
  EXPMK_NOALLOC [[nodiscard]] static double work(PlanMethod m,
                                                 const CostFeatures& f,
                                                 std::size_t atoms,
                                                 std::uint64_t trials) noexcept;

  /// Predicted evaluation cost in microseconds, EWMA-corrected.
  EXPMK_NOALLOC [[nodiscard]] double predict_us(PlanMethod m,
                                                const CostFeatures& f,
                                                std::size_t atoms,
                                                std::uint64_t trials)
      const noexcept;

  /// True when the committed fit saw at least one corpus row for `m`;
  /// false marks a default/proxy coefficient (low confidence).
  EXPMK_NOALLOC [[nodiscard]] static bool calibrated(PlanMethod m) noexcept;

  /// Folds one observed evaluation (predicted vs actual us) into the
  /// method's EWMA correction. The per-update ratio is clamped to
  /// [1/4, 4] so one outlier (a cold cache, a descheduled thread) cannot
  /// flip the model. No-op when the EWMA is disabled.
  void observe(PlanMethod m, double predicted_us, double actual_us) noexcept;

  /// The current multiplicative correction for `m` (1 when untouched).
  [[nodiscard]] double correction(PlanMethod m) const noexcept;

  void set_ewma(bool enabled, double alpha = 0.2) noexcept {
    ewma_enabled_ = enabled;
    ewma_alpha_ = alpha;
  }
  [[nodiscard]] bool ewma_enabled() const noexcept { return ewma_enabled_; }

 private:
  /// log-space EWMA of observed/predicted per method; exp() of it is the
  /// multiplicative correction. Atomic doubles, relaxed order: the model
  /// tolerates lost updates (it is a smoothing filter, not a ledger).
  std::array<std::atomic<double>, kPlanMethodCount> ewma_log_{};
  bool ewma_enabled_ = true;
  double ewma_alpha_ = 0.2;
};

/// The outcome of the pure selection step.
struct PlanChoice {
  PlanMethod method = PlanMethod::kFo;
  double predicted_us = 0.0;
  double predicted_rel_err = 0.0;
  std::size_t max_atoms = 0;     ///< sp/dodin/hier atom budget (0 = exact)
  std::uint64_t mc_trials = 0;   ///< mc/cmc/mc.hier trial count
  /// False when NO capability-compatible method is predicted to meet the
  /// budget; `method` is then the best-effort pick (cheapest under a
  /// deadline, most accurate under a target).
  bool feasible = false;
  /// The chosen method's coefficient is a default/proxy, or the budget
  /// was infeasible. run() still attempts a FEASIBLE low-confidence pick
  /// (delivered accuracy is verified either way) but goes straight to
  /// the escalation chain for an infeasible one.
  bool low_confidence = false;
};

/// One attempted evaluation inside Planner::run.
struct PlanStep {
  PlanMethod method = PlanMethod::kFo;
  double predicted_us = 0.0;
  double actual_us = 0.0;
  std::size_t max_atoms = 0;
  std::uint64_t mc_trials = 0;
  bool supported = false;
  /// Certified envelope width relative to the mean ((hi-lo)/|mean|);
  /// 0 when degenerate or unsupported.
  double envelope_rel_width = 0.0;
  std::string note;
};

/// The structured decision record returned with every planned result.
struct PlanReport {
  PlanMethod method = PlanMethod::kFo;  ///< method behind `result`
  std::string_view method_name;
  double predicted_us = 0.0;  ///< model's cost prediction for that method
  double actual_us = 0.0;     ///< measured evaluation cost
  double predicted_rel_err = 0.0;
  double envelope_rel_width = 0.0;
  std::size_t max_atoms = 0;
  std::uint64_t mc_trials = 0;
  int escalations = 0;  ///< chain steps taken past the primary choice
  bool low_confidence = false;
  bool met_deadline = true;  ///< predicted_us <= deadline (when set)
  bool met_target = true;    ///< delivered accuracy <= target (when set)
  std::vector<PlanStep> steps;  ///< every attempt, in execution order
};

struct PlannedResult {
  EvalResult result;
  PlanReport report;
};

/// The planner. Immutable configuration + a self-tuning CostModel; safe
/// to share across threads (select is pure, run's shared state is the
/// atomic EWMA).
class Planner {
 public:
  struct Config {
    double confidence = 0.95;  ///< MC trial planning confidence
    std::uint64_t pilot_trials = 2000;  ///< escalation-chain MC pilot
    double ewma_alpha = 0.2;
    /// Disable for bitwise-reproducible planning (evaluate_many's planned
    /// mode): decisions become a pure function of features + committed
    /// coefficients.
    bool enable_ewma = true;
    /// Escalation atom schedule start/cap for sp/dodin (doubling rounds).
    std::size_t atoms_start = 64;
    std::size_t atoms_cap = 4096;
  };

  Planner();  // default Config, builtin registry
  explicit Planner(Config config, const EvaluatorRegistry& registry =
                                      EvaluatorRegistry::builtin());

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] CostModel& model() noexcept { return model_; }
  [[nodiscard]] const CostModel& model() const noexcept { return model_; }

  /// Pure selection: the cheapest method predicted to meet `budget` (see
  /// file comment for the exact tie-breaking semantics). Never evaluates
  /// anything; allocation-free — the serving shed's hot path.
  EXPMK_NOALLOC [[nodiscard]] PlanChoice select(
      const CostFeatures& f, const PlanBudget& budget) const noexcept;

  /// Planned evaluation: select, evaluate, verify, escalate. `base`
  /// supplies the request-level knobs the planner does not own (seed,
  /// threads, control variate, requested atom/trial counts used as cost
  /// hints). Throws std::invalid_argument when both budget fields are
  /// unset. The result's `seconds` covers the returned evaluation only;
  /// PlanReport::steps records the cost of everything else that ran.
  [[nodiscard]] PlannedResult run(const scenario::Scenario& sc,
                                  const PlanBudget& budget,
                                  const EvalOptions& base, Workspace& ws) const;

  /// Workspace-less convenience overload (Workspace::local()).
  [[nodiscard]] PlannedResult run(const scenario::Scenario& sc,
                                  const PlanBudget& budget,
                                  const EvalOptions& base = {}) const;

 private:
  struct Candidate;
  void enumerate(const CostFeatures& f, const PlanBudget& budget,
                 std::span<Candidate> out, std::size_t& count) const noexcept;

  Config config_;
  const EvaluatorRegistry* registry_;
  /// Capability snapshot by PlanMethod index (kBounds = bounds.lower).
  std::array<Capabilities, kPlanMethodCount> caps_{};
  std::array<const Evaluator*, kPlanMethodCount> evaluators_{};
  const Evaluator* bounds_upper_ = nullptr;
  mutable CostModel model_;
};

/// One-shot convenience over a process-wide self-tuning Planner (shared
/// EWMA state, default config).
[[nodiscard]] PlannedResult plan(const scenario::Scenario& sc,
                                 const PlanBudget& budget,
                                 const EvalOptions& base = {});

}  // namespace expmk::exp
