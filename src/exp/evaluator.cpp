#include "exp/evaluator.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/bounds.hpp"
#include "core/exact.hpp"
#include "core/first_order.hpp"
#include "core/second_order.hpp"
#include "exp/hier.hpp"
#include "exp/level_parallel.hpp"
#include "mc/conditional.hpp"
#include "mc/engine.hpp"
#include "normal/clark_full.hpp"
#include "normal/corlca.hpp"
#include "normal/sculli.hpp"
#include "spgraph/dodin.hpp"
#include "spgraph/sp_reduce.hpp"
#include "util/timer.hpp"

namespace expmk::exp {

Evaluator::Evaluator(std::string name, std::string description,
                     Capabilities caps, Fn fn)
    : name_(std::move(name)),
      description_(std::move(description)),
      caps_(caps),
      fn_(std::move(fn)) {}

EvalResult Evaluator::evaluate(const scenario::Scenario& sc,
                               const EvalOptions& options,
                               Workspace& ws) const {
  EvalResult result;
  const core::RetryModel retry = sc.retry();
  if ((retry == core::RetryModel::TwoState && !caps_.two_state) ||
      (retry == core::RetryModel::Geometric && !caps_.geometric)) {
    result.supported = false;
    result.note = retry == core::RetryModel::TwoState
                      ? "two-state retry model not supported"
                      : "geometric retry model not supported";
    return result;
  }
  if (sc.heterogeneous() && !caps_.heterogeneous) {
    result.supported = false;
    result.note = "per-task failure rates not supported";
    return result;
  }
  if (sc.task_count() > caps_.max_tasks) {
    result.supported = false;
    result.note = "graph exceeds " + std::to_string(caps_.max_tasks) +
                  "-task method limit";
    return result;
  }
  const util::Timer timer;
  try {
    fn_(sc, options, ws, result);
  } catch (const std::exception& e) {
    result = EvalResult{};
    result.supported = false;
    result.note = e.what();
  }
  if (result.supported) {
    // Methods that never truncate (or did not truncate this time) carry
    // the degenerate certified envelope.
    if (std::isnan(result.mean_lo)) result.mean_lo = result.mean;
    if (std::isnan(result.mean_hi)) result.mean_hi = result.mean;
  }
  result.seconds = timer.seconds();
  return result;
}

EvalResult Evaluator::evaluate(const scenario::Scenario& sc,
                               const EvalOptions& options) const {
  return evaluate(sc, options, Workspace::local());
}

EvalResult Evaluator::evaluate(const graph::Dag& g,
                               const core::FailureModel& model,
                               core::RetryModel retry,
                               const EvalOptions& options) const {
  // Compile outside evaluate()'s own try/catch so its wall-clock stays
  // the time spent inside the method, as before — but still convert
  // compile failures (cycle, bad lambda) into supported == false: a
  // sweep cell must never crash the grid.
  try {
    const scenario::Scenario sc =
        scenario::Scenario::compile(g, scenario::FailureSpec(model), retry);
    return evaluate(sc, options);
  } catch (const std::exception& e) {
    EvalResult result;
    result.supported = false;
    result.note = e.what();
    return result;
  }
}

void EvaluatorRegistry::add(Evaluator evaluator) {
  if (find(evaluator.name()) != nullptr) {
    throw std::invalid_argument("EvaluatorRegistry: duplicate name '" +
                                std::string(evaluator.name()) + "'");
  }
  evaluators_.push_back(std::move(evaluator));
}

const Evaluator* EvaluatorRegistry::find(
    std::string_view name) const noexcept {
  for (const Evaluator& e : evaluators_) {
    if (e.name() == name) return &e;
  }
  return nullptr;
}

std::vector<std::string_view> EvaluatorRegistry::names() const {
  std::vector<std::string_view> out;
  out.reserve(evaluators_.size());
  for (const Evaluator& e : evaluators_) out.push_back(e.name());
  return out;
}

namespace {

/// Fills the certified truncation envelope of a distribution method from
/// its accumulated ReduceStats-style accounting, and surfaces a nonzero
/// truncation count through `note` so silent accuracy loss is visible in
/// sweep artifacts. The envelope is widened by a relative slack (covering
/// the floating-point divergence between the truncated and untruncated
/// pipelines) only when truncation actually fired — the no-truncation
/// envelope stays exactly degenerate. The note assignment allocates, so
/// the zero-allocation steady-state contract holds whenever the atom
/// budget is not being hit (which is also when nothing needs reporting).
void set_certified(EvalResult& r,
                   const prob::dist_kernels::TruncationCert& cert) {
  if (cert.events == 0) {
    r.mean_lo = r.mean;
    r.mean_hi = r.mean;
    return;
  }
  const double slack = 1e-9 * std::max(1.0, std::fabs(r.mean));
  r.mean_lo = r.mean - cert.up - slack;
  r.mean_hi = r.mean + cert.down + slack;
  r.note = "atom-cap truncation: " + std::to_string(cert.events) + " ops, " +
           std::to_string(cert.merges) + " merges";
}

/// Worker count for the analytic level-parallel paths: EvalOptions::
/// threads resolved against the scenario size. 1 means "serial kernel".
std::size_t analytic_workers(const scenario::Scenario& sc,
                             const EvalOptions& opt) {
  return lp::resolve_workers(opt.threads, sc.task_count(),
                             opt.level_parallel_min_tasks);
}

EvaluatorRegistry make_builtin() {
  EvaluatorRegistry reg;

  // ------------------------------------------------ exact ground truths
  reg.add(Evaluator(
      "exact",
      "Exact E[M] of the 2-state DAG by subset enumeration, O(2^V (V+E))",
      {.two_state = true,
       .geometric = false,
       .heterogeneous = true,
       .max_tasks = core::kMaxExactTasks,
       .rel_tolerance = 1e-12},
      [](const scenario::Scenario& sc, const EvalOptions& opt,
         Workspace& ws, EvalResult& r) {
        r.mean = core::exact_two_state(sc, ws);
        if (opt.capture_distribution) {
          r.distribution = core::exact_two_state_distribution(sc);
        }
      }));

  reg.add(Evaluator(
      "exact.geo",
      "Exact E[M] under the geometric retry model truncated at "
      "geometric_max_executions executions (lower bound on the untruncated "
      "model, converging exponentially)",
      {.two_state = false,
       .geometric = true,
       // The enumeration is per-task throughout (each task's truncated
       // geometric state table uses its own p_i), so per-task rates are
       // exact too.
       .heterogeneous = true,
       // max_executions^V states: 3^12 ~ 5e5 keeps a cell sub-second.
       .max_tasks = 12,
       .kind = EstimateKind::Estimate,
       .rel_tolerance = 1e-6},
      [](const scenario::Scenario& sc, const EvalOptions& opt,
         Workspace& ws, EvalResult& r) {
        r.mean = core::exact_geometric(sc, opt.geometric_max_executions, ws);
      }));

  // -------------------------------------- the paper's closed-form family
  reg.add(Evaluator(
      "fo",
      "First-order approximation (the paper, Section IV), O(V+E); "
      "model-independent to O(lambda^2)",
      {.two_state = true,
       .geometric = true,
       .heterogeneous = true,
       .rel_tolerance = 5e-3},
      [](const scenario::Scenario& sc, const EvalOptions& opt, Workspace& ws,
         EvalResult& r) {
        r.mean = core::first_order(sc, ws, analytic_workers(sc, opt))
                     .expected_makespan();
      }));

  reg.add(Evaluator(
      "so",
      "Second-order approximation (paper's conclusion, our extension), "
      "O(V (V+E))",
      {.two_state = true,
       .geometric = true,
       .heterogeneous = true,
       .rel_tolerance = 1e-3},
      [](const scenario::Scenario& sc, const EvalOptions& opt, Workspace& ws,
         EvalResult& r) {
        r.mean = core::second_order(sc, ws, analytic_workers(sc, opt))
                     .expected_makespan;
      }));

  // ------------------------------------------- series-parallel / Dodin
  reg.add(Evaluator(
      "sp",
      "Exact series-parallel reduction (Valdes-Tarjan-Lawler rewrite); "
      "supported only when the AoA network is two-terminal SP",
      {.two_state = true,
       .geometric = false,
       .heterogeneous = true,
       .rel_tolerance = 1e-9},
      [](const scenario::Scenario& sc, const EvalOptions& opt,
         Workspace& ws, EvalResult& r) {
        // Flat engine: zero steady-state allocations on a warm workspace
        // (the distribution object is materialized only on capture).
        prob::DiscreteDistribution* cap =
            opt.capture_distribution ? &r.distribution.emplace() : nullptr;
        const auto eval = sp::evaluate_sp_flat(sc, opt.sp_max_atoms, ws, cap);
        if (!eval.is_series_parallel) {
          r.distribution.reset();
          r.supported = false;
          r.note = "graph is not series-parallel";
          return;
        }
        r.mean = eval.mean;
        set_certified(r, eval.stats.truncation);
      }));

  reg.add(Evaluator(
      "dodin",
      "Dodin's series-parallelization bound (Dodin 1985) — the paper's "
      "first competitor",
      {.two_state = true,
       .geometric = false,
       // Each task's 2-state law carries its own cached p_i, so the
       // transformation is per-task throughout — heterogeneous rates
       // supported (validated vs the exact oracle on SP DAGs, where the
       // untruncated transformation is exact).
       .heterogeneous = true,
       .rel_tolerance = 0.05},
      [](const scenario::Scenario& sc, const EvalOptions& opt,
         Workspace& ws, EvalResult& r) {
        // Flat engine: zero steady-state allocations on a warm workspace
        // (the distribution object is materialized only on capture).
        prob::DiscreteDistribution* cap =
            opt.capture_distribution ? &r.distribution.emplace() : nullptr;
        const auto d = sp::dodin_two_state_flat(
            sc, {.max_atoms = opt.dodin_atoms}, ws, cap);
        r.mean = d.mean;
        set_certified(r, d.truncation);
      }));

  // ----------------------------------------------------- Normal family
  reg.add(Evaluator(
      "sculli",
      "Sculli's normal propagation (Sculli 1983) — the paper's 'Normal' "
      "competitor, O(V+E)",
      {.two_state = true,
       .geometric = true,
       .heterogeneous = true,
       .rel_tolerance = 0.05},
      [](const scenario::Scenario& sc, const EvalOptions& opt, Workspace& ws,
         EvalResult& r) {
        r.mean = normal::sculli(sc, ws, analytic_workers(sc, opt))
                     .expected_makespan();
      }));

  reg.add(Evaluator(
      "corlca",
      "CorLCA correlation-tree normal propagation (Canon & Jeannot 2016), "
      "O(E depth)",
      {.two_state = true,
       .geometric = true,
       .heterogeneous = true,
       .rel_tolerance = 0.05},
      [](const scenario::Scenario& sc, const EvalOptions& opt, Workspace& ws,
         EvalResult& r) {
        r.mean = normal::corlca(sc, ws, analytic_workers(sc, opt))
                     .expected_makespan();
      }));

  reg.add(Evaluator(
      "clark",
      "Clark propagation with the full covariance matrix, O(E V) time / "
      "O(V^2) memory",
      {.two_state = true,
       .geometric = true,
       .heterogeneous = true,
       .max_tasks = normal::kClarkFullMaxTasks,
       .rel_tolerance = 0.05},
      [](const scenario::Scenario& sc, const EvalOptions& opt, Workspace& ws,
         EvalResult& r) {
        r.mean = normal::clark_full(sc, ws, analytic_workers(sc, opt))
                     .expected_makespan();
      }));

  // -------------------------------------------------- analytic bounds
  reg.add(Evaluator(
      "bounds.lower",
      "Jensen lower bound: d(G) with expected durations, O(V+E)",
      {.two_state = true,
       .geometric = false,
       .heterogeneous = true,
       .kind = EstimateKind::LowerBound},
      [](const scenario::Scenario& sc, const EvalOptions& opt, Workspace& ws,
         EvalResult& r) {
        r.mean = core::makespan_bounds(sc, ws, analytic_workers(sc, opt))
                     .jensen_lower;
      }));

  reg.add(Evaluator(
      "bounds.upper",
      "Level-decomposition upper bound: sum of per-level expected maxima",
      {.two_state = true,
       .geometric = false,
       .heterogeneous = true,
       .kind = EstimateKind::UpperBound},
      [](const scenario::Scenario& sc, const EvalOptions& opt, Workspace& ws,
         EvalResult& r) {
        r.mean = core::makespan_bounds(sc, ws, analytic_workers(sc, opt))
                     .level_upper;
      }));

  // -------------------------------------------------------- Monte-Carlo
  reg.add(Evaluator(
      "mc",
      "Monte-Carlo estimation (the paper's ground truth; bit-identical "
      "across thread counts)",
      {.two_state = true,
       .geometric = true,
       .heterogeneous = true,
       .stochastic = true,
       .rel_tolerance = 0.02},
      [](const scenario::Scenario& sc, const EvalOptions& opt,
         Workspace&, EvalResult& r) {
        // The MC engine's per-thread trial buffers are already pooled
        // internally (and the engine is multi-threaded, while a Workspace
        // is single-thread affine), so the workspace goes unused here.
        mc::McConfig cfg;
        cfg.trials = opt.mc_trials;
        cfg.seed = opt.seed;
        cfg.threads = opt.threads;
        cfg.control_variate = opt.mc_control_variate;
        const auto mc = mc::run_monte_carlo(sc, cfg);
        r.mean = mc.mean;
        r.std_error = mc.std_error;
      }));

  reg.add(Evaluator(
      "cmc",
      "Conditional (zero-failure-stratum) Monte-Carlo: p0 analytic, only "
      "E[M | >=1 failure] sampled",
      {.two_state = true,
       .geometric = false,
       .heterogeneous = true,
       .stochastic = true,
       .rel_tolerance = 0.02},
      [](const scenario::Scenario& sc, const EvalOptions& opt,
         Workspace&, EvalResult& r) {
        mc::ConditionalMcConfig cfg;
        cfg.trials = opt.mc_trials;
        cfg.seed = opt.seed;
        cfg.threads = opt.threads;
        const auto mc = mc::run_conditional_monte_carlo(sc, cfg);
        r.mean = mc.mean;
        r.std_error = mc.std_error;
        r.censored_trials = mc.censored_trials;
      }));

  // -------------------------------- hierarchical (SP-tree) evaluation
  reg.add(Evaluator(
      "sp.hier",
      "Hierarchical SP-tree evaluation: module makespan laws built "
      "bottom-up (memoized on content hash), quotient reduced by the "
      "exact SP engine; supported when the QUOTIENT is series-parallel",
      {.two_state = true,
       .geometric = false,
       .heterogeneous = true,
       .rel_tolerance = 1e-9},
      [](const scenario::Scenario& sc, const EvalOptions& opt, Workspace&,
         EvalResult& r) {
        auto ev = hier::evaluate_sp_hier(sc, opt.sp_max_atoms);
        if (!ev.is_series_parallel) {
          r.supported = false;
          r.note = "quotient graph is not series-parallel";
          return;
        }
        r.mean = ev.mean;
        set_certified(r, ev.truncation);
        if (opt.capture_distribution) r.distribution = std::move(ev.makespan);
      }));

  reg.add(Evaluator(
      "dodin.hier",
      "Dodin's bound on the SP-tree quotient: duplications scale with the "
      "quotient, module laws come from the memoized hierarchical build",
      {.two_state = true,
       .geometric = false,
       .heterogeneous = true,
       .rel_tolerance = 0.05},
      [](const scenario::Scenario& sc, const EvalOptions& opt, Workspace&,
         EvalResult& r) {
        auto ev = hier::evaluate_dodin_hier(sc, opt.dodin_atoms);
        r.mean = ev.mean;
        set_certified(r, ev.truncation);
        if (opt.capture_distribution) r.distribution = std::move(ev.makespan);
      }));

  reg.add(Evaluator(
      "mc.hier",
      "Monte-Carlo over the SP-tree quotient: inverse-CDF module sampling "
      "+ finish-time DP per trial, O(quotient) instead of O(V); "
      "bit-identical across thread counts",
      {.two_state = true,
       .geometric = false,
       .heterogeneous = true,
       .stochastic = true,
       .rel_tolerance = 0.02},
      [](const scenario::Scenario& sc, const EvalOptions& opt, Workspace&,
         EvalResult& r) {
        const auto ev = hier::evaluate_mc_hier(
            sc, opt.mc_trials, opt.seed, opt.threads, opt.dodin_atoms);
        r.mean = ev.mean;
        r.std_error = ev.std_error;
        set_certified(r, ev.truncation);
      }));

  return reg;
}

}  // namespace

const EvaluatorRegistry& EvaluatorRegistry::builtin() {
  static const EvaluatorRegistry registry = make_builtin();
  return registry;
}

}  // namespace expmk::exp
