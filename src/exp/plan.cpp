#include "exp/plan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/failure_model.hpp"
#include "exp/cost_model_gen.hpp"
#include "graph/sp_tree.hpp"
#include "mc/planning.hpp"

namespace expmk::exp {

namespace {

// 95% normal quantile: the delivered-accuracy check grants stochastic
// methods this many standard errors (matches the sweep contract's
// convention; Config::confidence drives the TRIAL planning, which uses
// the exact probit via mc::plan_trials).
constexpr double kZ95 = 1.96;

// Nominal knob values used for cost prediction when a request leaves the
// knob unset: EvalOptions' own defaults.
constexpr std::size_t kNominalAtoms = 256;
constexpr std::uint64_t kNominalTrials = 100'000;

// The MC accuracy contract anchor: the registry documents rel_tolerance
// 0.02 at the default 100k trials; the sampling error scales with
// 1/sqrt(trials) from there.
constexpr double kMcContractErr = 0.02;
constexpr double kMcContractTrials = 100'000.0;

EXPMK_NOALLOC constexpr std::size_t idx(PlanMethod m) noexcept {
  return static_cast<std::size_t>(m);
}

EXPMK_NOALLOC bool is_atom_method(PlanMethod m) noexcept {
  return m == PlanMethod::kSp || m == PlanMethod::kDodin ||
         m == PlanMethod::kSpHier || m == PlanMethod::kDodinHier;
}

EXPMK_NOALLOC bool is_mc_method(PlanMethod m) noexcept {
  return m == PlanMethod::kMc || m == PlanMethod::kCmc ||
         m == PlanMethod::kMcHier;
}

EXPMK_NOALLOC bool is_certified_method(PlanMethod m) noexcept {
  return is_atom_method(m);
}

/// Relative width of a result's certified envelope; 0 when degenerate.
EXPMK_NOALLOC double envelope_rel_width(const EvalResult& r) noexcept {
  if (!r.supported || std::isnan(r.mean) || r.mean == 0.0) return 0.0;
  return (r.mean_hi - r.mean_lo) / std::fabs(r.mean);
}

/// Trials needed for a relative sampling error <= t under the contract
/// anchor (pilot-free prior; the escalation chain's pilot refines it).
EXPMK_NOALLOC std::uint64_t trials_for_target(double t) noexcept {
  const double need =
      kMcContractTrials * (kMcContractErr / t) * (kMcContractErr / t);
  return static_cast<std::uint64_t>(
      std::clamp(need, 2000.0, 50'000'000.0));
}

}  // namespace

EXPMK_NOALLOC std::string_view plan_method_name(PlanMethod m) noexcept {
  if (m >= PlanMethod::kCount) return "?";
  return gen::kCostMethodNames[idx(m)];
}

EXPMK_NOALLOC PlanMethod plan_method_from_name(std::string_view name) noexcept {
  if (name == "bounds.lower" || name == "bounds.upper") {
    return PlanMethod::kBounds;
  }
  for (std::size_t i = 0; i < kPlanMethodCount; ++i) {
    if (name == gen::kCostMethodNames[i]) {
      return static_cast<PlanMethod>(i);
    }
  }
  return PlanMethod::kCount;
}

CostFeatures plan_features(const scenario::Scenario& sc) {
  CostFeatures f;
  f.tasks = sc.task_count();
  f.edges = sc.dag().edge_count();
  f.critical_path = sc.critical_path();
  f.quotient_tasks = sc.sp_decomposition().quotient.task_count();
  f.sp_feasible = f.quotient_tasks == 1;
  f.two_state = sc.retry() == core::RetryModel::TwoState;
  f.geometric = sc.retry() == core::RetryModel::Geometric;
  f.heterogeneous = sc.heterogeneous();
  return f;
}

// --------------------------------------------------------------- CostModel

EXPMK_NOALLOC double CostModel::work(PlanMethod m, const CostFeatures& f,
                                     std::size_t atoms,
                                     std::uint64_t trials) noexcept {
  // MIRROR of bench/fit_cost_model.py::work — change one, change both.
  const double v = static_cast<double>(f.tasks);
  const double ve = static_cast<double>(f.tasks + f.edges);
  const double a = static_cast<double>(atoms > 0 ? atoms : kNominalAtoms);
  const double n = static_cast<double>(trials > 0 ? trials : kNominalTrials);
  switch (m) {
    case PlanMethod::kExact:
      return std::exp2(std::min(v, 50.0)) * ve;
    case PlanMethod::kExactGeo:
      return std::pow(3.0, std::min(v, 30.0)) * v;
    case PlanMethod::kFo:
    case PlanMethod::kSculli:
    case PlanMethod::kCorlca:
    case PlanMethod::kBounds:
      return ve;
    case PlanMethod::kSo:
    case PlanMethod::kClark:
      return v * v;
    case PlanMethod::kSp:
    case PlanMethod::kDodin:
    case PlanMethod::kSpHier:
    case PlanMethod::kDodinHier:
      return ve * a;
    case PlanMethod::kMc:
    case PlanMethod::kCmc:
    case PlanMethod::kMcHier:
      return n * ve;
    case PlanMethod::kCount:
      break;
  }
  return 0.0;
}

EXPMK_NOALLOC double CostModel::predict_us(PlanMethod m, const CostFeatures& f,
                                           std::size_t atoms,
                                           std::uint64_t trials)
    const noexcept {
  if (m >= PlanMethod::kCount) return 0.0;
  double us = gen::kCostCoeffUs[idx(m)] * work(m, f, atoms, trials);
  if (ewma_enabled_) {
    us *= std::exp(ewma_log_[idx(m)].load(std::memory_order_relaxed));
  }
  return us;
}

EXPMK_NOALLOC bool CostModel::calibrated(PlanMethod m) noexcept {
  return m < PlanMethod::kCount && gen::kCostFitRows[idx(m)] > 0;
}

void CostModel::observe(PlanMethod m, double predicted_us,
                        double actual_us) noexcept {
  if (!ewma_enabled_ || m >= PlanMethod::kCount) return;
  if (predicted_us <= 0.0 || actual_us <= 0.0) return;
  // Clamp each observation's ratio so one outlier (cold cache, a
  // descheduled worker) cannot swing the model by more than 4x.
  const double ratio = std::clamp(actual_us / predicted_us, 0.25, 4.0);
  std::atomic<double>& cell = ewma_log_[idx(m)];
  const double prev = cell.load(std::memory_order_relaxed);
  const double next =
      (1.0 - ewma_alpha_) * prev + ewma_alpha_ * std::log(ratio);
  // Last-writer-wins store: the EWMA is a smoothing filter, not a
  // ledger — a lost concurrent update is within its noise floor.
  cell.store(next, std::memory_order_relaxed);
}

double CostModel::correction(PlanMethod m) const noexcept {
  if (m >= PlanMethod::kCount) return 1.0;
  return std::exp(ewma_log_[idx(m)].load(std::memory_order_relaxed));
}

// ----------------------------------------------------------------- Planner

struct Planner::Candidate {
  PlanMethod method = PlanMethod::kCount;
  double cost_us = 0.0;
  double rel_err = 0.0;
  std::size_t atoms = 0;
  std::uint64_t trials = 0;
};

Planner::Planner() : Planner(Config{}) {}

Planner::Planner(Config config, const EvaluatorRegistry& registry)
    : config_(config), registry_(&registry) {
  model_.set_ewma(config_.enable_ewma, config_.ewma_alpha);
  for (std::size_t i = 0; i < kPlanMethodCount; ++i) {
    const PlanMethod m = static_cast<PlanMethod>(i);
    const std::string_view name =
        m == PlanMethod::kBounds ? std::string_view("bounds.lower")
                                 : plan_method_name(m);
    evaluators_[i] = registry.find(name);
    if (evaluators_[i] != nullptr) {
      caps_[i] = evaluators_[i]->capabilities();
    }
  }
  bounds_upper_ = registry.find("bounds.upper");
}

EXPMK_NOALLOC void Planner::enumerate(const CostFeatures& f,
                                      const PlanBudget& budget,
                                      std::span<Candidate> out,
                                      std::size_t& count) const noexcept {
  const double t = budget.target_rel_err;
  const double d = budget.deadline_us;
  count = 0;
  for (std::size_t i = 0; i < kPlanMethodCount; ++i) {
    const PlanMethod m = static_cast<PlanMethod>(i);
    if (m == PlanMethod::kBounds) continue;  // bracket screen only
    if (evaluators_[i] == nullptr) continue;
    const Capabilities& caps = caps_[i];
    if (f.geometric && !caps.geometric) continue;
    if (f.two_state && !caps.two_state) continue;
    if (f.heterogeneous && !caps.heterogeneous) continue;
    if (f.tasks > caps.max_tasks) continue;
    if (caps.kind != EstimateKind::Estimate) continue;
    // The sp engines need the DAG to collapse to a single SP module; the
    // quotient size is the planner's feasibility signal (a misprediction
    // surfaces as supported == false and escalates).
    if ((m == PlanMethod::kSp || m == PlanMethod::kSpHier) &&
        !f.sp_feasible) {
      continue;
    }

    Candidate c;
    c.method = m;
    if (is_atom_method(m)) {
      // Tight targets on SMALL graphs get the exact (uncapped) sp
      // reduction — on large ones the uncapped atom arena explodes
      // (FlatNetwork's 2^32 offset range), so they get the atom cap and
      // the adaptive growth loop instead.
      const bool sp_like = m == PlanMethod::kSp || m == PlanMethod::kSpHier;
      c.atoms = sp_like && t > 0.0 && t <= 1e-6 && f.tasks <= 64
                    ? 0
                    : kNominalAtoms;
    }
    if (is_mc_method(m)) {
      std::uint64_t trials = t > 0.0 ? trials_for_target(t) : kNominalTrials;
      if (d > 0.0) {
        // Deadline cap: at most as many trials as the per-trial cost
        // prediction says fit (floor 100 so the estimate stays usable).
        const double per_trial = model_.predict_us(m, f, 0, 1);
        if (per_trial > 0.0) {
          const double cap = std::max(100.0, d / per_trial);
          trials = std::min(
              trials, static_cast<std::uint64_t>(
                          std::min(cap, 50'000'000.0)));
        }
      }
      c.trials = trials;
    }
    c.cost_us = model_.predict_us(m, f, c.atoms, c.trials);

    // Predicted delivered accuracy.
    if (is_mc_method(m)) {
      c.rel_err = kMcContractErr *
                  std::sqrt(kMcContractTrials /
                            static_cast<double>(std::max<std::uint64_t>(
                                c.trials, 1)));
    } else if (m == PlanMethod::kSp || m == PlanMethod::kSpHier) {
      // Exact up to the certified truncation envelope, which run()
      // verifies and adaptively narrows to the target.
      c.rel_err = c.atoms == 0 ? 1e-9 : (t > 0.0 ? t : 1e-6);
    } else if (m == PlanMethod::kDodin || m == PlanMethod::kDodinHier) {
      c.rel_err = caps.rel_tolerance;  // model bias floor (0.05)
    } else {
      c.rel_err = caps.rel_tolerance;
    }
    out[count++] = c;
  }
}

EXPMK_NOALLOC PlanChoice Planner::select(const CostFeatures& f,
                                         const PlanBudget& budget)
    const noexcept {
  std::array<Candidate, kPlanMethodCount> cands;
  std::size_t n = 0;
  enumerate(f, budget, cands, n);

  const double t = budget.target_rel_err;
  const double d = budget.deadline_us;

  // Ranking rules (inline; see the file comment in plan.hpp): a target
  // picks the CHEAPEST feasible method (accuracy breaks ties), a bare
  // deadline picks the most ACCURATE one under it (cost breaks ties).
  const Candidate* best = nullptr;      // best among budget-feasible
  const Candidate* fallback = nullptr;  // best-effort when none feasible
  for (std::size_t i = 0; i < n; ++i) {
    const Candidate& c = cands[i];
    const bool acc_ok = t <= 0.0 || c.rel_err <= t;
    const bool dl_ok = d <= 0.0 || c.cost_us <= d;
    if (acc_ok && dl_ok) {
      bool wins = best == nullptr;
      if (!wins && t > 0.0) {
        wins = c.cost_us < best->cost_us ||
               (c.cost_us == best->cost_us && c.rel_err < best->rel_err);
      } else if (!wins) {
        wins = c.rel_err < best->rel_err ||
               (c.rel_err == best->rel_err && c.cost_us < best->cost_us);
      }
      if (wins) best = &c;
    }
    // Best effort: under a target chase accuracy, else chase cost.
    bool fb_wins = fallback == nullptr;
    if (!fb_wins && t > 0.0) {
      fb_wins = c.rel_err < fallback->rel_err ||
                (c.rel_err == fallback->rel_err && c.cost_us < fallback->cost_us);
    } else if (!fb_wins) {
      fb_wins = c.cost_us < fallback->cost_us ||
                (c.cost_us == fallback->cost_us && c.rel_err < fallback->rel_err);
    }
    if (fb_wins) fallback = &c;
  }

  PlanChoice choice;
  if (best == nullptr && fallback == nullptr) {
    // Nothing in the catalogue applies (should not happen: fo covers
    // every scenario); report an infeasible fo plan.
    choice.method = PlanMethod::kFo;
    choice.low_confidence = true;
    return choice;
  }
  const Candidate& pick = best != nullptr ? *best : *fallback;
  choice.method = pick.method;
  choice.predicted_us = pick.cost_us;
  choice.predicted_rel_err = pick.rel_err;
  choice.max_atoms = pick.atoms;
  choice.mc_trials = pick.trials;
  choice.feasible = best != nullptr;
  choice.low_confidence = !choice.feasible || !CostModel::calibrated(pick.method);
  return choice;
}

namespace {

/// The delivered (a-posteriori) relative error bound of one evaluation:
/// certified envelope for the atom methods (plus dodin's documented model
/// bias), measured standard errors for the stochastic ones, the registry
/// contract for the deterministic closed forms.
double delivered_rel_err(PlanMethod m, const Capabilities& caps,
                         const EvalResult& r) {
  if (!r.supported) return std::numeric_limits<double>::infinity();
  const double env = envelope_rel_width(r);
  if (m == PlanMethod::kSp || m == PlanMethod::kSpHier) return env + 1e-9;
  if (m == PlanMethod::kDodin || m == PlanMethod::kDodinHier) {
    return std::max(caps.rel_tolerance, env);
  }
  if (is_mc_method(m)) {
    if (r.mean == 0.0) return std::numeric_limits<double>::infinity();
    return kZ95 * r.std_error / std::fabs(r.mean) + env;
  }
  return caps.rel_tolerance;
}

}  // namespace

PlannedResult Planner::run(const scenario::Scenario& sc,
                           const PlanBudget& budget, const EvalOptions& base,
                           Workspace& ws) const {
  if (budget.target_rel_err <= 0.0 && budget.deadline_us <= 0.0) {
    throw std::invalid_argument(
        "exp::Planner::run: PlanBudget needs target_rel_err or deadline_us");
  }
  const CostFeatures f = plan_features(sc);
  const double t = budget.target_rel_err;

  PlannedResult out;
  PlanReport& rep = out.report;

  // One attempted evaluation: apply the planned knobs on top of the
  // caller's base options, run, record the step, feed the EWMA.
  auto attempt = [&](PlanMethod m, std::size_t atoms,
                     std::uint64_t trials) -> EvalResult {
    const double predicted = model_.predict_us(m, f, atoms, trials);
    EvalOptions opt = base;
    if (m == PlanMethod::kSp || m == PlanMethod::kSpHier) {
      opt.sp_max_atoms = atoms;
    }
    if (m == PlanMethod::kDodin || m == PlanMethod::kDodinHier) {
      opt.dodin_atoms = atoms > 0 ? atoms : opt.dodin_atoms;
    }
    if (is_mc_method(m) && trials > 0) opt.mc_trials = trials;
    EvalResult r = evaluators_[idx(m)]->evaluate(sc, opt, ws);
    const double actual = r.seconds * 1e6;
    if (r.supported) model_.observe(m, predicted, actual);
    PlanStep step;
    step.method = m;
    step.predicted_us = predicted;
    step.actual_us = actual;
    step.max_atoms = atoms;
    step.mc_trials = trials;
    step.supported = r.supported;
    step.envelope_rel_width = envelope_rel_width(r);
    step.note = r.note;
    rep.steps.push_back(std::move(step));
    return r;
  };

  auto finish = [&](PlanMethod m, EvalResult&& r) {
    const PlanStep& last = rep.steps.back();
    rep.method = m;
    rep.method_name = plan_method_name(m);
    rep.predicted_us = last.predicted_us;
    rep.actual_us = last.actual_us;
    rep.predicted_rel_err = delivered_rel_err(m, caps_[idx(m)], r);
    rep.envelope_rel_width = last.envelope_rel_width;
    rep.max_atoms = last.max_atoms;
    rep.mc_trials = last.mc_trials;
    rep.met_deadline =
        budget.deadline_us <= 0.0 || rep.predicted_us <= budget.deadline_us;
    rep.met_target = t <= 0.0 || rep.predicted_rel_err <= t;
    out.result = std::move(r);
  };

  auto accepted = [&](PlanMethod m, const EvalResult& r) {
    return r.supported &&
           (t <= 0.0 || delivered_rel_err(m, caps_[idx(m)], r) <= t);
  };

  // ---- primary: attempt any feasible pick, trust-but-verify ------------
  // A feasible pick runs even when its coefficient is a default/proxy
  // (low confidence): accepted() checks DELIVERED accuracy, so an
  // uncalibrated exact/sp pick still serves tight targets — only a pick
  // that cannot meet the budget even by its own claim skips straight to
  // the escalation chain.
  const PlanChoice choice = select(f, budget);
  rep.low_confidence = choice.low_confidence;
  if (choice.feasible) {
    EvalResult r = attempt(choice.method, choice.max_atoms, choice.mc_trials);
    if (accepted(choice.method, r)) {
      finish(choice.method, std::move(r));
      return out;
    }
    // Certified method, envelope too wide: grow the atom budget — the
    // envelope width shrinks roughly as 1/atoms, so scale by the measured
    // overshoot (capped at 8x per round, 3 rounds).
    if (r.supported && is_certified_method(choice.method) && t > 0.0) {
      std::size_t atoms =
          choice.max_atoms > 0 ? choice.max_atoms : config_.atoms_start;
      for (int round = 0; round < 3 && atoms < config_.atoms_cap; ++round) {
        const double width = envelope_rel_width(r);
        if (width <= 0.0) break;
        const double factor = std::clamp(width / t, 2.0, 8.0);
        atoms = std::min<std::size_t>(
            config_.atoms_cap,
            static_cast<std::size_t>(static_cast<double>(atoms) * factor));
        ++rep.escalations;
        r = attempt(choice.method, atoms, choice.mc_trials);
        if (accepted(choice.method, r)) {
          finish(choice.method, std::move(r));
          return out;
        }
        if (!r.supported) break;
      }
    }
    ++rep.escalations;
  }

  // ---- escalation chain: bounds bracket -> sp/dodin -> pilot-sized MC --
  // Every step is gated on the scenario's capabilities; any step that
  // meets the budget returns. The chain also serves deadline-only budgets
  // whose primary pick turned out unsupported.
  //
  // 1. Bounds bracket screen (two-state only): when the analytic
  //    [lower, upper] bracket is already narrower than the target, the
  //    midpoint is a certified answer at O(V+E) cost.
  if (t > 0.0 && !f.geometric && evaluators_[idx(PlanMethod::kBounds)] &&
      bounds_upper_ != nullptr) {
    const double predicted =
        2.0 * model_.predict_us(PlanMethod::kBounds, f, 0, 0);
    EvalResult lo = evaluators_[idx(PlanMethod::kBounds)]->evaluate(sc, base, ws);
    EvalResult hi = bounds_upper_->evaluate(sc, base, ws);
    PlanStep step;
    step.method = PlanMethod::kBounds;
    step.predicted_us = predicted;
    step.actual_us = (lo.seconds + hi.seconds) * 1e6;
    step.supported = lo.supported && hi.supported;
    if (step.supported && lo.mean > 0.0) {
      step.envelope_rel_width = (hi.mean - lo.mean) / lo.mean;
    }
    rep.steps.push_back(step);
    if (step.supported && hi.mean >= lo.mean &&
        (hi.mean - lo.mean) <= t * (hi.mean + lo.mean)) {
      // Midpoint error <= half the bracket width <= t * midpoint.
      EvalResult r;
      r.mean = 0.5 * (lo.mean + hi.mean);
      r.mean_lo = lo.mean;
      r.mean_hi = hi.mean;
      r.supported = true;
      r.seconds = lo.seconds + hi.seconds;
      r.note = "bounds bracket (lower/upper midpoint)";
      finish(PlanMethod::kBounds, std::move(r));
      return out;
    }
    ++rep.escalations;
  }

  // 2. Certified atom engine: exact sp when the DAG collapses, Dodin's
  //    bound otherwise (only useful when the target tolerates its bias).
  {
    const PlanMethod m = f.sp_feasible ? PlanMethod::kSp : PlanMethod::kDodin;
    const Capabilities& caps = caps_[idx(m)];
    const bool retry_ok = f.geometric ? caps.geometric : caps.two_state;
    const bool acc_ok =
        t <= 0.0 || m == PlanMethod::kSp || t >= caps.rel_tolerance;
    if (retry_ok && acc_ok) {
      std::size_t atoms = config_.atoms_start;
      bool supported = true;
      for (int round = 0; round < 4; ++round) {
        EvalResult r = attempt(m, atoms, 0);
        if (accepted(m, r)) {
          finish(m, std::move(r));
          return out;
        }
        ++rep.escalations;
        supported = r.supported;
        if (!supported || atoms >= config_.atoms_cap) break;
        const double width = envelope_rel_width(r);
        const double factor =
            t > 0.0 && width > 0.0 ? std::clamp(width / t, 2.0, 8.0) : 2.0;
        atoms = std::min<std::size_t>(
            config_.atoms_cap,
            static_cast<std::size_t>(static_cast<double>(atoms) * factor));
      }
      // Small SP graphs have an exact answer (uncapped reduction,
      // atoms = 0) that beats MC's 1/sqrt(trials) wall for any tight
      // target; large ones would blow the uncapped atom arena.
      if (m == PlanMethod::kSp && supported && t > 0.0 && f.tasks <= 64) {
        EvalResult r = attempt(m, 0, 0);
        if (accepted(m, r)) {
          finish(m, std::move(r));
          return out;
        }
        ++rep.escalations;
      }
    }
  }

  // 3. Pilot-sized Monte-Carlo: the catalogue's universal fallback. The
  //    pilot measures the actual makespan variance and mc::plan_trials
  //    sizes the production run for the target at Config::confidence;
  //    a deadline caps the trial count by the model's per-trial cost.
  {
    const double rel = t > 0.0 ? t : kMcContractErr;
    mc::McConfig pilot_cfg;
    pilot_cfg.trials = config_.pilot_trials;
    pilot_cfg.seed = base.seed;
    pilot_cfg.threads = base.threads;
    const mc::PilotPlan plan =
        mc::plan_with_pilot(sc, rel, config_.confidence, pilot_cfg);
    std::uint64_t trials = std::min<std::uint64_t>(
        std::max<std::uint64_t>(plan.planned_trials, config_.pilot_trials),
        50'000'000);
    if (budget.deadline_us > 0.0) {
      const double per_trial = model_.predict_us(PlanMethod::kMc, f, 0, 1);
      if (per_trial > 0.0) {
        const double cap = std::max(100.0, budget.deadline_us / per_trial);
        trials = std::min(trials, static_cast<std::uint64_t>(
                                      std::min(cap, 50'000'000.0)));
      }
    }
    EvalResult r = attempt(PlanMethod::kMc, 0, trials);
    finish(PlanMethod::kMc, std::move(r));
    // The pilot's cost is part of the plan, not of the returned result.
    rep.steps.back().note = "pilot " + std::to_string(config_.pilot_trials) +
                            " trials -> planned " + std::to_string(trials);
  }
  return out;
}

PlannedResult Planner::run(const scenario::Scenario& sc,
                           const PlanBudget& budget,
                           const EvalOptions& base) const {
  return run(sc, budget, base, Workspace::local());
}

PlannedResult plan(const scenario::Scenario& sc, const PlanBudget& budget,
                   const EvalOptions& base) {
  static Planner planner;  // process-wide shared EWMA state
  return planner.run(sc, budget, base, Workspace::local());
}

}  // namespace expmk::exp
