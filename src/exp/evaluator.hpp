// exp/evaluator.hpp
//
// The uniform evaluator interface over every expected-makespan method in
// the library, and the registry the experiment-sweep subsystem (sweep.hpp)
// and the expmk_sweep CLI are built on.
//
// The paper's whole point is the *comparison* — exact/SP evaluation vs.
// Dodin, the Normal family, the first/second-order approximations and
// Monte-Carlo, across DAG classes and failure rates. Each method lives in
// its own namespace with its own signature; an Evaluator wraps one method
// behind a single call
//
//     evaluate(scenario, options) -> EvalResult
//
// where `scenario` is the compile-once scenario::Scenario handle carrying
// the DAG, the (possibly per-task) failure rates, the retry model and all
// cached preprocessing — compiled ONCE per (DAG, rates, retry) cell and
// shared by every method evaluated on that cell — and every wrapped
// method is a `(Scenario, EvalOptions, Workspace, EvalResult)` kernel:
// its scratch is leased from an exp::Workspace, so steady-state repeated
// evaluation on a warm workspace performs ZERO heap allocations for the
// analytic methods — since the flat-distribution-engine refactor this
// includes sp and dodin, whose networks and atom arithmetic run entirely
// on leased arenas (MC trial buffers were already pooled). The
// workspace-less evaluate(scenario, options) overload leases from the
// calling thread's pooled Workspace::local(); the legacy
// (Dag, FailureModel, RetryModel) overload remains as a thin
// compile-and-forward adapter. Both return bit-identical results.
//
// A Capabilities record states what the method can do (which retry
// models, how large a graph, uniform-only vs per-task rates, whether it
// is stochastic, and its documented accuracy contract). Capability
// violations and method-specific failures (a non-SP graph handed to the
// SP evaluator, a Dodin duplication blow-up) are reported as
// `supported == false` with a note, never as a crash — a sweep cell must
// not take down a 10,000-cell grid.

#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/failure_model.hpp"
#include "exp/workspace.hpp"
#include "graph/dag.hpp"
#include "prob/discrete_distribution.hpp"
#include "scenario/scenario.hpp"

namespace expmk::exp {

/// Method-independent evaluation knobs. Each evaluator reads the subset it
/// understands and ignores the rest, so one options object parameterizes a
/// whole sweep row.
struct EvalOptions {
  std::uint64_t mc_trials = 100'000;  ///< mc / cmc trial count (>= 1)
  std::uint64_t seed = 0xE57;         ///< mc / cmc stream seed
  /// Worker threads *inside* one evaluation (0 = hardware concurrency).
  /// The MC engines AND the analytic level-parallel paths are
  /// bit-identical across thread counts, so this is a pure wall-clock
  /// knob.
  std::size_t threads = 0;
  /// Analytic methods (fo/so/bounds/sculli/corlca/clark) switch to their
  /// level-parallel paths only at or above this task count — below it the
  /// fan-out overhead dominates and the serial (allocation-free) kernels
  /// run even when threads != 1. Set to 0 to force the parallel paths
  /// (the bit-identity tests do).
  std::size_t level_parallel_min_tasks = 4096;
  bool mc_control_variate = false;    ///< mc: control-variate estimator
  std::size_t dodin_atoms = 256;      ///< dodin: atom budget per dist
  std::size_t sp_max_atoms = 0;       ///< sp: atom budget (0 = exact)
  int geometric_max_executions = 3;   ///< exact.geo: truncation depth
  /// Fill EvalResult::distribution when the method produces a makespan
  /// law (exact, dodin, sp). Off by default: distributions can be large.
  bool capture_distribution = false;
};

/// Outcome of one evaluation.
struct EvalResult {
  /// Expected-makespan estimate; NaN when !supported.
  double mean = std::numeric_limits<double>::quiet_NaN();
  /// Certified truncation envelope around `mean`: the same computation
  /// run with NO atom-cap truncation would produce a mean inside
  /// [mean_lo, mean_hi] (see prob/dist_kernels.hpp for the displacement
  /// math). Degenerate — lo == hi == mean exactly — whenever no
  /// truncation fired, which includes every method that never truncates;
  /// evaluate() fills the degenerate envelope for methods that do not set
  /// one. NaN when !supported. The envelope certifies the atom-budget
  /// error ONLY, never a method's own modeling bias or sampling noise.
  double mean_lo = std::numeric_limits<double>::quiet_NaN();
  double mean_hi = std::numeric_limits<double>::quiet_NaN();
  /// Standard error of `mean` for stochastic methods, 0 for deterministic
  /// ones.
  double std_error = 0.0;
  /// Approximate makespan distribution when the method computes one and
  /// EvalOptions::capture_distribution was set.
  std::optional<prob::DiscreteDistribution> distribution;
  /// Conditional-MC trials whose rejection loop hit the cap without
  /// drawing a failure (excluded from the conditional statistics; see
  /// mc/conditional.hpp). Zero for every other method.
  std::uint64_t censored_trials = 0;
  double seconds = 0.0;  ///< wall-clock spent inside the method
  /// False when the method cannot handle this scenario (graph size, retry
  /// model, per-task rates); `note` says why and `mean` is NaN.
  bool supported = true;
  std::string note;
};

/// What one estimate *means* relative to the true expected makespan —
/// drives the cross-method consistency contract in tests/test_sweep.cpp.
enum class EstimateKind {
  Estimate,    ///< approximates E[M]; |rel err| bounded by rel_tolerance
  LowerBound,  ///< guaranteed <= E[M]
  UpperBound,  ///< guaranteed >= E[M]
};

/// Static description of a method's applicability and accuracy contract.
struct Capabilities {
  bool two_state = true;    ///< handles RetryModel::TwoState
  bool geometric = false;   ///< handles RetryModel::Geometric
  /// Handles heterogeneous per-task failure rates; scenarios with a
  /// per-task FailureSpec are gated (supported == false) otherwise.
  bool heterogeneous = false;
  /// Hard task-count ceiling (enumeration oracles, dense covariance);
  /// larger graphs yield supported == false.
  std::size_t max_tasks = std::numeric_limits<std::size_t>::max();
  bool stochastic = false;  ///< result depends on EvalOptions::seed
  EstimateKind kind = EstimateKind::Estimate;
  /// Documented relative-accuracy contract vs core::exact_two_state on
  /// the <= 10-task generator DAGs at pfail <= 0.01 (two-state model).
  /// Stochastic methods are additionally granted 5 standard errors.
  /// Enforced by tests/test_sweep.cpp.
  double rel_tolerance = 1e-9;
};

/// One registered expected-makespan method.
class Evaluator {
 public:
  /// The wrapped computation: fills mean / std_error / distribution /
  /// censored_trials of the result in-place (seconds and capability
  /// gating are handled by evaluate()). Scratch is leased from the given
  /// Workspace — the kernel must not retain spans past the call. May
  /// throw; evaluate() converts exceptions into supported == false.
  using Fn = std::function<void(const scenario::Scenario&,
                                const EvalOptions&, Workspace&,
                                EvalResult&)>;

  Evaluator(std::string name, std::string description, Capabilities caps,
            Fn fn);

  [[nodiscard]] std::string_view name() const noexcept { return name_; }
  [[nodiscard]] std::string_view description() const noexcept {
    return description_;
  }
  [[nodiscard]] const Capabilities& capabilities() const noexcept {
    return caps_;
  }

  /// Runs the method on a compiled scenario with an explicit workspace —
  /// the serving hot path: on a warm `ws` the analytic methods perform
  /// zero heap allocations. Capability violations (retry model, graph
  /// size, heterogeneous rates) and exceptions thrown by the method
  /// surface as supported == false with a note; `seconds` is always the
  /// wall-clock spent inside the call. The workspace must not be used by
  /// another thread for the duration of the call.
  [[nodiscard]] EvalResult evaluate(const scenario::Scenario& sc,
                                    const EvalOptions& options,
                                    Workspace& ws) const;

  /// Workspace-less convenience overload: leases from the calling
  /// thread's pooled Workspace::local(), so repeated calls from one
  /// thread are just as allocation-free as the explicit form.
  [[nodiscard]] EvalResult evaluate(const scenario::Scenario& sc,
                                    const EvalOptions& options = {}) const;

  /// Legacy adapter: compiles a uniform-rate scenario for (g, model,
  /// retry) and forwards — bit-identical to the Scenario overload.
  /// Compilation failures (e.g. a cyclic graph) also surface as
  /// supported == false. Prefer compiling once when evaluating several
  /// methods on the same cell.
  [[nodiscard]] EvalResult evaluate(const graph::Dag& g,
                                    const core::FailureModel& model,
                                    core::RetryModel retry,
                                    const EvalOptions& options = {}) const;

 private:
  std::string name_;
  std::string description_;
  Capabilities caps_;
  Fn fn_;
};

/// A named collection of evaluators. `builtin()` exposes every method in
/// the library; experiments with custom estimators can copy it and add()
/// their own.
class EvaluatorRegistry {
 public:
  /// The registry of all built-in methods (see evaluator.cpp for the
  /// catalogue). Thread-safe to share: the registry is immutable and the
  /// evaluators are stateless.
  [[nodiscard]] static const EvaluatorRegistry& builtin();

  /// Adds an evaluator; throws std::invalid_argument on a duplicate name.
  void add(Evaluator evaluator);

  /// Looks up by exact name; nullptr when absent.
  [[nodiscard]] const Evaluator* find(std::string_view name) const noexcept;

  /// Registration-order list of names.
  [[nodiscard]] std::vector<std::string_view> names() const;

  [[nodiscard]] std::size_t size() const noexcept {
    return evaluators_.size();
  }
  [[nodiscard]] const std::vector<Evaluator>& evaluators() const noexcept {
    return evaluators_;
  }

 private:
  std::vector<Evaluator> evaluators_;
};

}  // namespace expmk::exp
