// exp/workspace.hpp
//
// The reusable scratch subsystem behind the allocation-free evaluation
// hot paths. Every analytic estimator needs O(V)–O(V^2) of typed scratch
// (level arrays, longest-path distances, Normal moments, a covariance
// matrix); before this layer each method heap-allocated those vectors on
// every call, which dominates the cost of evaluating small-to-mid DAGs —
// exactly the regime a serving deployment hits millions of times per
// scenario. A Workspace turns that into a handful of flat typed arenas
// that are *leased* per evaluation and reused forever after:
//
//     exp::Workspace ws;                       // or Workspace::local()
//     for (;;) evaluator.evaluate(sc, opt, ws);  // steady state: 0 allocs
//
// Lease/reuse contract:
//  * A lease (`doubles(n)`, `u32(n)`, ...) checks out the next buffer of
//    that type, grown to at least `n` elements. Buffer CONTENTS ARE
//    UNSPECIFIED — kernels must fully overwrite (or explicitly fill)
//    what they read; nothing is zeroed on checkout.
//  * Leases are scoped by Workspace::Frame (RAII): a kernel opens a frame,
//    takes its leases, and the frame's destructor returns them. Because a
//    returned buffer is re-leased at the same checkout slot on the next
//    call, a warm workspace serves any repetition of the same call
//    sequence with ZERO heap allocations (tests/test_workspace.cpp pins
//    this with a counting operator new for the analytic evaluators).
//  * Growth policy: arenas grow monotonically to the high-water mark of
//    every kernel that ever leased a given slot, and are never shrunk.
//    reset() returns all leases but keeps capacity; release() frees
//    everything (for memory-pressure handling between batches).
//  * Thread affinity: a Workspace is NOT thread-safe — one thread at a
//    time. The canonical deployment is one workspace per worker thread
//    (Workspace::local() is the thread-local pool that exp::SweepRunner
//    and exp::evaluate_many lease from).
//
// Frames nest: a kernel that calls another workspace kernel simply sees
// its callee open and close an inner frame above its own leases.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "prob/atom.hpp"
#include "prob/normal.hpp"

namespace expmk::exp {

/// Reusable per-thread scratch arenas for the evaluation hot paths. See
/// the file comment for the lease/reuse contract.
class Workspace {
 public:
  Workspace();
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// RAII lease scope: captures the checkout cursors on construction and
  /// restores them on destruction, returning every lease taken inside the
  /// frame. Every public workspace kernel opens one frame around its own
  /// leases, so repeated calls re-lease the same (already grown) buffers.
  class Frame {
   public:
    explicit Frame(Workspace& ws) noexcept : ws_(ws), saved_(ws.cursors_) {}
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;
    ~Frame() { ws_.cursors_ = saved_; }

   private:
    friend class Workspace;
    Workspace& ws_;
    struct Cursors {
      std::size_t d = 0, u32 = 0, u64 = 0, m = 0, i = 0, a = 0;
    } saved_;
  };

  // --------------------------------------------------------------- leases
  // Each call checks out the next buffer of that type, sized to at least
  // `n`; contents are unspecified (see the contract above).
  [[nodiscard]] std::span<double> doubles(std::size_t n) {
    return pool_d_.lease(cursors_.d++, n);
  }
  [[nodiscard]] std::span<std::uint32_t> u32(std::size_t n) {
    return pool_u32_.lease(cursors_.u32++, n);
  }
  [[nodiscard]] std::span<std::uint64_t> u64(std::size_t n) {
    return pool_u64_.lease(cursors_.u64++, n);
  }
  [[nodiscard]] std::span<prob::NormalMoments> moments(std::size_t n) {
    return pool_m_.lease(cursors_.m++, n);
  }
  [[nodiscard]] std::span<int> ints(std::size_t n) {
    return pool_i_.lease(cursors_.i++, n);
  }
  [[nodiscard]] std::span<prob::Atom> atoms(std::size_t n) {
    return pool_a_.lease(cursors_.a++, n);
  }

  /// Returns every lease (cursors to zero) but keeps all capacity — the
  /// steady-state entry point between unrelated evaluations when no Frame
  /// is on the stack.
  void reset() noexcept { cursors_ = {}; }

  /// Frees all arenas (capacity back to zero). For memory-pressure
  /// handling between batches; never called on the hot path.
  void release() noexcept;

  /// Total bytes currently reserved across all arenas — the growth-policy
  /// observable (monotone under the lease contract until release()).
  [[nodiscard]] std::size_t bytes_reserved() const noexcept;

  /// The calling thread's pooled workspace. This is what the workspace-
  /// less Evaluator::evaluate overload, exp::SweepRunner workers and
  /// exp::evaluate_many lease from: one pooled workspace per worker
  /// thread, created on first use and alive until the thread exits.
  [[nodiscard]] static Workspace& local();

  /// Process-wide count of Workspace constructions — the metrics hook the
  /// one-pool-per-worker contract is pinned with (tests assert a sweep
  /// creates at most `threads` workspaces, not one per cell).
  [[nodiscard]] static std::uint64_t created_count() noexcept;

 private:
  template <typename T>
  struct Pool {
    // One vector per checkout slot: growing a buffer never moves any
    // other live lease, and a slot's capacity monotonically tracks the
    // largest request it has ever served.
    std::vector<std::vector<T>> buffers;

    std::span<T> lease(std::size_t slot, std::size_t n) {
      if (slot >= buffers.size()) buffers.resize(slot + 1);
      std::vector<T>& buf = buffers[slot];
      if (buf.size() < n) buf.resize(n);
      return {buf.data(), n};
    }
    [[nodiscard]] std::size_t bytes() const noexcept {
      std::size_t total = 0;
      for (const auto& b : buffers) total += b.capacity() * sizeof(T);
      return total;
    }
  };

  Pool<double> pool_d_;
  Pool<std::uint32_t> pool_u32_;
  Pool<std::uint64_t> pool_u64_;
  Pool<prob::NormalMoments> pool_m_;
  Pool<int> pool_i_;
  Pool<prob::Atom> pool_a_;
  Frame::Cursors cursors_;
};

}  // namespace expmk::exp
