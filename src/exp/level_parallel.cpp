#include "exp/level_parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace expmk::exp::lp {

namespace {

/// Runs `work` on the caller plus up to workers-1 pool helpers and joins.
/// `work` must be safe to run concurrently from all of them and must
/// terminate on its own once the shared cursor is drained (helpers that
/// start late — or never, under pool saturation — just find no chunks).
template <typename Work>
void fan_out(std::size_t workers, const Work& work) {
  const std::size_t helpers =
      workers > 1 ? std::min(workers - 1, shared_pool().size()) : 0;
  std::vector<std::future<void>> joins;
  joins.reserve(helpers);
  for (std::size_t h = 0; h < helpers; ++h) {
    joins.push_back(shared_pool().submit([&work] { work(); }));
  }
  std::exception_ptr first;
  try {
    work();
  } catch (...) {
    first = std::current_exception();
  }
  for (auto& j : joins) {
    try {
      j.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace

EXPMK_NOALLOC util::ThreadPool& shared_pool() {
  // Leaked on purpose: joining a static pool during exit can race other
  // static destructors; the OS reclaims the threads.
  static util::ThreadPool* pool =
      // NOLINTNEXTLINE(expmk-no-alloc-kernel): process-wide singleton built exactly once on the cold first call; every steady-state call is a pointer read
      new util::ThreadPool(std::thread::hardware_concurrency());
  return *pool;
}

EXPMK_NOALLOC std::size_t resolve_workers(std::size_t threads, std::size_t n,
                                          std::size_t min_tasks) {
  if (threads == 1 || n < min_tasks) return 1;
  std::size_t t = threads != 0 ? threads : std::thread::hardware_concurrency();
  t = std::min(t, shared_pool().size() + 1);
  return std::max<std::size_t>(t, 1);
}

void run_chunks(std::size_t workers, std::size_t nchunks,
                const std::function<void(std::size_t)>& body) {
  if (workers <= 1 || nchunks <= 1) {
    for (std::size_t c = 0; c < nchunks; ++c) body(c);
    return;
  }
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  fan_out(workers, [&] {
    for (;;) {
      const std::size_t c = cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= nchunks || failed.load(std::memory_order_relaxed)) break;
      try {
        body(c);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        throw;
      }
    }
  });
}

void run_leveled(
    std::size_t workers, const graph::LevelChunks& lc,
    const std::function<void(std::uint32_t, std::uint32_t)>& body) {
  const std::size_t nchunks = lc.chunk_count();
  if (workers <= 1 || nchunks <= 1) {
    for (std::size_t c = 0; c < nchunks; ++c) {
      body(lc.chunk_begin[c], lc.chunk_begin[c + 1]);
    }
    return;
  }
  const std::size_t nlevels = lc.level_count();
  std::atomic<std::uint32_t> cursor{0};
  std::atomic<std::uint32_t> frontier{0};  // first incomplete level
  std::atomic<bool> failed{false};
  const auto done = std::make_unique<std::atomic<std::uint32_t>[]>(nlevels);
  for (std::size_t l = 0; l < nlevels; ++l) {
    done[l].store(0, std::memory_order_relaxed);
  }

  fan_out(workers, [&] {
    for (;;) {
      const std::uint32_t c = cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= nchunks) break;
      const std::uint32_t lvl = lc.chunk_level[c];
      // Hop levels are contiguous and chunks are claimed in level order,
      // so every chunk of levels < lvl is already claimed by a thread
      // that can finish it — this wait always terminates.
      std::uint32_t spins = 0;
      while (frontier.load(std::memory_order_acquire) < lvl) {
        if (failed.load(std::memory_order_relaxed)) return;
        if (++spins > 256) std::this_thread::yield();
      }
      try {
        body(lc.chunk_begin[c], lc.chunk_begin[c + 1]);
      } catch (...) {
        // Unblock waiters: publish this level as complete anyway (results
        // are garbage but the first exception aborts the whole run).
        failed.store(true, std::memory_order_relaxed);
        frontier.store(static_cast<std::uint32_t>(nlevels),
                       std::memory_order_release);
        throw;
      }
      // The RMW chain on done[lvl] keeps every chunk's writes in the
      // release sequence the frontier store publishes.
      const std::uint32_t finished =
          done[lvl].fetch_add(1, std::memory_order_acq_rel) + 1;
      if (finished == lc.level_chunks[lvl]) {
        std::uint32_t f = frontier.load(std::memory_order_acquire);
        while (f < nlevels &&
               done[f].load(std::memory_order_acquire) ==
                   lc.level_chunks[f]) {
          if (frontier.compare_exchange_weak(f, f + 1,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
            f = f + 1;
          }
        }
      }
    }
  });
}

double compute_levels_parallel(const graph::CsrDag& g,
                               std::span<const double> weights,
                               const graph::LevelSets& ls,
                               std::span<double> top, std::span<double> bottom,
                               std::span<double> chunk_scratch,
                               std::size_t workers) {
  const std::size_t n = g.task_count();
  const std::span<const std::uint32_t> poff = g.pred_offsets();
  const std::span<const std::uint32_t> pred = g.pred_index();
  const std::span<const std::uint32_t> soff = g.succ_offsets();
  const std::span<const std::uint32_t> succ = g.succ_index();

  // Forward sweep: identical per-vertex expression to the serial
  // graph::compute_levels, order within a level immaterial (reads touch
  // strictly earlier levels only).
  run_leveled(workers, ls.fwd, [&](std::uint32_t b, std::uint32_t e) {
    for (std::uint32_t i = b; i < e; ++i) {
      const std::uint32_t v = ls.fwd.order[i];
      double t = 0.0;
      for (std::uint32_t k = poff[v]; k < poff[v + 1]; ++k) {
        const std::uint32_t u = pred[k];
        const double cand = top[u] + weights[u];
        if (cand > t) t = cand;
      }
      top[v] = t;
    }
  });

  run_leveled(workers, ls.bwd, [&](std::uint32_t b, std::uint32_t e) {
    for (std::uint32_t i = b; i < e; ++i) {
      const std::uint32_t v = ls.bwd.order[i];
      double below = 0.0;
      for (std::uint32_t k = soff[v]; k < soff[v + 1]; ++k) {
        if (bottom[succ[k]] > below) below = bottom[succ[k]];
      }
      bottom[v] = below + weights[v];
    }
  });

  // d = max over top[v] + bottom[v]: a max over the same set the serial
  // sweep folds, so any fold order gives the same bits. Per-chunk maxima
  // land in fixed position chunks, folded in chunk order.
  const std::size_t nchunks = fixed_chunk_count(n);
  run_chunks(workers, nchunks, [&](std::size_t c) {
    const std::size_t b = c * graph::kLevelChunk;
    const std::size_t e = std::min(n, b + graph::kLevelChunk);
    double m = 0.0;
    for (std::size_t v = b; v < e; ++v) {
      const double through = top[v] + bottom[v];
      if (through > m) m = through;
    }
    chunk_scratch[c] = m;
  });
  double d = 0.0;
  for (std::size_t c = 0; c < nchunks; ++c) {
    if (chunk_scratch[c] > d) d = chunk_scratch[c];
  }
  return d;
}

}  // namespace expmk::exp::lp
