// exp/level_parallel.hpp
//
// Deadlock-free level-parallel execution for the analytic sweeps, built on
// the structure-cached graph::LevelSets schedule and a process-wide shared
// util::ThreadPool.
//
// Determinism contract (the threads-1/2/7 bit-identity pin): the chunk
// partition is a pure function of the graph (graph/level_sets.hpp), every
// chunk writes only its own disjoint slots, and any floating-point
// reduction folds per-chunk partials IN CHUNK-INDEX ORDER on the calling
// thread. Worker count therefore changes only which thread computes a
// chunk, never a single bit of the result — the same discipline as the MC
// engine's fixed 128-chunk partition.
//
// Scheduling contract (no deadlock under pool saturation): helpers are
// plain pool submissions, never a fixed-parties barrier. The CALLER also
// executes chunks, so a run completes even when the shared pool is fully
// busy with other work (helpers then contribute nothing). run_leveled
// gates each chunk on a level frontier advanced by per-level completion
// counters; chunks are claimed in schedule order (levels ascending), so
// the lowest incomplete level is always claimed by threads that can run
// it without waiting — every wait is on a strictly earlier level owned by
// a running thread, which rules out cycles.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

#include "graph/csr.hpp"
#include "graph/level_sets.hpp"
#include "util/contracts.hpp"
#include "util/thread_pool.hpp"

namespace expmk::exp::lp {

/// The lazily-created process-wide helper pool (hardware_concurrency
/// workers). Shared by every level-parallel evaluation and sized once;
/// per-run worker counts below the pool size simply submit fewer helper
/// tasks. Intentionally leaked so teardown never races static destructors.
[[nodiscard]] util::ThreadPool& shared_pool();

/// Default EvalOptions gate: graphs below this size run the serial sweeps
/// even when threads != 1 (fan-out overhead would dominate).
inline constexpr std::size_t kLevelParallelMinTasks = 4096;

/// Resolves EvalOptions::threads (0 = hardware concurrency) against the
/// task count: returns 1 — meaning "run serial" — when threads == 1 or
/// n < min_tasks, else the worker count clamped to [1, pool size + 1]
/// (the +1 is the participating caller).
[[nodiscard]] std::size_t resolve_workers(std::size_t threads, std::size_t n,
                                          std::size_t min_tasks);

/// Runs body(c) for every c in [0, nchunks) with `workers` threads (the
/// caller plus up to workers-1 pool helpers). Chunks are claimed from an
/// atomic cursor; bodies must write only chunk-private slots. Blocks until
/// all chunks finish; the first exception thrown by any body is rethrown.
void run_chunks(std::size_t workers, std::size_t nchunks,
                const std::function<void(std::size_t)>& body);

/// Runs body(begin, end) for every chunk of the leveled schedule, where
/// [begin, end) indexes lc.order. A chunk starts only after every chunk
/// of all earlier levels has completed, so bodies may read values written
/// by earlier levels without further synchronization. Same worker /
/// exception semantics as run_chunks.
void run_leveled(std::size_t workers, const graph::LevelChunks& lc,
                 const std::function<void(std::uint32_t, std::uint32_t)>& body);

/// Number of fixed kLevelChunk-sized position chunks for n vertices —
/// the partition run_chunks-based reductions over plain position ranges
/// use (bit-identity: depends on n only, never on worker count).
EXPMK_NOALLOC [[nodiscard]] constexpr std::size_t fixed_chunk_count(
    std::size_t n) noexcept {
  return (n + graph::kLevelChunk - 1) / graph::kLevelChunk;
}

/// Level-parallel twin of graph::compute_levels: fills top / bottom and
/// returns the critical-path length d, bit-identical to the serial sweep
/// for any worker count. `chunk_scratch` must hold at least
/// fixed_chunk_count(n) doubles (leased by the caller so hot paths stay
/// allocation-free).
double compute_levels_parallel(const graph::CsrDag& g,
                               std::span<const double> weights,
                               const graph::LevelSets& ls,
                               std::span<double> top, std::span<double> bottom,
                               std::span<double> chunk_scratch,
                               std::size_t workers);

}  // namespace expmk::exp::lp
