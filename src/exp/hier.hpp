// exp/hier.hpp
//
// Hierarchical (SP-tree) expected-makespan evaluation — the million-task
// path.
//
// graph::sp_collapse (graph/sp_tree.hpp) contracts exact series/parallel
// patterns of a task DAG into composite modules and leaves a quotient DAG
// of the surviving modules. Because both contractions are
// makespan-preserving for independent task durations, the makespan law of
// the ORIGINAL graph equals the makespan law of the QUOTIENT graph whose
// node durations are the modules' own makespan distributions:
//
//   * Leaf module      -> the task's 2-state law  a_i w.p. p_i else 2 a_i
//   * Series module    -> convolution of its children's laws
//   * Parallel module  -> max of its children's laws
//
// build_module_distributions() materializes those laws bottom-up with an
// atom budget (0 = exact) and certified truncation accounting, and
// MEMOIZES every composite module in a process-wide cache keyed by a
// 128-bit content hash of (module structure, task weights, success
// probabilities, atom budget). Repetitive kernels — LU/QR/Cholesky tiles,
// replicated fork-join stages — contain thousands of structurally
// identical modules, so each distinct module is evaluated ONCE per
// process no matter how many times it appears or how many scenarios
// share it (Scenario::patch clones reuse the same decomposition and hit
// the same cache for every module outside the patched cone).
//
// Three evaluators consume the quotient:
//
//   * evaluate_sp_hier    exact SP reduction of the quotient ("sp.hier").
//     Exact (up to the atom budget) whenever the quotient's AoA network
//     is two-terminal series-parallel — which includes every graph the
//     flat "sp" evaluator accepts, and more: the collapse often reduces a
//     non-SP-looking input to an SP quotient.
//   * evaluate_dodin_hier Dodin's bound on the quotient ("dodin.hier") —
//     works on any quotient, duplications now scale with the QUOTIENT
//     size, not the task count.
//   * evaluate_mc_hier    Monte-Carlo over the quotient ("mc.hier"):
//     each trial inverse-CDF samples one duration per quotient node from
//     its module law and runs the finish-time DP — an unbiased estimator
//     of the (truncation-capped) makespan whose per-trial cost is
//     O(quotient), not O(V). Bit-identical across thread counts (fixed
//     chunk partition, chunk-order reduction, counter-based per-trial
//     RNG — the same discipline as mc/engine.cpp).
//
// Two-state retry only (like sp / dodin): the module laws are built from
// two-state leaves. All entry points throw std::invalid_argument on a
// geometric-retry scenario; the evaluator registry gates this before the
// call.

#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "prob/discrete_distribution.hpp"
#include "prob/dist_kernels.hpp"
#include "scenario/scenario.hpp"

namespace expmk::exp::hier {

/// Decomposition + memoization accounting for one evaluation.
struct HierStats {
  std::size_t module_count = 0;    ///< modules in the SP decomposition
  std::size_t quotient_tasks = 0;  ///< nodes of the quotient DAG
  std::size_t collapsed_tasks = 0; ///< original tasks absorbed into modules
  std::uint64_t memo_hits = 0;     ///< composite modules served from cache
  std::uint64_t memo_misses = 0;   ///< composite modules built this call
};

/// Output of the bottom-up module build.
struct ModuleDists {
  /// Makespan law per quotient node, indexed by quotient TaskId.
  std::vector<prob::DiscreteDistribution> by_quotient_node;
  /// Certified truncation accumulated across every convolve/max the build
  /// performed (including the stored subtree accounting of memo hits).
  prob::dist_kernels::TruncationCert truncation;
  HierStats stats;
};

/// Builds the per-quotient-node distributions bottom-up over the
/// scenario's cached SpDecomposition. `max_atoms` caps every intermediate
/// law (0 = exact). Throws std::invalid_argument unless the retry model
/// is TwoState.
[[nodiscard]] ModuleDists build_module_distributions(
    const scenario::Scenario& sc, std::size_t max_atoms);

/// Result of the exact-SP quotient evaluation ("sp.hier").
struct HierSpResult {
  /// False when the quotient's AoA network is not two-terminal SP — the
  /// evaluator reports supported == false then.
  bool is_series_parallel = false;
  double mean = std::numeric_limits<double>::quiet_NaN();
  prob::DiscreteDistribution makespan;  ///< meaningful when SP
  prob::dist_kernels::TruncationCert truncation;
  HierStats stats;
};

[[nodiscard]] HierSpResult evaluate_sp_hier(const scenario::Scenario& sc,
                                            std::size_t max_atoms = 0);

/// Result of Dodin's bound on the quotient ("dodin.hier").
struct HierDodinResult {
  double mean = std::numeric_limits<double>::quiet_NaN();
  prob::DiscreteDistribution makespan;
  std::size_t duplications = 0;  ///< quotient nodes cloned by Dodin
  prob::dist_kernels::TruncationCert truncation;
  HierStats stats;
};

[[nodiscard]] HierDodinResult evaluate_dodin_hier(
    const scenario::Scenario& sc, std::size_t max_atoms = 256);

/// Result of quotient Monte-Carlo ("mc.hier").
struct HierMcResult {
  double mean = std::numeric_limits<double>::quiet_NaN();
  double std_error = 0.0;
  std::uint64_t trials = 0;
  /// Module-build truncation only — the sampling noise is std_error's
  /// job, never the envelope's.
  prob::dist_kernels::TruncationCert truncation;
  HierStats stats;
};

/// `threads` = 0 means hardware concurrency; results are bit-identical
/// for every thread count. `max_atoms` caps the module laws sampled from
/// (0 = exact — beware exponential supports on deep series chains).
[[nodiscard]] HierMcResult evaluate_mc_hier(const scenario::Scenario& sc,
                                            std::uint64_t trials,
                                            std::uint64_t seed,
                                            std::size_t threads = 0,
                                            std::size_t max_atoms = 256);

/// Lifetime counters of the process-wide module-distribution cache.
struct MemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::size_t entries = 0;
};

[[nodiscard]] MemoStats memo_stats();

/// Empties the cache and zeroes the counters (tests and benchmarks).
void memo_clear();

}  // namespace expmk::exp::hier
