#include "exp/hier.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "exp/level_parallel.hpp"
#include "graph/csr.hpp"
#include "graph/sp_tree.hpp"
#include "util/contracts.hpp"
#include "prob/rng.hpp"
#include "spgraph/arc_network.hpp"
#include "spgraph/dodin.hpp"
#include "spgraph/sp_reduce.hpp"

namespace expmk::exp::hier {

namespace {

using graph::SpDecomposition;

/// Two independent 64-bit accumulators over the same word stream: lane
/// `a` is plain FNV-1a, lane `b` FNV-folds the splitmix64 avalanche of
/// each word. A collision must defeat both lanes at once, which makes
/// the 128-bit key safe to trust for memoization (a collision would
/// silently return the WRONG distribution, so 64 bits alone would not
/// do at million-module scale).
struct H128 {
  std::uint64_t a = 0xcbf29ce484222325ULL;
  std::uint64_t b = 0x6c62272e07bb0142ULL;

  void mix(std::uint64_t w) noexcept {
    a = (a ^ w) * 0x100000001b3ULL;
    std::uint64_t z = w + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    b = (b ^ (z ^ (z >> 31))) * 0x100000001b3ULL;
  }
};

EXPMK_NOALLOC std::uint64_t double_bits(double x) noexcept {
  std::uint64_t u;
  static_assert(sizeof(u) == sizeof(x));
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

struct MemoKey {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  // Ordered, not hashed: the deterministic core bans unordered
  // containers (expmk-determinism), and a sorted map keeps every code
  // path — including any future iteration — order-stable for free.
  auto operator<=>(const MemoKey&) const = default;
};

/// A cached module: its makespan law plus the cumulative certified
/// truncation of building its WHOLE subtree, so a cache hit charges the
/// caller the same envelope the from-scratch build would have.
struct BuiltModule {
  prob::DiscreteDistribution dist;
  prob::dist_kernels::TruncationCert cert;
};

/// Bounds on the process-wide cache: entry count (insertions stop, the
/// cache never evicts — the workloads that benefit are repetitive, so
/// the distinct-module population is small) and atoms per stored law
/// (an exact deep-series law can be astronomically wide; caching it
/// would trade unbounded memory for one convolution chain).
constexpr std::size_t kMemoMaxEntries = std::size_t{1} << 16;
constexpr std::size_t kMemoMaxAtomsPerEntry = std::size_t{1} << 16;

struct Memo {
  std::mutex mu;
  std::map<MemoKey, BuiltModule> map;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

Memo& memo() {
  static Memo m;
  return m;
}

}  // namespace

ModuleDists build_module_distributions(const scenario::Scenario& sc,
                                       std::size_t max_atoms) {
  if (sc.retry() != core::RetryModel::TwoState) {
    throw std::invalid_argument(
        "hier: only the two-state retry model is supported");
  }
  const SpDecomposition& d = sc.sp_decomposition();
  const graph::Dag& g = sc.dag();
  const std::span<const double> p = sc.p_success();
  const auto& mods = d.modules;
  const std::size_t nm = mods.size();

  // Pass 1: content hash per module. The modules vector is ordered
  // children-before-parents, so one ascending pass folds child hashes
  // into parents without recursion. The atom budget is mixed into the
  // LOOKUP key, not here: the same structure under two budgets yields
  // two distinct (both correct) cache rows.
  std::vector<H128> mh(nm);
  for (std::size_t m = 0; m < nm; ++m) {
    const SpDecomposition::Module& mod = mods[m];
    H128 h;
    if (mod.kind == SpDecomposition::Kind::Leaf) {
      h.mix(0x4C);  // 'L'
      h.mix(double_bits(g.weight(mod.task)));
      h.mix(double_bits(p[mod.task]));
    } else {
      h.mix(mod.kind == SpDecomposition::Kind::Series ? 0x53 : 0x50);
      h.mix(mod.child_count);
      for (std::uint32_t i = 0; i < mod.child_count; ++i) {
        const std::uint32_t c = d.children[mod.first_child + i];
        h.mix(mh[c].a);
        h.mix(mh[c].b);
      }
    }
    mh[m] = h;
  }
  const auto key_of = [&](std::size_t m) {
    H128 h = mh[m];
    h.mix(static_cast<std::uint64_t>(max_atoms));
    return MemoKey{h.a, h.b};
  };

  ModuleDists out;
  out.stats.module_count = nm;
  out.stats.quotient_tasks = d.quotient.task_count();
  out.stats.collapsed_tasks = d.collapsed_tasks;

  // Pass 2: evaluate each quotient root by explicit-stack post-order —
  // series chains nest modules as deep as the chain is long, so
  // recursion would overflow at the million-task scale this exists for.
  // A cache hit on a composite skips its whole subtree. Child slots are
  // released as soon as the parent consumes them, so live memory tracks
  // the evaluation frontier rather than the module count.
  Memo& mm = memo();
  std::vector<std::optional<BuiltModule>> built(nm);
  std::vector<std::pair<std::uint32_t, bool>> stack;
  const std::size_t qn = d.quotient.task_count();
  out.by_quotient_node.reserve(qn);
  for (std::size_t q = 0; q < qn; ++q) {
    const std::uint32_t root = d.quotient_module[q];
    stack.clear();
    stack.push_back({root, false});
    while (!stack.empty()) {
      const std::uint32_t m = stack.back().first;
      const bool expanded = stack.back().second;
      if (built[m]) {
        stack.pop_back();
        continue;
      }
      const SpDecomposition::Module& mod = mods[m];
      if (mod.kind == SpDecomposition::Kind::Leaf) {
        // Zero-weight (virtual) tasks cannot fail — point mass at 0, the
        // same special case as the flat engine's builders.
        const double a = g.weight(mod.task);
        built[m] = BuiltModule{
            a <= 0.0
                ? prob::DiscreteDistribution::point(0.0)
                : prob::DiscreteDistribution::two_state(a, p[mod.task]),
            {}};
        stack.pop_back();
        continue;
      }
      if (!expanded) {
        {
          const MemoKey key = key_of(m);
          const std::lock_guard<std::mutex> lock(mm.mu);
          const auto it = mm.map.find(key);
          if (it != mm.map.end()) {
            built[m] = it->second;  // copied under the lock
            ++out.stats.memo_hits;
            ++mm.hits;
            stack.pop_back();
            continue;
          }
          ++out.stats.memo_misses;
          ++mm.misses;
        }
        stack.back().second = true;
        for (std::uint32_t i = 0; i < mod.child_count; ++i) {
          // `stack.back()` is dead from the first push on.
          stack.push_back({d.children[mod.first_child + i], false});
        }
        continue;
      }
      // Children built: fold them in child order.
      prob::dist_kernels::TruncationCert ops{};
      const std::uint32_t c0 = d.children[mod.first_child];
      BuiltModule acc = std::move(*built[c0]);
      built[c0].reset();
      for (std::uint32_t i = 1; i < mod.child_count; ++i) {
        const std::uint32_t c = d.children[mod.first_child + i];
        BuiltModule& child = *built[c];
        acc.dist = mod.kind == SpDecomposition::Kind::Series
                       ? prob::DiscreteDistribution::convolve(
                             acc.dist, child.dist, max_atoms, &ops)
                       : prob::DiscreteDistribution::max_of(
                             acc.dist, child.dist, max_atoms, &ops);
        acc.cert.accumulate(child.cert);
        built[c].reset();
      }
      acc.cert.accumulate(ops);
      {
        const std::lock_guard<std::mutex> lock(mm.mu);
        if (mm.map.size() < kMemoMaxEntries &&
            acc.dist.size() <= kMemoMaxAtomsPerEntry) {
          mm.map.emplace(key_of(m), acc);
        }
      }
      built[m] = std::move(acc);
      stack.pop_back();
    }
    out.truncation.accumulate(built[root]->cert);
    out.by_quotient_node.push_back(std::move(built[root]->dist));
    built[root].reset();
  }
  return out;
}

HierSpResult evaluate_sp_hier(const scenario::Scenario& sc,
                              std::size_t max_atoms) {
  ModuleDists md = build_module_distributions(sc, max_atoms);
  const SpDecomposition& d = sc.sp_decomposition();
  HierSpResult out;
  out.stats = md.stats;
  out.truncation = md.truncation;
  auto ev = sp::evaluate_sp(
      sp::ArcNetwork::from_dag(d.quotient, std::move(md.by_quotient_node)),
      max_atoms);
  out.is_series_parallel = ev.is_series_parallel;
  if (!ev.is_series_parallel) return out;
  out.truncation.accumulate(ev.stats.truncation);
  out.mean = ev.makespan.mean();
  out.makespan = std::move(ev.makespan);
  return out;
}

HierDodinResult evaluate_dodin_hier(const scenario::Scenario& sc,
                                    std::size_t max_atoms) {
  ModuleDists md = build_module_distributions(sc, max_atoms);
  const SpDecomposition& d = sc.sp_decomposition();
  HierDodinResult out;
  out.stats = md.stats;
  out.truncation = md.truncation;
  auto dr = sp::dodin(
      sp::ArcNetwork::from_dag(d.quotient, std::move(md.by_quotient_node)),
      {.max_atoms = max_atoms});
  out.truncation.accumulate(dr.truncation);
  out.duplications = dr.duplications;
  out.mean = dr.makespan.mean();
  out.makespan = std::move(dr.makespan);
  return out;
}

HierMcResult evaluate_mc_hier(const scenario::Scenario& sc,
                              std::uint64_t trials, std::uint64_t seed,
                              std::size_t threads, std::size_t max_atoms) {
  if (trials == 0) throw std::invalid_argument("mc.hier: trials must be >= 1");
  const ModuleDists md = build_module_distributions(sc, max_atoms);
  const SpDecomposition& d = sc.sp_decomposition();
  const graph::CsrDag qcsr(d.quotient);
  const std::size_t qn = d.quotient.task_count();
  std::vector<const prob::DiscreteDistribution*> by_pos(qn);
  for (std::uint32_t pos = 0; pos < qn; ++pos) {
    by_pos[pos] = &md.by_quotient_node[qcsr.original_id(pos)];
  }

  // Same determinism discipline as mc/engine.cpp: a fixed 128-way chunk
  // partition of the trial range, one counter-based RNG stream per
  // trial, and a serial chunk-order fold of the accumulators — the
  // worker count never touches the arithmetic.
  constexpr std::uint64_t kEngineChunks = 128;
  const std::size_t chunks =
      static_cast<std::size_t>(std::min<std::uint64_t>(kEngineChunks, trials));
  struct Acc {
    double sum = 0.0;
    double sum_sq = 0.0;
  };
  std::vector<Acc> accs(chunks);
  std::size_t workers = threads != 0
                            ? threads
                            : std::max<std::size_t>(
                                  1, std::thread::hardware_concurrency());
  lp::run_chunks(workers, chunks, [&](std::size_t c) {
    Acc& acc = accs[c];
    const std::uint64_t begin = trials * c / chunks;
    const std::uint64_t end = trials * (c + 1) / chunks;
    std::vector<double> finish(qn);
    for (std::uint64_t t = begin; t < end; ++t) {
      prob::McRng rng(seed, t);
      double makespan = 0.0;
      // Draw in position order — one quantile per quotient node — then
      // the finish-time DP over the quotient CSR.
      for (std::uint32_t pos = 0; pos < qn; ++pos) {
        const double dur = by_pos[pos]->quantile(rng.uniform_positive());
        double start = 0.0;
        for (const std::uint32_t u : qcsr.preds(pos)) {
          if (finish[u] > start) start = finish[u];
        }
        const double f = start + dur;
        finish[pos] = f;
        if (f > makespan) makespan = f;
      }
      acc.sum += makespan;
      acc.sum_sq += makespan * makespan;
    }
  });

  double sum = 0.0;
  double sum_sq = 0.0;
  for (const Acc& a : accs) {
    sum += a.sum;
    sum_sq += a.sum_sq;
  }
  HierMcResult out;
  out.trials = trials;
  out.stats = md.stats;
  out.truncation = md.truncation;
  const double n = static_cast<double>(trials);
  out.mean = sum / n;
  const double var =
      trials > 1 ? std::max(0.0, (sum_sq - n * out.mean * out.mean) / (n - 1.0))
                 : 0.0;
  out.std_error = std::sqrt(var / n);
  return out;
}

MemoStats memo_stats() {
  Memo& mm = memo();
  const std::lock_guard<std::mutex> lock(mm.mu);
  return MemoStats{mm.hits, mm.misses, mm.map.size()};
}

void memo_clear() {
  Memo& mm = memo();
  const std::lock_guard<std::mutex> lock(mm.mu);
  mm.map.clear();
  mm.hits = 0;
  mm.misses = 0;
}

}  // namespace expmk::exp::hier
