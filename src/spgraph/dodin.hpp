// spgraph/dodin.hpp
//
// Dodin's bound (B. Dodin, "Bounding the project completion time
// distribution in PERT networks", Operations Research 33(4), 1985) — the
// first competitor estimator of the paper's evaluation.
//
// The general AoA network is transformed into a series-parallel one:
// series/parallel reductions are applied exhaustively; when the network is
// irreducible, a node is *duplicated* and the copies of the affected arc's
// duration are treated as independent random variables — which is exactly
// where the approximation (and Dodin's bias) comes from. The process
// repeats until a single source->sink arc remains, whose distribution
// approximates the makespan law.
//
// Duplication strategy. We use "cost-1" sites only: a join (in >= 2,
// out == 1) loses one in-arc to a clone carrying a copy of its single
// out-arc; a fork (in == 1, out >= 2) loses one out-arc to a clone
// carrying a copy of its single in-arc. Either way the clone has degree
// (1,1) and series-merges immediately, so the alive arc count is
// non-increasing and the total number of duplications is O(|V| + |E|) —
// unlike the classical copy-all-out-arcs rule, whose duplication count
// explodes combinatorially on the dense factorization DAGs (measured:
// 14,700 duplications for Cholesky k=8 vs a few hundred here). In an
// exhaustively reduced network the topologically-first internal node is
// always a fork, so a site always exists; joins are preferred when
// present, matching Dodin's original join-duplication rule.
//
// Distribution supports are capped at `max_atoms` (mean-preserving
// adjacent merges); the cap is an accuracy/time knob swept by
// bench/ablation_dodin_atoms.

#pragma once

#include <cstddef>

#include "core/failure_model.hpp"
#include "exp/workspace.hpp"
#include "graph/dag.hpp"
#include "prob/discrete_distribution.hpp"
#include "prob/dist_kernels.hpp"
#include "scenario/scenario.hpp"
#include "spgraph/arc_network.hpp"
#include "util/contracts.hpp"

namespace expmk::sp {

/// Tuning knobs for the Dodin transformation.
struct DodinOptions {
  /// Atom budget per intermediate distribution; 0 = exact (exponential
  /// blow-up risk on non-trivial graphs — use only in tests).
  std::size_t max_atoms = 256;
  /// Safety valve: abort (throw std::runtime_error) after this many node
  /// duplications. Our largest experiment (LU k=20) needs well under this.
  std::size_t max_duplications = 2'000'000;
};

/// Result of the transformation.
struct DodinResult {
  prob::DiscreteDistribution makespan;  ///< approximate makespan law
  std::size_t duplications = 0;         ///< nodes cloned
  std::size_t series_reductions = 0;
  std::size_t parallel_reductions = 0;
  /// Atom-cap truncation accounting across the first reduction pass AND
  /// every post-duplication rewrite pass; the certified envelope puts
  /// the untruncated Dodin mean in
  /// [mean - truncation.up, mean + truncation.down] (see
  /// prob/dist_kernels.hpp for the math).
  prob::dist_kernels::TruncationCert truncation;

  [[nodiscard]] double expected_makespan() const { return makespan.mean(); }
};

/// Runs Dodin's algorithm on an arbitrary AoA network (consumed).
[[nodiscard]] DodinResult dodin(ArcNetwork net, const DodinOptions& options = {});

/// Paper pipeline: task durations are the 2-state laws of `model`
/// (a_i w.p. e^{-lambda a_i}, else 2 a_i); returns the Dodin estimate of
/// the expected makespan of `g`.
[[nodiscard]] DodinResult dodin_two_state(const graph::Dag& g,
                                          const core::FailureModel& model,
                                          const DodinOptions& options = {});

/// Scenario-based entry point (lease-a-temporary adapter over the flat
/// engine). Heterogeneous per-task rates are supported: each task's
/// 2-state law carries its own cached p_i. The scenario's retry model
/// must be TwoState.
[[nodiscard]] DodinResult dodin_two_state(const scenario::Scenario& sc,
                                          const DodinOptions& options = {});

/// Workspace overload: runs the FLAT transformation engine
/// (flat_network.cpp) on `ws`-leased arenas and materializes the
/// DodinResult (allocating only for the returned distribution object).
/// Prefer dodin_two_state_flat on the serving hot path.
[[nodiscard]] DodinResult dodin_two_state(const scenario::Scenario& sc,
                                          const DodinOptions& options,
                                          exp::Workspace& ws);

/// Flat result: everything DodinResult carries except the distribution
/// object, so the hot path stays allocation-free.
struct DodinFlatResult {
  double mean = 0.0;  ///< E[makespan] of the final single-arc law
  std::size_t duplications = 0;
  std::size_t series_reductions = 0;
  std::size_t parallel_reductions = 0;
  prob::dist_kernels::TruncationCert truncation;
};

/// The flat engine's entry point (the registry's `dodin` hot path):
/// builds the AoA network from the scenario's cached per-task success
/// probabilities (heterogeneous rates supported), runs the full Dodin
/// transformation on `ws`-leased flat atom arenas — ZERO heap allocations
/// at steady state on a warm workspace, bit-identical to the
/// DiscreteDistribution-object path dodin(ArcNetwork), pinned by
/// tests/test_flat_spgraph.cpp. When `capture` is non-null the final
/// makespan law is materialized into it (allocates). The scenario's retry
/// model must be TwoState.
EXPMK_NOALLOC [[nodiscard]] DodinFlatResult dodin_two_state_flat(
    const scenario::Scenario& sc, const DodinOptions& options,
    exp::Workspace& ws, prob::DiscreteDistribution* capture = nullptr);

}  // namespace expmk::sp
