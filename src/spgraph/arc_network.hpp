// spgraph/arc_network.hpp
//
// Activity-on-arc (AoA) networks: the representation Dodin's algorithm and
// the series-parallel reductions operate on.
//
// A task DAG (activity-on-node) converts to a two-terminal AoA network as
// follows: every task i becomes an arc (u_i -> v_i) carrying the task's
// duration distribution; every precedence edge (i, j) becomes a
// zero-duration arc (v_i -> u_j); a virtual source s feeds every entry's
// u-node and every exit's v-node feeds a virtual sink t. The network's
// s-to-t "project duration" then equals the DAG's makespan.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/dag.hpp"
#include "prob/discrete_distribution.hpp"

namespace expmk::sp {

using NodeId = std::uint32_t;
using ArcId = std::uint32_t;

/// One arc of the network. Arcs are soft-deleted (alive flag) during
/// reduction so ids stay stable.
struct Arc {
  NodeId from;
  NodeId to;
  prob::DiscreteDistribution dist;
  bool alive = true;
};

/// A mutable two-terminal AoA network supporting the operations Dodin's
/// transformation needs: arc insertion/removal, degree queries, and node
/// duplication bookkeeping (node count may grow).
class ArcNetwork {
 public:
  /// Builds the AoA network of a task DAG, one distribution per task
  /// (indexed by TaskId).
  static ArcNetwork from_dag(const graph::Dag& g,
                             std::vector<prob::DiscreteDistribution> task_dist);

  [[nodiscard]] NodeId source() const noexcept { return source_; }
  [[nodiscard]] NodeId sink() const noexcept { return sink_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return out_.size();
  }
  /// Number of alive arcs.
  [[nodiscard]] std::size_t arc_count() const noexcept { return alive_arcs_; }

  [[nodiscard]] const Arc& arc(ArcId id) const { return arcs_.at(id); }
  [[nodiscard]] Arc& arc(ArcId id) { return arcs_.at(id); }

  /// Alive out-arc / in-arc ids of a node (compacted on access).
  [[nodiscard]] std::vector<ArcId> out_arcs(NodeId n) const;
  [[nodiscard]] std::vector<ArcId> in_arcs(NodeId n) const;
  [[nodiscard]] std::size_t out_degree(NodeId n) const;
  [[nodiscard]] std::size_t in_degree(NodeId n) const;

  /// Adds a new node (used by Dodin duplication).
  NodeId add_node();

  /// Adds an alive arc and returns its id.
  ArcId add_arc(NodeId from, NodeId to, prob::DiscreteDistribution dist);

  /// Soft-deletes an arc.
  void remove_arc(ArcId id);

  /// Moves an arc's head to a different node (Dodin moves (u,v) to
  /// (u, v')).
  void retarget_arc(ArcId id, NodeId new_to);

  /// Topological order of nodes over alive arcs; throws on a cycle (which
  /// would indicate a bug — reductions preserve acyclicity).
  [[nodiscard]] std::vector<NodeId> topological_nodes() const;

 private:
  ArcNetwork() = default;
  void compact(std::vector<ArcId>& list) const;

  std::vector<Arc> arcs_;
  // Adjacency lists may contain stale (dead) arc ids; they are compacted
  // lazily by the accessors.
  mutable std::vector<std::vector<ArcId>> out_;
  mutable std::vector<std::vector<ArcId>> in_;
  NodeId source_ = 0;
  NodeId sink_ = 0;
  std::size_t alive_arcs_ = 0;
};

}  // namespace expmk::sp
