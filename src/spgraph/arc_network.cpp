#include "spgraph/arc_network.hpp"

#include <algorithm>
#include <stdexcept>

namespace expmk::sp {

ArcNetwork ArcNetwork::from_dag(
    const graph::Dag& g, std::vector<prob::DiscreteDistribution> task_dist) {
  if (task_dist.size() != g.task_count()) {
    throw std::invalid_argument(
        "ArcNetwork::from_dag: one distribution per task required");
  }
  ArcNetwork net;
  const std::size_t n = g.task_count();
  // Node layout: u_i = 2i, v_i = 2i+1, source = 2n, sink = 2n+1.
  net.out_.resize(2 * n + 2);
  net.in_.resize(2 * n + 2);
  net.source_ = static_cast<NodeId>(2 * n);
  net.sink_ = static_cast<NodeId>(2 * n + 1);

  const auto u = [](graph::TaskId i) { return static_cast<NodeId>(2 * i); };
  const auto v = [](graph::TaskId i) {
    return static_cast<NodeId>(2 * i + 1);
  };

  for (graph::TaskId i = 0; i < n; ++i) {
    net.add_arc(u(i), v(i), std::move(task_dist[i]));
  }
  const prob::DiscreteDistribution zero;  // point mass at 0
  for (graph::TaskId i = 0; i < n; ++i) {
    for (const graph::TaskId j : g.successors(i)) {
      net.add_arc(v(i), u(j), zero);
    }
    if (g.in_degree(i) == 0) net.add_arc(net.source_, u(i), zero);
    if (g.out_degree(i) == 0) net.add_arc(v(i), net.sink_, zero);
  }
  return net;
}

void ArcNetwork::compact(std::vector<ArcId>& list) const {
  std::erase_if(list, [this](ArcId id) { return !arcs_[id].alive; });
}

std::vector<ArcId> ArcNetwork::out_arcs(NodeId n) const {
  compact(out_.at(n));
  return out_[n];
}

std::vector<ArcId> ArcNetwork::in_arcs(NodeId n) const {
  compact(in_.at(n));
  return in_[n];
}

std::size_t ArcNetwork::out_degree(NodeId n) const {
  compact(out_.at(n));
  return out_[n].size();
}

std::size_t ArcNetwork::in_degree(NodeId n) const {
  compact(in_.at(n));
  return in_[n].size();
}

NodeId ArcNetwork::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

ArcId ArcNetwork::add_arc(NodeId from, NodeId to,
                          prob::DiscreteDistribution dist) {
  if (from >= node_count() || to >= node_count()) {
    throw std::out_of_range("ArcNetwork::add_arc: invalid node");
  }
  const ArcId id = static_cast<ArcId>(arcs_.size());
  arcs_.push_back(Arc{from, to, std::move(dist), true});
  out_[from].push_back(id);
  in_[to].push_back(id);
  ++alive_arcs_;
  return id;
}

void ArcNetwork::remove_arc(ArcId id) {
  Arc& a = arcs_.at(id);
  if (!a.alive) return;
  a.alive = false;
  --alive_arcs_;
}

void ArcNetwork::retarget_arc(ArcId id, NodeId new_to) {
  Arc& a = arcs_.at(id);
  if (!a.alive) throw std::logic_error("retarget_arc: arc is dead");
  if (new_to >= node_count()) {
    throw std::out_of_range("retarget_arc: invalid node");
  }
  // Remove from the old head's in-list lazily (stale id skipped by
  // compaction because we re-add under the new head with the same id; to
  // keep compaction semantics simple we hard-remove here).
  auto& old_in = in_[a.to];
  old_in.erase(std::remove(old_in.begin(), old_in.end(), id), old_in.end());
  a.to = new_to;
  in_[new_to].push_back(id);
}

std::vector<NodeId> ArcNetwork::topological_nodes() const {
  const std::size_t n = node_count();
  std::vector<std::size_t> indeg(n, 0);
  for (const Arc& a : arcs_) {
    if (a.alive) ++indeg[a.to];
  }
  std::vector<NodeId> order;
  order.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    if (indeg[v] == 0) order.push_back(v);
  }
  for (std::size_t head = 0; head < order.size(); ++head) {
    const NodeId u = order[head];
    for (const ArcId id : out_arcs(u)) {
      const NodeId w = arcs_[id].to;
      if (--indeg[w] == 0) order.push_back(w);
    }
  }
  // Isolated nodes (all arcs reduced away) are fine; a genuine cycle is a
  // bug in reduction code.
  std::size_t with_arcs = 0;
  (void)with_arcs;
  if (order.size() != n) {
    throw std::logic_error("ArcNetwork: cycle detected (internal error)");
  }
  return order;
}

}  // namespace expmk::sp
