// spgraph/flat_network.cpp
//
// The flat series-parallel / Dodin engine: the whole AoA network — arc
// table, adjacency lists, every intermediate duration distribution — lives
// in exp::Workspace-leased arenas, and all distribution arithmetic runs
// through the span kernels of prob/dist_kernels.hpp. At steady state on a
// warm workspace an evaluation performs ZERO heap allocations (pinned by
// tests/test_flat_spgraph.cpp's counting operator new), which removes the
// PR-4 "sp/dodin are exempt" carve-out from the workspace contract.
//
// Fidelity contract. This engine replicates the DiscreteDistribution-
// object implementation in arc_network.cpp / sp_reduce.cpp / dodin.cpp
// OPERATION FOR OPERATION: arc insertion order (from_dag's layout),
// worklist discipline (LIFO, touched-node reseeding), parallel-merge
// grouping (ascending head node, per-head insertion order), series-merge
// arc selection (first alive in/out arc), Kahn topological order and the
// join-before-fork duplication-site rule. The object path is the
// executable specification; tests/test_flat_spgraph.cpp pins means,
// reduction counts and truncation certificates bitwise against it.
//
// Memory discipline:
//  * The caller-facing entry points open ONE Workspace::Frame for the
//    whole evaluation; every long-lived structure (arc table, adjacency,
//    atom arena, worklists) leases inside that frame and is returned
//    wholesale when the evaluation ends. A repeated evaluation re-leases
//    the same (already grown) slots — the steady-state zero-alloc regime.
//  * The atom arena is append-only with ping-pong compaction: when the
//    tail cannot fit an operation's result, live arc slices are copied
//    tightly into the spare buffer and the buffers swap (growing the
//    spare via a fresh lease only while cold).
//  * Sub-frames are opened ONLY around purely transient scratch (kernel
//    truncation scratch, the topological-order arrays); never across an
//    arena or grow-vector mutation, whose leases must live at the
//    evaluation frame level.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "exp/workspace.hpp"
#include "prob/dist_kernels.hpp"
#include "scenario/scenario.hpp"
#include "spgraph/dodin.hpp"
#include "spgraph/sp_reduce.hpp"

namespace expmk::sp {

namespace {

namespace dk = prob::dist_kernels;
using prob::Atom;
using std::size_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

constexpr u32 kNil = std::numeric_limits<u32>::max();

template <class T>
std::span<T> ws_lease(exp::Workspace& ws, size_t n);
template <>
std::span<u32> ws_lease<u32>(exp::Workspace& ws, size_t n) {
  return ws.u32(n);
}
template <>
std::span<u64> ws_lease<u64>(exp::Workspace& ws, size_t n) {
  return ws.u64(n);
}

/// A push-back vector over workspace leases: growth checks out a fresh
/// (larger) slot and copies — deterministic slot sequence per evaluation,
/// so a warm workspace serves every growth step from existing capacity.
template <class T>
class GrowVec {
 public:
  GrowVec(exp::Workspace& ws, size_t initial)
      : ws_(ws), buf_(ws_lease<T>(ws, std::max<size_t>(initial, 8))) {}

  void push(T v) {
    if (n_ == buf_.size()) grow(n_ + 1);
    buf_[n_++] = v;
  }
  T& operator[](size_t i) { return buf_[i]; }
  const T& operator[](size_t i) const { return buf_[i]; }
  [[nodiscard]] size_t size() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  T back() const { return buf_[n_ - 1]; }
  void pop_back() { --n_; }
  void clear() { n_ = 0; }
  [[nodiscard]] T* begin() { return buf_.data(); }
  [[nodiscard]] T* end() { return buf_.data() + n_; }

 private:
  void grow(size_t need) {
    const size_t cap = std::max(need, buf_.size() * 2);
    const std::span<T> bigger = ws_lease<T>(ws_, cap);
    std::copy(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(n_),
              bigger.begin());
    buf_ = bigger;
  }

  exp::Workspace& ws_;
  std::span<T> buf_;
  size_t n_ = 0;
};

/// The engine. Construct inside an open Workspace::Frame; everything it
/// leases dies with that frame.
class FlatNetwork {
 public:
  explicit FlatNetwork(exp::Workspace& ws, size_t tasks, size_t edges)
      : ws_(ws),
        from_(ws, tasks * 3 + edges + 8),
        to_(ws, tasks * 3 + edges + 8),
        alive_(ws, tasks * 3 + edges + 8),
        doff_(ws, tasks * 3 + edges + 8),
        dlen_(ws, tasks * 3 + edges + 8),
        onext_(ws, tasks * 3 + edges + 8),
        inext_(ws, tasks * 3 + edges + 8),
        out_head_(ws, 2 * tasks + 2),
        out_tail_(ws, 2 * tasks + 2),
        in_head_(ws, 2 * tasks + 2),
        in_tail_(ws, 2 * tasks + 2),
        work_(ws, 4 * tasks + 8),
        touched_(ws, 16),
        keys_(ws, 16),
        gids_(ws, 16),
        arena_(ws.atoms(std::max<size_t>(4 * tasks + edges + 64, 256))) {}

  // ---------------------------------------------------------- building

  /// Mirrors ArcNetwork::from_dag with per-task 2-state laws (the
  /// evaluate_sp(Scenario) construction): node layout u_i = 2i,
  /// v_i = 2i+1, source = 2n, sink = 2n+1; task arcs first, then per
  /// task its precedence / source / sink arcs.
  void build_two_state(const graph::Dag& g, std::span<const double> p) {
    const size_t n = g.task_count();
    for (size_t v = 0; v < 2 * n + 2; ++v) add_node();
    source_ = static_cast<u32>(2 * n);
    sink_ = static_cast<u32>(2 * n + 1);
    const auto u_of = [](graph::TaskId i) { return static_cast<u32>(2 * i); };
    const auto v_of = [](graph::TaskId i) {
      return static_cast<u32>(2 * i + 1);
    };
    for (graph::TaskId i = 0; i < n; ++i) {
      const double a = g.weight(i);
      ensure_arena(2);
      const size_t off = used_;
      // Zero-weight (virtual) tasks cannot fail — point mass at 0, the
      // same special case as the object builders.
      const size_t len = a <= 0.0
                             ? dk::point(0.0, arena_.subspan(used_, 2))
                             : dk::two_state(a, p[i], arena_.subspan(used_, 2));
      used_ += len;
      add_arc(u_of(i), v_of(i), off, len);
    }
    for (graph::TaskId i = 0; i < n; ++i) {
      for (const graph::TaskId j : g.successors(i)) {
        add_zero_arc(v_of(i), u_of(j));
      }
      if (g.in_degree(i) == 0) add_zero_arc(source_, u_of(i));
      if (g.out_degree(i) == 0) add_zero_arc(v_of(i), sink_);
    }
  }

  // --------------------------------------------------------- reduction

  /// Mirrors sp::reduce_exhaustively: seed every node in id order, drain
  /// the LIFO worklist, then record the single-arc verdict.
  void reduce_exhaustively(size_t max_atoms) {
    work_.clear();
    for (u32 v = 0; v < node_count(); ++v) work_.push(v);
    reduce_worklist(max_atoms);
    stats_.reduced_to_single_arc =
        alive_arcs_ == 1 && out_degree(source_) == 1 &&
        in_degree(sink_) == 1 && to_[first_out(source_)] == sink_;
  }

  /// Mirrors sp::dodin's duplication loop (after a reduce_exhaustively
  /// first pass). Returns the duplication count; throws std::runtime_error
  /// past `max_duplications` and std::logic_error if no site exists.
  size_t run_dodin(size_t max_atoms, size_t max_duplications) {
    reduce_exhaustively(max_atoms);
    size_t duplications = 0;
    while (!dodin_single_arc()) {
      const Site site = pick_duplication();
      if (!site.found) {
        throw std::logic_error(
            "dodin: irreducible network with no duplication site (internal "
            "error)");
      }
      const u32 v = site.node;
      const u32 clone = add_node();
      if (site.is_join) {
        // Move one in-arc (u,v) to (u,clone); copy the single out-arc.
        const u32 moved = first_in(v);
        retarget(moved, clone);
        const u32 out = first_out(v);
        const size_t len = dlen_[out];
        ensure_arena(len);
        const size_t off = copy_slice(doff_[out], len);
        add_arc(clone, to_[out], off, len);
      } else {
        // Fork: move one out-arc (v,w) to (clone,w) by remove+add (the
        // object network only moves heads); copy the single in-arc (u,v)
        // as (u,clone).
        const u32 moved_out = first_out(v);
        const u32 in = first_in(v);
        const u32 u = from_[in];
        const u32 w = to_[moved_out];
        const size_t len = dlen_[moved_out];
        ensure_arena(len);
        const size_t off = copy_slice(doff_[moved_out], len);
        remove_arc(moved_out);
        add_arc(clone, w, off, len);
        const size_t len2 = dlen_[in];
        ensure_arena(len2);
        const size_t off2 = copy_slice(doff_[in], len2);
        add_arc(u, clone, off2, len2);
      }
      // Local rewrite around the surgery; the clone series-merges here.
      work_.clear();
      work_.push(v);
      work_.push(clone);
      for (u32 id = in_head_[clone]; id != kNil; id = inext_[id]) {
        if (alive_[id]) work_.push(from_[id]);
      }
      for (u32 id = out_head_[clone]; id != kNil; id = onext_[id]) {
        if (alive_[id]) work_.push(to_[id]);
      }
      reduce_worklist(max_atoms);

      if (++duplications > max_duplications) {
        throw std::runtime_error(
            "dodin: duplication budget exhausted — network too entangled");
      }
    }
    return duplications;
  }

  // --------------------------------------------------------- extraction

  [[nodiscard]] ReduceStats stats() const {
    ReduceStats out = stats_;
    out.truncation = cert_;
    return out;
  }

  [[nodiscard]] std::span<const Atom> final_atoms() const {
    const u32 id = first_out(source_);
    return std::span<const Atom>(arena_).subspan(doff_[id], dlen_[id]);
  }

 private:
  struct Site {
    u32 node = 0;
    bool is_join = false;
    bool found = false;
  };

  [[nodiscard]] u32 node_count() const {
    return static_cast<u32>(out_head_.size());
  }

  u32 add_node() {
    out_head_.push(kNil);
    out_tail_.push(kNil);
    in_head_.push(kNil);
    in_tail_.push(kNil);
    return node_count() - 1;
  }

  void add_arc(u32 from, u32 to, size_t off, size_t len) {
    const u32 id = static_cast<u32>(from_.size());
    from_.push(from);
    to_.push(to);
    alive_.push(1);
    doff_.push(static_cast<u32>(off));
    dlen_.push(static_cast<u32>(len));
    onext_.push(kNil);
    inext_.push(kNil);
    if (out_head_[from] == kNil) {
      out_head_[from] = id;
    } else {
      onext_[out_tail_[from]] = id;
    }
    out_tail_[from] = id;
    if (in_head_[to] == kNil) {
      in_head_[to] = id;
    } else {
      inext_[in_tail_[to]] = id;
    }
    in_tail_[to] = id;
    ++alive_arcs_;
  }

  void add_zero_arc(u32 from, u32 to) {
    ensure_arena(1);
    const size_t off = used_;
    used_ += dk::point(0.0, arena_.subspan(used_, 1));
    add_arc(from, to, off, 1);
  }

  void remove_arc(u32 id) {
    if (alive_[id] == 0) return;
    alive_[id] = 0;
    --alive_arcs_;
  }

  /// Moves an arc's head (the Dodin join surgery): physical removal from
  /// the old head's in-list, append to the new head's — the order the
  /// object network's retarget_arc produces.
  void retarget(u32 id, u32 new_to) {
    const u32 old_to = to_[id];
    u32 prev = kNil;
    for (u32 cur = in_head_[old_to]; cur != kNil; cur = inext_[cur]) {
      if (cur == id) {
        if (prev == kNil) {
          in_head_[old_to] = inext_[cur];
        } else {
          inext_[prev] = inext_[cur];
        }
        if (in_tail_[old_to] == id) in_tail_[old_to] = prev;
        break;
      }
      prev = cur;
    }
    to_[id] = new_to;
    inext_[id] = kNil;
    if (in_head_[new_to] == kNil) {
      in_head_[new_to] = id;
    } else {
      inext_[in_tail_[new_to]] = id;
    }
    in_tail_[new_to] = id;
  }

  [[nodiscard]] u32 first_out(u32 n) const {
    for (u32 id = out_head_[n]; id != kNil; id = onext_[id]) {
      if (alive_[id]) return id;
    }
    return kNil;
  }
  [[nodiscard]] u32 first_in(u32 n) const {
    for (u32 id = in_head_[n]; id != kNil; id = inext_[id]) {
      if (alive_[id]) return id;
    }
    return kNil;
  }
  [[nodiscard]] size_t out_degree(u32 n) const {
    size_t c = 0;
    for (u32 id = out_head_[n]; id != kNil; id = onext_[id]) c += alive_[id];
    return c;
  }
  [[nodiscard]] size_t in_degree(u32 n) const {
    size_t c = 0;
    for (u32 id = in_head_[n]; id != kNil; id = inext_[id]) c += alive_[id];
    return c;
  }

  // ------------------------------------------------------- atom arena

  /// Guarantees `need` free atoms at the arena tail. On overflow, live
  /// arc slices are compacted into the spare buffer (leased larger if
  /// necessary) and the buffers ping-pong.
  void ensure_arena(size_t need) {
    if (used_ + need <= arena_.size()) return;
    size_t live = 0;
    for (size_t id = 0; id < from_.size(); ++id) {
      if (alive_[id]) live += dlen_[id];
    }
    const size_t want = std::max(2 * (live + need), arena_.size());
    if (want > std::numeric_limits<u32>::max()) {
      // Arc slices store u32 offsets; a support explosion past 4G atoms
      // (tens of GB) means an unbudgeted reduction ran away.
      throw std::runtime_error(
          "FlatNetwork: atom arena exceeds the 2^32 offset range — set an "
          "atom budget (max_atoms)");
    }
    // NOLINTNEXTLINE(expmk-lease-escape): the lease joins the entry-point frame that owns this engine — ensure_arena is never called under the transient sub-frames (apply_cap, max-merge, pick_duplication), so arena_/spare_ outlive every inner Frame by construction
    if (spare_.size() < live + need) spare_ = ws_.atoms(want);
    size_t w = 0;
    for (size_t id = 0; id < from_.size(); ++id) {
      if (!alive_[id]) continue;
      const size_t len = dlen_[id];
      std::copy_n(arena_.begin() + doff_[id], len,
                  spare_.begin() + static_cast<std::ptrdiff_t>(w));
      doff_[id] = static_cast<u32>(w);
      w += len;
    }
    std::swap(arena_, spare_);
    used_ = w;
  }

  /// Copies an existing slice to the tail (caller ran ensure_arena) and
  /// returns its offset.
  size_t copy_slice(size_t off, size_t len) {
    std::copy_n(arena_.begin() + static_cast<std::ptrdiff_t>(off), len,
                arena_.begin() + static_cast<std::ptrdiff_t>(used_));
    const size_t at = used_;
    used_ += len;
    return at;
  }

  /// Applies the atom cap to a freshly written result at the tail,
  /// accumulating the truncation certificate. Transient kernel scratch
  /// only inside the sub-frame.
  size_t apply_cap(size_t off, size_t m, size_t max_atoms) {
    if (max_atoms == 0 || m <= max_atoms) return m;
    const exp::Workspace::Frame frame(ws_);
    const std::span<double> gaps = ws_.doubles(2 * (m - 1));
    // Per-op local certificate folded into the pass certificate — the
    // exact accumulation grouping of the object path (truncated() sums
    // its merges locally, reduce_from sums ops per pass), so the
    // envelope totals match it bit for bit.
    dk::TruncationCert local;
    const size_t out =
        dk::truncate(arena_.subspan(off, m), max_atoms, local, gaps);
    pass_cert_.accumulate(local);
    return out;
  }

  // -------------------------------------------------------- rewriting

  /// Mirrors sp_reduce.cpp's parallel_merge_at: group the alive out-arcs
  /// of `u` by head node (ascending head, insertion order within a head —
  /// the std::map iteration the object path performs), fold each group's
  /// distributions with max_of into the group's first arc, and soft-
  /// delete the rest.
  size_t parallel_merge_at(u32 u, size_t max_atoms) {
    keys_.clear();
    gids_.clear();
    u32 seq = 0;
    for (u32 id = out_head_[u]; id != kNil; id = onext_[id]) {
      if (!alive_[id]) continue;
      keys_.push((static_cast<u64>(to_[id]) << 32) | seq);
      gids_.push(id);
      ++seq;
    }
    std::sort(keys_.begin(), keys_.end());
    size_t merges = 0;
    size_t i = 0;
    while (i < keys_.size()) {
      const u32 head = static_cast<u32>(keys_[i] >> 32);
      size_t j = i;
      while (j < keys_.size() && static_cast<u32>(keys_[j] >> 32) == head) {
        ++j;
      }
      if (j - i >= 2) {
        const u32 acc = gids_[static_cast<u32>(keys_[i])];
        for (size_t t = i + 1; t < j; ++t) {
          const u32 y = gids_[static_cast<u32>(keys_[t])];
          fold_max_into(acc, y, max_atoms);
          ++merges;
        }
        touched_.push(head);
        touched_.push(u);
      }
      i = j;
    }
    return merges;
  }

  /// acc.dist = max(acc.dist, y.dist) with the atom cap; y soft-deleted.
  void fold_max_into(u32 acc, u32 y, size_t max_atoms) {
    const size_t nx = dlen_[acc];
    const size_t ny = dlen_[y];
    ensure_arena(nx + ny);
    const std::span<const Atom> xs =
        std::span<const Atom>(arena_).subspan(doff_[acc], nx);
    const std::span<const Atom> ys =
        std::span<const Atom>(arena_).subspan(doff_[y], ny);
    const std::span<Atom> out = arena_.subspan(used_, nx + ny);
    size_t m;
    {
      const exp::Workspace::Frame frame(ws_);
      const std::span<double> support = ws_.doubles(nx + ny);
      m = dk::max_of(xs, ys, out, support);
    }
    m = apply_cap(used_, m, max_atoms);
    doff_[acc] = static_cast<u32>(used_);
    dlen_[acc] = static_cast<u32>(m);
    used_ += m;
    remove_arc(y);
  }

  /// Mirrors sp_reduce.cpp's series_merge_at.
  bool series_merge_at(u32 v, size_t max_atoms) {
    if (v == source_ || v == sink_) return false;
    if (in_degree(v) != 1 || out_degree(v) != 1) return false;
    const u32 in_id = first_in(v);
    const u32 out_id = first_out(v);
    const u32 u = from_[in_id];
    const u32 w = to_[out_id];
    const size_t nx = dlen_[in_id];
    const size_t ny = dlen_[out_id];
    ensure_arena(nx * ny);
    const std::span<const Atom> xs =
        std::span<const Atom>(arena_).subspan(doff_[in_id], nx);
    const std::span<const Atom> ys =
        std::span<const Atom>(arena_).subspan(doff_[out_id], ny);
    const std::span<Atom> out = arena_.subspan(used_, nx * ny);
    size_t m = dk::convolve(xs, ys, out);
    m = apply_cap(used_, m, max_atoms);
    const size_t off = used_;
    used_ += m;
    remove_arc(in_id);
    remove_arc(out_id);
    add_arc(u, w, off, m);
    touched_.push(u);
    touched_.push(w);
    return true;
  }

  /// Mirrors sp::reduce_from's worklist loop on `work_` (one "pass" in
  /// the truncation-certificate accounting).
  void reduce_worklist(size_t max_atoms) {
    pass_cert_ = dk::TruncationCert{};
    while (!work_.empty()) {
      const u32 v = work_.back();
      work_.pop_back();
      touched_.clear();
      const size_t p = parallel_merge_at(v, max_atoms);
      stats_.parallel += p;
      if (series_merge_at(v, max_atoms)) ++stats_.series;
      for (size_t t = 0; t < touched_.size(); ++t) work_.push(touched_[t]);
      // A parallel merge at v may enable a series merge at v itself.
      if (p > 0) work_.push(v);
    }
    cert_.accumulate(pass_cert_);
  }

  // ------------------------------------------------------ Dodin pieces

  [[nodiscard]] bool dodin_single_arc() const {
    return alive_arcs_ == 1 && out_degree(source_) == 1 &&
           to_[first_out(source_)] == sink_;
  }

  /// Mirrors dodin.cpp's pick_duplication: first join in topological
  /// order wins; otherwise the first fork.
  [[nodiscard]] Site pick_duplication() const {
    const exp::Workspace::Frame frame(ws_);
    const u32 n = node_count();
    const std::span<u32> indeg = ws_.u32(n);
    std::fill(indeg.begin(), indeg.end(), 0u);
    for (size_t id = 0; id < from_.size(); ++id) {
      if (alive_[id]) ++indeg[to_[id]];
    }
    const std::span<u32> order = ws_.u32(n);
    size_t cnt = 0;
    for (u32 v = 0; v < n; ++v) {
      if (indeg[v] == 0) order[cnt++] = v;
    }
    for (size_t head = 0; head < cnt; ++head) {
      const u32 u = order[head];
      for (u32 id = out_head_[u]; id != kNil; id = onext_[id]) {
        if (!alive_[id]) continue;
        if (--indeg[to_[id]] == 0) order[cnt++] = to_[id];
      }
    }
    if (cnt != n) {
      throw std::logic_error("FlatNetwork: cycle detected (internal error)");
    }
    Site fork_site;
    for (size_t i = 0; i < cnt; ++i) {
      const u32 v = order[i];
      if (v == source_ || v == sink_) continue;
      const size_t in = in_degree(v);
      const size_t out = out_degree(v);
      if (in >= 2 && out == 1) return {v, /*is_join=*/true, true};
      if (!fork_site.found && in == 1 && out >= 2) {
        fork_site = {v, /*is_join=*/false, true};
      }
    }
    return fork_site;
  }

  exp::Workspace& ws_;
  // Arc table (parallel grow-vectors, indexed by arc id).
  GrowVec<u32> from_, to_, alive_, doff_, dlen_, onext_, inext_;
  // Per-node adjacency list heads/tails (append-ordered linked lists;
  // dead arcs stay linked and are skipped, reproducing the object
  // network's lazily-compacted insertion order).
  GrowVec<u32> out_head_, out_tail_, in_head_, in_tail_;
  // Worklists / scratch.
  GrowVec<u32> work_, touched_;
  GrowVec<u64> keys_;
  GrowVec<u32> gids_;
  // Atom arena (ping-pong).
  std::span<Atom> arena_;
  std::span<Atom> spare_;
  size_t used_ = 0;

  u32 source_ = 0;
  u32 sink_ = 0;
  size_t alive_arcs_ = 0;
  ReduceStats stats_;
  dk::TruncationCert cert_;       // evaluation total (sum of passes)
  dk::TruncationCert pass_cert_;  // current reduce_worklist pass
};

EXPMK_NOALLOC void check_two_state(const scenario::Scenario& sc, const char* who) {
  if (sc.retry() != core::RetryModel::TwoState) {
    throw std::invalid_argument(
        std::string(who) +
        ": scenario must be compiled with the TwoState retry model");
  }
}

}  // namespace

EXPMK_NOALLOC SpFlatEvaluation evaluate_sp_flat(const scenario::Scenario& sc,
                                  std::size_t max_atoms, exp::Workspace& ws,
                                  prob::DiscreteDistribution* capture) {
  check_two_state(sc, "evaluate_sp");
  const exp::Workspace::Frame frame(ws);
  FlatNetwork net(ws, sc.task_count(), sc.dag().edge_count());
  net.build_two_state(sc.dag(), sc.p_success());
  net.reduce_exhaustively(max_atoms);
  SpFlatEvaluation out;
  out.stats = net.stats();
  out.is_series_parallel = out.stats.reduced_to_single_arc;
  if (out.is_series_parallel) {
    const std::span<const Atom> atoms = net.final_atoms();
    out.mean = dk::mean(atoms);
    if (capture != nullptr) {
      // NOLINTNEXTLINE(expmk-no-alloc-kernel): capture path — the caller passed a distribution sink and opted into this allocation
      *capture = prob::DiscreteDistribution::from_canonical(  // NOLINT(expmk-no-alloc-kernel): capture path — caller opted in
          std::vector<Atom>(atoms.begin(), atoms.end()));  // NOLINT(expmk-no-alloc-kernel): capture path — caller opted in
    }
  }
  return out;
}

EXPMK_NOALLOC DodinFlatResult dodin_two_state_flat(const scenario::Scenario& sc,
                                     const DodinOptions& options,
                                     exp::Workspace& ws,
                                     prob::DiscreteDistribution* capture) {
  check_two_state(sc, "dodin_two_state");
  const exp::Workspace::Frame frame(ws);
  FlatNetwork net(ws, sc.task_count(), sc.dag().edge_count());
  net.build_two_state(sc.dag(), sc.p_success());
  DodinFlatResult out;
  out.duplications =
      net.run_dodin(options.max_atoms, options.max_duplications);
  const ReduceStats stats = net.stats();
  out.series_reductions = stats.series;
  out.parallel_reductions = stats.parallel;
  out.truncation = stats.truncation;
  const std::span<const Atom> atoms = net.final_atoms();
  out.mean = dk::mean(atoms);
  if (capture != nullptr) {
    // NOLINTNEXTLINE(expmk-no-alloc-kernel): capture path — the caller passed a distribution sink and opted into this allocation
    *capture = prob::DiscreteDistribution::from_canonical(  // NOLINT(expmk-no-alloc-kernel): capture path — caller opted in
        std::vector<Atom>(atoms.begin(), atoms.end()));  // NOLINT(expmk-no-alloc-kernel): capture path — caller opted in
  }
  return out;
}

}  // namespace expmk::sp
