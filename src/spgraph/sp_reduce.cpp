#include "spgraph/sp_reduce.hpp"

#include <algorithm>
#include <map>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "prob/dist_kernels.hpp"

namespace expmk::sp {

namespace {

namespace dk = prob::dist_kernels;

/// Tries to parallel-merge duplicate out-arcs of `u`. Returns merges done.
std::size_t parallel_merge_at(ArcNetwork& net, NodeId u,
                              std::size_t max_atoms,
                              std::vector<NodeId>& touched,
                              dk::TruncationCert& cert) {
  std::size_t merges = 0;
  // Group alive out-arcs by head node.
  std::map<NodeId, std::vector<ArcId>> groups;
  for (const ArcId id : net.out_arcs(u)) {
    groups[net.arc(id).to].push_back(id);
  }
  for (auto& [head, ids] : groups) {
    if (ids.size() < 2) continue;
    prob::DiscreteDistribution acc = net.arc(ids[0]).dist;
    for (std::size_t i = 1; i < ids.size(); ++i) {
      acc = prob::DiscreteDistribution::max_of(acc, net.arc(ids[i]).dist,
                                               max_atoms, &cert);
      net.remove_arc(ids[i]);
      ++merges;
    }
    net.arc(ids[0]).dist = std::move(acc);
    touched.push_back(head);
    touched.push_back(u);
  }
  return merges;
}

/// Tries a series merge at internal node `v`. Returns true if applied.
bool series_merge_at(ArcNetwork& net, NodeId v, std::size_t max_atoms,
                     std::vector<NodeId>& touched,
                     dk::TruncationCert& cert) {
  if (v == net.source() || v == net.sink()) return false;
  if (net.in_degree(v) != 1 || net.out_degree(v) != 1) return false;
  const ArcId in_id = net.in_arcs(v)[0];
  const ArcId out_id = net.out_arcs(v)[0];
  const NodeId u = net.arc(in_id).from;
  const NodeId w = net.arc(out_id).to;
  auto merged = prob::DiscreteDistribution::convolve(
      net.arc(in_id).dist, net.arc(out_id).dist, max_atoms, &cert);
  net.remove_arc(in_id);
  net.remove_arc(out_id);
  net.add_arc(u, w, std::move(merged));
  touched.push_back(u);
  touched.push_back(w);
  return true;
}

}  // namespace

void reduce_from(ArcNetwork& net, std::vector<NodeId> seeds,
                 std::size_t max_atoms, ReduceStats& stats) {
  std::vector<NodeId> work = std::move(seeds);
  std::vector<NodeId> touched;
  dk::TruncationCert cert;
  while (!work.empty()) {
    const NodeId v = work.back();
    work.pop_back();
    touched.clear();

    const std::size_t p = parallel_merge_at(net, v, max_atoms, touched, cert);
    stats.parallel += p;
    if (series_merge_at(net, v, max_atoms, touched, cert)) ++stats.series;

    for (const NodeId t : touched) work.push_back(t);
    // A parallel merge at v may enable a series merge at v itself.
    if (p > 0) work.push_back(v);
  }
  stats.truncation.accumulate(cert);
}

ReduceStats reduce_exhaustively(ArcNetwork& net, std::size_t max_atoms) {
  ReduceStats stats;
  std::vector<NodeId> all;
  all.reserve(net.node_count());
  for (NodeId v = 0; v < net.node_count(); ++v) all.push_back(v);
  reduce_from(net, std::move(all), max_atoms, stats);

  stats.reduced_to_single_arc =
      net.arc_count() == 1 && net.out_degree(net.source()) == 1 &&
      net.in_degree(net.sink()) == 1 &&
      net.arc(net.out_arcs(net.source())[0]).to == net.sink();
  return stats;
}

SpEvaluation evaluate_sp(ArcNetwork net, std::size_t max_atoms) {
  SpEvaluation out;
  out.stats = reduce_exhaustively(net, max_atoms);
  out.is_series_parallel = out.stats.reduced_to_single_arc;
  if (out.is_series_parallel) {
    out.makespan = net.arc(net.out_arcs(net.source())[0]).dist;
  }
  return out;
}

SpEvaluation evaluate_sp(const scenario::Scenario& sc,
                         std::size_t max_atoms) {
  exp::Workspace ws;  // lease-a-temporary adapter; bit-identical
  return evaluate_sp(sc, max_atoms, ws);
}

SpEvaluation evaluate_sp(const scenario::Scenario& sc, std::size_t max_atoms,
                         exp::Workspace& ws) {
  // The flat engine (flat_network.cpp) does all the work on ws-leased
  // arenas; this overload only materializes the distribution object.
  SpEvaluation out;
  prob::DiscreteDistribution makespan;
  const SpFlatEvaluation flat =
      evaluate_sp_flat(sc, max_atoms, ws, &makespan);
  out.is_series_parallel = flat.is_series_parallel;
  out.stats = flat.stats;
  if (flat.is_series_parallel) out.makespan = std::move(makespan);
  return out;
}

}  // namespace expmk::sp
