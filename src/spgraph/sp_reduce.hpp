// spgraph/sp_reduce.hpp
//
// Exhaustive series/parallel reduction of a two-terminal AoA network —
// the recognition algorithm of Valdes, Tarjan and Lawler specialized to
// our use: a network is (two-terminal) series-parallel iff the rewrite
// system below reduces it to a single source->sink arc.
//
//   series:   internal node v with in-degree 1 and out-degree 1:
//             arcs (u,v), (v,w) merge into (u,w) with the *convolution*
//             of their duration distributions;
//   parallel: two arcs with identical endpoints (u,w) merge into one arc
//             with the distribution of the *maximum* (independent).
//
// On an SP network the resulting single arc carries the exact makespan
// distribution (exact modulo the atom budget). On a non-SP network the
// reductions stall; Dodin's algorithm (dodin.hpp) then duplicates a node
// and resumes.

#pragma once

#include <cstddef>
#include <limits>

#include "exp/workspace.hpp"
#include "prob/dist_kernels.hpp"
#include "scenario/scenario.hpp"
#include "spgraph/arc_network.hpp"
#include "util/contracts.hpp"

namespace expmk::sp {

/// Outcome of exhaustive reduction.
struct ReduceStats {
  std::size_t series = 0;     ///< series merges applied
  std::size_t parallel = 0;   ///< parallel merges applied
  /// Atom-cap truncation accounting: operations that hit the cap
  /// (`truncation.events`), individual pair merges, and the certified
  /// expectation-shift envelope — the untruncated pipeline's mean lies
  /// in [mean - truncation.up, mean + truncation.down] (see
  /// prob/dist_kernels.hpp).
  prob::dist_kernels::TruncationCert truncation;
  bool reduced_to_single_arc = false;
};

/// Applies series/parallel reductions until none applies. `max_atoms`
/// bounds every intermediate distribution (0 = exact/unbounded).
/// Worklist-driven: O((#merges) * degree) plus distribution costs.
ReduceStats reduce_exhaustively(ArcNetwork& net, std::size_t max_atoms);

/// Incremental variant: only re-examines `seeds` and whatever their merges
/// touch. Used by Dodin's loop so a duplication triggers local rewriting
/// instead of a full network pass. Accumulates counts into `stats`.
void reduce_from(ArcNetwork& net, std::vector<NodeId> seeds,
                 std::size_t max_atoms, ReduceStats& stats);

/// Result of evaluating a network that is (or reduces to) series-parallel.
struct SpEvaluation {
  bool is_series_parallel = false;
  /// Makespan distribution; meaningful only when is_series_parallel.
  prob::DiscreteDistribution makespan;
  ReduceStats stats;
};

/// Convenience: reduce a copy of the network built from `g` and report
/// whether it was SP, together with the exact makespan distribution
/// (task durations = 2-state laws for the given failure model's lambda).
SpEvaluation evaluate_sp(ArcNetwork net, std::size_t max_atoms = 0);

/// Scenario-based entry point: builds the AoA network with each task's
/// own 2-state law (a_i w.p. p_i, else 2 a_i) from the scenario's cached
/// success probabilities — heterogeneous per-task rates supported — and
/// reduces it. The scenario's retry model must be TwoState.
SpEvaluation evaluate_sp(const scenario::Scenario& sc,
                         std::size_t max_atoms = 0);

/// Workspace overload: runs the FLAT reduction engine (flat_network.cpp)
/// on `ws`-leased arenas and materializes the SpEvaluation (allocating
/// only for the returned distribution object). Prefer evaluate_sp_flat
/// on the serving hot path.
SpEvaluation evaluate_sp(const scenario::Scenario& sc, std::size_t max_atoms,
                         exp::Workspace& ws);

/// Flat evaluation result: everything SpEvaluation carries except the
/// distribution object, so the hot path stays allocation-free.
struct SpFlatEvaluation {
  bool is_series_parallel = false;
  /// E[makespan]; NaN unless is_series_parallel.
  double mean = std::numeric_limits<double>::quiet_NaN();
  ReduceStats stats;
};

/// The flat engine's entry point (the registry's `sp` hot path): builds
/// the AoA network with per-task 2-state laws from the scenario's cached
/// success probabilities (heterogeneous rates supported), reduces it on
/// `ws`-leased flat atom arenas, and returns the mean plus stats — ZERO
/// heap allocations at steady state on a warm workspace, and bit-identical
/// (operation order and all) to the DiscreteDistribution-object reduction
/// of evaluate_sp(ArcNetwork), which tests/test_flat_spgraph.cpp pins.
/// When `capture` is non-null and the network is SP, the makespan law is
/// materialized into it (allocates). The scenario's retry model must be
/// TwoState.
EXPMK_NOALLOC SpFlatEvaluation evaluate_sp_flat(const scenario::Scenario& sc,
                                  std::size_t max_atoms, exp::Workspace& ws,
                                  prob::DiscreteDistribution* capture = nullptr);

}  // namespace expmk::sp
