#include "spgraph/dodin.hpp"

#include <stdexcept>

#include "spgraph/sp_reduce.hpp"

namespace expmk::sp {

namespace {

/// A duplication site: either a join (in-degree >= 2, out-degree == 1;
/// one in-arc moves to the clone, the single out-arc is copied) or a fork
/// (in-degree == 1, out-degree >= 2; one out-arc moves to the clone, the
/// single in-arc is copied). Both are "cost-1": the clone has degree
/// (1,1) and series-merges immediately, so the alive arc count never
/// grows. In an exhaustively reduced non-trivial network the
/// topologically-first internal node is always a fork (its only
/// predecessor is the source, and parallel merges collapsed the multi-
/// arcs), so a site always exists; joins are preferred when present
/// because duplicating joins is Dodin's original rule.
struct Site {
  NodeId node = 0;
  bool is_join = false;
  bool found = false;
};

Site pick_duplication(const ArcNetwork& net) {
  Site fork_site;
  for (const NodeId v : net.topological_nodes()) {
    if (v == net.source() || v == net.sink()) continue;
    const std::size_t in = net.in_degree(v);
    const std::size_t out = net.out_degree(v);
    if (in >= 2 && out == 1) return {v, /*is_join=*/true, true};
    if (!fork_site.found && in == 1 && out >= 2) {
      fork_site = {v, /*is_join=*/false, true};
    }
  }
  return fork_site;
}

}  // namespace

DodinResult dodin(ArcNetwork net, const DodinOptions& options) {
  DodinResult result;
  ReduceStats first_pass = reduce_exhaustively(net, options.max_atoms);
  result.series_reductions += first_pass.series;
  result.parallel_reductions += first_pass.parallel;
  result.truncation.accumulate(first_pass.truncation);

  const auto is_single_arc = [&net] {
    return net.arc_count() == 1 && net.out_degree(net.source()) == 1 &&
           net.arc(net.out_arcs(net.source())[0]).to == net.sink();
  };

  while (!is_single_arc()) {
    const Site site = pick_duplication(net);
    if (!site.found) {
      throw std::logic_error(
          "dodin: irreducible network with no duplication site (internal "
          "error)");
    }
    const NodeId v = site.node;
    const NodeId clone = net.add_node();
    if (site.is_join) {
      // Move one in-arc (u,v) to (u,clone); copy the single out-arc.
      const ArcId moved = net.in_arcs(v).front();
      net.retarget_arc(moved, clone);
      const ArcId out = net.out_arcs(v).front();
      net.add_arc(clone, net.arc(out).to, net.arc(out).dist);
    } else {
      // Fork: move one out-arc (v,w) to (clone,w); copy the single in-arc
      // (u,v) as (u,clone). The copy is an independent duplicate of the
      // prefix duration — the same independence approximation as the join
      // rule, applied upstream.
      const ArcId moved_out = net.out_arcs(v).front();
      const ArcId in = net.in_arcs(v).front();
      const NodeId u = net.arc(in).from;
      const NodeId w = net.arc(moved_out).to;
      // Retarget the out-arc's tail by re-adding (ArcNetwork only moves
      // heads), i.e. remove + add with the same distribution.
      auto dist = net.arc(moved_out).dist;
      net.remove_arc(moved_out);
      net.add_arc(clone, w, std::move(dist));
      net.add_arc(u, clone, net.arc(in).dist);
    }
    // Local rewrite around the surgery; the clone series-merges here.
    ReduceStats local;
    std::vector<NodeId> seeds = {v, clone};
    for (const ArcId id : net.in_arcs(clone)) {
      seeds.push_back(net.arc(id).from);
    }
    for (const ArcId id : net.out_arcs(clone)) {
      seeds.push_back(net.arc(id).to);
    }
    reduce_from(net, std::move(seeds), options.max_atoms, local);
    result.series_reductions += local.series;
    result.parallel_reductions += local.parallel;
    result.truncation.accumulate(local.truncation);

    if (++result.duplications > options.max_duplications) {
      throw std::runtime_error(
          "dodin: duplication budget exhausted — network too entangled");
    }
  }
  // The single remaining arc carries the approximate makespan law.
  result.makespan = net.arc(net.out_arcs(net.source())[0]).dist;
  return result;
}

DodinResult dodin_two_state(const graph::Dag& g,
                            const core::FailureModel& model,
                            const DodinOptions& options) {
  std::vector<prob::DiscreteDistribution> dist;
  dist.reserve(g.task_count());
  for (graph::TaskId i = 0; i < g.task_count(); ++i) {
    const double a = g.weight(i);
    if (a <= 0.0) {
      dist.push_back(prob::DiscreteDistribution::point(0.0));
    } else {
      dist.push_back(
          prob::DiscreteDistribution::two_state(a, model.p_success(a)));
    }
  }
  return dodin(ArcNetwork::from_dag(g, std::move(dist)), options);
}

DodinResult dodin_two_state(const scenario::Scenario& sc,
                            const DodinOptions& options) {
  exp::Workspace ws;  // lease-a-temporary adapter; bit-identical
  return dodin_two_state(sc, options, ws);
}

DodinResult dodin_two_state(const scenario::Scenario& sc,
                            const DodinOptions& options, exp::Workspace& ws) {
  // The flat engine (flat_network.cpp) does all the work on ws-leased
  // arenas — heterogeneous per-task rates included; this overload only
  // materializes the distribution object.
  DodinResult result;
  const DodinFlatResult flat =
      dodin_two_state_flat(sc, options, ws, &result.makespan);
  result.duplications = flat.duplications;
  result.series_reductions = flat.series_reductions;
  result.parallel_reductions = flat.parallel_reductions;
  result.truncation = flat.truncation;
  return result;
}

}  // namespace expmk::sp
