// util/framing.hpp
//
// The length-prefixed framing layer of the expmk-serve-v1 wire protocol
// (src/serve/): every message on a connection is one frame
//
//     [ 4-byte big-endian payload length | payload bytes ]
//
// with a JSON payload. The framing layer is deliberately socket-free —
// FrameDecoder consumes arbitrary byte slices (however the transport
// chunked them) and yields complete payloads, so the whole protocol
// parse path is unit-testable without a network (tests/
// test_serve_framing.cpp feeds frames one byte at a time).
//
// Error policy: a frame that declares a zero length or a length above the
// decoder's limit poisons the decoder (Status::Error with a reason) — a
// length-prefixed stream has no way to resynchronize after a corrupt
// header, so the connection must be closed. Truncation is NOT an error
// mid-stream (Status::NeedMore); the transport decides at EOF whether
// leftover bytes mean a truncated frame (FrameDecoder::pending()).

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/contracts.hpp"

namespace expmk::util {

/// Bytes in the length prefix.
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Default per-frame payload limit (16 MiB — a ~1M-task taskgraph-v2
/// file fits with room to spare; anything larger is almost certainly a
/// corrupt or hostile header).
inline constexpr std::size_t kDefaultMaxFrameBytes = 16u << 20;

/// Writes the 4-byte big-endian length prefix for a `payload_bytes`-byte
/// payload into `out`.
EXPMK_NOALLOC inline void encode_frame_header(std::uint32_t payload_bytes,
                                              unsigned char out[4]) noexcept {
  out[0] = static_cast<unsigned char>(payload_bytes >> 24);
  out[1] = static_cast<unsigned char>(payload_bytes >> 16);
  out[2] = static_cast<unsigned char>(payload_bytes >> 8);
  out[3] = static_cast<unsigned char>(payload_bytes);
}

/// Reads a 4-byte big-endian length prefix.
EXPMK_NOALLOC inline std::uint32_t decode_frame_header(
    const unsigned char in[4]) noexcept {
  return (static_cast<std::uint32_t>(in[0]) << 24) |
         (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) |
         static_cast<std::uint32_t>(in[3]);
}

/// Encodes one complete frame (header + payload). Throws
/// std::invalid_argument when the payload is empty or larger than
/// `max_frame_bytes` — the encoder enforces the same limits the decoder
/// rejects, so a conforming peer can never emit a poisoning frame.
[[nodiscard]] std::string encode_frame(
    std::string_view payload,
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

/// Incremental frame extractor over an arbitrary chunking of the byte
/// stream. feed() appends transport bytes; next() yields complete
/// payloads until the buffer runs dry (NeedMore) or the stream is
/// poisoned (Error; see the file comment).
class FrameDecoder {
 public:
  enum class Status {
    NeedMore,  ///< no complete frame buffered; feed() more bytes
    Frame,     ///< one payload extracted into the out-param
    Error,     ///< stream poisoned; error() says why — close the transport
  };

  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends transport bytes. No-op once poisoned.
  void feed(std::string_view bytes);

  /// Extracts the next complete payload. Status::Frame fills `payload`;
  /// call again — one feed() may complete several frames.
  [[nodiscard]] Status next(std::string& payload);

  /// Why the decoder poisoned (empty until Status::Error).
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// Bytes buffered but not yet returned as a frame. Nonzero at transport
  /// EOF means the peer sent a truncated frame.
  [[nodiscard]] std::size_t pending() const noexcept {
    return buffer_.size() - consumed_;
  }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already handed out
  bool poisoned_ = false;
  std::string error_;
};

}  // namespace expmk::util
