#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace expmk::util {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void Cli::add_int(const std::string& name, std::int64_t def,
                  const std::string& help) {
  options_[name] = Option{Kind::Int, std::to_string(def), help};
}

void Cli::add_double(const std::string& name, double def,
                     const std::string& help) {
  std::ostringstream os;
  os << def;
  options_[name] = Option{Kind::Double, os.str(), help};
}

void Cli::add_string(const std::string& name, std::string def,
                     const std::string& help) {
  options_[name] = Option{Kind::String, std::move(def), help};
}

void Cli::add_flag(const std::string& name, const std::string& help) {
  options_[name] = Option{Kind::Flag, "0", help};
}

std::string Cli::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name;
    switch (opt.kind) {
      case Kind::Int:    os << " <int>"; break;
      case Kind::Double: os << " <float>"; break;
      case Kind::String: os << " <str>"; break;
      case Kind::Flag:   break;
    }
    os << "\n      " << opt.help;
    if (opt.kind != Kind::Flag) os << " (default: " << opt.value << ")";
    os << "\n";
  }
  os << "  --help\n      show this message\n";
  return os.str();
}

void Cli::fail(const std::string& message) const {
  std::fprintf(stderr, "%s: %s\n\n%s", program_.c_str(), message.c_str(),
               usage().c_str());
  std::exit(2);
}

void Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", usage().c_str());
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) fail("unexpected positional argument '" + arg + "'");
    arg.erase(0, 2);

    std::string name = arg;
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }

    const auto it = options_.find(name);
    if (it == options_.end()) fail("unknown option '--" + name + "'");
    Option& opt = it->second;

    if (opt.kind == Kind::Flag) {
      if (has_value) fail("flag '--" + name + "' does not take a value");
      opt.value = "1";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) fail("option '--" + name + "' expects a value");
      value = argv[++i];
    }
    // Validate eagerly so errors surface at parse time.
    try {
      if (opt.kind == Kind::Int) (void)std::stoll(value);
      if (opt.kind == Kind::Double) (void)std::stod(value);
    } catch (const std::exception&) {
      fail("invalid value '" + value + "' for option '--" + name + "'");
    }
    opt.value = value;
  }
}

const Cli::Option& Cli::find(const std::string& name, Kind kind) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.kind != kind) {
    throw std::logic_error("Cli: option '" + name +
                           "' not registered with the requested type");
  }
  return it->second;
}

std::int64_t Cli::get_int(const std::string& name) const {
  return std::stoll(find(name, Kind::Int).value);
}

double Cli::get_double(const std::string& name) const {
  return std::stod(find(name, Kind::Double).value);
}

const std::string& Cli::get_string(const std::string& name) const {
  return find(name, Kind::String).value;
}

bool Cli::get_flag(const std::string& name) const {
  return find(name, Kind::Flag).value == "1";
}

}  // namespace expmk::util
