// util/cli.hpp
//
// Minimal command-line option parser for the bench/example executables.
// Supports `--name value`, `--name=value` and boolean `--flag` forms; any
// unknown option aborts with a usage message so experiment scripts fail
// loudly instead of silently ignoring a typo'd parameter.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace expmk::util {

/// Declarative CLI: register options with defaults, then parse().
///
///   Cli cli("fig_cholesky", "Reproduces Figures 4-6");
///   cli.add_int("trials", 300000, "Monte-Carlo trials");
///   cli.add_flag("csv", "emit CSV instead of an aligned table");
///   cli.parse(argc, argv);
///   const std::int64_t trials = cli.get_int("trials");
class Cli {
 public:
  Cli(std::string program, std::string description);

  /// Registers an integer option with a default.
  void add_int(const std::string& name, std::int64_t def,
               const std::string& help);
  /// Registers a floating-point option with a default.
  void add_double(const std::string& name, double def,
                  const std::string& help);
  /// Registers a string option with a default.
  void add_string(const std::string& name, std::string def,
                  const std::string& help);
  /// Registers a boolean flag (defaults to false).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv. On `--help` prints usage and exits(0); on error prints
  /// usage and exits(2).
  void parse(int argc, const char* const* argv);

  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  /// Renders the usage text (also used by tests).
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { Int, Double, String, Flag };
  struct Option {
    Kind kind;
    std::string value;  // canonical textual value
    std::string help;
  };

  [[noreturn]] void fail(const std::string& message) const;
  const Option& find(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
};

}  // namespace expmk::util
