#include "util/framing.hpp"

#include <stdexcept>

namespace expmk::util {

std::string encode_frame(std::string_view payload,
                         std::size_t max_frame_bytes) {
  if (payload.empty()) {
    throw std::invalid_argument("encode_frame: empty payload");
  }
  if (payload.size() > max_frame_bytes) {
    throw std::invalid_argument("encode_frame: payload of " +
                                std::to_string(payload.size()) +
                                " bytes exceeds the frame limit of " +
                                std::to_string(max_frame_bytes));
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  unsigned char header[kFrameHeaderBytes];
  encode_frame_header(static_cast<std::uint32_t>(payload.size()), header);
  out.append(reinterpret_cast<const char*>(header), kFrameHeaderBytes);
  out.append(payload);
  return out;
}

void FrameDecoder::feed(std::string_view bytes) {
  if (poisoned_) return;
  // Compact the already-consumed prefix before growing: a long-lived
  // connection must not accumulate every frame it ever received.
  if (consumed_ > 0) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes);
}

FrameDecoder::Status FrameDecoder::next(std::string& payload) {
  if (poisoned_) return Status::Error;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return Status::NeedMore;
  const auto* head =
      reinterpret_cast<const unsigned char*>(buffer_.data() + consumed_);
  const std::uint32_t length = decode_frame_header(head);
  if (length == 0) {
    poisoned_ = true;
    error_ = "zero-length frame";
    return Status::Error;
  }
  if (length > max_frame_bytes_) {
    poisoned_ = true;
    error_ = "oversized frame: " + std::to_string(length) +
             " bytes exceeds the limit of " +
             std::to_string(max_frame_bytes_);
    return Status::Error;
  }
  if (available < kFrameHeaderBytes + length) return Status::NeedMore;
  payload.assign(buffer_, consumed_ + kFrameHeaderBytes, length);
  consumed_ += kFrameHeaderBytes + length;
  return Status::Frame;
}

}  // namespace expmk::util
