#include "util/table.hpp"

#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace expmk::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::begin_row() { cells_.emplace_back(); }

void Table::add(std::string cell) {
  if (cells_.empty()) throw std::logic_error("Table: add before begin_row");
  if (cells_.back().size() >= header_.size()) {
    throw std::logic_error("Table: row has more cells than header columns");
  }
  cells_.back().push_back(std::move(cell));
}

void Table::add_int(std::int64_t v) { add(std::to_string(v)); }

void Table::add_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  add(buf);
}

void Table::add_signed_sci(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%+.3e", v);
  add(buf);
}

const std::string& Table::cell(std::size_t r, std::size_t c) const {
  return cells_.at(r).at(c);
}

void Table::print_aligned(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& s = c < row.size() ? row[c] : std::string();
      os << s;
      if (c + 1 < header_.size()) {
        os << std::string(width[c] - s.size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : cells_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : cells_) emit(row);
}

}  // namespace expmk::util
