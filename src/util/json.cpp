#include "util/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace expmk::util::json {

namespace {

[[noreturn]] void kind_error(const char* want) {
  throw std::logic_error(std::string("json::Value: not a ") + want);
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::Bool) kind_error("bool");
  return bool_;
}

double Value::as_double() const {
  if (kind_ != Kind::Number) kind_error("number");
  return num_;
}

std::uint64_t Value::as_u64() const {
  if (!is_u64()) kind_error("64-bit unsigned integer");
  return u64_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::String) kind_error("string");
  return str_;
}

const std::vector<Value>& Value::as_array() const {
  if (kind_ != Kind::Array) kind_error("array");
  return arr_;
}

const std::vector<std::pair<std::string, Value>>& Value::as_object() const {
  if (kind_ != Kind::Object) kind_error("object");
  return obj_;
}

const Value* Value::find(std::string_view key) const noexcept {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

/// Recursive-descent parser over a string_view. Private to the TU; the
/// public entry point is parse() below.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json parse error at byte " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Value value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting deeper than kMaxDepth");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return object(depth);
      case '[':
        return array(depth);
      case '"': {
        Value v;
        v.kind_ = Value::Kind::String;
        v.str_ = string();
        return v;
      }
      case 't': {
        if (!literal("true")) fail("invalid literal");
        Value v;
        v.kind_ = Value::Kind::Bool;
        v.bool_ = true;
        return v;
      }
      case 'f': {
        if (!literal("false")) fail("invalid literal");
        Value v;
        v.kind_ = Value::Kind::Bool;
        v.bool_ = false;
        return v;
      }
      case 'n': {
        if (!literal("null")) fail("invalid literal");
        return Value{};
      }
      default:
        return number();
    }
  }

  Value object(std::size_t depth) {
    expect('{');
    Value v;
    v.kind_ = Value::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = string();
      skip_ws();
      expect(':');
      v.obj_.emplace_back(std::move(key), value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value array(std::size_t depth) {
    expect('[');
    Value v;
    v.kind_ = Value::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr_.push_back(value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned cp = hex4();
          // Surrogate pair: a high surrogate must be followed by \uDC00-
          // \uDFFF; combine into the supplementary code point.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (!literal("\\u")) fail("unpaired surrogate");
            const unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("unknown escape character");
      }
    }
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("truncated \\u escape");
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("non-hex digit in \\u escape");
      }
    }
    return v;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    if (pos_ >= text_.size() || !is_digit(text_[pos_])) {
      pos_ = start;
      fail("invalid number");
    }
    // JSON forbids leading zeros ("01"); strtod would accept them.
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        is_digit(text_[pos_ + 1])) {
      fail("leading zero in number");
    }
    while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() || !is_digit(text_[pos_])) {
        fail("digit expected after decimal point");
      }
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !is_digit(text_[pos_])) {
        fail("digit expected in exponent");
      }
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }

    const std::string token(text_.substr(start, pos_ - start));
    Value v;
    v.kind_ = Value::Kind::Number;
    errno = 0;
    v.num_ = std::strtod(token.c_str(), nullptr);
    if (errno == ERANGE && !std::isfinite(v.num_)) {
      fail("number out of double range");
    }
    if (integral && token[0] != '-') {
      // Exact unsigned 64-bit view for protocol seeds/ids that must not
      // round through the double mantissa.
      errno = 0;
      char* end = nullptr;
      const unsigned long long u = std::strtoull(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        v.has_u64_ = true;
        v.u64_ = static_cast<std::uint64_t>(u);
      }
    }
    return v;
  }

  static bool is_digit(char c) noexcept { return c >= '0' && c <= '9'; }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Value parse(std::string_view text) { return Parser(text).run(); }

}  // namespace expmk::util::json
