// util/thread_pool.hpp
//
// A small fixed-size thread pool used by the Monte-Carlo engine to spread
// independent trial batches over hardware threads.
//
// Design notes (C++ Core Guidelines): the pool owns its threads (RAII,
// CP.23-style joining destructor), tasks are type-erased move-only
// callables, and submission returns a std::future so callers can propagate
// exceptions from worker threads instead of losing them.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace expmk::util {

/// Fixed-size pool of worker threads executing submitted callables FIFO.
///
/// The destructor drains the queue: tasks already submitted are executed
/// before the workers join, so `parallel_for` style fan-outs may simply let
/// the pool go out of scope after collecting futures.
class ThreadPool {
 public:
  /// Creates `n` workers; `n == 0` is promoted to 1 so the pool is always
  /// usable (on single-core hosts hardware_concurrency() may report 0).
  explicit ThreadPool(std::size_t n = std::thread::hardware_concurrency());

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers after finishing every queued task.
  ~ThreadPool();

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Submits a callable; the returned future yields its result (or rethrows
  /// the exception the callable raised).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs `body(chunk_index)` for chunk_index in [0, chunks) across the
  /// pool and blocks until all chunks finish. Exceptions from any chunk are
  /// rethrown (the first one encountered).
  void parallel_for_chunks(std::size_t chunks,
                           const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace expmk::util
