#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace expmk::util::simd {

namespace {

#if defined(__x86_64__) || defined(__i386__)
bool detect_avx2() { return __builtin_cpu_supports("avx2") != 0; }
#else
bool detect_avx2() { return false; }
#endif

Backend resolve() {
  const char* env = std::getenv("EXPMK_FORCE_SCALAR");
  if (env != nullptr && std::strcmp(env, "0") != 0 && env[0] != '\0') {
    return Backend::Scalar;
  }
  return detect_avx2() ? Backend::Avx2 : Backend::Scalar;
}

std::atomic<Backend>& state() {
  static std::atomic<Backend> backend{resolve()};
  return backend;
}

}  // namespace

Backend active() noexcept { return state().load(std::memory_order_relaxed); }

bool force(Backend b) noexcept {
  if (b == Backend::Avx2 && !cpu_supports_avx2()) return false;
  state().store(b, std::memory_order_relaxed);
  return true;
}

bool cpu_supports_avx2() noexcept { return detect_avx2(); }

const char* name(Backend b) noexcept {
  switch (b) {
    case Backend::Avx2:
      return "avx2";
    case Backend::Scalar:
    default:
      return "scalar";
  }
}

}  // namespace expmk::util::simd
