// util/json_writer.hpp
//
// Minimal machine-readable JSON emitter for experiment/bench artifacts
// (BENCH_mc.json, the sweep subsystem's sweep.json): objects of numbers,
// strings and booleans, nestable objects and arrays of objects — enough
// for artifact tracking across PRs without dragging in a JSON dependency.
// Doubles are printed with 17 significant digits so bit-level comparisons
// survive the round trip; non-finite doubles map to null (JSON has no
// inf/nan literals).
//
// Historically this lived in bench/bench_common.hpp as bench::JsonWriter;
// it moved into the library when the sweep subsystem (src/exp/) started
// emitting JSON artifacts. bench::JsonWriter remains as an alias.

#pragma once

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace expmk::util {

class JsonWriter {
 public:
  JsonWriter& field(const std::string& key, double value) {
    // JSON has no inf/nan literals; map them to null so the file stays
    // machine-readable even if a value degenerates.
    if (!std::isfinite(value)) return raw(key, "null");
    std::ostringstream os;
    os.precision(17);
    os << value;
    return raw(key, os.str());
  }
  /// Any integer type (int, std::size_t, std::uint64_t, ...) — a template
  /// so size_t stays unambiguous on platforms where it isn't uint64_t.
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  JsonWriter& field(const std::string& key, T value) {
    return raw(key, std::to_string(value));
  }
  JsonWriter& field(const std::string& key, bool value) {
    return raw(key, value ? "true" : "false");
  }
  JsonWriter& field(const std::string& key, const std::string& value) {
    return raw(key, quote(value));
  }
  /// Without this overload a string literal would take the pointer-to-bool
  /// conversion and silently emit `true`.
  JsonWriter& field(const std::string& key, const char* value) {
    return raw(key, quote(value));
  }
  /// Nests a completed object under `key`.
  JsonWriter& object(const std::string& key, const JsonWriter& nested) {
    return raw(key, nested.str());
  }
  /// Nests an array of completed objects under `key`.
  JsonWriter& array(const std::string& key,
                    const std::vector<JsonWriter>& items) {
    std::string out = "[";
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i != 0) out += ", ";
      out += items[i].str();
    }
    out += "]";
    return raw(key, out);
  }

  [[nodiscard]] std::string str() const {
    std::string out = "{";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (i != 0) out += ", ";
      out += entries_[i];
    }
    out += "}";
    return out;
  }

  /// Writes the object to `path` (overwriting), newline-terminated.
  void write_file(const std::string& path) const {
    std::ofstream f(path);
    f << str() << "\n";
  }

 private:
  static std::string quote(const std::string& value) {
    std::string out = "\"";
    for (const char c : value) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        // Control characters are not legal raw in JSON strings.
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(c)));
        out += buf;
      } else {
        out += c;
      }
    }
    out += '"';
    return out;
  }
  JsonWriter& raw(const std::string& key, const std::string& rendered) {
    entries_.push_back(quote(key) + ": " + rendered);
    return *this;
  }
  std::vector<std::string> entries_;
};

}  // namespace expmk::util
