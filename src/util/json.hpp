// util/json.hpp
//
// Minimal JSON *parser* — the read-side companion of util::JsonWriter —
// for the serving wire protocol (src/serve/), whose request frames are
// JSON objects. Strict grammar (RFC 8259: no trailing commas, no
// comments), recursive descent, throws std::invalid_argument with a byte
// offset on malformed input.
//
// Deliberate scope:
//  * Objects preserve insertion order in a vector of pairs — no
//    unordered_map (the expmk-determinism contract bans unordered
//    iteration) and no std::map (key order should be the sender's, so
//    diagnostics echo fields in the order they arrived).
//  * Numbers keep BOTH a double view and, when the literal is integral
//    and in range, an exact 64-bit view — a u64 seed like
//    0xFFFFFFFFFFFFFFFF must round-trip through the protocol without
//    falling into the double's 53-bit mantissa.
//  * Depth-limited (kMaxDepth) so a hostile frame cannot overflow the
//    stack with '[[[[...'.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace expmk::util::json {

/// One parsed JSON value; a tagged union over the seven JSON kinds.
class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::String;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::Object;
  }

  /// Bool value; throws std::logic_error on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  /// Numeric value as double (always available for numbers).
  [[nodiscard]] double as_double() const;
  /// Exact unsigned view. Valid only when the literal was a non-negative
  /// integer without fraction/exponent that fits in 64 bits (is_u64());
  /// throws std::logic_error otherwise.
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] bool is_u64() const noexcept {
    return kind_ == Kind::Number && has_u64_;
  }
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Value>& as_array() const;
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& as_object()
      const;

  /// Object member lookup (linear scan — protocol objects are small);
  /// nullptr when absent or when this value is not an object.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;

 private:
  friend class Parser;
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  bool has_u64_ = false;
  std::uint64_t u64_ = 0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<std::pair<std::string, Value>> obj_;
};

/// Maximum nesting depth accepted by parse().
inline constexpr std::size_t kMaxDepth = 64;

/// Parses exactly one JSON value spanning the whole input (trailing
/// whitespace allowed, trailing garbage is an error). Throws
/// std::invalid_argument with a byte offset on malformed input.
[[nodiscard]] Value parse(std::string_view text);

}  // namespace expmk::util::json
