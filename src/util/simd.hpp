// util/simd.hpp
//
// Runtime SIMD backend selection for the vectorized kernel layer
// (prob/dist_kernels, graph::longest_from_block, normal::clark_full, the
// Philox bulk generator). One process-wide answer, resolved once:
//
//   * compile-time gate: non-x86 builds compile the scalar path only and
//     active() is constant Scalar;
//   * runtime CPU dispatch: on x86-64 the AVX2 path is selected iff the
//     CPU reports AVX2 (GCC/Clang __builtin_cpu_supports), so one binary
//     serves both old and new machines;
//   * operator override: EXPMK_FORCE_SCALAR=1 in the environment pins the
//     scalar path at startup — the CI scalar-fallback job runs the whole
//     suite this way, and it is the knob for A/B-ing kernels in place.
//
// Contract: for every dispatched kernel the scalar implementation is the
// executable specification. Kernels whose vector path performs the exact
// per-element operation sequence of the scalar path (no reassociation)
// are BIT-IDENTICAL across backends; kernels that reassociate a reduction
// are pinned to a documented small-ulp envelope instead. Per-kernel
// classification lives in DESIGN.md ("SIMD kernel layer") and is enforced
// by tests/test_simd_kernels.cpp.

#pragma once

namespace expmk::util::simd {

enum class Backend {
  Scalar,  ///< portable reference path (the executable spec)
  Avx2,    ///< AVX2 (no FMA: -ffp-contract=off is a library-wide contract)
};

/// The backend every dispatched kernel uses. Resolved on first call:
/// EXPMK_FORCE_SCALAR=1 wins, then CPU detection, else Scalar. Stable for
/// the life of the process unless force() overrides it.
[[nodiscard]] Backend active() noexcept;

/// Test hook: pins the backend from now on (overrides the environment and
/// the CPU probe). Passing Avx2 on a CPU without AVX2 is rejected by
/// returning false (the caller skips the cross-backend assertion).
bool force(Backend b) noexcept;

/// True iff this build AND this CPU can run the AVX2 paths.
[[nodiscard]] bool cpu_supports_avx2() noexcept;

/// Lower-case display name ("scalar", "avx2") for logs and BENCH files.
[[nodiscard]] const char* name(Backend b) noexcept;

}  // namespace expmk::util::simd
