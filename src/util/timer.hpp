// util/timer.hpp
//
// Wall-clock stopwatch used by the benchmark harness to reproduce the
// execution-time column of the paper's Table I.

#pragma once

#include <chrono>
#include <string>

namespace expmk::util {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last reset().
  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Formats a duration in seconds with an adaptive unit, e.g. "153 us",
/// "2.31 ms", "4.07 s", "2.1 min" — used in bench table output.
[[nodiscard]] std::string format_duration(double seconds);

}  // namespace expmk::util
