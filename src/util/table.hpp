// util/table.hpp
//
// Text-table rendering for the benchmark harness: every paper table/figure
// is regenerated as rows of a Table, printed either as an aligned monospace
// table (human reading) or as CSV (plotting scripts).

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace expmk::util {

/// A rectangular table of strings with a header row.
///
/// Cells are added row-by-row; numeric helpers format doubles with
/// significant digits appropriate for relative-error reporting (the paper
/// plots errors between 1e-6 and 1e-1 on log axes).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent add_* calls fill it left to right.
  void begin_row();
  void add(std::string cell);
  void add_int(std::int64_t v);
  /// %.6g formatting — enough to read 1e-6-scale relative errors.
  void add_double(double v);
  /// Scientific with explicit sign, e.g. "+1.93e-02" (figure series).
  void add_signed_sci(double v);

  [[nodiscard]] std::size_t rows() const noexcept { return cells_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return header_.size(); }
  [[nodiscard]] const std::string& cell(std::size_t r, std::size_t c) const;

  /// Renders with space padding and a rule under the header.
  void print_aligned(std::ostream& os) const;
  /// Renders as RFC-4180-ish CSV (no quoting needed for our content).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> cells_;
};

}  // namespace expmk::util
