// util/contracts.hpp
//
// Static-contract annotations for the evaluation engine, consumed by the
// expmk-tidy checker (tools/expmk-tidy/) — the build-time enforcement of
// the guarantees the dynamic tests pin after the fact (counting-operator-
// new zero-alloc pins, threads-1/2/7 bit-identity re-runs).
//
// EXPMK_NOALLOC marks a function as a *steady-state allocation-free
// kernel*: on a warm exp::Workspace, a call performs zero heap
// allocations. The expmk-no-alloc-kernel check enforces this statically
// over the function BODY (annotate the definition; re-stating it on the
// declaration is good documentation but the checker keys on the
// definition):
//
//   * no new-expressions / operator new;
//   * no calls to allocating container-growth members (push_back, resize,
//     reserve, insert, emplace, assign, append, ...);
//   * no construction of allocating std types (vector, string, function,
//     map, make_unique, to_string, ...);
//   * every free-function callee must itself be EXPMK_NOALLOC, or appear
//     on the checker's allowlist of known non-allocating functions
//     (std math, memcpy, span utilities, Workspace leases — a lease may
//     GROW an arena cold, which is exactly the "warm workspace" carve-out
//     the dynamic tests use too);
//   * allocation inside a throw-expression is exempt: a throw aborts the
//     evaluation, so the steady-state contract does not cover it.
//
// Escapes: a deliberate cold-path allocation (e.g. materializing a
// captured distribution) is suppressed per-site with
//
//   // NOLINT(expmk-no-alloc-kernel): <required justification>
//
// — the checker REJECTS a bare NOLINT without a justification text.
//
// The attribute form ([[clang::annotate("expmk::noalloc")]]) is what the
// clang-tidy plugin matches on; compilers without the attribute (GCC
// warns on unknown attribute namespaces under -Wattributes) get an empty
// expansion, and the token-level fallback checker keys on the macro name
// itself, so enforcement does not depend on the compiler.

#pragma once

#if defined(__clang__) && defined(__has_cpp_attribute)
#if __has_cpp_attribute(clang::annotate)
#define EXPMK_NOALLOC [[clang::annotate("expmk::noalloc")]]
#endif
#endif
#ifndef EXPMK_NOALLOC
#define EXPMK_NOALLOC
#endif
