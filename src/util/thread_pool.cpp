#include "util/thread_pool.hpp"

#include <exception>

namespace expmk::util {

ThreadPool::ThreadPool(std::size_t n) {
  if (n == 0) n = 1;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for_chunks(
    std::size_t chunks, const std::function<void(std::size_t)>& body) {
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    futures.push_back(submit([&body, c] { body(c); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace expmk::util
