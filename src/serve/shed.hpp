// serve/shed.hpp
//
// Degrade-don't-queue admission for the serving daemon. When the batch
// queue deepens or the measured response p99 crosses a threshold, the
// engine does NOT let latency grow unboundedly — it substitutes a
// cheaper method and SAYS SO in the response (method_requested /
// method_used / shed_level), so a client always knows what estimate it
// actually got. Only past a hard queue limit are requests rejected
// outright, with a typed "overloaded" error frame.
//
// Degradation is PLANNER-DRIVEN (exp/plan.hpp), not a hard-coded method
// ladder: each pressure level carries a per-request cost deadline
// (deadline_l1_us / deadline_l2_us), and a request whose method the
// calibrated cost model predicts OVER the level's deadline is replaced
// by the planner's most-accurate-method-under-that-deadline for the
// request's scenario (ties to the cheaper one; when nothing fits, the
// predicted-cheapest closed form — fo/so territory — is the floor). A
// request already predicted under the deadline passes through unchanged,
// whatever its name — so a 12-task exact stays exact under pressure
// while a 200k-task sp degrades, which the old name ladder got exactly
// backwards. mc / cmc / mc.hier trial counts are additionally capped at
// the level's mc_trials_lN. The decision is a pure function of (level,
// request, scenario features, cost-model state) — unit-testable without
// a server (tests/test_serve.cpp).
//
//   reject (hard limit): queue_depth >= queue_hard -> typed error,
//                        never an unbounded queue.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string_view>

#include "exp/plan.hpp"
#include "util/contracts.hpp"

namespace expmk::serve {

/// Thresholds for the degrade ladder. Levels trigger on EITHER queue
/// depth or measured p99 (the max of the two signals' levels); the hard
/// limit triggers on queue depth alone.
struct ShedConfig {
  std::size_t queue_l1 = 512;    ///< queued requests >= this -> level 1
  std::size_t queue_l2 = 2048;   ///< queued requests >= this -> level 2
  std::size_t queue_hard = 8192; ///< queued requests >= this -> reject
  double p99_l1_us = 50'000.0;   ///< measured p99 >= this -> level 1
  double p99_l2_us = 250'000.0;  ///< measured p99 >= this -> level 2
  std::uint64_t mc_trials_l1 = 20'000;  ///< mc/cmc trial cap at level 1
  std::uint64_t mc_trials_l2 = 2'000;   ///< mc/cmc trial cap at level 2
  /// Per-request predicted-cost deadlines the planner degrades against.
  double deadline_l1_us = 50'000.0;  ///< level-1 planner deadline
  double deadline_l2_us = 2'000.0;   ///< level-2 planner deadline
};

/// The outcome of admission for one request.
struct ShedDecision {
  int level = 0;                 ///< 0 = as requested, 1 / 2 = degraded
  std::string_view method;       ///< method to actually run
  std::uint64_t mc_trials = 0;   ///< trial count to actually run
  bool degraded = false;         ///< method or trial count was substituted
};

/// Pure decision functions over the config (no I/O, no clock).
class ShedPolicy {
 public:
  ShedPolicy() = default;
  explicit ShedPolicy(const ShedConfig& config) : config_(config) {}

  [[nodiscard]] const ShedConfig& config() const noexcept { return config_; }

  /// Hard-limit check: true means reject with a typed error frame.
  EXPMK_NOALLOC [[nodiscard]] bool reject(
      std::size_t queue_depth) const noexcept {
    return queue_depth >= config_.queue_hard;
  }

  /// Ladder level for the current pressure signals (0, 1 or 2).
  EXPMK_NOALLOC [[nodiscard]] int level(std::size_t queue_depth,
                                        double p99_us) const noexcept {
    int lvl = 0;
    if (queue_depth >= config_.queue_l1) lvl = 1;
    if (queue_depth >= config_.queue_l2) lvl = 2;
    if (p99_us >= config_.p99_l1_us && lvl < 1) lvl = 1;
    if (p99_us >= config_.p99_l2_us && lvl < 2) lvl = 2;
    return lvl;
  }

  /// Applies the level's cost deadline to one request: keep the
  /// requested method when `planner`'s cost model predicts it under the
  /// deadline, otherwise substitute the planner's most accurate method
  /// predicted to fit. `atoms` / `mc_trials` are the request's knob
  /// values (0 = method default), used as cost hints; mc-family trial
  /// counts are additionally capped at the level's mc_trials_lN.
  /// `method` must outlive the returned decision (the view aliases
  /// either the argument or the planner's static name table).
  EXPMK_NOALLOC [[nodiscard]] ShedDecision degrade(
      int lvl, std::string_view method, std::uint64_t mc_trials,
      std::size_t atoms, const exp::CostFeatures& features,
      const exp::Planner& planner) const noexcept {
    ShedDecision d;
    d.level = lvl;
    d.method = method;
    d.mc_trials = mc_trials;
    if (lvl <= 0) return d;
    const double deadline =
        lvl == 1 ? config_.deadline_l1_us : config_.deadline_l2_us;
    const std::uint64_t trial_cap =
        lvl == 1 ? config_.mc_trials_l1 : config_.mc_trials_l2;

    const exp::PlanMethod m = exp::plan_method_from_name(method);
    if (m == exp::PlanMethod::kCount) return d;  // outside the catalogue

    // The level's mc trial cap applies to the REQUESTED method first: a
    // capped-but-kept mc request is still a degradation and says so.
    const bool mc_like = m == exp::PlanMethod::kMc ||
                         m == exp::PlanMethod::kCmc ||
                         m == exp::PlanMethod::kMcHier;
    if (mc_like && d.mc_trials > trial_cap) {
      d.mc_trials = trial_cap;
      d.degraded = true;
    }

    if (planner.model().predict_us(m, features, atoms, d.mc_trials) <=
        deadline) {
      return d;  // predicted to fit — keep it, whatever its name
    }

    // Over the deadline: the planner's most accurate method predicted
    // under it; when nothing fits, select() falls back to its
    // predicted-cheapest capability-feasible pick.
    exp::PlanBudget budget;
    budget.deadline_us = deadline;
    const exp::PlanChoice choice = planner.select(features, budget);
    d.method = exp::plan_method_name(choice.method);
    d.mc_trials = std::min<std::uint64_t>(
        choice.mc_trials > 0 ? choice.mc_trials : mc_trials, trial_cap);
    d.degraded = true;
    return d;
  }

 private:
  ShedConfig config_;
};

/// Fixed-size ring of recent response latencies feeding the p99 signal.
/// Thread-safe; the ring never allocates after construction.
class LatencyWindow {
 public:
  static constexpr std::size_t kCapacity = 512;

  /// Records one response latency in microseconds.
  void record(double us) noexcept {
    const std::lock_guard<std::mutex> lock(m_);
    ring_[head_] = us;
    head_ = (head_ + 1) % kCapacity;
    if (count_ < kCapacity) ++count_;
  }

  /// Number of samples currently held (saturates at kCapacity).
  [[nodiscard]] std::size_t count() const noexcept {
    const std::lock_guard<std::mutex> lock(m_);
    return count_;
  }

  /// The q-quantile (q in [0, 1]) of the held samples; 0 when empty.
  /// Sorts a stack copy of the ring — bounded work, no allocation.
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  mutable std::mutex m_;
  double ring_[kCapacity] = {};
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace expmk::serve
