// serve/shed.hpp
//
// Degrade-don't-queue admission for the serving daemon. When the batch
// queue deepens or the measured response p99 crosses a threshold, the
// engine does NOT let latency grow unboundedly — it substitutes a
// cheaper method along the documented accuracy ladder and SAYS SO in the
// response (method_requested / method_used / shed_level), so a client
// always knows what estimate it actually got. Only past a hard queue
// limit are requests rejected outright, with a typed "overloaded" error
// frame.
//
// The ladder (DESIGN.md "Serving layer") follows the registry's accuracy
// contracts — each step trades a documented amount of accuracy for
// orders of magnitude of cost:
//
//   level 1 (soft pressure):  exact, exact.geo -> sp   (exact on SP
//                             DAGs, certified-envelope approximation
//                             otherwise); mc / cmc trial count capped at
//                             mc_trials_l1.
//   level 2 (heavy pressure): exact, exact.geo, sp -> fo (the paper's
//                             O(V+E) first-order estimate); mc / cmc
//                             capped at mc_trials_l2.
//   reject (hard limit):      queue_depth >= queue_hard -> typed error,
//                             never an unbounded queue.
//
// Methods outside the ladder (so, dodin, sculli, corlca, clark, bounds.*)
// already sit at or below fo-level cost for their graph sizes and pass
// through unchanged. The decision is a pure function of (queue depth,
// p99, config) — unit-testable without a server (tests/test_serve.cpp).

#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string_view>

#include "util/contracts.hpp"

namespace expmk::serve {

/// Thresholds for the degrade ladder. Levels trigger on EITHER queue
/// depth or measured p99 (the max of the two signals' levels); the hard
/// limit triggers on queue depth alone.
struct ShedConfig {
  std::size_t queue_l1 = 512;    ///< queued requests >= this -> level 1
  std::size_t queue_l2 = 2048;   ///< queued requests >= this -> level 2
  std::size_t queue_hard = 8192; ///< queued requests >= this -> reject
  double p99_l1_us = 50'000.0;   ///< measured p99 >= this -> level 1
  double p99_l2_us = 250'000.0;  ///< measured p99 >= this -> level 2
  std::uint64_t mc_trials_l1 = 20'000;  ///< mc/cmc trial cap at level 1
  std::uint64_t mc_trials_l2 = 2'000;   ///< mc/cmc trial cap at level 2
};

/// The outcome of admission for one request.
struct ShedDecision {
  int level = 0;                 ///< 0 = as requested, 1 / 2 = degraded
  std::string_view method;       ///< method to actually run
  std::uint64_t mc_trials = 0;   ///< trial count to actually run
  bool degraded = false;         ///< method or trial count was substituted
};

/// Pure decision functions over the config (no I/O, no clock).
class ShedPolicy {
 public:
  ShedPolicy() = default;
  explicit ShedPolicy(const ShedConfig& config) : config_(config) {}

  [[nodiscard]] const ShedConfig& config() const noexcept { return config_; }

  /// Hard-limit check: true means reject with a typed error frame.
  EXPMK_NOALLOC [[nodiscard]] bool reject(
      std::size_t queue_depth) const noexcept {
    return queue_depth >= config_.queue_hard;
  }

  /// Ladder level for the current pressure signals (0, 1 or 2).
  EXPMK_NOALLOC [[nodiscard]] int level(std::size_t queue_depth,
                                        double p99_us) const noexcept {
    int lvl = 0;
    if (queue_depth >= config_.queue_l1) lvl = 1;
    if (queue_depth >= config_.queue_l2) lvl = 2;
    if (p99_us >= config_.p99_l1_us && lvl < 1) lvl = 1;
    if (p99_us >= config_.p99_l2_us && lvl < 2) lvl = 2;
    return lvl;
  }

  /// Applies the ladder to one request. `method` must outlive the
  /// returned decision (the view aliases either the argument or a string
  /// literal).
  EXPMK_NOALLOC [[nodiscard]] ShedDecision degrade(
      int lvl, std::string_view method,
      std::uint64_t mc_trials) const noexcept {
    ShedDecision d;
    d.level = lvl;
    d.method = method;
    d.mc_trials = mc_trials;
    if (lvl <= 0) return d;
    if (method == "exact" || method == "exact.geo") {
      d.method = lvl == 1 ? std::string_view("sp") : std::string_view("fo");
      d.degraded = true;
    } else if (method == "sp" && lvl >= 2) {
      d.method = "fo";
      d.degraded = true;
    } else if (method == "mc" || method == "cmc") {
      const std::uint64_t cap =
          lvl == 1 ? config_.mc_trials_l1 : config_.mc_trials_l2;
      if (mc_trials > cap) {
        d.mc_trials = cap;
        d.degraded = true;
      }
    }
    return d;
  }

 private:
  ShedConfig config_;
};

/// Fixed-size ring of recent response latencies feeding the p99 signal.
/// Thread-safe; the ring never allocates after construction.
class LatencyWindow {
 public:
  static constexpr std::size_t kCapacity = 512;

  /// Records one response latency in microseconds.
  void record(double us) noexcept {
    const std::lock_guard<std::mutex> lock(m_);
    ring_[head_] = us;
    head_ = (head_ + 1) % kCapacity;
    if (count_ < kCapacity) ++count_;
  }

  /// Number of samples currently held (saturates at kCapacity).
  [[nodiscard]] std::size_t count() const noexcept {
    const std::lock_guard<std::mutex> lock(m_);
    return count_;
  }

  /// The q-quantile (q in [0, 1]) of the held samples; 0 when empty.
  /// Sorts a stack copy of the ring — bounded work, no allocation.
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  mutable std::mutex m_;
  double ring_[kCapacity] = {};
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace expmk::serve
