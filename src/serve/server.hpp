// serve/server.hpp
//
// The POSIX TCP shell around ServeEngine: accept connections on a
// loopback socket, frame bytes in and out (util/framing.hpp), and let the
// engine do everything else. Deliberately thin — one accept thread, one
// reader thread per connection, blocking I/O — because the concurrency
// that matters (evaluation fan-out, batching, singleflight compiles)
// lives behind the engine, not in the socket layer.
//
// Write path: eval responses fire on the batcher's flusher thread while
// the reader is still parsing the next request, so every connection
// carries a write mutex and an `open` flag. A failed or closed transport
// flips `open`; late callbacks then drop their response instead of
// writing to a dead (or worse, recycled) descriptor — the Conn object
// owns the fd and closes it only when the last reference (reader thread
// or in-flight callback) lets go.
//
// Shutdown: a protocol shutdown frame acknowledges, then trips the
// engine's shutdown latch; the owner (expmk_serve's main) observes
// wait_shutdown() and calls stop(). stop() closes the listener, wakes
// every reader with shutdown(2), joins the threads, and leaves in-flight
// batches to drain in the engine's destructor.

#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "serve/engine.hpp"
#include "util/framing.hpp"

namespace expmk::serve {

struct ServerConfig {
  int port = 0;  ///< 0 = ephemeral (read the bound port with port())
  EngineConfig engine;
  std::size_t max_frame_bytes = util::kDefaultMaxFrameBytes;
};

/// Loopback TCP server speaking expmk-serve-v1. start() binds and spawns
/// the accept thread; stop() (idempotent, also run by the destructor)
/// tears everything down.
class TcpServer {
 public:
  explicit TcpServer(const ServerConfig& config = ServerConfig{});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1:<port>, listens and starts accepting. Throws
  /// std::runtime_error on socket/bind failure.
  void start();

  /// The bound port (after start()); useful with an ephemeral config.
  [[nodiscard]] int port() const noexcept { return port_; }

  [[nodiscard]] ServeEngine& engine() noexcept { return *engine_; }

  /// Blocks until a client sends a shutdown frame.
  void wait_shutdown() { engine_->wait_shutdown(); }

  /// Stops accepting, closes every connection and joins all threads.
  void stop();

 private:
  /// One live connection: the fd plus the write-side guard shared by the
  /// reader thread and in-flight response callbacks.
  struct Conn {
    explicit Conn(int fd) : fd(fd) {}
    ~Conn();
    int fd;
    std::mutex write_m;
    std::atomic<bool> open{true};
  };

  void accept_loop();
  void reader_loop(const std::shared_ptr<Conn>& conn);
  /// Frames and writes one payload; flips conn->open on transport failure.
  void send_frame(Conn& conn, std::string_view payload);

  ServerConfig config_;
  std::unique_ptr<ServeEngine> engine_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::thread accept_thread_;

  std::mutex conns_m_;
  std::vector<std::pair<std::shared_ptr<Conn>, std::thread>> conns_;
};

}  // namespace expmk::serve
