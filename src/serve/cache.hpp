// serve/cache.hpp
//
// The content-hash scenario cache — the piece that makes a long-lived
// expmk service economical: Scenario::compile is ~20x one analytic
// evaluation, so at traffic scale the cache IS the product. Keys are
// scenario::content_hash values (a pure function of canonical taskgraph
// bytes + FailureSpec + RetryModel, version-tagged and golden-pinned),
// so identical requests from any client, any connection, any server
// generation map to one compiled Scenario.
//
// Structure:
//  * Sharded: the top bits of the key pick one of `shards` independent
//    (mutex, map, LRU list) triples, so concurrent hits on different
//    keys never contend on one lock. Each shard owns an equal slice of
//    the byte budget.
//  * Byte-budget LRU: every entry carries a footprint estimate
//    (scenario_footprint_bytes); inserting past the shard budget evicts
//    from the LRU tail. The newest entry is never evicted — a scenario
//    larger than the whole budget still serves its own request.
//  * Singleflight: concurrent misses on ONE key compile once. The first
//    miss inserts an in-flight ticket and compiles outside the shard
//    lock; later misses wait on the ticket and share the result (or the
//    exception). Misses on DIFFERENT keys compile concurrently.
//
// Entries hand out shared_ptr<const Scenario>: eviction only drops the
// cache's reference, so in-flight evaluations on an evicted scenario
// finish safely (Scenario is immutable and thread-shareable).
//
// Counters (hits / misses / coalesced / compiles / evictions / bytes /
// entries) are exposed in every response and the STATS frame.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "scenario/scenario.hpp"

namespace expmk::serve {

/// Snapshot of the cache counters (STATS frame / bench output).
struct CacheStats {
  std::uint64_t hits = 0;       ///< lookups served from the map
  std::uint64_t misses = 0;     ///< lookups that found nothing
  std::uint64_t coalesced = 0;  ///< misses that joined an in-flight compile
  std::uint64_t compiles = 0;   ///< full Scenario compiles performed
  std::uint64_t patched = 0;    ///< misses served by patching a sibling
  std::uint64_t evictions = 0;  ///< entries dropped by the byte budget
  std::uint64_t entries = 0;    ///< live entries right now
  std::uint64_t bytes = 0;      ///< estimated bytes cached right now
};

/// Rough footprint of one compiled Scenario in bytes — the eviction
/// currency. An ESTIMATE (documented in DESIGN.md): the per-task and
/// per-edge vector payloads plus a fixed overhead per task for the Dag
/// copy's names/adjacency; exact malloc accounting is not worth chasing
/// for a budget knob.
[[nodiscard]] std::size_t scenario_footprint_bytes(
    const scenario::Scenario& sc) noexcept;

/// Sharded, byte-budgeted, singleflight LRU of compiled scenarios. All
/// methods are thread-safe.
class ScenarioCache {
 public:
  using ScenarioPtr = std::shared_ptr<const scenario::Scenario>;
  using CompileFn = std::function<ScenarioPtr()>;
  /// Derives the requested scenario from a cached sibling that shares its
  /// structure key (same graph + retry, different FailureSpec) — the
  /// Scenario::with_failure fast path. Must return a scenario
  /// bit-identical to what CompileFn would have produced.
  using PatchFn = std::function<ScenarioPtr(const scenario::Scenario&)>;

  /// `byte_budget` is split evenly across `shards` (each shard evicts
  /// independently). shards == 0 is promoted to 1.
  explicit ScenarioCache(std::size_t byte_budget, std::size_t shards = 8);

  /// How a get_or_compile / lookup call was served (echoed per-response).
  enum class Outcome {
    Hit,        ///< served from the map
    Miss,       ///< this call compiled the scenario
    Patched,    ///< this call derived the scenario from a cached sibling
    Coalesced,  ///< this call waited on another caller's compile
    Absent,     ///< lookup-only call found nothing
  };

  /// Returns the scenario for `key`, compiling it with `compile` on a
  /// miss (outside the shard lock; concurrent misses on the same key
  /// coalesce onto one compile). Rethrows the compile's exception to
  /// every coalesced waiter — a poisoned key is NOT cached, so a later
  /// request retries.
  [[nodiscard]] ScenarioPtr get_or_compile(std::uint64_t key,
                                           const CompileFn& compile,
                                           Outcome* outcome = nullptr);

  /// As get_or_compile, with the patch-on-miss fast path: on a miss,
  /// when another cached entry shares `structure_key`, the scenario is
  /// derived from it via `patch` (Outcome::Patched, `patched` counter)
  /// instead of compiled from scratch — with_failure re-derives only the
  /// rate-dependent planes and shares every structural cache, so this is
  /// an order of magnitude cheaper than a compile at scale. A throwing
  /// patch falls back to the full compile. Successful inserts register
  /// `structure_key` so later same-structure misses find this entry.
  [[nodiscard]] ScenarioPtr get_or_compile(std::uint64_t key,
                                           std::uint64_t structure_key,
                                           const PatchFn& patch,
                                           const CompileFn& compile,
                                           Outcome* outcome = nullptr);

  /// Hash-only lookup (a by-hash protocol request): nullptr when absent.
  /// Counts a hit or a miss.
  [[nodiscard]] ScenarioPtr lookup(std::uint64_t key,
                                   Outcome* outcome = nullptr);

  [[nodiscard]] CacheStats stats() const;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

 private:
  struct InFlight {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    ScenarioPtr result;
    std::exception_ptr error;
  };

  struct Entry {
    ScenarioPtr scenario;
    std::size_t bytes = 0;
    std::list<std::uint64_t>::iterator lru_pos;
  };

  struct Shard {
    mutable std::mutex m;
    std::map<std::uint64_t, Entry> entries;
    std::list<std::uint64_t> lru;  // front = most recently used
    std::map<std::uint64_t, std::shared_ptr<InFlight>> inflight;
    std::size_t bytes = 0;
    // Per-shard counters, folded by stats().
    std::uint64_t hits = 0, misses = 0, coalesced = 0, compiles = 0,
                  patched = 0, evictions = 0;
  };

  Shard& shard_for(std::uint64_t key) noexcept {
    // Top bits: content_hash finalizes with a full-width mix, and the
    // bottom bits keep the LRU maps' keys spread within a shard.
    return shards_[static_cast<std::size_t>(key >> 48) % shards_.size()];
  }

  /// Inserts under the shard lock (caller holds it) and evicts past the
  /// budget. Returns the number of evictions performed.
  void insert_locked(Shard& s, std::uint64_t key, ScenarioPtr sc);

  /// A live cached entry for `key` without counter or LRU side effects
  /// (sibling resolution must not distort the hit/miss telemetry).
  [[nodiscard]] ScenarioPtr peek(std::uint64_t key);

  std::size_t per_shard_budget_;
  std::vector<Shard> shards_;

  // structure key -> most recent content key inserted under it. Own lock,
  // never held together with a shard lock (all accesses copy and
  // release). Entries may point at evicted keys; peek() just misses then.
  std::mutex structure_m_;
  std::map<std::uint64_t, std::uint64_t> structure_index_;
};

}  // namespace expmk::serve
