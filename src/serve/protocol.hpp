// serve/protocol.hpp
//
// The expmk-serve-v1 message layer: what goes INSIDE the length-prefixed
// frames (util/framing.hpp). Every payload is one JSON object.
//
// Request schema (unknown keys are ignored for forward compatibility):
//
//   {"v": 1, "type": "eval" | "stats" | "shutdown",
//    "id": <u64>,                  // optional echo token
//    // -- eval only: exactly one of --
//    "graph": "<expmk-taskgraph text>",
//    "hash": "<16 lowercase hex>", // a content hash seen before
//    // -- eval + graph only: exactly one of --
//    "pfail": <double>,            // Section V-C calibration
//    "lambda": <double>,           // uniform rate
//    "use_rates": true,            // per-task rates from a v2 graph
//    // -- eval options (defaults mirror exp::EvalOptions) --
//    "retry": "twostate" | "geometric",
//    "method": "<registry name>",  // default "fo"
//    "seed": <u64>,                // stream base, default 0xE57
//    "trials": <u64>,              // mc/cmc trial count
//    "dodin_atoms": <u64>, "max_atoms": <u64>}
//
// Responses: {"type": "result", ...} carries the full EvalResult surface
// (mean / mean_lo / mean_hi certs / std_error / censored_trials /
// supported / note) plus serving metadata — the content hash, how the
// cache served the scenario, the method REQUESTED vs the method RUN (the
// load-shedding substitution is always reported, never silent), the
// derived per-connection seed (replaying that seed standalone with
// seed_final reproduces the response bit-for-bit), and timings.
// {"type": "error", "code": ..., "message": ...} is the typed failure
// surface; codes: bad_frame, bad_json, bad_request, bad_graph,
// unknown_method, not_found, overloaded, internal.
//
// parse_request and the builders are pure string functions — the whole
// protocol round-trips in unit tests without a socket.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/failure_model.hpp"
#include "exp/evaluator.hpp"
#include "util/json.hpp"

namespace expmk::serve {

/// Typed protocol failure; `code` is one of the wire error codes above.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}
  [[nodiscard]] const std::string& code() const noexcept { return code_; }

 private:
  std::string code_;
};

/// A validated request frame.
struct WireRequest {
  enum class Type { Eval, Stats, Shutdown };
  Type type = Type::Eval;

  bool has_id = false;
  std::uint64_t id = 0;  ///< echoed verbatim in the response

  // Scenario identity: exactly one of `graph_text` (inline) or
  // `has_hash` (by content hash) for eval requests.
  std::string graph_text;
  bool has_hash = false;
  std::uint64_t hash = 0;

  // Failure spec for inline graphs: exactly one of use_rates (v2 graph
  // rates), pfail, or lambda.
  bool use_rates = false;
  bool has_pfail = false;
  double pfail = 0.0;
  bool has_lambda = false;
  double lambda = 0.0;

  core::RetryModel retry = core::RetryModel::TwoState;
  std::string method = "fo";
  std::uint64_t seed = 0xE57;     ///< stream base (per-connection derive)
  std::uint64_t trials = 100'000; ///< mc / cmc trial count
  std::uint64_t dodin_atoms = 256;
  std::uint64_t max_atoms = 0;    ///< sp atom budget (0 = exact)
};

/// Parses + validates one request payload. Throws ProtocolError with
/// code "bad_json" (not JSON at all) or "bad_request" (schema violation).
[[nodiscard]] WireRequest parse_request(std::string_view payload);

/// Serving metadata attached to a result response.
struct ResponseMeta {
  bool has_id = false;
  std::uint64_t id = 0;
  std::uint64_t hash = 0;           ///< content hash of the cell
  std::string_view cache;           ///< "hit" | "miss" | "coalesced"
  std::string_view method_requested;
  std::string_view method_used;     ///< after the shed ladder
  int shed_level = 0;
  bool degraded = false;
  std::uint64_t trials_requested = 0;
  std::uint64_t trials_used = 0;
  std::uint64_t seed = 0;           ///< client's stream base
  std::uint64_t request_index = 0;  ///< position in the connection stream
  std::uint64_t derived_seed = 0;   ///< seed the evaluator actually saw
  double total_us = 0.0;            ///< parse -> response build
};

/// Builds a {"type":"result"} payload from an evaluation outcome.
[[nodiscard]] std::string result_response(const exp::EvalResult& result,
                                          const ResponseMeta& meta);

/// Builds a {"type":"error"} payload. `has_id`/`id` echo the request's
/// token when it got far enough to parse one.
[[nodiscard]] std::string error_response(std::string_view code,
                                         std::string_view message,
                                         bool has_id = false,
                                         std::uint64_t id = 0);

/// Builds the {"type":"ok"} acknowledgement (shutdown).
[[nodiscard]] std::string ok_response(bool has_id = false,
                                      std::uint64_t id = 0);

}  // namespace expmk::serve
