#include "serve/batcher.hpp"

#include <algorithm>
#include <chrono>
#include <span>

namespace expmk::serve {

BatchExecutor::BatchExecutor(const BatchConfig& config,
                             const exp::EvaluatorRegistry& registry)
    : config_(config),
      registry_(registry),
      pool_(config.eval_threads == 0
                ? std::max<std::size_t>(
                      1, std::thread::hardware_concurrency())
                : config.eval_threads),
      flusher_([this] { flusher_loop(); }) {
  if (config_.max_batch == 0) config_.max_batch = 1;
}

BatchExecutor::~BatchExecutor() {
  {
    const std::lock_guard<std::mutex> lock(m_);
    stopping_ = true;
  }
  cv_.notify_all();
  flusher_.join();
}

void BatchExecutor::submit(
    std::shared_ptr<const scenario::Scenario> scenario,
    exp::EvalRequest request, Callback callback) {
  Pending p;
  p.scenario = std::move(scenario);
  p.request = std::move(request);
  p.callback = std::move(callback);
  depth_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(m_);
    ++stats_.submitted;
    queue_.push_back(std::move(p));
  }
  cv_.notify_one();
}

void BatchExecutor::flusher_loop() {
  std::unique_lock<std::mutex> lock(m_);
  for (;;) {
    cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;  // drained: every callback has fired
      continue;
    }
    // Batch window: flush on size, or when the OLDEST queued request has
    // aged past the deadline (a deadline per batch, not per request — a
    // light stream pays at most deadline_us of added latency).
    while (!stopping_ && queue_.size() < config_.max_batch) {
      const double age_us = queue_.front().queued_at.seconds() * 1e6;
      const double remaining_us = config_.deadline_us - age_us;
      if (remaining_us <= 0.0) break;
      cv_.wait_for(lock, std::chrono::microseconds(
                             static_cast<long long>(remaining_us) + 1));
    }
    std::vector<Pending> batch;
    const std::size_t take = std::min(queue_.size(), config_.max_batch);
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    ++stats_.flushes;
    stats_.max_batch_seen =
        std::max<std::uint64_t>(stats_.max_batch_seen, batch.size());
    lock.unlock();
    flush(std::move(batch));
    lock.lock();
  }
}

void BatchExecutor::flush(std::vector<Pending> batch) {
  // Group by scenario handle in FIRST-APPEARANCE order: stable across
  // runs (no pointer ordering), and irrelevant to results — every
  // request carries a final seed, so grouping affects only scheduling.
  std::vector<const scenario::Scenario*> group_keys;
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const scenario::Scenario* key = batch[i].scenario.get();
    std::size_t g = 0;
    for (; g < group_keys.size(); ++g) {
      if (group_keys[g] == key) break;
    }
    if (g == group_keys.size()) {
      group_keys.push_back(key);
      groups.emplace_back();
    }
    groups[g].push_back(i);
  }

  std::vector<exp::EvalRequest> requests;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    requests.clear();
    requests.reserve(groups[g].size());
    for (const std::size_t i : groups[g]) {
      requests.push_back(std::move(batch[i].request));
    }
    std::vector<exp::EvalResult> results = exp::evaluate_many(
        *group_keys[g], std::span<const exp::EvalRequest>(requests), pool_,
        registry_);
    for (std::size_t j = 0; j < groups[g].size(); ++j) {
      const std::size_t i = groups[g][j];
      batch[i].callback(std::move(results[j]));
      depth_.fetch_sub(1, std::memory_order_relaxed);
      {
        const std::lock_guard<std::mutex> lock(m_);
        ++stats_.completed;
      }
    }
  }
}

BatchStats BatchExecutor::stats() const {
  const std::lock_guard<std::mutex> lock(m_);
  return stats_;
}

}  // namespace expmk::serve
