#include "serve/protocol.hpp"

#include <string>

#include "scenario/content_hash.hpp"
#include "util/json_writer.hpp"

namespace expmk::serve {

namespace {

using util::json::Value;

[[noreturn]] void bad_request(const std::string& message) {
  throw ProtocolError("bad_request", message);
}

/// Fetches an optional u64 field; throws bad_request when present but not
/// an exact non-negative 64-bit integer.
bool get_u64(const Value& obj, std::string_view key, std::uint64_t& out) {
  const Value* v = obj.find(key);
  if (v == nullptr) return false;
  if (!v->is_u64()) {
    bad_request(std::string(key) + " must be a non-negative integer");
  }
  out = v->as_u64();
  return true;
}

bool get_double(const Value& obj, std::string_view key, double& out) {
  const Value* v = obj.find(key);
  if (v == nullptr) return false;
  if (!v->is_number()) bad_request(std::string(key) + " must be a number");
  out = v->as_double();
  return true;
}

bool get_string(const Value& obj, std::string_view key, std::string& out) {
  const Value* v = obj.find(key);
  if (v == nullptr) return false;
  if (!v->is_string()) bad_request(std::string(key) + " must be a string");
  out = v->as_string();
  return true;
}

bool get_bool(const Value& obj, std::string_view key, bool& out) {
  const Value* v = obj.find(key);
  if (v == nullptr) return false;
  if (!v->is_bool()) bad_request(std::string(key) + " must be a boolean");
  out = v->as_bool();
  return true;
}

}  // namespace

WireRequest parse_request(std::string_view payload) {
  Value root;
  try {
    root = util::json::parse(payload);
  } catch (const std::invalid_argument& e) {
    throw ProtocolError("bad_json", e.what());
  }
  if (!root.is_object()) bad_request("request payload must be an object");

  std::uint64_t version = 0;
  if (get_u64(root, "v", version) && version != 1) {
    bad_request("unsupported protocol version (expected \"v\": 1)");
  }

  WireRequest req;
  std::string type = "eval";
  get_string(root, "type", type);
  if (type == "eval") {
    req.type = WireRequest::Type::Eval;
  } else if (type == "stats") {
    req.type = WireRequest::Type::Stats;
  } else if (type == "shutdown") {
    req.type = WireRequest::Type::Shutdown;
  } else {
    bad_request("unknown request type \"" + type + "\"");
  }

  req.has_id = get_u64(root, "id", req.id);
  if (req.type != WireRequest::Type::Eval) return req;

  const bool has_graph = get_string(root, "graph", req.graph_text);
  std::string hash_hex;
  if (get_string(root, "hash", hash_hex)) {
    if (!scenario::parse_content_hash_hex(hash_hex, req.hash)) {
      bad_request("hash must be exactly 16 lowercase hex digits");
    }
    req.has_hash = true;
  }
  if (has_graph == req.has_hash) {
    bad_request("eval requires exactly one of \"graph\" or \"hash\"");
  }

  get_bool(root, "use_rates", req.use_rates);
  req.has_pfail = get_double(root, "pfail", req.pfail);
  req.has_lambda = get_double(root, "lambda", req.lambda);
  if (has_graph) {
    const int spec_count = static_cast<int>(req.use_rates) +
                           static_cast<int>(req.has_pfail) +
                           static_cast<int>(req.has_lambda);
    if (spec_count != 1) {
      bad_request(
          "eval with \"graph\" requires exactly one of \"pfail\", "
          "\"lambda\" or \"use_rates\": true");
    }
    if (req.has_pfail && !(req.pfail >= 0.0 && req.pfail < 1.0)) {
      bad_request("pfail must be in [0, 1)");
    }
    if (req.has_lambda && !(req.lambda >= 0.0)) {
      bad_request("lambda must be >= 0");
    }
  } else if (req.use_rates || req.has_pfail || req.has_lambda) {
    bad_request(
        "a by-hash eval identifies the full cell; \"pfail\", \"lambda\" "
        "and \"use_rates\" are not allowed");
  }

  std::string retry = "twostate";
  get_string(root, "retry", retry);
  if (retry == "twostate") {
    req.retry = core::RetryModel::TwoState;
  } else if (retry == "geometric") {
    req.retry = core::RetryModel::Geometric;
  } else {
    bad_request("retry must be \"twostate\" or \"geometric\"");
  }
  if (req.has_hash && root.find("retry") != nullptr) {
    bad_request(
        "a by-hash eval identifies the full cell; \"retry\" is not "
        "allowed");
  }

  get_string(root, "method", req.method);
  if (req.method.empty()) bad_request("method must not be empty");
  get_u64(root, "seed", req.seed);
  if (get_u64(root, "trials", req.trials) && req.trials == 0) {
    bad_request("trials must be >= 1");
  }
  get_u64(root, "dodin_atoms", req.dodin_atoms);
  get_u64(root, "max_atoms", req.max_atoms);
  return req;
}

std::string result_response(const exp::EvalResult& result,
                            const ResponseMeta& meta) {
  util::JsonWriter w;
  w.field("v", 1);
  w.field("type", "result");
  if (meta.has_id) w.field("id", meta.id);
  w.field("hash", scenario::content_hash_hex(meta.hash));
  w.field("cache", std::string(meta.cache));
  w.field("method_requested", std::string(meta.method_requested));
  w.field("method", std::string(meta.method_used));
  w.field("shed_level", meta.shed_level);
  w.field("degraded", meta.degraded);
  w.field("trials_requested", meta.trials_requested);
  w.field("trials", meta.trials_used);
  w.field("seed", meta.seed);
  w.field("request_index", meta.request_index);
  w.field("derived_seed", meta.derived_seed);
  w.field("supported", result.supported);
  w.field("mean", result.mean);
  w.field("mean_lo", result.mean_lo);
  w.field("mean_hi", result.mean_hi);
  w.field("std_error", result.std_error);
  w.field("censored_trials", result.censored_trials);
  if (!result.note.empty()) w.field("note", result.note);
  w.field("eval_seconds", result.seconds);
  w.field("total_us", meta.total_us);
  return w.str();
}

std::string error_response(std::string_view code, std::string_view message,
                           bool has_id, std::uint64_t id) {
  util::JsonWriter w;
  w.field("v", 1);
  w.field("type", "error");
  if (has_id) w.field("id", id);
  w.field("code", std::string(code));
  w.field("message", std::string(message));
  return w.str();
}

std::string ok_response(bool has_id, std::uint64_t id) {
  util::JsonWriter w;
  w.field("v", 1);
  w.field("type", "ok");
  if (has_id) w.field("id", id);
  return w.str();
}

}  // namespace expmk::serve
