#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "serve/protocol.hpp"

namespace expmk::serve {

TcpServer::Conn::~Conn() {
  if (fd >= 0) ::close(fd);
}

TcpServer::TcpServer(const ServerConfig& config)
    : config_(config),
      engine_(std::make_unique<ServeEngine>(config.engine)) {}

TcpServer::~TcpServer() { stop(); }

void TcpServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind: " + why);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("listen: " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = static_cast<int>(ntohs(bound.sin_port));

  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void TcpServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener closed or broken: stop accepting
    }
    auto conn = std::make_shared<Conn>(fd);
    const std::lock_guard<std::mutex> lock(conns_m_);
    if (stopping_.load(std::memory_order_acquire)) {
      // Raced with stop(): nobody will join a new thread, drop the conn.
      continue;  // ~Conn closes fd
    }
    conns_.emplace_back(conn,
                        std::thread([this, conn] { reader_loop(conn); }));
  }
}

void TcpServer::send_frame(Conn& conn, std::string_view payload) {
  std::string frame;
  try {
    frame = util::encode_frame(payload, config_.max_frame_bytes);
  } catch (const std::exception&) {
    conn.open.store(false, std::memory_order_release);
    return;  // response larger than the frame limit: drop the connection
  }
  const std::lock_guard<std::mutex> lock(conn.write_m);
  if (!conn.open.load(std::memory_order_acquire)) return;
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(conn.fd, frame.data() + sent,
                             frame.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      conn.open.store(false, std::memory_order_release);
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

void TcpServer::reader_loop(const std::shared_ptr<Conn>& conn) {
  util::FrameDecoder decoder(config_.max_frame_bytes);
  ServeEngine::Connection state;
  char buf[64 * 1024];
  std::string payload;
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // peer closed, transport error, or stop() shut us down
    }
    decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    for (;;) {
      const util::FrameDecoder::Status status = decoder.next(payload);
      if (status == util::FrameDecoder::Status::NeedMore) break;
      if (status == util::FrameDecoder::Status::Error) {
        // Unsynchronizable stream: say why, then hang up.
        send_frame(*conn, error_response("bad_frame", decoder.error()));
        conn->open.store(false, std::memory_order_release);
        ::shutdown(conn->fd, SHUT_RDWR);
        return;
      }
      // The callback may fire on the batcher's flusher thread after this
      // loop has moved on — it shares ownership of the Conn and checks
      // `open` before touching the fd.
      engine_->handle(payload, state,
                      [this, conn](std::string&& response) {
                        send_frame(*conn, response);
                      });
    }
  }
  conn->open.store(false, std::memory_order_release);
}

void TcpServer::stop() {
  if (!started_) return;
  const bool was_stopping = stopping_.exchange(true);
  if (was_stopping) return;

  // Wake the accept thread, then the readers, then join everyone.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  accept_thread_.join();
  listen_fd_ = -1;

  std::vector<std::pair<std::shared_ptr<Conn>, std::thread>> conns;
  {
    const std::lock_guard<std::mutex> lock(conns_m_);
    conns.swap(conns_);
  }
  for (auto& [conn, thread] : conns) {
    conn->open.store(false, std::memory_order_release);
    ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& [conn, thread] : conns) thread.join();
  // In-flight batches drain when engine_ (and its BatchExecutor) is
  // destroyed; their callbacks see open == false and drop the response.
}

}  // namespace expmk::serve
