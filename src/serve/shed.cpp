#include "serve/shed.hpp"

#include <algorithm>

namespace expmk::serve {

double LatencyWindow::quantile(double q) const noexcept {
  double sorted[kCapacity];
  std::size_t n;
  {
    const std::lock_guard<std::mutex> lock(m_);
    n = count_;
    std::copy(ring_, ring_ + n, sorted);
  }
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(sorted, sorted + n);
  // Nearest-rank on the sorted window: the highest sample at p99 of a
  // 512-deep ring, matching how the bench reports its percentiles.
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(n - 1) + 0.5);
  return sorted[std::min(rank, n - 1)];
}

}  // namespace expmk::serve
