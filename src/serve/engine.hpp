// serve/engine.hpp
//
// The transport-free core of the expmk serving daemon: one ServeEngine
// owns the scenario cache, the batching executor, the shed policy and the
// latency window, and maps request payloads (the JSON inside a frame) to
// response payloads. The TCP server (serve/server.hpp) is a thin shell
// that frames bytes in and out of handle(); every protocol behavior —
// caching, batching determinism, the shed ladder, typed errors — is
// testable against the engine alone (tests/test_serve.cpp).
//
// Eval flow for one request:
//   parse -> resolve scenario (content hash -> cache; inline graphs
//   compile-on-miss under singleflight, by-hash requests must hit) ->
//   admission (hard-limit reject, else the shed ladder possibly
//   substitutes a cheaper method — ALWAYS reported in the response) ->
//   derive the per-connection seed -> submit to the batcher. The response
//   callback fires on the flusher thread once the batch containing the
//   request completes.
//
// Determinism: request i on a connection evaluates under seed
// derive_seed(request seed, i) marked seed_final, so its result is a pure
// function of (cell, method, options, seed base, connection index) —
// bitwise independent of batch formation and worker-thread count. The
// derived seed is echoed in the response for standalone replay.
//
// Connection state is one counter; the caller (server, test, bench) owns
// a Connection per client stream and passes it to every handle() call.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "exp/evaluator.hpp"
#include "exp/plan.hpp"
#include "serve/batcher.hpp"
#include "serve/cache.hpp"
#include "serve/shed.hpp"

namespace expmk::serve {

struct EngineConfig {
  std::size_t cache_bytes = 256u << 20;  ///< scenario cache byte budget
  std::size_t cache_shards = 8;
  BatchConfig batch;
  ShedConfig shed;
};

/// Counters surfaced in the STATS frame (beyond cache/batch stats).
struct EngineStats {
  std::uint64_t requests = 0;       ///< eval requests admitted
  std::uint64_t shed_degraded = 0;  ///< evals with a substituted method/cap
  std::uint64_t rejected = 0;       ///< evals refused at the hard limit
  std::uint64_t errors = 0;         ///< typed error responses (non-reject)
};

class ServeEngine {
 public:
  /// Per-client-stream state: the request counter feeding the seed chain.
  struct Connection {
    std::uint64_t next_index = 0;
  };

  /// Receives exactly one response payload per handle() call. For eval
  /// requests the callback fires LATER, on the batcher's flusher thread;
  /// for everything else it fires before handle() returns.
  using ResponseFn = std::function<void(std::string&&)>;

  explicit ServeEngine(const EngineConfig& config = {},
                       const exp::EvaluatorRegistry& registry =
                           exp::EvaluatorRegistry::builtin());

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Maps one request payload to one response payload (see ResponseFn for
  /// when it fires). Never throws on bad input — protocol failures become
  /// typed error responses.
  void handle(std::string_view payload, Connection& conn,
              ResponseFn respond);

  /// Convenience for tests and simple clients: blocks until the response
  /// is ready.
  [[nodiscard]] std::string handle_sync(std::string_view payload,
                                        Connection& conn);

  // ----------------------------------------------------------- shutdown
  /// True once a shutdown frame was accepted.
  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }
  /// Blocks until a shutdown frame arrives.
  void wait_shutdown();

  // -------------------------------------------------------- observability
  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] BatchStats batch_stats() const { return batcher_.stats(); }
  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return batcher_.queue_depth();
  }
  [[nodiscard]] const EngineConfig& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] std::string stats_payload() const;

  EngineConfig config_;
  const exp::EvaluatorRegistry& registry_;
  ScenarioCache cache_;
  ShedPolicy shed_;
  /// The query planner behind the shed policy's cost-deadline decisions.
  /// Its EWMA stays ON: every completed evaluation feeds
  /// predicted-vs-actual back in (the response callback), so the shed's
  /// cost predictions self-tune to this host under real traffic.
  exp::Planner planner_;
  LatencyWindow latency_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> shed_degraded_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> errors_{0};

  std::atomic<bool> shutdown_{false};
  std::mutex shutdown_m_;
  std::condition_variable shutdown_cv_;

  BatchExecutor batcher_;  // last: its destructor drains callbacks that
                           // touch latency_ and the counters above
};

}  // namespace expmk::serve
