#include "serve/engine.hpp"

#include <exception>
#include <memory>
#include <utility>

#include "exp/evaluate_many.hpp"
#include "exp/seeds.hpp"
#include "graph/serialize.hpp"
#include "scenario/content_hash.hpp"
#include "serve/protocol.hpp"
#include "util/json_writer.hpp"
#include "util/timer.hpp"

namespace expmk::serve {

namespace {

std::string_view outcome_name(ScenarioCache::Outcome outcome) {
  switch (outcome) {
    case ScenarioCache::Outcome::Hit:
      return "hit";
    case ScenarioCache::Outcome::Miss:
      return "miss";
    case ScenarioCache::Outcome::Patched:
      return "patched";
    case ScenarioCache::Outcome::Coalesced:
      return "coalesced";
    case ScenarioCache::Outcome::Absent:
      return "absent";
  }
  return "unknown";
}

}  // namespace

ServeEngine::ServeEngine(const EngineConfig& config,
                         const exp::EvaluatorRegistry& registry)
    : config_(config),
      registry_(registry),
      cache_(config.cache_bytes, config.cache_shards),
      shed_(config.shed),
      planner_(exp::Planner::Config{}, registry),
      batcher_(config.batch, registry) {}

void ServeEngine::wait_shutdown() {
  std::unique_lock<std::mutex> lock(shutdown_m_);
  shutdown_cv_.wait(lock, [&] {
    return shutdown_.load(std::memory_order_acquire);
  });
}

EngineStats ServeEngine::stats() const {
  EngineStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.shed_degraded = shed_degraded_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  return s;
}

std::string ServeEngine::stats_payload() const {
  const EngineStats es = stats();
  const CacheStats cs = cache_.stats();
  const BatchStats bs = batcher_.stats();

  util::JsonWriter cache;
  cache.field("hits", cs.hits);
  cache.field("misses", cs.misses);
  cache.field("coalesced", cs.coalesced);
  cache.field("compiles", cs.compiles);
  cache.field("patched", cs.patched);
  cache.field("evictions", cs.evictions);
  cache.field("entries", cs.entries);
  cache.field("bytes", cs.bytes);

  util::JsonWriter batch;
  batch.field("submitted", bs.submitted);
  batch.field("completed", bs.completed);
  batch.field("flushes", bs.flushes);
  batch.field("max_batch_seen", bs.max_batch_seen);

  util::JsonWriter w;
  w.field("v", 1);
  w.field("type", "stats");
  w.field("requests", es.requests);
  w.field("shed_degraded", es.shed_degraded);
  w.field("rejected", es.rejected);
  w.field("errors", es.errors);
  w.field("queue_depth", batcher_.queue_depth());
  w.field("p50_us", latency_.quantile(0.50));
  w.field("p99_us", latency_.quantile(0.99));
  w.object("cache", cache);
  w.object("batch", batch);
  return w.str();
}

void ServeEngine::handle(std::string_view payload, Connection& conn,
                         ResponseFn respond) {
  util::Timer total;
  WireRequest req;
  try {
    req = parse_request(payload);
  } catch (const ProtocolError& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    respond(error_response(e.code(), e.what()));
    return;
  }

  if (req.type == WireRequest::Type::Stats) {
    respond(stats_payload());
    return;
  }
  if (req.type == WireRequest::Type::Shutdown) {
    respond(ok_response(req.has_id, req.id));
    {
      const std::lock_guard<std::mutex> lock(shutdown_m_);
      shutdown_.store(true, std::memory_order_release);
    }
    shutdown_cv_.notify_all();
    return;
  }

  // ---- eval: resolve the scenario through the content-hash cache ------
  std::shared_ptr<const scenario::Scenario> sc;
  std::uint64_t hash = 0;
  ScenarioCache::Outcome outcome = ScenarioCache::Outcome::Absent;
  try {
    if (req.has_hash) {
      hash = req.hash;
      sc = cache_.lookup(hash, &outcome);
      if (sc == nullptr) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        respond(error_response(
            "not_found",
            "no cached scenario for hash " +
                scenario::content_hash_hex(hash) +
                " (send the graph inline once to populate it)",
            req.has_id, req.id));
        return;
      }
    } else {
      graph::TaskGraphFile file;
      try {
        file = graph::taskgraph_file_from_string(req.graph_text);
      } catch (const std::exception& e) {
        throw ProtocolError("bad_graph", e.what());
      }
      scenario::FailureSpec spec;
      if (req.use_rates) {
        if (!file.has_rates()) {
          throw ProtocolError(
              "bad_graph",
              "\"use_rates\" requires a version-2 graph with per-task "
              "rates");
        }
        spec = scenario::FailureSpec::per_task(file.rates);
      } else if (req.has_lambda) {
        spec = scenario::FailureSpec::uniform(req.lambda);
      } else {
        try {
          spec = scenario::FailureSpec(
              core::calibrate(file.dag, req.pfail));
        } catch (const std::exception& e) {
          throw ProtocolError("bad_graph", e.what());
        }
      }
      hash = scenario::content_hash(file.dag, spec, req.retry);
      const std::uint64_t skey = scenario::structure_hash(file.dag, req.retry);
      try {
        sc = cache_.get_or_compile(
            hash, skey,
            [&](const scenario::Scenario& sibling)
                -> ScenarioCache::ScenarioPtr {
              // Same structure, different FailureSpec: re-derive only the
              // rate-dependent planes (bit-identical to a fresh compile —
              // the Scenario::with_failure contract).
              return std::make_shared<const scenario::Scenario>(
                  sibling.with_failure(spec));
            },
            [&]() -> ScenarioCache::ScenarioPtr {
              return std::make_shared<const scenario::Scenario>(
                  scenario::Scenario::compile(file.dag, spec, req.retry));
            },
            &outcome);
      } catch (const std::exception& e) {
        throw ProtocolError("bad_graph", e.what());
      }
    }
  } catch (const ProtocolError& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    respond(error_response(e.code(), e.what(), req.has_id, req.id));
    return;
  }

  if (registry_.find(req.method) == nullptr) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    respond(error_response("unknown_method",
                           "no evaluator named \"" + req.method + "\"",
                           req.has_id, req.id));
    return;
  }

  // ---- admission: hard-limit reject, else the degrade ladder ----------
  const std::size_t depth = batcher_.queue_depth();
  if (shed_.reject(depth)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    respond(error_response(
        "overloaded",
        "queue depth " + std::to_string(depth) + " is at the hard limit",
        req.has_id, req.id));
    return;
  }
  const int level = shed_.level(depth, latency_.quantile(0.99));
  // The planner degrades by PREDICTED COST against the level's deadline
  // (see serve/shed.hpp): features come from the cached scenario (its
  // SP-tree feature is a lazily-computed shared member, so repeat
  // requests pay nothing), the knob hint is whichever atom budget the
  // requested method reads.
  const exp::CostFeatures features = exp::plan_features(*sc);
  const std::size_t atoms_hint =
      req.method.find("dodin") != std::string::npos
          ? static_cast<std::size_t>(req.dodin_atoms)
          : static_cast<std::size_t>(req.max_atoms);
  const ShedDecision decision = shed_.degrade(
      level, req.method, req.trials, atoms_hint, features, planner_);
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (decision.degraded) {
    shed_degraded_.fetch_add(1, std::memory_order_relaxed);
  }

  // ---- per-connection deterministic seed chain ------------------------
  const std::uint64_t request_index = conn.next_index++;
  const std::uint64_t derived_seed = exp::derive_seed(req.seed, request_index);

  exp::EvalRequest eval;
  eval.method = std::string(decision.method);
  eval.options.mc_trials = decision.mc_trials;
  eval.options.seed = derived_seed;
  eval.options.dodin_atoms = static_cast<std::size_t>(req.dodin_atoms);
  eval.options.sp_max_atoms = static_cast<std::size_t>(req.max_atoms);
  eval.seed_final = true;  // the chain above IS the derivation

  // Callback state (copied into the std::function): everything the
  // response needs, with owned strings — `req` dies when handle returns.
  struct Ctx {
    bool has_id;
    std::uint64_t id;
    std::uint64_t hash;
    std::string cache;
    std::string method_requested;
    std::string method_used;
    int shed_level;
    bool degraded;
    std::uint64_t trials_requested;
    std::uint64_t trials_used;
    std::uint64_t seed;
    std::uint64_t request_index;
    std::uint64_t derived_seed;
    /// EWMA feedback: the cost model's prediction for the method that
    /// actually ran, folded back in when its measured time arrives.
    exp::PlanMethod plan_method;
    double predicted_us;
    util::Timer total;
  };
  auto ctx = std::make_shared<Ctx>();
  ctx->has_id = req.has_id;
  ctx->id = req.id;
  ctx->hash = hash;
  ctx->cache = std::string(outcome_name(outcome));
  ctx->method_requested = req.method;
  ctx->method_used = eval.method;
  ctx->shed_level = decision.level;
  ctx->degraded = decision.degraded;
  ctx->trials_requested = req.trials;
  ctx->trials_used = decision.mc_trials;
  ctx->seed = req.seed;
  ctx->request_index = request_index;
  ctx->derived_seed = derived_seed;
  ctx->plan_method = exp::plan_method_from_name(decision.method);
  ctx->predicted_us = planner_.model().predict_us(
      ctx->plan_method, features, atoms_hint, decision.mc_trials);
  ctx->total = total;

  batcher_.submit(
      std::move(sc), std::move(eval),
      [this, ctx, respond = std::move(respond)](
          exp::EvalResult&& result) mutable {
        ResponseMeta meta;
        meta.has_id = ctx->has_id;
        meta.id = ctx->id;
        meta.hash = ctx->hash;
        meta.cache = ctx->cache;
        meta.method_requested = ctx->method_requested;
        meta.method_used = ctx->method_used;
        meta.shed_level = ctx->shed_level;
        meta.degraded = ctx->degraded;
        meta.trials_requested = ctx->trials_requested;
        meta.trials_used = ctx->trials_used;
        meta.seed = ctx->seed;
        meta.request_index = ctx->request_index;
        meta.derived_seed = ctx->derived_seed;
        meta.total_us = ctx->total.seconds() * 1e6;
        latency_.record(meta.total_us);
        // Close the loop: predicted vs measured evaluation cost tunes
        // the planner's per-method EWMA correction for this host.
        if (ctx->plan_method != exp::PlanMethod::kCount &&
            result.supported) {
          planner_.model().observe(ctx->plan_method, ctx->predicted_us,
                                   result.seconds * 1e6);
        }
        respond(result_response(result, meta));
      });
}

std::string ServeEngine::handle_sync(std::string_view payload,
                                     Connection& conn) {
  // The callback may run on the batch flusher thread, which can still be
  // inside notify_one() when the waiter observes done and returns — so
  // the synchronization state must outlive BOTH sides. Each side holds a
  // shared_ptr; whoever finishes last destroys the condvar.
  struct SyncState {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    std::string out;
  };
  const auto state = std::make_shared<SyncState>();
  handle(payload, conn, [state](std::string&& response) {
    {
      const std::lock_guard<std::mutex> lock(state->m);
      state->out = std::move(response);
      state->done = true;
    }
    state->cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(state->m);
  state->cv.wait(lock, [&] { return state->done; });
  std::string out = std::move(state->out);
  lock.unlock();
  return out;
}

}  // namespace expmk::serve
