// serve/batcher.hpp
//
// The batching executor between the wire and `exp::evaluate_many`.
// Requests accumulate in a queue and are flushed onto the evaluation
// pool when EITHER the batch reaches `max_batch` requests OR the oldest
// queued request has waited `deadline_us` — classic size-or-deadline
// batching: full batches amortize the fan-out under load, the deadline
// bounds added latency when traffic is light.
//
// Determinism contract: every submitted request carries a FINAL seed
// (exp::EvalRequest::seed_final — the engine derives it from the
// per-connection chain derive_seed(request seed, connection index)
// BEFORE submission), so a request's result is a pure function of
// (scenario, method, options) — bitwise independent of which flush it
// landed in, its position within the flush, and the worker thread count
// (tests/test_serve.cpp pins batch sizes {1, 8, 64} x threads {1, 2, 7}).
//
// One flush may contain requests against different scenarios: the flush
// groups them by scenario handle in first-appearance order (stable, no
// pointer ordering) and runs one evaluate_many per group on the shared
// persistent thread pool — the exp-layer hookup that avoids thread
// create/join per flush.
//
// Completion is callback-based (the server writes the response frame
// from the callback); callbacks run on the flusher thread, in batch
// order. queue_depth() counts submitted-but-not-completed requests —
// the load-shedding pressure signal.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exp/evaluate_many.hpp"
#include "exp/evaluator.hpp"
#include "scenario/scenario.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace expmk::serve {

struct BatchConfig {
  std::size_t max_batch = 64;     ///< flush at this many queued requests
  double deadline_us = 250.0;     ///< ... or when the oldest waited this long
  std::size_t eval_threads = 0;   ///< evaluation pool size (0 = hardware)
};

/// Counters exposed through the STATS frame.
struct BatchStats {
  std::uint64_t submitted = 0;      ///< requests accepted
  std::uint64_t completed = 0;      ///< callbacks fired
  std::uint64_t flushes = 0;        ///< batches executed
  std::uint64_t max_batch_seen = 0; ///< largest single flush
};

/// Size-or-deadline batcher over a persistent evaluation thread pool.
/// submit() is thread-safe; the destructor drains every queued request
/// (callbacks still fire) before joining.
class BatchExecutor {
 public:
  using Callback = std::function<void(exp::EvalResult&&)>;

  explicit BatchExecutor(
      const BatchConfig& config,
      const exp::EvaluatorRegistry& registry =
          exp::EvaluatorRegistry::builtin());
  ~BatchExecutor();

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  /// Enqueues one request. `request.seed_final` should be true (see the
  /// file comment); `callback` fires exactly once, on the flusher
  /// thread. The scenario handle is shared until the callback returns.
  void submit(std::shared_ptr<const scenario::Scenario> scenario,
              exp::EvalRequest request, Callback callback);

  /// Submitted-but-not-completed requests (queued + in the current
  /// flush) — the shed policy's queue-depth signal.
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return depth_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] BatchStats stats() const;

  [[nodiscard]] const BatchConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Pending {
    std::shared_ptr<const scenario::Scenario> scenario;
    exp::EvalRequest request;
    Callback callback;
    util::Timer queued_at;  // age drives the deadline flush
  };

  void flusher_loop();
  void flush(std::vector<Pending> batch);

  BatchConfig config_;
  const exp::EvaluatorRegistry& registry_;
  util::ThreadPool pool_;

  mutable std::mutex m_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  std::atomic<std::size_t> depth_{0};

  BatchStats stats_;
  std::thread flusher_;  // last member: joins while the rest is alive
};

}  // namespace expmk::serve
