#include "serve/cache.hpp"

#include <algorithm>

namespace expmk::serve {

std::size_t scenario_footprint_bytes(
    const scenario::Scenario& sc) noexcept {
  const std::size_t tasks = sc.task_count();
  const std::size_t edges = sc.dag().edge_count();
  // Per task: 7 cached double planes + exits/topo/orders (~4 u32 planes)
  // + the Dag copy's name, weight and adjacency bookkeeping (~96 bytes
  // amortized). Per edge: forward + reverse adjacency slots in the Dag
  // and the CSR index plane. Plus a fixed overhead for the object
  // shells. An estimate, not an audit — see the file comment.
  return tasks * (7 * sizeof(double) + 4 * sizeof(std::uint32_t) + 96) +
         edges * 3 * sizeof(std::uint32_t) + 1024;
}

ScenarioCache::ScenarioCache(std::size_t byte_budget, std::size_t shards)
    : per_shard_budget_(byte_budget / std::max<std::size_t>(1, shards)),
      shards_(std::max<std::size_t>(1, shards)) {}

void ScenarioCache::insert_locked(Shard& s, std::uint64_t key,
                                  ScenarioPtr sc) {
  const auto found = s.entries.find(key);
  if (found != s.entries.end()) {
    // A racing caller landed the same key first (possible when an entry
    // was evicted between ticket creation and re-insert); keep theirs.
    return;
  }
  s.lru.push_front(key);
  Entry e;
  e.bytes = scenario_footprint_bytes(*sc);
  e.scenario = std::move(sc);
  e.lru_pos = s.lru.begin();
  s.bytes += e.bytes;
  s.entries.emplace(key, std::move(e));
  // Evict from the LRU tail past the shard budget — but never the entry
  // just inserted: a scenario bigger than the whole budget must still
  // serve the request that compiled it.
  while (s.bytes > per_shard_budget_ && s.entries.size() > 1) {
    const std::uint64_t victim = s.lru.back();
    const auto it = s.entries.find(victim);
    s.bytes -= it->second.bytes;
    s.entries.erase(it);
    s.lru.pop_back();
    ++s.evictions;
  }
}

ScenarioCache::ScenarioPtr ScenarioCache::peek(std::uint64_t key) {
  Shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.m);
  const auto found = s.entries.find(key);
  return found == s.entries.end() ? nullptr : found->second.scenario;
}

ScenarioCache::ScenarioPtr ScenarioCache::get_or_compile(
    std::uint64_t key, const CompileFn& compile, Outcome* outcome) {
  return get_or_compile(key, 0, nullptr, compile, outcome);
}

ScenarioCache::ScenarioPtr ScenarioCache::get_or_compile(
    std::uint64_t key, std::uint64_t structure_key, const PatchFn& patch,
    const CompileFn& compile, Outcome* outcome) {
  Shard& s = shard_for(key);
  std::shared_ptr<InFlight> ticket;
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock(s.m);
    const auto found = s.entries.find(key);
    if (found != s.entries.end()) {
      // Touch: move to the LRU front.
      s.lru.splice(s.lru.begin(), s.lru, found->second.lru_pos);
      ++s.hits;
      if (outcome != nullptr) *outcome = Outcome::Hit;
      return found->second.scenario;
    }
    const auto flying = s.inflight.find(key);
    if (flying != s.inflight.end()) {
      ticket = flying->second;
      ++s.coalesced;
    } else {
      ticket = std::make_shared<InFlight>();
      s.inflight.emplace(key, ticket);
      owner = true;
      ++s.misses;
    }
  }

  if (!owner) {
    // Singleflight wait: share the owner's result or exception.
    std::unique_lock<std::mutex> lock(ticket->m);
    ticket->cv.wait(lock, [&] { return ticket->done; });
    if (outcome != nullptr) *outcome = Outcome::Coalesced;
    if (ticket->error) std::rethrow_exception(ticket->error);
    return ticket->result;
  }

  // Owner path: compile OUTSIDE the shard lock (a compile is the ~20x
  // expensive operation the cache exists to amortize; holding the lock
  // would serialize unrelated keys in this shard behind it). When a
  // same-structure sibling is cached, patch it instead — with_failure
  // shares every structural cache and re-derives only the rate planes.
  ScenarioPtr sc;
  std::exception_ptr error;
  bool was_patch = false;
  if (patch != nullptr) {
    ScenarioPtr sibling;
    {
      std::uint64_t sibling_key = 0;
      {
        const std::lock_guard<std::mutex> lock(structure_m_);
        const auto it = structure_index_.find(structure_key);
        if (it != structure_index_.end()) sibling_key = it->second;
      }
      if (sibling_key != 0 && sibling_key != key) {
        sibling = peek(sibling_key);
      }
    }
    if (sibling != nullptr) {
      try {
        sc = patch(*sibling);
        was_patch = sc != nullptr;
      } catch (...) {
        sc = nullptr;  // fall through to the full compile
      }
    }
  }
  if (sc == nullptr) {
    try {
      sc = compile();
      if (sc == nullptr) {
        throw std::logic_error(
            "ScenarioCache: compile callback returned null");
      }
    } catch (...) {
      error = std::current_exception();
    }
  }

  {
    const std::lock_guard<std::mutex> lock(s.m);
    if (error == nullptr) {
      insert_locked(s, key, sc);
      if (was_patch) {
        ++s.patched;
      } else {
        ++s.compiles;
      }
    }
    // A failed compile is NOT cached: drop the ticket so the next
    // request retries (the failure may have been transient input).
    s.inflight.erase(key);
  }
  if (error == nullptr && patch != nullptr) {
    const std::lock_guard<std::mutex> lock(structure_m_);
    structure_index_[structure_key] = key;
  }
  {
    const std::lock_guard<std::mutex> lock(ticket->m);
    ticket->result = sc;
    ticket->error = error;
    ticket->done = true;
  }
  ticket->cv.notify_all();

  if (outcome != nullptr) *outcome = was_patch ? Outcome::Patched
                                               : Outcome::Miss;
  if (error) std::rethrow_exception(error);
  return sc;
}

ScenarioCache::ScenarioPtr ScenarioCache::lookup(std::uint64_t key,
                                                 Outcome* outcome) {
  Shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.m);
  const auto found = s.entries.find(key);
  if (found == s.entries.end()) {
    ++s.misses;
    if (outcome != nullptr) *outcome = Outcome::Absent;
    return nullptr;
  }
  s.lru.splice(s.lru.begin(), s.lru, found->second.lru_pos);
  ++s.hits;
  if (outcome != nullptr) *outcome = Outcome::Hit;
  return found->second.scenario;
}

CacheStats ScenarioCache::stats() const {
  CacheStats out;
  for (const Shard& s : shards_) {
    const std::lock_guard<std::mutex> lock(s.m);
    out.hits += s.hits;
    out.misses += s.misses;
    out.coalesced += s.coalesced;
    out.compiles += s.compiles;
    out.patched += s.patched;
    out.evictions += s.evictions;
    out.entries += s.entries.size();
    out.bytes += s.bytes;
  }
  return out;
}

}  // namespace expmk::serve
