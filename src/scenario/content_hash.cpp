#include "scenario/content_hash.hpp"

#include <bit>

#include "graph/serialize.hpp"

namespace expmk::scenario {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

EXPMK_NOALLOC std::uint64_t fnv_byte(std::uint64_t h,
                                     unsigned char b) noexcept {
  return (h ^ b) * kFnvPrime;
}

EXPMK_NOALLOC std::uint64_t fnv_bytes(std::uint64_t h, const char* data,
                                      std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    h = fnv_byte(h, static_cast<unsigned char>(data[i]));
  }
  return h;
}

EXPMK_NOALLOC std::uint64_t fnv_u64(std::uint64_t h,
                                    std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h = fnv_byte(h, static_cast<unsigned char>(v >> (8 * i)));
  }
  return h;
}

EXPMK_NOALLOC std::uint64_t fnv_double(std::uint64_t h, double v) noexcept {
  return fnv_u64(h, std::bit_cast<std::uint64_t>(v));
}

/// splitmix64 finalizer (same mix as prob::SplitMix64::next applies to
/// its advanced state): spreads the FNV state into the top bits the
/// serve cache shards on.
EXPMK_NOALLOC std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::string_view kVersionTag = "expmk-content-hash-v1";
constexpr std::string_view kStructureTag = "expmk-structure-hash-v1";

}  // namespace

std::uint64_t content_hash(std::string_view dag_bytes,
                           const FailureSpec& failure,
                           core::RetryModel retry) {
  std::uint64_t h = kFnvOffset;
  h = fnv_bytes(h, kVersionTag.data(), kVersionTag.size());
  h = fnv_bytes(h, dag_bytes.data(), dag_bytes.size());
  if (failure.heterogeneous()) {
    h = fnv_byte(h, 'H');
    const auto& rates = failure.per_task_rates();
    h = fnv_u64(h, static_cast<std::uint64_t>(rates.size()));
    for (const double r : rates) h = fnv_double(h, r);
  } else {
    h = fnv_byte(h, 'U');
    h = fnv_double(h, failure.uniform_lambda());
  }
  h = fnv_byte(h, retry == core::RetryModel::Geometric ? 'G' : 'T');
  return mix64(h);
}

std::uint64_t content_hash(const graph::Dag& dag, const FailureSpec& failure,
                           core::RetryModel retry) {
  // Canonical bytes: the serializer's id-ordered output, carrying rates
  // exactly when the spec is heterogeneous (a uniform spec must hash the
  // same whether the client's file happened to be version 1 or 2).
  const std::string bytes =
      failure.heterogeneous()
          ? graph::to_taskgraph(dag, failure.per_task_rates())
          : graph::to_taskgraph(dag);
  return content_hash(bytes, failure, retry);
}

std::uint64_t structure_hash(const graph::Dag& dag, core::RetryModel retry) {
  // Rates deliberately excluded: two cells that differ ONLY in their
  // FailureSpec share a structure key, which is exactly the sibling
  // relation Scenario::with_failure can bridge without a full compile.
  const std::string bytes = graph::to_taskgraph(dag);
  std::uint64_t h = kFnvOffset;
  h = fnv_bytes(h, kStructureTag.data(), kStructureTag.size());
  h = fnv_bytes(h, bytes.data(), bytes.size());
  h = fnv_byte(h, retry == core::RetryModel::Geometric ? 'G' : 'T');
  return mix64(h);
}

std::string content_hash_hex(std::uint64_t hash) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

bool parse_content_hash_hex(std::string_view hex, std::uint64_t& out) noexcept {
  if (hex.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : hex) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  out = v;
  return true;
}

}  // namespace expmk::scenario
