// scenario/scenario.hpp
//
// The compile-once evaluation handle. The paper's protocol — and every
// serving workload built on this library — evaluates MANY methods on the
// SAME (DAG, failure-rate, retry-model) cell. Before this layer existed,
// each of the 13 evaluators re-derived the per-cell state on every call:
// the CSR view, a topological order, the per-task e^{-lambda a_i}
// constants, the geometric-sampler log1p inverses, the mean weight and the
// failure-free critical path. `Scenario` hoists all of that into a single
// immutable object built once by `Scenario::compile(dag, FailureSpec,
// RetryModel)` and then shared — by const reference, across threads, for
// the lifetime of the cell — by every estimator entry point in the
// library (core::, mc::, normal::, sp::, sched::, exp::).
//
// `FailureSpec` is the second half of the redesign: the silent-error rate
// is either the classic uniform lambda (core::FailureModel, Section III of
// the paper) or a per-task rate vector — the heterogeneous-error input
// that the scheduling-under-uncertainty literature (Malewicz; Lin &
// Rajaraman) treats as primary. All cached constants are per-task anyway
// (p_i = e^{-lambda_i a_i}), so most estimators handle heterogeneity for
// free; the few that cannot declare it via exp::Capabilities and are gated
// with supported == false, never a crash.
//
// Contract:
//  * Immutability. A compiled Scenario never changes; every accessor is
//    const and returns views into storage owned by the Scenario. It is
//    safe to share one instance across any number of threads without
//    synchronization (the MC engines do exactly that).
//  * Lifetime. Views (spans, mc::TrialContext instances built from a
//    scenario) must not outlive the Scenario. The Scenario owns a private
//    COPY of the Dag, so the caller's graph may die after compile().
//  * Move-only. A Scenario is a handle, not a value: copying one would
//    silently duplicate O(V + E) state, so copies are deleted. Wrap it in
//    a shared_ptr<const Scenario> to share ownership.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/failure_model.hpp"
#include "graph/csr.hpp"
#include "graph/dag.hpp"

namespace expmk::scenario {

/// The failure-rate input of a scenario: either one uniform exponential
/// rate for every task (the paper's model) or an explicit per-task rate
/// vector (heterogeneous silent errors). Validation of the rates against
/// a concrete DAG happens in Scenario::compile.
class FailureSpec {
 public:
  /// Uniform, failure-free (lambda == 0).
  FailureSpec() = default;

  /// Uniform rate taken from the classic model (implicit on purpose:
  /// every legacy `(Dag&, FailureModel)` call site forwards through this).
  FailureSpec(const core::FailureModel& model) : lambda_(model.lambda) {}

  /// Uniform rate `lambda` (errors per second of execution).
  [[nodiscard]] static FailureSpec uniform(double lambda) {
    return FailureSpec(core::FailureModel{lambda});
  }

  /// Heterogeneous per-task rates; rates[i] is task i's lambda_i. The
  /// vector size must match the DAG handed to Scenario::compile.
  [[nodiscard]] static FailureSpec per_task(std::vector<double> rates);

  [[nodiscard]] bool heterogeneous() const noexcept {
    return !rates_.empty();
  }

  /// The uniform rate; throws std::logic_error when heterogeneous —
  /// callers must check heterogeneous() (or use Scenario::rates(), which
  /// is always valid).
  [[nodiscard]] double uniform_lambda() const;

  /// The uniform rate as the classic model (same throwing contract).
  [[nodiscard]] core::FailureModel uniform_model() const {
    return core::FailureModel{uniform_lambda()};
  }

  /// Per-task vector; empty when uniform.
  [[nodiscard]] const std::vector<double>& per_task_rates() const noexcept {
    return rates_;
  }

 private:
  double lambda_ = 0.0;
  std::vector<double> rates_;
};

/// Immutable compile-once handle: one (DAG, failure rates, retry model)
/// cell plus everything every estimator would otherwise re-derive per
/// call. See the file comment for the immutability/lifetime contract.
class Scenario {
 public:
  /// Builds the handle; O(V + E) plus one exp/log1p pair per task — paid
  /// exactly once per cell instead of once per evaluator call. Throws
  /// std::invalid_argument on a cyclic graph, a rate-vector size mismatch,
  /// a negative/non-finite rate, or a negative/non-finite task weight
  /// (Dag::add_task rejects negatives but NaN/inf slip through its
  /// comparison — compile is the choke point every evaluator passes, so a
  /// poisoned weight fails HERE instead of silently corrupting every
  /// estimate downstream).
  [[nodiscard]] static Scenario compile(
      const graph::Dag& dag, FailureSpec failure,
      core::RetryModel retry = core::RetryModel::TwoState);

  /// Convenience: Section V-C calibration (pfail on the mean task weight)
  /// straight to a compiled scenario.
  [[nodiscard]] static Scenario calibrated(
      const graph::Dag& dag, double pfail,
      core::RetryModel retry = core::RetryModel::TwoState);

  Scenario(Scenario&&) noexcept = default;
  Scenario& operator=(Scenario&&) noexcept = default;
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Total Scenario::compile calls in this process — the metrics hook the
  /// compile-once contract is pinned with (tests/test_scenario.cpp asserts
  /// a sweep row compiles one scenario per cell; bench_scenario reports
  /// the per-call vs compiled delta).
  [[nodiscard]] static std::uint64_t compiled_count() noexcept;

  // ------------------------------------------------------------ identity
  [[nodiscard]] const graph::Dag& dag() const noexcept { return dag_; }
  [[nodiscard]] const graph::CsrDag& csr() const noexcept { return csr_; }
  [[nodiscard]] std::size_t task_count() const noexcept {
    return dag_.task_count();
  }
  [[nodiscard]] core::RetryModel retry() const noexcept { return retry_; }
  [[nodiscard]] const FailureSpec& failure() const noexcept {
    return failure_;
  }
  [[nodiscard]] bool heterogeneous() const noexcept {
    return failure_.heterogeneous();
  }
  /// True when no task can ever fail (all rates are zero).
  [[nodiscard]] bool failure_free() const noexcept { return failure_free_; }
  /// Uniform-lambda view; throws std::logic_error when heterogeneous.
  [[nodiscard]] core::FailureModel uniform_model() const {
    return failure_.uniform_model();
  }

  /// A topological order of the Dag (== csr().order()).
  [[nodiscard]] std::span<const graph::TaskId> topo() const noexcept {
    return csr_.order();
  }

  /// Tasks with no successor, ascending Dag id — a cached copy of
  /// Dag::exit_tasks(), which allocates per call. The Normal-family
  /// folds read this on every evaluation; caching it here is what lets
  /// those kernels run allocation-free.
  [[nodiscard]] std::span<const graph::TaskId> exits() const noexcept {
    return exits_;
  }

  // ------------------------------------------- cached per-task constants
  // "Dag id order" = indexed by TaskId; "position order" = indexed by CSR
  // position (csr().order() translates). All spans have task_count()
  // entries.

  /// lambda_i in Dag id order (filled with the uniform rate when uniform).
  [[nodiscard]] std::span<const double> rates() const noexcept {
    return rates_;
  }
  /// e^{-lambda_i a_i} in Dag id order.
  [[nodiscard]] std::span<const double> p_success() const noexcept {
    return p_success_;
  }
  /// Expected task duration under the scenario's retry model, Dag id
  /// order: TwoState a_i (2 - p_i); Geometric a_i e^{lambda_i a_i}.
  [[nodiscard]] std::span<const double> expected_durations() const noexcept {
    return expected_durations_;
  }

  /// Task weights in position order (== csr().weights()).
  [[nodiscard]] std::span<const double> weights_csr() const noexcept {
    return csr_.weights();
  }
  /// lambda_i in position order.
  [[nodiscard]] std::span<const double> rates_csr() const noexcept {
    return rates_csr_;
  }
  /// e^{-lambda_i a_i} in position order.
  [[nodiscard]] std::span<const double> p_success_csr() const noexcept {
    return p_success_csr_;
  }
  /// 1 - p_i in position order — the sampler's fast-path threshold.
  [[nodiscard]] std::span<const double> q_fail_csr() const noexcept {
    return q_fail_csr_;
  }
  /// 1 / log1p(-p_i) in position order — the geometric-sampler inversion
  /// constant (only meaningful where q_fail > 0; see mc/trial.hpp).
  [[nodiscard]] std::span<const double> inv_log_q_csr() const noexcept {
    return inv_log_q_csr_;
  }

  // ------------------------------------------------------ cached scalars
  /// d(G): the failure-free critical-path length.
  [[nodiscard]] double critical_path() const noexcept {
    return critical_path_;
  }
  /// Mean task weight a-bar (the calibration denominator).
  [[nodiscard]] double mean_weight() const noexcept { return mean_weight_; }
  /// A = sum_i a_i.
  [[nodiscard]] double total_weight() const noexcept {
    return total_weight_;
  }

 private:
  Scenario(graph::Dag dag, FailureSpec failure, core::RetryModel retry);

  graph::Dag dag_;
  graph::CsrDag csr_;  // depends on dag_: declaration order matters
  FailureSpec failure_;
  core::RetryModel retry_ = core::RetryModel::TwoState;
  bool failure_free_ = true;

  std::vector<graph::TaskId> exits_;        // ascending Dag id
  std::vector<double> rates_;               // Dag id order
  std::vector<double> p_success_;           // Dag id order
  std::vector<double> expected_durations_;  // Dag id order
  std::vector<double> rates_csr_;           // position order
  std::vector<double> p_success_csr_;       // position order
  std::vector<double> q_fail_csr_;          // position order
  std::vector<double> inv_log_q_csr_;       // position order

  double critical_path_ = 0.0;
  double mean_weight_ = 0.0;
  double total_weight_ = 0.0;
};

}  // namespace expmk::scenario
