// scenario/scenario.hpp
//
// The compile-once evaluation handle. The paper's protocol — and every
// serving workload built on this library — evaluates MANY methods on the
// SAME (DAG, failure-rate, retry-model) cell. Before this layer existed,
// each of the 13 evaluators re-derived the per-cell state on every call:
// the CSR view, a topological order, the per-task e^{-lambda a_i}
// constants, the geometric-sampler log1p inverses, the mean weight and the
// failure-free critical path. `Scenario` hoists all of that into a single
// immutable object built once by `Scenario::compile(dag, FailureSpec,
// RetryModel)` and then shared — by const reference, across threads, for
// the lifetime of the cell — by every estimator entry point in the
// library (core::, mc::, normal::, sp::, sched::, exp::).
//
// `FailureSpec` is the second half of the redesign: the silent-error rate
// is either the classic uniform lambda (core::FailureModel, Section III of
// the paper) or a per-task rate vector — the heterogeneous-error input
// that the scheduling-under-uncertainty literature (Malewicz; Lin &
// Rajaraman) treats as primary. All cached constants are per-task anyway
// (p_i = e^{-lambda_i a_i}), so most estimators handle heterogeneity for
// free; the few that cannot declare it via exp::Capabilities and are gated
// with supported == false, never a crash.
//
// Contract:
//  * Immutability. A compiled Scenario never changes; every accessor is
//    const and returns views into storage owned by the Scenario. It is
//    safe to share one instance across any number of threads without
//    synchronization (the MC engines do exactly that).
//  * Lifetime. Views (spans, mc::TrialContext instances built from a
//    scenario) must not outlive the Scenario. The Scenario owns a private
//    COPY of the Dag, so the caller's graph may die after compile().
//  * Move-only. A Scenario is a handle, not a value: copying one would
//    silently duplicate O(V + E) state, so copies are deleted. Wrap it in
//    a shared_ptr<const Scenario> to share ownership.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/failure_model.hpp"
#include "graph/csr.hpp"
#include "graph/dag.hpp"

namespace expmk::graph {
struct LevelSets;
struct SpDecomposition;
}  // namespace expmk::graph

namespace expmk::scenario {

/// The failure-rate input of a scenario: either one uniform exponential
/// rate for every task (the paper's model) or an explicit per-task rate
/// vector (heterogeneous silent errors). Validation of the rates against
/// a concrete DAG happens in Scenario::compile.
class FailureSpec {
 public:
  /// Uniform, failure-free (lambda == 0).
  FailureSpec() = default;

  /// Uniform rate taken from the classic model (implicit on purpose:
  /// every legacy `(Dag&, FailureModel)` call site forwards through this).
  FailureSpec(const core::FailureModel& model) : lambda_(model.lambda) {}

  /// Uniform rate `lambda` (errors per second of execution).
  [[nodiscard]] static FailureSpec uniform(double lambda) {
    return FailureSpec(core::FailureModel{lambda});
  }

  /// Heterogeneous per-task rates; rates[i] is task i's lambda_i. The
  /// vector size must match the DAG handed to Scenario::compile.
  [[nodiscard]] static FailureSpec per_task(std::vector<double> rates);

  [[nodiscard]] bool heterogeneous() const noexcept {
    return !rates_.empty();
  }

  /// The uniform rate; throws std::logic_error when heterogeneous —
  /// callers must check heterogeneous() (or use Scenario::rates(), which
  /// is always valid).
  [[nodiscard]] double uniform_lambda() const;

  /// The uniform rate as the classic model (same throwing contract).
  [[nodiscard]] core::FailureModel uniform_model() const {
    return core::FailureModel{uniform_lambda()};
  }

  /// Per-task vector; empty when uniform.
  [[nodiscard]] const std::vector<double>& per_task_rates() const noexcept {
    return rates_;
  }

 private:
  double lambda_ = 0.0;
  std::vector<double> rates_;
};

/// Immutable compile-once handle: one (DAG, failure rates, retry model)
/// cell plus everything every estimator would otherwise re-derive per
/// call. See the file comment for the immutability/lifetime contract.
class Scenario {
 public:
  /// Builds the handle; O(V + E) plus one exp/log1p pair per task — paid
  /// exactly once per cell instead of once per evaluator call. Throws
  /// std::invalid_argument on a cyclic graph, a rate-vector size mismatch,
  /// a negative/non-finite rate, or a negative/non-finite task weight
  /// (Dag::add_task rejects negatives but NaN/inf slip through its
  /// comparison — compile is the choke point every evaluator passes, so a
  /// poisoned weight fails HERE instead of silently corrupting every
  /// estimate downstream).
  [[nodiscard]] static Scenario compile(
      const graph::Dag& dag, FailureSpec failure,
      core::RetryModel retry = core::RetryModel::TwoState);

  /// Convenience: Section V-C calibration (pfail on the mean task weight)
  /// straight to a compiled scenario.
  [[nodiscard]] static Scenario calibrated(
      const graph::Dag& dag, double pfail,
      core::RetryModel retry = core::RetryModel::TwoState);

  Scenario(Scenario&&) noexcept = default;
  Scenario& operator=(Scenario&&) noexcept = default;
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Total Scenario::compile calls in this process — the metrics hook the
  /// compile-once contract is pinned with (tests/test_scenario.cpp asserts
  /// a sweep row compiles one scenario per cell; bench_scenario reports
  /// the per-call vs compiled delta).
  [[nodiscard]] static std::uint64_t compiled_count() noexcept;

  /// Total patch()/with_failure() clones in this process — the serving
  /// layer's "patched instead of recompiled" metrics hook.
  [[nodiscard]] static std::uint64_t patched_count() noexcept;

  // ------------------------------------------------- incremental patching
  /// Clones this handle with `tasks[j]` given rate `new_rates[j]` and/or
  /// weight `new_weights[j]` (either span may be empty to leave that
  /// dimension untouched; a non-empty span must match tasks.size()).
  /// The clone SHARES the immutable graph structure (Dag, CSR adjacency,
  /// level/SP-decomposition caches) with this scenario and re-derives only
  /// what the patch invalidates: the per-task exp/log constants of the
  /// patched tasks, and — for weight patches — the failure-free finish
  /// times of the patched tasks' descendant cone (value-based dirty
  /// propagation; an absorbed change stops the wave). Every derived value
  /// is bit-identical to a fresh compile() of the patched inputs: rates
  /// whose bits are unchanged keep their cached constants, and recomputed
  /// entries use compile's exact expressions.
  /// Throws like compile on invalid ids, rates, or weights.
  [[nodiscard]] Scenario patch(std::span<const graph::TaskId> tasks,
                               std::span<const double> new_rates,
                               std::span<const double> new_weights = {}) const;

  /// Clones this handle under a wholly new FailureSpec (same graph, same
  /// retry model) — the serving layer's patch-on-miss entry point, where
  /// the request carries a full spec rather than a task diff. Per-task
  /// constants are recomputed only where the rate bits actually changed.
  [[nodiscard]] Scenario with_failure(FailureSpec failure) const;

  // ------------------------------------------------------------ identity
  [[nodiscard]] const graph::Dag& dag() const noexcept { return *dag_; }
  [[nodiscard]] const graph::CsrDag& csr() const noexcept { return *csr_; }
  [[nodiscard]] std::size_t task_count() const noexcept {
    return dag_->task_count();
  }
  [[nodiscard]] core::RetryModel retry() const noexcept { return retry_; }
  [[nodiscard]] const FailureSpec& failure() const noexcept {
    return failure_;
  }
  [[nodiscard]] bool heterogeneous() const noexcept {
    return failure_.heterogeneous();
  }
  /// True when no task can ever fail (all rates are zero).
  [[nodiscard]] bool failure_free() const noexcept { return failure_free_; }
  /// Uniform-lambda view; throws std::logic_error when heterogeneous.
  [[nodiscard]] core::FailureModel uniform_model() const {
    return failure_.uniform_model();
  }

  /// A topological order of the Dag (== csr().order()).
  [[nodiscard]] std::span<const graph::TaskId> topo() const noexcept {
    return csr_->order();
  }

  // -------------------------------------- lazily built structural caches
  // Both depend only on the adjacency structure, are built on first use
  // (thread-safe), and are SHARED by every patch()/with_failure() clone —
  // a patched scenario never re-derives them.

  /// Chunked level-partition schedule for the level-parallel sweeps.
  [[nodiscard]] const graph::LevelSets& level_sets() const;

  /// Series-parallel modular decomposition for hierarchical evaluation.
  [[nodiscard]] const graph::SpDecomposition& sp_decomposition() const;

  /// Tasks with no successor, ascending Dag id — a cached copy of
  /// Dag::exit_tasks(), which allocates per call. The Normal-family
  /// folds read this on every evaluation; caching it here is what lets
  /// those kernels run allocation-free.
  [[nodiscard]] std::span<const graph::TaskId> exits() const noexcept {
    return exits_;
  }

  // ------------------------------------------- cached per-task constants
  // "Dag id order" = indexed by TaskId; "position order" = indexed by CSR
  // position (csr().order() translates). All spans have task_count()
  // entries.

  /// lambda_i in Dag id order (filled with the uniform rate when uniform).
  [[nodiscard]] std::span<const double> rates() const noexcept {
    return rates_;
  }
  /// e^{-lambda_i a_i} in Dag id order.
  [[nodiscard]] std::span<const double> p_success() const noexcept {
    return p_success_;
  }
  /// Expected task duration under the scenario's retry model, Dag id
  /// order: TwoState a_i (2 - p_i); Geometric a_i e^{lambda_i a_i}.
  [[nodiscard]] std::span<const double> expected_durations() const noexcept {
    return expected_durations_;
  }

  /// Task weights in position order (== csr().weights()).
  [[nodiscard]] std::span<const double> weights_csr() const noexcept {
    return csr_->weights();
  }
  /// Failure-free finish time per CSR position (longest path ending at
  /// that vertex) — the critical-path DP's full output, cached so that
  /// patch() can repair just the affected cone.
  [[nodiscard]] std::span<const double> finish_csr() const noexcept {
    return finish_csr_;
  }
  /// lambda_i in position order.
  [[nodiscard]] std::span<const double> rates_csr() const noexcept {
    return rates_csr_;
  }
  /// e^{-lambda_i a_i} in position order.
  [[nodiscard]] std::span<const double> p_success_csr() const noexcept {
    return p_success_csr_;
  }
  /// 1 - p_i in position order — the sampler's fast-path threshold.
  [[nodiscard]] std::span<const double> q_fail_csr() const noexcept {
    return q_fail_csr_;
  }
  /// 1 / log1p(-p_i) in position order — the geometric-sampler inversion
  /// constant (only meaningful where q_fail > 0; see mc/trial.hpp).
  [[nodiscard]] std::span<const double> inv_log_q_csr() const noexcept {
    return inv_log_q_csr_;
  }

  // ------------------------------------------------------ cached scalars
  /// d(G): the failure-free critical-path length.
  [[nodiscard]] double critical_path() const noexcept {
    return critical_path_;
  }
  /// Mean task weight a-bar (the calibration denominator).
  [[nodiscard]] double mean_weight() const noexcept { return mean_weight_; }
  /// A = sum_i a_i.
  [[nodiscard]] double total_weight() const noexcept {
    return total_weight_;
  }

 private:
  struct DerivedCaches;  // once-guarded lazy structural caches (.cpp)

  Scenario() = default;  // patch()/with_failure() build up from empty
  Scenario(graph::Dag dag, FailureSpec failure, core::RetryModel retry);

  /// Copies every member (structure members by shared_ptr) — the starting
  /// point of a patch clone.
  [[nodiscard]] Scenario clone_for_patch() const;
  /// Recomputes the per-task constants of task `i` from the current
  /// failure_/dag_ using compile's exact expressions.
  void rederive_task(graph::TaskId i, double lambda, bool geometric);
  /// Value-based dirty propagation of finish_csr_ from the patched
  /// positions; updates critical_path_.
  void repair_finish_cone(std::span<const graph::TaskId> tasks);

  // The graph structure is shared (never copied) between a scenario and
  // its patch clones; shared_ptr<const ...> keeps the immutability
  // contract — nobody can mutate through the handle.
  std::shared_ptr<const graph::Dag> dag_;
  std::shared_ptr<const graph::CsrDag> csr_;
  FailureSpec failure_;
  core::RetryModel retry_ = core::RetryModel::TwoState;
  bool failure_free_ = true;

  std::vector<graph::TaskId> exits_;        // ascending Dag id
  std::vector<double> rates_;               // Dag id order
  std::vector<double> p_success_;           // Dag id order
  std::vector<double> expected_durations_;  // Dag id order
  std::vector<double> rates_csr_;           // position order
  std::vector<double> p_success_csr_;       // position order
  std::vector<double> q_fail_csr_;          // position order
  std::vector<double> inv_log_q_csr_;       // position order
  std::vector<double> finish_csr_;          // position order

  double critical_path_ = 0.0;
  double mean_weight_ = 0.0;
  double total_weight_ = 0.0;

  // Lazy structure-derived caches, shared across patch clones. The holder
  // is heap-allocated so Scenario stays movable (std::once_flag is not).
  std::shared_ptr<DerivedCaches> derived_;
};

}  // namespace expmk::scenario
