#include "scenario/scenario.hpp"

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace expmk::scenario {

namespace {

/// Process-wide compile counter (relaxed: a metrics hook, not a fence).
std::atomic<std::uint64_t> g_compiled{0};

}  // namespace

FailureSpec FailureSpec::per_task(std::vector<double> rates) {
  FailureSpec spec;
  spec.rates_ = std::move(rates);
  if (spec.rates_.empty()) {
    throw std::invalid_argument(
        "FailureSpec::per_task: empty rate vector (use uniform() for the "
        "single-rate model)");
  }
  return spec;
}

double FailureSpec::uniform_lambda() const {
  if (heterogeneous()) {
    throw std::logic_error(
        "FailureSpec: uniform_lambda() on a heterogeneous spec — check "
        "heterogeneous() or use Scenario::rates()");
  }
  return lambda_;
}

Scenario Scenario::compile(const graph::Dag& dag, FailureSpec failure,
                           core::RetryModel retry) {
  return Scenario(dag, std::move(failure), retry);
}

Scenario Scenario::calibrated(const graph::Dag& dag, double pfail,
                              core::RetryModel retry) {
  return compile(dag, FailureSpec(core::calibrate(dag, pfail)), retry);
}

std::uint64_t Scenario::compiled_count() noexcept {
  return g_compiled.load(std::memory_order_relaxed);
}

Scenario::Scenario(graph::Dag dag, FailureSpec failure,
                   core::RetryModel retry)
    : dag_(std::move(dag)),
      csr_(dag_),
      failure_(std::move(failure)),
      retry_(retry) {
  const std::size_t n = dag_.task_count();

  // Validate the task weights before deriving anything from them: the Dag
  // API rejects negatives but `weight < 0.0` is false for NaN, so a NaN
  // (or inf) weight would otherwise flow silently into every method's
  // p_success/duration arithmetic. Compile is the one choke point every
  // evaluator passes.
  for (graph::TaskId i = 0; i < n; ++i) {
    const double a = dag_.weight(i);
    if (!(a >= 0.0) || !std::isfinite(a)) {
      throw std::invalid_argument(
          "Scenario: task weights must be finite and >= 0 (task " +
          std::to_string(i) + ")");
    }
  }

  // Validate the spec against this DAG before deriving anything from it.
  if (failure_.heterogeneous()) {
    const auto& rates = failure_.per_task_rates();
    if (rates.size() != n) {
      throw std::invalid_argument(
          "Scenario: per-task rate vector size " +
          std::to_string(rates.size()) + " != task count " +
          std::to_string(n));
    }
    for (const double r : rates) {
      if (!(r >= 0.0) || !std::isfinite(r)) {
        throw std::invalid_argument(
            "Scenario: per-task rates must be finite and >= 0");
      }
    }
  } else if (!(failure_.uniform_lambda() >= 0.0) ||
             !std::isfinite(failure_.uniform_lambda())) {
    // Mirrors FailureModel::p_success's negative-lambda rejection, but
    // at compile time instead of deep inside the first estimator call.
    throw std::invalid_argument("Scenario: lambda must be finite and >= 0");
  }

  rates_.resize(n);
  p_success_.resize(n);
  expected_durations_.resize(n);
  failure_free_ = true;
  const bool geometric = retry_ == core::RetryModel::Geometric;
  for (graph::TaskId i = 0; i < n; ++i) {
    const double lambda = failure_.heterogeneous()
                              ? failure_.per_task_rates()[i]
                              : failure_.uniform_lambda();
    const double a = dag_.weight(i);
    // Same expressions as FailureModel::p_success / expected_duration so
    // the uniform path stays bit-identical to the pre-Scenario code.
    const double p = std::exp(-lambda * a);
    rates_[i] = lambda;
    p_success_[i] = p;
    expected_durations_[i] =
        geometric ? a * std::exp(lambda * a) : a * (2.0 - p);
    failure_free_ = failure_free_ && lambda <= 0.0;
  }

  // Sampler constants in CSR position order — the layout mc/trial.hpp's
  // fused kernel consumes directly (see that header for the fast/slow
  // path split the three arrays encode).
  rates_csr_.resize(n);
  p_success_csr_.resize(n);
  q_fail_csr_.resize(n);
  inv_log_q_csr_.resize(n);
  for (std::uint32_t pos = 0; pos < n; ++pos) {
    const graph::TaskId id = csr_.original_id(pos);
    const double p = p_success_[id];
    rates_csr_[pos] = rates_[id];
    p_success_csr_[pos] = p;
    // q_fail <= 0 (p >= 1) makes the sampler fast path unconditional.
    q_fail_csr_[pos] = 1.0 - p;
    // Only read on the slow path, where q_fail > 0 implies p < 1 and the
    // log is finite and negative (p == 0 artifacts are absorbed by the
    // sampler's execution cap).
    inv_log_q_csr_[pos] = 1.0 / std::log1p(-p);
  }

  for (graph::TaskId i = 0; i < n; ++i) {
    if (dag_.successors(i).empty()) exits_.push_back(i);
  }

  {
    std::vector<double> finish(n);
    critical_path_ =
        n == 0 ? 0.0
               : graph::critical_path_length(csr_, csr_.weights(), finish);
  }
  mean_weight_ = n == 0 ? 0.0 : dag_.mean_weight();
  total_weight_ = dag_.total_weight();

  g_compiled.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace expmk::scenario
